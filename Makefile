GO ?= go

.PHONY: build test check race bench bench-json clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the full verification gate: static analysis plus the whole test
# suite under the race detector (the parallel evaluator paths run with
# Parallelism > 1 in tests, so races surface here).
check:
	$(GO) vet ./...
	$(GO) test -race ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 5x -run XXX .
	$(GO) test -bench 'BenchmarkMatch|BenchmarkCachedCountIDs' -run XXX ./internal/rdf/

# bench-json regenerates the machine-readable BENCH_results.json via the
# experiment runner (quick scales; drop -quick for the full sweep).
bench-json:
	$(GO) run ./cmd/benchrunner -exp E6 -quick

clean:
	rm -f BENCH_results.json spiral.svg city.svg city.json
