GO ?= go

.PHONY: build test check race bench bench-json bench-planner bench-herd bench-store obs-smoke metrics-lint chaos-smoke resilience-smoke durability-smoke fuzz-smoke conformance clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the full verification gate: formatting, static analysis, the
# whole test suite under the race detector (the parallel evaluator paths
# run with Parallelism > 1 in tests, so races surface here), the telemetry
# and chaos smoke tests against live servers, and a fuzz smoke pass over
# the three parsers.
check:
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	$(GO) vet ./...
	$(GO) test -race ./...
	$(MAKE) conformance
	$(MAKE) obs-smoke
	$(MAKE) metrics-lint
	$(MAKE) chaos-smoke
	$(MAKE) resilience-smoke
	$(MAKE) durability-smoke
	$(MAKE) fuzz-smoke

# conformance lints the corpus layout and runs the SPARQL-semantics harness:
# the W3C-style testdata corpus, the metamorphic oracles and the HIFUN
# differential oracle (see internal/conformance). -v so the per-category
# pass/fail table is printed.
conformance:
	sh scripts/corpus-lint.sh
	$(GO) test -v -run 'TestCorpus|TestMetamorphic|TestHIFUNDifferential' ./internal/conformance/

# obs-smoke starts the server and asserts /metrics, /api/trace and pprof
# respond with the expected content (see scripts/obs-smoke.sh).
obs-smoke:
	sh scripts/obs-smoke.sh

# chaos-smoke boots the server with fault injection armed and asserts the
# governance layer holds: query timeout -> structured 504, handler panic ->
# 500 with the process still up, oversized body -> 413, SIGTERM -> clean
# drain (see scripts/chaos-smoke.sh).
# metrics-lint asserts every /metrics family follows the naming
# conventions (rdfa_ prefix, _total counters, _seconds histograms) — see
# scripts/metrics-lint.sh.
metrics-lint:
	sh scripts/metrics-lint.sh

chaos-smoke:
	sh scripts/chaos-smoke.sh

# resilience-smoke boots live servers and drives the overload-resilience
# layer end to end: herd collapse (identical queries share one execution),
# queue-overflow shedding (structured 503 + Retry-After while cached
# fingerprints keep serving), and degraded-mode stale serving under a paging
# latency SLO (see scripts/resilience-smoke.sh).
resilience-smoke:
	sh scripts/resilience-smoke.sh

# durability-smoke boots the server with -data-dir, applies acknowledged
# updates, kills it with SIGKILL (twice — once against the WAL tail, once
# past a checkpoint) and asserts the reboot serves byte-identical answers
# (see scripts/durability-smoke.sh).
durability-smoke:
	sh scripts/durability-smoke.sh

# fuzz-smoke runs each parser fuzz target for a short burst; a discovered
# panic fails the build and leaves its input in testdata/fuzz/.
FUZZTIME ?= 30s
fuzz-smoke:
	$(GO) test -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME) -run XXX ./internal/sparql/
	$(GO) test -fuzz '^FuzzParseUpdate$$' -fuzztime $(FUZZTIME) -run XXX ./internal/sparql/
	$(GO) test -fuzz '^FuzzParseTurtle$$' -fuzztime $(FUZZTIME) -run XXX ./internal/rdf/
	$(GO) test -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME) -run XXX ./internal/hifun/

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 5x -run XXX .
	$(GO) test -bench 'BenchmarkMatch|BenchmarkCachedCountIDs' -run XXX ./internal/rdf/

# bench-json regenerates the machine-readable BENCH_results.json via the
# experiment runner (quick scales; drop -quick for the full sweep) and
# appends the run — timestamped, with its configuration and git describe —
# to the cumulative BENCH_history.json, so successive runs build a
# performance timeline to diff regressions against (-history "" disables).
bench-json:
	$(GO) run ./cmd/benchrunner -exp E6 -quick

# bench-planner runs the adaptive-planner feedback-convergence experiment
# (E12): the workload replays twice over one feedback store and the per-pass
# worst q-error and latency quantiles are appended to BENCH_history.json —
# the acceptance evidence that the second pass plans strictly better.
bench-planner:
	$(GO) run ./cmd/benchrunner -exp E12

# bench-herd runs the hot-fingerprint herd experiment (E13): concurrent
# clients replay a hot query set against an uncached server and against the
# answer-cache + singleflight stack; the throughput ratio is appended to
# BENCH_history.json — acceptance is cached >= 5x uncached.
bench-herd:
	$(GO) run ./cmd/benchrunner -exp E13

# bench-store runs the durable-store restart experiment (E14): cold-start by
# Turtle re-parse + materialize versus segment + WAL-replay restore of the
# same graph; both means land in BENCH_history.json — acceptance is restore
# >= 5x faster.
bench-store:
	$(GO) run ./cmd/benchrunner -exp E14

clean:
	rm -f BENCH_results.json spiral.svg city.svg city.json
