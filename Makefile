GO ?= go

.PHONY: build test check race bench bench-json obs-smoke clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the full verification gate: static analysis, the whole test
# suite under the race detector (the parallel evaluator paths run with
# Parallelism > 1 in tests, so races surface here), and the telemetry
# smoke test against a live server.
check:
	$(GO) vet ./...
	$(GO) test -race ./...
	$(MAKE) obs-smoke

# obs-smoke starts the server and asserts /metrics, /api/trace and pprof
# respond with the expected content (see scripts/obs-smoke.sh).
obs-smoke:
	sh scripts/obs-smoke.sh

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 5x -run XXX .
	$(GO) test -bench 'BenchmarkMatch|BenchmarkCachedCountIDs' -run XXX ./internal/rdf/

# bench-json regenerates the machine-readable BENCH_results.json via the
# experiment runner (quick scales; drop -quick for the full sweep).
bench-json:
	$(GO) run ./cmd/benchrunner -exp E6 -quick

clean:
	rm -f BENCH_results.json spiral.svg city.svg city.json
