#!/bin/sh
# chaos-smoke: end-to-end check of the resource-governance layer. Boots the
# server with fault injection armed (a delay inside the join loop and a
# panic site in the handler path), then:
#   1. fires a cross-product query that must time out (504, structured
#      reason, rdfa_sparql_queries_timeout_total moves),
#   2. fires a request carrying X-Fault to trigger a handler panic (500,
#      rdfa_server_panics_total moves, process stays up),
#   3. fires an oversized POST body (413),
#   4. sends SIGTERM and asserts the process drains and exits cleanly.
# Needs only sh + curl + grep.
set -eu

PORT="${CHAOS_SMOKE_PORT:-18931}"
BASE="http://127.0.0.1:$PORT"
BIN="$(mktemp -d)/rdfanalytics"
LOG="$(mktemp)"

go build -o "$BIN" ./cmd/rdfanalytics

RDFA_FAULT='sparql.join=delay:300ms,server.handler.boom=panic:chaos-smoke' \
    "$BIN" -addr "127.0.0.1:$PORT" -data products-small \
    -query-timeout 100ms -max-body 4096 >"$LOG" 2>&1 &
PID=$!
trap 'kill $PID 2>/dev/null || true; rm -f "$LOG"; rm -rf "$(dirname "$BIN")"' EXIT

i=0
until curl -sf "$BASE/api/stats" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "chaos-smoke: server did not come up; log:" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.1
done

# 1. Pathological cross product + 100ms deadline -> structured 504 within
# ~2x the deadline (generous wall-clock bound of 3s for slow CI).
START=$(date +%s)
CODE=$(curl -s -o /tmp/chaos_body.$$ -w '%{http_code}' "$BASE/sparql" \
    --data-urlencode 'query=SELECT * WHERE { ?a ?p ?x . ?b ?q ?y . ?c ?r ?z }')
ELAPSED=$(( $(date +%s) - START ))
BODY="$(cat /tmp/chaos_body.$$; rm -f /tmp/chaos_body.$$)"
if [ "$CODE" != 504 ]; then
    echo "chaos-smoke: FAIL — timed-out query answered $CODE, want 504: $BODY" >&2
    exit 1
fi
if ! printf '%s' "$BODY" | grep -q '"reason":"timeout"'; then
    echo "chaos-smoke: FAIL — 504 body lacks structured timeout reason: $BODY" >&2
    exit 1
fi
if [ "$ELAPSED" -gt 3 ]; then
    echo "chaos-smoke: FAIL — timeout took ${ELAPSED}s, cancellation not cooperative" >&2
    exit 1
fi

# 2. Handler panic via the armed X-Fault site -> 500, process survives.
CODE=$(curl -s -o /dev/null -w '%{http_code}' -H 'X-Fault: boom' "$BASE/api/state")
if [ "$CODE" != 500 ]; then
    echo "chaos-smoke: FAIL — panicking request answered $CODE, want 500" >&2
    exit 1
fi
if ! kill -0 "$PID" 2>/dev/null; then
    echo "chaos-smoke: FAIL — server died on handler panic" >&2
    exit 1
fi

# 3. Oversized POST body -> 413.
CODE=$(head -c 8192 /dev/zero | tr '\0' 'x' | curl -s -o /dev/null -w '%{http_code}' \
    -X POST -H 'Content-Type: application/x-www-form-urlencoded' \
    --data-binary @- "$BASE/sparql")
if [ "$CODE" != 413 ]; then
    echo "chaos-smoke: FAIL — oversized body answered $CODE, want 413" >&2
    exit 1
fi

# The metrics must report both abort classes.
METRICS="$(curl -sf "$BASE/metrics")"
for name in rdfa_sparql_queries_timeout_total rdfa_server_panics_total; do
    VAL="$(printf '%s\n' "$METRICS" | grep "^$name " | awk '{print $2}')"
    if [ -z "$VAL" ] || [ "$VAL" = 0 ]; then
        echo "chaos-smoke: FAIL — metric $name is '${VAL:-missing}', want > 0" >&2
        exit 1
    fi
done

# 4. SIGTERM -> graceful drain, clean exit.
kill -TERM "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "chaos-smoke: FAIL — server did not exit within 10s of SIGTERM" >&2
        exit 1
    fi
    sleep 0.1
done
wait "$PID" 2>/dev/null || EXIT=$?
if [ "${EXIT:-0}" != 0 ]; then
    echo "chaos-smoke: FAIL — server exited with status ${EXIT} on SIGTERM; log:" >&2
    cat "$LOG" >&2
    exit 1
fi
if ! grep -q 'shut down cleanly' "$LOG"; then
    echo "chaos-smoke: FAIL — no clean-shutdown message in log:" >&2
    cat "$LOG" >&2
    exit 1
fi

echo "chaos-smoke: OK — timeout, panic recovery, body cap and graceful shutdown all healthy"
