#!/bin/sh
# metrics-lint: naming-convention gate for the /metrics exposition. Boots
# the server, drives a little traffic so lazily created families appear,
# scrapes /metrics and asserts every family follows the conventions:
#
#   * every name matches ^rdfa_[a-z0-9_]+$  (one product prefix, snake_case)
#   * counters end in _total
#   * duration histograms/summaries use a _seconds base unit
#   * gauges never end in _total (a _seconds unit suffix is fine — e.g.
#     rdfa_sampler_tick_seconds, like Prometheus's scrape_duration_seconds)
#
# A second, content-negotiated scrape checks the OpenMetrics exposition:
# it must terminate with "# EOF", exemplars must only ever decorate
# histogram bucket samples, and every exemplar must follow the OpenMetrics
# grammar: ` # {trace_id="<id>"} <value> <timestamp>`. The default 0.0.4
# exposition must stay exemplar-free.
#
# Needs only sh + curl + grep/awk.
set -eu

PORT="${METRICS_LINT_PORT:-18931}"
BASE="http://127.0.0.1:$PORT"
BIN="$(mktemp -d)/rdfanalytics"
LOG="$(mktemp)"

go build -o "$BIN" ./cmd/rdfanalytics

"$BIN" -addr "127.0.0.1:$PORT" -data products-small -sample-interval 200ms >"$LOG" 2>&1 &
PID=$!
trap 'kill $PID 2>/dev/null; rm -f "$LOG"; rm -rf "$(dirname "$BIN")"' EXIT

i=0
until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "metrics-lint: server did not come up; log:" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.1
done

NS='http://example.org/products#'
curl -sf "$BASE/sparql" --data-urlencode \
    "query=SELECT ?s WHERE { ?s a <${NS}Laptop> } LIMIT 3" >/dev/null
sleep 0.5 # let the sampler tick so rdfa_go_* / rdfa_slo_* gauges exist

METRICS="$(curl -sf "$BASE/metrics")"

FAIL=0

# Every exposed family name (TYPE lines are authoritative: "# TYPE name kind").
TYPES="$(printf '%s\n' "$METRICS" | awk '/^# TYPE /{print $3, $4}')"
if [ -z "$TYPES" ]; then
    echo "metrics-lint: FAIL — no # TYPE lines in /metrics" >&2
    exit 1
fi

printf '%s\n' "$TYPES" | while read -r name kind; do
    case "$name" in
    rdfa_*) ;;
    *)
        echo "metrics-lint: FAIL — $name: missing rdfa_ prefix" >&2
        exit 1
        ;;
    esac
    if ! printf '%s\n' "$name" | grep -Eq '^rdfa_[a-z0-9_]+$'; then
        echo "metrics-lint: FAIL — $name: not snake_case" >&2
        exit 1
    fi
    case "$kind" in
    counter)
        case "$name" in
        *_total) ;;
        *)
            echo "metrics-lint: FAIL — counter $name must end in _total" >&2
            exit 1
            ;;
        esac
        ;;
    histogram)
        # Duration histograms carry a _seconds unit. rdfa_planner_qerror is
        # the documented exception: it measures a dimensionless ratio.
        case "$name" in
        *_seconds | rdfa_planner_qerror) ;;
        *)
            echo "metrics-lint: FAIL — histogram $name must end in _seconds (or be a documented unitless family)" >&2
            exit 1
            ;;
        esac
        ;;
    gauge)
        case "$name" in
        *_total)
            echo "metrics-lint: FAIL — gauge $name must not use the counter _total suffix" >&2
            exit 1
            ;;
        esac
        ;;
    esac
done || FAIL=1

# Families the telemetry layer promises must be present after one tick, and
# the resilience families the serving flow registers eagerly at boot.
for name in rdfa_build_info rdfa_go_heap_alloc_bytes rdfa_go_goroutines \
    rdfa_sampler_ticks_total rdfa_slo_good_total rdfa_slo_events_total \
    rdfa_cache_requests_total rdfa_cache_collapsed_total \
    rdfa_cache_fills_total rdfa_cache_evictions_total rdfa_cache_bytes \
    rdfa_cache_entries rdfa_admission_admitted_total \
    rdfa_admission_rejected_total rdfa_admission_wait_seconds \
    rdfa_admission_inflight rdfa_admission_waiting \
    rdfa_breaker_rejected_total rdfa_breaker_transitions_total \
    rdfa_server_degraded; do
    if ! printf '%s\n' "$METRICS" | grep -q "^$name"; then
        echo "metrics-lint: FAIL — promised family $name missing" >&2
        FAIL=1
    fi
done

if [ "$FAIL" -ne 0 ]; then
    exit 1
fi

# The default 0.0.4 exposition never carries exemplars.
if printf '%s\n' "$METRICS" | grep -q '# {'; then
    echo "metrics-lint: FAIL — exemplar syntax in the default 0.0.4 exposition" >&2
    exit 1
fi

# OpenMetrics exposition: negotiated via Accept, terminated by # EOF, and
# every exemplar matches the grammar on a histogram bucket sample.
OM="$(curl -sf -H 'Accept: application/openmetrics-text; version=1.0.0' "$BASE/metrics")"
if [ "$(printf '%s\n' "$OM" | tail -1)" != "# EOF" ]; then
    echo "metrics-lint: FAIL — OpenMetrics exposition must end with # EOF" >&2
    exit 1
fi
EXEMPLARS="$(printf '%s\n' "$OM" | grep -F ' # {' || true)"
if [ -z "$EXEMPLARS" ]; then
    echo "metrics-lint: FAIL — OpenMetrics scrape carries no exemplars after traffic" >&2
    exit 1
fi
printf '%s\n' "$EXEMPLARS" | while read -r line; do
    case "$line" in
    rdfa_*_bucket\{*) ;;
    *)
        echo "metrics-lint: FAIL — exemplar on a non-bucket sample: $line" >&2
        exit 1
        ;;
    esac
    if ! printf '%s\n' "$line" | grep -Eq ' # \{trace_id="[A-Za-z0-9._-]{1,64}"\} [0-9.eE+-]+ [0-9]+\.[0-9]{3}$'; then
        echo "metrics-lint: FAIL — exemplar violates the OpenMetrics grammar: $line" >&2
        exit 1
    fi
done || exit 1

COUNT="$(printf '%s\n' "$TYPES" | wc -l | tr -d ' ')"
OM_EX="$(printf '%s\n' "$EXEMPLARS" | wc -l | tr -d ' ')"
echo "metrics-lint: OK — $COUNT metric families follow the naming conventions; $OM_EX OpenMetrics exemplars well-formed"
