#!/bin/sh
# durability-smoke: end-to-end crash-recovery check of the durable store
# against a live server killed with SIGKILL (no shutdown hooks, no flush).
#   1. boot with -data-dir on an empty directory (bootstrap path), apply
#      INSERT and DELETE updates — each is acknowledged only after its WAL
#      records are fsync'd — and save a deterministic query answer.
#   2. kill -9, reboot on the same directory (segment + WAL replay), assert
#      the query answer is byte-identical and the rdfa_store_* metrics and
#      /api/checkpoint endpoint are live.
#   3. checkpoint (WAL folds into a new segment), mutate again, kill -9
#      again, reboot and assert the post-checkpoint state survived too.
# Needs only sh + curl + grep.
set -eu

PORT="${DURABILITY_SMOKE_PORT:-18933}"
BASE="http://127.0.0.1:$PORT"
WORK="$(mktemp -d)"
BIN="$WORK/rdfanalytics"
DATA="$WORK/data"
LOG="$WORK/server.log"
NS='http://example.org/products#'

go build -o "$BIN" ./cmd/rdfanalytics

PID=""
cleanup() {
    [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

wait_up() {
    i=0
    until curl -sf "$BASE/api/stats" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 50 ]; then
            echo "durability-smoke: server did not come up; log:" >&2
            cat "$LOG" >&2
            exit 1
        fi
        sleep 0.1
    done
}

boot() {
    "$BIN" -addr "127.0.0.1:$PORT" -data products-small \
        -data-dir "$DATA" -wal-sync batch >"$LOG" 2>&1 &
    PID=$!
    wait_up
}

# The probe query covers both mutated subjects; ORDER BY makes the answer
# bytes deterministic across boots.
QUERY="SELECT ?s ?o WHERE { ?s <${NS}auditTag> ?o } ORDER BY ?s ?o"
probe() {
    curl -sf --get --data-urlencode "query=$QUERY" "$BASE/sparql"
}
update() {
    curl -sf -o /dev/null --data-urlencode "update=$1" "$BASE/sparql"
}

# ---- boot 1: bootstrap, mutate, snapshot the answer, kill -9 ---------------
boot
if ! grep -q 'bootstrapped' "$LOG"; then
    echo "durability-smoke: FAIL — first boot did not take the bootstrap path" >&2
    exit 1
fi
update "PREFIX ex: <$NS> INSERT DATA { ex:laptop1 ex:auditTag 1 . ex:laptop2 ex:auditTag 2 . ex:laptop3 ex:auditTag 3 . }"
update "PREFIX ex: <$NS> DELETE DATA { ex:laptop2 ex:auditTag 2 . }"
probe >"$WORK/before.json"
if ! grep -q 'auditTag\|laptop1' "$WORK/before.json"; then
    echo "durability-smoke: FAIL — probe query returned no bindings pre-crash" >&2
    exit 1
fi
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=""

# ---- boot 2: restore, compare, checkpoint ----------------------------------
boot
if ! grep -q 'restored' "$LOG"; then
    echo "durability-smoke: FAIL — reboot did not take the restore path; log:" >&2
    cat "$LOG" >&2
    exit 1
fi
probe >"$WORK/after.json"
if ! cmp -s "$WORK/before.json" "$WORK/after.json"; then
    echo "durability-smoke: FAIL — answer changed across kill -9:" >&2
    diff "$WORK/before.json" "$WORK/after.json" >&2 || true
    exit 1
fi
METRICS=$(curl -sf "$BASE/metrics")
for m in rdfa_store_wal_records_total rdfa_store_segments rdfa_store_epoch; do
    if ! printf '%s\n' "$METRICS" | grep -q "^$m"; then
        echo "durability-smoke: FAIL — $m missing from /metrics" >&2
        exit 1
    fi
done
REPLAYED=$(printf '%s\n' "$METRICS" | grep '^rdfa_store_replay_records' | awk '{print $2}')
CKPT=$(curl -sf -X POST "$BASE/api/checkpoint")
if ! printf '%s' "$CKPT" | grep -q '"epoch"'; then
    echo "durability-smoke: FAIL — /api/checkpoint answered: $CKPT" >&2
    exit 1
fi

# ---- boot 3: mutate past the checkpoint, kill -9, verify again -------------
update "PREFIX ex: <$NS> INSERT DATA { ex:laptop4 ex:auditTag 4 . }"
probe >"$WORK/before2.json"
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=""
boot
probe >"$WORK/after2.json"
if ! cmp -s "$WORK/before2.json" "$WORK/after2.json"; then
    echo "durability-smoke: FAIL — post-checkpoint answer changed across kill -9:" >&2
    diff "$WORK/before2.json" "$WORK/after2.json" >&2 || true
    exit 1
fi
# The checkpoint folded the first boots' WAL into the segment, so this replay
# must be shorter than the pre-checkpoint one.
REPLAYED2=$(curl -sf "$BASE/metrics" | grep '^rdfa_store_replay_records' | awk '{print $2}')
if [ -n "$REPLAYED" ] && [ -n "$REPLAYED2" ] && [ "$REPLAYED2" -gt "$REPLAYED" ]; then
    echo "durability-smoke: FAIL — replay grew after checkpoint ($REPLAYED -> $REPLAYED2)" >&2
    exit 1
fi

kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true
PID=""
echo "durability-smoke: OK — acknowledged updates survived two kill -9 crashes, checkpoint + metrics healthy"
