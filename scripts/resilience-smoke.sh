#!/bin/sh
# resilience-smoke: end-to-end check of the overload-resilience layer against
# live servers. Three scenarios:
#   1. herd — concurrent identical queries against a cold cache with a 400ms
#      execution delay armed: all succeed, the engine run is shared
#      (rdfa_cache_collapsed_total moves), and the next request is a cache hit.
#   2. overflow — one execution slot + one queue position occupied by slow
#      distinct shapes: the next arrival is shed with a structured 503 +
#      Retry-After while the cached fingerprint keeps serving hits.
#   3. degraded — a paging latency SLO flips degraded mode (readyz 503,
#      rdfa_server_degraded=1) and a cache entry made stale by a graph update
#      is still served within the staleness window (X-Cache: stale).
# Needs only sh + curl + grep.
set -eu

PORT="${RESILIENCE_SMOKE_PORT:-18932}"
BASE="http://127.0.0.1:$PORT"
BIN="$(mktemp -d)/rdfanalytics"
LOG="$(mktemp)"
NS='http://example.org/products#'

go build -o "$BIN" ./cmd/rdfanalytics

PID=""
cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    rm -f "$LOG"
    rm -rf "$(dirname "$BIN")"
}
trap cleanup EXIT

wait_up() {
    i=0
    until curl -sf "$BASE/api/stats" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 50 ]; then
            echo "resilience-smoke: server did not come up; log:" >&2
            cat "$LOG" >&2
            exit 1
        fi
        sleep 0.1
    done
}

metric() {
    curl -sf "$BASE/metrics" | grep "^$1" | awk '{s+=$2} END {printf "%d", s}'
}

# ---- boot 1: tight gate, slow engine --------------------------------------
# SLOs are disabled so the injected slowness cannot flip degraded mode — the
# herd and overflow scenarios exercise the normal-mode paths.
RDFA_FAULT='server.sparql.exec=delay:400ms' \
    "$BIN" -addr "127.0.0.1:$PORT" -data products-small \
    -max-concurrent 1 -queue-depth 1 -query-timeout 10s \
    -slo-availability 0 -slo-latency 0 >"$LOG" 2>&1 &
PID=$!
wait_up

QHOT="SELECT ?s WHERE { ?s a <${NS}Laptop> }"

# 1. Herd: 12 concurrent identical queries, cold cache. The 400ms delay keeps
# the leader busy while the rest arrive; they must collapse onto it (the gate
# has one slot — without collapse most of the herd would be shed).
i=0
HERD_PIDS=""
while [ "$i" -lt 12 ]; do
    curl -s -o "/tmp/res_herd.$$.$i" -w '%{http_code}\n' \
        --get --data-urlencode "query=$QHOT" "$BASE/sparql" >>"/tmp/res_herd_codes.$$" &
    HERD_PIDS="$HERD_PIDS $!"
    i=$((i + 1))
done
wait $HERD_PIDS
if grep -qv '^200$' "/tmp/res_herd_codes.$$"; then
    echo "resilience-smoke: FAIL — herd saw non-200 responses: $(sort -u "/tmp/res_herd_codes.$$" | tr '\n' ' ')" >&2
    exit 1
fi
i=1
while [ "$i" -lt 12 ]; do
    if ! cmp -s "/tmp/res_herd.$$.0" "/tmp/res_herd.$$.$i"; then
        echo "resilience-smoke: FAIL — herd responses not byte-identical" >&2
        exit 1
    fi
    i=$((i + 1))
done
rm -f /tmp/res_herd.$$.* "/tmp/res_herd_codes.$$"
COLLAPSED=$(metric 'rdfa_cache_collapsed_total')
FILLS=$(metric 'rdfa_cache_fills_total')
if [ "$COLLAPSED" -lt 1 ] || [ "$FILLS" -lt 1 ]; then
    echo "resilience-smoke: FAIL — herd did not collapse (collapsed=$COLLAPSED fills=$FILLS)" >&2
    exit 1
fi
XCACHE=$(curl -s -D - -o /dev/null --get --data-urlencode "query=$QHOT" "$BASE/sparql" \
    | tr -d '\r' | grep -i '^X-Cache:' | awk '{print $2}')
if [ "$XCACHE" != "hit" ]; then
    echo "resilience-smoke: FAIL — post-herd request X-Cache=$XCACHE, want hit" >&2
    exit 1
fi

# 2. Overflow: occupy the slot and the queue position with slow distinct
# shapes, then assert the third shape is shed 503 + Retry-After while the
# cached fingerprint still serves.
curl -s -o /dev/null --get --data-urlencode "query=SELECT ?s ?m WHERE { ?s <${NS}manufacturer> ?m }" "$BASE/sparql" &
SLOW1=$!
sleep 0.15
curl -s -o /dev/null --get --data-urlencode "query=SELECT ?s ?p WHERE { ?s <${NS}price> ?p }" "$BASE/sparql" &
SLOW2=$!
sleep 0.15
HDRS=$(curl -s -D - -o "/tmp/res_shed.$$" --get \
    --data-urlencode "query=SELECT ?s ?d WHERE { ?s <${NS}releaseDate> ?d }" "$BASE/sparql" | tr -d '\r')
CODE=$(printf '%s\n' "$HDRS" | head -1 | awk '{print $2}')
RETRY=$(printf '%s\n' "$HDRS" | grep -i '^Retry-After:' | awk '{print $2}')
SHED_BODY="$(cat "/tmp/res_shed.$$"; rm -f "/tmp/res_shed.$$")"
if [ "$CODE" != 503 ] || [ -z "$RETRY" ]; then
    echo "resilience-smoke: FAIL — overflow answered $CODE (Retry-After='$RETRY'), want 503 + hint: $SHED_BODY" >&2
    exit 1
fi
if ! printf '%s' "$SHED_BODY" | grep -q '"reason"'; then
    echo "resilience-smoke: FAIL — shed body not structured: $SHED_BODY" >&2
    exit 1
fi
XCACHE=$(curl -s -D - -o /dev/null --get --data-urlencode "query=$QHOT" "$BASE/sparql" \
    | tr -d '\r' | grep -i '^X-Cache:' | awk '{print $2}')
if [ "$XCACHE" != "hit" ]; then
    echo "resilience-smoke: FAIL — cached fingerprint not served during overflow (X-Cache=$XCACHE)" >&2
    exit 1
fi
REJECTED=$(metric 'rdfa_admission_rejected_total')
if [ "$REJECTED" -lt 1 ]; then
    echo "resilience-smoke: FAIL — rdfa_admission_rejected_total=$REJECTED, want > 0" >&2
    exit 1
fi
wait "$SLOW1" "$SLOW2" 2>/dev/null || true
kill "$PID" 2>/dev/null && wait "$PID" 2>/dev/null || true
PID=""

# ---- boot 2: fast sampler + tight latency SLO for the degraded scenario ----
RDFA_FAULT='server.handler.slow=delay:300ms' \
    "$BIN" -addr "127.0.0.1:$PORT" -data products-small \
    -sample-interval 1s -slo-latency 0.95 -slo-latency-threshold 50ms \
    -stale-window 10m >"$LOG" 2>&1 &
PID=$!
wait_up

# Prime the hot entry, then invalidate it with a graph update: the entry is
# now one version stale and only degraded mode may serve it.
curl -sf -o /dev/null --get --data-urlencode "query=$QHOT" "$BASE/sparql"
curl -sf -o /dev/null --data-urlencode \
    "update=PREFIX ex: <$NS> INSERT DATA { ex:resilienceSmoke a ex:Laptop . }" "$BASE/sparql"

# Burn the latency SLO: every request rides the armed 300ms handler delay
# against a 50ms threshold until the page alert flips readyz.
DEGRADED=""
i=0
while [ "$i" -lt 30 ]; do
    curl -s -o /dev/null -H 'X-Fault: slow' "$BASE/api/state"
    CODE=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/readyz")
    if [ "$CODE" = 503 ]; then
        DEGRADED=1
        break
    fi
    i=$((i + 1))
done
if [ -z "$DEGRADED" ]; then
    echo "resilience-smoke: FAIL — paging SLO never degraded /readyz" >&2
    exit 1
fi
if [ "$(metric 'rdfa_server_degraded')" -lt 1 ]; then
    echo "resilience-smoke: FAIL — rdfa_server_degraded gauge not set while paging" >&2
    exit 1
fi
XCACHE=$(curl -s -D - -o /dev/null --get --data-urlencode "query=$QHOT" "$BASE/sparql" \
    | tr -d '\r' | grep -i '^X-Cache:' | awk '{print $2}')
if [ "$XCACHE" != "stale" ]; then
    echo "resilience-smoke: FAIL — degraded serve X-Cache=$XCACHE, want stale" >&2
    exit 1
fi

echo "resilience-smoke: OK — herd collapse, overflow shedding and degraded stale-serving all healthy"
