#!/bin/sh
# obs-smoke: end-to-end check of the telemetry surface. Builds and starts the
# server on a scratch port, drives one SPARQL query and one analytic query
# through it, then asserts /metrics exposes the promised metric families and
# /api/trace returns a span tree. The first /sparql query is fault-injected
# slow (delay on the first exec activation only) so the tail sampler provably
# retains it — the trace-retention section then walks the whole drill-down:
# slow query -> /api/traces search -> span waterfall -> OpenMetrics exemplar
# whose trace ID resolves back through the API. Needs only sh + curl + grep.
set -eu

PORT="${OBS_SMOKE_PORT:-18923}"
BASE="http://127.0.0.1:$PORT"
BIN="$(mktemp -d)/rdfanalytics"
LOG="$(mktemp)"

go build -o "$BIN" ./cmd/rdfanalytics

RDFA_FAULT='server.sparql.exec=delay:300ms@1' \
    "$BIN" -addr "127.0.0.1:$PORT" -data products-small -debug -sample-interval 200ms >"$LOG" 2>&1 &
PID=$!
trap 'kill $PID 2>/dev/null; rm -f "$LOG"; rm -rf "$(dirname "$BIN")"' EXIT

# Wait for the listener.
i=0
until curl -sf "$BASE/api/stats" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "obs-smoke: server did not come up; log:" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.1
done

NS='http://example.org/products#'

# The first /sparql exec hits the armed 300ms delay fault: a known-slow
# execution the tail sampler must retain. Capture its trace ID from the
# response headers.
SLOW_HDRS="$(mktemp)"
curl -sf -D "$SLOW_HDRS" "$BASE/sparql" --data-urlencode \
    "query=SELECT ?s ?p WHERE { ?s ?p <${NS}Laptop> }" >/dev/null
SLOW_TID="$(awk 'tolower($1) == "x-trace-id:" {print $2}' "$SLOW_HDRS" | tr -d '\r')"
rm -f "$SLOW_HDRS"
if [ -z "$SLOW_TID" ]; then
    echo "obs-smoke: FAIL — /sparql response carries no X-Trace-ID" >&2
    exit 1
fi

# One protocol query and one analytic query (click -> G -> Sigma -> run).
curl -sf "$BASE/sparql" --data-urlencode \
    "query=SELECT ?s WHERE { ?s a <${NS}Laptop> } LIMIT 3" >/dev/null
curl -sf -X POST "$BASE/api/click/class" -H 'Content-Type: application/json' \
    -d "{\"class\":\"${NS}Laptop\"}" >/dev/null
curl -sf -X POST "$BASE/api/groupby" -H 'Content-Type: application/json' \
    -d "{\"path\":[{\"p\":\"${NS}manufacturer\"}]}" >/dev/null
curl -sf -X POST "$BASE/api/aggregate" -H 'Content-Type: application/json' \
    -d '{"op":"COUNT"}' >/dev/null
curl -sf -X POST "$BASE/api/run" >/dev/null

sleep 0.5 # at least one sampler tick, so the time-series ring has points

METRICS="$(curl -sf "$BASE/metrics")"
for name in \
    rdfa_http_requests_total \
    rdfa_build_info \
    rdfa_go_heap_alloc_bytes \
    rdfa_go_goroutines \
    rdfa_sampler_ticks_total \
    rdfa_slo_good_total \
    rdfa_slo_events_total \
    rdfa_slo_budget_remaining_ratio \
    rdfa_http_request_seconds_bucket \
    rdfa_http_active_sessions \
    rdfa_http_sessions_created_total \
    rdfa_sparql_query_phase_seconds_bucket \
    rdfa_sparql_exec_seconds_count \
    rdfa_rdf_cardinality_cache_hits_total \
    rdfa_rdf_cardinality_cache_misses_total \
    rdfa_rdf_index_scans_total \
    rdfa_hifun_execute_seconds_count \
    rdfa_core_run_analytics_seconds_count \
    rdfa_facet_compute_seconds_count \
    rdfa_planner_qerror_bucket \
    rdfa_sparql_operator_rows_total \
    rdfa_sparql_operator_seconds_count \
    rdfa_slow_queries_total; do
    if ! printf '%s\n' "$METRICS" | grep -q "^$name"; then
        echo "obs-smoke: FAIL — metric $name missing from /metrics" >&2
        exit 1
    fi
done

TRACE="$(curl -sf "$BASE/api/trace")"
for frag in run_analytics translate exec; do
    if ! printf '%s' "$TRACE" | grep -q "$frag"; then
        echo "obs-smoke: FAIL — /api/trace missing span \"$frag\": $TRACE" >&2
        exit 1
    fi
done

# Trace retention: the fault-injected slow query must be searchable by
# duration, its trace ID must fetch the full span waterfall, and its
# fingerprint must round-trip as a search filter.
SLOW="$(curl -sf "$BASE/api/traces?min_ms=200&kind=sparql")"
if ! printf '%s' "$SLOW" | grep -q "\"id\":\"$SLOW_TID\""; then
    echo "obs-smoke: FAIL — slow query $SLOW_TID not retained by /api/traces?min_ms=200: $SLOW" >&2
    exit 1
fi
DETAIL="$(curl -sf "$BASE/api/traces/$SLOW_TID")"
for frag in spans profile durationMs; do
    if ! printf '%s' "$DETAIL" | grep -q "$frag"; then
        echo "obs-smoke: FAIL — /api/traces/$SLOW_TID missing \"$frag\": $DETAIL" >&2
        exit 1
    fi
done
SLOW_FP="$(printf '%s' "$SLOW" | grep -o '"fingerprint":"[^"]*"' | head -1 | cut -d'"' -f4)"
if [ -z "$SLOW_FP" ]; then
    echo "obs-smoke: FAIL — retained trace has no fingerprint: $SLOW" >&2
    exit 1
fi
if ! curl -sf "$BASE/api/traces?fingerprint=$SLOW_FP" | grep -q "\"id\":\"$SLOW_TID\""; then
    echo "obs-smoke: FAIL — fingerprint filter $SLOW_FP lost trace $SLOW_TID" >&2
    exit 1
fi

# The OpenMetrics exposition (content-negotiated; the default 0.0.4 scrape
# stays exemplar-free) terminates with # EOF and links latency buckets to
# retained traces via exemplars, and any exemplar's trace ID resolves.
OM="$(curl -sf -H 'Accept: application/openmetrics-text; version=1.0.0' "$BASE/metrics")"
if [ "$(printf '%s\n' "$OM" | tail -1)" != "# EOF" ]; then
    echo "obs-smoke: FAIL — OpenMetrics exposition does not end with # EOF" >&2
    exit 1
fi
EX_TID="$(printf '%s\n' "$OM" | grep '^rdfa_http_request_seconds_bucket' |
    grep -o 'trace_id="[^"]*"' | head -1 | cut -d'"' -f2)"
if [ -z "$EX_TID" ]; then
    echo "obs-smoke: FAIL — no exemplar on rdfa_http_request_seconds buckets" >&2
    exit 1
fi
if ! curl -sf "$BASE/api/traces/$EX_TID" >/dev/null; then
    echo "obs-smoke: FAIL — exemplar trace ID $EX_TID does not resolve via /api/traces/{id}" >&2
    exit 1
fi
if printf '%s\n' "$METRICS" | grep -q '# {'; then
    echo "obs-smoke: FAIL — exemplar leaked into the default 0.0.4 /metrics exposition" >&2
    exit 1
fi

# The workload profiler aggregated both query kinds.
WORKLOAD="$(curl -sf "$BASE/api/workload")"
for frag in fingerprints misestimates q_error; do
    if ! printf '%s' "$WORKLOAD" | grep -q "$frag"; then
        echo "obs-smoke: FAIL — /api/workload missing \"$frag\": $WORKLOAD" >&2
        exit 1
    fi
done

# The dashboard renders as one self-contained HTML page: no scripts and no
# external assets (every src/href must stay on this host).
DASH="$(curl -sf "$BASE/debug/dashboard")"
for frag in 'RDF-Analytics dashboard' 'Workload (RED)' 'Plan vs. actual' 'q-error' 'Retained traces'; do
    if ! printf '%s' "$DASH" | grep -q "$frag"; then
        echo "obs-smoke: FAIL — dashboard missing \"$frag\"" >&2
        exit 1
    fi
done
if printf '%s' "$DASH" | grep -q '<script'; then
    echo "obs-smoke: FAIL — dashboard embeds a script" >&2
    exit 1
fi
if printf '%s' "$DASH" | grep -Eq '(src|href)="(https?:)?//'; then
    echo "obs-smoke: FAIL — dashboard references an external asset" >&2
    exit 1
fi

# The sampler's ring buffer serves windowed series with derived rates.
TS="$(curl -sf "$BASE/api/timeseries?series=rdfa_http_requests_total")"
for frag in interval_seconds rdfa_http_requests_total rates; do
    if ! printf '%s' "$TS" | grep -q "$frag"; then
        echo "obs-smoke: FAIL — /api/timeseries missing \"$frag\": $TS" >&2
        exit 1
    fi
done

# The burn-rate evaluator publishes objective statuses and the alert log.
ALERTS="$(curl -sf "$BASE/api/alerts")"
for frag in active recent slos http-availability; do
    if ! printf '%s' "$ALERTS" | grep -q "$frag"; then
        echo "obs-smoke: FAIL — /api/alerts missing \"$frag\": $ALERTS" >&2
        exit 1
    fi
done

# Health probes answer 200 while serving.
for probe in healthz readyz; do
    if ! curl -sf "$BASE/$probe" | grep -q ok; then
        echo "obs-smoke: FAIL — /$probe not ok" >&2
        exit 1
    fi
done

# The dashboard is cache-busted and carries inline SVG sparklines.
if ! curl -sfI "$BASE/debug/dashboard" | grep -qi 'cache-control: no-store'; then
    echo "obs-smoke: FAIL — dashboard missing Cache-Control: no-store" >&2
    exit 1
fi
if ! printf '%s' "$DASH" | grep -q '<svg'; then
    echo "obs-smoke: FAIL — dashboard missing inline SVG sparklines" >&2
    exit 1
fi

# -debug must mount pprof.
curl -sf "$BASE/debug/pprof/cmdline" >/dev/null

echo "obs-smoke: OK — metrics, exemplars, timeseries, alerts, health, trace retention, workload, dashboard and pprof endpoints all healthy"
