#!/bin/sh
# corpus-lint checks the conformance corpus layout before the harness runs:
# every case directory must hold data.ttl, query.rq and exactly one
# expect.{srj,bool,ttl}; stray files and empty categories fail the build.
# (The Go loader enforces the same invariants at test time — the lint exists
# so a malformed case fails fast, with a file-level message, even when
# someone runs only a subset of the tests.)
set -eu

root=internal/conformance/testdata
fail=0
err() { echo "corpus-lint: $*" >&2; fail=1; }

[ -d "$root" ] || { err "missing $root"; exit 1; }

cases=0
for cat in "$root"/*/; do
    [ -d "$cat" ] || continue
    found_case=0
    for dir in "$cat"*/; do
        [ -d "$dir" ] || continue
        found_case=1
        cases=$((cases + 1))
        [ -f "$dir/data.ttl" ] || err "$dir missing data.ttl"
        [ -f "$dir/query.rq" ] || err "$dir missing query.rq"
        expects=0
        for ef in expect.srj expect.bool expect.ttl; do
            [ -f "$dir/$ef" ] && expects=$((expects + 1))
        done
        [ "$expects" -eq 1 ] || err "$dir has $expects expect files, want exactly 1"
        for f in "$dir"*; do
            case "$(basename "$f")" in
                data.ttl|query.rq|expect.srj|expect.bool|expect.ttl|ordered) ;;
                *) err "$dir has unexpected file $(basename "$f")" ;;
            esac
        done
    done
    [ "$found_case" -eq 1 ] || err "category $cat has no cases"
done

min_cases=60
[ "$cases" -ge "$min_cases" ] || err "corpus has $cases cases, want >= $min_cases"

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "corpus-lint: $cases cases OK"
