module rdfanalytics

go 1.24
