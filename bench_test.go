// Package rdfanalytics_test holds the top-level benchmark suite: one
// testing.B benchmark per evaluation artifact of the paper (see the
// experiment index in DESIGN.md). `go test -bench . -benchmem` at the repo
// root reproduces the measurable side of every table and figure;
// cmd/benchrunner prints the same data as formatted tables.
package rdfanalytics_test

import (
	"fmt"
	"testing"

	"rdfanalytics/internal/bench"
	"rdfanalytics/internal/core"
	"rdfanalytics/internal/datagen"
	"rdfanalytics/internal/facet"
	"rdfanalytics/internal/hifun"
	"rdfanalytics/internal/obs"
	"rdfanalytics/internal/rdf"
	"rdfanalytics/internal/sparql"
	"rdfanalytics/internal/userstudy"
	"rdfanalytics/internal/viz"
)

func pe(l string) rdf.Term { return rdf.NewIRI(datagen.ExampleNS + l) }

// BenchmarkFig13Query (E1) — the headline running-example query of Fig 1.3
// over the small products KG.
func BenchmarkFig13Query(b *testing.B) {
	g, ns, err := datagen.Load("products-small", 0)
	if err != nil {
		b.Fatal(err)
	}
	q := sparql.MustParse(`PREFIX ex: <` + ns + `>
SELECT ?m (AVG(?p) AS ?avgprice) WHERE {
  ?s a ex:Laptop. ?s ex:manufacturer ?m. ?m ex:origin ex:USA.
  ?s ex:price ?p. ?s ex:USBPorts ?u. ?s ex:hardDrive ?hd.
  ?hd a ex:SSD. ?hd ex:manufacturer ?hdm. ?hdm ex:origin ?hdmc.
  ?hdmc ex:locatedAt ex:Asia. FILTER (?u >= 2).
  ?s ex:releaseDate ?rd .
  FILTER ( ?rd >= "2021-01-01"^^xsd:date && ?rd <= "2021-12-31"^^xsd:date)
} GROUP BY ?m`)
	b.ResetTimer()
	for b.Loop() {
		if _, err := sparql.ExecSelect(g, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHIFUNTranslation (E2) — the Algorithm 1–4 translator on the
// §4.2.5 worked example.
func BenchmarkHIFUNTranslation(b *testing.B) {
	_, ns, _ := datagen.Load("invoices-small", 0)
	q := hifun.MustParse(
		"(takesPlaceAt & (brand.delivers)/month.hasDate=1, inQuantity/>=2, SUM/>1000)", ns)
	tr := (&hifun.Context{NS: ns}).Translator()
	b.ResetTimer()
	for b.Loop() {
		if _, err := tr.Translate(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFacetComputation (E3) — computing all transition markers
// (Fig 5.4) for the Laptop state at a realistic scale.
func BenchmarkFacetComputation(b *testing.B) {
	g := datagen.Products(datagen.ProductsConfig{Laptops: 1000, Companies: 16, Seed: 1, Materialize: true})
	m := facet.NewModel(g)
	s := m.ClickClass(m.Start(), pe("Laptop"))
	b.ResetTimer()
	for b.Loop() {
		m.ClassFacet(s)
		m.PropertyFacets(s, false)
	}
}

// BenchmarkInteractionExample2 (E4) — the full Example 2 pipeline: clicks →
// HIFUN → SPARQL → answer.
func BenchmarkInteractionExample2(b *testing.B) {
	g, ns, _ := datagen.Load("products-small", 0)
	for b.Loop() {
		s := core.NewSession(g, ns)
		s.ClickClass(pe("Laptop"))
		s.ClickGroupBy(core.GroupSpec{Path: facet.Path{{P: pe("manufacturer")}, {P: pe("origin")}}})
		s.ClickAggregate(core.MeasureSpec{}, hifun.Operation{Op: hifun.OpCount})
		if _, err := s.RunAnalytics(); err != nil {
			b.Fatal(err)
		}
	}
}

// efficiencyCell runs the Table 6.1/6.2 query sweep as sub-benchmarks. The
// dataset is built once per scale (outside the timed loop); each iteration
// times one analytic query execution — the quantity the paper's cells
// report. Peak mode keeps background query workers running for the duration
// of the sub-benchmark.
func efficiencyCell(b *testing.B, peak bool) {
	scales := []bench.Scale{{Name: "10k", Laptops: 1100}, {Name: "50k", Laptops: 5600}}
	for _, scale := range scales {
		g := datagen.Products(datagen.ProductsConfig{
			Laptops: scale.Laptops, Companies: 16, Seed: 1, Materialize: true,
		})
		ctx := hifun.NewContext(g, datagen.ExampleNS).
			WithRoot(rdf.NewIRI(datagen.ExampleNS + "Laptop"))
		var stop func()
		if peak {
			stop = bench.StartWorkers(g, 4)
		}
		for _, spec := range bench.PaperQueries {
			q, err := bench.PrepareQuery(spec, ctx.NS)
			if err != nil {
				b.Fatal(err)
			}
			src, err := ctx.Translator().Translate(q)
			if err != nil {
				b.Fatal(err)
			}
			parsed, err := sparql.Parse(src)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/%s", scale.Name, spec.ID), func(b *testing.B) {
				for b.Loop() {
					if _, err := sparql.ExecSelect(g, parsed); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		if stop != nil {
			stop()
		}
	}
}

// BenchmarkEfficiencyOffPeak (E6) — Table 6.2: the query sweep without
// endpoint contention.
func BenchmarkEfficiencyOffPeak(b *testing.B) { efficiencyCell(b, false) }

// BenchmarkEfficiencyPeak (E5) — Table 6.1: the same sweep under background
// query load.
func BenchmarkEfficiencyPeak(b *testing.B) { efficiencyCell(b, true) }

// BenchmarkOLAPRoundTrip (E7) — roll-up + drill-down cycle on the invoices
// cube (Fig 7.2).
func BenchmarkOLAPRoundTrip(b *testing.B) {
	g, ns, _ := datagen.Load("invoices-small", 0)
	ie := func(l string) rdf.Term { return rdf.NewIRI(ns + l) }
	for b.Loop() {
		s := core.NewSession(g, ns)
		s.ClickClass(ie("Invoice"))
		s.ClickGroupBy(core.GroupSpec{Path: facet.Path{{P: ie("takesPlaceAt")}}})
		s.ClickGroupBy(core.GroupSpec{Path: facet.Path{{P: ie("delivers")}}})
		s.ClickAggregate(core.MeasureSpec{Path: facet.Path{{P: ie("inQuantity")}}},
			hifun.Operation{Op: hifun.OpSum})
		if _, err := s.RunAnalytics(); err != nil {
			b.Fatal(err)
		}
		if _, err := s.RollUp(1); err != nil {
			b.Fatal(err)
		}
		if _, err := s.DrillDown(core.GroupSpec{Path: facet.Path{{P: ie("delivers")}}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUserStudy (E8/E9) — the full simulated study (Figs 8.1–8.2).
func BenchmarkUserStudy(b *testing.B) {
	for b.Loop() {
		if _, err := userstudy.Run(userstudy.Config{UsersPerLevel: 5, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvalStrategy (E10) — the Table 5.1 vs Table 5.2 ablation: one
// state transition evaluated set-wise vs via generated SPARQL.
func BenchmarkEvalStrategy(b *testing.B) {
	g := datagen.Products(datagen.ProductsConfig{Laptops: 1000, Companies: 12, Seed: 1, Materialize: true})
	m := facet.NewModel(g)
	s0 := m.ClickClass(m.Start(), pe("Laptop"))
	path := facet.Path{{P: pe("manufacturer")}, {P: pe("origin")}}
	vals := m.ExpandPath(s0, path)
	if len(vals) == 0 {
		b.Fatal("no expansion values")
	}
	target := vals[0].Value
	b.Run("sets", func(b *testing.B) {
		for b.Loop() {
			m.ClickValue(s0, path, target)
		}
	})
	b.Run("sparql", func(b *testing.B) {
		st := m.ClickValue(s0, path, target)
		for b.Loop() {
			if _, err := st.Int.Answer(g); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCubeReuse — materialized-cube ablation: answering a coarser
// grouping by re-running SPARQL vs rolling up the cached cube (the
// [16]/[51] technique of the survey, applied to the Answer-Frame cache).
func BenchmarkCubeReuse(b *testing.B) {
	g := datagen.Invoices(datagen.InvoicesConfig{Invoices: 5000, Branches: 20, Products: 100, Seed: 1})
	rdf.Materialize(g)
	ns := datagen.InvoicesNS
	ie := func(l string) rdf.Term { return rdf.NewIRI(ns + l) }
	setup := func(fineFirst bool) *core.Session {
		s := core.NewSession(g, ns)
		s.ClickClass(ie("Invoice"))
		s.ClickGroupBy(core.GroupSpec{Path: facet.Path{{P: ie("takesPlaceAt")}}})
		if fineFirst {
			s.ClickGroupBy(core.GroupSpec{Path: facet.Path{{P: ie("delivers")}}})
		}
		s.ClickAggregate(core.MeasureSpec{Path: facet.Path{{P: ie("inQuantity")}}},
			hifun.Operation{Op: hifun.OpSum})
		return s
	}
	b.Run("direct", func(b *testing.B) {
		for b.Loop() {
			s := setup(false)
			if _, err := s.RunAnalytics(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("from-cube", func(b *testing.B) {
		// Timer manipulation inside b.Loop is unsupported; the fine-cube
		// preparation runs once, and each iteration toggles the coarse
		// grouping on a fresh Analytics state but reuses the cube (the
		// per-iteration work is exactly the in-memory roll-up).
		s := setup(true)
		if _, err := s.RunAnalytics(); err != nil { // materializes the fine cube
			b.Fatal(err)
		}
		s.ClickGroupBy(core.GroupSpec{Path: facet.Path{{P: ie("delivers")}}}) // coarsen
		b.ResetTimer()
		for b.Loop() {
			s.InvalidateExactCache()
			ans, err := s.RunAnalytics()
			if err != nil {
				b.Fatal(err)
			}
			if len(ans.Rows) == 0 {
				b.Fatal("empty roll-up")
			}
		}
	})
}

// BenchmarkSpiralAndCity (E11) — the §6.3 visual layouts.
func BenchmarkSpiralAndCity(b *testing.B) {
	items := make([]viz.SpiralItem, 128)
	for i := range items {
		items[i] = viz.SpiralItem{Label: "v", Value: 1000 / float64(i+1)}
	}
	entities := make([]viz.Entity3D, 32)
	for i := range entities {
		entities[i] = viz.Entity3D{
			Label:    fmt.Sprintf("e%d", i),
			Features: map[string]float64{"a": float64(i + 1), "b": float64(2 * (i + 1))},
		}
	}
	b.Run("spiral", func(b *testing.B) {
		for b.Loop() {
			viz.SpiralLayout{}.Layout(items)
		}
	})
	b.Run("city", func(b *testing.B) {
		for b.Loop() {
			viz.BuildCity(entities, viz.CityConfig{})
		}
	})
}

// BenchmarkTraceOverhead measures the cost the telemetry layer adds to query
// evaluation: the same Fig 1.3 query with tracing off (nil Options.Trace,
// span sites reduce to a pointer test) and on (full span tree recorded).
// The acceptance bar for the obs package is <5% on the off case relative to
// the pre-instrumentation engine, and the on case shows the recording cost.
func BenchmarkTraceOverhead(b *testing.B) {
	g, ns, err := datagen.Load("products-small", 0)
	if err != nil {
		b.Fatal(err)
	}
	q := sparql.MustParse(`PREFIX ex: <` + ns + `>
SELECT ?m (AVG(?p) AS ?avgprice) WHERE {
  ?s a ex:Laptop. ?s ex:manufacturer ?m. ?m ex:origin ex:USA.
  ?s ex:price ?p. ?s ex:USBPorts ?u. FILTER (?u >= 2).
} GROUP BY ?m`)
	b.Run("off", func(b *testing.B) {
		for b.Loop() {
			if _, err := sparql.ExecSelectOpts(g, q, sparql.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		for b.Loop() {
			tr := obs.NewTrace("query")
			if _, err := sparql.ExecSelectOpts(g, q, sparql.Options{Trace: tr}); err != nil {
				b.Fatal(err)
			}
			tr.Finish()
		}
	})
}
