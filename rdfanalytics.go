// Package rdfanalytics is the public facade of the RDF-Analytics library —
// a from-scratch Go implementation of "RDF-ANALYTICS: Interactive Analytics
// over RDF Knowledge Graphs" (Papadaki & Tzitzikas, EDBT 2023).
//
// The facade re-exports the types a downstream application needs:
//
//   - Graph, Term, Triple — the RDF data model and store (internal/rdf);
//   - Session — the faceted-analytics interaction model (internal/core):
//     faceted clicks, the G/Σ analytic buttons, Answer Frames, nesting;
//   - Query/Answer — the HIFUN analytics language (internal/hifun);
//   - the SPARQL engine entry points Select, Ask, Construct, Update.
//
// Quick start:
//
//	g, _ := rdfanalytics.LoadTurtleFile("data.ttl")
//	rdfanalytics.Materialize(g)
//	s := rdfanalytics.NewSession(g, "http://example.org/ns#")
//	s.ClickClass(rdfanalytics.IRI("http://example.org/ns#Laptop"))
//	s.ClickGroupBy(rdfanalytics.GroupBySpec("http://example.org/ns#manufacturer"))
//	s.ClickAggregate(rdfanalytics.MeasureOf("http://example.org/ns#price"),
//	    rdfanalytics.Op(rdfanalytics.AVG))
//	ans, _ := s.RunAnalytics()
//	fmt.Print(ans.String())
package rdfanalytics

import (
	"io"
	"os"

	"rdfanalytics/internal/core"
	"rdfanalytics/internal/facet"
	"rdfanalytics/internal/hifun"
	"rdfanalytics/internal/rdf"
	"rdfanalytics/internal/server"
	"rdfanalytics/internal/sparql"
)

// Core data-model types.
type (
	// Graph is an in-memory indexed RDF triple store.
	Graph = rdf.Graph
	// Term is an RDF term (IRI, blank node or literal).
	Term = rdf.Term
	// Triple is one RDF statement.
	Triple = rdf.Triple
	// Session is a faceted-analytics interaction session: the paper's
	// unified model of faceted search and analytics.
	Session = core.Session
	// Path is a property path of facet steps.
	Path = facet.Path
	// PathStep is one hop of a facet path.
	PathStep = facet.PathStep
	// GroupSpec is a G-button selection (grouping attribute).
	GroupSpec = core.GroupSpec
	// MeasureSpec is a Σ-button selection (measure attribute).
	MeasureSpec = core.MeasureSpec
	// Operation is an aggregate operation, optionally result-restricted.
	Operation = hifun.Operation
	// Query is a HIFUN analytic query.
	Query = hifun.Query
	// Answer is a materialized Answer Frame.
	Answer = hifun.Answer
	// Context is a HIFUN analysis context over a graph.
	Context = hifun.Context
	// Results is a SPARQL SELECT result table.
	Results = sparql.Results
)

// Aggregate operations.
const (
	COUNT = hifun.OpCount
	SUM   = hifun.OpSum
	AVG   = hifun.OpAvg
	MIN   = hifun.OpMin
	MAX   = hifun.OpMax
)

// IRI returns an IRI term.
func IRI(iri string) Term { return rdf.NewIRI(iri) }

// Literal returns a plain string literal term.
func Literal(s string) Term { return rdf.NewString(s) }

// Integer returns an xsd:integer literal term.
func Integer(i int64) Term { return rdf.NewInteger(i) }

// NewGraph returns an empty graph.
func NewGraph() *Graph { return rdf.NewGraph() }

// LoadTurtle parses Turtle (or N-Triples) from r into a new graph.
func LoadTurtle(r io.Reader) (*Graph, error) { return rdf.LoadTurtle(r) }

// LoadTurtleFile parses a Turtle (or N-Triples) file into a new graph.
func LoadTurtleFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return rdf.LoadTurtle(f)
}

// Materialize computes the RDFS closure of g in place (subclass/subproperty
// inference, domain/range typing) — the semantics the interaction model
// assumes.
func Materialize(g *Graph) { rdf.Materialize(g) }

// NewSession starts a faceted-analytics session over g. ns is the namespace
// used to resolve attribute names in HIFUN queries.
func NewSession(g *Graph, ns string) *Session { return core.NewSession(g, ns) }

// RestoreSession rebuilds a session over g from a Snapshot().
func RestoreSession(g *Graph, snapshot []byte) (*Session, error) {
	return core.RestoreSession(g, snapshot)
}

// GroupBySpec builds a G-button selection from property IRIs forming a path.
func GroupBySpec(propIRIs ...string) GroupSpec {
	return GroupSpec{Path: pathOf(propIRIs)}
}

// MeasureOf builds a Σ-button selection from property IRIs forming a path.
func MeasureOf(propIRIs ...string) MeasureSpec {
	return MeasureSpec{Path: pathOf(propIRIs)}
}

// Op wraps an aggregate operation name.
func Op(op hifun.AggOp) Operation { return Operation{Op: op} }

func pathOf(propIRIs []string) Path {
	p := make(Path, len(propIRIs))
	for i, iri := range propIRIs {
		p[i] = PathStep{P: rdf.NewIRI(iri)}
	}
	return p
}

// ParseHIFUN parses a textual HIFUN query; bare attribute names resolve
// against ns.
func ParseHIFUN(src, ns string) (*Query, error) { return hifun.Parse(src, ns) }

// NewContext builds a HIFUN analysis context over g.
func NewContext(g *Graph, ns string) *Context { return hifun.NewContext(g, ns) }

// Select evaluates a SPARQL SELECT query against g.
func Select(g *Graph, query string) (*Results, error) { return sparql.Select(g, query) }

// Ask evaluates a SPARQL ASK query against g.
func Ask(g *Graph, query string) (bool, error) { return sparql.Ask(g, query) }

// Construct evaluates a SPARQL CONSTRUCT query against g.
func Construct(g *Graph, query string) (*Graph, error) { return sparql.Construct(g, query) }

// Update applies a SPARQL update (INSERT/DELETE DATA, DELETE WHERE,
// DELETE/INSERT…WHERE, CLEAR) to g, returning (inserted, deleted).
func Update(g *Graph, update string) (int, int, error) {
	res, err := sparql.ExecUpdate(g, update)
	return res.Inserted, res.Deleted, err
}

// NewServer returns an http.Handler serving the browser GUI (/ui), the
// SPARQL protocol endpoint (/sparql) and the interaction JSON API (/api).
func NewServer(g *Graph, ns string) *server.Server { return server.New(g, ns) }
