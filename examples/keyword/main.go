// Keyword-to-analytics: the §5.4.1 starting point — a keyword query over
// the knowledge graph seeds the faceted-analytics session, whose results
// are then analyzed.
//
//	go run ./examples/keyword
package main

import (
	"fmt"
	"log"

	"rdfanalytics/internal/core"
	"rdfanalytics/internal/datagen"
	"rdfanalytics/internal/facet"
	"rdfanalytics/internal/hifun"
	"rdfanalytics/internal/rdf"
	"rdfanalytics/internal/search"
)

func main() {
	g := datagen.Products(datagen.ProductsConfig{
		Laptops: 150, Companies: 10, Seed: 7, Materialize: true,
	})
	ns := datagen.ExampleNS

	// 1. Keyword search over the whole graph.
	idx := search.Build(g)
	hits := idx.Search("laptop", 0)
	fmt.Printf("keyword 'laptop': %d hits; top 5:\n", len(hits))
	for i, h := range hits {
		if i >= 5 {
			break
		}
		fmt.Printf("  %.3f  %s\n", h.Score, h.Resource.LocalName())
	}

	// 2. Keep only instances (entities typed Laptop among the hits).
	laptopClass := rdf.NewIRI(ns + "Laptop")
	var results []rdf.Term
	for _, h := range hits {
		if g.Has(rdf.Triple{S: h.Resource, P: rdf.NewIRI(rdf.RDFType), O: laptopClass}) {
			results = append(results, h.Resource)
		}
	}
	fmt.Printf("\n%d of the hits are Laptop instances — starting a session from them\n", len(results))

	// 3. Seed the interaction model with the result set (Alg. 5 Startup).
	s := core.NewSessionFrom(g, ns, results)

	// 4. Analyze the found laptops: count by manufacturer origin.
	s.ClickGroupBy(core.GroupSpec{Path: facet.Path{
		{P: rdf.NewIRI(ns + "manufacturer")}, {P: rdf.NewIRI(ns + "origin")},
	}})
	s.ClickAggregate(core.MeasureSpec{}, hifun.Operation{Op: hifun.OpCount})
	ans, err := s.RunAnalytics()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncount of found laptops by manufacturer origin:")
	fmt.Print(ans.String())
}
