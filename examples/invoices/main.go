// Invoices walkthrough: the HIFUN tutorial of §2.5 and the translation
// cases of §4.2 executed against the delivery-invoices dataset, including
// a nested (HAVING) analytic query via answer-as-dataset.
//
//	go run ./examples/invoices
package main

import (
	"fmt"
	"log"

	"rdfanalytics/internal/datagen"
	"rdfanalytics/internal/hifun"
)

func main() {
	g := datagen.SmallInvoices()
	ctx := hifun.NewContext(g, datagen.InvoicesNS)

	run := func(title, src string) *hifun.Answer {
		q, err := hifun.Parse(src, ctx.NS)
		if err != nil {
			log.Fatalf("%s: %v", title, err)
		}
		ans, err := ctx.Execute(q)
		if err != nil {
			log.Fatalf("%s: %v", title, err)
		}
		fmt.Printf("\n-- %s --\nHIFUN : %s\n", title, q)
		fmt.Println("SPARQL:\n" + ans.SPARQL)
		fmt.Println("Answer:")
		fmt.Print(ans.String())
		return ans
	}

	// §2.5: the worked example — total quantities per branch (b1=300,
	// b2=600, b3=600).
	run("§2.5 totals per branch", "(takesPlaceAt, inQuantity, SUM)")

	// §4.2.2: restrictions.
	run("§4.2.2 only branch1", "(takesPlaceAt/branch1, inQuantity, SUM)")
	run("§4.2.2 quantities >= 200", "(takesPlaceAt, inQuantity/>=200, SUM)")

	// §4.2.3: result restriction (HAVING).
	run("§4.2.3 branches over 300", "(takesPlaceAt, inQuantity, SUM/>300)")

	// §4.2.4: composition, derived attribute, pairing.
	run("§4.2.4 totals per brand", "(brand.delivers, inQuantity, SUM)")
	run("§4.2.4 totals per month", "(month.hasDate, inQuantity, SUM)")
	run("§4.2.4 totals per branch and product", "(takesPlaceAt & delivers, inQuantity, SUM)")

	// §4.2.5: the full combined example.
	run("§4.2.5 combined",
		"(takesPlaceAt & (brand.delivers)/month.hasDate=1, inQuantity/>=2, SUM/>150)")

	// §5.3.3: nesting — analyze the answer of an analytic query.
	ans := run("outer query for nesting", "(takesPlaceAt, inQuantity, SUM)")
	nested := ans.DatasetContext()
	fmt.Printf("\nanswer loaded as dataset: %d triples, attributes %v\n",
		nested.Graph.Len(), ans.Columns())
	q2 := "(" + ans.GroupCols[0] + ", " + ans.MeasureCols[0] + "/>300, SUM)"
	nq, err := hifun.Parse(q2, nested.NS)
	if err != nil {
		log.Fatal(err)
	}
	nans, err := nested.Execute(nq)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n-- nested query over the answer (acts as HAVING > 300) --\nHIFUN : %s\nAnswer:\n", nq)
	fmt.Print(nans.String())
}
