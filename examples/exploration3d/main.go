// 3D exploration: the §6.3 visualizations — an analytic answer rendered as
// a spiral layout (largest values central) and a statistics dataset
// rendered as the "urban area" 3D scene, written as SVG/JSON files.
//
//	go run ./examples/exploration3d
package main

import (
	"fmt"
	"log"
	"os"

	"rdfanalytics/internal/datagen"
	"rdfanalytics/internal/hifun"
	"rdfanalytics/internal/rdf"
	"rdfanalytics/internal/viz"
)

func main() {
	// 1. An analytic answer over the country statistics: total cases per
	//    country (the COVID-19 dashboard of the paper's system (1a)).
	g := datagen.CountryStats()
	ctx := hifun.NewContext(g, datagen.StatsNS).
		WithRoot(rdf.NewIRI(datagen.StatsNS + "Country"))
	// Group countries by themselves (identity via inverse trick is not
	// needed — each country is its own group through the cases attribute).
	ans, err := ctx.ExecuteText("(ε, cases, SUM)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("total cases across countries:")
	fmt.Print(ans.String())

	// 2. Spiral layout of per-country case counts: power-law-ish values,
	//    exactly the shape [116] targets.
	var items []viz.SpiralItem
	countries := rdf.InstancesOf(g, rdf.NewIRI(datagen.StatsNS+"Country"))
	for _, c := range countries {
		if v, ok := g.Object(c, rdf.NewIRI(datagen.StatsNS+"cases")).Float(); ok {
			items = append(items, viz.SpiralItem{Label: c.LocalName(), Value: v})
		}
	}
	placed := viz.SpiralLayout{}.Layout(items)
	fmt.Printf("\nspiral: %d countries placed; center = %s\n", len(placed), placed[0].Label)
	must(os.WriteFile("countries_spiral.svg", []byte(viz.SpiralSVG(placed, 4)), 0o644))
	fmt.Println("wrote countries_spiral.svg")

	// 3. The 3D city: one building per country, one storey per feature.
	var entities []viz.Entity3D
	for _, c := range countries {
		e := viz.Entity3D{Label: c.LocalName(), Features: map[string]float64{}}
		for _, f := range []string{"cases", "deaths", "recovered"} {
			if v, ok := g.Object(c, rdf.NewIRI(datagen.StatsNS+f)).Float(); ok {
				e.Features[f] = v / 1e6 // millions
			}
		}
		entities = append(entities, e)
	}
	scene := viz.BuildCity(entities, viz.CityConfig{})
	svg := scene.IsometricSVG(3)
	must(os.WriteFile("countries_city.svg", []byte(svg), 0o644))
	fmt.Println("wrote countries_city.svg")
	data, err := scene.JSON()
	must(err)
	must(os.WriteFile("countries_city.json", data, 0o644))
	fmt.Println("wrote countries_city.json (scene for a WebGL client)")
	fmt.Printf("city: %d buildings, features %v\n", len(scene.Buildings), scene.Features)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
