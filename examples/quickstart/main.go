// Quickstart: load an RDF knowledge graph, explore it with faceted search,
// and answer an analytic question with three clicks' worth of API calls.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rdfanalytics/internal/core"
	"rdfanalytics/internal/datagen"
	"rdfanalytics/internal/facet"
	"rdfanalytics/internal/hifun"
	"rdfanalytics/internal/rdf"
)

func main() {
	// 1. A knowledge graph. Any rdf.Graph works; here the paper's running
	//    example (products, companies, countries), with RDFS inference.
	g := datagen.SmallProducts()
	rdf.Materialize(g)
	ns := datagen.ExampleNS
	fmt.Printf("graph: %d triples\n\n", g.Len())

	// 2. Start an interaction session (the state s0 of the model).
	s := core.NewSession(g, ns)
	pe := func(l string) rdf.Term { return rdf.NewIRI(ns + l) }

	// 3. Faceted search: focus on laptops, see the transition markers.
	s.ClickClass(pe("Laptop"))
	fmt.Print(s.ComputeUIState(10, false).RenderText())

	// 4. Analytics: group by manufacturer (the G button), average the price
	//    (the Σ button), run. The session builds the HIFUN query, translates
	//    it to SPARQL and evaluates it.
	s.ClickGroupBy(core.GroupSpec{Path: facet.Path{{P: pe("manufacturer")}}})
	s.ClickAggregate(core.MeasureSpec{Path: facet.Path{{P: pe("price")}}},
		hifun.Operation{Op: hifun.OpAvg})
	ans, err := s.RunAnalytics()
	if err != nil {
		log.Fatal(err)
	}
	q, _ := s.BuildHIFUNQuery()
	fmt.Println("\nHIFUN :", q)
	fmt.Println("SPARQL:\n" + ans.SPARQL)
	fmt.Println("\nAnswer Frame:")
	fmt.Print(ans.String())
}
