// OLAP walkthrough: the Chapter 7 correspondence — the interaction model's
// actions realize roll-up, drill-down, slice, dice and pivot over an
// invoices cube (Fig 7.1–7.2), with the coarser roll-up served from the
// materialized cube cache.
//
//	go run ./examples/olap
package main

import (
	"fmt"
	"log"
	"strings"

	"rdfanalytics/internal/core"
	"rdfanalytics/internal/datagen"
	"rdfanalytics/internal/facet"
	"rdfanalytics/internal/hifun"
	"rdfanalytics/internal/rdf"
)

func main() {
	g := datagen.Invoices(datagen.InvoicesConfig{
		Invoices: 400, Branches: 4, Products: 12, Brands: 3, Seed: 9,
	})
	rdf.Materialize(g)
	ns := datagen.InvoicesNS
	ie := func(l string) rdf.Term { return rdf.NewIRI(ns + l) }
	s := core.NewSession(g, ns)
	s.ClickClass(ie("Invoice"))

	// Build the base cube: SUM(quantity) by (branch, brand).
	s.ClickGroupBy(core.GroupSpec{Path: facet.Path{{P: ie("takesPlaceAt")}}})
	s.ClickGroupBy(core.GroupSpec{Path: facet.Path{{P: ie("delivers")}, {P: ie("brand")}}})
	s.ClickAggregate(core.MeasureSpec{Path: facet.Path{{P: ie("inQuantity")}}},
		hifun.Operation{Op: hifun.OpSum})
	cube := must(s.RunAnalytics())
	fmt.Println("== cube: SUM(quantity) by (branch, brand) ==")
	fmt.Print(cube.String())

	// Pivot (cross-tabulate).
	pt, err := core.Pivot(cube, false, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== pivot ==")
	fmt.Print(pt.String())

	// Roll-up: drop the brand dimension; this is answered from the cached
	// cube, not by re-running SPARQL.
	rolled := must(s.RollUp(1))
	fmt.Println("\n== roll-up to (branch) ==")
	fmt.Print(rolled.String())
	if strings.Contains(rolled.SPARQL, "materialized cube") {
		fmt.Println("   (served from the materialized cube — no SPARQL re-run)")
	}

	// Drill-down: add the month dimension (a derived attribute).
	fine := must(s.DrillDown(core.GroupSpec{Path: facet.Path{{P: ie("hasDate")}}, Derive: "MONTH"}))
	fmt.Printf("\n== drill-down to (branch, month): %d cells ==\n", len(fine.Rows))
	for i, row := range fine.Rows {
		if i >= 6 {
			fmt.Printf("   … %d more rows\n", len(fine.Rows)-i)
			break
		}
		fmt.Printf("   %-10s m%-3s %s\n", row[0].LocalName(), row[1].Value, row[2].Value)
	}

	// Slice: fix branch1, analyze months within it.
	sliced := must(s.Slice(facet.Path{{P: ie("takesPlaceAt")}}, ie("branch1")))
	fmt.Printf("\n== slice branch=branch1: %d cells ==\n", len(sliced.Rows))

	// Dice: restrict to two branches (back at the base dataset first).
	s.Reset()
	s.ClickClass(ie("Invoice"))
	s.ClickGroupBy(core.GroupSpec{Path: facet.Path{{P: ie("takesPlaceAt")}}})
	s.ClickAggregate(core.MeasureSpec{Path: facet.Path{{P: ie("inQuantity")}}},
		hifun.Operation{Op: hifun.OpSum})
	diced := must(s.Dice(facet.Path{{P: ie("takesPlaceAt")}},
		[]rdf.Term{ie("branch1"), ie("branch2")}))
	fmt.Println("\n== dice branches {1,2} ==")
	fmt.Print(diced.String())
}

func must(a *hifun.Answer, err error) *hifun.Answer {
	if err != nil {
		log.Fatal(err)
	}
	return a
}
