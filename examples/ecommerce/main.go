// E-commerce walkthrough: the four interaction examples of §5.1 executed
// end-to-end over a generated product catalog, with SVG charts of the
// answers written to the working directory.
//
//	go run ./examples/ecommerce
package main

import (
	"fmt"
	"log"
	"os"

	"rdfanalytics/internal/core"
	"rdfanalytics/internal/datagen"
	"rdfanalytics/internal/facet"
	"rdfanalytics/internal/hifun"
	"rdfanalytics/internal/rdf"
	"rdfanalytics/internal/viz"
)

func main() {
	// A catalog of 300 laptops across 16 companies and 8 countries.
	g := datagen.Products(datagen.ProductsConfig{
		Laptops: 300, Companies: 16, Seed: 42, Materialize: true,
	})
	ns := datagen.ExampleNS
	pe := func(l string) rdf.Term { return rdf.NewIRI(ns + l) }
	fmt.Printf("catalog: %d triples\n", g.Len())

	// --- Example 1: average price of 2021 laptops with >= 2 USB ports ---
	s := core.NewSession(g, ns)
	s.ClickClass(pe("Laptop"))
	s.ClickRange(facet.Path{{P: pe("releaseDate")}}, ">=", rdf.NewTyped("2021-01-01", rdf.XSDDate))
	s.ClickRange(facet.Path{{P: pe("releaseDate")}}, "<=", rdf.NewTyped("2021-12-31", rdf.XSDDate))
	s.ClickRange(facet.Path{{P: pe("USBPorts")}}, ">=", rdf.NewInteger(2))
	s.ClickAggregate(core.MeasureSpec{Path: facet.Path{{P: pe("price")}}},
		hifun.Operation{Op: hifun.OpAvg})
	ans := mustRun(s)
	fmt.Println("\nExample 1 — AVG price of 2021 laptops with >=2 USB ports:")
	fmt.Print(ans.String())

	// --- Example 2: count of those laptops by manufacturer's country ---
	s.ClickGroupBy(core.GroupSpec{Path: facet.Path{{P: pe("manufacturer")}, {P: pe("origin")}}})
	s.ClickAggregate(core.MeasureSpec{}, hifun.Operation{Op: hifun.OpCount})
	ans = mustRun(s)
	fmt.Println("\nExample 2 — COUNT by manufacturer origin:")
	fmt.Print(ans.String())
	writeChart(ans, "ecommerce_by_origin.svg", "pie")

	// --- Example 3/Fig 6.2: avg+sum+max price by manufacturer and origin ---
	s = core.NewSession(g, ns)
	s.ClickClass(pe("Laptop"))
	s.ClickRange(facet.Path{{P: pe("USBPorts")}}, ">=", rdf.NewInteger(2))
	s.ClickRange(facet.Path{{P: pe("USBPorts")}}, "<=", rdf.NewInteger(4))
	s.ClickGroupBy(core.GroupSpec{Path: facet.Path{{P: pe("manufacturer")}}})
	m := core.MeasureSpec{Path: facet.Path{{P: pe("price")}}}
	s.ClickAggregate(m, hifun.Operation{Op: hifun.OpAvg})
	s.ClickAggregate(m, hifun.Operation{Op: hifun.OpSum})
	s.ClickAggregate(m, hifun.Operation{Op: hifun.OpMax})
	ans = mustRun(s)
	fmt.Println("\nFig 6.2 — AVG, SUM, MAX price by manufacturer (2..4 USB ports):")
	fmt.Print(ans.String())
	writeChart(ans, "ecommerce_prices.svg", "bar")

	// --- Example 4: HAVING via answer-as-dataset nesting ---
	if err := s.LoadAnswerAsDataset(); err != nil {
		log.Fatal(err)
	}
	s.ClickRange(facet.Path{{P: rdf.NewIRI(hifun.AnswerNS + ans.MeasureCols[0])}},
		">", rdf.NewInteger(1200))
	fmt.Printf("\nExample 4 — manufacturers with AVG price > 1200: %d of %d groups\n",
		s.State().Ext.Len(), len(ans.Rows))
	// The nested dataset is itself analyzable: count qualifying groups by
	// nothing (ε) — a second-level analytic query.
	s.ClickAggregate(core.MeasureSpec{}, hifun.Operation{Op: hifun.OpCount})
	nested := mustRun(s)
	fmt.Println("nested COUNT over the HAVING-filtered answer:")
	fmt.Print(nested.String())
}

func mustRun(s *core.Session) *hifun.Answer {
	ans, err := s.RunAnalytics()
	if err != nil {
		log.Fatal(err)
	}
	return ans
}

func writeChart(ans *hifun.Answer, file, kind string) {
	series, err := viz.AnswerSeries(ans, 0)
	if err != nil {
		log.Fatal(err)
	}
	var svg string
	if kind == "pie" {
		svg = viz.PieChartSVG(series, 420)
	} else {
		svg = viz.BarChartSVG(series, 640)
	}
	if err := os.WriteFile(file, []byte(svg), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote", file)
}
