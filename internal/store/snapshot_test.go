package store

import (
	"fmt"
	"sync"
	"testing"

	"rdfanalytics/internal/rdf"
)

func collect(sn *Snapshot, s, p, o rdf.Term) map[rdf.Triple]bool {
	out := make(map[rdf.Triple]bool)
	sn.Match(s, p, o, func(t rdf.Triple) bool {
		out[t] = true
		return true
	})
	return out
}

// TestSnapshotIsolation: a snapshot keeps serving its epoch's state while
// the live graph mutates underneath it.
func TestSnapshotIsolation(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	g := s.Graph()
	a := rdf.Triple{S: iri("a"), P: iri("p"), O: iri("b")}
	b := rdf.Triple{S: iri("b"), P: iri("p"), O: iri("c")}
	g.Add(a)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	g.Add(b)
	sn := s.Snapshot()
	epoch := sn.Epoch

	// Mutate after the snapshot: remove both, add a third.
	c := rdf.Triple{S: iri("c"), P: iri("p"), O: iri("d")}
	g.Remove(a)
	g.Remove(b)
	g.Add(c)

	if !sn.Has(a) || !sn.Has(b) || sn.Has(c) {
		t.Fatalf("snapshot sees post-epoch state: Has(a)=%v Has(b)=%v Has(c)=%v", sn.Has(a), sn.Has(b), sn.Has(c))
	}
	if sn.Epoch != epoch {
		t.Fatal("snapshot epoch changed")
	}
	if sn.Len() != 2 {
		t.Fatalf("snapshot Len = %d, want 2", sn.Len())
	}
	got := collect(sn, rdf.Any, rdf.Any, rdf.Any)
	if len(got) != 2 || !got[a] || !got[b] {
		t.Fatalf("snapshot Match returned %v", got)
	}
	// A fresh snapshot sees the new state.
	sn2 := s.Snapshot()
	if sn2.Has(a) || sn2.Has(b) || !sn2.Has(c) {
		t.Fatal("fresh snapshot does not see current state")
	}
	if sn2.Epoch <= epoch {
		t.Fatalf("fresh snapshot epoch %d not newer than %d", sn2.Epoch, epoch)
	}
	s.Close()
}

// TestSnapshotOverlaySemantics: deletes of segment triples, re-adds after
// delete, and adds shadowed by later deletes all resolve by record order.
func TestSnapshotOverlaySemantics(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	g := s.Graph()
	kept := rdf.Triple{S: iri("kept"), P: iri("p"), O: iri("x")}
	readded := rdf.Triple{S: iri("readded"), P: iri("p"), O: iri("x")}
	dropped := rdf.Triple{S: iri("dropped"), P: iri("p"), O: iri("x")}
	g.Add(kept)
	g.Add(readded)
	g.Add(dropped)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	flicker := rdf.Triple{S: iri("flicker"), P: iri("p"), O: iri("x")}
	g.Remove(readded)
	g.Add(readded) // delete then re-add of a segment triple
	g.Remove(dropped)
	g.Add(flicker)
	g.Remove(flicker) // add then delete, tail-only

	sn := s.Snapshot()
	want := map[rdf.Triple]bool{kept: true, readded: true}
	if got := collect(sn, rdf.Any, rdf.Any, rdf.Any); len(got) != len(want) || !got[kept] || !got[readded] {
		t.Fatalf("Match = %v, want %v", got, want)
	}
	if sn.Len() != 2 {
		t.Fatalf("Len = %d, want 2", sn.Len())
	}
	for tr, present := range map[rdf.Triple]bool{kept: true, readded: true, dropped: false, flicker: false} {
		if sn.Has(tr) != present {
			t.Errorf("Has(%v) = %v, want %v", tr, sn.Has(tr), present)
		}
	}
	// Pattern-restricted match against the overlay.
	got := collect(sn, iri("readded"), rdf.Any, rdf.Any)
	if len(got) != 1 || !got[readded] {
		t.Fatalf("pattern match = %v", got)
	}
	s.Close()
}

// TestSnapshotBeforeFirstCheckpoint: with no segment yet, snapshots are
// pure tail overlays.
func TestSnapshotBeforeFirstCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	a := rdf.Triple{S: iri("a"), P: iri("p"), O: iri("b")}
	s.Graph().Add(a)
	sn := s.Snapshot()
	if !sn.Has(a) || sn.Len() != 1 {
		t.Fatalf("segmentless snapshot: Has=%v Len=%d", sn.Has(a), sn.Len())
	}
	if got := collect(sn, rdf.Any, iri("p"), rdf.Any); len(got) != 1 || !got[a] {
		t.Fatalf("segmentless Match = %v", got)
	}
	s.Close()
}

// TestSnapshotConcurrentReaders hammers snapshots from readers while a
// writer mutates and checkpoints — meant for -race. The workload only adds,
// so each reader's successive snapshots must never lose triples and epochs
// must never run backwards.
func TestSnapshotConcurrentReaders(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	g := s.Graph()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 4)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last, lastEpoch := 0, uint64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				sn := s.Snapshot()
				n := 0
				sn.Match(rdf.Any, iri("p"), rdf.Any, func(rdf.Triple) bool {
					n++
					return true
				})
				if n < last || sn.Epoch < lastEpoch {
					select {
					case errs <- fmt.Errorf("snapshot went backwards: %d→%d triples, epoch %d→%d", last, n, lastEpoch, sn.Epoch):
					default:
					}
					return
				}
				last, lastEpoch = n, sn.Epoch
			}
		}()
	}
	for i := 0; i < 300; i++ {
		g.Add(rdf.Triple{S: iri("s"), P: iri("p"), O: rdf.NewInteger(int64(i))})
		if i%50 == 0 {
			if err := s.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	s.Close()
}
