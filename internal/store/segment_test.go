package store

import (
	"bytes"
	"os"
	"testing"

	"rdfanalytics/internal/rdf"
)

func buildSnap(t *testing.T, g *rdf.Graph) ([]byte, uint64) {
	t.Helper()
	var buf bytes.Buffer
	epoch, err := g.SnapshotBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), epoch
}

func TestSegmentRoundTrip(t *testing.T) {
	g := rdf.MustLoadTurtle(`@prefix ex: <http://e/> .
ex:a ex:p ex:b ; ex:q "v" .
ex:b ex:p ex:c .
ex:c ex:p ex:a .`)
	snap, epoch := buildSnap(t, g)
	dir := t.TempDir()
	seg, err := writeSegment(dir, epoch, snap)
	if err != nil {
		t.Fatal(err)
	}
	if seg.Epoch != epoch || seg.Triples() != g.Len() {
		t.Fatalf("built segment epoch %d / %d triples, want %d / %d", seg.Epoch, seg.Triples(), epoch, g.Len())
	}
	loaded, raw, err := loadSegment(seg.Path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, snap) {
		t.Fatal("embedded snapshot bytes differ")
	}
	if loaded.Epoch != epoch || loaded.Triples() != g.Len() {
		t.Fatalf("loaded segment epoch %d / %d triples", loaded.Epoch, loaded.Triples())
	}
	for _, tr := range g.Triples() {
		if !loaded.Image().Has(tr) {
			t.Errorf("segment image lost %v", tr)
		}
	}
}

// TestSegmentScan checks all three key sections: sorted order, full
// coverage, and lower-bound positioning.
func TestSegmentScan(t *testing.T) {
	g := rdf.NewGraph()
	for i := 0; i < 20; i++ {
		g.Add(rdf.Triple{
			S: rdf.NewIRI("http://e/s" + string(rune('a'+i%5))),
			P: rdf.NewIRI("http://e/p" + string(rune('a'+i%3))),
			O: rdf.NewInteger(int64(i)),
		})
	}
	snap, epoch := buildSnap(t, g)
	seg, err := writeSegment(t.TempDir(), epoch, snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, order := range []KeyOrder{SPO, POS, OSP} {
		var prev [3]uint32
		n := 0
		first := true
		seg.Scan(order, 0, 0, 0, func(a, b, c uint32) bool {
			k := [3]uint32{a, b, c}
			if !first && !lessKey(prev, k) {
				t.Fatalf("order %d: keys not strictly ascending: %v then %v", order, prev, k)
			}
			prev, first = k, false
			n++
			return true
		})
		if n != g.Len() {
			t.Fatalf("order %d: scanned %d keys, want %d", order, n, g.Len())
		}
	}
	// Lower bound: scanning from the 10th SPO key yields exactly the rest.
	var keys [][3]uint32
	seg.Scan(SPO, 0, 0, 0, func(a, b, c uint32) bool {
		keys = append(keys, [3]uint32{a, b, c})
		return true
	})
	mid := keys[10]
	rest := 0
	seg.Scan(SPO, mid[0], mid[1], mid[2], func(a, b, c uint32) bool {
		rest++
		return true
	})
	if rest != len(keys)-10 {
		t.Fatalf("lower-bound scan returned %d keys, want %d", rest, len(keys)-10)
	}
	// Early stop.
	n := 0
	seg.Scan(SPO, 0, 0, 0, func(a, b, c uint32) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early-stopped scan visited %d keys", n)
	}
}

func lessKey(a, b [3]uint32) bool {
	for i := 0; i < 3; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// TestSegmentRejectsCorruption flips every 97th byte in turn: the CRC (or a
// structural check) must catch each one.
func TestSegmentRejectsCorruption(t *testing.T) {
	g := rdf.MustLoadTurtle(`<http://e/s> <http://e/p> <http://e/o> .`)
	snap, epoch := buildSnap(t, g)
	dir := t.TempDir()
	seg, err := writeSegment(dir, epoch, snap)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(seg.Path)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(raw); off += 7 {
		bad := append([]byte{}, raw...)
		bad[off] ^= 0xFF
		path := dir + "/corrupt.seg"
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := loadSegment(path); err == nil {
			t.Fatalf("corruption at offset %d went undetected", off)
		}
	}
	// Truncations must be rejected too.
	for _, cut := range []int{0, 5, 12, len(raw) / 2, len(raw) - 1} {
		path := dir + "/trunc.seg"
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := loadSegment(path); err == nil {
			t.Fatalf("truncation at %d went undetected", cut)
		}
	}
}
