package store

import (
	"bytes"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"rdfanalytics/internal/obs"
	"rdfanalytics/internal/rdf"
)

// Latency histograms for the store's three stall-prone operations. The
// families are registered at package init so scrapers always see them;
// checkpoint stalls and fsync outliers show up in the TSDB and — via the
// spans recorded by CheckpointTraced — in retained traces.
var (
	fsyncSeconds      = obs.Default.Histogram("rdfa_store_fsync_seconds", nil)
	checkpointSeconds = obs.Default.Histogram("rdfa_store_checkpoint_seconds", nil)
	replaySeconds     = obs.Default.Histogram("rdfa_store_replay_seconds", nil)
)

// Options configures Open.
type Options struct {
	// Dir is the data directory; created if absent.
	Dir string
	// Sync is the WAL durability mode (default SyncBatch).
	Sync SyncMode
	// CheckpointEvery, when positive, starts a background goroutine that
	// compacts the WAL into a fresh segment at that interval (skipping
	// intervals with no new records).
	CheckpointEvery time.Duration
}

// Store binds an rdf.Graph to a data directory: every effective mutation of
// the graph is journaled to the WAL before it hits the in-memory indexes,
// checkpoints fold the log into immutable segment files, and Open rebuilds
// the exact pre-crash graph from segment + log. Lock ordering is strictly
// graph.mu → Store.mu (the journal hook runs under the graph write lock and
// takes s.mu; nothing holding s.mu ever calls a locking graph method).
type Store struct {
	dir  string
	mode SyncMode

	g *rdf.Graph

	// cpMu serializes Checkpoint end to end: it is reachable concurrently
	// from the HTTP trigger and the background loop, and two overlapping
	// runs could otherwise complete out of epoch order — installing the
	// older segment last and deleting the newer one, which loses every
	// record between the two epochs. Always acquired before mu, never
	// while holding it.
	cpMu sync.Mutex

	mu  sync.Mutex
	seg *Segment // nil until the first checkpoint
	wal *wal
	// tail holds the records journaled since the current segment's epoch —
	// exactly the WAL's surviving contents. MVCC snapshots fold it over the
	// segment image; checkpoints carry the still-newer suffix forward.
	tail []record

	// counters for Stats; guarded by mu.
	walRecordsTotal  int64
	walBytesTotal    int64
	checkpoints      int64
	checkpointErrors int64
	lastCheckpoint   time.Duration
	replayTime       time.Duration
	replayRecords    int
	replayDiscarded  int64
	// journalDropped counts mutations the WAL failed to journal while they
	// still applied in memory (the hook cannot abort the graph mutation).
	// While any such drop since the last checkpoint cut is outstanding,
	// diverged is true: the tail — and so Snapshot() views — lags the live
	// graph until a successful checkpoint folds the full graph into a
	// segment and reconverges the on-disk state.
	journalDropped int64
	diverged       bool

	stop chan struct{}
	done chan struct{}
}

// Open loads (or initializes) the store in opts.Dir: the newest intact
// segment is decoded, every WAL with records newer than its epoch is
// replayed on top (torn tails truncated, stale records skipped), and the
// graph's journal hook is attached so all further mutations are logged.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("store: no data directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: opts.Dir, mode: opts.Sync}
	start := time.Now()

	segPaths, walPaths, err := listFiles(opts.Dir)
	if err != nil {
		return nil, err
	}
	// Newest loadable segment wins, but never silently: a file under its
	// final segment name was fully synced once (tmp+rename+dirsync), so a
	// load failure means on-disk corruption. Skipped segments are logged,
	// and falling back past one is only accepted when the surviving WALs
	// reach back to the chosen epoch (checked after replay below) — the
	// WALs created after the corrupt checkpoint only hold records above its
	// epoch, so without that coverage every record in between is gone and
	// Open must refuse rather than boot a silently partial graph.
	var snap []byte
	var skipped []string
	for i := len(segPaths) - 1; i >= 0; i-- {
		seg, raw, err := loadSegment(segPaths[i])
		if err != nil {
			slog.Error("store: segment failed to load", "path", segPaths[i], "error", err)
			skipped = append(skipped, filepath.Base(segPaths[i]))
			continue
		}
		s.seg = seg
		snap = raw
		break
	}
	var epoch uint64
	if s.seg != nil {
		epoch = s.seg.Epoch
		// Materialize the live graph by decoding the snapshot a second
		// time: the segment's own image must stay immutable for MVCC
		// readers, and decoding preserves every dictionary ID.
		g, err := rdf.ReadBinary(bytes.NewReader(snap))
		if err != nil {
			return nil, err
		}
		s.g = g
	} else {
		s.g = rdf.NewGraph()
	}
	s.g.SetVersion(epoch)

	// Replay WALs in epoch order, applying only records strictly newer than
	// everything applied so far. Journaled versions are unique and strictly
	// increasing (one per effective mutation), so this filter makes replay
	// idempotent across every crash shape: records at or below the segment
	// epoch are inside the segment, and a crash mid-checkpoint — which
	// leaves the old WAL plus a fresh WAL holding copies of its newest
	// records — replays each mutation exactly once, in order.
	maxVersion := epoch
	covered := false // does some WAL reach back to the chosen epoch?
	for _, path := range walPaths {
		base, recs, discarded, err := replayWAL(path)
		if err != nil {
			return nil, err
		}
		if base <= epoch {
			covered = true
		}
		s.replayDiscarded += discarded
		for _, rec := range recs {
			if rec.version <= maxVersion {
				continue
			}
			applyRecord(s.g, rec)
			maxVersion = rec.version
			s.tail = append(s.tail, rec)
			s.replayRecords++
		}
	}
	if len(skipped) > 0 {
		// A segment newer than the one loaded could not be read. A WAL
		// based at (or below) the loaded epoch holds every record since it,
		// so replay just rebuilt the full state; without one there is an
		// unrecoverable gap between the loaded epoch and the corrupt
		// segment's, and refusing beats serving a partial graph.
		if !covered {
			return nil, fmt.Errorf("store: segment(s) %v failed to load and no WAL reaches back to epoch %d — records in the gap are unrecoverable (restore the segment file, or delete it to accept the loss)", skipped, epoch)
		}
		slog.Warn("store: recovered past unloadable segment(s) via older segment and WAL replay", "skipped", skipped, "epoch", epoch, "replayed", s.replayRecords)
	}
	// Restore a monotonic version counter: replayed mutations bumped the
	// graph's own counter from the epoch, but a skipped no-op (idempotent
	// suffix) would leave it behind the journaled high-water mark.
	if s.g.Version() < maxVersion {
		s.g.SetVersion(maxVersion)
	}

	// Pick the WAL to continue on. A single log (the normal case) is
	// appended to in place. Multiple logs mean a crash interrupted a
	// checkpoint's WAL swap: no single file holds the whole tail, so the
	// tail is consolidated into a fresh log (tmp + rename, so the old logs
	// stay authoritative until the new one is durable) before the old ones
	// are removed.
	switch {
	case len(walPaths) == 1:
		w, err := openWALForAppend(walPaths[0], opts.Sync)
		if err != nil {
			return nil, err
		}
		s.wal = w
	case len(walPaths) > 1:
		w, err := consolidateWALs(opts.Dir, epoch, opts.Sync, s.tail, walPaths)
		if err != nil {
			return nil, err
		}
		s.wal = w
	default:
		w, err := createWAL(opts.Dir, epoch, opts.Sync)
		if err != nil {
			return nil, err
		}
		s.wal = w
	}
	s.replayTime = time.Since(start)
	replaySeconds.Observe(s.replayTime.Seconds())

	s.g.SetJournal(s.journal)
	if opts.CheckpointEvery > 0 {
		s.stop = make(chan struct{})
		s.done = make(chan struct{})
		go s.checkpointLoop(opts.CheckpointEvery)
	}
	return s, nil
}

func applyRecord(g *rdf.Graph, rec record) {
	if rec.op == rdf.JournalAdd {
		g.Add(rec.t)
	} else {
		g.Remove(rec.t)
	}
}

func listFiles(dir string) (segs, wals []string, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "segment-") && strings.HasSuffix(name, ".seg"):
			segs = append(segs, filepath.Join(dir, name))
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			wals = append(wals, filepath.Join(dir, name))
		case strings.HasSuffix(name, ".tmp"):
			// leftover from a crash mid-checkpoint; never installed
			os.Remove(filepath.Join(dir, name))
		}
	}
	// Hex-padded epochs make lexicographic order epoch order.
	sort.Strings(segs)
	sort.Strings(wals)
	return segs, wals, nil
}

// Graph returns the live graph the store journals for.
func (s *Store) Graph() *rdf.Graph { return s.g }

// Empty reports whether the store holds no data at all — a fresh directory
// awaiting Bootstrap.
func (s *Store) Empty() bool {
	// Lock order is graph.mu → Store.mu, so read the graph before taking
	// s.mu rather than under it.
	empty := s.g.Len() == 0
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seg == nil && len(s.tail) == 0 && empty
}

// journal is the rdf.Graph write-ahead hook. It runs under the graph write
// lock, before the mutation is applied, and must not call back into the
// graph.
func (s *Store) journal(op rdf.JournalOp, t rdf.Triple, version uint64) {
	rec := record{version: version, op: op, t: t}
	s.mu.Lock()
	defer s.mu.Unlock()
	before := s.wal.bytes
	if err := s.wal.append(rec); err != nil {
		// The error is sticky in the WAL; Sync (the ack barrier) will
		// surface it, so the update can't be acknowledged as durable. But
		// the in-memory mutation still applies (this hook cannot abort
		// it), so from here until a successful checkpoint the live graph
		// holds records the tail is missing: Snapshot() views lag it, and
		// only the next segment — a full image of the live graph — makes
		// the dropped mutation durable and reconverges state. Record that
		// divergence so operators see it (Stats.Diverged, the
		// rdfa_store_journal_dropped_total counter) instead of a silent
		// gap.
		if !s.diverged {
			slog.Error("store: WAL append failed; live graph diverges from the journal until the next checkpoint", "error", err)
		}
		s.diverged = true
		s.journalDropped++
		return
	}
	s.tail = append(s.tail, rec)
	s.walRecordsTotal++
	// Cumulative across WAL swaps, so the exported counter is monotonic.
	s.walBytesTotal += s.wal.bytes - before
}

// Sync is the group-commit barrier: it flushes and (unless SyncOff) fsyncs
// the WAL. Callers acknowledge updates only after Sync returns nil.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wal.sync()
}

// Bootstrap adopts an already-populated graph (e.g. freshly parsed Turtle)
// as the store's graph, writes the first checkpoint, and attaches the
// journal. Only valid on an Empty store.
func (s *Store) Bootstrap(g *rdf.Graph) error {
	if !s.Empty() {
		return fmt.Errorf("store: Bootstrap on a non-empty store")
	}
	s.g.SetJournal(nil)
	s.g = g
	if err := s.Checkpoint(); err != nil {
		return err
	}
	s.g.SetJournal(s.journal)
	return nil
}

// Checkpoint compacts the store: snapshot the live graph (atomically with
// its version, under the graph read lock only), build and install a segment
// file at that epoch, then swap in a fresh WAL carrying just the records
// newer than the epoch. Readers and writers keep running throughout; only
// the final swap holds s.mu. Checkpoints are serialized by cpMu — the HTTP
// trigger and the background loop may race, and overlapping runs could
// otherwise install segments out of epoch order, losing every record
// between the two epochs.
func (s *Store) Checkpoint() error { return s.CheckpointTraced(nil) }

// CheckpointTraced is Checkpoint recording its phases — snapshot encode,
// segment write, WAL swap — as child spans of parent (nil parent skips the
// spans; the duration histogram is observed either way).
func (s *Store) CheckpointTraced(parent *obs.Span) error {
	s.cpMu.Lock()
	defer s.cpMu.Unlock()
	start := time.Now()
	err := s.checkpoint(parent)
	checkpointSeconds.Observe(time.Since(start).Seconds())
	if err != nil {
		s.mu.Lock()
		s.checkpointErrors++
		s.mu.Unlock()
		return err
	}
	return nil
}

func (s *Store) checkpoint(parent *obs.Span) error {
	start := time.Now()
	s.mu.Lock()
	var curEpoch uint64
	hadSeg := s.seg != nil
	if hadSeg {
		curEpoch = s.seg.Epoch
	}
	// Drops counted before the snapshot cut belong to versions <= the cut
	// epoch, so the new segment contains them; if no further drop happens
	// before the swap, the store is reconverged.
	droppedAtCut := s.journalDropped
	s.mu.Unlock()

	snapSpan := parent.StartChild("snapshot_encode")
	var buf bytes.Buffer
	epoch, err := s.g.SnapshotBinary(&buf)
	if snapSpan != nil {
		snapSpan.SetAttr("bytes", buf.Len())
		snapSpan.Finish()
	}
	if err != nil {
		return err
	}
	// Nothing effective happened since the current segment was cut: skip.
	// Re-running at the same epoch would gain no compaction and would
	// O_TRUNC the live WAL file (same epoch → same path) under the old
	// handle. curEpoch cannot change concurrently — only checkpoints
	// install segments, and cpMu serializes them.
	if hadSeg && epoch <= curEpoch {
		parent.SetAttr("skipped", "no_new_records")
		return nil
	}
	segSpan := parent.StartChild("segment_write")
	seg, err := writeSegment(s.dir, epoch, buf.Bytes())
	segSpan.Finish()
	if err != nil {
		return err
	}

	swapSpan := parent.StartChild("wal_swap")
	defer swapSpan.Finish()
	s.mu.Lock()
	defer s.mu.Unlock()
	// cpMu makes an epoch regression impossible; refuse the install anyway
	// rather than ever swap a newer segment out for an older one.
	if s.seg != nil && seg.Epoch <= s.seg.Epoch {
		if seg.Path != s.seg.Path {
			os.Remove(seg.Path)
		}
		return fmt.Errorf("store: refusing to install segment at epoch %d over current epoch %d", seg.Epoch, s.seg.Epoch)
	}
	// Records newer than the epoch arrived after the snapshot was cut;
	// they survive into the fresh WAL. Everything else is inside the
	// segment now.
	var survivors []record
	for _, rec := range s.tail {
		if rec.version > epoch {
			survivors = append(survivors, rec)
		}
	}
	// Durability ordering: the old WAL is synced before being retired, so
	// no acknowledged record is ever only in volatile buffers while its
	// file is replaced. A WAL already broken by a sticky I/O error can't
	// sync — but everything it holds at or below the epoch is inside the
	// just-built segment and the survivors are re-appended from memory, so
	// completing the swap is exactly what restores durability; abandoning
	// it would pin the store to the broken log forever.
	if err := s.wal.sync(); err != nil {
		slog.Warn("store: retiring a WAL that failed to sync; the new segment supersedes its records", "error", err)
	}
	nw, err := createWAL(s.dir, epoch, s.mode)
	if err != nil {
		return err
	}
	for _, rec := range survivors {
		if err := nw.append(rec); err != nil {
			nw.close()
			os.Remove(nw.path)
			return err
		}
	}
	if err := nw.sync(); err != nil {
		nw.close()
		os.Remove(nw.path)
		return err
	}
	old := s.wal
	oldSeg := s.seg
	s.wal = nw
	s.seg = seg
	s.tail = survivors
	old.close()
	if old.path != nw.path {
		os.Remove(old.path)
	}
	if oldSeg != nil && oldSeg.Path != seg.Path {
		os.Remove(oldSeg.Path)
	}
	if s.journalDropped == droppedAtCut {
		// Every dropped record predates the cut and is inside the new
		// segment; tail, WAL and graph agree again.
		s.diverged = false
	}
	s.checkpoints++
	s.lastCheckpoint = time.Since(start)
	return nil
}

func (s *Store) checkpointLoop(every time.Duration) {
	defer close(s.done)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.mu.Lock()
			// diverged counts as dirty: the tail is empty of the dropped
			// records, and only a checkpoint makes them durable again.
			dirty := len(s.tail) > 0 || s.seg == nil || s.diverged
			s.mu.Unlock()
			if dirty {
				if err := s.Checkpoint(); err != nil {
					// Surfaced, not swallowed: a persistently failing
					// checkpoint (disk full, …) otherwise grows the WAL
					// without bound with no operator signal. The error
					// also increments Stats.CheckpointErrors
					// (rdfa_store_checkpoint_errors_total).
					slog.Error("store: background checkpoint failed; retrying next interval", "error", err)
				}
			}
		}
	}
}

// Close stops the background checkpointer, syncs and closes the WAL. The
// graph stays usable in memory but is no longer journaled.
func (s *Store) Close() error {
	if s.stop != nil {
		close(s.stop)
		<-s.done
		s.stop = nil
	}
	s.g.SetJournal(nil)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wal.close()
}

// Stats is a point-in-time view of the store for metrics export.
type Stats struct {
	Epoch            uint64
	Segments         int
	SegmentTriples   int
	TailRecords      int
	WALRecordsTotal  int64
	WALBytesTotal    int64
	Checkpoints      int64
	CheckpointErrors int64
	LastCheckpoint   time.Duration
	ReplayTime       time.Duration
	ReplayRecords    int
	ReplayDiscarded  int64
	// JournalDropped counts mutations the WAL failed to journal; Diverged
	// is true while any of them is not yet covered by a checkpoint, i.e.
	// the live graph is ahead of tail-backed Snapshot() views.
	JournalDropped int64
	Diverged       bool
}

func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		TailRecords:      len(s.tail),
		WALRecordsTotal:  s.walRecordsTotal,
		WALBytesTotal:    s.walBytesTotal,
		Checkpoints:      s.checkpoints,
		CheckpointErrors: s.checkpointErrors,
		LastCheckpoint:   s.lastCheckpoint,
		ReplayTime:       s.replayTime,
		ReplayRecords:    s.replayRecords,
		ReplayDiscarded:  s.replayDiscarded,
		JournalDropped:   s.journalDropped,
		Diverged:         s.diverged,
	}
	if s.seg != nil {
		st.Epoch = s.seg.Epoch
		st.Segments = 1
		st.SegmentTriples = s.seg.Triples()
	}
	return st
}
