package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"rdfanalytics/internal/rdf"
)

// Options configures Open.
type Options struct {
	// Dir is the data directory; created if absent.
	Dir string
	// Sync is the WAL durability mode (default SyncBatch).
	Sync SyncMode
	// CheckpointEvery, when positive, starts a background goroutine that
	// compacts the WAL into a fresh segment at that interval (skipping
	// intervals with no new records).
	CheckpointEvery time.Duration
}

// Store binds an rdf.Graph to a data directory: every effective mutation of
// the graph is journaled to the WAL before it hits the in-memory indexes,
// checkpoints fold the log into immutable segment files, and Open rebuilds
// the exact pre-crash graph from segment + log. Lock ordering is strictly
// graph.mu → Store.mu (the journal hook runs under the graph write lock and
// takes s.mu; nothing holding s.mu ever calls a locking graph method).
type Store struct {
	dir  string
	mode SyncMode

	g *rdf.Graph

	mu  sync.Mutex
	seg *Segment // nil until the first checkpoint
	wal *wal
	// tail holds the records journaled since the current segment's epoch —
	// exactly the WAL's surviving contents. MVCC snapshots fold it over the
	// segment image; checkpoints carry the still-newer suffix forward.
	tail []record

	// counters for Stats; guarded by mu.
	walRecordsTotal int64
	walBytesTotal   int64
	checkpoints     int64
	lastCheckpoint  time.Duration
	replayTime      time.Duration
	replayRecords   int
	replayDiscarded int64

	stop chan struct{}
	done chan struct{}
}

// Open loads (or initializes) the store in opts.Dir: the newest intact
// segment is decoded, every WAL with records newer than its epoch is
// replayed on top (torn tails truncated, stale records skipped), and the
// graph's journal hook is attached so all further mutations are logged.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("store: no data directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: opts.Dir, mode: opts.Sync}
	start := time.Now()

	segPaths, walPaths, err := listFiles(opts.Dir)
	if err != nil {
		return nil, err
	}
	// Newest loadable segment wins; a corrupt newer one (crash mid-install
	// is excluded by the tmp+rename protocol, but disks rot) falls back to
	// the previous.
	var snap []byte
	for i := len(segPaths) - 1; i >= 0; i-- {
		seg, raw, err := loadSegment(segPaths[i])
		if err == nil {
			s.seg = seg
			snap = raw
			break
		}
	}
	var epoch uint64
	if s.seg != nil {
		epoch = s.seg.Epoch
		// Materialize the live graph by decoding the snapshot a second
		// time: the segment's own image must stay immutable for MVCC
		// readers, and decoding preserves every dictionary ID.
		g, err := rdf.ReadBinary(bytes.NewReader(snap))
		if err != nil {
			return nil, err
		}
		s.g = g
	} else {
		s.g = rdf.NewGraph()
	}
	s.g.SetVersion(epoch)

	// Replay WALs in epoch order, applying only records strictly newer than
	// everything applied so far. Journaled versions are unique and strictly
	// increasing (one per effective mutation), so this filter makes replay
	// idempotent across every crash shape: records at or below the segment
	// epoch are inside the segment, and a crash mid-checkpoint — which
	// leaves the old WAL plus a fresh WAL holding copies of its newest
	// records — replays each mutation exactly once, in order.
	maxVersion := epoch
	for _, path := range walPaths {
		_, recs, discarded, err := replayWAL(path)
		if err != nil {
			return nil, err
		}
		s.replayDiscarded += discarded
		for _, rec := range recs {
			if rec.version <= maxVersion {
				continue
			}
			applyRecord(s.g, rec)
			maxVersion = rec.version
			s.tail = append(s.tail, rec)
			s.replayRecords++
		}
	}
	// Restore a monotonic version counter: replayed mutations bumped the
	// graph's own counter from the epoch, but a skipped no-op (idempotent
	// suffix) would leave it behind the journaled high-water mark.
	if s.g.Version() < maxVersion {
		s.g.SetVersion(maxVersion)
	}

	// Pick the WAL to continue on. A single log (the normal case) is
	// appended to in place. Multiple logs mean a crash interrupted a
	// checkpoint's WAL swap: no single file holds the whole tail, so the
	// tail is consolidated into a fresh log (tmp + rename, so the old logs
	// stay authoritative until the new one is durable) before the old ones
	// are removed.
	switch {
	case len(walPaths) == 1:
		w, err := openWALForAppend(walPaths[0], opts.Sync)
		if err != nil {
			return nil, err
		}
		s.wal = w
	case len(walPaths) > 1:
		w, err := consolidateWALs(opts.Dir, epoch, opts.Sync, s.tail, walPaths)
		if err != nil {
			return nil, err
		}
		s.wal = w
	default:
		w, err := createWAL(opts.Dir, epoch, opts.Sync)
		if err != nil {
			return nil, err
		}
		s.wal = w
	}
	s.replayTime = time.Since(start)

	s.g.SetJournal(s.journal)
	if opts.CheckpointEvery > 0 {
		s.stop = make(chan struct{})
		s.done = make(chan struct{})
		go s.checkpointLoop(opts.CheckpointEvery)
	}
	return s, nil
}

func applyRecord(g *rdf.Graph, rec record) {
	if rec.op == rdf.JournalAdd {
		g.Add(rec.t)
	} else {
		g.Remove(rec.t)
	}
}

func listFiles(dir string) (segs, wals []string, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "segment-") && strings.HasSuffix(name, ".seg"):
			segs = append(segs, filepath.Join(dir, name))
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			wals = append(wals, filepath.Join(dir, name))
		case strings.HasSuffix(name, ".tmp"):
			// leftover from a crash mid-checkpoint; never installed
			os.Remove(filepath.Join(dir, name))
		}
	}
	// Hex-padded epochs make lexicographic order epoch order.
	sort.Strings(segs)
	sort.Strings(wals)
	return segs, wals, nil
}

// Graph returns the live graph the store journals for.
func (s *Store) Graph() *rdf.Graph { return s.g }

// Empty reports whether the store holds no data at all — a fresh directory
// awaiting Bootstrap.
func (s *Store) Empty() bool {
	// Lock order is graph.mu → Store.mu, so read the graph before taking
	// s.mu rather than under it.
	empty := s.g.Len() == 0
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seg == nil && len(s.tail) == 0 && empty
}

// journal is the rdf.Graph write-ahead hook. It runs under the graph write
// lock, before the mutation is applied, and must not call back into the
// graph.
func (s *Store) journal(op rdf.JournalOp, t rdf.Triple, version uint64) {
	rec := record{version: version, op: op, t: t}
	s.mu.Lock()
	defer s.mu.Unlock()
	before := s.wal.bytes
	if err := s.wal.append(rec); err != nil {
		// The error is sticky in the WAL; Sync (the ack barrier) will
		// surface it, so the update can't be acknowledged as durable.
		return
	}
	s.tail = append(s.tail, rec)
	s.walRecordsTotal++
	// Cumulative across WAL swaps, so the exported counter is monotonic.
	s.walBytesTotal += s.wal.bytes - before
}

// Sync is the group-commit barrier: it flushes and (unless SyncOff) fsyncs
// the WAL. Callers acknowledge updates only after Sync returns nil.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wal.sync()
}

// Bootstrap adopts an already-populated graph (e.g. freshly parsed Turtle)
// as the store's graph, writes the first checkpoint, and attaches the
// journal. Only valid on an Empty store.
func (s *Store) Bootstrap(g *rdf.Graph) error {
	if !s.Empty() {
		return fmt.Errorf("store: Bootstrap on a non-empty store")
	}
	s.g.SetJournal(nil)
	s.g = g
	if err := s.Checkpoint(); err != nil {
		return err
	}
	s.g.SetJournal(s.journal)
	return nil
}

// Checkpoint compacts the store: snapshot the live graph (atomically with
// its version, under the graph read lock only), build and install a segment
// file at that epoch, then swap in a fresh WAL carrying just the records
// newer than the epoch. Readers and writers keep running throughout; only
// the final swap holds s.mu.
func (s *Store) Checkpoint() error {
	start := time.Now()
	var buf bytes.Buffer
	epoch, err := s.g.SnapshotBinary(&buf)
	if err != nil {
		return err
	}
	seg, err := writeSegment(s.dir, epoch, buf.Bytes())
	if err != nil {
		return err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	// Records newer than the epoch arrived after the snapshot was cut;
	// they survive into the fresh WAL. Everything else is inside the
	// segment now.
	var survivors []record
	for _, rec := range s.tail {
		if rec.version > epoch {
			survivors = append(survivors, rec)
		}
	}
	// Durability ordering: the old WAL is synced before the new one
	// replaces it, so no acknowledged record is ever only in volatile
	// buffers while its file is being retired.
	if err := s.wal.sync(); err != nil {
		return err
	}
	nw, err := createWAL(s.dir, epoch, s.mode)
	if err != nil {
		return err
	}
	for _, rec := range survivors {
		if err := nw.append(rec); err != nil {
			nw.close()
			os.Remove(nw.path)
			return err
		}
	}
	if err := nw.sync(); err != nil {
		nw.close()
		os.Remove(nw.path)
		return err
	}
	old := s.wal
	oldSeg := s.seg
	s.wal = nw
	s.seg = seg
	s.tail = survivors
	old.close()
	if old.path != nw.path {
		os.Remove(old.path)
	}
	if oldSeg != nil && oldSeg.Path != seg.Path {
		os.Remove(oldSeg.Path)
	}
	s.checkpoints++
	s.lastCheckpoint = time.Since(start)
	return nil
}

func (s *Store) checkpointLoop(every time.Duration) {
	defer close(s.done)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.mu.Lock()
			dirty := len(s.tail) > 0 || s.seg == nil
			s.mu.Unlock()
			if dirty {
				s.Checkpoint() // best-effort; next tick retries
			}
		}
	}
}

// Close stops the background checkpointer, syncs and closes the WAL. The
// graph stays usable in memory but is no longer journaled.
func (s *Store) Close() error {
	if s.stop != nil {
		close(s.stop)
		<-s.done
		s.stop = nil
	}
	s.g.SetJournal(nil)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wal.close()
}

// Stats is a point-in-time view of the store for metrics export.
type Stats struct {
	Epoch           uint64
	Segments        int
	SegmentTriples  int
	TailRecords     int
	WALRecordsTotal int64
	WALBytesTotal   int64
	Checkpoints     int64
	LastCheckpoint  time.Duration
	ReplayTime      time.Duration
	ReplayRecords   int
	ReplayDiscarded int64
}

func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		TailRecords:     len(s.tail),
		WALRecordsTotal: s.walRecordsTotal,
		WALBytesTotal:   s.walBytesTotal,
		Checkpoints:     s.checkpoints,
		LastCheckpoint:  s.lastCheckpoint,
		ReplayTime:      s.replayTime,
		ReplayRecords:   s.replayRecords,
		ReplayDiscarded: s.replayDiscarded,
	}
	if s.seg != nil {
		st.Epoch = s.seg.Epoch
		st.Segments = 1
		st.SegmentTriples = s.seg.Triples()
	}
	return st
}
