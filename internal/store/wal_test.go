package store

import (
	"os"
	"path/filepath"
	"testing"

	"rdfanalytics/internal/rdf"
)

func testTriple(i int) rdf.Triple {
	return rdf.Triple{
		S: rdf.NewIRI("http://e/s"),
		P: rdf.NewIRI("http://e/p"),
		O: rdf.NewInteger(int64(i)),
	}
}

func TestWALAppendReplay(t *testing.T) {
	dir := t.TempDir()
	w, err := createWAL(dir, 7, SyncBatch)
	if err != nil {
		t.Fatal(err)
	}
	want := []record{
		{version: 8, op: rdf.JournalAdd, t: testTriple(1)},
		{version: 9, op: rdf.JournalAdd, t: testTriple(2)},
		{version: 10, op: rdf.JournalRemove, t: testTriple(1)},
	}
	for _, rec := range want {
		if err := w.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	epoch, got, discarded, err := replayWAL(w.path)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 7 {
		t.Fatalf("epoch = %d, want 7", epoch)
	}
	if discarded != 0 {
		t.Fatalf("discarded %d bytes from an intact log", discarded)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestWALTornTail cuts the log at every byte boundary inside the final
// frame: replay must keep all earlier records, discard the torn one, and
// truncate the file so a re-replay is clean.
func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	w, err := createWAL(dir, 0, SyncBatch)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := w.append(record{version: uint64(i), op: rdf.JournalAdd, t: testTriple(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	intact, err := os.ReadFile(w.path)
	if err != nil {
		t.Fatal(err)
	}
	// Find the start of the third frame by replaying two records' worth.
	_, recs, _, err := replayWAL(w.path)
	if err != nil || len(recs) != 3 {
		t.Fatalf("setup replay: %d records, err %v", len(recs), err)
	}
	frame := (len(intact) - walHeaderSize) / 3
	lastStart := walHeaderSize + 2*frame
	for cut := lastStart + 1; cut < len(intact); cut++ {
		path := filepath.Join(dir, "torn.log")
		if err := os.WriteFile(path, intact[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		_, got, discarded, err := replayWAL(path)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(got) != 2 {
			t.Fatalf("cut %d: %d records survived, want 2", cut, len(got))
		}
		if discarded != int64(cut-lastStart) {
			t.Fatalf("cut %d: discarded %d bytes, want %d", cut, discarded, cut-lastStart)
		}
		// The truncation must make a second replay report zero discards.
		_, again, discarded2, err := replayWAL(path)
		if err != nil || len(again) != 2 || discarded2 != 0 {
			t.Fatalf("cut %d: re-replay: %d records, %d discarded, err %v", cut, len(again), discarded2, err)
		}
	}
}

// TestWALCorruptMiddle flips a payload byte in the middle record: replay
// must stop at the corruption, keeping only the prefix.
func TestWALCorruptMiddle(t *testing.T) {
	dir := t.TempDir()
	w, err := createWAL(dir, 0, SyncBatch)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := w.append(record{version: uint64(i), op: rdf.JournalAdd, t: testTriple(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(w.path)
	if err != nil {
		t.Fatal(err)
	}
	frame := (len(raw) - walHeaderSize) / 3
	raw[walHeaderSize+frame+frame/2] ^= 0xFF
	path := filepath.Join(dir, "corrupt.log")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, got, discarded, err := replayWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("%d records survived corruption, want 1", len(got))
	}
	if discarded != int64(2*frame) {
		t.Fatalf("discarded %d bytes, want %d", discarded, 2*frame)
	}
}

func TestWALRejectsJunk(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "junk.log")
	if err := os.WriteFile(path, []byte("this is not a WAL"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := replayWAL(path); err == nil {
		t.Fatal("junk file replayed without error")
	}
}

func TestParseSyncMode(t *testing.T) {
	for in, want := range map[string]SyncMode{"off": SyncOff, "batch": SyncBatch, "": SyncBatch, "always": SyncAlways} {
		got, err := ParseSyncMode(in)
		if err != nil || got != want {
			t.Errorf("ParseSyncMode(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncMode("sometimes"); err == nil {
		t.Error("bad mode accepted")
	}
}
