package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"rdfanalytics/internal/rdf"
)

// Segment file layout:
//
//	magic "RDFS" | version u8 | epoch u64 BE
//	snapLen u64 BE | snapshot bytes        (the v2 binary graph snapshot)
//	tripleCount u64 BE
//	SPO section | POS section | OSP section
//	crc32 u32 BE                           (over everything before it)
//
// Each key section is tripleCount fixed-width 12-byte keys — three
// big-endian u32 dictionary IDs in the section's component order — sorted
// ascending, so point and range lookups are binary searches over a flat
// byte array and a future replica can mmap the file and scan it without
// decoding the snapshot at all. The snapshot is length-prefixed so the
// reader can hand ReadBinary an exactly-bounded stream (ReadBinary rejects
// trailing bytes, which here would be the key sections).
const (
	segmentMagic   = "RDFS"
	segmentVersion = 1
	keyWidth       = 12
	// maxSegmentSnap bounds the embedded snapshot size read back from the
	// header; larger means corruption.
	maxSegmentSnap = 1 << 40
)

// A Segment is an immutable on-disk image of the graph at one epoch, held
// in memory as the decoded graph plus the three sorted key arrays (for
// ID-order range scans). The image is decoded eagerly when the segment is
// built or loaded, so a snapshot the current ReadBinary rejects surfaces
// as a load error — where Open's recovery logic can handle it — instead of
// failing at first read.
type Segment struct {
	Epoch uint64
	Path  string
	// image is the decoded snapshot. It is never mutated after decode;
	// MVCC snapshots read it concurrently without locking beyond the
	// graph's own.
	image *rdf.Graph
	// spo, pos, osp are the raw key sections: len = 12*tripleCount each.
	spo, pos, osp []byte
}

// Image returns the decoded segment graph. Callers must treat it as
// read-only.
func (s *Segment) Image() *rdf.Graph { return s.image }

// Triples returns the number of triples in the segment.
func (s *Segment) Triples() int { return len(s.spo) / keyWidth }

// A KeyOrder names one of the three key sections.
type KeyOrder int

const (
	SPO KeyOrder = iota
	POS
	OSP
)

func (s *Segment) section(order KeyOrder) []byte {
	switch order {
	case POS:
		return s.pos
	case OSP:
		return s.osp
	default:
		return s.spo
	}
}

// Scan visits keys of the chosen section in sorted order, starting at the
// first key ≥ (a, b, c) in the section's component order, until fn returns
// false. Pass zeros to scan from the start. Components are reported in the
// section's own order (e.g. POS reports p, o, s).
func (s *Segment) Scan(order KeyOrder, a, b, c uint32, fn func(a, b, c uint32) bool) {
	sec := s.section(order)
	n := len(sec) / keyWidth
	var probe [keyWidth]byte
	binary.BigEndian.PutUint32(probe[0:], a)
	binary.BigEndian.PutUint32(probe[4:], b)
	binary.BigEndian.PutUint32(probe[8:], c)
	// Keys are big-endian, so byte order equals numeric order and the lower
	// bound is a bytes.Compare binary search.
	i := sort.Search(n, func(i int) bool {
		return bytes.Compare(sec[i*keyWidth:(i+1)*keyWidth], probe[:]) >= 0
	})
	for ; i < n; i++ {
		k := sec[i*keyWidth:]
		if !fn(binary.BigEndian.Uint32(k), binary.BigEndian.Uint32(k[4:]), binary.BigEndian.Uint32(k[8:])) {
			return
		}
	}
}

func segmentPath(dir string, epoch uint64) string {
	return fmt.Sprintf("%s/segment-%016x.seg", dir, epoch)
}

// writeSegment builds and atomically installs the segment file for the
// given snapshot bytes: write to a temp file, fsync, rename into place,
// fsync the directory. It returns the loaded segment.
func writeSegment(dir string, epoch uint64, snap []byte) (*Segment, error) {
	image, err := rdf.ReadBinary(bytes.NewReader(snap))
	if err != nil {
		return nil, fmt.Errorf("store: snapshot rejected while building segment: %w", err)
	}
	spo, pos, osp := buildKeySections(image)

	tmp, err := os.CreateTemp(dir, "segment-*.tmp")
	if err != nil {
		return nil, err
	}
	defer os.Remove(tmp.Name())
	sum := crc32.NewIEEE()
	w := io.MultiWriter(tmp, sum)
	var hdr [13]byte
	copy(hdr[:], segmentMagic)
	hdr[4] = segmentVersion
	binary.BigEndian.PutUint64(hdr[5:], epoch)
	var n8 [8]byte
	writeErr := func() error {
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		binary.BigEndian.PutUint64(n8[:], uint64(len(snap)))
		if _, err := w.Write(n8[:]); err != nil {
			return err
		}
		if _, err := w.Write(snap); err != nil {
			return err
		}
		binary.BigEndian.PutUint64(n8[:], uint64(len(spo)/keyWidth))
		if _, err := w.Write(n8[:]); err != nil {
			return err
		}
		for _, sec := range [][]byte{spo, pos, osp} {
			if _, err := w.Write(sec); err != nil {
				return err
			}
		}
		var trailer [4]byte
		binary.BigEndian.PutUint32(trailer[:], sum.Sum32())
		_, err := tmp.Write(trailer[:])
		return err
	}()
	if writeErr != nil {
		tmp.Close()
		return nil, writeErr
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return nil, err
	}
	if err := tmp.Close(); err != nil {
		return nil, err
	}
	path := segmentPath(dir, epoch)
	if err := os.Rename(tmp.Name(), path); err != nil {
		return nil, err
	}
	if err := syncDir(dir); err != nil {
		return nil, err
	}
	return &Segment{Epoch: epoch, Path: path, image: image, spo: spo, pos: pos, osp: osp}, nil
}

// buildKeySections materializes the three sorted key arrays from the
// decoded image. The snapshot already stores triples in (s,p,o) order, so
// SPO comes out sorted for free; POS and OSP are permuted copies re-sorted
// by their component order.
func buildKeySections(image *rdf.Graph) (spo, pos, osp []byte) {
	n := image.Len()
	spo = make([]byte, 0, n*keyWidth)
	pos = make([]byte, 0, n*keyWidth)
	osp = make([]byte, 0, n*keyWidth)
	image.MatchIDs(0, 0, 0, func(s, p, o rdf.ID) bool {
		spo = appendKey(spo, uint32(s), uint32(p), uint32(o))
		pos = appendKey(pos, uint32(p), uint32(o), uint32(s))
		osp = appendKey(osp, uint32(o), uint32(s), uint32(p))
		return true
	})
	sortKeys(spo)
	sortKeys(pos)
	sortKeys(osp)
	return spo, pos, osp
}

func appendKey(dst []byte, a, b, c uint32) []byte {
	dst = binary.BigEndian.AppendUint32(dst, a)
	dst = binary.BigEndian.AppendUint32(dst, b)
	return binary.BigEndian.AppendUint32(dst, c)
}

// sortKeys sorts a flat key section in place; big-endian keys sort
// bytewise.
func sortKeys(sec []byte) {
	n := len(sec) / keyWidth
	sort.Sort(&keySlice{sec, n})
}

type keySlice struct {
	b []byte
	n int
}

func (k *keySlice) Len() int { return k.n }
func (k *keySlice) Less(i, j int) bool {
	return bytes.Compare(k.b[i*keyWidth:(i+1)*keyWidth], k.b[j*keyWidth:(j+1)*keyWidth]) < 0
}
func (k *keySlice) Swap(i, j int) {
	var tmp [keyWidth]byte
	copy(tmp[:], k.b[i*keyWidth:])
	copy(k.b[i*keyWidth:(i+1)*keyWidth], k.b[j*keyWidth:])
	copy(k.b[j*keyWidth:(j+1)*keyWidth], tmp[:])
}

// loadSegment reads and verifies a segment file. It returns the segment and
// the raw snapshot bytes (the caller re-decodes them to materialize the
// mutable live graph — the image inside the Segment stays immutable).
func loadSegment(path string) (*Segment, []byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	if len(raw) < 13+8+8+4 {
		return nil, nil, fmt.Errorf("store: %s: segment too short (%d bytes)", path, len(raw))
	}
	body, trailer := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(trailer) {
		return nil, nil, fmt.Errorf("store: %s: segment checksum mismatch", path)
	}
	if string(body[:4]) != segmentMagic {
		return nil, nil, fmt.Errorf("store: %s is not a segment file (magic %q)", path, body[:4])
	}
	if body[4] != segmentVersion {
		return nil, nil, fmt.Errorf("store: %s: unsupported segment version %d", path, body[4])
	}
	epoch := binary.BigEndian.Uint64(body[5:])
	snapLen := binary.BigEndian.Uint64(body[13:])
	rest := body[21:]
	if snapLen > maxSegmentSnap || snapLen > uint64(len(rest)) {
		return nil, nil, fmt.Errorf("store: %s: implausible snapshot length %d", path, snapLen)
	}
	snap := rest[:snapLen]
	rest = rest[snapLen:]
	if len(rest) < 8 {
		return nil, nil, fmt.Errorf("store: %s: truncated key index", path)
	}
	tripleCount := binary.BigEndian.Uint64(rest[:8])
	rest = rest[8:]
	want := tripleCount * 3 * keyWidth
	if uint64(len(rest)) != want {
		return nil, nil, fmt.Errorf("store: %s: key sections are %d bytes, want %d", path, len(rest), want)
	}
	secLen := tripleCount * keyWidth
	// Decode the snapshot now, even though the CRC already vouches for the
	// bytes: a snapshot that a changed/stricter ReadBinary rejects while the
	// segment container still validates must fail here, where the caller
	// can refuse the segment, not at first Image() use in the read path.
	image, err := rdf.ReadBinary(bytes.NewReader(snap))
	if err != nil {
		return nil, nil, fmt.Errorf("store: %s: segment snapshot rejected: %w", path, err)
	}
	return &Segment{
		Epoch: epoch,
		Path:  path,
		image: image,
		spo:   rest[:secLen],
		pos:   rest[secLen : 2*secLen],
		osp:   rest[2*secLen:],
	}, snap, nil
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable.
func syncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
