package store

import (
	"rdfanalytics/internal/rdf"
)

// A Snapshot is an immutable point-in-time view of the store: the current
// segment's image plus the tail records folded into an add/remove overlay.
// Taking one copies only the (small) tail, so readers never block writers —
// the live graph keeps mutating while any number of snapshots serve reads
// at their own epoch. The Epoch is the graph version the view corresponds
// to, the same token the answer and cardinality caches key on.
type Snapshot struct {
	Epoch uint64
	seg   *Segment // nil before the first checkpoint
	adds  []rdf.Triple
	dels  map[rdf.Triple]struct{}
	has   map[rdf.Triple]struct{} // adds, for O(1) Has
}

// Snapshot captures the store's current state. The segment image is shared
// (immutable), the tail overlay is folded at call time. While
// Stats().Diverged is true (the WAL dropped a mutation the graph applied),
// the view lags the live graph until the next successful checkpoint;
// callers needing exactness then should read the live graph instead.
func (s *Store) Snapshot() *Snapshot {
	s.mu.Lock()
	seg := s.seg
	tail := make([]record, len(s.tail))
	copy(tail, s.tail)
	s.mu.Unlock()

	sn := &Snapshot{
		seg:  seg,
		dels: make(map[rdf.Triple]struct{}),
		has:  make(map[rdf.Triple]struct{}),
	}
	if seg != nil {
		sn.Epoch = seg.Epoch
	}
	// Fold the tail in order: a later record for the same triple wins.
	for _, rec := range tail {
		if rec.version > sn.Epoch {
			sn.Epoch = rec.version
		}
		if rec.op == rdf.JournalAdd {
			if _, ok := sn.has[rec.t]; !ok {
				delete(sn.dels, rec.t)
				sn.has[rec.t] = struct{}{}
				sn.adds = append(sn.adds, rec.t)
			}
		} else {
			if _, ok := sn.has[rec.t]; ok {
				delete(sn.has, rec.t)
				// adds slice is rebuilt lazily in Match; mark absent
				sn.adds = removeTriple(sn.adds, rec.t)
			}
			sn.dels[rec.t] = struct{}{}
		}
	}
	return sn
}

func removeTriple(ts []rdf.Triple, t rdf.Triple) []rdf.Triple {
	for i := range ts {
		if ts[i] == t {
			return append(ts[:i], ts[i+1:]...)
		}
	}
	return ts
}

// Has reports whether the triple is visible in this snapshot.
func (sn *Snapshot) Has(t rdf.Triple) bool {
	if _, ok := sn.has[t]; ok {
		return true
	}
	if _, ok := sn.dels[t]; ok {
		return false
	}
	return sn.seg != nil && sn.seg.Image().Has(t)
}

// Len returns the number of triples visible in this snapshot.
func (sn *Snapshot) Len() int {
	n := len(sn.has)
	if sn.seg != nil {
		n += sn.seg.Image().Len()
		// Deletions and re-adds of segment triples adjust the count.
		for t := range sn.dels {
			if sn.seg.Image().Has(t) {
				n--
			}
		}
		for t := range sn.has {
			if sn.seg.Image().Has(t) {
				n--
			}
		}
	}
	return n
}

// Match calls fn for every visible triple matching the pattern (rdf.Any is
// a wildcard), segment triples first, then tail additions. Iteration stops
// when fn returns false.
func (sn *Snapshot) Match(s, p, o rdf.Term, fn func(rdf.Triple) bool) {
	stopped := false
	if sn.seg != nil {
		sn.seg.Image().Match(s, p, o, func(t rdf.Triple) bool {
			if _, del := sn.dels[t]; del {
				return true
			}
			if _, readd := sn.has[t]; readd {
				return true // reported from the adds pass instead
			}
			if !fn(t) {
				stopped = true
				return false
			}
			return true
		})
	}
	if stopped {
		return
	}
	for _, t := range sn.adds {
		if !matches(t, s, p, o) {
			continue
		}
		if !fn(t) {
			return
		}
	}
}

func matches(t rdf.Triple, s, p, o rdf.Term) bool {
	return (s == rdf.Any || t.S == s) && (p == rdf.Any || t.P == p) && (o == rdf.Any || t.O == o)
}
