package store

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"time"

	"rdfanalytics/internal/rdf"
)

func openTest(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(Options{Dir: dir, Sync: SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func iri(s string) rdf.Term { return rdf.NewIRI("http://e/" + s) }

func snapshotBytes(t *testing.T, g *rdf.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStoreReopenRestoresGraph is the core durability contract: everything
// synced before a crash (simulated by abandoning the store without Close)
// is present after reopen, byte-identically — same triples, same
// dictionary IDs.
func TestStoreReopenRestoresGraph(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	g := s.Graph()
	g.Add(rdf.Triple{S: iri("a"), P: iri("p"), O: iri("b")})
	g.Add(rdf.Triple{S: iri("b"), P: iri("p"), O: iri("c")})
	g.Add(rdf.Triple{S: iri("a"), P: iri("q"), O: rdf.NewString("v")})
	g.Remove(rdf.Triple{S: iri("b"), P: iri("p"), O: iri("c")})
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	want := snapshotBytes(t, g)
	wantVersion := g.Version()
	// No Close: the process "crashes" here.
	s2 := openTest(t, dir)
	if got := snapshotBytes(t, s2.Graph()); !bytes.Equal(got, want) {
		t.Fatal("reopened graph differs from pre-crash graph")
	}
	if v := s2.Graph().Version(); v != wantVersion {
		t.Fatalf("version = %d after reopen, want %d", v, wantVersion)
	}
	s2.Close()
}

// TestStoreCheckpointAndTail: state = segment + WAL tail; reopen folds both.
func TestStoreCheckpointAndTail(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	g := s.Graph()
	for i := 0; i < 50; i++ {
		g.Add(rdf.Triple{S: iri("s"), P: iri("p"), O: rdf.NewInteger(int64(i))})
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint mutations land in the fresh WAL only.
	g.Add(rdf.Triple{S: iri("s"), P: iri("p"), O: rdf.NewInteger(100)})
	g.Remove(rdf.Triple{S: iri("s"), P: iri("p"), O: rdf.NewInteger(0)})
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	want := snapshotBytes(t, g)
	st := s.Stats()
	if st.Segments != 1 || st.SegmentTriples != 50 || st.TailRecords != 2 {
		t.Fatalf("stats = %+v, want 1 segment of 50 triples and 2 tail records", st)
	}

	s2 := openTest(t, dir)
	if got := snapshotBytes(t, s2.Graph()); !bytes.Equal(got, want) {
		t.Fatal("segment+tail reopen differs from pre-crash graph")
	}
	st2 := s2.Stats()
	if st2.ReplayRecords != 2 {
		t.Fatalf("replayed %d records, want 2", st2.ReplayRecords)
	}
	s2.Close()
}

// TestStoreTornTailDiscarded: a partial final record (unsynced buffered
// write cut short by the crash) is discarded; every synced update survives.
func TestStoreTornTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	g := s.Graph()
	g.Add(rdf.Triple{S: iri("a"), P: iri("p"), O: iri("b")})
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	want := snapshotBytes(t, g)
	walFile := s.wal.path
	s.wal.w.Flush()
	// Simulate a torn write: append half a frame of garbage to the log.
	f, err := os.OpenFile(walFile, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0, 0, 40, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := openTest(t, dir)
	if got := snapshotBytes(t, s2.Graph()); !bytes.Equal(got, want) {
		t.Fatal("torn tail corrupted recovered state")
	}
	if s2.Stats().ReplayDiscarded == 0 {
		t.Fatal("expected discarded bytes to be reported")
	}
	// The store must keep accepting writes on the truncated log.
	s2.Graph().Add(rdf.Triple{S: iri("x"), P: iri("p"), O: iri("y")})
	if err := s2.Sync(); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3 := openTest(t, dir)
	if !s3.Graph().Has(rdf.Triple{S: iri("x"), P: iri("p"), O: iri("y")}) {
		t.Fatal("post-recovery write lost")
	}
	s3.Close()
}

// TestStoreCrashMidCheckpoint reconstructs the worst crash window: a
// checkpoint cut its snapshot at epoch E, mutations (an add and its remove)
// landed in the old WAL after the cut, the new segment is installed, and
// the fresh WAL got only a prefix of the surviving records — just the add —
// before the crash. Reopen must apply each mutation exactly once, in order:
// replaying the new WAL's duplicate add after the old WAL's remove would
// resurrect the deleted triple.
func TestStoreCrashMidCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	g := s.Graph()
	base := rdf.Triple{S: iri("a"), P: iri("p"), O: iri("b")}
	mid := rdf.Triple{S: iri("a"), P: iri("p"), O: iri("c")}
	tmp := rdf.Triple{S: iri("tmp"), P: iri("p"), O: iri("z")}
	g.Add(base) // v1
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	g.Add(mid)    // v2 — will be inside the crashed checkpoint's segment
	g.Add(tmp)    // v3 — journaled after the snapshot cut
	g.Remove(tmp) // v4
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	want := snapshotBytes(t, g)
	// The real store is now segment-1 + wal-1 {v2, v3, v4}. Overlay the
	// crashed checkpoint's artifacts: segment-2 (the graph as of v2) and a
	// partial wal-2 holding only the add of tmp (v3).
	img := rdf.NewGraph()
	img.Add(base)
	img.Add(mid)
	var buf bytes.Buffer
	epoch, err := img.SnapshotBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 {
		t.Fatalf("crafted snapshot epoch = %d, want 2", epoch)
	}
	if _, err := writeSegment(dir, epoch, buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	nw, err := createWAL(dir, epoch, SyncBatch)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.append(record{version: 3, op: rdf.JournalAdd, t: tmp}); err != nil {
		t.Fatal(err)
	}
	if err := nw.close(); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, dir)
	if s2.Graph().Has(tmp) {
		t.Fatal("removed triple resurrected by duplicate replay of its add")
	}
	if got := snapshotBytes(t, s2.Graph()); !bytes.Equal(got, want) {
		t.Fatal("crash mid-checkpoint recovered to a different graph")
	}
	if v := s2.Graph().Version(); v != 4 {
		t.Fatalf("version = %d after recovery, want 4", v)
	}
	// Consolidation must leave exactly one WAL holding the full tail, so a
	// third open (after the old logs are gone) still has every record.
	_, wals, err := listFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(wals) != 1 {
		t.Fatalf("%d WAL files after consolidation, want 1", len(wals))
	}
	s2.Close()
	s3 := openTest(t, dir)
	if got := snapshotBytes(t, s3.Graph()); !bytes.Equal(got, want) {
		t.Fatal("consolidated WAL lost records")
	}
	s3.Close()
}

// TestStoreReplayIsIdempotent re-opens the same directory repeatedly with
// no writes in between: state and version must be fixed points.
func TestStoreReplayIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	g := s.Graph()
	g.Add(rdf.Triple{S: iri("a"), P: iri("p"), O: iri("b")})
	g.Add(rdf.Triple{S: iri("b"), P: iri("p"), O: iri("c")})
	g.Remove(rdf.Triple{S: iri("a"), P: iri("p"), O: iri("b")})
	s.Sync()
	want := snapshotBytes(t, g)
	wantVersion := g.Version()
	for i := 0; i < 3; i++ {
		s2 := openTest(t, dir)
		if got := snapshotBytes(t, s2.Graph()); !bytes.Equal(got, want) {
			t.Fatalf("reopen %d changed the graph", i)
		}
		if v := s2.Graph().Version(); v != wantVersion {
			t.Fatalf("reopen %d: version %d, want %d", i, v, wantVersion)
		}
		s2.Close()
	}
}

// TestStoreBootstrap: first boot adopts a pre-loaded graph, checkpoints it,
// and journals everything after.
func TestStoreBootstrap(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	if !s.Empty() {
		t.Fatal("fresh store not Empty")
	}
	g := rdf.MustLoadTurtle(`@prefix ex: <http://e/> .
ex:a ex:p ex:b . ex:b ex:p ex:c .`)
	if err := s.Bootstrap(g); err != nil {
		t.Fatal(err)
	}
	if s.Empty() {
		t.Fatal("bootstrapped store still Empty")
	}
	g.Add(rdf.Triple{S: iri("c"), P: iri("p"), O: iri("d")})
	s.Sync()
	want := snapshotBytes(t, g)
	s.Close()
	s2 := openTest(t, dir)
	if got := snapshotBytes(t, s2.Graph()); !bytes.Equal(got, want) {
		t.Fatal("bootstrap + update lost across reopen")
	}
	if err := s2.Bootstrap(rdf.NewGraph()); err == nil {
		t.Fatal("Bootstrap accepted on a non-empty store")
	}
	s2.Close()
}

// TestStoreBackgroundCheckpoint: the checkpoint loop compacts the WAL
// without any explicit trigger.
func TestStoreBackgroundCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Sync: SyncBatch, CheckpointEvery: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	s.Graph().Add(rdf.Triple{S: iri("a"), P: iri("p"), O: iri("b")})
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Segments == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background checkpoint never ran")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := s.Stats(); st.TailRecords != 0 {
		t.Fatalf("tail not folded by checkpoint: %+v", st)
	}
	s.Close()
}

// TestStoreSyncAlwaysAndOff exercises the other two WAL modes end to end.
func TestStoreSyncAlwaysAndOff(t *testing.T) {
	for _, mode := range []SyncMode{SyncAlways, SyncOff} {
		dir := t.TempDir()
		s, err := Open(Options{Dir: dir, Sync: mode})
		if err != nil {
			t.Fatal(err)
		}
		s.Graph().Add(rdf.Triple{S: iri("a"), P: iri("p"), O: iri("b")})
		if err := s.Sync(); err != nil {
			t.Fatal(err)
		}
		s.Close()
		s2 := openTest(t, dir)
		if !s2.Graph().Has(rdf.Triple{S: iri("a"), P: iri("p"), O: iri("b")}) {
			t.Fatalf("mode %v lost a synced write across clean close", mode)
		}
		s2.Close()
	}
}

func TestStoreDataFilesNamed(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	s.Graph().Add(rdf.Triple{S: iri("a"), P: iri("p"), O: iri("b")})
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var seg, wal int
	for _, e := range entries {
		switch {
		case strings.HasPrefix(e.Name(), "segment-") && strings.HasSuffix(e.Name(), ".seg"):
			seg++
		case strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".log"):
			wal++
		default:
			t.Errorf("unexpected file %q in data dir", e.Name())
		}
	}
	if seg != 1 || wal != 1 {
		t.Fatalf("data dir has %d segments and %d WALs, want 1 and 1", seg, wal)
	}
}
