package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"rdfanalytics/internal/rdf"
)

func openTest(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(Options{Dir: dir, Sync: SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func iri(s string) rdf.Term { return rdf.NewIRI("http://e/" + s) }

func snapshotBytes(t *testing.T, g *rdf.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStoreReopenRestoresGraph is the core durability contract: everything
// synced before a crash (simulated by abandoning the store without Close)
// is present after reopen, byte-identically — same triples, same
// dictionary IDs.
func TestStoreReopenRestoresGraph(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	g := s.Graph()
	g.Add(rdf.Triple{S: iri("a"), P: iri("p"), O: iri("b")})
	g.Add(rdf.Triple{S: iri("b"), P: iri("p"), O: iri("c")})
	g.Add(rdf.Triple{S: iri("a"), P: iri("q"), O: rdf.NewString("v")})
	g.Remove(rdf.Triple{S: iri("b"), P: iri("p"), O: iri("c")})
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	want := snapshotBytes(t, g)
	wantVersion := g.Version()
	// No Close: the process "crashes" here.
	s2 := openTest(t, dir)
	if got := snapshotBytes(t, s2.Graph()); !bytes.Equal(got, want) {
		t.Fatal("reopened graph differs from pre-crash graph")
	}
	if v := s2.Graph().Version(); v != wantVersion {
		t.Fatalf("version = %d after reopen, want %d", v, wantVersion)
	}
	s2.Close()
}

// TestStoreCheckpointAndTail: state = segment + WAL tail; reopen folds both.
func TestStoreCheckpointAndTail(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	g := s.Graph()
	for i := 0; i < 50; i++ {
		g.Add(rdf.Triple{S: iri("s"), P: iri("p"), O: rdf.NewInteger(int64(i))})
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint mutations land in the fresh WAL only.
	g.Add(rdf.Triple{S: iri("s"), P: iri("p"), O: rdf.NewInteger(100)})
	g.Remove(rdf.Triple{S: iri("s"), P: iri("p"), O: rdf.NewInteger(0)})
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	want := snapshotBytes(t, g)
	st := s.Stats()
	if st.Segments != 1 || st.SegmentTriples != 50 || st.TailRecords != 2 {
		t.Fatalf("stats = %+v, want 1 segment of 50 triples and 2 tail records", st)
	}

	s2 := openTest(t, dir)
	if got := snapshotBytes(t, s2.Graph()); !bytes.Equal(got, want) {
		t.Fatal("segment+tail reopen differs from pre-crash graph")
	}
	st2 := s2.Stats()
	if st2.ReplayRecords != 2 {
		t.Fatalf("replayed %d records, want 2", st2.ReplayRecords)
	}
	s2.Close()
}

// TestStoreTornTailDiscarded: a partial final record (unsynced buffered
// write cut short by the crash) is discarded; every synced update survives.
func TestStoreTornTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	g := s.Graph()
	g.Add(rdf.Triple{S: iri("a"), P: iri("p"), O: iri("b")})
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	want := snapshotBytes(t, g)
	walFile := s.wal.path
	s.wal.w.Flush()
	// Simulate a torn write: append half a frame of garbage to the log.
	f, err := os.OpenFile(walFile, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0, 0, 40, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := openTest(t, dir)
	if got := snapshotBytes(t, s2.Graph()); !bytes.Equal(got, want) {
		t.Fatal("torn tail corrupted recovered state")
	}
	if s2.Stats().ReplayDiscarded == 0 {
		t.Fatal("expected discarded bytes to be reported")
	}
	// The store must keep accepting writes on the truncated log.
	s2.Graph().Add(rdf.Triple{S: iri("x"), P: iri("p"), O: iri("y")})
	if err := s2.Sync(); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3 := openTest(t, dir)
	if !s3.Graph().Has(rdf.Triple{S: iri("x"), P: iri("p"), O: iri("y")}) {
		t.Fatal("post-recovery write lost")
	}
	s3.Close()
}

// TestStoreCrashMidCheckpoint reconstructs the worst crash window: a
// checkpoint cut its snapshot at epoch E, mutations (an add and its remove)
// landed in the old WAL after the cut, the new segment is installed, and
// the fresh WAL got only a prefix of the surviving records — just the add —
// before the crash. Reopen must apply each mutation exactly once, in order:
// replaying the new WAL's duplicate add after the old WAL's remove would
// resurrect the deleted triple.
func TestStoreCrashMidCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	g := s.Graph()
	base := rdf.Triple{S: iri("a"), P: iri("p"), O: iri("b")}
	mid := rdf.Triple{S: iri("a"), P: iri("p"), O: iri("c")}
	tmp := rdf.Triple{S: iri("tmp"), P: iri("p"), O: iri("z")}
	g.Add(base) // v1
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	g.Add(mid)    // v2 — will be inside the crashed checkpoint's segment
	g.Add(tmp)    // v3 — journaled after the snapshot cut
	g.Remove(tmp) // v4
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	want := snapshotBytes(t, g)
	// The real store is now segment-1 + wal-1 {v2, v3, v4}. Overlay the
	// crashed checkpoint's artifacts: segment-2 (the graph as of v2) and a
	// partial wal-2 holding only the add of tmp (v3).
	img := rdf.NewGraph()
	img.Add(base)
	img.Add(mid)
	var buf bytes.Buffer
	epoch, err := img.SnapshotBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 {
		t.Fatalf("crafted snapshot epoch = %d, want 2", epoch)
	}
	if _, err := writeSegment(dir, epoch, buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	nw, err := createWAL(dir, epoch, SyncBatch)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.append(record{version: 3, op: rdf.JournalAdd, t: tmp}); err != nil {
		t.Fatal(err)
	}
	if err := nw.close(); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, dir)
	if s2.Graph().Has(tmp) {
		t.Fatal("removed triple resurrected by duplicate replay of its add")
	}
	if got := snapshotBytes(t, s2.Graph()); !bytes.Equal(got, want) {
		t.Fatal("crash mid-checkpoint recovered to a different graph")
	}
	if v := s2.Graph().Version(); v != 4 {
		t.Fatalf("version = %d after recovery, want 4", v)
	}
	// Consolidation must leave exactly one WAL holding the full tail, so a
	// third open (after the old logs are gone) still has every record.
	_, wals, err := listFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(wals) != 1 {
		t.Fatalf("%d WAL files after consolidation, want 1", len(wals))
	}
	s2.Close()
	s3 := openTest(t, dir)
	if got := snapshotBytes(t, s3.Graph()); !bytes.Equal(got, want) {
		t.Fatal("consolidated WAL lost records")
	}
	s3.Close()
}

// TestStoreReplayIsIdempotent re-opens the same directory repeatedly with
// no writes in between: state and version must be fixed points.
func TestStoreReplayIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	g := s.Graph()
	g.Add(rdf.Triple{S: iri("a"), P: iri("p"), O: iri("b")})
	g.Add(rdf.Triple{S: iri("b"), P: iri("p"), O: iri("c")})
	g.Remove(rdf.Triple{S: iri("a"), P: iri("p"), O: iri("b")})
	s.Sync()
	want := snapshotBytes(t, g)
	wantVersion := g.Version()
	for i := 0; i < 3; i++ {
		s2 := openTest(t, dir)
		if got := snapshotBytes(t, s2.Graph()); !bytes.Equal(got, want) {
			t.Fatalf("reopen %d changed the graph", i)
		}
		if v := s2.Graph().Version(); v != wantVersion {
			t.Fatalf("reopen %d: version %d, want %d", i, v, wantVersion)
		}
		s2.Close()
	}
}

// TestStoreBootstrap: first boot adopts a pre-loaded graph, checkpoints it,
// and journals everything after.
func TestStoreBootstrap(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	if !s.Empty() {
		t.Fatal("fresh store not Empty")
	}
	g := rdf.MustLoadTurtle(`@prefix ex: <http://e/> .
ex:a ex:p ex:b . ex:b ex:p ex:c .`)
	if err := s.Bootstrap(g); err != nil {
		t.Fatal(err)
	}
	if s.Empty() {
		t.Fatal("bootstrapped store still Empty")
	}
	g.Add(rdf.Triple{S: iri("c"), P: iri("p"), O: iri("d")})
	s.Sync()
	want := snapshotBytes(t, g)
	s.Close()
	s2 := openTest(t, dir)
	if got := snapshotBytes(t, s2.Graph()); !bytes.Equal(got, want) {
		t.Fatal("bootstrap + update lost across reopen")
	}
	if err := s2.Bootstrap(rdf.NewGraph()); err == nil {
		t.Fatal("Bootstrap accepted on a non-empty store")
	}
	s2.Close()
}

// TestStoreBackgroundCheckpoint: the checkpoint loop compacts the WAL
// without any explicit trigger.
func TestStoreBackgroundCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Sync: SyncBatch, CheckpointEvery: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	s.Graph().Add(rdf.Triple{S: iri("a"), P: iri("p"), O: iri("b")})
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Segments == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background checkpoint never ran")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := s.Stats(); st.TailRecords != 0 {
		t.Fatalf("tail not folded by checkpoint: %+v", st)
	}
	s.Close()
}

// TestStoreSyncAlwaysAndOff exercises the other two WAL modes end to end.
func TestStoreSyncAlwaysAndOff(t *testing.T) {
	for _, mode := range []SyncMode{SyncAlways, SyncOff} {
		dir := t.TempDir()
		s, err := Open(Options{Dir: dir, Sync: mode})
		if err != nil {
			t.Fatal(err)
		}
		s.Graph().Add(rdf.Triple{S: iri("a"), P: iri("p"), O: iri("b")})
		if err := s.Sync(); err != nil {
			t.Fatal(err)
		}
		s.Close()
		s2 := openTest(t, dir)
		if !s2.Graph().Has(rdf.Triple{S: iri("a"), P: iri("p"), O: iri("b")}) {
			t.Fatalf("mode %v lost a synced write across clean close", mode)
		}
		s2.Close()
	}
}

func TestStoreDataFilesNamed(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	s.Graph().Add(rdf.Triple{S: iri("a"), P: iri("p"), O: iri("b")})
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var seg, wal int
	for _, e := range entries {
		switch {
		case strings.HasPrefix(e.Name(), "segment-") && strings.HasSuffix(e.Name(), ".seg"):
			seg++
		case strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".log"):
			wal++
		default:
			t.Errorf("unexpected file %q in data dir", e.Name())
		}
	}
	if seg != 1 || wal != 1 {
		t.Fatalf("data dir has %d segments and %d WALs, want 1 and 1", seg, wal)
	}
}

// TestStoreConcurrentCheckpoints hammers Checkpoint from several goroutines
// while a writer keeps mutating. Serialization (cpMu) must keep installed
// epochs monotonic and lose nothing: the reopened graph is byte-identical
// to the final live graph, and the data dir holds exactly one segment and
// one WAL.
func TestStoreConcurrentCheckpoints(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	g := s.Graph()

	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Alternate add/remove over a bounded key space so the graph —
			// and with it each checkpoint's snapshot — stays small; every
			// mutation is still effective and journaled.
			tr := rdf.Triple{S: iri("s"), P: iri("p"), O: rdf.NewInteger(int64(i % 64))}
			if g.Has(tr) {
				g.Remove(tr)
			} else {
				g.Add(tr)
			}
			if i%16 == 0 {
				if err := s.Sync(); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	var cps sync.WaitGroup
	for c := 0; c < 4; c++ {
		cps.Add(1)
		go func() {
			defer cps.Done()
			var last uint64
			for i := 0; i < 8; i++ {
				if err := s.Checkpoint(); err != nil {
					t.Error(err)
					return
				}
				if e := s.Stats().Epoch; e < last {
					t.Errorf("epoch regressed %d -> %d", last, e)
					return
				} else {
					last = e
				}
			}
		}()
	}
	// The writer runs until every checkpointer is done, so checkpoints
	// genuinely overlap live mutations.
	cps.Wait()
	close(stop)
	writer.Wait()

	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	want := snapshotBytes(t, g)
	s2 := openTest(t, dir)
	if got := snapshotBytes(t, s2.Graph()); !bytes.Equal(got, want) {
		t.Fatal("concurrent checkpoints lost acknowledged records")
	}
	s2.Close()
	segs, wals, err := listFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || len(wals) != 1 {
		t.Fatalf("data dir has %d segments and %d WALs, want 1 and 1", len(segs), len(wals))
	}
}

// TestStoreCheckpointNoopWhenClean: a second checkpoint with nothing new
// must not rewrite anything — in particular it must not truncate the live
// WAL (same epoch means same wal-<epoch>.log path) under the open handle.
func TestStoreCheckpointNoopWhenClean(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	g := s.Graph()
	g.Add(rdf.Triple{S: iri("a"), P: iri("p"), O: iri("b")})
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if n := s.Stats().Checkpoints; n != 1 {
		t.Fatalf("clean re-checkpoint ran anyway: %d checkpoints, want 1", n)
	}
	// The store must still accept and persist writes afterwards.
	g.Add(rdf.Triple{S: iri("c"), P: iri("p"), O: iri("d")})
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	want := snapshotBytes(t, g)
	s.Close()
	s2 := openTest(t, dir)
	if got := snapshotBytes(t, s2.Graph()); !bytes.Equal(got, want) {
		t.Fatal("write after no-op checkpoint lost")
	}
	s2.Close()
}

// TestStoreOpenRefusesUncoveredCorruptSegment: when the only segment is
// corrupt and no WAL reaches back to the previous epoch, the records in
// the gap are unrecoverable — Open must refuse instead of silently booting
// a partial graph.
func TestStoreOpenRefusesUncoveredCorruptSegment(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	s.Graph().Add(rdf.Triple{S: iri("a"), P: iri("p"), O: iri("b")})
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	segs, _, err := listFiles(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("listFiles = %v, %v", segs, err)
	}
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(segs[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir, Sync: SyncBatch}); err == nil {
		t.Fatal("Open succeeded over an unrecoverable segment gap")
	}
}

// TestStoreOpenFallsBackWithWALCoverage: a corrupt segment newer than the
// intact one is skipped when the surviving WAL reaches back to the intact
// epoch — replay rebuilds the full state, losslessly.
func TestStoreOpenFallsBackWithWALCoverage(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	g := s.Graph()
	g.Add(rdf.Triple{S: iri("a"), P: iri("p"), O: iri("b")})
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	epoch := s.Stats().Epoch
	// Tail records past the checkpoint, still only in the WAL.
	g.Add(rdf.Triple{S: iri("c"), P: iri("p"), O: iri("d")})
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	want := snapshotBytes(t, g)
	s.Close()
	// A rotted segment claiming a newer epoch than the intact one.
	garbage := segmentPath(dir, epoch+10)
	if err := os.WriteFile(garbage, []byte("not a segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openTest(t, dir)
	if got := snapshotBytes(t, s2.Graph()); !bytes.Equal(got, want) {
		t.Fatal("fallback past corrupt newer segment lost records despite WAL coverage")
	}
	s2.Close()
}

// TestStoreJournalDropDiverges: when the WAL rejects an append while the
// graph mutation still applies, the store must report the divergence, and
// a successful checkpoint — which folds the full live graph into the new
// segment — must make the dropped mutation durable and clear the flag.
func TestStoreJournalDropDiverges(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	g := s.Graph()
	g.Add(rdf.Triple{S: iri("a"), P: iri("p"), O: iri("b")})
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	s.wal.err = errors.New("injected disk failure")
	s.mu.Unlock()
	dropped := rdf.Triple{S: iri("c"), P: iri("p"), O: iri("d")}
	g.Add(dropped)
	st := s.Stats()
	if st.JournalDropped != 1 || !st.Diverged {
		t.Fatalf("drop not tracked: %+v", st)
	}
	if err := s.Sync(); err == nil {
		t.Fatal("Sync acknowledged an update whose journal entry was dropped")
	}
	// Checkpoint retires the broken WAL; the new segment holds the dropped
	// mutation, reconverging graph and disk.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.Diverged {
		t.Fatal("still diverged after a successful checkpoint")
	}
	if st.JournalDropped != 1 {
		t.Fatalf("cumulative drop counter = %d, want 1", st.JournalDropped)
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("fresh WAL still broken after checkpoint: %v", err)
	}
	want := snapshotBytes(t, g)
	s.Close()
	s2 := openTest(t, dir)
	if !s2.Graph().Has(dropped) {
		t.Fatal("dropped mutation not durable after checkpoint")
	}
	if got := snapshotBytes(t, s2.Graph()); !bytes.Equal(got, want) {
		t.Fatal("reconverged store differs from live graph")
	}
	s2.Close()
}

// TestSegmentUndecodableSnapshotRejectedAtLoad: a segment whose container
// checksum validates but whose embedded snapshot ReadBinary rejects must
// fail at loadSegment (where Open can refuse it), not panic at first
// Image() use.
func TestSegmentUndecodableSnapshotRejectedAtLoad(t *testing.T) {
	dir := t.TempDir()
	// A well-formed container around snapshot bytes ReadBinary rejects.
	if _, err := writeSegment(dir, 1, []byte("bogus snapshot")); err == nil {
		t.Fatal("writeSegment accepted undecodable snapshot bytes")
	}
	// Craft the container by hand to simulate a format drift: valid CRC,
	// invalid snapshot.
	g := rdf.NewGraph()
	g.Add(rdf.Triple{S: iri("a"), P: iri("p"), O: iri("b")})
	var buf bytes.Buffer
	epoch, err := g.SnapshotBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := writeSegment(dir, epoch, buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(seg.Path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one byte inside the embedded snapshot's magic and re-seal the
	// container CRC so only the snapshot decode can catch it.
	raw[13+8] ^= 0xff
	resealSegment(raw)
	if err := os.WriteFile(seg.Path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := loadSegment(seg.Path); err == nil {
		t.Fatal("loadSegment accepted a segment with an undecodable snapshot")
	}
}

// resealSegment recomputes the container crc32 trailer over the (possibly
// hand-corrupted) body, so tests can craft segments whose container
// validates while the embedded snapshot does not.
func resealSegment(raw []byte) {
	binary.BigEndian.PutUint32(raw[len(raw)-4:], crc32.ChecksumIEEE(raw[:len(raw)-4]))
}
