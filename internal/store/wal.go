// Package store is the durable storage engine: an append-only write-ahead
// log of add/remove records plus immutable segment files produced by
// checkpoints, giving the in-memory rdf.Graph crash recovery and fast
// restarts. The design is stdlib-only:
//
//   - Every effective graph mutation is journaled to the WAL *before* it is
//     applied in memory (the graph's journal hook runs under the graph write
//     lock, ahead of the index update).
//   - A checkpoint freezes the graph into a segment file — the binary
//     snapshot plus sorted fixed-width key sections — then swaps in a fresh
//     WAL holding only the records newer than the segment's epoch.
//   - On open, the newest segment is loaded and the WAL tail replayed on
//     top, filtered by record version, so replay is idempotent and a crash
//     at any point loses nothing that was acknowledged (synced).
//
// Epochs are rdf.Graph version counters: the same token that invalidates
// the cardinality, feedback, and answer caches is the snapshot epoch here.
package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"

	"rdfanalytics/internal/rdf"
)

// SyncMode controls when WAL writes reach stable storage.
type SyncMode int

const (
	// SyncOff never fsyncs; a crash can lose recent acknowledged updates.
	// Fastest, for bulk loads and benchmarks.
	SyncOff SyncMode = iota
	// SyncBatch fsyncs at group-commit points (Store.Sync, called once per
	// update request before the ack is sent) — the default.
	SyncBatch
	// SyncAlways fsyncs after every record.
	SyncAlways
)

// ParseSyncMode maps the -wal-sync flag values to a SyncMode.
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "off":
		return SyncOff, nil
	case "batch", "":
		return SyncBatch, nil
	case "always":
		return SyncAlways, nil
	}
	return 0, fmt.Errorf("store: unknown WAL sync mode %q (want off, batch or always)", s)
}

func (m SyncMode) String() string {
	switch m {
	case SyncOff:
		return "off"
	case SyncAlways:
		return "always"
	default:
		return "batch"
	}
}

// A record is one journaled mutation. The version is the graph version the
// mutation produced; replay filters on it, so re-applying a suffix of the
// log (possible after a crash mid-checkpoint) is a no-op.
type record struct {
	version uint64
	op      rdf.JournalOp
	t       rdf.Triple
}

// WAL file layout:
//
//	magic "RDFW" | version u8 | baseEpoch u64 BE
//	frames: len u32 BE | crc32(payload) u32 BE | payload
//	payload: version u64 BE | op u8 | s | p | o   (terms in snapshot wire encoding)
//
// The base epoch names the segment the log extends; files are named
// wal-<epoch hex16>.log so lexicographic order is epoch order. A torn final
// frame (short write at crash) fails its length or CRC check and is
// truncated away on replay; everything before it is intact.
const (
	walMagic      = "RDFW"
	walVersion    = 1
	walHeaderSize = 4 + 1 + 8
	// maxWALFrame bounds a frame length; larger means a corrupt length
	// field, not a real record (three terms stay far below this).
	maxWALFrame = 64 << 20
)

type wal struct {
	f    *os.File
	w    *bufio.Writer
	path string
	mode SyncMode
	// sticky I/O error: once a write fails, every later append and Sync
	// reports it, so an update can never be acknowledged after its journal
	// entry was dropped.
	err     error
	records int64
	bytes   int64
	scratch []byte
}

func walPath(dir string, epoch uint64) string {
	return fmt.Sprintf("%s/wal-%016x.log", dir, epoch)
}

// createWAL starts an empty log extending the segment at epoch. The header
// is synced immediately so the file is well-formed on disk before any
// record is acknowledged against it.
func createWAL(dir string, epoch uint64, mode SyncMode) (*wal, error) {
	return createWALFile(walPath(dir, epoch), epoch, mode)
}

func createWALFile(path string, epoch uint64, mode SyncMode) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	var hdr [walHeaderSize]byte
	copy(hdr[:], walMagic)
	hdr[4] = walVersion
	binary.BigEndian.PutUint64(hdr[5:], epoch)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return nil, err
	}
	if mode != SyncOff {
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return &wal{f: f, w: bufio.NewWriterSize(f, 64<<10), path: path, mode: mode, bytes: walHeaderSize}, nil
}

// openWALForAppend reopens an existing (already replayed and truncated) log
// and positions at its end.
func openWALForAppend(path string, mode SyncMode) (*wal, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &wal{f: f, w: bufio.NewWriterSize(f, 64<<10), path: path, mode: mode, bytes: fi.Size()}, nil
}

func encodeRecord(dst []byte, rec record) []byte {
	dst = binary.BigEndian.AppendUint64(dst, rec.version)
	dst = append(dst, byte(rec.op))
	dst = rdf.AppendTermBinary(dst, rec.t.S)
	dst = rdf.AppendTermBinary(dst, rec.t.P)
	dst = rdf.AppendTermBinary(dst, rec.t.O)
	return dst
}

func decodeRecord(payload []byte) (record, error) {
	if len(payload) < 9 {
		return record{}, fmt.Errorf("store: WAL payload too short (%d bytes)", len(payload))
	}
	rec := record{
		version: binary.BigEndian.Uint64(payload),
		op:      rdf.JournalOp(payload[8]),
	}
	if rec.op != rdf.JournalAdd && rec.op != rdf.JournalRemove {
		return record{}, fmt.Errorf("store: unknown WAL op %d", payload[8])
	}
	rest := payload[9:]
	for i := 0; i < 3; i++ {
		t, n, err := rdf.DecodeTermBinary(rest)
		if err != nil {
			return record{}, err
		}
		switch i {
		case 0:
			rec.t.S = t
		case 1:
			rec.t.P = t
		case 2:
			rec.t.O = t
		}
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return record{}, fmt.Errorf("store: %d stray bytes in WAL payload", len(rest))
	}
	return rec, nil
}

// append journals one record. In SyncAlways mode it is durable on return;
// otherwise durability waits for Sync.
func (w *wal) append(rec record) error {
	if w.err != nil {
		return w.err
	}
	w.scratch = w.scratch[:0]
	w.scratch = encodeRecord(w.scratch, rec)
	var frame [8]byte
	binary.BigEndian.PutUint32(frame[:4], uint32(len(w.scratch)))
	binary.BigEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(w.scratch))
	if _, err := w.w.Write(frame[:]); err != nil {
		w.err = err
		return err
	}
	if _, err := w.w.Write(w.scratch); err != nil {
		w.err = err
		return err
	}
	w.records++
	w.bytes += int64(8 + len(w.scratch))
	if w.mode == SyncAlways {
		return w.sync()
	}
	return nil
}

// sync flushes buffered frames and, unless SyncOff, fsyncs. This is the
// group-commit point: an update is acknowledged only after its WAL frames
// are on disk. The fsync is timed into rdfa_store_fsync_seconds — a slow
// device shows up there before it shows up as request latency.
func (w *wal) sync() error {
	if w.err != nil {
		return w.err
	}
	if err := w.w.Flush(); err != nil {
		w.err = err
		return err
	}
	if w.mode == SyncOff {
		return nil
	}
	start := time.Now()
	err := w.f.Sync()
	fsyncSeconds.Observe(time.Since(start).Seconds())
	if err != nil {
		w.err = err
		return err
	}
	return nil
}

func (w *wal) close() error {
	flushErr := w.sync()
	closeErr := w.f.Close()
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

// consolidateWALs rewrites the full replayed tail into one fresh log when a
// crash mid-checkpoint left several logs behind, none of which holds every
// surviving record on its own. The new log is written to a temp file and
// renamed into place so the old logs remain the durable copy until the new
// one is complete; only then are they removed.
func consolidateWALs(dir string, epoch uint64, mode SyncMode, tail []record, oldPaths []string) (*wal, error) {
	tmpPath := walPath(dir, epoch) + ".tmp"
	nw, err := createWALFile(tmpPath, epoch, mode)
	if err != nil {
		return nil, err
	}
	for _, rec := range tail {
		if err := nw.append(rec); err != nil {
			nw.close()
			os.Remove(tmpPath)
			return nil, err
		}
	}
	if err := nw.close(); err != nil {
		os.Remove(tmpPath)
		return nil, err
	}
	path := walPath(dir, epoch)
	if err := os.Rename(tmpPath, path); err != nil {
		os.Remove(tmpPath)
		return nil, err
	}
	if err := syncDir(dir); err != nil {
		return nil, err
	}
	for _, old := range oldPaths {
		if old != path {
			os.Remove(old)
		}
	}
	if err := syncDir(dir); err != nil {
		return nil, err
	}
	return openWALForAppend(path, mode)
}

// replayWAL reads every intact record of the log at path and truncates the
// file after the last good frame, discarding a torn tail left by a crash.
// It returns the base epoch from the header, the surviving records, and how
// many bytes were cut.
func replayWAL(path string) (epoch uint64, recs []record, discarded int64, err error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return 0, nil, 0, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return 0, nil, 0, err
	}
	size := fi.Size()
	br := bufio.NewReaderSize(f, 256<<10)
	var hdr [walHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, nil, 0, fmt.Errorf("store: %s: reading WAL header: %w", path, err)
	}
	if string(hdr[:4]) != walMagic {
		return 0, nil, 0, fmt.Errorf("store: %s is not a WAL file (magic %q)", path, hdr[:4])
	}
	if hdr[4] != walVersion {
		return 0, nil, 0, fmt.Errorf("store: %s: unsupported WAL version %d", path, hdr[4])
	}
	epoch = binary.BigEndian.Uint64(hdr[5:])
	good := int64(walHeaderSize)
	for {
		var frame [8]byte
		if _, err := io.ReadFull(br, frame[:]); err != nil {
			break // clean EOF or torn frame header — stop either way
		}
		length := binary.BigEndian.Uint32(frame[:4])
		sum := binary.BigEndian.Uint32(frame[4:])
		if length > maxWALFrame {
			break
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(br, payload); err != nil {
			break
		}
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		rec, decErr := decodeRecord(payload)
		if decErr != nil {
			break
		}
		recs = append(recs, rec)
		good += int64(8 + len(payload))
	}
	if good < size {
		discarded = size - good
		if err := f.Truncate(good); err != nil {
			return 0, nil, 0, fmt.Errorf("store: %s: truncating torn WAL tail: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			return 0, nil, 0, err
		}
	}
	return epoch, recs, discarded, nil
}
