package bench

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sort"
	"sync"
	"time"

	"rdfanalytics/internal/datagen"
	"rdfanalytics/internal/server"
)

// Hot-fingerprint herd benchmark (E13): many concurrent clients hammer a
// small set of identical queries — the access pattern of a dashboard every
// team member has open. The run compares an uncached server (every request
// reaches the engine) against the resilience stack (fingerprint answer cache
// + singleflight collapse): the cached scenario must sustain a multiple of
// the uncached throughput on the same workload.

// HerdConfig parameterizes the herd run.
type HerdConfig struct {
	// Laptops sizes the products KG (default 2000).
	Laptops int
	// Clients is the number of concurrent requesters (default 16).
	Clients int
	// Requests is the per-client request count (default 150).
	Requests int
	Seed     int64
}

func (c HerdConfig) withDefaults() HerdConfig {
	if c.Laptops <= 0 {
		c.Laptops = 2000
	}
	if c.Clients <= 0 {
		c.Clients = 16
	}
	if c.Requests <= 0 {
		c.Requests = 150
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// HerdScenario is one serving configuration's aggregate outcome.
type HerdScenario struct {
	Name       string
	Triples    int
	Requests   int
	Errors     int
	Wall       time.Duration
	Throughput float64 // requests per second
	Mean       time.Duration
	P50        time.Duration
	P95        time.Duration
	// CachedShare is the fraction of responses served without touching the
	// engine (X-Cache hit/collapsed), 0 for the uncached scenario.
	CachedShare float64
}

// herdWorkload is the hot query set — identical texts across all clients, so
// the cache and singleflight see repeated fingerprints.
func herdWorkload() []string {
	return PlannerWorkload
}

// RunHerd executes the workload against both serving configurations and
// returns (uncached, cached) in that order.
func RunHerd(cfg HerdConfig) ([]HerdScenario, error) {
	cfg = cfg.withDefaults()
	g := datagen.Products(datagen.ProductsConfig{
		Laptops:     cfg.Laptops,
		Companies:   16,
		Seed:        cfg.Seed,
		Materialize: true,
	})
	scenarios := []struct {
		name string
		sc   server.Config
	}{
		{"uncached", server.Config{NoCollapse: true, QueryTimeout: 30 * time.Second}},
		{"cached", server.Config{
			CacheBytes:    64 << 20,
			MaxConcurrent: 64,
			QueueDepth:    1024,
			QueryTimeout:  30 * time.Second,
		}},
	}
	var out []HerdScenario
	for _, sc := range scenarios {
		s := server.NewWithConfig(g, datagen.ExampleNS, sc.sc)
		res, err := runHerdScenario(s, sc.name, cfg)
		s.Close()
		if err != nil {
			return nil, err
		}
		res.Triples = g.Len()
		out = append(out, res)
	}
	return out, nil
}

func runHerdScenario(s *server.Server, name string, cfg HerdConfig) (HerdScenario, error) {
	queries := herdWorkload()
	paths := make([]string, len(queries))
	for i, q := range queries {
		paths[i] = "/sparql?query=" + url.QueryEscape(q)
	}
	var (
		mu     sync.Mutex
		durs   []time.Duration
		errors int
		cached int
	)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			myDurs := make([]time.Duration, 0, cfg.Requests)
			myErrs, myCached := 0, 0
			for i := 0; i < cfg.Requests; i++ {
				p := paths[(c+i)%len(paths)]
				req := httptest.NewRequest("GET", p, nil)
				rec := httptest.NewRecorder()
				t0 := time.Now()
				s.ServeHTTP(rec, req)
				myDurs = append(myDurs, time.Since(t0))
				if rec.Code != http.StatusOK {
					myErrs++
				}
				switch rec.Header().Get("X-Cache") {
				case "hit", "collapsed", "stale":
					myCached++
				}
			}
			mu.Lock()
			durs = append(durs, myDurs...)
			errors += myErrs
			cached += myCached
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	if errors == len(durs) {
		return HerdScenario{}, fmt.Errorf("bench herd: scenario %s: every request failed", name)
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	var total time.Duration
	for _, d := range durs {
		total += d
	}
	n := len(durs)
	return HerdScenario{
		Name:        name,
		Requests:    n,
		Errors:      errors,
		Wall:        wall,
		Throughput:  float64(n) / wall.Seconds(),
		Mean:        total / time.Duration(n),
		P50:         durs[n/2],
		P95:         durs[(n*95)/100],
		CachedShare: float64(cached) / float64(n),
	}, nil
}

// HerdSpeedup returns cached/uncached throughput, 0 when a scenario is
// missing.
func HerdSpeedup(scenarios []HerdScenario) float64 {
	var un, ca float64
	for _, s := range scenarios {
		switch s.Name {
		case "uncached":
			un = s.Throughput
		case "cached":
			ca = s.Throughput
		}
	}
	if un == 0 {
		return 0
	}
	return ca / un
}

// WriteHerdTable renders the scenario comparison.
func WriteHerdTable(w io.Writer, cfg HerdConfig, scenarios []HerdScenario) {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "Hot-fingerprint herd (%d clients × %d requests, %d-query hot set)\n",
		cfg.Clients, cfg.Requests, len(herdWorkload()))
	fmt.Fprintf(w, "%-10s %10s %10s %12s %12s %12s %10s %8s\n",
		"scenario", "requests", "errors", "throughput", "p50", "p95", "cached", "wall")
	for _, s := range scenarios {
		fmt.Fprintf(w, "%-10s %10d %10d %9.0f/s %12s %12s %9.1f%% %8s\n",
			s.Name, s.Requests, s.Errors, s.Throughput,
			s.P50.Round(10*time.Microsecond), s.P95.Round(10*time.Microsecond),
			100*s.CachedShare, s.Wall.Round(time.Millisecond))
	}
	fmt.Fprintf(w, "cached/uncached throughput: %.1f×\n", HerdSpeedup(scenarios))
}

// HerdRecords flattens the scenarios into history records; the speedup and
// cache share ride in the labels.
func HerdRecords(experiment string, scenarios []HerdScenario) []Record {
	speedup := HerdSpeedup(scenarios)
	out := make([]Record, 0, len(scenarios))
	for _, s := range scenarios {
		out = append(out, Record{
			Experiment: experiment,
			Query:      s.Name,
			Label: fmt.Sprintf("rps=%.0f cached_share=%.2f speedup_vs_uncached=%.1f errors=%d",
				s.Throughput, s.CachedShare, speedup, s.Errors),
			Triples: s.Triples,
			Runs:    s.Requests,
			NsPerOp: s.Mean.Nanoseconds(),
			P95Ns:   s.P95.Nanoseconds(),
		})
	}
	return out
}
