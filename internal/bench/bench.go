// Package bench is the efficiency harness of §6.4: it measures the
// end-to-end latency of representative analytic queries (click-sequence →
// HIFUN → SPARQL → answer) over datasets of increasing size, in two
// endpoint-load regimes — "off-peak" (uncontended store, Table 6.2) and
// "peak" (the store concurrently serving a pool of background query
// workers, Table 6.1). The paper measured a remote Virtuoso endpoint at
// different hours of day; the worker pool is the substitution that
// recreates the same contention phenomenon locally (see DESIGN.md).
package bench

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"rdfanalytics/internal/datagen"
	"rdfanalytics/internal/hifun"
	"rdfanalytics/internal/par"
	"rdfanalytics/internal/rdf"
	"rdfanalytics/internal/sparql"
)

// QuerySpec is one benchmark query: a HIFUN query over the products KG,
// with the root class of its analysis context.
type QuerySpec struct {
	ID    string
	Label string
	HIFUN string
	Root  string // class local name within the products namespace
}

// PaperQueries are the four representative queries of the evaluation,
// matching the §5.1 examples in increasing complexity.
var PaperQueries = []QuerySpec{
	{"Q1", "AVG price (no grouping)", "(ε, price, AVG)", "Laptop"},
	{"Q2", "COUNT by manufacturer origin (path)", "(origin.manufacturer, ID, COUNT)", "Laptop"},
	{"Q3", "AVG price by manufacturer, USB>=2", "(manufacturer/usb, price/>=0, AVG)", "Laptop"},
	{"Q4", "SUM price by maker+origin, HAVING", "(manufacturer & origin.manufacturer, price, SUM/>0)", "Laptop"},
}

// Scale is one dataset size of the sweep.
type Scale struct {
	Name    string
	Laptops int
}

// DefaultScales approximates the paper's small/medium/large endpoints; the
// generator yields ≈9 triples per laptop after RDFS materialization.
var DefaultScales = []Scale{
	{"10k", 1100},   // ≈10k triples after inference
	{"50k", 5600},   // ≈50k
	{"100k", 11200}, // ≈100k
}

// Result is one measured cell: a query at a scale under a load regime.
type Result struct {
	Query   QuerySpec
	Scale   Scale
	Triples int
	Peak    bool
	Workers int
	Runs    int
	Mean    time.Duration
	P50     time.Duration
	P95     time.Duration
	// AllocsPerOp is the heap allocation count per measured execution
	// (process-wide mallocs delta over the measured loop; in peak mode the
	// background workers contribute, so compare like regimes only).
	AllocsPerOp uint64
	// Parallelism is the evaluator worker-pool setting the cell ran with.
	Parallelism int
}

// Config parameterizes a run.
type Config struct {
	Scales  []Scale
	Queries []QuerySpec
	// Runs is the number of measured repetitions per cell (default 7).
	Runs int
	// Workers is the background query pool size in peak mode (default 8).
	Workers int
	Seed    int64
	// Parallelism is passed to the SPARQL evaluator (sparql.Options):
	// 0 = GOMAXPROCS, 1 = sequential ablation.
	Parallelism int
}

func (c Config) withDefaults() Config {
	if len(c.Scales) == 0 {
		c.Scales = DefaultScales
	}
	if len(c.Queries) == 0 {
		c.Queries = PaperQueries
	}
	if c.Runs <= 0 {
		c.Runs = 7
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// buildContext materializes the products KG at the scale and wraps it in a
// HIFUN context rooted at the query's class.
func buildContext(scale Scale, seed int64, root string) (*hifun.Context, int) {
	g := datagen.Products(datagen.ProductsConfig{
		Laptops:     scale.Laptops,
		Companies:   16,
		Seed:        seed,
		Materialize: true,
	})
	ctx := hifun.NewContext(g, datagen.ExampleNS)
	if root != "" {
		ctx = ctx.WithRoot(rdf.NewIRI(datagen.ExampleNS + root))
	}
	return ctx, g.Len()
}

// PrepareQuery parses and fixes up a query spec (Q3's placeholder
// restriction is rewritten into a range filter on USBPorts through the
// measuring part).
func PrepareQuery(spec QuerySpec, ns string) (*hifun.Query, error) {
	switch spec.ID {
	case "Q3":
		// Built programmatically: AVG price grouped by manufacturer over
		// laptops with USBPorts >= 2.
		q := &hifun.Query{
			Grouping:  hifun.Prop{Name: "manufacturer"},
			Measuring: hifun.Prop{Name: "price"},
			MeasRestrs: []hifun.Restriction{{
				Path:  hifun.Prop{Name: "USBPorts"},
				Op:    ">=",
				Value: rdf.NewInteger(2),
			}},
			Ops: []hifun.Operation{{Op: hifun.OpAvg}},
		}
		return q, nil
	default:
		return hifun.Parse(spec.HIFUN, ns)
	}
}

// workerQueries is the background load mix: lightweight lookups and one
// aggregate, approximating a public endpoint's traffic.
var workerQueries = []string{
	`SELECT ?s WHERE { ?s <` + rdf.RDFType + `> <` + datagen.ExampleNS + `Laptop> } LIMIT 50`,
	`SELECT ?s ?p WHERE { ?s ?p <` + datagen.ExampleNS + `USA> } LIMIT 50`,
	`SELECT ?m (COUNT(?s) AS ?n) WHERE { ?s <` + datagen.ExampleNS + `manufacturer> ?m } GROUP BY ?m`,
	`SELECT ?s ?o WHERE { ?s <` + datagen.ExampleNS + `hardDrive> ?o } LIMIT 100`,
}

// StartWorkers launches n background query workers against g (the "peak
// hours" contention of Table 6.1) and returns a function that stops them.
func StartWorkers(g *rdf.Graph, n int) func() {
	cctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := w
			for cctx.Err() == nil {
				_, _ = sparql.Select(g, workerQueries[i%len(workerQueries)])
				i++
			}
		}(w)
	}
	return func() {
		cancel()
		wg.Wait()
	}
}

// RunCell measures one (query, scale, regime) cell.
func RunCell(spec QuerySpec, scale Scale, peak bool, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	ctx, triples := buildContext(scale, cfg.Seed, spec.Root)
	q, err := PrepareQuery(spec, ctx.NS)
	if err != nil {
		return Result{}, fmt.Errorf("bench %s: %w", spec.ID, err)
	}
	src, err := ctx.Translator().Translate(q)
	if err != nil {
		return Result{}, fmt.Errorf("bench %s: %w", spec.ID, err)
	}
	parsed, err := sparql.Parse(src)
	if err != nil {
		return Result{}, fmt.Errorf("bench %s: generated SPARQL: %w", spec.ID, err)
	}
	// Background load (peak regime).
	stop := func() {}
	if peak {
		stop = StartWorkers(ctx.Graph, cfg.Workers)
	}
	defer stop()
	opts := sparql.Options{Parallelism: cfg.Parallelism}
	// Warmup.
	if _, err := sparql.ExecSelectOpts(ctx.Graph, parsed, opts); err != nil {
		return Result{}, err
	}
	var msBefore, msAfter runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	durs := make([]time.Duration, 0, cfg.Runs)
	for i := 0; i < cfg.Runs; i++ {
		start := time.Now()
		if _, err := sparql.ExecSelectOpts(ctx.Graph, parsed, opts); err != nil {
			return Result{}, err
		}
		durs = append(durs, time.Since(start))
	}
	runtime.ReadMemStats(&msAfter)
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	var total time.Duration
	for _, d := range durs {
		total += d
	}
	res := Result{
		Query: spec, Scale: scale, Triples: triples, Peak: peak,
		Runs: cfg.Runs, Mean: total / time.Duration(len(durs)),
		P50: durs[len(durs)/2], P95: durs[(len(durs)*95)/100],
		AllocsPerOp: (msAfter.Mallocs - msBefore.Mallocs) / uint64(cfg.Runs),
		Parallelism: par.Workers(cfg.Parallelism),
	}
	if peak {
		res.Workers = cfg.Workers
	}
	return res, nil
}

// Run measures the full sweep for one regime (Table 6.1 when peak, 6.2
// otherwise).
func Run(peak bool, cfg Config) ([]Result, error) {
	cfg = cfg.withDefaults()
	var out []Result
	for _, scale := range cfg.Scales {
		for _, q := range cfg.Queries {
			r, err := RunCell(q, scale, peak, cfg)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// WriteTable renders results in the layout of Tables 6.1/6.2: one row per
// query, one column block per scale.
func WriteTable(w io.Writer, title string, results []Result) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-4s %-40s", "ID", "Query")
	scales := []Scale{}
	seen := map[string]bool{}
	for _, r := range results {
		if !seen[r.Scale.Name] {
			seen[r.Scale.Name] = true
			scales = append(scales, r.Scale)
		}
	}
	for _, s := range scales {
		fmt.Fprintf(w, " %14s", s.Name+" mean")
		fmt.Fprintf(w, " %14s", s.Name+" p95")
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", 45+29*len(scales)))
	queries := []QuerySpec{}
	seenQ := map[string]bool{}
	for _, r := range results {
		if !seenQ[r.Query.ID] {
			seenQ[r.Query.ID] = true
			queries = append(queries, r.Query)
		}
	}
	for _, q := range queries {
		fmt.Fprintf(w, "%-4s %-40s", q.ID, q.Label)
		for _, s := range scales {
			for _, r := range results {
				if r.Query.ID == q.ID && r.Scale.Name == s.Name {
					fmt.Fprintf(w, " %14s", r.Mean.Round(10*time.Microsecond))
					fmt.Fprintf(w, " %14s", r.P95.Round(10*time.Microsecond))
				}
			}
		}
		fmt.Fprintln(w)
	}
}
