package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"rdfanalytics/internal/datagen"
	"rdfanalytics/internal/rdf"
	"rdfanalytics/internal/store"
)

// E14 — durable-store restart: cold-start latency of re-parsing the
// dataset from Turtle (parse + materialize, what every boot paid before the
// store existed) versus restoring from a checkpoint segment plus WAL tail
// replay. Both paths end at the same graph; the acceptance bar is
// segment+WAL restore at least 5× faster than the Turtle re-parse.

// StoreConfig sizes the restart experiment.
type StoreConfig struct {
	// Laptops sizes the products KG (default 2000).
	Laptops int
	// Updates is the number of post-checkpoint mutations left in the WAL
	// tail, so the restore path includes real replay work (default 500).
	Updates int
	// Runs is the number of timed repetitions per path (default 5).
	Runs int
	// Seed fixes the generated dataset.
	Seed int64
}

func (c StoreConfig) withDefaults() StoreConfig {
	if c.Laptops <= 0 {
		c.Laptops = 2000
	}
	if c.Updates <= 0 {
		c.Updates = 500
	}
	if c.Runs <= 0 {
		c.Runs = 5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// StoreResult is the outcome of one restart comparison.
type StoreResult struct {
	Config      StoreConfig
	Triples     int
	TurtleBytes int64
	// TurtleMean / RestoreMean are the per-run means of the two cold-start
	// paths; ReplayRecords is the WAL tail length the restore replayed.
	TurtleMean    time.Duration
	RestoreMean   time.Duration
	ReplayRecords int
	Speedup       float64
}

// RunStoreRestart builds the dataset, persists it (checkpoint + a WAL tail
// of post-checkpoint updates), exports the equivalent Turtle, then times
// both cold-start paths and verifies they reach the same graph.
func RunStoreRestart(cfg StoreConfig) (*StoreResult, error) {
	cfg = cfg.withDefaults()
	workDir, err := os.MkdirTemp("", "rdfa-bench-store-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(workDir)
	dataDir := filepath.Join(workDir, "data")

	g := datagen.Products(datagen.ProductsConfig{
		Laptops: cfg.Laptops, Companies: 16, Seed: cfg.Seed, Materialize: true,
	})
	st, err := store.Open(store.Options{Dir: dataDir, Sync: store.SyncOff})
	if err != nil {
		return nil, err
	}
	if err := st.Bootstrap(g); err != nil {
		return nil, err
	}
	// Leave a realistic WAL tail: updates journaled after the checkpoint.
	ns := datagen.ExampleNS
	for i := 0; i < cfg.Updates; i++ {
		g.Add(rdf.Triple{
			S: rdf.NewIRI(fmt.Sprintf("%slaptop%d", ns, i%cfg.Laptops)),
			P: rdf.NewIRI(ns + "auditTag"),
			O: rdf.NewInteger(int64(i)),
		})
	}
	if err := st.Sync(); err != nil {
		return nil, err
	}
	replay := st.Stats().TailRecords
	if err := st.Close(); err != nil {
		return nil, err
	}

	// Export the final graph as Turtle: the re-parse path must produce the
	// same triples the store restores, or the comparison is apples-to-pears.
	ttlPath := filepath.Join(workDir, "dataset.nt")
	f, err := os.Create(ttlPath)
	if err != nil {
		return nil, err
	}
	if err := rdf.WriteNTriples(f, g); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	fi, err := os.Stat(ttlPath)
	if err != nil {
		return nil, err
	}

	res := &StoreResult{Config: cfg, Triples: g.Len(), TurtleBytes: fi.Size(), ReplayRecords: replay}

	// Path A: Turtle re-parse + materialize (the snapshot was taken post-
	// materialization, so inference adds nothing new — but a cold boot
	// still has to run it to know that).
	var turtleTotal time.Duration
	for i := 0; i < cfg.Runs; i++ {
		start := time.Now()
		tf, err := os.Open(ttlPath)
		if err != nil {
			return nil, err
		}
		tg, err := rdf.LoadTurtle(tf)
		tf.Close()
		if err != nil {
			return nil, err
		}
		rdf.Materialize(tg)
		turtleTotal += time.Since(start)
		if tg.Len() != g.Len() {
			return nil, fmt.Errorf("bench: turtle cold start reached %d triples, want %d", tg.Len(), g.Len())
		}
	}
	res.TurtleMean = turtleTotal / time.Duration(cfg.Runs)

	// Path B: segment + WAL replay.
	var restoreTotal time.Duration
	for i := 0; i < cfg.Runs; i++ {
		start := time.Now()
		rst, err := store.Open(store.Options{Dir: dataDir, Sync: store.SyncOff})
		if err != nil {
			return nil, err
		}
		restoreTotal += time.Since(start)
		if rst.Graph().Len() != g.Len() {
			rst.Close()
			return nil, fmt.Errorf("bench: restore reached %d triples, want %d", rst.Graph().Len(), g.Len())
		}
		if err := rst.Close(); err != nil {
			return nil, err
		}
	}
	res.RestoreMean = restoreTotal / time.Duration(cfg.Runs)
	if res.RestoreMean > 0 {
		res.Speedup = float64(res.TurtleMean) / float64(res.RestoreMean)
	}
	return res, nil
}

// WriteStoreTable renders the E14 comparison.
func WriteStoreTable(w io.Writer, res *StoreResult) {
	fmt.Fprintf(w, "dataset: %d triples (%d KiB as N-Triples), WAL tail %d records\n\n",
		res.Triples, res.TurtleBytes/1024, res.ReplayRecords)
	fmt.Fprintf(w, "%-24s %14s\n", "cold-start path", "mean")
	fmt.Fprintf(w, "%-24s %14s\n", "turtle parse+materialize", res.TurtleMean.Round(time.Microsecond))
	fmt.Fprintf(w, "%-24s %14s\n", "segment+WAL restore", res.RestoreMean.Round(time.Microsecond))
	fmt.Fprintf(w, "\nspeedup: %.1fx (acceptance bar: ≥5x)\n", res.Speedup)
}

// StoreRecords flattens the comparison into the BENCH_results.json schema.
func StoreRecords(experiment string, res *StoreResult) []Record {
	scale := fmt.Sprintf("laptops=%d,updates=%d", res.Config.Laptops, res.Config.Updates)
	return []Record{
		{
			Experiment: experiment, Label: "turtle-parse-materialize", Scale: scale,
			Triples: res.Triples, Runs: res.Config.Runs, NsPerOp: res.TurtleMean.Nanoseconds(),
		},
		{
			Experiment: experiment, Label: "segment-wal-restore", Scale: scale,
			Triples: res.Triples, Runs: res.Config.Runs, NsPerOp: res.RestoreMean.Nanoseconds(),
		},
	}
}
