package bench

import (
	"encoding/json"
	"os"
)

// Record is one machine-readable measurement row of BENCH_results.json:
// the flat schema downstream tooling (regression diffing, plotting) reads,
// keyed by experiment id.
type Record struct {
	Experiment  string `json:"experiment"`
	Query       string `json:"query,omitempty"`
	Label       string `json:"label,omitempty"`
	Scale       string `json:"scale,omitempty"`
	Triples     int    `json:"dataset_triples,omitempty"`
	Peak        bool   `json:"peak"`
	Workers     int    `json:"load_workers,omitempty"`
	Parallelism int    `json:"parallelism"`
	Runs        int    `json:"runs,omitempty"`
	NsPerOp     int64  `json:"ns_per_op"`
	P95Ns       int64  `json:"p95_ns,omitempty"`
	AllocsPerOp uint64 `json:"allocs_per_op,omitempty"`
}

// Records flattens a sweep's results into JSON records under one
// experiment id.
func Records(experiment string, results []Result) []Record {
	out := make([]Record, 0, len(results))
	for _, r := range results {
		out = append(out, Record{
			Experiment:  experiment,
			Query:       r.Query.ID,
			Label:       r.Query.Label,
			Scale:       r.Scale.Name,
			Triples:     r.Triples,
			Peak:        r.Peak,
			Workers:     r.Workers,
			Parallelism: r.Parallelism,
			Runs:        r.Runs,
			NsPerOp:     r.Mean.Nanoseconds(),
			P95Ns:       r.P95.Nanoseconds(),
			AllocsPerOp: r.AllocsPerOp,
		})
	}
	return out
}

// WriteJSON writes the records as indented JSON to path.
func WriteJSON(path string, records []Record) error {
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
