package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Record is one machine-readable measurement row of BENCH_results.json:
// the flat schema downstream tooling (regression diffing, plotting) reads,
// keyed by experiment id.
type Record struct {
	Experiment  string `json:"experiment"`
	Query       string `json:"query,omitempty"`
	Label       string `json:"label,omitempty"`
	Scale       string `json:"scale,omitempty"`
	Triples     int    `json:"dataset_triples,omitempty"`
	Peak        bool   `json:"peak"`
	Workers     int    `json:"load_workers,omitempty"`
	Parallelism int    `json:"parallelism"`
	Runs        int    `json:"runs,omitempty"`
	NsPerOp     int64  `json:"ns_per_op"`
	P95Ns       int64  `json:"p95_ns,omitempty"`
	AllocsPerOp uint64 `json:"allocs_per_op,omitempty"`
}

// Records flattens a sweep's results into JSON records under one
// experiment id.
func Records(experiment string, results []Result) []Record {
	out := make([]Record, 0, len(results))
	for _, r := range results {
		out = append(out, Record{
			Experiment:  experiment,
			Query:       r.Query.ID,
			Label:       r.Query.Label,
			Scale:       r.Scale.Name,
			Triples:     r.Triples,
			Peak:        r.Peak,
			Workers:     r.Workers,
			Parallelism: r.Parallelism,
			Runs:        r.Runs,
			NsPerOp:     r.Mean.Nanoseconds(),
			P95Ns:       r.P95.Nanoseconds(),
			AllocsPerOp: r.AllocsPerOp,
		})
	}
	return out
}

// WriteJSON writes the records as indented JSON to path.
func WriteJSON(path string, records []Record) error {
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// HistoryEntry is one benchrunner invocation in the cumulative
// BENCH_history.json: when it ran, on which commit (git describe), with
// which configuration, and the measurements it produced. Appending every
// run — instead of overwriting like BENCH_results.json — gives regression
// tooling a performance timeline to diff against.
type HistoryEntry struct {
	When    time.Time      `json:"when"`
	Git     string         `json:"git,omitempty"`
	Config  map[string]any `json:"config,omitempty"`
	Records []Record       `json:"records"`
	// Telemetry is the sampler's end-of-run snapshot (heap, GC, goroutines,
	// tick counts), so the history correlates performance with runtime
	// pressure across commits.
	Telemetry map[string]float64 `json:"telemetry,omitempty"`
}

// AppendHistory reads path (a JSON array of HistoryEntry; a missing file
// starts a new history), appends entry, and rewrites the file. A corrupt
// history is an error, not silently truncated.
func AppendHistory(path string, entry HistoryEntry) error {
	var hist []HistoryEntry
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &hist); err != nil {
			return fmt.Errorf("bench: %s is not a history array: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	hist = append(hist, entry)
	data, err := json.MarshalIndent(hist, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
