package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestAppendHistory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_history.json")
	e1 := HistoryEntry{
		When:    time.Date(2026, 8, 5, 10, 0, 0, 0, time.UTC),
		Git:     "abc1234",
		Config:  map[string]any{"quick": true},
		Records: []Record{{Experiment: "E6", NsPerOp: 100}},
	}
	if err := AppendHistory(path, e1); err != nil {
		t.Fatal(err)
	}
	e2 := e1
	e2.Git = "def5678"
	if err := AppendHistory(path, e2); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var hist []HistoryEntry
	if err := json.Unmarshal(data, &hist); err != nil {
		t.Fatalf("history not a JSON array: %v", err)
	}
	if len(hist) != 2 || hist[0].Git != "abc1234" || hist[1].Git != "def5678" {
		t.Fatalf("history = %+v, want both runs in order", hist)
	}
	if hist[0].Config["quick"] != true || len(hist[1].Records) != 1 {
		t.Fatalf("config/records lost: %+v", hist)
	}
	// A corrupt file must error, not be silently replaced.
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AppendHistory(path, e1); err == nil {
		t.Fatal("corrupt history accepted")
	}
}
