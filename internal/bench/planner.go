package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"rdfanalytics/internal/datagen"
	"rdfanalytics/internal/sparql"
)

// Planner feedback benchmark (the q-error loop of the adaptive planner):
// a fixed workload of multi-join SPARQL queries is replayed over the
// products KG in several passes sharing one feedback store. Pass 1 plans
// cold from the stats cache; later passes plan from the cardinalities the
// earlier passes observed. The per-pass worst q-error must fall — ideally
// to 1 — while latency does not regress.

// PlannerWorkload is the replayed query mix: star and chain joins whose
// intermediate cardinalities the cold estimator cannot know exactly.
var PlannerWorkload = []string{
	`PREFIX ex: <` + datagen.ExampleNS + `>
SELECT ?s ?m ?c WHERE {
  ?s a ex:Laptop .
  ?s ex:manufacturer ?m .
  ?m ex:origin ?c .
  ?s ex:price ?p .
}`,
	`PREFIX ex: <` + datagen.ExampleNS + `>
SELECT ?s ?hdm ?where WHERE {
  ?s ex:hardDrive ?hd .
  ?hd ex:manufacturer ?hdm .
  ?hdm ex:origin ?o .
  ?o ex:locatedAt ?where .
}`,
	`PREFIX ex: <` + datagen.ExampleNS + `>
SELECT ?s ?p WHERE {
  ?s a ex:Laptop .
  ?s ex:USBPorts ?u .
  ?s ex:price ?p .
  ?s ex:releaseDate ?d .
  FILTER(?u >= 2)
}`,
	`PREFIX ex: <` + datagen.ExampleNS + `>
SELECT ?m (COUNT(?s) AS ?n) WHERE {
  ?s ex:manufacturer ?m .
  ?s ex:hardDrive ?hd .
  ?hd a ex:SSD .
} GROUP BY ?m`,
}

// PlannerConfig parameterizes the feedback-convergence run.
type PlannerConfig struct {
	// Laptops sizes the products KG (default 2000).
	Laptops int
	// Passes is how many times the workload replays (default 2; the
	// interesting comparison is pass 1 vs pass 2).
	Passes int
	// Runs is the measured repetitions of each query per pass (default 5).
	Runs int
	Seed int64
}

func (c PlannerConfig) withDefaults() PlannerConfig {
	if c.Laptops <= 0 {
		c.Laptops = 2000
	}
	if c.Passes <= 0 {
		c.Passes = 2
	}
	if c.Runs <= 0 {
		c.Runs = 5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// PlannerPass is one workload replay: its worst scan q-error and the
// latency quantiles over every (query, run) execution of the pass.
type PlannerPass struct {
	Pass      int
	Triples   int
	Runs      int
	MaxQError float64
	Mean      time.Duration
	P50       time.Duration
	P95       time.Duration
	// FeedbackHits is the cumulative feedback-store hit count after the
	// pass (0 after pass 1: nothing was seeded yet when it planned).
	FeedbackHits uint64
}

// RunPlannerFeedback replays the workload cfg.Passes times over a shared
// feedback store and reports the per-pass convergence.
func RunPlannerFeedback(cfg PlannerConfig) ([]PlannerPass, error) {
	cfg = cfg.withDefaults()
	g := datagen.Products(datagen.ProductsConfig{
		Laptops:     cfg.Laptops,
		Companies:   16,
		Seed:        cfg.Seed,
		Materialize: true,
	})
	type prepared struct {
		q    *sparql.Query
		fpID string
	}
	queries := make([]prepared, 0, len(PlannerWorkload))
	for _, src := range PlannerWorkload {
		q, err := sparql.Parse(src)
		if err != nil {
			return nil, fmt.Errorf("bench planner: %w", err)
		}
		queries = append(queries, prepared{q: q, fpID: sparql.FingerprintID(sparql.Fingerprint(q))})
	}
	fb := sparql.NewFeedbackStore()
	var passes []PlannerPass
	for pass := 1; pass <= cfg.Passes; pass++ {
		maxQ := 0.0
		var durs []time.Duration
		for _, pq := range queries {
			for run := 0; run < cfg.Runs; run++ {
				// Every execution observes into the shared store, so later
				// runs within a pass already plan warm; the pass's q-error is
				// therefore taken from the first run only — cold on pass 1,
				// feedback-seeded from pass 2 on.
				prof := sparql.NewProfile("query")
				opts := sparql.Options{
					Planner:       sparql.PlannerFeedback,
					Feedback:      fb,
					FingerprintID: pq.fpID,
					Profile:       prof,
				}
				start := time.Now()
				if _, err := sparql.ExecSelectOpts(g, pq.q, opts); err != nil {
					return nil, err
				}
				durs = append(durs, time.Since(start))
				if run == 0 {
					if qe := prof.MaxQError(); qe > maxQ {
						maxQ = qe
					}
				}
			}
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		var total time.Duration
		for _, d := range durs {
			total += d
		}
		passes = append(passes, PlannerPass{
			Pass:         pass,
			Triples:      g.Len(),
			Runs:         len(durs),
			MaxQError:    maxQ,
			Mean:         total / time.Duration(len(durs)),
			P50:          durs[len(durs)/2],
			P95:          durs[(len(durs)*95)/100],
			FeedbackHits: fb.Stats().Hits,
		})
	}
	return passes, nil
}

// WritePlannerTable renders the per-pass convergence.
func WritePlannerTable(w io.Writer, passes []PlannerPass) {
	fmt.Fprintf(w, "Planner feedback convergence (%d queries × %d passes)\n",
		len(PlannerWorkload), len(passes))
	fmt.Fprintf(w, "%-6s %12s %12s %12s %12s %14s\n",
		"pass", "max q-error", "mean", "p50", "p95", "feedback hits")
	for _, p := range passes {
		fmt.Fprintf(w, "%-6d %12.2f %12s %12s %12s %14d\n",
			p.Pass, p.MaxQError,
			p.Mean.Round(10*time.Microsecond), p.P50.Round(10*time.Microsecond),
			p.P95.Round(10*time.Microsecond), p.FeedbackHits)
	}
}

// PlannerRecords flattens the passes into history records under one
// experiment id; q-error rides in the label since the Record schema is
// latency-shaped.
func PlannerRecords(experiment string, passes []PlannerPass) []Record {
	out := make([]Record, 0, len(passes))
	for _, p := range passes {
		out = append(out, Record{
			Experiment: experiment,
			Query:      fmt.Sprintf("pass%d", p.Pass),
			Label:      fmt.Sprintf("max_q_error=%.3f feedback_hits=%d", p.MaxQError, p.FeedbackHits),
			Triples:    p.Triples,
			Runs:       p.Runs,
			NsPerOp:    p.Mean.Nanoseconds(),
			P95Ns:      p.P95.Nanoseconds(),
		})
	}
	return out
}
