package bench

import (
	"strings"
	"testing"
	"time"
)

var quickCfg = Config{
	Scales:  []Scale{{"tiny", 60}},
	Runs:    3,
	Workers: 2,
	Seed:    1,
}

func TestRunCellOffPeak(t *testing.T) {
	for _, q := range PaperQueries {
		r, err := RunCell(q, quickCfg.Scales[0], false, quickCfg)
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		if r.Mean <= 0 || r.P95 < r.P50 {
			t.Errorf("%s: implausible timings %+v", q.ID, r)
		}
		if r.Triples == 0 {
			t.Errorf("%s: empty dataset", q.ID)
		}
		if r.Peak || r.Workers != 0 {
			t.Errorf("%s: off-peak cell marked peak", q.ID)
		}
	}
}

func TestRunCellPeak(t *testing.T) {
	r, err := RunCell(PaperQueries[0], quickCfg.Scales[0], true, quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Peak || r.Workers != 2 {
		t.Errorf("peak metadata wrong: %+v", r)
	}
}

func TestRunSweepAndTable(t *testing.T) {
	results, err := Run(false, quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(PaperQueries) {
		t.Fatalf("cells = %d", len(results))
	}
	var sb strings.Builder
	WriteTable(&sb, "Table 6.2 (off-peak)", results)
	out := sb.String()
	for _, q := range PaperQueries {
		if !strings.Contains(out, q.ID) {
			t.Errorf("table missing %s:\n%s", q.ID, out)
		}
	}
	if !strings.Contains(out, "tiny mean") {
		t.Errorf("table missing scale column:\n%s", out)
	}
}

// TestScalingShape: latency grows with dataset size (the phenomenon of
// §6.4: "the average query time increases with the dataset size").
func TestScalingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling sweep in -short mode")
	}
	cfg := Config{
		Scales: []Scale{{"s", 100}, {"xl", 3000}},
		Runs:   3,
		Seed:   1,
	}
	q := PaperQueries[3] // the heaviest
	small, err := RunCell(q, cfg.Scales[0], false, cfg)
	if err != nil {
		t.Fatal(err)
	}
	large, err := RunCell(q, cfg.Scales[1], false, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if large.Mean <= small.Mean {
		t.Errorf("latency did not grow with size: %v (100) vs %v (3000)", small.Mean, large.Mean)
	}
}

// TestPeakSlowerThanOffPeak: contention raises latency (the Table 6.1 vs
// 6.2 phenomenon). Uses generous margins to stay robust on CI machines.
func TestPeakSlowerThanOffPeak(t *testing.T) {
	if testing.Short() {
		t.Skip("contention test in -short mode")
	}
	cfg := Config{Scales: []Scale{{"m", 1200}}, Runs: 5, Workers: 8, Seed: 1}
	q := PaperQueries[1]
	off, err := RunCell(q, cfg.Scales[0], false, cfg)
	if err != nil {
		t.Fatal(err)
	}
	peak, err := RunCell(q, cfg.Scales[0], true, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The peak mean should not be dramatically *faster*; equality is
	// possible on many-core machines, so assert a weak one-sided bound.
	if peak.Mean < off.Mean/2 {
		t.Errorf("peak (%v) implausibly faster than off-peak (%v)", peak.Mean, off.Mean)
	}
	t.Logf("off-peak %v, peak %v (x%.2f)", off.Mean, peak.Mean,
		float64(peak.Mean)/float64(off.Mean))
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Runs != 7 || c.Workers != 8 || len(c.Scales) != 3 || len(c.Queries) != 4 {
		t.Errorf("defaults: %+v", c)
	}
}

func TestPrepareQ3(t *testing.T) {
	q, err := PrepareQuery(PaperQueries[2], "http://e/")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.MeasRestrs) != 1 || q.MeasRestrs[0].Op != ">=" {
		t.Fatalf("Q3 shape: %+v", q)
	}
}

var _ = time.Now
