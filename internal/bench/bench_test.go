package bench

import (
	"strings"
	"testing"
	"time"
)

var quickCfg = Config{
	Scales:  []Scale{{"tiny", 60}},
	Runs:    3,
	Workers: 2,
	Seed:    1,
}

func TestRunCellOffPeak(t *testing.T) {
	for _, q := range PaperQueries {
		r, err := RunCell(q, quickCfg.Scales[0], false, quickCfg)
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		if r.Mean <= 0 || r.P95 < r.P50 {
			t.Errorf("%s: implausible timings %+v", q.ID, r)
		}
		if r.Triples == 0 {
			t.Errorf("%s: empty dataset", q.ID)
		}
		if r.Peak || r.Workers != 0 {
			t.Errorf("%s: off-peak cell marked peak", q.ID)
		}
	}
}

func TestRunCellPeak(t *testing.T) {
	r, err := RunCell(PaperQueries[0], quickCfg.Scales[0], true, quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Peak || r.Workers != 2 {
		t.Errorf("peak metadata wrong: %+v", r)
	}
}

func TestRunSweepAndTable(t *testing.T) {
	results, err := Run(false, quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(PaperQueries) {
		t.Fatalf("cells = %d", len(results))
	}
	var sb strings.Builder
	WriteTable(&sb, "Table 6.2 (off-peak)", results)
	out := sb.String()
	for _, q := range PaperQueries {
		if !strings.Contains(out, q.ID) {
			t.Errorf("table missing %s:\n%s", q.ID, out)
		}
	}
	if !strings.Contains(out, "tiny mean") {
		t.Errorf("table missing scale column:\n%s", out)
	}
}

// TestScalingShape: latency grows with dataset size (the phenomenon of
// §6.4: "the average query time increases with the dataset size").
func TestScalingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling sweep in -short mode")
	}
	cfg := Config{
		Scales: []Scale{{"s", 100}, {"xl", 3000}},
		Runs:   3,
		Seed:   1,
	}
	q := PaperQueries[3] // the heaviest
	small, err := RunCell(q, cfg.Scales[0], false, cfg)
	if err != nil {
		t.Fatal(err)
	}
	large, err := RunCell(q, cfg.Scales[1], false, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if large.Mean <= small.Mean {
		t.Errorf("latency did not grow with size: %v (100) vs %v (3000)", small.Mean, large.Mean)
	}
}

// TestPeakSlowerThanOffPeak: contention raises latency (the Table 6.1 vs
// 6.2 phenomenon). Uses generous margins to stay robust on CI machines.
func TestPeakSlowerThanOffPeak(t *testing.T) {
	if testing.Short() {
		t.Skip("contention test in -short mode")
	}
	cfg := Config{Scales: []Scale{{"m", 1200}}, Runs: 5, Workers: 8, Seed: 1}
	q := PaperQueries[1]
	off, err := RunCell(q, cfg.Scales[0], false, cfg)
	if err != nil {
		t.Fatal(err)
	}
	peak, err := RunCell(q, cfg.Scales[0], true, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The peak mean should not be dramatically *faster*; equality is
	// possible on many-core machines, so assert a weak one-sided bound.
	if peak.Mean < off.Mean/2 {
		t.Errorf("peak (%v) implausibly faster than off-peak (%v)", peak.Mean, off.Mean)
	}
	t.Logf("off-peak %v, peak %v (x%.2f)", off.Mean, peak.Mean,
		float64(peak.Mean)/float64(off.Mean))
}

// TestPlannerFeedbackConvergence is the acceptance check of the adaptive
// planner: replaying the seeded workload a second time must strictly lower
// the worst q-error (the second pass plans from observed cardinalities) and
// must not blow up latency.
func TestPlannerFeedbackConvergence(t *testing.T) {
	cfg := PlannerConfig{Laptops: 400, Passes: 2, Runs: 3, Seed: 1}
	passes, err := RunPlannerFeedback(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(passes) != 2 {
		t.Fatalf("passes = %d, want 2", len(passes))
	}
	p1, p2 := passes[0], passes[1]
	if p1.MaxQError <= 1 {
		t.Fatalf("cold pass max q-error = %v; workload no longer misestimates, pick harder queries", p1.MaxQError)
	}
	if p2.MaxQError >= p1.MaxQError {
		t.Errorf("q-error did not drop: pass1 %v, pass2 %v", p1.MaxQError, p2.MaxQError)
	}
	if p2.FeedbackHits == 0 {
		t.Error("second pass recorded no feedback hits")
	}
	// Latency must not regress meaningfully; allow 50% headroom for CI noise
	// on a sub-millisecond workload.
	if p2.P95 > p1.P95+p1.P95/2 {
		t.Errorf("p95 regressed: pass1 %v, pass2 %v", p1.P95, p2.P95)
	}
	var sb strings.Builder
	WritePlannerTable(&sb, passes)
	if !strings.Contains(sb.String(), "max q-error") {
		t.Errorf("table malformed:\n%s", sb.String())
	}
	recs := PlannerRecords("E12", passes)
	if len(recs) != 2 || recs[0].Query != "pass1" || recs[1].P95Ns <= 0 {
		t.Errorf("records malformed: %+v", recs)
	}
	t.Logf("pass1: q-err %.2f p95 %v; pass2: q-err %.2f p95 %v",
		p1.MaxQError, p1.P95, p2.MaxQError, p2.P95)
}

// BenchmarkPlannerFeedback measures one warm replay of the planner workload
// (the steady state a server converges to).
func BenchmarkPlannerFeedback(b *testing.B) {
	cfg := PlannerConfig{Laptops: 400, Passes: 1, Runs: 1, Seed: 1}
	if _, err := RunPlannerFeedback(cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunPlannerFeedback(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Runs != 7 || c.Workers != 8 || len(c.Scales) != 3 || len(c.Queries) != 4 {
		t.Errorf("defaults: %+v", c)
	}
}

func TestPrepareQ3(t *testing.T) {
	q, err := PrepareQuery(PaperQueries[2], "http://e/")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.MeasRestrs) != 1 || q.MeasRestrs[0].Op != ">=" {
		t.Fatalf("Q3 shape: %+v", q)
	}
}

var _ = time.Now
