// Package search implements the keyword-search access method of §2.2 /
// §5.4.1: an inverted index over the literals and local names of a graph
// with TF-IDF ranking. Its result sets are the "external access method"
// starting points of the interaction model — Startup(Results) in Alg. 5 —
// wired into core.NewSessionFrom.
package search

import (
	"math"
	"sort"
	"strings"
	"unicode"

	"rdfanalytics/internal/rdf"
)

// Index is an inverted index from tokens to the resources they describe.
type Index struct {
	// postings maps token -> resource -> term frequency.
	postings map[string]map[rdf.Term]int
	// docLen counts tokens per resource (for normalization).
	docLen map[rdf.Term]int
	docs   int
}

// Tokenize lowercases and splits text on non-alphanumeric boundaries,
// dropping single-character tokens.
func Tokenize(text string) []string {
	var out []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 1 {
			out = append(out, strings.ToLower(b.String()))
		}
		b.Reset()
	}
	for _, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(r)
			continue
		}
		flush()
	}
	flush()
	return out
}

// camelTokens additionally splits CamelCase local names (SouthKorea ->
// south, korea; HTTPServer -> http, server) and letter/digit boundaries
// (laptop1 -> laptop) so IRI local names are findable by their words.
func camelTokens(s string) []string {
	rs := []rune(s)
	var words []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			words = append(words, b.String())
			b.Reset()
		}
	}
	for i, r := range rs {
		if i > 0 {
			prev := rs[i-1]
			switch {
			case unicode.IsUpper(r) && unicode.IsLower(prev):
				flush() // camelCase boundary
			case unicode.IsUpper(r) && unicode.IsUpper(prev) &&
				i+1 < len(rs) && unicode.IsLower(rs[i+1]):
				flush() // acronym end: HTTPServer -> HTTP | Server
			case unicode.IsDigit(r) != unicode.IsDigit(prev):
				flush() // letter/digit boundary: laptop1 -> laptop | 1
			}
		}
		b.WriteRune(r)
	}
	flush()
	var out []string
	for _, w := range words {
		out = append(out, Tokenize(w)...)
	}
	return out
}

// Build indexes every resource of g: its local name (camel-split) and the
// lexical forms of its literal property values. Resources that only appear
// as objects are indexed too, so companies found via rdfs:label match.
func Build(g *rdf.Graph) *Index {
	idx := &Index{
		postings: map[string]map[rdf.Term]int{},
		docLen:   map[rdf.Term]int{},
	}
	addToken := func(res rdf.Term, tok string) {
		m, ok := idx.postings[tok]
		if !ok {
			m = map[rdf.Term]int{}
			idx.postings[tok] = m
		}
		m[res]++
		idx.docLen[res]++
	}
	indexed := map[rdf.Term]bool{}
	indexName := func(res rdf.Term) {
		if indexed[res] || !res.IsResource() {
			return
		}
		indexed[res] = true
		for _, tok := range camelTokens(res.LocalName()) {
			addToken(res, tok)
		}
	}
	g.Match(rdf.Any, rdf.Any, rdf.Any, func(t rdf.Triple) bool {
		indexName(t.S)
		if t.O.IsResource() {
			indexName(t.O)
		} else {
			for _, tok := range Tokenize(t.O.Value) {
				addToken(t.S, tok)
			}
		}
		return true
	})
	idx.docs = len(idx.docLen)
	return idx
}

// Hit is one ranked search result.
type Hit struct {
	Resource rdf.Term
	Score    float64
}

// Search ranks resources by TF-IDF over the query tokens. Resources must
// match at least one token; multi-token matches score higher.
func (idx *Index) Search(query string, limit int) []Hit {
	tokens := Tokenize(query)
	scores := map[rdf.Term]float64{}
	for _, tok := range tokens {
		postings, ok := idx.postings[tok]
		if !ok {
			continue
		}
		idf := math.Log(1 + float64(idx.docs)/float64(len(postings)))
		for res, tf := range postings {
			norm := float64(idx.docLen[res])
			scores[res] += (float64(tf) / norm) * idf
		}
	}
	hits := make([]Hit, 0, len(scores))
	for res, sc := range scores {
		hits = append(hits, Hit{Resource: res, Score: sc})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Resource.Less(hits[j].Resource)
	})
	if limit > 0 && len(hits) > limit {
		hits = hits[:limit]
	}
	return hits
}

// Resources returns just the resources of the hits, in rank order — the
// shape core.NewSessionFrom expects.
func Resources(hits []Hit) []rdf.Term {
	out := make([]rdf.Term, len(hits))
	for i, h := range hits {
		out[i] = h.Resource
	}
	return out
}
