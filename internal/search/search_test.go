package search

import (
	"reflect"
	"testing"

	"rdfanalytics/internal/core"
	"rdfanalytics/internal/datagen"
	"rdfanalytics/internal/facet"
	"rdfanalytics/internal/hifun"
	"rdfanalytics/internal/rdf"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"laptop-1 (DELL)", []string{"laptop", "dell"}},
		{"", nil},
		{"a", nil}, // single chars dropped
		{"USB 2.0 ports", []string{"usb", "ports"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestCamelSplit(t *testing.T) {
	got := camelTokens("SouthKorea")
	if !reflect.DeepEqual(got, []string{"south", "korea"}) {
		t.Errorf("camelTokens = %v", got)
	}
}

func TestSearchByLocalName(t *testing.T) {
	g := datagen.SmallProducts()
	rdf.Materialize(g)
	idx := Build(g)
	hits := idx.Search("dell", 10)
	if len(hits) == 0 {
		t.Fatal("no hits for 'dell'")
	}
	if hits[0].Resource != rdf.NewIRI(datagen.ExampleNS+"DELL") {
		t.Errorf("top hit = %v", hits[0].Resource)
	}
	// MichaelDell also matches (camel split) but ranks below DELL itself.
	foundFounder := false
	for _, h := range hits {
		if h.Resource == rdf.NewIRI(datagen.ExampleNS+"MichaelDell") {
			foundFounder = true
		}
	}
	if !foundFounder {
		t.Error("camel-split match MichaelDell missing")
	}
}

func TestSearchByLiteral(t *testing.T) {
	g := rdf.MustLoadTurtle(`@prefix ex: <http://e/> .
ex:p1 ex:label "wireless gaming mouse" .
ex:p2 ex:label "wired office keyboard" .
ex:p3 ex:label "gaming keyboard with wrist rest" .
`)
	idx := Build(g)
	hits := idx.Search("gaming keyboard", 10)
	if len(hits) != 3 {
		t.Fatalf("hits = %v", hits)
	}
	// p3 matches both tokens: must rank first.
	if hits[0].Resource != rdf.NewIRI("http://e/p3") {
		t.Errorf("top hit = %v", hits[0].Resource)
	}
}

func TestSearchNoMatch(t *testing.T) {
	g := datagen.SmallProducts()
	idx := Build(g)
	if hits := idx.Search("zzzznothing", 10); len(hits) != 0 {
		t.Errorf("hits = %v", hits)
	}
}

func TestSearchLimitAndDeterminism(t *testing.T) {
	g := datagen.SmallProducts()
	rdf.Materialize(g)
	idx := Build(g)
	a := idx.Search("laptop", 2)
	b := idx.Search("laptop", 2)
	if len(a) != 2 || !reflect.DeepEqual(a, b) {
		t.Errorf("limit/determinism: %v vs %v", a, b)
	}
}

// TestSearchSeedsSession is the §5.4.1 integration: keyword results start a
// faceted-analytics session, and analytics over them work.
func TestSearchSeedsSession(t *testing.T) {
	g := datagen.SmallProducts()
	rdf.Materialize(g)
	idx := Build(g)
	hits := idx.Search("laptop", 0)
	var laptops []rdf.Term
	for _, h := range hits {
		// keep only instances (drop the class itself if present)
		if g.Has(rdf.Triple{S: h.Resource, P: rdf.NewIRI(rdf.RDFType), O: rdf.NewIRI(datagen.ExampleNS + "Laptop")}) {
			laptops = append(laptops, h.Resource)
		}
	}
	if len(laptops) != 3 {
		t.Fatalf("laptops from search: %v", laptops)
	}
	s := core.NewSessionFrom(g, datagen.ExampleNS, laptops)
	s.ClickAggregate(core.MeasureSpec{Path: facet.Path{{P: rdf.NewIRI(datagen.ExampleNS + "price")}}},
		hifun.Operation{Op: hifun.OpSum})
	ans, err := s.RunAnalytics()
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := ans.Rows[0][0].Int(); n != 2720 {
		t.Errorf("sum over search results = %v", ans.Rows[0][0])
	}
}

func BenchmarkBuildAndSearch(b *testing.B) {
	g := datagen.Products(datagen.ProductsConfig{Laptops: 1000, Companies: 20, Seed: 1})
	b.Run("build", func(b *testing.B) {
		for b.Loop() {
			Build(g)
		}
	})
	idx := Build(g)
	b.Run("search", func(b *testing.B) {
		for b.Loop() {
			idx.Search("laptop company", 20)
		}
	})
}
