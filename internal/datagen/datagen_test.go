package datagen

import (
	"testing"

	"rdfanalytics/internal/rdf"
	"rdfanalytics/internal/sparql"
)

func TestSmallProductsCounts(t *testing.T) {
	g := SmallProducts()
	rdf.Materialize(g)
	// Fig 5.4 (a): Company (4), Location (5), Person (3), Product (6).
	counts := map[string]int{
		"Company": 4, "Location": 5, "Person": 3, "Product": 6,
		"Laptop": 3, "HDType": 3, "SSD": 2, "NVMe": 1,
		"Country": 3, "Continent": 2,
	}
	for cls, want := range counts {
		got := len(rdf.InstancesOf(g, rdf.NewIRI(ExampleNS+cls)))
		if got != want {
			t.Errorf("instances of %s = %d, want %d", cls, got, want)
		}
	}
}

func TestSmallProductsFig55Paths(t *testing.T) {
	g := SmallProducts()
	rdf.Materialize(g)
	// Fig 5.5 (b): hard-drive manufacturers Maxtor (2), AVDElectronics (1).
	res, err := sparql.Select(g, `PREFIX ex: <`+ExampleNS+`>
SELECT ?m (COUNT(?hd) AS ?n) WHERE {
  ?l a ex:Laptop . ?l ex:hardDrive ?hd . ?hd ex:manufacturer ?m .
} GROUP BY ?m`)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"Maxtor": "2", "AVDElectronics": "1"}
	for _, row := range res.Rows {
		if w := want[row["m"].LocalName()]; w != row["n"].Value {
			t.Errorf("%s: %s, want %s", row["m"].LocalName(), row["n"].Value, w)
		}
	}
	if res.Len() != 2 {
		t.Errorf("groups = %d", res.Len())
	}
}

// TestPaperFig13EndToEnd runs the headline query of Fig 1.3 against a graph
// seeded so the answer is non-empty: average price of laptops made in 2021
// by US companies with >=2 USB ports and an SSD manufactured in Asia.
func TestPaperFig13EndToEnd(t *testing.T) {
	g := SmallProducts()
	rdf.Materialize(g)
	res, err := sparql.Select(g, `PREFIX ex: <`+ExampleNS+`>
SELECT ?m (AVG(?p) AS ?avgprice)
WHERE {
  ?s a ex:Laptop.
  ?s ex:manufacturer ?m.
  ?m ex:origin ex:USA.
  ?s ex:price ?p.
  ?s ex:USBPorts ?u.
  ?s ex:hardDrive ?hd.
  ?hd a ex:SSD.
  ?hd ex:manufacturer ?hdm.
  ?hdm ex:origin ?hdmc.
  ?hdmc ex:locatedAt ex:Asia.
  FILTER (?u >= 2).
  ?s ex:releaseDate ?rd .
  FILTER ( ?rd >= "2021-01-01"^^xsd:date && ?rd <= "2021-12-31"^^xsd:date)
} GROUP BY ?m`)
	if err != nil {
		t.Fatal(err)
	}
	// laptop1 (DELL, SSD1 by Maxtor in Singapore/Asia, 2 USB, 2021) matches.
	if res.Len() != 1 {
		t.Fatalf("groups = %d, want 1\n%s", res.Len(), res)
	}
	if res.Rows[0]["m"].LocalName() != "DELL" {
		t.Errorf("manufacturer = %v", res.Rows[0]["m"])
	}
	if f, _ := res.Rows[0]["avgprice"].Float(); f != 900 {
		t.Errorf("avgprice = %v, want 900", res.Rows[0]["avgprice"])
	}
}

func TestProductsScalableDeterministic(t *testing.T) {
	a := Products(ProductsConfig{Laptops: 50, Companies: 6, Seed: 42})
	b := Products(ProductsConfig{Laptops: 50, Companies: 6, Seed: 42})
	if a.Len() != b.Len() {
		t.Fatalf("same seed, different sizes: %d vs %d", a.Len(), b.Len())
	}
	at, bt := a.Triples(), b.Triples()
	for i := range at {
		if at[i] != bt[i] {
			t.Fatalf("same seed, different triple at %d", i)
		}
	}
	c := Products(ProductsConfig{Laptops: 50, Companies: 6, Seed: 43})
	if c.Len() == a.Len() {
		// sizes can coincide; compare content
		same := true
		ct := c.Triples()
		for i := range at {
			if at[i] != ct[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestProductsScalableWellFormed(t *testing.T) {
	g := Products(ProductsConfig{Laptops: 100, Companies: 8, Seed: 7, Materialize: true})
	laptops := rdf.InstancesOf(g, rdf.NewIRI(ExampleNS+"Laptop"))
	if len(laptops) != 100 {
		t.Fatalf("laptops = %d", len(laptops))
	}
	// Every laptop has exactly one price, manufacturer, release date.
	for _, p := range []string{"price", "manufacturer", "releaseDate", "USBPorts", "hardDrive"} {
		for _, l := range laptops {
			objs := g.Objects(l, rdf.NewIRI(ExampleNS+p))
			if len(objs) != 1 {
				t.Fatalf("laptop %v has %d values for %s", l, len(objs), p)
			}
		}
	}
	// Inference: laptops are Products.
	products := rdf.InstancesOf(g, rdf.NewIRI(ExampleNS+"Product"))
	if len(products) < 100 {
		t.Errorf("products = %d, want >= 100 (laptops inherit)", len(products))
	}
}

func TestSmallInvoicesPaperTotals(t *testing.T) {
	g := SmallInvoices()
	res, err := sparql.Select(g, `PREFIX ex: <`+InvoicesNS+`>
SELECT ?b (SUM(?q) AS ?total) WHERE {
  ?i ex:takesPlaceAt ?b . ?i ex:inQuantity ?q .
} GROUP BY ?b`)
	if err != nil {
		t.Fatal(err)
	}
	// §2.5: b1=300, b2=600, b3=600.
	want := map[string]int64{"branch1": 300, "branch2": 600, "branch3": 600}
	for _, row := range res.Rows {
		if n, _ := row["total"].Int(); n != want[row["b"].LocalName()] {
			t.Errorf("%s total = %d", row["b"].LocalName(), n)
		}
	}
	if res.Len() != 3 {
		t.Fatalf("groups = %d", res.Len())
	}
}

func TestInvoicesScalable(t *testing.T) {
	g := Invoices(InvoicesConfig{Invoices: 500, Branches: 5, Products: 20, Brands: 4, Seed: 3})
	// 500 invoices x 5 triples + 5 branches + 20 products x 2
	wantMin := 500*5 + 5 + 40
	if g.Len() != wantMin {
		t.Fatalf("triples = %d, want %d", g.Len(), wantMin)
	}
	// quantities are positive multiples of 10
	bad := 0
	g.Match(rdf.Any, rdf.NewIRI(InvoicesNS+"inQuantity"), rdf.Any, func(t rdf.Triple) bool {
		n, ok := t.O.Int()
		if !ok || n <= 0 || n%10 != 0 {
			bad++
		}
		return true
	})
	if bad > 0 {
		t.Errorf("%d malformed quantities", bad)
	}
}

func TestCountryStats(t *testing.T) {
	g := CountryStats()
	countries := rdf.InstancesOf(g, rdf.NewIRI(StatsNS+"Country"))
	if len(countries) != 12 {
		t.Fatalf("countries = %d", len(countries))
	}
	for _, c := range countries {
		if g.Object(c, rdf.NewIRI(StatsNS+"cases")).IsZero() {
			t.Errorf("%v missing cases", c)
		}
	}
}

func BenchmarkProductsGeneration(b *testing.B) {
	for b.Loop() {
		Products(ProductsConfig{Laptops: 1000, Companies: 20, Seed: 1})
	}
}
