package datagen

import (
	"fmt"
	"math/rand"

	"rdfanalytics/internal/rdf"
)

// InvoicesNS is the namespace of the invoices dataset (Fig 4.1 / §2.5).
const InvoicesNS = "http://example.org/invoices#"

func ie(local string) rdf.Term { return rdf.NewIRI(InvoicesNS + local) }

// SmallInvoices builds the seven-invoice dataset of §2.5 / Fig 2.8 with the
// exact branch/quantity assignment the paper uses in its worked HIFUN
// evaluation (b1: 200+100, b2: 200+400, b3: 100+400+100).
func SmallInvoices() *rdf.Graph {
	g := rdf.NewGraph()
	g.Add(rdf.Triple{S: ie("Invoice"), P: typeT(), O: rdf.NewIRI(rdf.RDFSClass)})
	g.Add(rdf.Triple{S: ie("Branch"), P: typeT(), O: rdf.NewIRI(rdf.RDFSClass)})
	g.Add(rdf.Triple{S: ie("ProductType"), P: typeT(), O: rdf.NewIRI(rdf.RDFSClass)})
	rows := []struct {
		branch, product, date string
		qty                   int64
	}{
		{"branch1", "CocaLight", "2021-01-10", 200},
		{"branch1", "PepsiMax", "2021-01-20", 100},
		{"branch2", "CocaLight", "2021-02-05", 200},
		{"branch2", "CocaLight", "2021-02-14", 400},
		{"branch3", "Fanta", "2021-03-01", 100},
		{"branch3", "CocaLight", "2021-03-02", 400},
		{"branch3", "PepsiMax", "2021-01-30", 100},
	}
	brands := map[string]string{"CocaLight": "CocaCola", "Fanta": "CocaCola", "PepsiMax": "PepsiCo"}
	seenProd := map[string]bool{}
	for i, r := range rows {
		inv := fmt.Sprintf("invoice%d", i+1)
		g.Add(rdf.Triple{S: ie(inv), P: typeT(), O: ie("Invoice")})
		g.Add(rdf.Triple{S: ie(inv), P: ie("takesPlaceAt"), O: ie(r.branch)})
		g.Add(rdf.Triple{S: ie(inv), P: ie("delivers"), O: ie(r.product)})
		g.Add(rdf.Triple{S: ie(inv), P: ie("hasDate"), O: rdf.NewTyped(r.date, rdf.XSDDate)})
		g.Add(rdf.Triple{S: ie(inv), P: ie("inQuantity"), O: rdf.NewInteger(r.qty)})
		g.Add(rdf.Triple{S: ie(r.branch), P: typeT(), O: ie("Branch")})
		if !seenProd[r.product] {
			seenProd[r.product] = true
			g.Add(rdf.Triple{S: ie(r.product), P: typeT(), O: ie("ProductType")})
			g.Add(rdf.Triple{S: ie(r.product), P: ie("brand"), O: ie(brands[r.product])})
		}
	}
	return g
}

// InvoicesConfig parameterizes the scalable invoices generator.
type InvoicesConfig struct {
	Invoices int
	Branches int
	Products int
	Brands   int
	Seed     int64
	// Timestamps additionally emits a hasTimestamp xsd:dateTime per invoice
	// with a timezone offset that varies across invoices — data whose lexical
	// order differs from its time-line order, for exercising temporal
	// comparison and ordering.
	Timestamps bool
}

// Invoices generates a year of delivery invoices: each invoice has a branch,
// a product (with brand), a date in 2021 and a quantity. Deterministic per
// seed. Used by the efficiency benchmarks at multiple scales.
func Invoices(cfg InvoicesConfig) *rdf.Graph {
	if cfg.Invoices <= 0 {
		cfg.Invoices = 1000
	}
	if cfg.Branches <= 0 {
		cfg.Branches = 10
	}
	if cfg.Products <= 0 {
		cfg.Products = 50
	}
	if cfg.Brands <= 0 {
		cfg.Brands = 8
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := rdf.NewGraph()
	for b := 0; b < cfg.Branches; b++ {
		g.Add(rdf.Triple{S: ie(fmt.Sprintf("branch%d", b+1)), P: typeT(), O: ie("Branch")})
	}
	for p := 0; p < cfg.Products; p++ {
		prod := ie(fmt.Sprintf("product%d", p+1))
		g.Add(rdf.Triple{S: prod, P: typeT(), O: ie("ProductType")})
		g.Add(rdf.Triple{S: prod, P: ie("brand"), O: ie(fmt.Sprintf("Brand%d", 1+p%cfg.Brands))})
	}
	for i := 0; i < cfg.Invoices; i++ {
		inv := ie(fmt.Sprintf("invoice%d", i+1))
		g.Add(rdf.Triple{S: inv, P: typeT(), O: ie("Invoice")})
		g.Add(rdf.Triple{S: inv, P: ie("takesPlaceAt"),
			O: ie(fmt.Sprintf("branch%d", 1+rng.Intn(cfg.Branches)))})
		g.Add(rdf.Triple{S: inv, P: ie("delivers"),
			O: ie(fmt.Sprintf("product%d", 1+rng.Intn(cfg.Products)))})
		month := 1 + rng.Intn(12)
		day := 1 + rng.Intn(28)
		g.Add(rdf.Triple{S: inv, P: ie("hasDate"),
			O: rdf.NewTyped(fmt.Sprintf("2021-%02d-%02d", month, day), rdf.XSDDate)})
		g.Add(rdf.Triple{S: inv, P: ie("inQuantity"),
			O: rdf.NewInteger(int64(10 * (1 + rng.Intn(60))))})
		if cfg.Timestamps {
			// Drawn only when enabled so existing seeds keep their streams.
			offsets := []string{"Z", "+05:00", "+01:00", "-04:00", "-11:00"}
			g.Add(rdf.Triple{S: inv, P: ie("hasTimestamp"),
				O: rdf.NewTyped(fmt.Sprintf("2021-%02d-%02dT%02d:%02d:00%s",
					month, day, rng.Intn(24), rng.Intn(60), offsets[rng.Intn(len(offsets))]),
					rdf.XSDDateTime)})
		}
	}
	return g
}

// StatsNS is the namespace of the country-statistics dataset used by the 3D
// visualization example (§6.3).
const StatsNS = "http://example.org/stats#"

// CountryStats generates a small statistics dataset in the shape the 3D
// "urban area" visualization consumes: each country is an entity with a few
// numeric features whose magnitudes follow a power-law-ish spread.
func CountryStats() *rdf.Graph {
	g := rdf.NewGraph()
	se := func(l string) rdf.Term { return rdf.NewIRI(StatsNS + l) }
	countries := []struct {
		name                     string
		cases, deaths, recovered int64
	}{
		{"USA", 103000000, 1120000, 100500000},
		{"India", 44700000, 530000, 44100000},
		{"France", 38900000, 167000, 38600000},
		{"Germany", 38400000, 174000, 38100000},
		{"Brazil", 37100000, 699000, 36200000},
		{"Japan", 33300000, 74000, 32900000},
		{"SouthKorea", 30600000, 34000, 30500000},
		{"Italy", 25600000, 190000, 25300000},
		{"UK", 24400000, 220000, 24100000},
		{"Russia", 22900000, 399000, 22200000},
		{"Greece", 5530000, 37000, 5480000},
		{"Singapore", 2500000, 1700, 2490000},
	}
	for _, c := range countries {
		s := se(c.name)
		g.Add(rdf.Triple{S: s, P: typeT(), O: se("Country")})
		g.Add(rdf.Triple{S: s, P: se("cases"), O: rdf.NewInteger(c.cases)})
		g.Add(rdf.Triple{S: s, P: se("deaths"), O: rdf.NewInteger(c.deaths)})
		g.Add(rdf.Triple{S: s, P: se("recovered"), O: rdf.NewInteger(c.recovered)})
	}
	return g
}
