// Package datagen builds the synthetic RDF datasets of the reproduction:
// the products knowledge graph of the paper's running example (Fig 1.2
// schema, Fig 5.3 instances), a scalable variant of it for the efficiency
// experiments (Tables 6.1–6.2), the invoices dataset of Fig 4.1 / §2.5, and
// a small statistics dataset for the 3D-visualization example.
//
// All generators are deterministic for a given seed.
package datagen

import (
	"fmt"
	"math/rand"

	"rdfanalytics/internal/rdf"
)

// ExampleNS is the namespace of the running example (the paper uses
// http://www.ics.forth.gr/example#; we keep a short stable IRI).
const ExampleNS = "http://example.org/products#"

func pe(local string) rdf.Term { return rdf.NewIRI(ExampleNS + local) }

func typeT() rdf.Term { return rdf.NewIRI(rdf.RDFType) }

// ProductsSchema adds the RDFS schema of Fig 1.2 to g: the class hierarchy
// (Product > Laptop, Product > HDType > {SSD, NVMe}, Location > {Country,
// Continent}, Company, Person) and the property declarations with domains
// and ranges.
func ProductsSchema(g *rdf.Graph) {
	classes := []string{
		"Product", "Laptop", "HDType", "SSD", "NVMe",
		"Company", "Person", "Location", "Country", "Continent",
	}
	for _, c := range classes {
		g.Add(rdf.Triple{S: pe(c), P: typeT(), O: rdf.NewIRI(rdf.RDFSClass)})
	}
	sub := func(c, parent string) {
		g.Add(rdf.Triple{S: pe(c), P: rdf.NewIRI(rdf.RDFSSubClassOf), O: pe(parent)})
	}
	sub("Laptop", "Product")
	sub("HDType", "Product")
	sub("SSD", "HDType")
	sub("NVMe", "HDType")
	sub("Country", "Location")
	sub("Continent", "Location")
	props := []struct{ name, domain, rang string }{
		{"releaseDate", "Laptop", ""},
		{"price", "Laptop", ""},
		{"USBPorts", "Laptop", ""},
		{"manufacturer", "Product", "Company"},
		{"hardDrive", "Laptop", "HDType"},
		{"origin", "Company", "Country"},
		{"founder", "Company", "Person"},
		{"size", "Company", ""},
		{"birthplace", "Person", "Country"},
		{"locatedAt", "Country", "Continent"},
		{"GDPPerCapita", "Country", ""},
	}
	for _, p := range props {
		g.Add(rdf.Triple{S: pe(p.name), P: typeT(), O: rdf.NewIRI(rdf.RDFProperty)})
		if p.domain != "" {
			g.Add(rdf.Triple{S: pe(p.name), P: rdf.NewIRI(rdf.RDFSDomain), O: pe(p.domain)})
		}
		if p.rang != "" {
			g.Add(rdf.Triple{S: pe(p.name), P: rdf.NewIRI(rdf.RDFSRange), O: pe(p.rang)})
		}
	}
}

// SmallProducts builds exactly the instance data of Fig 5.3 (plus the
// schema): 3 laptops, 3 hard drives, 4 companies, 3 persons, 3 countries,
// 2 continents. The facet-tree tests of Fig 5.4 assert its exact counts.
func SmallProducts() *rdf.Graph {
	g := rdf.NewGraph()
	ProductsSchema(g)
	add := func(s, p string, o rdf.Term) {
		g.Add(rdf.Triple{S: pe(s), P: pe(p), O: o})
	}
	typ := func(s, c string) {
		g.Add(rdf.Triple{S: pe(s), P: typeT(), O: pe(c)})
	}
	// Continents and countries.
	typ("Asia", "Continent")
	typ("NorthAmerica", "Continent")
	for _, c := range []struct {
		name, continent string
		gdp             int64
	}{
		{"USA", "NorthAmerica", 70000},
		{"China", "Asia", 12000},
		{"Singapore", "Asia", 72000},
	} {
		typ(c.name, "Country")
		add(c.name, "locatedAt", pe(c.continent))
		add(c.name, "GDPPerCapita", rdf.NewInteger(c.gdp))
	}
	// Persons.
	for _, p := range []struct{ name, birthplace string }{
		{"MichaelDell", "USA"},
		{"LiuChuanzhi", "China"},
		{"JamesMcCoy", "USA"},
	} {
		typ(p.name, "Person")
		add(p.name, "birthplace", pe(p.birthplace))
	}
	// Companies.
	for _, c := range []struct {
		name, origin, founder string
		size                  int64
	}{
		{"DELL", "USA", "MichaelDell", 133000},
		{"Lenovo", "China", "LiuChuanzhi", 71500},
		{"Maxtor", "Singapore", "JamesMcCoy", 9000},
		{"AVDElectronics", "USA", "", 1200},
	} {
		typ(c.name, "Company")
		add(c.name, "origin", pe(c.origin))
		add(c.name, "size", rdf.NewInteger(c.size))
		if c.founder != "" {
			add(c.name, "founder", pe(c.founder))
		}
	}
	// Hard drives (products in their own right).
	for _, h := range []struct{ name, class, maker string }{
		{"SSD1", "SSD", "Maxtor"},
		{"SSD2", "SSD", "AVDElectronics"},
		{"NVMe1", "NVMe", "Maxtor"},
	} {
		typ(h.name, h.class)
		add(h.name, "manufacturer", pe(h.maker))
	}
	// Laptops (Fig 5.3/5.4: DELL(2), Lenovo(1); USB 2(2)/4(1); the three
	// 2021 release dates; prices as in Fig 5.2).
	for _, l := range []struct {
		name, maker, hd, date string
		usb, price            int64
	}{
		{"laptop1", "DELL", "SSD1", "2021-06-10", 2, 900},
		{"laptop2", "DELL", "SSD2", "2021-09-03", 4, 1000},
		{"laptop3", "Lenovo", "NVMe1", "2021-10-10", 2, 820},
	} {
		typ(l.name, "Laptop")
		add(l.name, "manufacturer", pe(l.maker))
		add(l.name, "hardDrive", pe(l.hd))
		add(l.name, "releaseDate", rdf.NewTyped(l.date, rdf.XSDDate))
		add(l.name, "USBPorts", rdf.NewInteger(l.usb))
		add(l.name, "price", rdf.NewInteger(l.price))
	}
	return g
}

// ProductsConfig parameterizes the scalable products generator.
type ProductsConfig struct {
	Laptops   int
	Companies int
	Seed      int64
	// Materialize runs RDFS inference after generation.
	Materialize bool
}

// DefaultProducts is the configuration used by the quickstart example.
var DefaultProducts = ProductsConfig{Laptops: 200, Companies: 12, Seed: 1, Materialize: true}

var countryPool = []struct {
	name, continent string
	gdp             int64
}{
	{"USA", "NorthAmerica", 70000},
	{"China", "Asia", 12000},
	{"Singapore", "Asia", 72000},
	{"Japan", "Asia", 40000},
	{"Germany", "Europe", 51000},
	{"SouthKorea", "Asia", 35000},
	{"Taiwan", "Asia", 33000},
	{"France", "Europe", 44000},
}

// Products generates a synthetic products KG following the Fig 1.2 schema
// at the requested scale. Laptops get a manufacturer, hard drive (with its
// own manufacturer chain), release date in 2019–2023, 1–5 USB ports and a
// price; companies get origins, founders and sizes. Deterministic per seed.
func Products(cfg ProductsConfig) *rdf.Graph {
	if cfg.Laptops <= 0 {
		cfg.Laptops = DefaultProducts.Laptops
	}
	if cfg.Companies <= 0 {
		cfg.Companies = DefaultProducts.Companies
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := rdf.NewGraph()
	ProductsSchema(g)
	add := func(s, p string, o rdf.Term) {
		g.Add(rdf.Triple{S: pe(s), P: pe(p), O: o})
	}
	typ := func(s, c string) {
		g.Add(rdf.Triple{S: pe(s), P: typeT(), O: pe(c)})
	}
	continents := map[string]bool{}
	for _, c := range countryPool {
		typ(c.name, "Country")
		add(c.name, "locatedAt", pe(c.continent))
		add(c.name, "GDPPerCapita", rdf.NewInteger(c.gdp))
		if !continents[c.continent] {
			continents[c.continent] = true
			typ(c.continent, "Continent")
		}
	}
	// Companies: half laptop makers, half component makers.
	companies := make([]string, cfg.Companies)
	for i := range companies {
		name := fmt.Sprintf("Company%d", i+1)
		companies[i] = name
		typ(name, "Company")
		country := countryPool[rng.Intn(len(countryPool))]
		add(name, "origin", pe(country.name))
		add(name, "size", rdf.NewInteger(int64(100+rng.Intn(150000))))
		founder := fmt.Sprintf("Founder%d", i+1)
		typ(founder, "Person")
		add(founder, "birthplace", pe(countryPool[rng.Intn(len(countryPool))].name))
		add(name, "founder", pe(founder))
	}
	laptopMakers := companies[:(len(companies)+1)/2]
	hdMakers := companies[len(companies)/2:]
	hdClasses := []string{"SSD", "NVMe", "HDType"}
	// Hard drives: one per ~2 laptops.
	nHD := cfg.Laptops/2 + 1
	hds := make([]string, nHD)
	for i := range hds {
		name := fmt.Sprintf("hd%d", i+1)
		hds[i] = name
		typ(name, hdClasses[rng.Intn(len(hdClasses))])
		add(name, "manufacturer", pe(hdMakers[rng.Intn(len(hdMakers))]))
	}
	for i := 0; i < cfg.Laptops; i++ {
		name := fmt.Sprintf("laptop%d", i+1)
		typ(name, "Laptop")
		add(name, "manufacturer", pe(laptopMakers[rng.Intn(len(laptopMakers))]))
		add(name, "hardDrive", pe(hds[rng.Intn(len(hds))]))
		year := 2019 + rng.Intn(5)
		month := 1 + rng.Intn(12)
		day := 1 + rng.Intn(28)
		add(name, "releaseDate", rdf.NewTyped(
			fmt.Sprintf("%04d-%02d-%02d", year, month, day), rdf.XSDDate))
		add(name, "USBPorts", rdf.NewInteger(int64(1+rng.Intn(5))))
		add(name, "price", rdf.NewInteger(int64(500+rng.Intn(1500))))
	}
	if cfg.Materialize {
		rdf.Materialize(g)
	}
	return g
}
