package datagen

import (
	"fmt"
	"os"
	"strings"

	"rdfanalytics/internal/rdf"
)

// Load resolves a dataset spec shared by all command-line tools:
//
//	products            scalable products KG (size via scale parameter)
//	products-small      the exact Fig 5.3 instance data
//	invoices            scalable invoices dataset
//	invoices-small      the §2.5 seven-invoice dataset
//	stats               the country-statistics dataset (3D viz example)
//	<path>.ttl|.nt      a Turtle / N-Triples file on disk
//
// It returns the graph (RDFS-materialized), the attribute namespace for
// HIFUN name resolution, and an error. scale <= 0 selects the default size.
func Load(spec string, scale int) (*rdf.Graph, string, error) {
	switch spec {
	case "products":
		if scale <= 0 {
			scale = DefaultProducts.Laptops
		}
		g := Products(ProductsConfig{Laptops: scale, Companies: 16, Seed: 1, Materialize: true})
		return g, ExampleNS, nil
	case "products-small":
		g := SmallProducts()
		rdf.Materialize(g)
		return g, ExampleNS, nil
	case "invoices":
		if scale <= 0 {
			scale = 1000
		}
		g := Invoices(InvoicesConfig{Invoices: scale, Seed: 1})
		rdf.Materialize(g)
		return g, InvoicesNS, nil
	case "invoices-small":
		g := SmallInvoices()
		rdf.Materialize(g)
		return g, InvoicesNS, nil
	case "stats":
		g := CountryStats()
		rdf.Materialize(g)
		return g, StatsNS, nil
	}
	if strings.HasSuffix(spec, ".ttl") || strings.HasSuffix(spec, ".nt") {
		f, err := os.Open(spec)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		g, err := rdf.LoadTurtle(f)
		if err != nil {
			return nil, "", err
		}
		rdf.Materialize(g)
		ns := GuessNamespace(g)
		return g, ns, nil
	}
	if strings.HasSuffix(spec, ".rdfb") {
		f, err := os.Open(spec)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		// Snapshots are written post-materialization; load as-is.
		g, err := rdf.ReadBinary(f)
		if err != nil {
			return nil, "", err
		}
		return g, GuessNamespace(g), nil
	}
	return nil, "", fmt.Errorf("unknown dataset %q (want products[-small], invoices[-small], stats, or a .ttl/.nt/.rdfb file)", spec)
}

// GuessNamespace picks the most frequent predicate namespace as the default
// attribute namespace for loaded (or durably restored) graphs.
func GuessNamespace(g *rdf.Graph) string {
	counts := map[string]int{}
	for _, p := range g.Predicates() {
		v := p.Value
		if i := strings.LastIndexAny(v, "#/"); i >= 0 {
			ns := v[:i+1]
			if !strings.HasPrefix(ns, rdf.RDFNS) && !strings.HasPrefix(ns, rdf.RDFSNS) &&
				!strings.HasPrefix(ns, rdf.OWLNS) {
				counts[ns] += g.PredicateCount(p)
			}
		}
	}
	best, bestN := "", -1
	for ns, n := range counts {
		if n > bestN || (n == bestN && ns < best) {
			best, bestN = ns, n
		}
	}
	return best
}
