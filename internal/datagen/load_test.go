package datagen

import (
	"os"
	"path/filepath"
	"testing"

	"rdfanalytics/internal/rdf"
)

func TestLoadBuiltinSpecs(t *testing.T) {
	for _, spec := range []string{
		"products", "products-small", "invoices", "invoices-small", "stats",
	} {
		g, ns, err := Load(spec, 0)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if g.Len() == 0 {
			t.Errorf("%s: empty graph", spec)
		}
		if ns == "" {
			t.Errorf("%s: empty namespace", spec)
		}
	}
}

func TestLoadScale(t *testing.T) {
	small, _, _ := Load("products", 50)
	big, _, _ := Load("products", 500)
	if big.Len() <= small.Len() {
		t.Errorf("scale ignored: %d vs %d", small.Len(), big.Len())
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.ttl")
	doc := `@prefix my: <http://my.org/v#> .
my:a a my:Thing ; my:weight 3 .
my:b a my:Thing ; my:weight 5 .
`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	g, ns, err := Load(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() < 4 {
		t.Errorf("triples = %d", g.Len())
	}
	if ns != "http://my.org/v#" {
		t.Errorf("guessed namespace %q", ns)
	}
}

func TestLoadBinarySnapshot(t *testing.T) {
	g, _, err := Load("products-small", 0)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.rdfb")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteBinary(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	back, ns, err := Load(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != g.Len() {
		t.Fatalf("snapshot roundtrip: %d vs %d triples", back.Len(), g.Len())
	}
	if ns != ExampleNS {
		t.Errorf("guessed namespace %q", ns)
	}
	// Corrupt snapshot errors.
	bad := filepath.Join(dir, "bad.rdfb")
	os.WriteFile(bad, []byte("NOPE"), 0o644)
	if _, _, err := Load(bad, 0); err == nil {
		t.Error("corrupt snapshot accepted")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, _, err := Load("not-a-dataset", 0); err == nil {
		t.Error("unknown spec accepted")
	}
	if _, _, err := Load("/nonexistent/file.ttl", 0); err == nil {
		t.Error("missing file accepted")
	}
	// Malformed file.
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.ttl")
	os.WriteFile(path, []byte("this is not turtle"), 0o644)
	if _, _, err := Load(path, 0); err == nil {
		t.Error("malformed file accepted")
	}
}

func TestGuessNamespaceSkipsMeta(t *testing.T) {
	g := rdf.MustLoadTurtle(`@prefix my: <http://my.org/v#> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
my:A rdfs:subClassOf my:B .
my:x my:p my:y .
my:x my:q my:z .
`)
	if ns := GuessNamespace(g); ns != "http://my.org/v#" {
		t.Errorf("guessed %q", ns)
	}
}
