package fault

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNoopByDefault(t *testing.T) {
	Reset()
	if Enabled() {
		t.Fatal("faults enabled with empty table")
	}
	if err := Inject("anything"); err != nil {
		t.Fatalf("unconfigured site returned %v", err)
	}
}

func TestErrorFault(t *testing.T) {
	t.Cleanup(Reset)
	if err := Configure("sparql.join=error:boom"); err != nil {
		t.Fatal(err)
	}
	err := Inject("sparql.join")
	var ie *InjectedError
	if !errors.As(err, &ie) {
		t.Fatalf("got %v, want *InjectedError", err)
	}
	if ie.Site != "sparql.join" || ie.Message != "boom" {
		t.Fatalf("unexpected error payload: %+v", ie)
	}
	if err := Inject("other.site"); err != nil {
		t.Fatalf("unrelated site injected %v", err)
	}
	if Hits("sparql.join") != 1 {
		t.Fatalf("hits = %d, want 1", Hits("sparql.join"))
	}
}

func TestPanicFault(t *testing.T) {
	t.Cleanup(Reset)
	if err := Configure("h=panic:chaos"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		p := recover()
		var ie *InjectedError
		if err, ok := p.(error); !ok || !errors.As(err, &ie) || ie.Message != "chaos" {
			t.Fatalf("recovered %v, want injected panic", p)
		}
	}()
	Inject("h")
	t.Fatal("panic fault did not panic")
}

func TestDelayFaultAndCtxInterrupt(t *testing.T) {
	t.Cleanup(Reset)
	if err := Configure("slow=delay:40ms"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Inject("slow"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("delay fault returned after %v, want >= ~40ms", d)
	}
	// A cancelled context cuts the delay short.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start = time.Now()
	if err := InjectCtx(ctx, "slow"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 20*time.Millisecond {
		t.Fatalf("cancelled delay took %v", d)
	}
}

func TestActivationCap(t *testing.T) {
	t.Cleanup(Reset)
	if err := Configure("once=error:first@1"); err != nil {
		t.Fatal(err)
	}
	if err := Inject("once"); err == nil {
		t.Fatal("first activation was a no-op")
	}
	if err := Inject("once"); err != nil {
		t.Fatalf("capped site fired twice: %v", err)
	}
	if Hits("once") != 1 {
		t.Fatalf("hits = %d, want 1", Hits("once"))
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"nosite",
		"=error",
		"s=explode",
		"s=delay:notaduration",
		"s=error:x@0",
		"s=error:x@huh",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
	rules, err := ParseSpec(" a=delay:1ms , b=error , c=panic:msg ")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("parsed %d rules, want 3", len(rules))
	}
}
