// Package fault is a deterministic fault-injection harness for robustness
// testing: injectable delays, forced errors, and forced panics, keyed by
// site name. Production code marks interesting sites with a single
// Inject/InjectCtx call; with no faults configured (the default) every site
// compiles down to one atomic load and returns nil, so the hooks are safe
// to leave in hot paths.
//
// Faults are configured programmatically (Configure / Reset, used by tests)
// or through the RDFA_FAULT environment variable at process start, which is
// how scripts/chaos-smoke.sh drives a live server:
//
//	RDFA_FAULT='sparql.join=delay:20ms,server.handler.panic=panic:chaos'
//
// The spec grammar is a comma-separated list of site=mode[:arg] entries:
//
//	site=delay:DURATION   sleep DURATION at the site (ctx-interruptible
//	                      through InjectCtx)
//	site=error[:MESSAGE]  return an *InjectedError from the site
//	site=panic[:MESSAGE]  panic with an *InjectedError at the site
//
// An optional "@N" suffix on the mode argument limits the fault to its
// first N activations (e.g. "site=error:boom@2"), after which the site
// reverts to a no-op. Sites not present in the spec are always no-ops.
package fault

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Mode is the kind of fault injected at a site.
type Mode int

// The supported fault modes.
const (
	// ModeDelay sleeps for the configured duration.
	ModeDelay Mode = iota
	// ModeError returns an *InjectedError.
	ModeError
	// ModePanic panics with an *InjectedError.
	ModePanic
)

func (m Mode) String() string {
	switch m {
	case ModeDelay:
		return "delay"
	case ModeError:
		return "error"
	default:
		return "panic"
	}
}

// InjectedError is the error produced by ModeError sites (and the panic
// value of ModePanic sites), carrying the site name for assertions.
type InjectedError struct {
	Site    string
	Message string
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("fault: injected error at %s: %s", e.Site, e.Message)
}

// rule is one configured fault.
type rule struct {
	mode  Mode
	delay time.Duration
	msg   string
	// remaining is the number of activations left; negative means unlimited.
	remaining atomic.Int64
	hits      atomic.Uint64
}

// registry holds the active fault table. enabled is the hot-path gate: when
// false, Inject returns immediately without touching the map.
var (
	enabled atomic.Bool
	mu      sync.RWMutex
	rules   map[string]*rule
)

func init() {
	if spec := os.Getenv("RDFA_FAULT"); spec != "" {
		if err := Configure(spec); err != nil {
			fmt.Fprintf(os.Stderr, "fault: ignoring invalid RDFA_FAULT: %v\n", err)
		}
	}
}

// Configure replaces the active fault table with the parsed spec. An empty
// spec is equivalent to Reset.
func Configure(spec string) error {
	parsed, err := ParseSpec(spec)
	if err != nil {
		return err
	}
	mu.Lock()
	rules = parsed
	mu.Unlock()
	enabled.Store(len(parsed) > 0)
	return nil
}

// Reset disables all faults, restoring every site to a no-op.
func Reset() {
	mu.Lock()
	rules = nil
	mu.Unlock()
	enabled.Store(false)
}

// ParseSpec parses a fault spec (see the package comment for the grammar)
// without installing it.
func ParseSpec(spec string) (map[string]*rule, error) {
	out := map[string]*rule{}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		site, arm, ok := strings.Cut(entry, "=")
		if !ok || site == "" {
			return nil, fmt.Errorf("fault: bad entry %q (want site=mode[:arg])", entry)
		}
		r := &rule{}
		r.remaining.Store(-1)
		armMode, armArg, _ := strings.Cut(arm, ":")
		// Optional activation cap: "mode:arg@N" limits to the first N hits.
		if argBase, nStr, capped := strings.Cut(armArg, "@"); capped {
			n, err := strconv.Atoi(nStr)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("fault: bad activation cap in %q", entry)
			}
			armArg = argBase
			r.remaining.Store(int64(n))
		}
		switch armMode {
		case "delay":
			d, err := time.ParseDuration(armArg)
			if err != nil {
				return nil, fmt.Errorf("fault: bad delay in %q: %v", entry, err)
			}
			r.mode, r.delay = ModeDelay, d
		case "error":
			r.mode, r.msg = ModeError, defaultMsg(armArg)
		case "panic":
			r.mode, r.msg = ModePanic, defaultMsg(armArg)
		default:
			return nil, fmt.Errorf("fault: unknown mode %q in %q", armMode, entry)
		}
		out[strings.TrimSpace(site)] = r
	}
	return out, nil
}

func defaultMsg(arg string) string {
	if arg == "" {
		return "injected"
	}
	return arg
}

// lookup returns the active rule for site, consuming one activation, or nil.
func lookup(site string) *rule {
	if !enabled.Load() {
		return nil
	}
	mu.RLock()
	r := rules[site]
	mu.RUnlock()
	if r == nil {
		return nil
	}
	for {
		rem := r.remaining.Load()
		if rem == 0 {
			return nil // cap exhausted
		}
		if rem < 0 {
			break // unlimited
		}
		if r.remaining.CompareAndSwap(rem, rem-1) {
			break
		}
	}
	r.hits.Add(1)
	return r
}

// Inject activates the fault configured for site, if any: sleeps for delay
// faults, returns an *InjectedError for error faults, panics for panic
// faults. With no fault configured for the site it returns nil after one
// atomic load.
func Inject(site string) error {
	return InjectCtx(context.Background(), site)
}

// InjectCtx is Inject with a context: a delay fault sleeps until its
// duration elapses or ctx is done, whichever comes first (returning nil
// either way — cancellation during an injected delay is the caller's
// regular cancellation path, not an injected failure).
func InjectCtx(ctx context.Context, site string) error {
	r := lookup(site)
	if r == nil {
		return nil
	}
	switch r.mode {
	case ModeDelay:
		t := time.NewTimer(r.delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
		}
		return nil
	case ModeError:
		return &InjectedError{Site: site, Message: r.msg}
	default:
		panic(&InjectedError{Site: site, Message: r.msg})
	}
}

// Hits reports how many times the fault at site has activated since it was
// configured (0 for unconfigured sites). Tests use it to assert a site was
// actually exercised.
func Hits(site string) uint64 {
	mu.RLock()
	r := rules[site]
	mu.RUnlock()
	if r == nil {
		return 0
	}
	return r.hits.Load()
}

// Enabled reports whether any fault is currently configured.
func Enabled() bool { return enabled.Load() }
