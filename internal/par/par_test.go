package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if Workers(0) != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d", Workers(0))
	}
	if Workers(-3) != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d", Workers(-3))
	}
	if Workers(5) != 5 {
		t.Errorf("Workers(5) = %d", Workers(5))
	}
}

func TestDoCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		n := 237
		counts := make([]atomic.Int32, n)
		Do(n, workers, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestDoZeroAndOne(t *testing.T) {
	ran := 0
	Do(0, 4, func(int) { ran++ })
	if ran != 0 {
		t.Errorf("Do(0) ran %d times", ran)
	}
	Do(1, 4, func(int) { ran++ })
	if ran != 1 {
		t.Errorf("Do(1) ran %d times", ran)
	}
}

func TestChunksPartition(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{10, 3}, {1, 8}, {8, 8}, {100, 7}, {5, 1}, {0, 4},
	} {
		chunks := Chunks(tc.n, tc.workers)
		if tc.n == 0 {
			if chunks != nil {
				t.Errorf("Chunks(0) = %v", chunks)
			}
			continue
		}
		prev := 0
		for _, c := range chunks {
			if c[0] != prev {
				t.Fatalf("Chunks(%d,%d): gap at %v", tc.n, tc.workers, c)
			}
			if c[1] <= c[0] {
				t.Fatalf("Chunks(%d,%d): empty chunk %v", tc.n, tc.workers, c)
			}
			prev = c[1]
		}
		if prev != tc.n {
			t.Fatalf("Chunks(%d,%d): covers %d", tc.n, tc.workers, prev)
		}
		if len(chunks) > tc.workers {
			t.Fatalf("Chunks(%d,%d): %d chunks", tc.n, tc.workers, len(chunks))
		}
	}
}
