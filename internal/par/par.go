// Package par is the bounded worker pool shared by the parallel evaluation
// paths: BGP join execution in internal/sparql partitions input-binding
// slices over it, and internal/facet fans per-property transition-marker
// counting across it. Tasks are indexed, so callers write results into
// per-index slots and assemble them in order — parallel execution never
// changes output order.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a parallelism knob: n <= 0 means GOMAXPROCS, anything
// else is taken as given.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Do runs fn(i) for every i in [0, n), using up to `workers` goroutines.
// With workers <= 1 (or n <= 1) it runs inline on the calling goroutine —
// the sequential ablation path costs nothing. fn must be safe for
// concurrent invocation on distinct indices.
func Do(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Chunks splits length n into at most `workers` contiguous [lo, hi) ranges
// of near-equal size, preserving order. It is how a binding slice is
// partitioned so that concatenating per-chunk results reproduces the
// sequential output exactly.
func Chunks(n, workers int) [][2]int {
	if n <= 0 {
		return nil
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	out := make([][2]int, 0, workers)
	chunk := n / workers
	rem := n % workers
	lo := 0
	for i := 0; i < workers; i++ {
		hi := lo + chunk
		if i < rem {
			hi++
		}
		out = append(out, [2]int{lo, hi})
		lo = hi
	}
	return out
}
