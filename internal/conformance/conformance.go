// Package conformance is the executable SPARQL-semantics correctness
// harness of the repository: a W3C-style, table-driven corpus of
// (data, query, expected-result) cases under testdata/, metamorphic oracles
// over seeded random queries, and a differential oracle pinning the
// HIFUN→SPARQL pipeline against direct computation on the graph.
//
// A corpus case is a directory
//
//	testdata/<category>/<name>/
//	    data.ttl      the dataset, in Turtle
//	    query.rq      the query (SELECT, ASK or CONSTRUCT)
//	    expect.srj    expected SELECT results, SPARQL 1.1 JSON results format
//	    expect.bool   expected ASK result: "true" or "false"
//	    expect.ttl    expected CONSTRUCT graph, in Turtle
//	    ordered       optional marker: compare SELECT rows order-sensitively
//
// Exactly one expect.* file must be present; `ordered` only applies to
// SELECT cases (typically ones with ORDER BY). Without it, row multisets
// are compared. Run the corpus with `go test ./internal/conformance/...`
// or `make conformance`; scripts/corpus-lint.sh rejects malformed cases.
package conformance

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"rdfanalytics/internal/rdf"
	"rdfanalytics/internal/sparql"
)

// Case is one corpus entry, located and validated by LoadCases.
type Case struct {
	// Category is the corpus subdirectory (e.g. "aggregates").
	Category string
	// Name is the case directory name.
	Name string
	// Dir is the full path to the case directory.
	Dir string
	// Expect is the expectation file name present in Dir (expect.srj,
	// expect.bool or expect.ttl).
	Expect string
	// Ordered makes SELECT row comparison order-sensitive.
	Ordered bool
}

// expectFiles are the recognized expectation files, exactly one per case.
var expectFiles = []string{"expect.srj", "expect.bool", "expect.ttl"}

// LoadCases walks a two-level corpus tree (root/category/case) and returns
// the validated cases sorted by category then name. A case directory
// missing data.ttl, query.rq or exactly one expect.* file is an error — the
// corpus must fail fast on malformed entries rather than silently skip.
func LoadCases(root string) ([]Case, error) {
	cats, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("conformance: reading corpus root: %w", err)
	}
	var out []Case
	for _, cat := range cats {
		if !cat.IsDir() {
			continue
		}
		caseDirs, err := os.ReadDir(filepath.Join(root, cat.Name()))
		if err != nil {
			return nil, err
		}
		for _, cd := range caseDirs {
			if !cd.IsDir() {
				continue
			}
			c := Case{
				Category: cat.Name(),
				Name:     cd.Name(),
				Dir:      filepath.Join(root, cat.Name(), cd.Name()),
			}
			for _, req := range []string{"data.ttl", "query.rq"} {
				if _, err := os.Stat(filepath.Join(c.Dir, req)); err != nil {
					return nil, fmt.Errorf("conformance: case %s/%s missing %s", c.Category, c.Name, req)
				}
			}
			for _, ef := range expectFiles {
				if _, err := os.Stat(filepath.Join(c.Dir, ef)); err == nil {
					if c.Expect != "" {
						return nil, fmt.Errorf("conformance: case %s/%s has both %s and %s", c.Category, c.Name, c.Expect, ef)
					}
					c.Expect = ef
				}
			}
			if c.Expect == "" {
				return nil, fmt.Errorf("conformance: case %s/%s has no expect.{srj,bool,ttl}", c.Category, c.Name)
			}
			if _, err := os.Stat(filepath.Join(c.Dir, "ordered")); err == nil {
				c.Ordered = true
			}
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Category != out[j].Category {
			return out[i].Category < out[j].Category
		}
		return out[i].Name < out[j].Name
	})
	return out, nil
}

// Run executes the case against the engine and returns nil when the result
// matches the expectation, or an error describing the divergence.
func (c Case) Run() error {
	dataBytes, err := os.ReadFile(filepath.Join(c.Dir, "data.ttl"))
	if err != nil {
		return err
	}
	g, err := rdf.LoadTurtleString(string(dataBytes))
	if err != nil {
		return fmt.Errorf("data.ttl: %w", err)
	}
	queryBytes, err := os.ReadFile(filepath.Join(c.Dir, "query.rq"))
	if err != nil {
		return err
	}
	query := string(queryBytes)
	q, err := sparql.Parse(query)
	if err != nil {
		return fmt.Errorf("query.rq: %w", err)
	}
	switch c.Expect {
	case "expect.bool":
		want, err := c.readBool()
		if err != nil {
			return err
		}
		got, err := sparql.Ask(g, query)
		if err != nil {
			return err
		}
		if got != want {
			return fmt.Errorf("ASK: got %v, want %v", got, want)
		}
		return nil
	case "expect.ttl":
		wantBytes, err := os.ReadFile(filepath.Join(c.Dir, "expect.ttl"))
		if err != nil {
			return err
		}
		want, err := rdf.LoadTurtleString(string(wantBytes))
		if err != nil {
			return fmt.Errorf("expect.ttl: %w", err)
		}
		got, err := sparql.Construct(g, query)
		if err != nil {
			return err
		}
		return compareGraphs(got, want)
	default: // expect.srj
		f, err := os.Open(filepath.Join(c.Dir, "expect.srj"))
		if err != nil {
			return err
		}
		defer f.Close()
		want, err := sparql.ParseJSONResults(f)
		if err != nil {
			return fmt.Errorf("expect.srj: %w", err)
		}
		got, err := sparql.ExecSelect(g, q)
		if err != nil {
			return err
		}
		return CompareResults(got, want, c.Ordered)
	}
}

func (c Case) readBool() (bool, error) {
	b, err := os.ReadFile(filepath.Join(c.Dir, "expect.bool"))
	if err != nil {
		return false, err
	}
	switch strings.TrimSpace(string(b)) {
	case "true":
		return true, nil
	case "false":
		return false, nil
	}
	return false, fmt.Errorf("expect.bool: want \"true\" or \"false\", got %q", string(b))
}

// CompareResults checks a computed SELECT result table against the expected
// one: the projection must match exactly, and rows must match as a sequence
// (ordered) or as a multiset (unordered). It is exported so the metamorphic
// oracles can reuse the same comparison.
func CompareResults(got, want *sparql.Results, ordered bool) error {
	if len(got.Vars) != len(want.Vars) {
		return fmt.Errorf("projection: got %v, want %v", got.Vars, want.Vars)
	}
	for i := range want.Vars {
		if got.Vars[i] != want.Vars[i] {
			return fmt.Errorf("projection: got %v, want %v", got.Vars, want.Vars)
		}
	}
	gk := RowKeys(got)
	wk := RowKeys(want)
	if !ordered {
		sort.Strings(gk)
		sort.Strings(wk)
	}
	if len(gk) != len(wk) {
		return fmt.Errorf("row count: got %d, want %d\ngot:\n%swant:\n%s", len(gk), len(wk), renderKeys(gk), renderKeys(wk))
	}
	for i := range wk {
		if gk[i] != wk[i] {
			return fmt.Errorf("row %d: got %s, want %s", i, renderKey(gk[i]), renderKey(wk[i]))
		}
	}
	return nil
}

// RowKeys canonicalizes each result row to one string over the projected
// variables, in projection order: the N-Triples form of each bound term,
// the empty slot for unbound ones.
func RowKeys(r *sparql.Results) []string {
	out := make([]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		var sb strings.Builder
		for i, v := range r.Vars {
			if i > 0 {
				sb.WriteByte('\x1f')
			}
			if t, ok := row[v]; ok {
				sb.WriteString(t.String())
			}
		}
		out = append(out, sb.String())
	}
	return out
}

func renderKey(k string) string {
	return "[" + strings.ReplaceAll(k, "\x1f", " | ") + "]"
}

func renderKeys(ks []string) string {
	var sb strings.Builder
	for _, k := range ks {
		sb.WriteString("  ")
		sb.WriteString(renderKey(k))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// compareGraphs compares two graphs as canonical sorted N-Triples (the
// corpus avoids blank nodes in CONSTRUCT templates, so no isomorphism
// machinery is needed).
func compareGraphs(got, want *rdf.Graph) error {
	g := canonicalNT(got)
	w := canonicalNT(want)
	if g != w {
		return fmt.Errorf("graphs differ\ngot:\n%s\nwant:\n%s", g, w)
	}
	return nil
}

func canonicalNT(g *rdf.Graph) string {
	var lines []string
	for _, t := range g.Triples() {
		lines = append(lines, t.String())
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
