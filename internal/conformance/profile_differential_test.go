package conformance

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"rdfanalytics/internal/rdf"
	"rdfanalytics/internal/sparql"
)

// TestProfileCorpusDifferential runs every SELECT case of the conformance
// corpus twice — once plain, once with the operator profiler attached — and
// requires the serialized results to be byte-identical. Profiling must be a
// pure observer: it may never change row content, order, or error behavior,
// on any query shape the corpus covers.
func TestProfileCorpusDifferential(t *testing.T) {
	cases, err := LoadCases("testdata")
	if err != nil {
		t.Fatal(err)
	}
	selects := 0
	for _, c := range cases {
		if c.Expect != "expect.srj" {
			continue
		}
		selects++
		t.Run(c.Category+"/"+c.Name, func(t *testing.T) {
			dataBytes, err := os.ReadFile(filepath.Join(c.Dir, "data.ttl"))
			if err != nil {
				t.Fatal(err)
			}
			g, err := rdf.LoadTurtleString(string(dataBytes))
			if err != nil {
				t.Fatal(err)
			}
			queryBytes, err := os.ReadFile(filepath.Join(c.Dir, "query.rq"))
			if err != nil {
				t.Fatal(err)
			}
			q, err := sparql.Parse(string(queryBytes))
			if err != nil {
				t.Fatal(err)
			}
			plain, plainErr := sparql.ExecSelectOpts(g, q, sparql.Options{})
			prof := sparql.NewProfile("query")
			profiled, profErr := sparql.ExecSelectOpts(g, q, sparql.Options{Profile: prof})
			if (plainErr == nil) != (profErr == nil) {
				t.Fatalf("error divergence: plain=%v profiled=%v", plainErr, profErr)
			}
			if plainErr != nil {
				return
			}
			// Property-path evaluation yields rows in nondeterministic order
			// (set semantics over map iteration), so for cases without ORDER BY
			// canonicalize both runs the same way the CLI and server do before
			// comparing bytes.
			if !c.Ordered {
				plain.Sort()
				profiled.Sort()
			}
			var a, b bytes.Buffer
			if err := plain.WriteJSON(&a); err != nil {
				t.Fatal(err)
			}
			if err := profiled.WriteJSON(&b); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Errorf("profiled run diverged:\nplain:    %s\nprofiled: %s", a.String(), b.String())
			}
			if prof.Root() == nil || prof.Tree() == "" {
				t.Error("profile empty after profiled run")
			}
		})
	}
	if selects == 0 {
		t.Fatal("corpus has no SELECT cases")
	}
}
