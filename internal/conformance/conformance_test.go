package conformance

import (
	"fmt"
	"sort"
	"testing"
)

// minCorpusCases is the floor the corpus must not shrink below (the harness
// is only as good as its coverage; deleting cases should hurt).
const minCorpusCases = 60

// TestCorpus runs every testdata case against the engine and prints a
// per-category pass/fail table.
func TestCorpus(t *testing.T) {
	cases, err := LoadCases("testdata")
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) < minCorpusCases {
		t.Fatalf("corpus has %d cases, want >= %d", len(cases), minCorpusCases)
	}
	type tally struct{ pass, fail int }
	perCat := map[string]*tally{}
	for _, c := range cases {
		c := c
		if perCat[c.Category] == nil {
			perCat[c.Category] = &tally{}
		}
		ok := t.Run(c.Category+"/"+c.Name, func(t *testing.T) {
			if err := c.Run(); err != nil {
				t.Error(err)
			}
		})
		if ok {
			perCat[c.Category].pass++
		} else {
			perCat[c.Category].fail++
		}
	}
	cats := make([]string, 0, len(perCat))
	for c := range perCat {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	total := tally{}
	summary := "\nconformance corpus results:\n"
	for _, c := range cats {
		tl := perCat[c]
		summary += fmt.Sprintf("  %-12s %3d pass  %3d fail\n", c, tl.pass, tl.fail)
		total.pass += tl.pass
		total.fail += tl.fail
	}
	summary += fmt.Sprintf("  %-12s %3d pass  %3d fail\n", "TOTAL", total.pass, total.fail)
	t.Log(summary)
}
