package conformance

// Metamorphic oracles: for seeded random queries over generated graphs, two
// query formulations that the SPARQL algebra defines as equivalent must
// produce identical result tables. No expected outputs are hand-computed —
// the oracle is the equivalence itself, which is what lets these tests cover
// query shapes no human enumerated.

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"rdfanalytics/internal/datagen"
	"rdfanalytics/internal/rdf"
	"rdfanalytics/internal/sparql"
)

const invPrefix = "PREFIX inv: <http://example.org/invoices#>\n"

// metaGraph is the shared generated dataset the metamorphic oracles run
// against. Deterministic per seed, ~300 invoices over 6 branches.
func metaGraph() *rdf.Graph {
	return datagen.Invoices(datagen.InvoicesConfig{
		Invoices: 300, Branches: 6, Products: 12, Brands: 4, Seed: 7,
	})
}

func mustSelect(t *testing.T, g *rdf.Graph, query string) *sparql.Results {
	t.Helper()
	q, err := sparql.Parse(query)
	if err != nil {
		t.Fatalf("parse %q: %v", query, err)
	}
	res, err := sparql.ExecSelect(g, q)
	if err != nil {
		t.Fatalf("exec %q: %v", query, err)
	}
	return res
}

// randomCore builds a random basic graph pattern over the invoices schema
// plus zero or more filters, and returns it with the variables it binds
// (sorted, ?i always included).
func randomCore(rng *rand.Rand) (pattern string, vars []string) {
	var sb strings.Builder
	sb.WriteString("?i a inv:Invoice . ")
	vars = []string{"i"}
	add := func(v, pat string) {
		sb.WriteString(pat)
		sb.WriteString(" ")
		vars = append(vars, v)
	}
	if rng.Intn(2) == 0 {
		add("b", "?i inv:takesPlaceAt ?b .")
	}
	if rng.Intn(2) == 0 {
		add("p", "?i inv:delivers ?p .")
	}
	if rng.Intn(2) == 0 {
		add("d", "?i inv:hasDate ?d .")
	}
	// Always bind the measure so filters have something numeric to chew on.
	add("q", "?i inv:inQuantity ?q .")
	has := func(v string) bool {
		for _, x := range vars {
			if x == v {
				return true
			}
		}
		return false
	}
	if rng.Intn(2) == 0 {
		sb.WriteString(fmt.Sprintf("FILTER(?q > %d) ", 50+10*rng.Intn(40)))
	}
	if has("d") && rng.Intn(2) == 0 {
		sb.WriteString(fmt.Sprintf("FILTER(MONTH(?d) <= %d) ", 1+rng.Intn(12)))
	}
	if has("b") && rng.Intn(3) == 0 {
		sb.WriteString(fmt.Sprintf("FILTER(?b = inv:branch%d) ", 1+rng.Intn(6)))
	}
	sort.Strings(vars)
	return sb.String(), vars
}

func projection(vars []string) string {
	out := make([]string, len(vars))
	for i, v := range vars {
		out[i] = "?" + v
	}
	return strings.Join(out, " ")
}

// TestMetamorphicPagination: paging through LIMIT/OFFSET and concatenating
// the pages must reproduce the full ordered scan exactly — no dropped,
// duplicated or reordered solutions at page boundaries.
func TestMetamorphicPagination(t *testing.T) {
	g := metaGraph()
	rng := rand.New(rand.NewSource(1))
	for round := 0; round < 20; round++ {
		core, vars := randomCore(rng)
		proj := projection(vars)
		// ?i is unique per solution here, so ORDER BY over all projected
		// variables (?i among them) is a total order: pagination is
		// deterministic.
		base := invPrefix + "SELECT " + proj + " WHERE { " + core + "} ORDER BY " + proj
		full := RowKeys(mustSelect(t, g, base))
		pageSize := 1 + rng.Intn(7)
		var paged []string
		for offset := 0; ; offset += pageSize {
			page := mustSelect(t, g, base+fmt.Sprintf(" LIMIT %d OFFSET %d", pageSize, offset))
			paged = append(paged, RowKeys(page)...)
			if len(page.Rows) < pageSize {
				break
			}
			if offset > len(full)+pageSize {
				t.Fatalf("round %d: pagination does not terminate", round)
			}
		}
		if len(paged) != len(full) {
			t.Fatalf("round %d (%s): paged %d rows, full scan %d", round, core, len(paged), len(full))
		}
		for i := range full {
			if paged[i] != full[i] {
				t.Fatalf("round %d (%s): row %d differs: paged %q, full %q", round, core, i, paged[i], full[i])
			}
		}
	}
}

// TestMetamorphicDistinct: DISTINCT is idempotent (no duplicate rows in its
// output) and set-equivalent to the plain query.
func TestMetamorphicDistinct(t *testing.T) {
	g := metaGraph()
	rng := rand.New(rand.NewSource(2))
	for round := 0; round < 20; round++ {
		core, vars := randomCore(rng)
		// Project a proper subset that drops ?i so duplicates can arise.
		var sub []string
		for _, v := range vars {
			if v == "i" {
				continue
			}
			if len(sub) == 0 || rng.Intn(2) == 0 {
				sub = append(sub, v)
			}
		}
		if len(sub) == 0 {
			continue
		}
		proj := projection(sub)
		plain := RowKeys(mustSelect(t, g, invPrefix+"SELECT "+proj+" WHERE { "+core+"}"))
		dist := RowKeys(mustSelect(t, g, invPrefix+"SELECT DISTINCT "+proj+" WHERE { "+core+"}"))
		seen := map[string]bool{}
		for _, k := range dist {
			if seen[k] {
				t.Fatalf("round %d (%s): DISTINCT emitted duplicate row %q", round, core, renderKey(k))
			}
			seen[k] = true
		}
		want := map[string]bool{}
		for _, k := range plain {
			want[k] = true
		}
		if len(seen) != len(want) {
			t.Fatalf("round %d (%s): DISTINCT has %d unique rows, plain query has %d", round, core, len(seen), len(want))
		}
		for k := range want {
			if !seen[k] {
				t.Fatalf("round %d (%s): row %q lost by DISTINCT", round, core, renderKey(k))
			}
		}
	}
}

// TestMetamorphicUnionCommutes: UNION is multiset-commutative.
func TestMetamorphicUnionCommutes(t *testing.T) {
	g := metaGraph()
	rng := rand.New(rand.NewSource(3))
	for round := 0; round < 20; round++ {
		a := fmt.Sprintf("{ ?i inv:inQuantity ?q . FILTER(?q >= %d) }", 100+10*rng.Intn(40))
		b := fmt.Sprintf("{ ?i inv:takesPlaceAt inv:branch%d }", 1+rng.Intn(6))
		ab := mustSelect(t, g, invPrefix+"SELECT ?i WHERE { "+a+" UNION "+b+" }")
		ba := mustSelect(t, g, invPrefix+"SELECT ?i WHERE { "+b+" UNION "+a+" }")
		if err := CompareResults(ab, ba, false); err != nil {
			t.Fatalf("round %d: %s UNION %s not commutative: %v", round, a, b, err)
		}
	}
}

// TestMetamorphicFilterSplit: FILTER(e1 && e2) is equivalent to the two
// conjuncts as separate FILTERs over the same group.
func TestMetamorphicFilterSplit(t *testing.T) {
	g := metaGraph()
	rng := rand.New(rand.NewSource(4))
	for round := 0; round < 20; round++ {
		lo := 50 + 10*rng.Intn(30)
		hi := lo + 10*rng.Intn(30)
		pat := "?i inv:inQuantity ?q . ?i inv:takesPlaceAt ?b . "
		joined := mustSelect(t, g, invPrefix+fmt.Sprintf(
			"SELECT ?i ?b WHERE { %sFILTER(?q > %d && ?q <= %d) }", pat, lo, hi))
		split := mustSelect(t, g, invPrefix+fmt.Sprintf(
			"SELECT ?i ?b WHERE { %sFILTER(?q > %d) FILTER(?q <= %d) }", pat, lo, hi))
		if err := CompareResults(joined, split, false); err != nil {
			t.Fatalf("round %d (lo=%d hi=%d): conjunction split changed the result: %v", round, lo, hi, err)
		}
	}
}

// TestMetamorphicSubqueryFlatten: wrapping a group pattern in
// { SELECT * { P } } is a no-op.
func TestMetamorphicSubqueryFlatten(t *testing.T) {
	g := metaGraph()
	rng := rand.New(rand.NewSource(5))
	for round := 0; round < 20; round++ {
		core, vars := randomCore(rng)
		proj := projection(vars)
		flat := mustSelect(t, g, invPrefix+"SELECT "+proj+" WHERE { "+core+"}")
		nested := mustSelect(t, g, invPrefix+"SELECT "+proj+" WHERE { { SELECT * WHERE { "+core+"} } }")
		if err := CompareResults(flat, nested, false); err != nil {
			t.Fatalf("round %d (%s): subquery wrapper changed the result: %v", round, core, err)
		}
	}
}

// TestMetamorphicOrderComparator: the ORDER BY comparator is a strict weak
// order over real result rows — sorting with it yields a sorted slice, it is
// antisymmetric, and both the strict relation and the incomparability
// relation are transitive. A comparator violating these makes sort.Slice
// output order undefined (and historically, platform-dependent).
func TestMetamorphicOrderComparator(t *testing.T) {
	// Timestamps on: xsd:dateTime values with mixed timezone offsets, whose
	// lexical order disagrees with their time-line order — the comparator
	// must still be a strict weak order over them.
	g := datagen.Invoices(datagen.InvoicesConfig{
		Invoices: 300, Branches: 6, Products: 12, Brands: 4, Seed: 7, Timestamps: true,
	})
	res := mustSelect(t, g, invPrefix+
		"SELECT ?i ?b ?q ?d ?ts WHERE { ?i inv:takesPlaceAt ?b . ?i inv:inQuantity ?q . ?i inv:hasDate ?d . ?i inv:hasTimestamp ?ts }")
	rows := res.Rows
	if len(rows) < 50 {
		t.Fatalf("want a meaningful row population, got %d", len(rows))
	}
	// An all-unbound row participates too: unbound sorts first.
	rows = append(rows, sparql.Binding{})
	conds := []sparql.OrderCond{
		{Desc: true, Expr: sparql.ExprVar{Name: "q"}},
		{Expr: sparql.ExprVar{Name: "ts"}},
		{Expr: sparql.ExprVar{Name: "i"}},
	}
	cmp := sparql.OrderComparator(g, conds)
	sorted := append([]sparql.Binding{}, rows...)
	sort.SliceStable(sorted, func(i, j int) bool { return cmp(sorted[i], sorted[j]) < 0 })
	if !sort.SliceIsSorted(sorted, func(i, j int) bool { return cmp(sorted[i], sorted[j]) < 0 }) {
		t.Fatal("sorting with the ORDER BY comparator did not produce a sorted slice")
	}
	sign := func(x int) int {
		switch {
		case x < 0:
			return -1
		case x > 0:
			return 1
		}
		return 0
	}
	rng := rand.New(rand.NewSource(6))
	pick := func() sparql.Binding { return rows[rng.Intn(len(rows))] }
	for i := 0; i < 2000; i++ {
		a, b, c := pick(), pick(), pick()
		if sign(cmp(a, b)) != -sign(cmp(b, a)) {
			t.Fatalf("antisymmetry violated: cmp(a,b)=%d cmp(b,a)=%d\na=%v\nb=%v", cmp(a, b), cmp(b, a), a, b)
		}
		if cmp(a, b) < 0 && cmp(b, c) < 0 && !(cmp(a, c) < 0) {
			t.Fatalf("transitivity violated: a<b, b<c but not a<c\na=%v\nb=%v\nc=%v", a, b, c)
		}
		if cmp(a, b) == 0 && cmp(b, c) == 0 && cmp(a, c) != 0 {
			t.Fatalf("incomparability not transitive: a~b, b~c but cmp(a,c)=%d\na=%v\nb=%v\nc=%v", cmp(a, c), a, b, c)
		}
		if cmp(a, a) != 0 {
			t.Fatalf("irreflexivity violated: cmp(a,a)=%d for %v", cmp(a, a), a)
		}
	}
}
