package conformance

// Differential oracle: a HIFUN analytic query executed through the full
// HIFUN→SPARQL→engine pipeline must agree with the same facet computed
// directly on the graph by a plain Go scan. The two implementations share no
// code below the graph API, so agreement on every (dataset, operation) pair
// is strong evidence that the translation and the aggregate evaluator are
// both right — and any divergence pinpoints which query shape is broken.

import (
	"fmt"
	"math"
	"testing"

	"rdfanalytics/internal/datagen"
	"rdfanalytics/internal/hifun"
	"rdfanalytics/internal/rdf"
)

func inv(local string) rdf.Term { return rdf.NewIRI(datagen.InvoicesNS + local) }

// directBranchAgg computes op over inQuantity grouped by takesPlaceAt with a
// straight double scan of the graph — no SPARQL, no HIFUN.
func directBranchAgg(g *rdf.Graph, op string) map[string]float64 {
	type acc struct {
		sum      int64
		min, max int64
		n        int64
	}
	accs := map[string]*acc{}
	g.Match(rdf.Any, inv("takesPlaceAt"), rdf.Any, func(t rdf.Triple) bool {
		branch := t.O.LocalName()
		g.Match(t.S, inv("inQuantity"), rdf.Any, func(u rdf.Triple) bool {
			q, ok := u.O.Int()
			if !ok {
				return true
			}
			a := accs[branch]
			if a == nil {
				a = &acc{min: math.MaxInt64, max: math.MinInt64}
				accs[branch] = a
			}
			a.sum += q
			a.n++
			if q < a.min {
				a.min = q
			}
			if q > a.max {
				a.max = q
			}
			return true
		})
		return true
	})
	out := map[string]float64{}
	for b, a := range accs {
		switch op {
		case "SUM":
			out[b] = float64(a.sum)
		case "COUNT":
			out[b] = float64(a.n)
		case "MIN":
			out[b] = float64(a.min)
		case "MAX":
			out[b] = float64(a.max)
		case "AVG":
			out[b] = float64(a.sum) / float64(a.n)
		}
	}
	return out
}

// directBrandCount counts invoices per brand through the delivers→brand
// attribute chain.
func directBrandCount(g *rdf.Graph) map[string]float64 {
	out := map[string]float64{}
	g.Match(rdf.Any, inv("delivers"), rdf.Any, func(t rdf.Triple) bool {
		// Only invoices count as data items; delivers is invoice-only in both
		// datasets but be explicit anyway.
		g.Match(t.O, inv("brand"), rdf.Any, func(u rdf.Triple) bool {
			out[u.O.LocalName()]++
			return true
		})
		return true
	})
	return out
}

func diffGraphs() map[string]*rdf.Graph {
	return map[string]*rdf.Graph{
		"small": datagen.SmallInvoices(),
		"gen":   datagen.Invoices(datagen.InvoicesConfig{Invoices: 400, Branches: 7, Products: 15, Brands: 5, Seed: 11}),
	}
}

func answerMap(t *testing.T, a *hifun.Answer) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for _, row := range a.Rows {
		if len(row) != 2 {
			t.Fatalf("want 2-column answer rows, got %d", len(row))
		}
		f, ok := row[1].Float()
		if !ok {
			t.Fatalf("non-numeric measure %s for group %s", row[1], row[0])
		}
		out[row[0].LocalName()] = f
	}
	return out
}

func compareMaps(t *testing.T, label string, got, want map[string]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d groups via HIFUN, %d via direct scan\ngot:  %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for k, w := range want {
		gv, ok := got[k]
		if !ok {
			t.Fatalf("%s: group %s missing from HIFUN answer", label, k)
		}
		if math.Abs(gv-w) > 1e-9*math.Max(1, math.Abs(w)) {
			t.Fatalf("%s: group %s: HIFUN %v, direct %v", label, k, gv, w)
		}
	}
}

// TestHIFUNDifferentialBranchAggregates pins (takesPlaceAt, inQuantity, op)
// for every aggregation operation against the direct scan, on both the
// hand-written dataset and a seeded generated one.
func TestHIFUNDifferentialBranchAggregates(t *testing.T) {
	for name, g := range diffGraphs() {
		ctx := hifun.NewContext(g, datagen.InvoicesNS).WithRoot(inv("Invoice"))
		for _, op := range []string{"SUM", "COUNT", "MIN", "MAX", "AVG"} {
			label := name + "/" + op
			ans, err := ctx.ExecuteText(fmt.Sprintf("(takesPlaceAt, inQuantity, %s)", op))
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			compareMaps(t, label, answerMap(t, ans), directBranchAgg(g, op))
		}
	}
}

// TestHIFUNDifferentialBrandChain pins the attribute-composition query
// (brand.delivers, ID, COUNT) against the direct two-hop scan.
func TestHIFUNDifferentialBrandChain(t *testing.T) {
	for name, g := range diffGraphs() {
		ctx := hifun.NewContext(g, datagen.InvoicesNS).WithRoot(inv("Invoice"))
		ans, err := ctx.ExecuteText("(brand.delivers, ID, COUNT)")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		compareMaps(t, name+"/brand-chain", answerMap(t, ans), directBrandCount(g))
	}
}
