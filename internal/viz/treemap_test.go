package viz

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestTreemapAreasProportional(t *testing.T) {
	items := []TreemapItem{{"a", 50}, {"b", 30}, {"c", 20}}
	rects := Treemap(items, 100, 100)
	if len(rects) != 3 {
		t.Fatalf("rects = %d", len(rects))
	}
	totalArea := 0.0
	for _, r := range rects {
		area := r.W * r.H
		wantArea := r.Value / 100 * 100 * 100
		if math.Abs(area-wantArea) > 1e-6 {
			t.Errorf("%s: area %.2f, want %.2f", r.Label, area, wantArea)
		}
		totalArea += area
	}
	if math.Abs(totalArea-10000) > 1e-6 {
		t.Errorf("total area %.2f, want 10000", totalArea)
	}
}

func TestTreemapNoOverlapAndInBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	items := make([]TreemapItem, 20)
	for i := range items {
		items[i] = TreemapItem{Label: string(rune('a' + i)), Value: rng.Float64()*100 + 1}
	}
	rects := Treemap(items, 200, 120)
	const eps = 1e-6
	for i, a := range rects {
		if a.X < -eps || a.Y < -eps || a.X+a.W > 200+eps || a.Y+a.H > 120+eps {
			t.Errorf("rect %d out of bounds: %+v", i, a)
		}
		for j := i + 1; j < len(rects); j++ {
			b := rects[j]
			if a.X+eps < b.X+b.W && b.X+eps < a.X+a.W &&
				a.Y+eps < b.Y+b.H && b.Y+eps < a.Y+a.H {
				t.Errorf("rects %d and %d overlap: %+v / %+v", i, j, a, b)
			}
		}
	}
}

func TestTreemapAspectQuality(t *testing.T) {
	// Squarified layouts should avoid extreme slivers for balanced values.
	items := []TreemapItem{{"a", 6}, {"b", 6}, {"c", 4}, {"d", 3}, {"e", 2}, {"f", 2}, {"g", 1}}
	rects := Treemap(items, 600, 400)
	for _, r := range rects {
		ratio := math.Max(r.W/r.H, r.H/r.W)
		if ratio > 4.5 {
			t.Errorf("%s: aspect ratio %.2f too extreme (%+v)", r.Label, ratio, r)
		}
	}
}

func TestTreemapEdgeCases(t *testing.T) {
	if r := Treemap(nil, 100, 100); r != nil {
		t.Error("empty input must yield nil")
	}
	if r := Treemap([]TreemapItem{{"neg", -5}, {"zero", 0}}, 100, 100); r != nil {
		t.Error("non-positive values must be dropped")
	}
	if r := Treemap([]TreemapItem{{"a", 1}}, 0, 100); r != nil {
		t.Error("degenerate rectangle must yield nil")
	}
	r := Treemap([]TreemapItem{{"only", 7}}, 50, 40)
	if len(r) != 1 || r[0].W != 50 || r[0].H != 40 {
		t.Errorf("single item must fill the rectangle: %+v", r)
	}
}

func TestTreemapQuickInvariants(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 24 {
			return true
		}
		items := make([]TreemapItem, len(raw))
		for i, v := range raw {
			items[i] = TreemapItem{Label: string(rune('a' + i)), Value: float64(v) + 1}
		}
		rects := Treemap(items, 300, 200)
		if len(rects) != len(items) {
			return false
		}
		// Areas sum to the canvas.
		total := 0.0
		for _, r := range rects {
			if r.W < 0 || r.H < 0 {
				return false
			}
			total += r.W * r.H
		}
		return math.Abs(total-60000) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTreemapSVG(t *testing.T) {
	s := Series{Title: "t", Labels: []string{"x", "y"}, Values: []float64{3, 1}}
	svg := TreemapSVG(s, 300, 200)
	if strings.Count(svg, "<rect") != 2 {
		t.Fatalf("svg: %s", svg)
	}
}
