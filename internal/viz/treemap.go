package viz

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Squarified treemap layout (Bruls, Huizing & van Wijk): values become
// rectangles whose areas are proportional to the values and whose aspect
// ratios stay close to 1. §3.4.2 lists treemaps among the chart types used
// for hierarchical analytical results.

// TreemapItem is one value to place.
type TreemapItem struct {
	Label string
	Value float64
}

// Rect is one placed rectangle.
type Rect struct {
	Label      string
	Value      float64
	X, Y, W, H float64
}

// Treemap lays the items into the (0,0)–(width,height) rectangle. Items
// with non-positive values are dropped. The result is deterministic: items
// sort by descending value, ties by label.
func Treemap(items []TreemapItem, width, height float64) []Rect {
	var kept []TreemapItem
	total := 0.0
	for _, it := range items {
		if it.Value > 0 {
			kept = append(kept, it)
			total += it.Value
		}
	}
	if len(kept) == 0 || width <= 0 || height <= 0 {
		return nil
	}
	sort.SliceStable(kept, func(i, j int) bool {
		if kept[i].Value != kept[j].Value {
			return kept[i].Value > kept[j].Value
		}
		return kept[i].Label < kept[j].Label
	})
	// Normalize values to areas.
	scale := width * height / total
	areas := make([]float64, len(kept))
	for i, it := range kept {
		areas[i] = it.Value * scale
	}
	var out []Rect
	squarify(kept, areas, 0, 0, width, height, &out)
	return out
}

// squarify places areas into the free rectangle, greedily growing a row
// while the worst aspect ratio improves.
func squarify(items []TreemapItem, areas []float64, x, y, w, h float64, out *[]Rect) {
	if len(items) == 0 {
		return
	}
	// The row lays along the shorter side.
	rowStart := 0
	rowSum := 0.0
	for i := range items {
		side := math.Min(w, h)
		if i == rowStart {
			rowSum = areas[i]
			continue
		}
		if worst(areas[rowStart:i], rowSum, side) >= worst(areas[rowStart:i+1], rowSum+areas[i], side) {
			rowSum += areas[i]
			continue
		}
		// Fix the row [rowStart, i), recurse on the rest.
		x, y, w, h = layRow(items[rowStart:i], areas[rowStart:i], rowSum, x, y, w, h, out)
		squarify(items[i:], areas[i:], x, y, w, h, out)
		return
	}
	layRow(items[rowStart:], areas[rowStart:], rowSum, x, y, w, h, out)
}

// worst returns the worst aspect ratio of a row of areas with total sum
// laid along a side of the given length.
func worst(areas []float64, sum, side float64) float64 {
	if len(areas) == 0 || sum <= 0 {
		return math.Inf(1)
	}
	rowThickness := sum / side
	worstRatio := 0.0
	for _, a := range areas {
		length := a / rowThickness
		ratio := math.Max(length/rowThickness, rowThickness/length)
		worstRatio = math.Max(worstRatio, ratio)
	}
	return worstRatio
}

// layRow emits the rectangles of one row and returns the remaining free
// rectangle.
func layRow(items []TreemapItem, areas []float64, sum, x, y, w, h float64, out *[]Rect) (float64, float64, float64, float64) {
	if w >= h {
		// Vertical row on the left edge.
		rowW := sum / h
		cy := y
		for i, it := range items {
			rh := areas[i] / rowW
			*out = append(*out, Rect{Label: it.Label, Value: it.Value, X: x, Y: cy, W: rowW, H: rh})
			cy += rh
		}
		return x + rowW, y, w - rowW, h
	}
	// Horizontal row on the top edge.
	rowH := sum / w
	cx := x
	for i, it := range items {
		rw := areas[i] / rowH
		*out = append(*out, Rect{Label: it.Label, Value: it.Value, X: cx, Y: y, W: rw, H: rowH})
		cx += rw
	}
	return x, y + rowH, w, h - rowH
}

// TreemapSVG renders a treemap of the series.
func TreemapSVG(s Series, width, height int) string {
	if width <= 0 {
		width = 640
	}
	if height <= 0 {
		height = 400
	}
	items := make([]TreemapItem, len(s.Values))
	for i := range s.Values {
		items[i] = TreemapItem{Label: s.Labels[i], Value: math.Abs(s.Values[i])}
	}
	rects := Treemap(items, float64(width), float64(height)-20)
	var sb strings.Builder
	fmt.Fprintf(&sb, svgHeader, width, height, width, height)
	fmt.Fprintf(&sb, `<text x="4" y="14" font-weight="bold">%s</text>`+"\n", escapeXML(s.Title))
	for i, r := range rects {
		fmt.Fprintf(&sb,
			`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="#fff"><title>%s: %s</title></rect>`+"\n",
			r.X, r.Y+20, r.W, r.H, palette[i%len(palette)], escapeXML(r.Label), formatNum(r.Value))
		if r.W > 40 && r.H > 16 {
			fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" fill="#fff">%s</text>`+"\n",
				r.X+4, r.Y+20+14, escapeXML(trim(r.Label, int(r.W/7))))
		}
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}
