package viz

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// The 3D visualization of §6.3 adopts the metaphor of an urban area: each
// entity (country, dataset, group) is a multi-storey cube; each segment of
// the cube corresponds to one feature and its volume is proportional to the
// feature's value.

// Entity3D is one entity with its feature values.
type Entity3D struct {
	Label    string
	Features map[string]float64
}

// Segment is one storey of a building.
type Segment struct {
	Feature string  `json:"feature"`
	Value   float64 `json:"value"`
	Height  float64 `json:"height"`
	Z       float64 `json:"z"` // base elevation
}

// Building is one entity's cube stack placed on the city grid.
type Building struct {
	Label    string    `json:"label"`
	X        float64   `json:"x"`
	Y        float64   `json:"y"`
	Base     float64   `json:"base"` // footprint side
	Segments []Segment `json:"segments"`
}

// Scene is the complete 3D scene.
type Scene struct {
	Buildings []Building `json:"buildings"`
	Features  []string   `json:"features"`
}

// CityConfig parameterizes the layout.
type CityConfig struct {
	// Base is the footprint side of every building (default 10).
	Base float64
	// MaxHeight is the height of the tallest segment stack (default 60).
	MaxHeight float64
	// Gap separates buildings on the grid (default 4).
	Gap float64
}

// BuildCity lays the entities out on a square grid, ordered by total value
// (largest first), with segment heights scaled so the largest total reaches
// MaxHeight. Volume proportionality holds because footprints are equal.
func BuildCity(entities []Entity3D, cfg CityConfig) *Scene {
	if cfg.Base <= 0 {
		cfg.Base = 10
	}
	if cfg.MaxHeight <= 0 {
		cfg.MaxHeight = 60
	}
	if cfg.Gap <= 0 {
		cfg.Gap = 4
	}
	// Stable feature order across buildings.
	featSet := map[string]bool{}
	for _, e := range entities {
		for f := range e.Features {
			featSet[f] = true
		}
	}
	features := make([]string, 0, len(featSet))
	for f := range featSet {
		features = append(features, f)
	}
	sort.Strings(features)
	// Order entities by total.
	ents := append([]Entity3D(nil), entities...)
	total := func(e Entity3D) float64 {
		t := 0.0
		for _, v := range e.Features {
			t += math.Abs(v)
		}
		return t
	}
	sort.SliceStable(ents, func(i, j int) bool {
		ti, tj := total(ents[i]), total(ents[j])
		if ti != tj {
			return ti > tj
		}
		return ents[i].Label < ents[j].Label
	})
	maxTotal := 1e-9
	for _, e := range ents {
		maxTotal = math.Max(maxTotal, total(e))
	}
	side := int(math.Ceil(math.Sqrt(float64(len(ents)))))
	scene := &Scene{Features: features}
	for i, e := range ents {
		row, col := i/side, i%side
		b := Building{
			Label: e.Label,
			X:     float64(col) * (cfg.Base + cfg.Gap),
			Y:     float64(row) * (cfg.Base + cfg.Gap),
			Base:  cfg.Base,
		}
		z := 0.0
		for _, f := range features {
			v, ok := e.Features[f]
			if !ok {
				continue
			}
			h := cfg.MaxHeight * math.Abs(v) / maxTotal
			b.Segments = append(b.Segments, Segment{Feature: f, Value: v, Height: h, Z: z})
			z += h
		}
		scene.Buildings = append(scene.Buildings, b)
	}
	return scene
}

// JSON serializes the scene for a 3D client.
func (s *Scene) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// IsometricSVG renders the scene as an isometric projection: each segment
// becomes a parallelogram-faced box. Good enough to inspect the layout
// without a WebGL client.
func (s *Scene) IsometricSVG(scale float64) string {
	if scale <= 0 {
		scale = 3
	}
	// Isometric projection: screenX = (x - y) * cos30, screenY = (x + y) *
	// sin30 - z.
	cos30, sin30 := math.Sqrt(3)/2, 0.5
	proj := func(x, y, z float64) (float64, float64) {
		return (x - y) * cos30 * scale, ((x+y)*sin30 - z) * scale
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	consider := func(px, py float64) {
		minX, minY = math.Min(minX, px), math.Min(minY, py)
		maxX, maxY = math.Max(maxX, px), math.Max(maxY, py)
	}
	for _, b := range s.Buildings {
		totalH := 0.0
		for _, seg := range b.Segments {
			totalH += seg.Height
		}
		for _, dx := range []float64{0, b.Base} {
			for _, dy := range []float64{0, b.Base} {
				px, py := proj(b.X+dx, b.Y+dy, 0)
				consider(px, py)
				px, py = proj(b.X+dx, b.Y+dy, totalH)
				consider(px, py)
			}
		}
	}
	pad := 20.0
	w := int(maxX-minX+2*pad) + 1
	h := int(maxY-minY+2*pad) + 1
	tx := func(px float64) float64 { return px - minX + pad }
	ty := func(py float64) float64 { return py - minY + pad }
	var sb strings.Builder
	fmt.Fprintf(&sb, svgHeader, w, h, w, h)
	// Paint back-to-front: sort buildings by x+y descending? Isometric with
	// -z upward: larger x+y is closer to the viewer; draw far ones first.
	bs := append([]Building(nil), s.Buildings...)
	sort.SliceStable(bs, func(i, j int) bool { return bs[i].X+bs[i].Y < bs[j].X+bs[j].Y })
	for _, b := range bs {
		for si, seg := range b.Segments {
			color := palette[si%len(palette)]
			drawBox(&sb, b, seg, color, proj, tx, ty)
		}
		// Label above the stack.
		totalH := 0.0
		for _, seg := range b.Segments {
			totalH += seg.Height
		}
		px, py := proj(b.X+b.Base/2, b.Y+b.Base/2, totalH+3)
		fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" text-anchor="middle">%s</text>`+"\n",
			tx(px), ty(py), escapeXML(b.Label))
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

func drawBox(sb *strings.Builder, b Building, seg Segment,
	color string, proj func(x, y, z float64) (float64, float64),
	tx, ty func(float64) float64) {
	z0, z1 := seg.Z, seg.Z+seg.Height
	pt := func(x, y, z float64) string {
		px, py := proj(x, y, z)
		return fmt.Sprintf("%.1f,%.1f", tx(px), ty(py))
	}
	// Top face.
	fmt.Fprintf(sb, `<polygon points="%s %s %s %s" fill="%s" stroke="#333"/>`+"\n",
		pt(b.X, b.Y, z1), pt(b.X+b.Base, b.Y, z1),
		pt(b.X+b.Base, b.Y+b.Base, z1), pt(b.X, b.Y+b.Base, z1), color)
	// Front-left face (y = base edge).
	fmt.Fprintf(sb, `<polygon points="%s %s %s %s" fill="%s" stroke="#333" opacity="0.8"/>`+"\n",
		pt(b.X, b.Y+b.Base, z0), pt(b.X+b.Base, b.Y+b.Base, z0),
		pt(b.X+b.Base, b.Y+b.Base, z1), pt(b.X, b.Y+b.Base, z1), color)
	// Front-right face (x = base edge).
	fmt.Fprintf(sb, `<polygon points="%s %s %s %s" fill="%s" stroke="#333" opacity="0.6"/>`+"\n",
		pt(b.X+b.Base, b.Y, z0), pt(b.X+b.Base, b.Y+b.Base, z0),
		pt(b.X+b.Base, b.Y+b.Base, z1), pt(b.X+b.Base, b.Y, z1), color)
}
