package viz

import (
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"rdfanalytics/internal/datagen"
	"rdfanalytics/internal/hifun"
)

func answer(t testing.TB) *hifun.Answer {
	t.Helper()
	c := hifun.NewContext(datagen.SmallInvoices(), datagen.InvoicesNS)
	ans, err := c.ExecuteText("(takesPlaceAt, inQuantity, SUM)")
	if err != nil {
		t.Fatal(err)
	}
	return ans
}

func TestAnswerSeries(t *testing.T) {
	ans := answer(t)
	s, err := AnswerSeries(ans, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Labels) != 3 || len(s.Values) != 3 {
		t.Fatalf("series: %+v", s)
	}
	total := 0.0
	for _, v := range s.Values {
		total += v
	}
	if total != 1500 {
		t.Errorf("total = %v", total)
	}
	if _, err := AnswerSeries(ans, 5); err == nil {
		t.Error("bad measure index accepted")
	}
}

func TestChartSVGsWellFormed(t *testing.T) {
	ans := answer(t)
	s, _ := AnswerSeries(ans, 0)
	charts := map[string]string{
		"bar":    BarChartSVG(s, 640),
		"column": ColumnChartSVG(s, 640, 320),
		"pie":    PieChartSVG(s, 360),
		"line":   LineChartSVG(s, 640, 320),
	}
	for name, svg := range charts {
		if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
			t.Errorf("%s: not a complete SVG", name)
		}
		for _, label := range s.Labels {
			if !strings.Contains(svg, label) && name != "line" { // line trims long labels
				t.Errorf("%s: label %q missing", name, label)
			}
		}
		// Balanced tags (rough well-formedness proxy).
		if strings.Count(svg, "<rect") != strings.Count(svg, "/>")-strings.Count(svg, "<circle")-strings.Count(svg, "<path")-strings.Count(svg, "<polygon")-strings.Count(svg, "<polyline") && name == "bar" {
			t.Logf("%s: tag accounting odd (informational)", name)
		}
	}
}

func TestPieChartSingleSlice(t *testing.T) {
	svg := PieChartSVG(Series{Title: "t", Labels: []string{"only"}, Values: []float64{5}}, 200)
	if !strings.Contains(svg, "<circle") {
		t.Error("full pie must degrade to a circle")
	}
}

func TestEmptySeriesCharts(t *testing.T) {
	s := Series{Title: "empty"}
	for _, svg := range []string{
		ColumnChartSVG(s, 100, 100), PieChartSVG(s, 100), LineChartSVG(s, 100, 100), BarChartSVG(s, 100),
	} {
		if !strings.Contains(svg, "<svg") {
			t.Error("empty series must still yield an SVG")
		}
	}
}

func TestSpiralNoOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	items := make([]SpiralItem, 40)
	for i := range items {
		// Power-law-ish values, the case [116] targets.
		items[i] = SpiralItem{
			Label: strings.Repeat("x", 1+i%5),
			Value: math.Pow(10, 4*rng.Float64()),
		}
	}
	ps := SpiralLayout{}.Layout(items)
	if len(ps) != len(items) {
		t.Fatalf("placed %d of %d", len(ps), len(items))
	}
	for i := range ps {
		for j := i + 1; j < len(ps); j++ {
			a, b := ps[i], ps[j]
			if math.Abs(a.X-b.X) < (a.Side+b.Side)/2 && math.Abs(a.Y-b.Y) < (a.Side+b.Side)/2 {
				t.Fatalf("overlap between %d and %d", i, j)
			}
		}
	}
}

func TestSpiralBiggestInCenter(t *testing.T) {
	items := []SpiralItem{
		{"small1", 1}, {"big", 100}, {"small2", 2}, {"mid", 50}, {"small3", 1.5},
	}
	ps := SpiralLayout{}.Layout(items)
	// The biggest value sits at the origin.
	if ps[0].Label != "big" || ps[0].X != 0 || ps[0].Y != 0 {
		t.Fatalf("center: %+v", ps[0])
	}
	// Distances from center weakly increase with placement order.
	dist := func(p Placed) float64 { return math.Hypot(p.X, p.Y) }
	for i := 2; i < len(ps); i++ {
		if dist(ps[i])+ps[i].Side/2+ps[i-1].Side/2 < dist(ps[i-1])-20 {
			t.Errorf("placement %d much closer than %d", i, i-1)
		}
	}
}

func TestSpiralAreaProportional(t *testing.T) {
	items := []SpiralItem{{"a", 100}, {"b", 25}}
	ps := SpiralLayout{}.Layout(items)
	// side ∝ sqrt(value): ratio of sides = sqrt(100/25) = 2.
	ratio := ps[0].Side / ps[1].Side
	if math.Abs(ratio-2) > 0.01 {
		t.Errorf("side ratio = %v, want 2", ratio)
	}
}

func TestSpiralDeterministic(t *testing.T) {
	items := []SpiralItem{{"a", 3}, {"b", 3}, {"c", 1}}
	a := SpiralLayout{}.Layout(items)
	b := SpiralLayout{}.Layout(items)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("layout not deterministic")
		}
	}
}

func TestSpiralQuickInvariants(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 30 {
			return true
		}
		items := make([]SpiralItem, len(raw))
		for i, r := range raw {
			items[i] = SpiralItem{Label: string(rune('a' + i%26)), Value: float64(r) + 1}
		}
		ps := SpiralLayout{}.Layout(items)
		if len(ps) != len(items) {
			return false
		}
		// Sorted descending by value.
		for i := 1; i < len(ps); i++ {
			if ps[i].Value > ps[i-1].Value {
				return false
			}
		}
		// No overlaps.
		for i := range ps {
			for j := i + 1; j < len(ps); j++ {
				if math.Abs(ps[i].X-ps[j].X) < (ps[i].Side+ps[j].Side)/2 &&
					math.Abs(ps[i].Y-ps[j].Y) < (ps[i].Side+ps[j].Side)/2 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSpiralSVG(t *testing.T) {
	ps := SpiralLayout{}.Layout([]SpiralItem{{"a", 10}, {"b", 5}})
	svg := SpiralSVG(ps, 4)
	if strings.Count(svg, "<rect") != 2 {
		t.Fatalf("rect count: %s", svg)
	}
}

func TestBuildCity(t *testing.T) {
	g := datagen.CountryStats()
	_ = g
	entities := []Entity3D{
		{Label: "USA", Features: map[string]float64{"cases": 103, "deaths": 1.1}},
		{Label: "Greece", Features: map[string]float64{"cases": 5.5, "deaths": 0.04}},
		{Label: "India", Features: map[string]float64{"cases": 44.7, "deaths": 0.53}},
	}
	scene := BuildCity(entities, CityConfig{})
	if len(scene.Buildings) != 3 {
		t.Fatalf("buildings = %d", len(scene.Buildings))
	}
	// Largest total first.
	if scene.Buildings[0].Label != "USA" {
		t.Errorf("first building = %s", scene.Buildings[0].Label)
	}
	// Heights proportional: USA's cases segment is the tallest overall.
	var usaCases, greeceCases float64
	for _, b := range scene.Buildings {
		for _, seg := range b.Segments {
			if seg.Feature == "cases" {
				if b.Label == "USA" {
					usaCases = seg.Height
				}
				if b.Label == "Greece" {
					greeceCases = seg.Height
				}
			}
		}
	}
	if usaCases <= greeceCases {
		t.Errorf("heights not proportional: USA %v vs Greece %v", usaCases, greeceCases)
	}
	ratio := usaCases / greeceCases
	if math.Abs(ratio-103/5.5) > 0.01 {
		t.Errorf("ratio = %v, want %v", ratio, 103/5.5)
	}
	// Segments stack: z offsets are cumulative.
	b := scene.Buildings[0]
	if len(b.Segments) != 2 || b.Segments[1].Z != b.Segments[0].Height {
		t.Errorf("segments do not stack: %+v", b.Segments)
	}
}

func TestSceneJSONAndSVG(t *testing.T) {
	scene := BuildCity([]Entity3D{
		{Label: "A", Features: map[string]float64{"f": 10}},
		{Label: "B", Features: map[string]float64{"f": 5}},
	}, CityConfig{})
	data, err := scene.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Scene
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Buildings) != 2 {
		t.Fatalf("json roundtrip: %d buildings", len(back.Buildings))
	}
	svg := scene.IsometricSVG(3)
	if !strings.Contains(svg, "<polygon") || !strings.Contains(svg, ">A<") {
		t.Errorf("svg missing boxes or labels:\n%s", svg[:200])
	}
}

func BenchmarkSpiralLayout(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	items := make([]SpiralItem, 200)
	for i := range items {
		items[i] = SpiralItem{Label: "v", Value: math.Pow(10, 3*rng.Float64())}
	}
	b.ResetTimer()
	for b.Loop() {
		SpiralLayout{}.Layout(items)
	}
}
