package viz

import (
	"fmt"
	"math"
	"strings"

	"rdfanalytics/internal/hifun"
)

// Series is chart-ready data: labeled numeric points.
type Series struct {
	Title  string
	Labels []string
	Values []float64
}

// AnswerSeries extracts a chart series from an answer: group labels (joined
// when multiple grouping columns exist) against the measureIdx-th measure.
func AnswerSeries(a *hifun.Answer, measureIdx int) (Series, error) {
	if measureIdx < 0 || measureIdx >= len(a.MeasureCols) {
		return Series{}, fmt.Errorf("viz: no measure column %d", measureIdx)
	}
	s := Series{Title: a.MeasureCols[measureIdx]}
	mi := len(a.GroupCols) + measureIdx
	for _, row := range a.Rows {
		var parts []string
		for i := range a.GroupCols {
			parts = append(parts, row[i].LocalName())
		}
		label := strings.Join(parts, " / ")
		if label == "" {
			label = s.Title
		}
		v, _ := row[mi].Float()
		s.Labels = append(s.Labels, label)
		s.Values = append(s.Values, v)
	}
	return s, nil
}

const svgHeader = `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif" font-size="11">` + "\n"

var palette = []string{
	"#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
	"#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
}

// BarChartSVG renders a horizontal bar chart of the series.
func BarChartSVG(s Series, width int) string {
	if width <= 0 {
		width = 640
	}
	rowH := 22
	labelW := 140
	height := rowH*len(s.Values) + 40
	maxV := 1e-9
	for _, v := range s.Values {
		maxV = math.Max(maxV, math.Abs(v))
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, svgHeader, width, height, width, height)
	fmt.Fprintf(&sb, `<text x="4" y="14" font-weight="bold">%s</text>`+"\n", escapeXML(s.Title))
	for i, v := range s.Values {
		y := 28 + i*rowH
		w := (float64(width-labelW-60) * math.Abs(v)) / maxV
		fmt.Fprintf(&sb, `<text x="%d" y="%d" text-anchor="end">%s</text>`+"\n",
			labelW-6, y+14, escapeXML(trim(s.Labels[i], 22)))
		fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="%.1f" height="%d" fill="%s"/>`+"\n",
			labelW, y, w, rowH-6, palette[i%len(palette)])
		fmt.Fprintf(&sb, `<text x="%.1f" y="%d">%s</text>`+"\n",
			float64(labelW)+w+4, y+14, formatNum(v))
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

// ColumnChartSVG renders a vertical column chart.
func ColumnChartSVG(s Series, width, height int) string {
	if width <= 0 {
		width = 640
	}
	if height <= 0 {
		height = 320
	}
	n := len(s.Values)
	if n == 0 {
		return fmt.Sprintf(svgHeader, width, height, width, height) + "</svg>\n"
	}
	maxV := 1e-9
	for _, v := range s.Values {
		maxV = math.Max(maxV, math.Abs(v))
	}
	plotH := height - 60
	colW := float64(width-40) / float64(n)
	var sb strings.Builder
	fmt.Fprintf(&sb, svgHeader, width, height, width, height)
	fmt.Fprintf(&sb, `<text x="4" y="14" font-weight="bold">%s</text>`+"\n", escapeXML(s.Title))
	for i, v := range s.Values {
		h := float64(plotH) * math.Abs(v) / maxV
		x := 20 + float64(i)*colW
		y := 20 + float64(plotH) - h
		fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
			x+2, y, colW-4, h, palette[i%len(palette)])
		fmt.Fprintf(&sb, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`+"\n",
			x+colW/2, height-24, escapeXML(trim(s.Labels[i], 10)))
		fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" text-anchor="middle">%s</text>`+"\n",
			x+colW/2, y-4, formatNum(v))
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

// PieChartSVG renders a pie chart (absolute values).
func PieChartSVG(s Series, size int) string {
	if size <= 0 {
		size = 360
	}
	total := 0.0
	for _, v := range s.Values {
		total += math.Abs(v)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, svgHeader, size, size, size, size)
	if total == 0 {
		sb.WriteString("</svg>\n")
		return sb.String()
	}
	cx, cy := float64(size)/2, float64(size)/2
	r := float64(size)/2 - 60
	angle := -math.Pi / 2
	for i, v := range s.Values {
		frac := math.Abs(v) / total
		a2 := angle + frac*2*math.Pi
		large := 0
		if frac > 0.5 {
			large = 1
		}
		x1, y1 := cx+r*math.Cos(angle), cy+r*math.Sin(angle)
		x2, y2 := cx+r*math.Cos(a2), cy+r*math.Sin(a2)
		if frac >= 0.999999 {
			fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s"/>`+"\n", cx, cy, r, palette[i%len(palette)])
		} else {
			fmt.Fprintf(&sb,
				`<path d="M%.1f,%.1f L%.1f,%.1f A%.1f,%.1f 0 %d 1 %.1f,%.1f Z" fill="%s"/>`+"\n",
				cx, cy, x1, y1, r, r, large, x2, y2, palette[i%len(palette)])
		}
		mid := (angle + a2) / 2
		lx, ly := cx+(r+26)*math.Cos(mid), cy+(r+26)*math.Sin(mid)
		fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" text-anchor="middle">%s (%s)</text>`+"\n",
			lx, ly, escapeXML(trim(s.Labels[i], 14)), formatNum(v))
		angle = a2
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

// LineChartSVG renders a line chart (labels along x in order).
func LineChartSVG(s Series, width, height int) string {
	if width <= 0 {
		width = 640
	}
	if height <= 0 {
		height = 320
	}
	n := len(s.Values)
	var sb strings.Builder
	fmt.Fprintf(&sb, svgHeader, width, height, width, height)
	fmt.Fprintf(&sb, `<text x="4" y="14" font-weight="bold">%s</text>`+"\n", escapeXML(s.Title))
	if n > 1 {
		maxV, minV := math.Inf(-1), math.Inf(1)
		for _, v := range s.Values {
			maxV = math.Max(maxV, v)
			minV = math.Min(minV, v)
		}
		if maxV == minV {
			maxV = minV + 1
		}
		plotH := float64(height - 70)
		dx := float64(width-50) / float64(n-1)
		var pts []string
		for i, v := range s.Values {
			x := 25 + float64(i)*dx
			y := 25 + plotH*(1-(v-minV)/(maxV-minV))
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", x, y))
			fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n", x, y, palette[0])
			fmt.Fprintf(&sb, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`+"\n",
				x, height-28, escapeXML(trim(s.Labels[i], 8)))
		}
		fmt.Fprintf(&sb, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			strings.Join(pts, " "), palette[0])
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

// SpiralSVG renders a spiral placement.
func SpiralSVG(ps []Placed, scale float64) string {
	if scale <= 0 {
		scale = 4
	}
	minX, minY, maxX, maxY := Bounds(ps)
	pad := 10.0
	w := int((maxX-minX)*scale + 2*pad)
	h := int((maxY-minY)*scale + 2*pad)
	if w < 10 {
		w = 10
	}
	if h < 10 {
		h = 10
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, svgHeader, w, h, w, h)
	for i, p := range ps {
		x := (p.X-minX-p.Side/2)*scale + pad
		y := (p.Y-minY-p.Side/2)*scale + pad
		side := p.Side * scale
		fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="#333"><title>%s: %s</title></rect>`+"\n",
			x, y, side, side, palette[i%len(palette)], escapeXML(p.Label), formatNum(p.Value))
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

func trim(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func formatNum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.2f", v)
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
