// Package viz implements the result-visualization substrate of the paper's
// Chapter 6: tabular rendering, 2D SVG charts (bar, column, pie, line) for
// the Answer Frame, the spiral placement algorithm of Tzitzikas, Papadaki &
// Chatzakis [116] ("a spiral-like method to place in the space too many
// values"), and the 3D "urban area" layout of §6.3 in which each entity is
// a multi-storey cube whose segments have volume proportional to feature
// values (rendered as a JSON scene and an isometric SVG projection).
package viz

import (
	"math"
	"sort"
)

// SpiralItem is one value to place.
type SpiralItem struct {
	Label string
	Value float64
}

// Placed is a placed square: center coordinates and side length.
type Placed struct {
	Label string
	Value float64
	X, Y  float64 // center
	Side  float64
	Ring  int // placement order (0 = center)
}

// SpiralLayout places values as squares on a spiral: the largest value sits
// at the center, successive values wind outward, and squares never overlap.
// Sides scale with sqrt(value) so area is proportional to value. The
// algorithm is linear-time in the number of placement probes and needs no
// global optimization — the properties [116] claims (big values evident,
// no empty periphery, bounded drawing) follow from the construction.
type SpiralLayout struct {
	// Gap is the minimum spacing between squares (default 1).
	Gap float64
	// Step is the angular probe step in radians (default 0.2).
	Step float64
	// MinSide clamps the smallest square (default 1).
	MinSide float64
	// MaxSide clamps the largest square (0 = derived from the largest value).
	MaxSide float64
}

// Layout computes the placement. Items are sorted by descending value; ties
// break by label for determinism.
func (cfg SpiralLayout) Layout(items []SpiralItem) []Placed {
	if len(items) == 0 {
		return nil
	}
	gap := cfg.Gap
	if gap <= 0 {
		gap = 1
	}
	step := cfg.Step
	if step <= 0 {
		step = 0.2
	}
	minSide := cfg.MinSide
	if minSide <= 0 {
		minSide = 1
	}
	sorted := append([]SpiralItem(nil), items...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Value != sorted[j].Value {
			return sorted[i].Value > sorted[j].Value
		}
		return sorted[i].Label < sorted[j].Label
	})
	maxVal := math.Max(sorted[0].Value, 1e-9)
	maxSide := cfg.MaxSide
	if maxSide <= 0 {
		maxSide = 40
	}
	side := func(v float64) float64 {
		if v < 0 {
			v = 0
		}
		s := math.Sqrt(v/maxVal) * maxSide
		if s < minSide {
			s = minSide
		}
		return s
	}
	var placed []Placed
	overlaps := func(x, y, s float64) bool {
		for _, p := range placed {
			if math.Abs(x-p.X) < (s+p.Side)/2+gap &&
				math.Abs(y-p.Y) < (s+p.Side)/2+gap {
				return true
			}
		}
		return false
	}
	theta := 0.0
	for i, it := range sorted {
		s := side(it.Value)
		if i == 0 {
			placed = append(placed, Placed{Label: it.Label, Value: it.Value, X: 0, Y: 0, Side: s, Ring: 0})
			continue
		}
		// Walk the Archimedean spiral r = a*theta until a free slot.
		a := (maxSide + gap) / (2 * math.Pi)
		for {
			theta += step
			r := a * theta
			x := r * math.Cos(theta)
			y := r * math.Sin(theta)
			if !overlaps(x, y, s) {
				placed = append(placed, Placed{Label: it.Label, Value: it.Value, X: x, Y: y, Side: s, Ring: i})
				break
			}
		}
	}
	return placed
}

// Bounds returns the bounding box (minX, minY, maxX, maxY) of a placement.
func Bounds(ps []Placed) (float64, float64, float64, float64) {
	if len(ps) == 0 {
		return 0, 0, 0, 0
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range ps {
		minX = math.Min(minX, p.X-p.Side/2)
		minY = math.Min(minY, p.Y-p.Side/2)
		maxX = math.Max(maxX, p.X+p.Side/2)
		maxY = math.Max(maxY, p.Y+p.Side/2)
	}
	return minX, minY, maxX, maxY
}
