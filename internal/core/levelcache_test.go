package core

import (
	"testing"

	"rdfanalytics/internal/facet"
	"rdfanalytics/internal/hifun"
)

// TestLevelCacheEvictionAccounting shrinks the per-level answer budget and
// runs more distinct analytics than fit: the LRU must evict under byte
// pressure (feeding the shared rdfa_cache_evictions_total counter), stay
// within budget, and still serve the most recent answer as a hit.
func TestLevelCacheEvictionAccounting(t *testing.T) {
	old := levelCacheBytes
	levelCacheBytes = 600 // a couple of small Answer Frames at most
	defer func() { levelCacheBytes = old }()

	s := productSession(t)
	s.ClickClass(pe("Laptop"))

	ops := []hifun.AggOp{hifun.OpCount, hifun.OpSum, hifun.OpAvg, hifun.OpMin, hifun.OpMax}
	evicted0 := answerEvicted.Value()
	for _, op := range ops {
		s.ClearAnalytics()
		s.ClickAggregate(MeasureSpec{Path: facet.Path{{P: pe("price")}}}, hifun.Operation{Op: op})
		if _, err := s.RunAnalytics(); err != nil {
			t.Fatal(err)
		}
	}
	l := s.top()
	if l.cache == nil {
		t.Fatal("level cache never built")
	}
	if d := answerEvicted.Value() - evicted0; d == 0 {
		t.Errorf("no evictions after %d distinct answers under a %dB budget (cache holds %dB in %d entries)",
			len(ops), levelCacheBytes, l.cache.Bytes(), l.cache.Len())
	}
	if l.cache.Bytes() > levelCacheBytes {
		t.Errorf("cache bytes %d exceed budget %d", l.cache.Bytes(), levelCacheBytes)
	}
	if got, want := l.cache.Len(), len(ops); got >= want {
		t.Errorf("cache holds %d entries, want fewer than the %d runs", got, want)
	}

	// The most recent answer survived and is a hit.
	hits0 := answerHits.Value()
	if _, err := s.RunAnalytics(); err != nil {
		t.Fatal(err)
	}
	if answerHits.Value() == hits0 {
		t.Error("most recent answer was not served from cache")
	}

	// Invalidation empties the cache (nil is a valid empty cache).
	s.InvalidateCache()
	if s.top().cache.Len() != 0 {
		t.Errorf("InvalidateCache left %d entries", s.top().cache.Len())
	}
	misses0 := answerMisses.Value()
	if _, err := s.RunAnalytics(); err != nil {
		t.Fatal(err)
	}
	if answerMisses.Value() == misses0 {
		t.Error("post-invalidation run did not recompute")
	}
}
