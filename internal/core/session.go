// Package core implements the paper's contribution: the interaction model
// that unifies Faceted Search and Analytics over RDF knowledge graphs
// (Chapter 5). A Session extends the base faceted-search state space
// (internal/facet) with the analytic actions of §5.1–§5.2 — the G (group-by)
// and Σ (aggregate) buttons next to each facet, range filters, transform
// (feature-creation) actions — interprets them as a HIFUN query (§5.2.2),
// translates it to SPARQL (Chapter 4) and materializes the Answer Frame.
// Answers can be reloaded as new datasets (§5.3.3), which yields HAVING
// restrictions and arbitrarily nested analytic queries (Example 4 of §5.1).
package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"rdfanalytics/internal/facet"
	"rdfanalytics/internal/hifun"
	"rdfanalytics/internal/obs"
	"rdfanalytics/internal/rdf"
	"rdfanalytics/internal/resilience"
	"rdfanalytics/internal/sparql"
)

// levelCacheBytes bounds each level's answer memoization: enough for
// hundreds of typical Answer Frames, small enough that MaxSessions
// concurrent sessions stay within a predictable memory envelope. A
// variable (not const) so tests can shrink it to force evictions.
var levelCacheBytes int64 = 8 << 20 // 8 MiB

// ensureCache lazily builds the level's bounded answer cache.
func (l *level) ensureCache() {
	if l.cache == nil {
		l.cache = resilience.NewSizedLRU[*hifun.Answer](levelCacheBytes,
			func(string, int64) { answerEvicted.Inc() })
	}
}

// answerBytes estimates an Answer Frame's resident size for the cache's
// byte accounting: string payloads plus per-term/per-row overhead.
func answerBytes(a *hifun.Answer) int64 {
	n := int64(len(a.SPARQL)) + 128
	for _, c := range a.GroupCols {
		n += int64(len(c)) + 16
	}
	for _, c := range a.MeasureCols {
		n += int64(len(c)) + 16
	}
	for _, row := range a.Rows {
		n += 24
		for _, t := range row {
			n += int64(len(t.Value)+len(t.Datatype)+len(t.Lang)) + 48
		}
	}
	return n
}

// GroupSpec is one grouping condition selected with the G button: a facet
// path, optionally wrapped by a derived function (the transform button used
// to decompose dates into year/month/..., §5.1 "Special cases").
type GroupSpec struct {
	Path facet.Path
	// Derive, when non-empty, is a derived-attribute function (YEAR, MONTH,
	// DAY, ...) applied to the path's value.
	Derive string
}

func (g GroupSpec) String() string {
	if g.Derive != "" {
		return strings.ToLower(g.Derive) + "(" + g.Path.String() + ")"
	}
	return g.Path.String()
}

// MeasureSpec is the measure selected with the Σ button.
type MeasureSpec struct {
	Path   facet.Path
	Derive string
}

func (m MeasureSpec) String() string {
	if len(m.Path) == 0 {
		return "ID"
	}
	if m.Derive != "" {
		return strings.ToLower(m.Derive) + "(" + m.Path.String() + ")"
	}
	return m.Path.String()
}

// Analytics is the analytic part of a state: what the G and Σ buttons have
// accumulated. Per §5.2.2, these actions change the intention but leave the
// extension and the transitions untouched.
type Analytics struct {
	GroupBy []GroupSpec
	Measure MeasureSpec
	Ops     []hifun.Operation
}

// Active reports whether any analytic action has been taken.
func (a Analytics) Active() bool {
	return len(a.GroupBy) > 0 || len(a.Ops) > 0 || len(a.Measure.Path) > 0
}

// level is one dataset level of the session; reloading an answer as a new
// dataset (§5.3.3) pushes a level, enabling nested analytics.
type level struct {
	model     *facet.Model
	ns        string
	history   []*facet.State // history[len-1] is current
	analytics Analytics
	// answer holds the last Answer Frame computed at this level.
	answer *hifun.Answer
	// cache memoizes answers by (intention, HIFUN query): repeated runs of
	// the same analytic state (e.g. switching chart types in the GUI) skip
	// re-evaluation. Bounded by byte-size accounting (levelCacheBytes) with
	// LRU eviction — a long-lived session cannot grow it without limit —
	// and invalidated whenever the level's graph mutates. A nil cache is
	// valid and empty (see resilience.SizedLRU).
	cache *resilience.SizedLRU[*hifun.Answer]
	// log records the replayable click sequence for snapshots.
	log actionLog
	// cubes retains recent decomposable answers for roll-up reuse.
	cubes []cubeEntry
}

func (l *level) state() *facet.State { return l.history[len(l.history)-1] }

// Session is an interactive faceted-analytics session over a graph: the
// full state of the GUI in Fig 5.1.
type Session struct {
	levels []*level
	// lastTrace is the span tree of the most recent RunAnalytics, serving
	// GET /api/trace and the CLI's `trace` command.
	lastTrace *obs.Trace
	// lastProfile is the operator-level runtime profile of the most recent
	// RunAnalytics (empty below the root for cache and cube-rollup hits,
	// which never touch the engine).
	lastProfile *sparql.Profile
	// limits are the resource budgets applied to every analytic query the
	// session runs (see sparql.Limits). Zero values mean engine defaults.
	limits sparql.Limits
	// feedback, when non-nil, is the planner feedback store shared with the
	// owner of the session (e.g. the HTTP server): every analytic query
	// plans with — and reports actuals back to — the same store, so
	// repeated analytic shapes converge on true cardinalities.
	feedback *sparql.FeedbackStore
	// durability, when non-nil, is the group-commit barrier of the durable
	// store backing the session's graph: mutating operations call it before
	// reporting success, so an acknowledged mutation is on disk.
	durability func() error
	// traceSink, when non-nil, receives every completed RunAnalytics trace
	// so the owner can retain it beyond last-trace-only (the server offers
	// these to its tail-sampling trace store).
	traceSink func(TraceEvent)
}

// TraceEvent describes one completed analytic run, delivered to the
// session's trace sink after the trace is finished. The sink runs on the
// calling goroutine and must not call back into the session.
type TraceEvent struct {
	Trace   *obs.Trace
	Profile *sparql.Profile
	// HIFUN is the analytic query text ("" when query building failed).
	HIFUN string
	// SPARQL is the generated SPARQL ("" for cache/cube hits and errors).
	SPARQL string
	Rows   int
	// Source is how the answer was produced: "cache", "cube_rollup",
	// "query", or "" when the run failed before an answer source was chosen.
	Source    string
	Duration  time.Duration
	Err       error
	RequestID string
}

// SetTraceSink installs the completed-trace hook (nil disables it).
func (s *Session) SetTraceSink(sink func(TraceEvent)) { s.traceSink = sink }

// SetDurability installs the store sync barrier called after mutating
// operations (e.g. ApplyTransform). Pass nil when the session's graph is
// purely in-memory.
func (s *Session) SetDurability(sync func() error) { s.durability = sync }

// SetLimits installs the resource budgets applied to the session's analytic
// queries. Pass the zero value to restore engine defaults.
func (s *Session) SetLimits(l sparql.Limits) { s.limits = l }

// Limits returns the session's current resource budgets.
func (s *Session) Limits() sparql.Limits { return s.limits }

// SetFeedback installs the planner feedback store used by the session's
// analytic queries. Pass nil to disable feedback-driven planning.
func (s *Session) SetFeedback(fb *sparql.FeedbackStore) { s.feedback = fb }

// LastTrace returns the trace of the most recent RunAnalytics call, or nil
// when no analytic query has run yet.
func (s *Session) LastTrace() *obs.Trace { return s.lastTrace }

// LastProfile returns the operator profile of the most recent RunAnalytics
// (or ProfileAnalytics) call, or nil when no analytic query has run yet.
func (s *Session) LastProfile() *sparql.Profile { return s.lastProfile }

// NewSession starts a session over g (which should be materialized) with
// attribute namespace ns. The initial state is s0 (§5.3.2).
func NewSession(g *rdf.Graph, ns string) *Session {
	m := facet.NewModel(g)
	return &Session{levels: []*level{{
		model:   m,
		ns:      ns,
		history: []*facet.State{m.Start()},
	}}}
}

// NewSessionFrom starts a session whose initial extension is an external
// result set (keyword search hand-off, §5.4.1).
func NewSessionFrom(g *rdf.Graph, ns string, results []rdf.Term) *Session {
	m := facet.NewModel(g)
	return &Session{levels: []*level{{
		model:   m,
		ns:      ns,
		history: []*facet.State{m.StartFrom(results)},
	}}}
}

func (s *Session) top() *level { return s.levels[len(s.levels)-1] }

// Model exposes the current level's facet model (read-only use).
func (s *Session) Model() *facet.Model { return s.top().model }

// State returns the current interaction state.
func (s *Session) State() *facet.State { return s.top().state() }

// Analytics returns the current analytic selections.
func (s *Session) Analytics() Analytics { return s.top().analytics }

// Depth returns the nesting depth (1 = original dataset).
func (s *Session) Depth() int { return len(s.levels) }

// NS returns the current level's attribute namespace.
func (s *Session) NS() string { return s.top().ns }

func (s *Session) push(st *facet.State) {
	l := s.top()
	l.history = append(l.history, st)
}

// ClickClass applies a class-based transition (Fig 5.4 a–b).
func (s *Session) ClickClass(c rdf.Term) {
	l := s.top()
	s.push(l.model.ClickClass(l.state(), c))
	l.log.actions = append(l.log.actions, actionJSON{Kind: "class", Class: c.Value})
}

// ClickValue applies a property-value transition, possibly at the end of an
// expanded path (Fig 5.4 c–d, Fig 5.5).
func (s *Session) ClickValue(path facet.Path, v rdf.Term) {
	l := s.top()
	s.push(l.model.ClickValue(l.state(), path, v))
	vj := termToJSON(v)
	l.log.actions = append(l.log.actions, actionJSON{Kind: "value", Path: pathToJSON(path), Value: &vj})
}

// ClickValueSet applies a multi-value transition.
func (s *Session) ClickValueSet(path facet.Path, vs []rdf.Term) {
	l := s.top()
	s.push(l.model.ClickValueSet(l.state(), path, vs))
	a := actionJSON{Kind: "valueset", Path: pathToJSON(path)}
	for _, v := range vs {
		a.Values = append(a.Values, termToJSON(v))
	}
	l.log.actions = append(l.log.actions, a)
}

// ClickRange applies the range-filter button (Example 3 of §5.1).
func (s *Session) ClickRange(path facet.Path, op string, v rdf.Term) {
	l := s.top()
	s.push(l.model.ClickRange(l.state(), path, op, v))
	vj := termToJSON(v)
	l.log.actions = append(l.log.actions, actionJSON{Kind: "range", Path: pathToJSON(path), Op: op, Value: &vj})
}

// SwitchFocus pivots the focus along a property, changing the entity type
// under analysis (e.g. from laptops to their manufacturers). The analytic
// selections are cleared: they referred to the previous entity type.
func (s *Session) SwitchFocus(step facet.PathStep) {
	l := s.top()
	s.push(l.model.SwitchFocus(l.state(), step))
	l.analytics = Analytics{}
	l.log.actions = append(l.log.actions, actionJSON{Kind: "pivot", Path: pathToJSON(facet.Path{step})})
}

// ClickGroupBy toggles the G button on a facet path: clicking an already
// selected path removes it (the "remove some of them" dialog of §5.1).
func (s *Session) ClickGroupBy(spec GroupSpec) {
	l := s.top()
	for i, g := range l.analytics.GroupBy {
		if g.Path.Equal(spec.Path) && g.Derive == spec.Derive {
			l.analytics.GroupBy = append(l.analytics.GroupBy[:i], l.analytics.GroupBy[i+1:]...)
			return
		}
	}
	l.analytics.GroupBy = append(l.analytics.GroupBy, spec)
}

// ClickAggregate sets the measure (Σ button on a facet) and adds the chosen
// operation; clicking an operation already present removes it.
func (s *Session) ClickAggregate(measure MeasureSpec, op hifun.Operation) {
	l := s.top()
	if !samePath(l.analytics.Measure, measure) {
		l.analytics.Measure = measure
		l.analytics.Ops = nil
	}
	for i, o := range l.analytics.Ops {
		if o.Op == op.Op && o.RestrictOp == op.RestrictOp && o.RestrictValue == op.RestrictValue {
			l.analytics.Ops = append(l.analytics.Ops[:i], l.analytics.Ops[i+1:]...)
			return
		}
	}
	l.analytics.Ops = append(l.analytics.Ops, op)
}

func samePath(a, b MeasureSpec) bool {
	return a.Path.Equal(b.Path) && a.Derive == b.Derive
}

// ClearAnalytics resets the G/Σ selections at the current level.
func (s *Session) ClearAnalytics() {
	s.top().analytics = Analytics{}
}

// Back undoes the last faceted transition at the current level.
func (s *Session) Back() error {
	l := s.top()
	if len(l.history) <= 1 {
		return errors.New("core: at initial state")
	}
	l.history = l.history[:len(l.history)-1]
	if n := len(l.log.actions); n > 0 {
		l.log.actions = l.log.actions[:n-1]
	}
	return nil
}

// Reset returns the current level to its initial state and clears analytics.
func (s *Session) Reset() {
	l := s.top()
	l.history = l.history[:1]
	l.analytics = Analytics{}
	l.answer = nil
	l.log.actions = nil
}

// BuildHIFUNQuery assembles the HIFUN query the current analytic state
// denotes (§5.2.2): the grouping expression is the pairing of the G-selected
// paths (each a composition), the measure is the Σ-selected path (or ID),
// and the current extension becomes the context (via the intention).
func (s *Session) BuildHIFUNQuery() (*hifun.Query, error) {
	l := s.top()
	a := l.analytics
	if len(a.Ops) == 0 {
		return nil, errors.New("core: no aggregate operation selected (Σ button)")
	}
	q := &hifun.Query{}
	// Grouping: pairing of compositions.
	var groupAttrs []hifun.Attr
	for _, g := range a.GroupBy {
		attr, err := pathToAttr(g.Path, g.Derive)
		if err != nil {
			return nil, err
		}
		groupAttrs = append(groupAttrs, attr)
	}
	switch len(groupAttrs) {
	case 0:
		q.Grouping = nil // ε: aggregate over the whole extension (Example 1)
	case 1:
		q.Grouping = groupAttrs[0]
	default:
		q.Grouping = hifun.Pair{Items: groupAttrs}
	}
	// Measure.
	if len(a.Measure.Path) == 0 {
		q.Measuring = hifun.Ident{}
	} else {
		attr, err := pathToAttr(a.Measure.Path, a.Measure.Derive)
		if err != nil {
			return nil, err
		}
		q.Measuring = attr
	}
	q.Ops = append(q.Ops, a.Ops...)
	return q, nil
}

// pathToAttr converts a facet path p1/.../pk into the HIFUN composition
// pk ∘ ... ∘ p1, optionally wrapped in a derived function.
func pathToAttr(p facet.Path, derive string) (hifun.Attr, error) {
	if len(p) == 0 {
		return nil, errors.New("core: empty facet path")
	}
	var attr hifun.Attr
	for i, step := range p {
		prop := hifun.Prop{Name: step.P.Value, Inverse: step.Inverse}
		if i == 0 {
			attr = prop
		} else {
			attr = hifun.Comp{Outer: prop, Inner: attr}
		}
	}
	if derive != "" {
		if !hifun.IsDerivedFunc(derive) {
			return nil, fmt.Errorf("core: unsupported derived function %q", derive)
		}
		attr = hifun.Derived{Func: strings.ToUpper(derive), Sub: attr}
	}
	return attr, nil
}

// Context returns the HIFUN analysis context of the current state: the
// graph with the intention injected as extra patterns, so the analytic query
// ranges exactly over ctx.Ext (§5.2.2).
func (s *Session) Context() *hifun.Context {
	l := s.top()
	ctx := hifun.NewContext(l.model.G, l.ns)
	ctx.Limits = s.limits
	ctx.Feedback = s.feedback
	patterns := l.state().Int.Patterns(hifun.RootVar)
	if strings.TrimSpace(patterns) != "" {
		// Wrap in a subquery so the extension contributes each entity once,
		// regardless of how many bindings satisfy the intention patterns.
		sub := "{ SELECT DISTINCT " + hifun.RootVar + " WHERE {\n" + patterns + "} }"
		ctx.ExtraPatterns = append(ctx.ExtraPatterns, sub)
	}
	return ctx
}

// RunAnalytics builds, translates and executes the current analytic query,
// storing and returning the Answer Frame. Identical (state, query) pairs
// are served from a per-level cache until the graph mutates.
func (s *Session) RunAnalytics() (*hifun.Answer, error) {
	return s.RunAnalyticsCtx(context.Background())
}

// RunAnalyticsCtx is RunAnalytics honoring ctx: the HIFUN translation and
// the generated SPARQL evaluation observe ctx's deadline/cancellation and
// the session's Limits. Cache and cube-rollup hits are unaffected (they
// never touch the engine).
func (s *Session) RunAnalyticsCtx(qctx context.Context) (ans *hifun.Answer, err error) {
	start := time.Now()
	defer func() { runSeconds.Observe(time.Since(start).Seconds()) }()
	tr := obs.NewTrace("run_analytics")
	// Adopt the IDs the HTTP layer minted, so the retained trace matches
	// the X-Trace-ID / X-Request-ID the client saw.
	tr.SetID(obs.TraceIDFrom(qctx))
	reqID := obs.RequestIDFrom(qctx)
	if reqID != "" {
		tr.Root().SetAttr("request_id", reqID)
	}
	s.lastTrace = tr
	prof := sparql.NewProfile("run_analytics")
	prof.SetTraceID(tr.ID())
	s.lastProfile = prof
	var q *hifun.Query
	source := ""
	defer func() {
		tr.Finish()
		if s.traceSink == nil {
			return
		}
		ev := TraceEvent{
			Trace:     tr,
			Profile:   prof,
			Source:    source,
			Duration:  time.Since(start),
			Err:       err,
			RequestID: reqID,
		}
		if q != nil {
			ev.HIFUN = q.String()
		}
		if ans != nil {
			ev.SPARQL = ans.SPARQL
			ev.Rows = len(ans.Rows)
		}
		s.traceSink(ev)
	}()

	bq := tr.Root().StartChild("build_query")
	q, err = s.BuildHIFUNQuery()
	bq.Finish()
	if err != nil {
		return nil, err
	}
	bq.SetAttr("hifun", q.String())
	l := s.top()
	intentionKey := l.state().Int.String()
	key := intentionKey + "\x00" + q.String()
	if cached, ok := l.cache.Get(key); ok {
		answerHits.Inc()
		source = "cache"
		tr.Root().SetAttr("answer_source", source)
		prof.Record(time.Since(start), 1, len(cached.Rows))
		l.answer = cached
		return cached, nil
	}
	// Materialized-cube reuse: a coarser grouping of a cached cube rolls up
	// in memory instead of re-querying (see cube.go).
	if rolled := l.tryCubeReuse(intentionKey, l.analytics); rolled != nil {
		answerCubes.Inc()
		source = "cube_rollup"
		tr.Root().SetAttr("answer_source", source)
		prof.Record(time.Since(start), 1, len(rolled.Rows))
		l.ensureCache()
		l.cache.Put(key, rolled, answerBytes(rolled))
		l.answer = rolled
		return rolled, nil
	}
	answerMisses.Inc()
	source = "query"
	tr.Root().SetAttr("answer_source", source)
	ctx := s.Context()
	ctx.Trace = tr
	ctx.Profile = prof
	ans, err = ctx.ExecuteCtx(qctx, q)
	if err != nil {
		return nil, err
	}
	prof.Record(time.Since(start), 1, len(ans.Rows))
	l.ensureCache()
	l.cache.Put(key, ans, answerBytes(ans))
	l.rememberCube(intentionKey, l.analytics, ans)
	l.answer = ans
	return ans, nil
}

// ProfileAnalytics executes the current analytic query bypassing the answer
// cache and the cube roll-up, so the returned operator profile reflects a
// real end-to-end evaluation (EXPLAIN ANALYZE for the analytics pipeline —
// the CLI's `profile` command). The computed answer is not cached: repeated
// profiling keeps measuring the engine, and a later RunAnalytics still
// benefits from its own memoization.
func (s *Session) ProfileAnalytics(qctx context.Context) (*hifun.Answer, *sparql.Profile, error) {
	q, err := s.BuildHIFUNQuery()
	if err != nil {
		return nil, nil, err
	}
	start := time.Now()
	prof := sparql.NewProfile("run_analytics")
	ctx := s.Context()
	ctx.Profile = prof
	ans, err := ctx.ExecuteCtx(qctx, q)
	if err != nil {
		return nil, nil, err
	}
	prof.Record(time.Since(start), 1, len(ans.Rows))
	s.lastProfile = prof
	s.top().answer = ans
	return ans, prof, nil
}

// InvalidateCache drops memoized answers and cubes at every level; call
// after any out-of-band mutation of the underlying graph (e.g. a SPARQL
// update).
func (s *Session) InvalidateCache() {
	for _, l := range s.levels {
		l.cache = nil
		l.cubes = nil
	}
}

// InvalidateExactCache drops only the exact-answer memoization, keeping the
// materialized cubes. Benchmarks and diagnostics use it to exercise the
// cube roll-up path repeatedly.
func (s *Session) InvalidateExactCache() {
	for _, l := range s.levels {
		l.cache = nil
	}
}

// Answer returns the last computed Answer Frame at the current level.
func (s *Session) Answer() *hifun.Answer { return s.top().answer }

// LoadAnswerAsDataset implements the "Explore with FS" button (§5.3.3 /
// Fig 5.2): the current answer becomes a new dataset and the session
// descends into it; subsequent restrictions act as HAVING clauses over the
// original data. The new level starts at the tuple class.
func (s *Session) LoadAnswerAsDataset() error {
	l := s.top()
	if l.answer == nil {
		return errors.New("core: no answer to load (run an analytic query first)")
	}
	defer observeSince(reloadSeconds, time.Now())
	g := l.answer.LoadAsDataset()
	m := facet.NewModel(g)
	start := m.ClickClass(m.Start(), rdf.NewIRI(hifun.AnswerNS+"Tuple"))
	s.levels = append(s.levels, &level{
		model:   m,
		ns:      hifun.AnswerNS,
		history: []*facet.State{start},
	})
	return nil
}

// CloseLevel pops the top dataset level, returning to the outer dataset.
func (s *Session) CloseLevel() error {
	if len(s.levels) <= 1 {
		return errors.New("core: at the base dataset")
	}
	s.levels = s.levels[:len(s.levels)-1]
	return nil
}

// ApplyTransform materializes a feature-creation operator on the current
// extension (the transform button of §5.1 "Special cases"), making
// non-functional properties usable as HIFUN attributes.
func (s *Session) ApplyTransform(spec hifun.FeatureSpec) (int, error) {
	l := s.top()
	s.InvalidateCache()
	n, err := hifun.ApplyFeature(l.model.G, l.state().Ext.Items(), spec)
	if err == nil && s.durability != nil {
		// Group commit: the materialized triples were journaled as they
		// were added; make them durable before acknowledging the count.
		if serr := s.durability(); serr != nil {
			return n, fmt.Errorf("core: transform applied but not durable: %w", serr)
		}
	}
	return n, err
}
