package core

import (
	"strings"
	"testing"

	"rdfanalytics/internal/datagen"
	"rdfanalytics/internal/facet"
	"rdfanalytics/internal/hifun"
	"rdfanalytics/internal/rdf"
)

func ie(l string) rdf.Term { return rdf.NewIRI(datagen.InvoicesNS + l) }

func invoiceSession(t testing.TB) *Session {
	t.Helper()
	g := datagen.SmallInvoices()
	rdf.Materialize(g)
	s := NewSession(g, datagen.InvoicesNS)
	s.ClickClass(ie("Invoice"))
	return s
}

// TestRollUpDrillDown reproduces Fig 7.2: totals by (branch, product) roll
// up to totals by branch; drilling down restores the finer cube.
func TestRollUpDrillDown(t *testing.T) {
	s := invoiceSession(t)
	s.ClickGroupBy(GroupSpec{Path: facet.Path{{P: ie("takesPlaceAt")}}})
	s.ClickGroupBy(GroupSpec{Path: facet.Path{{P: ie("delivers")}}})
	s.ClickAggregate(MeasureSpec{Path: facet.Path{{P: ie("inQuantity")}}}, hifun.Operation{Op: hifun.OpSum})
	fine, err := s.RunAnalytics()
	if err != nil {
		t.Fatal(err)
	}
	if len(fine.Rows) != 6 {
		t.Fatalf("fine cube rows = %d\n%s", len(fine.Rows), fine)
	}
	// Roll up: drop the product dimension.
	coarse, err := s.RollUp(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(coarse.Rows) != 3 {
		t.Fatalf("rolled-up rows = %d\n%s", len(coarse.Rows), coarse)
	}
	// Invariant: the rolled-up totals equal the sums of the fine cells.
	fromFine := map[rdf.Term]int64{}
	for _, row := range fine.Rows {
		n, _ := row[2].Int()
		fromFine[row[0]] += n
	}
	for _, row := range coarse.Rows {
		n, _ := row[1].Int()
		if n != fromFine[row[0]] {
			t.Errorf("roll-up mismatch for %v: %d vs %d", row[0], n, fromFine[row[0]])
		}
	}
	// Drill down again.
	fine2, err := s.DrillDown(GroupSpec{Path: facet.Path{{P: ie("delivers")}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(fine2.Rows) != len(fine.Rows) {
		t.Fatalf("drill-down rows = %d, want %d", len(fine2.Rows), len(fine.Rows))
	}
}

// TestRollUpPath climbs a dimension hierarchy: grouping by brand∘delivers
// rolls up from grouping by delivers.
func TestRollUpPath(t *testing.T) {
	s := invoiceSession(t)
	s.ClickGroupBy(GroupSpec{Path: facet.Path{{P: ie("delivers")}, {P: ie("brand")}}})
	s.ClickAggregate(MeasureSpec{Path: facet.Path{{P: ie("inQuantity")}}}, hifun.Operation{Op: hifun.OpSum})
	byBrand, err := s.RunAnalytics()
	if err != nil {
		t.Fatal(err)
	}
	if len(byBrand.Rows) != 2 { // CocaCola, PepsiCo
		t.Fatalf("brands:\n%s", byBrand)
	}
	// RollUpPath shortens delivers/brand to delivers (finer actually —
	// climbing means dropping the tail; here the tail IS the coarser level,
	// so shortening moves to products).
	byProduct, err := s.RollUpPath(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(byProduct.Rows) != 3 { // CocaLight, PepsiMax, Fanta
		t.Fatalf("products:\n%s", byProduct)
	}
	// Error cases.
	if _, err := s.RollUpPath(5); err == nil {
		t.Error("bad index accepted")
	}
	if _, err := s.RollUpPath(0); err == nil {
		t.Error("single-hop path must not roll up")
	}
}

func TestSlice(t *testing.T) {
	s := invoiceSession(t)
	s.ClickGroupBy(GroupSpec{Path: facet.Path{{P: ie("takesPlaceAt")}}})
	s.ClickGroupBy(GroupSpec{Path: facet.Path{{P: ie("delivers")}}})
	s.ClickAggregate(MeasureSpec{Path: facet.Path{{P: ie("inQuantity")}}}, hifun.Operation{Op: hifun.OpSum})
	if _, err := s.RunAnalytics(); err != nil {
		t.Fatal(err)
	}
	// Slice on branch = branch3: product totals within branch3.
	ans, err := s.Slice(facet.Path{{P: ie("takesPlaceAt")}}, ie("branch3"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.GroupCols) != 1 {
		t.Fatalf("slice did not drop the dimension: %v", ans.GroupCols)
	}
	want := map[string]int64{"Fanta": 100, "CocaLight": 400, "PepsiMax": 100}
	if len(ans.Rows) != 3 {
		t.Fatalf("rows:\n%s", ans)
	}
	for _, row := range ans.Rows {
		if n, _ := row[1].Int(); n != want[row[0].LocalName()] {
			t.Errorf("%s = %d", row[0].LocalName(), n)
		}
	}
}

func TestDice(t *testing.T) {
	s := invoiceSession(t)
	s.ClickGroupBy(GroupSpec{Path: facet.Path{{P: ie("takesPlaceAt")}}})
	s.ClickAggregate(MeasureSpec{Path: facet.Path{{P: ie("inQuantity")}}}, hifun.Operation{Op: hifun.OpSum})
	ans, err := s.Dice(facet.Path{{P: ie("takesPlaceAt")}}, []rdf.Term{ie("branch1"), ie("branch2")})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Rows) != 2 {
		t.Fatalf("dice rows:\n%s", ans)
	}
	want := map[string]int64{"branch1": 300, "branch2": 600}
	for _, row := range ans.Rows {
		if n, _ := row[1].Int(); n != want[row[0].LocalName()] {
			t.Errorf("%s = %d", row[0].LocalName(), n)
		}
	}
}

func TestPivot(t *testing.T) {
	s := invoiceSession(t)
	s.ClickGroupBy(GroupSpec{Path: facet.Path{{P: ie("takesPlaceAt")}}})
	s.ClickGroupBy(GroupSpec{Path: facet.Path{{P: ie("delivers")}, {P: ie("brand")}}})
	s.ClickAggregate(MeasureSpec{Path: facet.Path{{P: ie("inQuantity")}}}, hifun.Operation{Op: hifun.OpSum})
	ans, err := s.RunAnalytics()
	if err != nil {
		t.Fatal(err)
	}
	pt, err := Pivot(ans, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pt.Rows) != 3 || len(pt.Cols) != 2 {
		t.Fatalf("pivot shape %dx%d\n%s", len(pt.Rows), len(pt.Cols), pt)
	}
	// branch2 delivered only CocaCola products: its PepsiCo cell is empty.
	findRow := func(local string) int {
		for i, r := range pt.Rows {
			if r.LocalName() == local {
				return i
			}
		}
		return -1
	}
	findCol := func(local string) int {
		for j, c := range pt.Cols {
			if c.LocalName() == local {
				return j
			}
		}
		return -1
	}
	b2, pep, coca := findRow("branch2"), findCol("PepsiCo"), findCol("CocaCola")
	if b2 < 0 || pep < 0 || coca < 0 {
		t.Fatalf("pivot labels: %v / %v", pt.Rows, pt.Cols)
	}
	if !pt.Cells[b2][pep].IsZero() {
		t.Errorf("branch2/PepsiCo should be empty, got %v", pt.Cells[b2][pep])
	}
	if n, _ := pt.Cells[b2][coca].Int(); n != 600 {
		t.Errorf("branch2/CocaCola = %v", pt.Cells[b2][coca])
	}
	// Swapped pivot transposes.
	pt2, err := Pivot(ans, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pt2.Rows) != 2 || len(pt2.Cols) != 3 {
		t.Fatalf("swapped shape %dx%d", len(pt2.Rows), len(pt2.Cols))
	}
	if !strings.Contains(pt.String(), "branch2") {
		t.Error("pivot rendering broken")
	}
}

func TestPivotErrors(t *testing.T) {
	s := invoiceSession(t)
	s.ClickGroupBy(GroupSpec{Path: facet.Path{{P: ie("takesPlaceAt")}}})
	s.ClickAggregate(MeasureSpec{Path: facet.Path{{P: ie("inQuantity")}}}, hifun.Operation{Op: hifun.OpSum})
	ans, err := s.RunAnalytics()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Pivot(ans, false, 0); err == nil {
		t.Error("1-dim pivot accepted")
	}
	s.ClickGroupBy(GroupSpec{Path: facet.Path{{P: ie("delivers")}}})
	ans, _ = s.RunAnalytics()
	if _, err := Pivot(ans, false, 7); err == nil {
		t.Error("bad measure index accepted")
	}
}

// TestHavingViaResultRestriction checks the direct HAVING route (without
// reloading): a result restriction on the operation.
func TestHavingViaResultRestriction(t *testing.T) {
	s := invoiceSession(t)
	s.ClickGroupBy(GroupSpec{Path: facet.Path{{P: ie("takesPlaceAt")}}})
	s.ClickAggregate(MeasureSpec{Path: facet.Path{{P: ie("inQuantity")}}},
		hifun.Operation{Op: hifun.OpSum, RestrictOp: ">", RestrictValue: rdf.NewInteger(300)})
	ans, err := s.RunAnalytics()
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Rows) != 2 {
		t.Fatalf("HAVING rows:\n%s", ans)
	}
}
