package core

import (
	"strings"
	"testing"

	"rdfanalytics/internal/facet"
	"rdfanalytics/internal/hifun"
	"rdfanalytics/internal/rdf"
)

// TestCubeReuseRollUp: after computing SUM by (branch, product), asking for
// SUM by (branch) is served from the cached cube — and equals a fresh
// evaluation.
func TestCubeReuseRollUp(t *testing.T) {
	s := invoiceSession(t)
	s.ClickGroupBy(GroupSpec{Path: facet.Path{{P: ie("takesPlaceAt")}}})
	s.ClickGroupBy(GroupSpec{Path: facet.Path{{P: ie("delivers")}}})
	s.ClickAggregate(MeasureSpec{Path: facet.Path{{P: ie("inQuantity")}}}, hifun.Operation{Op: hifun.OpSum})
	if _, err := s.RunAnalytics(); err != nil {
		t.Fatal(err)
	}
	// Coarsen the grouping: remove the product dimension.
	s.ClickGroupBy(GroupSpec{Path: facet.Path{{P: ie("delivers")}}}) // toggle off
	rolled, err := s.RunAnalytics()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rolled.SPARQL, "materialized cube") {
		t.Fatalf("answer not served from cube:\n%s", rolled.SPARQL)
	}
	want := map[string]int64{"branch1": 300, "branch2": 600, "branch3": 600}
	if len(rolled.Rows) != 3 {
		t.Fatalf("rows:\n%s", rolled)
	}
	for _, row := range rolled.Rows {
		if n, _ := row[1].Int(); n != want[row[0].LocalName()] {
			t.Errorf("%s = %d (cube roll-up wrong)", row[0].LocalName(), n)
		}
	}
}

// TestCubeReuseMinMaxCount: the other decomposable aggregates also roll up
// correctly from cubes.
func TestCubeReuseMinMaxCount(t *testing.T) {
	for _, op := range []hifun.AggOp{hifun.OpMin, hifun.OpMax, hifun.OpCount} {
		s := invoiceSession(t)
		s.ClickGroupBy(GroupSpec{Path: facet.Path{{P: ie("takesPlaceAt")}}})
		s.ClickGroupBy(GroupSpec{Path: facet.Path{{P: ie("delivers")}}})
		meas := MeasureSpec{Path: facet.Path{{P: ie("inQuantity")}}}
		if op == hifun.OpCount {
			meas = MeasureSpec{}
		}
		s.ClickAggregate(meas, hifun.Operation{Op: op})
		if _, err := s.RunAnalytics(); err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		s.ClickGroupBy(GroupSpec{Path: facet.Path{{P: ie("delivers")}}})
		rolled, err := s.RunAnalytics()
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		if !strings.Contains(rolled.SPARQL, "materialized cube") {
			t.Fatalf("%s: not served from cube", op)
		}
		// Fresh evaluation agrees.
		fresh := invoiceSession(t)
		fresh.ClickGroupBy(GroupSpec{Path: facet.Path{{P: ie("takesPlaceAt")}}})
		fresh.ClickAggregate(meas, hifun.Operation{Op: op})
		direct, err := fresh.RunAnalytics()
		if err != nil {
			t.Fatal(err)
		}
		if len(direct.Rows) != len(rolled.Rows) {
			t.Fatalf("%s: %d vs %d rows", op, len(rolled.Rows), len(direct.Rows))
		}
		for i := range direct.Rows {
			dv, _ := direct.Rows[i][1].Float()
			rv, _ := rolled.Rows[i][1].Float()
			if dv != rv {
				t.Errorf("%s row %d: cube %v vs direct %v", op, i, rv, dv)
			}
		}
	}
}

// TestCubeReuseDeclinedForAVG: AVG is not decomposable; the roll-up must
// re-run the query, not reuse the cube.
func TestCubeReuseDeclinedForAVG(t *testing.T) {
	s := invoiceSession(t)
	s.ClickGroupBy(GroupSpec{Path: facet.Path{{P: ie("takesPlaceAt")}}})
	s.ClickGroupBy(GroupSpec{Path: facet.Path{{P: ie("delivers")}}})
	s.ClickAggregate(MeasureSpec{Path: facet.Path{{P: ie("inQuantity")}}}, hifun.Operation{Op: hifun.OpAvg})
	if _, err := s.RunAnalytics(); err != nil {
		t.Fatal(err)
	}
	s.ClickGroupBy(GroupSpec{Path: facet.Path{{P: ie("delivers")}}})
	ans, err := s.RunAnalytics()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(ans.SPARQL, "materialized cube") {
		t.Fatal("AVG must not be rolled up from a cube (averages of averages)")
	}
	// And the value is the true average per branch: branch3 = 600/3 = 200.
	for _, row := range ans.Rows {
		if row[0].LocalName() == "branch3" {
			if f, _ := row[1].Float(); f != 200 {
				t.Errorf("branch3 avg = %v, want 200", row[1])
			}
		}
	}
}

// TestCubeReuseDeclinedAcrossStates: a faceted click changes the extension;
// the old cube must not answer the new state.
func TestCubeReuseDeclinedAcrossStates(t *testing.T) {
	s := invoiceSession(t)
	s.ClickGroupBy(GroupSpec{Path: facet.Path{{P: ie("takesPlaceAt")}}})
	s.ClickGroupBy(GroupSpec{Path: facet.Path{{P: ie("delivers")}}})
	s.ClickAggregate(MeasureSpec{Path: facet.Path{{P: ie("inQuantity")}}}, hifun.Operation{Op: hifun.OpSum})
	if _, err := s.RunAnalytics(); err != nil {
		t.Fatal(err)
	}
	// Restrict the extension, then ask for the coarser grouping.
	s.ClickValue(facet.Path{{P: ie("delivers")}}, ie("CocaLight"))
	s.ClickGroupBy(GroupSpec{Path: facet.Path{{P: ie("delivers")}}})
	ans, err := s.RunAnalytics()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(ans.SPARQL, "materialized cube") {
		t.Fatal("stale cube reused across different extensions")
	}
	want := map[string]int64{"branch1": 200, "branch2": 600, "branch3": 400}
	for _, row := range ans.Rows {
		if n, _ := row[1].Int(); n != want[row[0].LocalName()] {
			t.Errorf("%s = %d", row[0].LocalName(), n)
		}
	}
}

var _ = rdf.Term{}
