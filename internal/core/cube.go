package core

import (
	"sort"
	"strings"

	"rdfanalytics/internal/hifun"
	"rdfanalytics/internal/rdf"
)

// Materialized-cube reuse: §3.3.2/§3.3.3 highlight systems ([16], [51])
// that answer an analytic query from the materialized result of a previous
// one. The session applies the same idea to its Answer-Frame cache: when a
// requested query groups by a *subset* of a cached answer's grouping
// attributes, with the same measure and a decomposable aggregate (SUM,
// COUNT, MIN, MAX — not AVG), the answer is computed by re-aggregating the
// cached cube instead of re-running SPARQL. This is exactly the roll-up
// direction of Fig 7.2, served from memory.

// cubeEntry is one reusable materialized answer.
type cubeEntry struct {
	intentionKey string
	groupBy      []GroupSpec
	measure      MeasureSpec
	op           hifun.Operation
	answer       *hifun.Answer
}

// decomposable reports whether op can be re-aggregated from partial
// aggregates of itself.
func decomposable(op hifun.Operation) bool {
	if op.Distinct || op.RestrictOp != "" {
		return false
	}
	switch op.Op {
	case hifun.OpSum, hifun.OpCount, hifun.OpMin, hifun.OpMax:
		return true
	}
	return false
}

// rememberCube records an answer for reuse when its shape allows it.
func (l *level) rememberCube(key string, a Analytics, ans *hifun.Answer) {
	if len(a.Ops) != 1 || !decomposable(a.Ops[0]) || len(a.GroupBy) == 0 {
		return
	}
	// Cap retained cubes (small LRU-ish: keep the latest few).
	const maxCubes = 8
	l.cubes = append(l.cubes, cubeEntry{
		intentionKey: key,
		groupBy:      append([]GroupSpec{}, a.GroupBy...),
		measure:      a.Measure,
		op:           a.Ops[0],
		answer:       ans,
	})
	if len(l.cubes) > maxCubes {
		l.cubes = l.cubes[len(l.cubes)-maxCubes:]
	}
}

// tryCubeReuse answers the current analytics from a cached cube when
// possible. intentionKey must match (same extension) and the requested
// grouping must be a subset of the cube's grouping.
func (l *level) tryCubeReuse(intentionKey string, a Analytics) *hifun.Answer {
	if len(a.Ops) != 1 || !decomposable(a.Ops[0]) {
		return nil
	}
	for i := len(l.cubes) - 1; i >= 0; i-- {
		cube := l.cubes[i]
		if cube.intentionKey != intentionKey {
			continue
		}
		if !samePath(cube.measure, a.Measure) || cube.op.Op != a.Ops[0].Op {
			continue
		}
		idx, ok := groupSubsetIndices(a.GroupBy, cube.groupBy)
		if !ok {
			continue
		}
		if len(idx) == len(cube.groupBy) {
			continue // identical grouping is the exact cache's job
		}
		return rollupAnswer(cube.answer, idx, a.Ops[0].Op)
	}
	return nil
}

// groupSubsetIndices maps each requested grouping spec to its column index
// in the cube's grouping; ok=false when any is missing.
func groupSubsetIndices(want, have []GroupSpec) ([]int, bool) {
	out := make([]int, 0, len(want))
	for _, w := range want {
		found := -1
		for i, h := range have {
			if w.Path.Equal(h.Path) && w.Derive == h.Derive {
				found = i
				break
			}
		}
		if found < 0 {
			return nil, false
		}
		out = append(out, found)
	}
	return out, true
}

// rollupAnswer aggregates a cube's single measure over the kept grouping
// columns (by cube column index).
func rollupAnswer(cube *hifun.Answer, keep []int, op hifun.AggOp) *hifun.Answer {
	out := &hifun.Answer{SPARQL: "# served from materialized cube\n" + cube.SPARQL}
	for _, i := range keep {
		out.GroupCols = append(out.GroupCols, cube.GroupCols[i])
	}
	out.MeasureCols = append(out.MeasureCols, cube.MeasureCols...)
	mi := len(cube.GroupCols) // single measure column
	type agg struct {
		value float64
		set   bool
	}
	groups := map[string]*agg{}
	keyTerms := map[string][]rdf.Term{}
	for _, row := range cube.Rows {
		var kb strings.Builder
		terms := make([]rdf.Term, len(keep))
		for j, i := range keep {
			kb.WriteString(row[i].String())
			kb.WriteByte('\x00')
			terms[j] = row[i]
		}
		key := kb.String()
		v, okv := row[mi].Float()
		if !okv {
			continue
		}
		g, ok := groups[key]
		if !ok {
			groups[key] = &agg{value: v, set: true}
			keyTerms[key] = terms
			continue
		}
		switch op {
		case hifun.OpSum, hifun.OpCount:
			g.value += v
		case hifun.OpMin:
			if v < g.value {
				g.value = v
			}
		case hifun.OpMax:
			if v > g.value {
				g.value = v
			}
		}
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		row := append([]rdf.Term{}, keyTerms[k]...)
		v := groups[k].value
		var t rdf.Term
		if v == float64(int64(v)) {
			t = rdf.NewInteger(int64(v))
		} else {
			t = rdf.NewDecimal(v)
		}
		row = append(row, t)
		out.Rows = append(out.Rows, row)
	}
	return out
}
