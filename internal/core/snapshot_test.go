package core

import (
	"strings"
	"testing"

	"rdfanalytics/internal/datagen"
	"rdfanalytics/internal/facet"
	"rdfanalytics/internal/hifun"
	"rdfanalytics/internal/rdf"
)

func TestSnapshotRoundTrip(t *testing.T) {
	g := datagen.SmallProducts()
	rdf.Materialize(g)
	s := NewSession(g, datagen.ExampleNS)
	s.ClickClass(pe("Laptop"))
	s.ClickValue(facet.Path{{P: pe("manufacturer")}}, pe("DELL"))
	s.ClickRange(facet.Path{{P: pe("USBPorts")}}, ">=", rdf.NewInteger(2))
	s.ClickGroupBy(GroupSpec{Path: facet.Path{{P: pe("manufacturer")}}})
	s.ClickAggregate(MeasureSpec{Path: facet.Path{{P: pe("price")}}}, hifun.Operation{Op: hifun.OpAvg})
	data, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "manufacturer") {
		t.Fatalf("snapshot content: %s", data)
	}
	restored, err := RestoreSession(g, data)
	if err != nil {
		t.Fatal(err)
	}
	if restored.State().Ext.Len() != s.State().Ext.Len() {
		t.Fatalf("extension: %d vs %d", restored.State().Ext.Len(), s.State().Ext.Len())
	}
	for _, e := range s.State().Ext.Items() {
		if !restored.State().Ext.Has(e) {
			t.Errorf("restored extension misses %v", e)
		}
	}
	// The analytic selections replay too: both sessions answer identically.
	a1, err := s.RunAnalytics()
	if err != nil {
		t.Fatal(err)
	}
	a2, err := restored.RunAnalytics()
	if err != nil {
		t.Fatal(err)
	}
	if a1.String() != a2.String() {
		t.Errorf("answers differ:\n%s\nvs\n%s", a1, a2)
	}
}

func TestSnapshotNestedLevels(t *testing.T) {
	g := datagen.SmallProducts()
	rdf.Materialize(g)
	s := NewSession(g, datagen.ExampleNS)
	s.ClickClass(pe("Laptop"))
	s.ClickGroupBy(GroupSpec{Path: facet.Path{{P: pe("manufacturer")}}})
	s.ClickAggregate(MeasureSpec{Path: facet.Path{{P: pe("price")}}}, hifun.Operation{Op: hifun.OpAvg})
	ans, err := s.RunAnalytics()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LoadAnswerAsDataset(); err != nil {
		t.Fatal(err)
	}
	s.ClickRange(facet.Path{{P: rdf.NewIRI(hifun.AnswerNS + ans.MeasureCols[0])}},
		">", rdf.NewDecimal(900))
	data, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreSession(g, data)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Depth() != 2 {
		t.Fatalf("depth = %d", restored.Depth())
	}
	if restored.State().Ext.Len() != s.State().Ext.Len() {
		t.Fatalf("nested extension: %d vs %d",
			restored.State().Ext.Len(), s.State().Ext.Len())
	}
}

func TestSnapshotWithPivotAndSeed(t *testing.T) {
	g := datagen.SmallProducts()
	rdf.Materialize(g)
	s := NewSessionFrom(g, datagen.ExampleNS, []rdf.Term{pe("laptop1"), pe("laptop2")})
	s.SwitchFocus(facet.PathStep{P: pe("manufacturer")})
	data, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreSession(g, data)
	if err != nil {
		t.Fatal(err)
	}
	if restored.State().Ext.Len() != 1 || !restored.State().Ext.Has(pe("DELL")) {
		t.Fatalf("restored ext: %v", restored.State().Ext.Items())
	}
}

func TestSnapshotBackConsistency(t *testing.T) {
	g := datagen.SmallProducts()
	rdf.Materialize(g)
	s := NewSession(g, datagen.ExampleNS)
	s.ClickClass(pe("Laptop"))
	s.ClickValue(facet.Path{{P: pe("manufacturer")}}, pe("DELL"))
	s.Back() // undo the DELL click; the snapshot must not contain it
	data, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreSession(g, data)
	if err != nil {
		t.Fatal(err)
	}
	if restored.State().Ext.Len() != 3 {
		t.Fatalf("ext after back+restore: %d", restored.State().Ext.Len())
	}
}

func TestRestoreErrors(t *testing.T) {
	g := datagen.SmallProducts()
	if _, err := RestoreSession(g, []byte("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := RestoreSession(g, []byte(`{"version":9,"levels":[{"ns":"x"}]}`)); err == nil {
		t.Error("bad version accepted")
	}
	if _, err := RestoreSession(g, []byte(`{"version":1,"levels":[]}`)); err == nil {
		t.Error("empty snapshot accepted")
	}
	if _, err := RestoreSession(g, []byte(`{"version":1,"levels":[{"ns":"x","actions":[{"kind":"alien"}]}]}`)); err == nil {
		t.Error("unknown action accepted")
	}
}
