package core

import (
	"fmt"

	"rdfanalytics/internal/hifun"
)

// Chapter 7.1 — the expressive power of the interaction model: which HIFUN
// queries the click language can formulate. Expressible reports whether q
// is reachable by some sequence of UI actions, and when it is not, the
// reasons why.
//
// The model expresses:
//   - groupings that are pairings of property-path compositions (G clicks
//     on facets, possibly after path expansion), optionally wrapped in a
//     derived function (the transform button);
//   - a measuring function that is a single property-path composition or
//     the identity (one Σ facet at a time);
//   - attribute restrictions that correspond to clicks: URI equality,
//     value-set membership, and literal comparisons on a path;
//   - any of the aggregate operations, with result restrictions realized by
//     reloading the Answer Frame as a dataset (§5.3.3).
//
// It does not express: compositions that continue *after* a derived
// attribute (a click cannot traverse a computed value), pairings nested
// inside compositions (not a function), or a pairing as the measuring
// function.
func Expressible(q *hifun.Query) (bool, []string) {
	var reasons []string
	if q == nil {
		return false, []string{"nil query"}
	}
	if len(q.Ops) == 0 {
		reasons = append(reasons, "no aggregate operation (a Σ click is required)")
	}
	for _, op := range q.Ops {
		if !hifun.ValidOp(string(op.Op)) {
			reasons = append(reasons, fmt.Sprintf("unsupported operation %s", op.Op))
		}
	}
	// Grouping: ε or pairing of path expressions.
	if q.Grouping != nil {
		if pair, ok := q.Grouping.(hifun.Pair); ok {
			for _, item := range pair.Items {
				reasons = append(reasons, pathExprReasons("grouping", item)...)
			}
		} else {
			reasons = append(reasons, pathExprReasons("grouping", q.Grouping)...)
		}
	}
	// Measuring: identity or a single path expression (no pairing).
	switch m := q.Measuring.(type) {
	case nil, hifun.Ident:
		// ok: (g, ID, COUNT)
	case hifun.Pair:
		reasons = append(reasons, "measuring function is a pairing (the Σ button selects one facet)")
		_ = m
	default:
		reasons = append(reasons, pathExprReasons("measuring", q.Measuring)...)
	}
	for _, r := range append(append([]hifun.Restriction{}, q.GroupRestrs...), q.MeasRestrs...) {
		if r.Path != nil {
			reasons = append(reasons, pathExprReasons("restriction", r.Path)...)
		}
		switch r.Op {
		case "", "=", "!=", "<", "<=", ">", ">=":
		default:
			reasons = append(reasons, fmt.Sprintf("restriction operator %q has no UI control", r.Op))
		}
	}
	return len(reasons) == 0, reasons
}

// pathExprReasons validates one attribute expression as a UI-expressible
// path: a composition chain of properties, optionally topped by one derived
// function.
func pathExprReasons(role string, a hifun.Attr) []string {
	// Strip one optional outer derived function.
	if d, ok := a.(hifun.Derived); ok {
		if d.Sub == nil {
			return []string{fmt.Sprintf("%s: derived function %s lacks an argument", role, d.Func)}
		}
		if !hifun.IsDerivedFunc(d.Func) {
			return []string{fmt.Sprintf("%s: unknown derived function %s", role, d.Func)}
		}
		a = d.Sub
	}
	return compositionReasons(role, a)
}

func compositionReasons(role string, a hifun.Attr) []string {
	switch x := a.(type) {
	case hifun.Prop:
		return nil
	case hifun.Comp:
		var out []string
		// Inner must itself be a plain composition (no derived inside: a
		// click cannot traverse a computed value).
		if _, isDerived := x.Inner.(hifun.Derived); isDerived {
			out = append(out, fmt.Sprintf("%s: composition traverses a derived attribute", role))
		} else {
			out = append(out, compositionReasons(role, x.Inner)...)
		}
		if _, isDerived := x.Outer.(hifun.Derived); isDerived {
			out = append(out, fmt.Sprintf("%s: derived function in the middle of a path", role))
		} else {
			out = append(out, compositionReasons(role, x.Outer)...)
		}
		return out
	case hifun.Pair:
		return []string{fmt.Sprintf("%s: pairing nested inside a composition is not a function", role)}
	case hifun.Ident:
		return []string{fmt.Sprintf("%s: identity cannot appear inside a path", role)}
	case hifun.Derived:
		return []string{fmt.Sprintf("%s: stacked derived functions are not expressible", role)}
	default:
		return []string{fmt.Sprintf("%s: unknown attribute %T", role, a)}
	}
}
