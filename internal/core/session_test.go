package core

import (
	"errors"
	"strings"
	"testing"

	"rdfanalytics/internal/datagen"
	"rdfanalytics/internal/facet"
	"rdfanalytics/internal/hifun"
	"rdfanalytics/internal/rdf"
)

func pe(l string) rdf.Term { return rdf.NewIRI(datagen.ExampleNS + l) }

func productSession(t testing.TB) *Session {
	t.Helper()
	g := datagen.SmallProducts()
	rdf.Materialize(g)
	return NewSession(g, datagen.ExampleNS)
}

// TestExample1 is §5.1 Example 1: "average price of laptops made in 2021
// from US companies that have SSD and 2 USB ports" — an AVG query without
// GROUP BY, formulated purely by clicks.
func TestExample1(t *testing.T) {
	s := productSession(t)
	s.ClickClass(pe("Laptop"))
	// made in 2021
	s.ClickRange(facet.Path{{P: pe("releaseDate")}}, ">=", rdf.NewTyped("2021-01-01", rdf.XSDDate))
	s.ClickRange(facet.Path{{P: pe("releaseDate")}}, "<=", rdf.NewTyped("2021-12-31", rdf.XSDDate))
	// from US companies: expand manufacturer -> origin and click USA
	s.ClickValue(facet.Path{{P: pe("manufacturer")}, {P: pe("origin")}}, pe("USA"))
	// that have an SSD: hardDrive whose type is SSD — click the SSD drives
	s.ClickValueSet(facet.Path{{P: pe("hardDrive")}}, []rdf.Term{pe("SSD1"), pe("SSD2")})
	// and 2 USB ports
	s.ClickValue(facet.Path{{P: pe("USBPorts")}}, rdf.NewInteger(2))
	if s.State().Ext.Len() != 1 {
		t.Fatalf("extension = %v", s.State().Ext.Items())
	}
	// Σ on price with AVG; no G clicks.
	s.ClickAggregate(MeasureSpec{Path: facet.Path{{P: pe("price")}}}, hifun.Operation{Op: hifun.OpAvg})
	ans, err := s.RunAnalytics()
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Rows) != 1 || len(ans.GroupCols) != 0 {
		t.Fatalf("answer shape: %v\n%s", ans.Columns(), ans)
	}
	if f, _ := ans.Rows[0][0].Float(); f != 900 { // laptop1 only
		t.Errorf("avg price = %v, want 900", ans.Rows[0][0])
	}
}

// TestExample2 is §5.1 Example 2: COUNT with GROUP BY on the expanded path
// manufacturer/origin.
func TestExample2(t *testing.T) {
	s := productSession(t)
	s.ClickClass(pe("Laptop"))
	s.ClickGroupBy(GroupSpec{Path: facet.Path{{P: pe("manufacturer")}, {P: pe("origin")}}})
	s.ClickAggregate(MeasureSpec{}, hifun.Operation{Op: hifun.OpCount})
	ans, err := s.RunAnalytics()
	if err != nil {
		t.Fatal(err)
	}
	// USA: 2 (DELL laptops), China: 1 (Lenovo laptop).
	want := map[string]int64{"USA": 2, "China": 1}
	if len(ans.Rows) != 2 {
		t.Fatalf("rows:\n%s", ans)
	}
	for _, row := range ans.Rows {
		if n, _ := row[1].Int(); n != want[row[0].LocalName()] {
			t.Errorf("%s = %d", row[0].LocalName(), n)
		}
	}
}

// TestExample3 is §5.1 Example 3: as Example 2 but with a range filter
// "2 or more USB ports".
func TestExample3(t *testing.T) {
	s := productSession(t)
	s.ClickClass(pe("Laptop"))
	s.ClickRange(facet.Path{{P: pe("USBPorts")}}, ">=", rdf.NewInteger(2))
	s.ClickGroupBy(GroupSpec{Path: facet.Path{{P: pe("manufacturer")}, {P: pe("origin")}}})
	s.ClickAggregate(MeasureSpec{}, hifun.Operation{Op: hifun.OpCount})
	ans, err := s.RunAnalytics()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{"USA": 2, "China": 1}
	for _, row := range ans.Rows {
		if n, _ := row[1].Int(); n != want[row[0].LocalName()] {
			t.Errorf("%s = %d\n%s", row[0].LocalName(), n, ans)
		}
	}
}

// TestExample4 is §5.1 Example 4: average price grouped by company and
// year, then HAVING avg > t via loading the answer as a new dataset.
func TestExample4(t *testing.T) {
	s := productSession(t)
	s.ClickClass(pe("Laptop"))
	s.ClickGroupBy(GroupSpec{Path: facet.Path{{P: pe("manufacturer")}}})
	s.ClickGroupBy(GroupSpec{Path: facet.Path{{P: pe("releaseDate")}}, Derive: "YEAR"})
	s.ClickAggregate(MeasureSpec{Path: facet.Path{{P: pe("price")}}}, hifun.Operation{Op: hifun.OpAvg})
	ans, err := s.RunAnalytics()
	if err != nil {
		t.Fatal(err)
	}
	// Groups: (DELL, 2021) avg 950, (Lenovo, 2021) avg 820.
	if len(ans.Rows) != 2 {
		t.Fatalf("rows:\n%s", ans)
	}
	// "Explore with FS": load as dataset, then restrict avg price > 900.
	if err := s.LoadAnswerAsDataset(); err != nil {
		t.Fatal(err)
	}
	if s.Depth() != 2 {
		t.Fatalf("depth = %d", s.Depth())
	}
	avgCol := ans.MeasureCols[0]
	s.ClickRange(facet.Path{{P: rdf.NewIRI(hifun.AnswerNS + avgCol)}}, ">", rdf.NewDecimal(900))
	if s.State().Ext.Len() != 1 {
		t.Fatalf("tuples after HAVING: %v", s.State().Ext.Items())
	}
	// The surviving tuple is the DELL group.
	tuple := s.State().Ext.Items()[0]
	man := s.Model().G.Object(tuple, rdf.NewIRI(hifun.AnswerNS+ans.GroupCols[0]))
	if man != pe("DELL") {
		t.Errorf("surviving group = %v", man)
	}
	// Closing the level returns to the base dataset.
	if err := s.CloseLevel(); err != nil {
		t.Fatal(err)
	}
	if s.Depth() != 1 {
		t.Fatalf("depth after close = %d", s.Depth())
	}
}

// TestGUIFig62 reproduces the Fig 6.2 walk-through: "average, sum and max
// price of laptops that have 2 to 4 USB ports, grouped by manufacturer and
// the origin of manufacturer".
func TestGUIFig62(t *testing.T) {
	s := productSession(t)
	s.ClickClass(pe("Laptop"))
	s.ClickRange(facet.Path{{P: pe("USBPorts")}}, ">=", rdf.NewInteger(2))
	s.ClickRange(facet.Path{{P: pe("USBPorts")}}, "<=", rdf.NewInteger(4))
	s.ClickGroupBy(GroupSpec{Path: facet.Path{{P: pe("manufacturer")}}})
	s.ClickGroupBy(GroupSpec{Path: facet.Path{{P: pe("manufacturer")}, {P: pe("origin")}}})
	m := MeasureSpec{Path: facet.Path{{P: pe("price")}}}
	s.ClickAggregate(m, hifun.Operation{Op: hifun.OpAvg})
	s.ClickAggregate(m, hifun.Operation{Op: hifun.OpSum})
	s.ClickAggregate(m, hifun.Operation{Op: hifun.OpMax})
	ans, err := s.RunAnalytics()
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.GroupCols) != 2 || len(ans.MeasureCols) != 3 {
		t.Fatalf("shape: %v / %v", ans.GroupCols, ans.MeasureCols)
	}
	for _, row := range ans.Rows {
		if row[0].LocalName() == "DELL" {
			if f, _ := row[2].Float(); f != 950 {
				t.Errorf("DELL avg = %v", row[2])
			}
			if n, _ := row[3].Int(); n != 1900 {
				t.Errorf("DELL sum = %v", row[3])
			}
			if n, _ := row[4].Int(); n != 1000 {
				t.Errorf("DELL max = %v", row[4])
			}
		}
	}
}

func TestGroupByToggle(t *testing.T) {
	s := productSession(t)
	p := GroupSpec{Path: facet.Path{{P: pe("manufacturer")}}}
	s.ClickGroupBy(p)
	if len(s.Analytics().GroupBy) != 1 {
		t.Fatal("group not added")
	}
	s.ClickGroupBy(p)
	if len(s.Analytics().GroupBy) != 0 {
		t.Fatal("second click must remove the group")
	}
}

func TestAggregateToggleAndMeasureSwitch(t *testing.T) {
	s := productSession(t)
	price := MeasureSpec{Path: facet.Path{{P: pe("price")}}}
	s.ClickAggregate(price, hifun.Operation{Op: hifun.OpAvg})
	s.ClickAggregate(price, hifun.Operation{Op: hifun.OpSum})
	if len(s.Analytics().Ops) != 2 {
		t.Fatalf("ops = %v", s.Analytics().Ops)
	}
	// Toggling AVG off.
	s.ClickAggregate(price, hifun.Operation{Op: hifun.OpAvg})
	if len(s.Analytics().Ops) != 1 {
		t.Fatalf("ops after toggle = %v", s.Analytics().Ops)
	}
	// Switching the measure resets operations.
	s.ClickAggregate(MeasureSpec{Path: facet.Path{{P: pe("USBPorts")}}}, hifun.Operation{Op: hifun.OpMax})
	if len(s.Analytics().Ops) != 1 || s.Analytics().Ops[0].Op != hifun.OpMax {
		t.Fatalf("ops after switch = %v", s.Analytics().Ops)
	}
}

func TestAnalyticsPreservesExtension(t *testing.T) {
	// §5.2.2: G and Σ clicks change the intention only; extension and
	// transitions stay the same.
	s := productSession(t)
	s.ClickClass(pe("Laptop"))
	before := s.State().Ext.Len()
	facetsBefore := len(s.Model().PropertyFacets(s.State(), false))
	s.ClickGroupBy(GroupSpec{Path: facet.Path{{P: pe("manufacturer")}}})
	s.ClickAggregate(MeasureSpec{Path: facet.Path{{P: pe("price")}}}, hifun.Operation{Op: hifun.OpAvg})
	if s.State().Ext.Len() != before {
		t.Error("analytic click changed the extension")
	}
	if len(s.Model().PropertyFacets(s.State(), false)) != facetsBefore {
		t.Error("analytic click changed the transitions")
	}
}

func TestBackAndReset(t *testing.T) {
	s := productSession(t)
	s.ClickClass(pe("Laptop"))
	s.ClickValue(facet.Path{{P: pe("manufacturer")}}, pe("DELL"))
	if s.State().Ext.Len() != 2 {
		t.Fatal("setup")
	}
	if err := s.Back(); err != nil {
		t.Fatal(err)
	}
	if s.State().Ext.Len() != 3 {
		t.Fatalf("after back: %d", s.State().Ext.Len())
	}
	s.Reset()
	if s.State().Int.String() != "⊤" {
		t.Fatalf("after reset: %s", s.State().Int)
	}
	if err := s.Back(); err == nil {
		t.Fatal("back at initial state must fail")
	}
}

func TestRunAnalyticsWithoutOp(t *testing.T) {
	s := productSession(t)
	if _, err := s.RunAnalytics(); err == nil {
		t.Fatal("analytics without Σ selection must fail")
	}
}

func TestLoadAnswerWithoutAnswer(t *testing.T) {
	s := productSession(t)
	if err := s.LoadAnswerAsDataset(); err == nil {
		t.Fatal("loading without an answer must fail")
	}
	if err := s.CloseLevel(); err == nil {
		t.Fatal("closing base level must fail")
	}
}

func TestApplyTransform(t *testing.T) {
	// A company with two founders: founder is not functional; the transform
	// button (fco3) makes a usable attribute.
	g := datagen.SmallProducts()
	g.Add(rdf.Triple{S: pe("DELL"), P: pe("founder"), O: pe("SecondFounder")})
	rdf.Materialize(g)
	s := NewSession(g, datagen.ExampleNS)
	s.ClickClass(pe("Company"))
	n, err := s.ApplyTransform(hifun.FeatureSpec{
		Op: hifun.FCOCount, P: pe("founder"), Feature: pe("nFounders"),
	})
	if err != nil || n == 0 {
		t.Fatalf("transform: %d, %v", n, err)
	}
	// Group companies by founder count.
	s.ClickGroupBy(GroupSpec{Path: facet.Path{{P: pe("nFounders")}}})
	s.ClickAggregate(MeasureSpec{}, hifun.Operation{Op: hifun.OpCount})
	ans, err := s.RunAnalytics()
	if err != nil {
		t.Fatal(err)
	}
	// counts: DELL has 2 founders, Lenovo/Maxtor 1, AVDElectronics 0.
	want := map[string]int64{"2": 1, "1": 2, "0": 1}
	for _, row := range ans.Rows {
		if n, _ := row[1].Int(); n != want[row[0].Value] {
			t.Errorf("nFounders=%s count=%d\n%s", row[0].Value, n, ans)
		}
	}
}

func TestApplyTransformDurability(t *testing.T) {
	g := datagen.SmallProducts()
	rdf.Materialize(g)
	s := NewSession(g, datagen.ExampleNS)
	s.ClickClass(pe("Company"))
	synced := 0
	s.SetDurability(func() error { synced++; return nil })
	if _, err := s.ApplyTransform(hifun.FeatureSpec{
		Op: hifun.FCOCount, P: pe("founder"), Feature: pe("nFounders"),
	}); err != nil {
		t.Fatal(err)
	}
	if synced != 1 {
		t.Fatalf("durability barrier called %d times, want 1", synced)
	}
	// A failing sync must be surfaced to the caller.
	s.SetDurability(func() error { return errors.New("disk gone") })
	if _, err := s.ApplyTransform(hifun.FeatureSpec{
		Op: hifun.FCOCount, P: pe("founder"), Feature: pe("nFounders2"),
	}); err == nil {
		t.Fatal("sync failure not surfaced by ApplyTransform")
	}
}

func TestComputeUIState(t *testing.T) {
	s := productSession(t)
	s.ClickClass(pe("Laptop"))
	s.ClickGroupBy(GroupSpec{Path: facet.Path{{P: pe("manufacturer")}}})
	s.ClickAggregate(MeasureSpec{Path: facet.Path{{P: pe("price")}}}, hifun.Operation{Op: hifun.OpAvg})
	ui := s.ComputeUIState(10, false)
	if ui.TotalObjects != 3 || len(ui.Objects) != 3 {
		t.Fatalf("objects: %d/%d", len(ui.Objects), ui.TotalObjects)
	}
	var grouped, measured, numeric bool
	for _, f := range ui.Facets {
		if f.P == pe("manufacturer") && f.Grouped {
			grouped = true
		}
		if f.P == pe("price") && f.Measured {
			measured = true
		}
		if f.P == pe("USBPorts") && f.Numeric {
			numeric = true
		}
	}
	if !grouped || !measured || !numeric {
		t.Errorf("button states: G=%v Σ=%v numeric=%v", grouped, measured, numeric)
	}
	if ui.HIFUN == "" {
		t.Error("HIFUN query not rendered")
	}
	txt := ui.RenderText()
	for _, want := range []string{"manufacturer", "[G]", "[Σ]", "laptop1"} {
		if !strings.Contains(txt, want) {
			t.Errorf("render misses %q:\n%s", want, txt)
		}
	}
	// Paging caps the right frame.
	ui2 := s.ComputeUIState(2, false)
	if len(ui2.Objects) != 2 || ui2.TotalObjects != 3 {
		t.Errorf("paging: %d/%d", len(ui2.Objects), ui2.TotalObjects)
	}
}

// TestLargeScaleSession drives a full interaction over a ~100k-triple KG:
// the end-to-end sanity check at the paper's largest evaluation scale.
func TestLargeScaleSession(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale session in -short mode")
	}
	g := datagen.Products(datagen.ProductsConfig{Laptops: 11200, Companies: 16, Seed: 1, Materialize: true})
	if g.Len() < 90000 {
		t.Fatalf("dataset too small: %d triples", g.Len())
	}
	s := NewSession(g, datagen.ExampleNS)
	s.ClickClass(pe("Laptop"))
	if s.State().Ext.Len() != 11200 {
		t.Fatalf("laptops = %d", s.State().Ext.Len())
	}
	s.ClickRange(facet.Path{{P: pe("USBPorts")}}, ">=", rdf.NewInteger(3))
	s.ClickGroupBy(GroupSpec{Path: facet.Path{{P: pe("manufacturer")}, {P: pe("origin")}}})
	s.ClickGroupBy(GroupSpec{Path: facet.Path{{P: pe("releaseDate")}}, Derive: "YEAR"})
	s.ClickAggregate(MeasureSpec{Path: facet.Path{{P: pe("price")}}}, hifun.Operation{Op: hifun.OpAvg})
	ans, err := s.RunAnalytics()
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Rows) == 0 || len(ans.GroupCols) != 2 {
		t.Fatalf("answer shape: %v, %d rows", ans.Columns(), len(ans.Rows))
	}
	// Nesting at scale.
	if err := s.LoadAnswerAsDataset(); err != nil {
		t.Fatal(err)
	}
	if s.State().Ext.Len() != len(ans.Rows) {
		t.Fatalf("nested tuples: %d vs %d", s.State().Ext.Len(), len(ans.Rows))
	}
}

func TestComputeUIStateBuckets(t *testing.T) {
	g := datagen.Products(datagen.ProductsConfig{Laptops: 60, Companies: 6, Seed: 3, Materialize: true})
	s := NewSession(g, datagen.ExampleNS)
	s.ClickClass(pe("Laptop"))
	ui := s.ComputeUIState(5, false)
	var priceFacet *FacetView
	for i := range ui.Facets {
		if ui.Facets[i].P == pe("price") {
			priceFacet = &ui.Facets[i]
		}
	}
	if priceFacet == nil || !priceFacet.Numeric {
		t.Fatal("price facet not numeric")
	}
	if len(priceFacet.Buckets) != 5 {
		t.Fatalf("buckets = %d", len(priceFacet.Buckets))
	}
	total := 0
	for _, b := range priceFacet.Buckets {
		total += b.Count
	}
	if total != 60 {
		t.Errorf("bucket counts sum to %d", total)
	}
}

func TestBuildHIFUNQueryShape(t *testing.T) {
	s := productSession(t)
	s.ClickClass(pe("Laptop"))
	s.ClickGroupBy(GroupSpec{Path: facet.Path{{P: pe("manufacturer")}}})
	s.ClickGroupBy(GroupSpec{Path: facet.Path{{P: pe("manufacturer")}, {P: pe("origin")}}})
	s.ClickAggregate(MeasureSpec{Path: facet.Path{{P: pe("price")}}}, hifun.Operation{Op: hifun.OpAvg})
	q, err := s.BuildHIFUNQuery()
	if err != nil {
		t.Fatal(err)
	}
	pair, ok := q.Grouping.(hifun.Pair)
	if !ok || len(pair.Items) != 2 {
		t.Fatalf("grouping: %#v", q.Grouping)
	}
	// Second item is the composition origin∘manufacturer.
	comp, ok := pair.Items[1].(hifun.Comp)
	if !ok {
		t.Fatalf("second group: %#v", pair.Items[1])
	}
	if comp.Outer.(hifun.Prop).Name != pe("origin").Value {
		t.Errorf("outer = %v", comp.Outer)
	}
}

func TestAnswerCache(t *testing.T) {
	s := productSession(t)
	s.ClickClass(pe("Laptop"))
	s.ClickGroupBy(GroupSpec{Path: facet.Path{{P: pe("manufacturer")}}})
	s.ClickAggregate(MeasureSpec{Path: facet.Path{{P: pe("price")}}}, hifun.Operation{Op: hifun.OpAvg})
	a1, err := s.RunAnalytics()
	if err != nil {
		t.Fatal(err)
	}
	a2, err := s.RunAnalytics()
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("identical re-run not served from cache")
	}
	// A different query misses the cache.
	s.ClickAggregate(MeasureSpec{Path: facet.Path{{P: pe("price")}}}, hifun.Operation{Op: hifun.OpMax})
	a3, err := s.RunAnalytics()
	if err != nil {
		t.Fatal(err)
	}
	if a3 == a1 {
		t.Error("different query served stale answer")
	}
	// A transform invalidates: the same query recomputes.
	if _, err := s.ApplyTransform(hifun.FeatureSpec{
		Op: hifun.FCOCount, P: pe("manufacturer"), Feature: pe("nMakers"),
	}); err != nil {
		t.Fatal(err)
	}
	a4, err := s.RunAnalytics()
	if err != nil {
		t.Fatal(err)
	}
	if a4 == a3 {
		t.Error("cache not invalidated by transform")
	}
	// A faceted click changes the state: cache key differs.
	s.ClickValue(facet.Path{{P: pe("manufacturer")}}, pe("DELL"))
	a5, err := s.RunAnalytics()
	if err != nil {
		t.Fatal(err)
	}
	if a5 == a4 {
		t.Error("state change served stale answer")
	}
	if len(a5.Rows) != 1 {
		t.Errorf("restricted answer rows = %d", len(a5.Rows))
	}
}

// TestSwitchFocusAnalytics pivots the focus (laptops → manufacturers) and
// runs analytics over the new entity type.
func TestSwitchFocusAnalytics(t *testing.T) {
	s := productSession(t)
	s.ClickClass(pe("Laptop"))
	s.ClickGroupBy(GroupSpec{Path: facet.Path{{P: pe("manufacturer")}}})
	s.SwitchFocus(facet.PathStep{P: pe("manufacturer")})
	// Analytics selections must have been cleared (they referred to laptops).
	if s.Analytics().Active() {
		t.Fatal("analytics not cleared after focus switch")
	}
	if s.State().Ext.Len() != 2 {
		t.Fatalf("companies = %v", s.State().Ext.Items())
	}
	// Average company size by origin over the *laptop manufacturers*.
	s.ClickGroupBy(GroupSpec{Path: facet.Path{{P: pe("origin")}}})
	s.ClickAggregate(MeasureSpec{Path: facet.Path{{P: pe("size")}}}, hifun.Operation{Op: hifun.OpAvg})
	ans, err := s.RunAnalytics()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"USA": 133000, "China": 71500}
	if len(ans.Rows) != 2 {
		t.Fatalf("rows:\n%s", ans)
	}
	for _, row := range ans.Rows {
		if f, _ := row[1].Float(); f != want[row[0].LocalName()] {
			t.Errorf("%s = %v", row[0].LocalName(), row[1])
		}
	}
}

func TestSessionFromResults(t *testing.T) {
	g := datagen.SmallProducts()
	rdf.Materialize(g)
	s := NewSessionFrom(g, datagen.ExampleNS, []rdf.Term{pe("laptop1"), pe("laptop3")})
	if s.State().Ext.Len() != 2 {
		t.Fatalf("ext = %d", s.State().Ext.Len())
	}
	s.ClickAggregate(MeasureSpec{Path: facet.Path{{P: pe("price")}}}, hifun.Operation{Op: hifun.OpSum})
	ans, err := s.RunAnalytics()
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := ans.Rows[0][0].Int(); n != 1720 { // 900 + 820
		t.Errorf("sum = %v\n%s", ans.Rows[0][0], ans)
	}
}
