package core

import (
	"strings"
	"testing"

	"rdfanalytics/internal/facet"
	"rdfanalytics/internal/hifun"
)

// TestSessionLastTrace checks RunAnalytics records a span tree: the first
// run goes through translate/exec (answer_source=query), the second is
// served from the answer cache and says so.
func TestSessionLastTrace(t *testing.T) {
	s := productSession(t)
	if s.LastTrace() != nil {
		t.Fatal("fresh session has a trace")
	}
	s.ClickClass(pe("Laptop"))
	s.ClickGroupBy(GroupSpec{Path: facet.Path{{P: pe("manufacturer")}}})
	s.ClickAggregate(MeasureSpec{Path: facet.Path{{P: pe("price")}}},
		hifun.Operation{Op: hifun.OpAvg})
	if _, err := s.RunAnalytics(); err != nil {
		t.Fatal(err)
	}
	tree := s.LastTrace().Tree()
	for _, want := range []string{"run_analytics", "answer_source=query", "build_query", "translate", "exec", "build_answer", "bgp"} {
		if !strings.Contains(tree, want) {
			t.Errorf("trace missing %q:\n%s", want, tree)
		}
	}
	if _, err := s.RunAnalytics(); err != nil {
		t.Fatal(err)
	}
	if tree := s.LastTrace().Tree(); !strings.Contains(tree, "answer_source=cache") {
		t.Errorf("second run should be a cache hit:\n%s", tree)
	}
}
