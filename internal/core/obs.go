package core

import (
	"time"

	"rdfanalytics/internal/obs"
)

// Metric handles for the interaction layer, resolved once at package init.
// rdfa_core_answer_cache_total partitions RunAnalytics outcomes: "hit"
// (exact answer memoized), "cube" (answered by rolling up a retained cube),
// "miss" (full translate + SPARQL evaluation).
var (
	runSeconds     = obs.Default.Histogram("rdfa_core_run_analytics_seconds", nil)
	reloadSeconds  = obs.Default.Histogram("rdfa_core_reload_seconds", nil)
	uiStateSeconds = obs.Default.Histogram("rdfa_core_uistate_seconds", nil)
	answerHits     = obs.Default.Counter("rdfa_core_answer_cache_total", "result", "hit")
	answerCubes    = obs.Default.Counter("rdfa_core_answer_cache_total", "result", "cube")
	answerMisses   = obs.Default.Counter("rdfa_core_answer_cache_total", "result", "miss")
	// answerEvicted counts size-pressure evictions from the per-level answer
	// LRU; it shares the rdfa_cache_evictions_total family with the server's
	// fingerprint answer cache (label cache="answer").
	answerEvicted = obs.Default.Counter("rdfa_cache_evictions_total", "cache", "session")
)

// observeSince records a duration on h; evaluate time.Now() at the defer
// site so the deferred call measures the enclosing function.
func observeSince(h *obs.Histogram, start time.Time) {
	h.Observe(time.Since(start).Seconds())
}
