package core

import (
	"testing"

	"rdfanalytics/internal/facet"
	"rdfanalytics/internal/hifun"
	"rdfanalytics/internal/rdf"
)

const xns = "http://e/"

func pathOf(props ...rdf.Term) facet.Path {
	var p facet.Path
	for _, pr := range props {
		p = append(p, facet.PathStep{P: pr})
	}
	return p
}

func parse(t *testing.T, src string) *hifun.Query {
	t.Helper()
	q, err := hifun.Parse(src, xns)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestExpressiblePositive enumerates the §7.1 cases the model expresses.
func TestExpressiblePositive(t *testing.T) {
	for _, src := range []string{
		"(takesPlaceAt, inQuantity, SUM)",            // simple
		"(ε, price, AVG)",                            // Example 1
		"(origin.manufacturer, ID, COUNT)",           // path + identity
		"(takesPlaceAt & delivers, inQuantity, SUM)", // pairing
		"(month.hasDate, inQuantity, SUM)",           // derived grouping
		"(takesPlaceAt/branch1, inQuantity, SUM)",    // URI restriction
		"(takesPlaceAt, inQuantity/>=2, SUM)",        // literal restriction
		"(takesPlaceAt, inQuantity, SUM/>1000)",      // HAVING (via AF)
		"(manufacturer, price, AVG; SUM; MAX)",       // multiple ops
		"(a & b.c & month.d, q, MIN)",                // pairing of paths
	} {
		q := parse(t, src)
		ok, reasons := Expressible(q)
		if !ok {
			t.Errorf("%s: should be expressible, reasons: %v", src, reasons)
		}
	}
}

// TestExpressibleNegative enumerates the documented gaps.
func TestExpressibleNegative(t *testing.T) {
	cases := []struct {
		name string
		q    *hifun.Query
	}{
		{"no operation", &hifun.Query{Grouping: hifun.Prop{Name: "a"}}},
		{"composition after derived", &hifun.Query{
			Grouping: hifun.Comp{
				Outer: hifun.Prop{Name: "p"},
				Inner: hifun.Derived{Func: "YEAR", Sub: hifun.Prop{Name: "d"}},
			},
			Measuring: hifun.Prop{Name: "q"},
			Ops:       []hifun.Operation{{Op: hifun.OpSum}},
		}},
		{"pairing as measure", &hifun.Query{
			Grouping:  hifun.Prop{Name: "g"},
			Measuring: hifun.Pair{Items: []hifun.Attr{hifun.Prop{Name: "a"}, hifun.Prop{Name: "b"}}},
			Ops:       []hifun.Operation{{Op: hifun.OpSum}},
		}},
		{"nested pairing", &hifun.Query{
			Grouping: hifun.Comp{
				Outer: hifun.Prop{Name: "p"},
				Inner: hifun.Pair{Items: []hifun.Attr{hifun.Prop{Name: "a"}, hifun.Prop{Name: "b"}}},
			},
			Measuring: hifun.Prop{Name: "q"},
			Ops:       []hifun.Operation{{Op: hifun.OpSum}},
		}},
		{"stacked derived", &hifun.Query{
			Grouping: hifun.Derived{Func: "YEAR",
				Sub: hifun.Derived{Func: "MONTH", Sub: hifun.Prop{Name: "d"}}},
			Measuring: hifun.Prop{Name: "q"},
			Ops:       []hifun.Operation{{Op: hifun.OpSum}},
		}},
		{"weird restriction op", &hifun.Query{
			Grouping:    hifun.Prop{Name: "g"},
			GroupRestrs: []hifun.Restriction{{Op: "~=", Value: rdf.NewInteger(1)}},
			Measuring:   hifun.Prop{Name: "q"},
			Ops:         []hifun.Operation{{Op: hifun.OpSum}},
		}},
	}
	for _, c := range cases {
		ok, reasons := Expressible(c.q)
		if ok {
			t.Errorf("%s: should NOT be expressible", c.name)
		}
		if len(reasons) == 0 {
			t.Errorf("%s: no reasons reported", c.name)
		}
	}
}

// TestSessionQueriesAlwaysExpressible: whatever the session builds from
// clicks is, by construction, expressible.
func TestSessionQueriesAlwaysExpressible(t *testing.T) {
	s := productSession(t)
	s.ClickClass(pe("Laptop"))
	s.ClickGroupBy(GroupSpec{Path: pathOf(pe("manufacturer"), pe("origin"))})
	s.ClickGroupBy(GroupSpec{Path: pathOf(pe("releaseDate")), Derive: "YEAR"})
	s.ClickAggregate(MeasureSpec{Path: pathOf(pe("price"))}, hifun.Operation{Op: hifun.OpAvg})
	q, err := s.BuildHIFUNQuery()
	if err != nil {
		t.Fatal(err)
	}
	if ok, reasons := Expressible(q); !ok {
		t.Errorf("session-built query not expressible: %v", reasons)
	}
}
