package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"rdfanalytics/internal/facet"
	"rdfanalytics/internal/hifun"
	"rdfanalytics/internal/rdf"
)

// Chapter 7 — the OLAP operators the model supports (Fig 7.1): roll-up,
// drill-down, slice and dice map to interaction-model actions and re-run the
// analytic query; pivot is a pure transformation of the answer table.

// RollUp coarsens the analysis by removing the i-th grouping attribute
// (e.g. from (branch, product) to (branch)) and re-runs the query —
// Fig 7.2's upward direction. In the dimension-hierarchy reading, removing
// the tail of an expanded path (origin from manufacturer/origin) also rolls
// up; that is expressed by replacing the GroupSpec.
func (s *Session) RollUp(i int) (*hifun.Answer, error) {
	l := s.top()
	if i < 0 || i >= len(l.analytics.GroupBy) {
		return nil, fmt.Errorf("core: no grouping attribute %d", i)
	}
	l.analytics.GroupBy = append(l.analytics.GroupBy[:i:i], l.analytics.GroupBy[i+1:]...)
	return s.RunAnalytics()
}

// RollUpPath shortens a grouping path by one hop: grouping by
// manufacturer/origin becomes grouping by manufacturer (climbing the
// dimension hierarchy).
func (s *Session) RollUpPath(i int) (*hifun.Answer, error) {
	l := s.top()
	if i < 0 || i >= len(l.analytics.GroupBy) {
		return nil, fmt.Errorf("core: no grouping attribute %d", i)
	}
	g := l.analytics.GroupBy[i]
	if len(g.Path) <= 1 {
		return nil, errors.New("core: path has no coarser level")
	}
	l.analytics.GroupBy[i] = GroupSpec{Path: g.Path[:len(g.Path)-1], Derive: g.Derive}
	return s.RunAnalytics()
}

// DrillDown refines the analysis by adding a grouping attribute — Fig 7.2's
// downward direction.
func (s *Session) DrillDown(spec GroupSpec) (*hifun.Answer, error) {
	l := s.top()
	l.analytics.GroupBy = append(l.analytics.GroupBy, spec)
	return s.RunAnalytics()
}

// DrillDownPath extends the i-th grouping path by one hop (descending the
// dimension hierarchy, e.g. manufacturer -> manufacturer/origin).
func (s *Session) DrillDownPath(i int, step facet.PathStep) (*hifun.Answer, error) {
	l := s.top()
	if i < 0 || i >= len(l.analytics.GroupBy) {
		return nil, fmt.Errorf("core: no grouping attribute %d", i)
	}
	g := l.analytics.GroupBy[i]
	l.analytics.GroupBy[i] = GroupSpec{Path: append(append(facet.Path{}, g.Path...), step), Derive: g.Derive}
	return s.RunAnalytics()
}

// Slice fixes one dimension to a single value (a faceted click) and removes
// it from the grouping, then re-runs: the OLAP slice.
func (s *Session) Slice(path facet.Path, v rdf.Term) (*hifun.Answer, error) {
	s.ClickValue(path, v)
	l := s.top()
	for i, g := range l.analytics.GroupBy {
		if g.Path.Equal(path) {
			l.analytics.GroupBy = append(l.analytics.GroupBy[:i:i], l.analytics.GroupBy[i+1:]...)
			break
		}
	}
	return s.RunAnalytics()
}

// Dice restricts a dimension to a value set (multi-select click), keeping
// the dimension in the grouping: the OLAP dice.
func (s *Session) Dice(path facet.Path, vs []rdf.Term) (*hifun.Answer, error) {
	s.ClickValueSet(path, vs)
	return s.RunAnalytics()
}

// PivotTable is a 2-dimensional cross-tabulation of an answer.
type PivotTable struct {
	RowDim, ColDim string
	Rows           []rdf.Term
	Cols           []rdf.Term
	// Cells[i][j] is the measure for (Rows[i], Cols[j]); zero Term = empty.
	Cells [][]rdf.Term
}

// Pivot cross-tabulates a two-dimensional answer: the first grouping column
// becomes rows, the second becomes columns (swap to pivot the other way).
// measureIdx selects the measure column when several operations ran.
func Pivot(a *hifun.Answer, swap bool, measureIdx int) (*PivotTable, error) {
	if len(a.GroupCols) != 2 {
		return nil, fmt.Errorf("core: pivot needs exactly 2 grouping columns, have %d", len(a.GroupCols))
	}
	if measureIdx < 0 || measureIdx >= len(a.MeasureCols) {
		return nil, fmt.Errorf("core: no measure column %d", measureIdx)
	}
	ri, ci := 0, 1
	if swap {
		ri, ci = 1, 0
	}
	pt := &PivotTable{RowDim: a.GroupCols[ri], ColDim: a.GroupCols[ci]}
	rowSet := map[rdf.Term]int{}
	colSet := map[rdf.Term]int{}
	for _, row := range a.Rows {
		if _, ok := rowSet[row[ri]]; !ok {
			rowSet[row[ri]] = 0
			pt.Rows = append(pt.Rows, row[ri])
		}
		if _, ok := colSet[row[ci]]; !ok {
			colSet[row[ci]] = 0
			pt.Cols = append(pt.Cols, row[ci])
		}
	}
	sort.Slice(pt.Rows, func(i, j int) bool { return pt.Rows[i].Less(pt.Rows[j]) })
	sort.Slice(pt.Cols, func(i, j int) bool { return pt.Cols[i].Less(pt.Cols[j]) })
	for i, r := range pt.Rows {
		rowSet[r] = i
	}
	for j, c := range pt.Cols {
		colSet[c] = j
	}
	pt.Cells = make([][]rdf.Term, len(pt.Rows))
	for i := range pt.Cells {
		pt.Cells[i] = make([]rdf.Term, len(pt.Cols))
	}
	mi := len(a.GroupCols) + measureIdx
	for _, row := range a.Rows {
		pt.Cells[rowSet[row[ri]]][colSet[row[ci]]] = row[mi]
	}
	return pt, nil
}

// String renders the pivot table.
func (pt *PivotTable) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s \\ %s", pt.RowDim, pt.ColDim)
	for _, c := range pt.Cols {
		fmt.Fprintf(&sb, "\t%s", c.LocalName())
	}
	sb.WriteByte('\n')
	for i, r := range pt.Rows {
		sb.WriteString(r.LocalName())
		for j := range pt.Cols {
			v := ""
			if !pt.Cells[i][j].IsZero() {
				v = pt.Cells[i][j].LocalName()
			}
			fmt.Fprintf(&sb, "\t%s", v)
		}
		_ = i
		sb.WriteByte('\n')
	}
	return sb.String()
}
