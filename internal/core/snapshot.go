package core

import (
	"encoding/json"
	"fmt"

	"rdfanalytics/internal/facet"
	"rdfanalytics/internal/hifun"
	"rdfanalytics/internal/rdf"
)

// Session snapshots: the full interaction state — every level's click
// history and analytic selections — serialized as JSON, so a session can be
// bookmarked, shared and replayed against the same base graph. Nested
// levels are reconstructed by re-running the analytics that produced them.

type termJSON struct {
	Kind     string `json:"kind"`
	Value    string `json:"value"`
	Datatype string `json:"datatype,omitempty"`
	Lang     string `json:"lang,omitempty"`
}

func termToJSON(t rdf.Term) termJSON {
	j := termJSON{Value: t.Value, Datatype: t.Datatype, Lang: t.Lang}
	switch t.Kind {
	case rdf.KindIRI:
		j.Kind = "iri"
	case rdf.KindBlank:
		j.Kind = "blank"
	default:
		j.Kind = "literal"
	}
	return j
}

func termFromJSON(j termJSON) rdf.Term {
	switch j.Kind {
	case "iri":
		return rdf.NewIRI(j.Value)
	case "blank":
		return rdf.NewBlank(j.Value)
	default:
		return rdf.Term{Kind: rdf.KindLiteral, Value: j.Value, Datatype: j.Datatype, Lang: j.Lang}
	}
}

type stepJSON struct {
	P       string `json:"p"`
	Inverse bool   `json:"inverse,omitempty"`
}

func pathToJSON(p facet.Path) []stepJSON {
	out := make([]stepJSON, len(p))
	for i, s := range p {
		out[i] = stepJSON{P: s.P.Value, Inverse: s.Inverse}
	}
	return out
}

func pathFromJSON(steps []stepJSON) facet.Path {
	out := make(facet.Path, len(steps))
	for i, s := range steps {
		out[i] = facet.PathStep{P: rdf.NewIRI(s.P), Inverse: s.Inverse}
	}
	return out
}

// actionJSON is one replayable interaction step.
type actionJSON struct {
	// Kind: class | value | valueset | range | pivot
	Kind   string     `json:"kind"`
	Class  string     `json:"class,omitempty"`
	Path   []stepJSON `json:"path,omitempty"`
	Op     string     `json:"op,omitempty"`
	Value  *termJSON  `json:"value,omitempty"`
	Values []termJSON `json:"values,omitempty"`
}

type groupJSON struct {
	Path   []stepJSON `json:"path"`
	Derive string     `json:"derive,omitempty"`
}

type opJSON struct {
	Op            string    `json:"op"`
	Distinct      bool      `json:"distinct,omitempty"`
	RestrictOp    string    `json:"restrictOp,omitempty"`
	RestrictValue *termJSON `json:"restrictValue,omitempty"`
}

type levelJSON struct {
	NS      string       `json:"ns"`
	Actions []actionJSON `json:"actions"`
	GroupBy []groupJSON  `json:"groupBy,omitempty"`
	Measure *groupJSON   `json:"measure,omitempty"`
	Ops     []opJSON     `json:"ops,omitempty"`
	Seed    []termJSON   `json:"seed,omitempty"`
}

// SnapshotJSON is the serialized session.
type SnapshotJSON struct {
	Version int         `json:"version"`
	Levels  []levelJSON `json:"levels"`
}

// Because sessions only record resulting states, the replayable action list
// is tracked alongside the history.
type actionLog struct {
	actions []actionJSON
}

// Snapshot serializes the session. It relies on the per-level action logs
// the Session records for every click.
func (s *Session) Snapshot() ([]byte, error) {
	snap := SnapshotJSON{Version: 1}
	for _, l := range s.levels {
		lj := levelJSON{NS: l.ns, Actions: l.log.actions}
		start := l.history[0]
		for _, t := range start.Int.Seed {
			lj.Seed = append(lj.Seed, termToJSON(t))
		}
		for _, g := range l.analytics.GroupBy {
			lj.GroupBy = append(lj.GroupBy, groupJSON{Path: pathToJSON(g.Path), Derive: g.Derive})
		}
		if len(l.analytics.Measure.Path) > 0 || l.analytics.Measure.Derive != "" {
			lj.Measure = &groupJSON{Path: pathToJSON(l.analytics.Measure.Path), Derive: l.analytics.Measure.Derive}
		}
		for _, op := range l.analytics.Ops {
			oj := opJSON{Op: string(op.Op), Distinct: op.Distinct, RestrictOp: op.RestrictOp}
			if op.RestrictOp != "" {
				t := termToJSON(op.RestrictValue)
				oj.RestrictValue = &t
			}
			lj.Ops = append(lj.Ops, oj)
		}
		snap.Levels = append(snap.Levels, lj)
	}
	return json.MarshalIndent(snap, "", "  ")
}

// RestoreSession rebuilds a session over base from a snapshot: each level's
// actions are replayed; nested levels re-run the outer analytics and reload
// the answer.
func RestoreSession(base *rdf.Graph, data []byte) (*Session, error) {
	var snap SnapshotJSON
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("core: bad snapshot: %w", err)
	}
	if snap.Version != 1 {
		return nil, fmt.Errorf("core: unsupported snapshot version %d", snap.Version)
	}
	if len(snap.Levels) == 0 {
		return nil, fmt.Errorf("core: empty snapshot")
	}
	var s *Session
	for li, lj := range snap.Levels {
		if li == 0 {
			if len(lj.Seed) > 0 {
				seed := make([]rdf.Term, len(lj.Seed))
				for i, t := range lj.Seed {
					seed[i] = termFromJSON(t)
				}
				s = NewSessionFrom(base, lj.NS, seed)
			} else {
				s = NewSession(base, lj.NS)
			}
		} else {
			// Descend: the previous level's analytics produce this dataset.
			if _, err := s.RunAnalytics(); err != nil {
				return nil, fmt.Errorf("core: level %d: re-running outer analytics: %w", li, err)
			}
			if err := s.LoadAnswerAsDataset(); err != nil {
				return nil, fmt.Errorf("core: level %d: %w", li, err)
			}
		}
		for ai, a := range lj.Actions {
			if err := s.replay(a); err != nil {
				return nil, fmt.Errorf("core: level %d action %d: %w", li, ai, err)
			}
		}
		for _, g := range lj.GroupBy {
			s.ClickGroupBy(GroupSpec{Path: pathFromJSON(g.Path), Derive: g.Derive})
		}
		for _, oj := range lj.Ops {
			m := MeasureSpec{}
			if lj.Measure != nil {
				m = MeasureSpec{Path: pathFromJSON(lj.Measure.Path), Derive: lj.Measure.Derive}
			}
			op := hifun.Operation{Op: hifun.AggOp(oj.Op), Distinct: oj.Distinct, RestrictOp: oj.RestrictOp}
			if oj.RestrictValue != nil {
				op.RestrictValue = termFromJSON(*oj.RestrictValue)
			}
			s.ClickAggregate(m, op)
		}
	}
	return s, nil
}

func (s *Session) replay(a actionJSON) error {
	switch a.Kind {
	case "class":
		s.ClickClass(rdf.NewIRI(a.Class))
	case "value":
		if a.Value == nil {
			return fmt.Errorf("value action without value")
		}
		s.ClickValue(pathFromJSON(a.Path), termFromJSON(*a.Value))
	case "valueset":
		vs := make([]rdf.Term, len(a.Values))
		for i, v := range a.Values {
			vs[i] = termFromJSON(v)
		}
		s.ClickValueSet(pathFromJSON(a.Path), vs)
	case "range":
		if a.Value == nil {
			return fmt.Errorf("range action without value")
		}
		s.ClickRange(pathFromJSON(a.Path), a.Op, termFromJSON(*a.Value))
	case "pivot":
		p := pathFromJSON(a.Path)
		if len(p) != 1 {
			return fmt.Errorf("pivot action needs exactly one step")
		}
		s.SwitchFocus(p[0])
	default:
		return fmt.Errorf("unknown action kind %q", a.Kind)
	}
	return nil
}
