package core

import (
	"fmt"
	"strings"
	"time"

	"rdfanalytics/internal/facet"
	"rdfanalytics/internal/rdf"
)

// This file is the procedural specification of §5.4: the algorithm that
// implements the state space (Algorithm 5). ComputeUIState assembles
// everything the GUI of Fig 5.1 renders for the current state: the objects
// of the right frame (Part A), the class facet tree (Part B), the property
// facets with their transition markers and G/Σ button states (Part C), the
// breadcrumb (intention) and the analytics selections.

// ObjectCard is one entry of the right frame: an object with a few of its
// property values for display.
type ObjectCard struct {
	Object rdf.Term
	Type   rdf.Term
	Props  []PropValue
}

// PropValue is a displayed property/value pair.
type PropValue struct {
	P rdf.Term
	V rdf.Term
}

// FacetView is a property facet as rendered: the facet plus its button
// states (whether it is currently a grouping attribute or the measure).
type FacetView struct {
	facet.Facet
	// Grouped marks the facet's G button as active.
	Grouped bool
	// Measured marks the facet's Σ button as active.
	Measured bool
	// Numeric reports whether the facet's values are (mostly) numeric, so
	// the GUI can offer range filters and aggregate functions beyond COUNT.
	Numeric bool
	// Buckets holds equal-width interval buckets for numeric facets (nil
	// when the facet has too few distinct numeric values): the data behind
	// the range-filter form of Example 3.
	Buckets []facet.Bucket
}

// UIState is the complete render model of one interaction state.
type UIState struct {
	Objects      []ObjectCard
	TotalObjects int
	Classes      []facet.ClassNode
	Facets       []FacetView
	Breadcrumb   string
	Analytics    Analytics
	Depth        int
	HIFUN        string // the current analytic query, if expressible
}

// ComputeUIState runs Algorithm 5 for the current state: Part A computes
// the right-frame objects, Part B the class facets, Part C the property
// facets. maxObjects caps the right frame (paging).
func (s *Session) ComputeUIState(maxObjects int, includeInverse bool) *UIState {
	defer observeSince(uiStateSeconds, time.Now())
	l := s.top()
	st := l.state()
	ui := &UIState{
		TotalObjects: st.Ext.Len(),
		Breadcrumb:   st.Int.String(),
		Analytics:    l.analytics,
		Depth:        len(s.levels),
	}
	// Part A: objects of the right frame.
	items := st.Ext.Items()
	if maxObjects > 0 && len(items) > maxObjects {
		items = items[:maxObjects]
	}
	typeT := rdf.NewIRI(rdf.RDFType)
	for _, o := range items {
		card := ObjectCard{Object: o}
		l.model.G.Match(o, rdf.Any, rdf.Any, func(t rdf.Triple) bool {
			if t.P == typeT {
				if card.Type.IsZero() {
					card.Type = t.O
				}
				return true
			}
			if len(card.Props) < 8 {
				card.Props = append(card.Props, PropValue{P: t.P, V: t.O})
			}
			return true
		})
		ui.Objects = append(ui.Objects, card)
	}
	// Part B: class facets.
	ui.Classes = l.model.ClassFacet(st)
	// Part C: property facets with button states.
	for _, f := range l.model.PropertyFacets(st, includeInverse) {
		fv := FacetView{Facet: f}
		p1 := facet.Path{{P: f.P, Inverse: f.Inverse}}
		for _, g := range l.analytics.GroupBy {
			if g.Path.Equal(p1) {
				fv.Grouped = true
			}
		}
		if l.analytics.Measure.Path.Equal(p1) {
			fv.Measured = true
		}
		numeric := 0
		for _, vc := range f.Values {
			if vc.Value.IsNumeric() {
				numeric++
			}
		}
		fv.Numeric = len(f.Values) > 0 && numeric*2 > len(f.Values)
		if fv.Numeric && !f.Inverse {
			fv.Buckets = l.model.NumericBuckets(st, f.P, 5)
		}
		ui.Facets = append(ui.Facets, fv)
	}
	if q, err := s.BuildHIFUNQuery(); err == nil {
		ui.HIFUN = q.String()
	}
	return ui
}

// RenderText renders the UI state as the two-frame text layout of Fig 5.1
// (left: facets, right: objects) for the terminal client.
func (ui *UIState) RenderText() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "── state: %s  [%d objects, level %d]\n", ui.Breadcrumb, ui.TotalObjects, ui.Depth)
	if ui.HIFUN != "" {
		fmt.Fprintf(&sb, "── analytics: %s\n", ui.HIFUN)
	}
	sb.WriteString("── classes\n")
	var walk func(nodes []facet.ClassNode, depth int)
	walk = func(nodes []facet.ClassNode, depth int) {
		for _, n := range nodes {
			fmt.Fprintf(&sb, "%s%s (%d)\n", strings.Repeat("  ", depth+1), n.Class.LocalName(), n.Count)
			walk(n.Children, depth+1)
		}
	}
	walk(ui.Classes, 0)
	sb.WriteString("── facets\n")
	for _, f := range ui.Facets {
		name := f.P.LocalName()
		if f.Inverse {
			name = "^" + name
		}
		marks := ""
		if f.Grouped {
			marks += " [G]"
		}
		if f.Measured {
			marks += " [Σ]"
		}
		fmt.Fprintf(&sb, "  by %s%s\n", name, marks)
		for i, vc := range f.Values {
			if i >= 8 {
				fmt.Fprintf(&sb, "      … %d more\n", len(f.Values)-i)
				break
			}
			fmt.Fprintf(&sb, "      %s (%d)\n", vc.Value.LocalName(), vc.Count)
		}
	}
	sb.WriteString("── objects\n")
	for _, o := range ui.Objects {
		typ := ""
		if !o.Type.IsZero() {
			typ = " : " + o.Type.LocalName()
		}
		fmt.Fprintf(&sb, "  %s%s\n", o.Object.LocalName(), typ)
	}
	return sb.String()
}
