package userstudy

import (
	"strings"
	"testing"

	"rdfanalytics/internal/core"
	"rdfanalytics/internal/datagen"
	"rdfanalytics/internal/rdf"
)

// TestTasksExecutable: every task's scripted solution actually succeeds
// against the system — the "testing implementability" part of Chapter 8.
func TestTasksExecutable(t *testing.T) {
	base := datagen.SmallProducts()
	rdf.Materialize(base)
	for _, task := range Tasks {
		s := core.NewSession(base.Clone(), datagen.ExampleNS)
		if err := task.Steps(s); err != nil {
			t.Errorf("%s (%s): %v", task.ID, task.Desc, err)
			continue
		}
		if task.WantRows > 0 {
			ans := s.Answer()
			if ans == nil || len(ans.Rows) != task.WantRows {
				t.Errorf("%s: answer rows mismatch", task.ID)
			}
		}
	}
}

func TestRunShape(t *testing.T) {
	results, err := Run(Config{UsersPerLevel: 6, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(Tasks)*2 {
		t.Fatalf("results = %d, want %d", len(results), len(Tasks)*2)
	}
	for _, r := range results {
		if r.Attempts != 18 { // 6 users x 3 levels
			t.Errorf("%s/%s: attempts = %d", r.Task.ID, r.Condition, r.Attempts)
		}
		if r.MeanRating < 1 || r.MeanRating > 5 {
			t.Errorf("%s/%s: rating %v out of scale", r.Task.ID, r.Condition, r.MeanRating)
		}
	}
}

// TestPaperShape: the qualitative findings of Figs 8.1–8.2 hold — the UI
// condition dominates raw SPARQL in both completion and rating, and the
// SPARQL condition degrades sharply with task complexity.
func TestPaperShape(t *testing.T) {
	results, err := Run(Config{UsersPerLevel: 20, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]TaskResult{}
	for _, r := range results {
		byKey[r.Task.ID+"/"+r.Condition.String()] = r
	}
	for _, task := range Tasks {
		ui := byKey[task.ID+"/RDF-Analytics UI"]
		sp := byKey[task.ID+"/raw SPARQL"]
		if ui.CompletionRate() <= sp.CompletionRate() {
			t.Errorf("%s: UI completion %.1f%% not above SPARQL %.1f%%",
				task.ID, ui.CompletionRate(), sp.CompletionRate())
		}
		if ui.MeanRating <= sp.MeanRating {
			t.Errorf("%s: UI rating %.2f not above SPARQL %.2f",
				task.ID, ui.MeanRating, sp.MeanRating)
		}
	}
	// Complexity effect in the SPARQL arm: the hardest task completes less
	// often than the easiest.
	t1 := byKey["T1/raw SPARQL"].CompletionRate()
	t8 := byKey["T8/raw SPARQL"].CompletionRate()
	if t8 >= t1 {
		t.Errorf("SPARQL arm: T8 (%.1f%%) should underperform T1 (%.1f%%)", t8, t1)
	}
	// UI completion stays high even for complex tasks.
	if ui := byKey["T8/RDF-Analytics UI"]; ui.CompletionRate() < 60 {
		t.Errorf("UI completion for T8 too low: %.1f%%", ui.CompletionRate())
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a, _ := Run(Config{UsersPerLevel: 5, Seed: 3})
	b, _ := Run(Config{UsersPerLevel: 5, Seed: 3})
	for i := range a {
		if a[i].Completed != b[i].Completed || a[i].MeanRating != b[i].MeanRating {
			t.Fatal("same seed, different outcomes")
		}
	}
}

func TestSummarize(t *testing.T) {
	results, _ := Run(Config{UsersPerLevel: 8, Seed: 5})
	sums := Summarize(results)
	if len(sums) != 2 {
		t.Fatalf("summaries = %d", len(sums))
	}
	if sums[0].Condition != UI || sums[1].Condition != RawSPARQL {
		t.Fatalf("order: %+v", sums)
	}
	if sums[0].CompletionRate <= sums[1].CompletionRate {
		t.Errorf("aggregate: UI %.1f%% vs SPARQL %.1f%%",
			sums[0].CompletionRate, sums[1].CompletionRate)
	}
}

// TestExpertiseGradient: in the SPARQL arm, experts complete more than
// novices; in the UI arm the gradient is far smaller — the paper's central
// accessibility claim.
func TestExpertiseGradient(t *testing.T) {
	results, err := Run(Config{UsersPerLevel: 25, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	var sparqlNovice, sparqlExpert, uiNovice, uiExpert struct{ completed, attempts int }
	for _, r := range results {
		for _, lr := range r.ByLevel {
			switch {
			case r.Condition == RawSPARQL && lr.Level == Novice:
				sparqlNovice.completed += lr.Completed
				sparqlNovice.attempts += lr.Attempts
			case r.Condition == RawSPARQL && lr.Level == Expert:
				sparqlExpert.completed += lr.Completed
				sparqlExpert.attempts += lr.Attempts
			case r.Condition == UI && lr.Level == Novice:
				uiNovice.completed += lr.Completed
				uiNovice.attempts += lr.Attempts
			case r.Condition == UI && lr.Level == Expert:
				uiExpert.completed += lr.Completed
				uiExpert.attempts += lr.Attempts
			}
		}
	}
	rate := func(c struct{ completed, attempts int }) float64 {
		return float64(c.completed) / float64(c.attempts)
	}
	if rate(sparqlExpert) <= rate(sparqlNovice) {
		t.Errorf("SPARQL arm: experts (%.2f) must outperform novices (%.2f)",
			rate(sparqlExpert), rate(sparqlNovice))
	}
	sparqlGap := rate(sparqlExpert) - rate(sparqlNovice)
	uiGap := rate(uiExpert) - rate(uiNovice)
	if uiGap >= sparqlGap {
		t.Errorf("UI expertise gap (%.2f) must be smaller than SPARQL's (%.2f)", uiGap, sparqlGap)
	}
	// Novices through the UI beat even experts writing SPARQL on average —
	// the accessibility headline.
	if rate(uiNovice) <= rate(sparqlExpert) {
		t.Errorf("UI novices (%.2f) should outperform SPARQL experts (%.2f)",
			rate(uiNovice), rate(sparqlExpert))
	}
	var sb strings.Builder
	WriteByExpertise(&sb, results[:2])
	if !strings.Contains(sb.String(), "novice") {
		t.Errorf("breakdown table:\n%s", sb.String())
	}
}

func TestWriteTables(t *testing.T) {
	results, _ := Run(Config{UsersPerLevel: 4, Seed: 9})
	var f81, f82 strings.Builder
	WriteFig81(&f81, results)
	WriteFig82(&f82, results)
	if !strings.Contains(f81.String(), "T8") || !strings.Contains(f81.String(), "raw SPARQL") {
		t.Errorf("fig 8.1 table:\n%s", f81.String())
	}
	if !strings.Contains(f82.String(), "RDF-Analytics UI") {
		t.Errorf("fig 8.2 table:\n%s", f82.String())
	}
}
