// Package userstudy simulates the task-based evaluation of Chapter 8
// (Figs 8.1–8.2). The paper ran a study with human participants who carried
// out analytic tasks of increasing complexity with RDF-ANALYTICS and rated
// the experience; we cannot run humans, so we substitute a calibrated
// stochastic user model (see DESIGN.md): simulated users of three expertise
// levels attempt each task in two conditions — through the interaction
// model (UI) and by writing raw SPARQL (baseline). In the UI condition, a
// task is a scripted click sequence that is *actually executed* against a
// core.Session, so a completion also verifies the system can perform the
// task; the stochastic part models per-step user error. The reproduction
// target is the *shape* of the paper's findings: high completion and
// ratings through the UI across expertise levels, low completion for
// non-experts with raw SPARQL.
package userstudy

import (
	"fmt"
	"io"
	"math/rand"
	"strings"

	"rdfanalytics/internal/core"
	"rdfanalytics/internal/datagen"
	"rdfanalytics/internal/facet"
	"rdfanalytics/internal/hifun"
	"rdfanalytics/internal/rdf"
)

// Expertise levels of simulated participants.
type Expertise int

// The three participant groups of the study.
const (
	Novice Expertise = iota
	Intermediate
	Expert
)

func (e Expertise) String() string {
	switch e {
	case Novice:
		return "novice"
	case Intermediate:
		return "intermediate"
	case Expert:
		return "expert"
	}
	return "unknown"
}

// Task is one evaluation task: a description, a complexity weight (1 =
// trivial faceted lookup … 5 = nested analytics), and the scripted click
// sequence that solves it through the interaction model.
type Task struct {
	ID         string
	Desc       string
	Complexity int
	// Steps is the solution script; each step is one UI action.
	Steps func(s *core.Session) error
	// WantRows sanity-checks the final answer (0 = no analytic answer).
	WantRows int
}

func pe(l string) rdf.Term { return rdf.NewIRI(datagen.ExampleNS + l) }

// Tasks are the eight tasks of the evaluation, spanning plain faceted
// search (T1–T2), simple analytics (T3–T5), path and range analytics
// (T6–T7) and nested analytics with HAVING (T8).
var Tasks = []Task{
	{
		ID: "T1", Desc: "Find all laptops", Complexity: 1,
		Steps: func(s *core.Session) error {
			s.ClickClass(pe("Laptop"))
			if s.State().Ext.Len() == 0 {
				return fmt.Errorf("no laptops")
			}
			return nil
		},
	},
	{
		ID: "T2", Desc: "Find laptops manufactured by DELL", Complexity: 1,
		Steps: func(s *core.Session) error {
			s.ClickClass(pe("Laptop"))
			s.ClickValue(facet.Path{{P: pe("manufacturer")}}, pe("DELL"))
			if s.State().Ext.Len() == 0 {
				return fmt.Errorf("empty result")
			}
			return nil
		},
	},
	{
		ID: "T3", Desc: "Average price of laptops", Complexity: 2,
		Steps: func(s *core.Session) error {
			s.ClickClass(pe("Laptop"))
			s.ClickAggregate(core.MeasureSpec{Path: facet.Path{{P: pe("price")}}},
				hifun.Operation{Op: hifun.OpAvg})
			_, err := s.RunAnalytics()
			return err
		},
		WantRows: 1,
	},
	{
		ID: "T4", Desc: "Count of laptops per manufacturer", Complexity: 2,
		Steps: func(s *core.Session) error {
			s.ClickClass(pe("Laptop"))
			s.ClickGroupBy(core.GroupSpec{Path: facet.Path{{P: pe("manufacturer")}}})
			s.ClickAggregate(core.MeasureSpec{}, hifun.Operation{Op: hifun.OpCount})
			_, err := s.RunAnalytics()
			return err
		},
		WantRows: 2,
	},
	{
		ID: "T5", Desc: "Max price per manufacturer", Complexity: 3,
		Steps: func(s *core.Session) error {
			s.ClickClass(pe("Laptop"))
			s.ClickGroupBy(core.GroupSpec{Path: facet.Path{{P: pe("manufacturer")}}})
			s.ClickAggregate(core.MeasureSpec{Path: facet.Path{{P: pe("price")}}},
				hifun.Operation{Op: hifun.OpMax})
			_, err := s.RunAnalytics()
			return err
		},
		WantRows: 2,
	},
	{
		ID: "T6", Desc: "Count of laptops grouped by the origin of their manufacturer", Complexity: 4,
		Steps: func(s *core.Session) error {
			s.ClickClass(pe("Laptop"))
			s.ClickGroupBy(core.GroupSpec{Path: facet.Path{{P: pe("manufacturer")}, {P: pe("origin")}}})
			s.ClickAggregate(core.MeasureSpec{}, hifun.Operation{Op: hifun.OpCount})
			_, err := s.RunAnalytics()
			return err
		},
		WantRows: 2,
	},
	{
		ID: "T7", Desc: "Average price of laptops with at least 2 USB ports, by manufacturer", Complexity: 4,
		Steps: func(s *core.Session) error {
			s.ClickClass(pe("Laptop"))
			s.ClickRange(facet.Path{{P: pe("USBPorts")}}, ">=", rdf.NewInteger(2))
			s.ClickGroupBy(core.GroupSpec{Path: facet.Path{{P: pe("manufacturer")}}})
			s.ClickAggregate(core.MeasureSpec{Path: facet.Path{{P: pe("price")}}},
				hifun.Operation{Op: hifun.OpAvg})
			_, err := s.RunAnalytics()
			return err
		},
		WantRows: 2,
	},
	{
		ID: "T8", Desc: "Manufacturers whose average laptop price exceeds 900 (nested/HAVING)", Complexity: 5,
		Steps: func(s *core.Session) error {
			s.ClickClass(pe("Laptop"))
			s.ClickGroupBy(core.GroupSpec{Path: facet.Path{{P: pe("manufacturer")}}})
			s.ClickAggregate(core.MeasureSpec{Path: facet.Path{{P: pe("price")}}},
				hifun.Operation{Op: hifun.OpAvg})
			ans, err := s.RunAnalytics()
			if err != nil {
				return err
			}
			if err := s.LoadAnswerAsDataset(); err != nil {
				return err
			}
			s.ClickRange(facet.Path{{P: rdf.NewIRI(hifun.AnswerNS + ans.MeasureCols[0])}},
				">", rdf.NewDecimal(900))
			if s.State().Ext.Len() == 0 {
				return fmt.Errorf("empty nested result")
			}
			return nil
		},
	},
}

// Condition is the study arm.
type Condition int

// The two study arms: the proposed UI and the raw-SPARQL baseline.
const (
	UI Condition = iota
	RawSPARQL
)

func (c Condition) String() string {
	if c == UI {
		return "RDF-Analytics UI"
	}
	return "raw SPARQL"
}

// LevelResult aggregates one expertise group within a task/condition cell.
type LevelResult struct {
	Level     Expertise
	Attempts  int
	Completed int
	RatingSum float64
}

// CompletionRate returns the group's completion percentage.
func (r LevelResult) CompletionRate() float64 {
	if r.Attempts == 0 {
		return 0
	}
	return 100 * float64(r.Completed) / float64(r.Attempts)
}

// MeanRating returns the group's mean 1–5 rating.
func (r LevelResult) MeanRating() float64 {
	if r.Attempts == 0 {
		return 0
	}
	return r.RatingSum / float64(r.Attempts)
}

// TaskResult aggregates one task in one condition.
type TaskResult struct {
	Task       Task
	Condition  Condition
	Attempts   int
	Completed  int
	MeanRating float64 // 1..5
	// ByLevel breaks the cell down by participant expertise.
	ByLevel []LevelResult
}

// CompletionRate returns the completion percentage.
func (r TaskResult) CompletionRate() float64 {
	if r.Attempts == 0 {
		return 0
	}
	return 100 * float64(r.Completed) / float64(r.Attempts)
}

// Config parameterizes the simulated study.
type Config struct {
	// UsersPerLevel is the number of simulated participants per expertise
	// level (default 10, i.e. 30 participants).
	UsersPerLevel int
	Seed          int64
}

// stepSuccess is the per-step probability a simulated user performs one UI
// action correctly, by expertise. The UI is click-based, so even novices
// rarely err; complexity multiplies the number of chances to fail.
var stepSuccess = map[Expertise]float64{
	Novice:       0.93,
	Intermediate: 0.97,
	Expert:       0.99,
}

// sparqlSuccess is the probability of writing a correct SPARQL query for a
// task of complexity 1, by expertise; each extra complexity point applies a
// multiplicative penalty (conjunctions, paths, grouping, HAVING).
var sparqlSuccess = map[Expertise]float64{
	Novice:       0.25,
	Intermediate: 0.60,
	Expert:       0.92,
}

const sparqlComplexityPenalty = 0.80

// Run simulates the study and returns one TaskResult per (task, condition).
func Run(cfg Config) ([]TaskResult, error) {
	if cfg.UsersPerLevel <= 0 {
		cfg.UsersPerLevel = 10
	}
	if cfg.Seed == 0 {
		cfg.Seed = 2023
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	base := datagen.SmallProducts()
	rdf.Materialize(base)
	var out []TaskResult
	for _, task := range Tasks {
		for _, cond := range []Condition{UI, RawSPARQL} {
			res := TaskResult{Task: task, Condition: cond}
			var ratingSum float64
			for _, level := range []Expertise{Novice, Intermediate, Expert} {
				lr := LevelResult{Level: level}
				for u := 0; u < cfg.UsersPerLevel; u++ {
					res.Attempts++
					lr.Attempts++
					ok, rating := attempt(rng, base, task, cond, level)
					if ok {
						res.Completed++
						lr.Completed++
					}
					ratingSum += rating
					lr.RatingSum += rating
				}
				res.ByLevel = append(res.ByLevel, lr)
			}
			res.MeanRating = ratingSum / float64(res.Attempts)
			out = append(out, res)
		}
	}
	return out, nil
}

// attempt simulates one participant on one task.
func attempt(rng *rand.Rand, base *rdf.Graph, task Task, cond Condition, level Expertise) (bool, float64) {
	switch cond {
	case UI:
		// The user must get `complexity` consecutive steps right...
		p := stepSuccess[level]
		for i := 0; i < task.Complexity; i++ {
			if rng.Float64() > p {
				// ...but the UI's guidance lets them retry once (the system
				// never leads into empty results, so errors are visible).
				if rng.Float64() > p {
					return false, rating(rng, false, cond, level)
				}
			}
		}
		// Execute the scripted solution for real: a completion claim is
		// only valid if the system actually supports the task.
		s := core.NewSession(base.Clone(), datagen.ExampleNS)
		if err := task.Steps(s); err != nil {
			return false, rating(rng, false, cond, level)
		}
		if task.WantRows > 0 {
			if a := s.Answer(); a == nil || len(a.Rows) != task.WantRows {
				return false, rating(rng, false, cond, level)
			}
		}
		return true, rating(rng, true, cond, level)
	default: // RawSPARQL
		p := sparqlSuccess[level]
		for i := 1; i < task.Complexity; i++ {
			p *= sparqlComplexityPenalty
		}
		ok := rng.Float64() < p
		return ok, rating(rng, ok, cond, level)
	}
}

// rating samples a 1–5 satisfaction score: completing through the UI is
// pleasant (4–5); completing via SPARQL is workmanlike (3–5); failing is
// frustrating in both (1–3, harsher for SPARQL).
func rating(rng *rand.Rand, completed bool, cond Condition, level Expertise) float64 {
	switch {
	case completed && cond == UI:
		return 4 + rng.Float64()
	case completed:
		return 3 + 2*rng.Float64()
	case cond == UI:
		return 2 + rng.Float64()*1.5
	default:
		return 1 + rng.Float64()*1.5
	}
}

// Summary aggregates over all tasks (Fig 8.2).
type Summary struct {
	Condition      Condition
	CompletionRate float64
	MeanRating     float64
}

// Summarize computes per-condition totals.
func Summarize(results []TaskResult) []Summary {
	agg := map[Condition]*Summary{}
	counts := map[Condition]int{}
	attempts := map[Condition]int{}
	completed := map[Condition]int{}
	for _, r := range results {
		if _, ok := agg[r.Condition]; !ok {
			agg[r.Condition] = &Summary{Condition: r.Condition}
		}
		agg[r.Condition].MeanRating += r.MeanRating
		counts[r.Condition]++
		attempts[r.Condition] += r.Attempts
		completed[r.Condition] += r.Completed
	}
	var out []Summary
	for _, cond := range []Condition{UI, RawSPARQL} {
		s := agg[cond]
		s.MeanRating /= float64(counts[cond])
		s.CompletionRate = 100 * float64(completed[cond]) / float64(attempts[cond])
		out = append(out, *s)
	}
	return out
}

// WriteFig81 renders the per-task table behind Fig 8.1.
func WriteFig81(w io.Writer, results []TaskResult) {
	fmt.Fprintf(w, "%-4s %-68s %-18s %12s %8s\n", "Task", "Description", "Condition", "Completion", "Rating")
	fmt.Fprintln(w, strings.Repeat("-", 116))
	for _, r := range results {
		fmt.Fprintf(w, "%-4s %-68s %-18s %11.1f%% %8.2f\n",
			r.Task.ID, r.Task.Desc, r.Condition, r.CompletionRate(), r.MeanRating)
	}
}

// WriteByExpertise renders the per-expertise breakdown of Fig 8.1: how the
// gap between the UI and raw SPARQL varies with participant skill.
func WriteByExpertise(w io.Writer, results []TaskResult) {
	fmt.Fprintf(w, "%-4s %-18s %-14s %12s %8s\n", "Task", "Condition", "Expertise", "Completion", "Rating")
	fmt.Fprintln(w, strings.Repeat("-", 62))
	for _, r := range results {
		for _, lr := range r.ByLevel {
			fmt.Fprintf(w, "%-4s %-18s %-14s %11.1f%% %8.2f\n",
				r.Task.ID, r.Condition, lr.Level, lr.CompletionRate(), lr.MeanRating())
		}
	}
}

// WriteFig82 renders the aggregate table behind Fig 8.2.
func WriteFig82(w io.Writer, results []TaskResult) {
	fmt.Fprintf(w, "%-18s %12s %8s\n", "Condition", "Completion", "Rating")
	fmt.Fprintln(w, strings.Repeat("-", 42))
	for _, s := range Summarize(results) {
		fmt.Fprintf(w, "%-18s %11.1f%% %8.2f\n", s.Condition, s.CompletionRate, s.MeanRating)
	}
}
