package resilience

import (
	"sync"
	"time"
)

// Answer is one cached /sparql response: the fully rendered body plus the
// metadata needed to replay it faithfully and to decide freshness. Version
// is the graph version the answer was computed against; When is the fill
// time, used to bound how stale a degraded-mode hit may be.
type Answer struct {
	Body        []byte
	ContentType string
	Status      int
	Rows        int
	Shape       string // fingerprint ID, for per-shape metrics on replay
	TraceID     string // trace retained for the execution that filled this entry
	Version     uint64
	When        time.Time
}

// negEntry is a remembered parse/plan failure. Such errors depend only on
// the query text (never on graph contents), so they carry no version — just
// a short TTL so a fixed grammar bug or lifted limit is picked up quickly.
type negEntry struct {
	status int
	reason string
	msg    string
	when   time.Time
}

// AnswerCache is the fingerprint answer cache: a byte-bounded LRU of
// rendered responses keyed by FingerprintID × raw query text (the raw text
// keeps constants, datatypes and timezones distinct — the fingerprint alone
// normalizes them away, see CacheKey), invalidated by graph-version
// comparison at lookup time rather than by eager purging, plus a small
// negative cache for parse errors. A nil *AnswerCache disables caching:
// every method is a safe no-op/miss.
type AnswerCache struct {
	lru *SizedLRU[*Answer]

	negMu  sync.Mutex
	neg    map[string]negEntry
	negTTL time.Duration
}

// entryOverhead approximates the per-entry bookkeeping cost (struct, map
// slot, list pointers, key) added to Body length for byte accounting.
const entryOverhead = 256

// maxNegEntries bounds the negative cache; parse errors are tiny but the
// key is attacker-controlled query text, so cap the population.
const maxNegEntries = 1024

// DefaultNegativeTTL is how long a remembered parse/plan error is served
// before the query is re-parsed.
const DefaultNegativeTTL = 5 * time.Second

// NewAnswerCache builds a cache bounded to maxBytes of rendered responses.
// negTTL <= 0 selects DefaultNegativeTTL. onEvict (may be nil) fires for
// every size-pressure eviction, for metrics. maxBytes <= 0 returns nil
// (caching disabled).
func NewAnswerCache(maxBytes int64, negTTL time.Duration, onEvict func(key string, size int64)) *AnswerCache {
	if maxBytes <= 0 {
		return nil
	}
	if negTTL <= 0 {
		negTTL = DefaultNegativeTTL
	}
	return &AnswerCache{
		lru:    NewSizedLRU[*Answer](maxBytes, onEvict),
		neg:    map[string]negEntry{},
		negTTL: negTTL,
	}
}

// CacheKey derives the answer-cache key. The structural fingerprint
// normalizes every constant to "$", so two queries differing only in a
// literal, datatype or timezone share a fingerprint; embedding the raw
// query text keeps their answers separate while the fingerprint prefix
// keeps shape-level locality for eviction statistics.
func CacheKey(fingerprintID, rawQuery string) string {
	return fingerprintID + "\x00" + rawQuery
}

// Enabled reports whether the cache can hold anything.
func (c *AnswerCache) Enabled() bool { return c != nil }

// Lookup returns a fresh hit: an entry computed against exactly the current
// graph version. Entries from older versions are left resident (they may
// still satisfy a degraded-mode stale lookup) and reported as a miss.
func (c *AnswerCache) Lookup(key string, version uint64) (*Answer, bool) {
	if c == nil {
		return nil, false
	}
	a, ok := c.lru.Get(key)
	if !ok || a.Version != version {
		return nil, false
	}
	return a, true
}

// LookupStale returns a hit regardless of graph version provided the entry
// was filled within the staleness window — the degraded-mode read path.
// window <= 0 disables stale serving.
func (c *AnswerCache) LookupStale(key string, now time.Time, window time.Duration) (*Answer, bool) {
	if c == nil || window <= 0 {
		return nil, false
	}
	a, ok := c.lru.Get(key)
	if !ok || now.Sub(a.When) > window {
		return nil, false
	}
	return a, true
}

// Store inserts a rendered answer. The caller is responsible for checking
// the graph version did not change during execution before filling.
func (c *AnswerCache) Store(key string, a *Answer) {
	if c == nil || a == nil {
		return
	}
	c.lru.Put(key, a, int64(len(a.Body)+len(a.ContentType)+len(key))+entryOverhead)
}

// Invalidate drops one positive entry (e.g. after its replay proved
// unusable).
func (c *AnswerCache) Invalidate(key string) {
	if c == nil {
		return
	}
	c.lru.Delete(key)
}

// LookupNegative returns a remembered parse/plan failure for the query, if
// it is still within TTL.
func (c *AnswerCache) LookupNegative(query string, now time.Time) (status int, reason, msg string, ok bool) {
	if c == nil {
		return 0, "", "", false
	}
	c.negMu.Lock()
	defer c.negMu.Unlock()
	e, found := c.neg[query]
	if !found {
		return 0, "", "", false
	}
	if now.Sub(e.when) > c.negTTL {
		delete(c.neg, query)
		return 0, "", "", false
	}
	return e.status, e.reason, e.msg, true
}

// StoreNegative remembers a parse/plan failure for the query.
func (c *AnswerCache) StoreNegative(query string, status int, reason, msg string, now time.Time) {
	if c == nil {
		return
	}
	c.negMu.Lock()
	defer c.negMu.Unlock()
	if len(c.neg) >= maxNegEntries {
		// Crude but bounded: drop everything expired, and if still full,
		// start over. Parse errors are cheap to recompute.
		for k, e := range c.neg {
			if now.Sub(e.when) > c.negTTL {
				delete(c.neg, k)
			}
		}
		if len(c.neg) >= maxNegEntries {
			c.neg = map[string]negEntry{}
		}
	}
	c.neg[query] = negEntry{status: status, reason: reason, msg: msg, when: now}
}

// Bytes returns the accounted size of resident positive entries.
func (c *AnswerCache) Bytes() int64 {
	if c == nil {
		return 0
	}
	return c.lru.Bytes()
}

// Entries returns the number of resident positive entries.
func (c *AnswerCache) Entries() int {
	if c == nil {
		return 0
	}
	return c.lru.Len()
}

// Evictions returns the lifetime count of size-pressure evictions.
func (c *AnswerCache) Evictions() uint64 {
	if c == nil {
		return 0
	}
	return c.lru.Evictions()
}

// Purge drops every positive and negative entry.
func (c *AnswerCache) Purge() {
	if c == nil {
		return
	}
	c.lru.Purge()
	c.negMu.Lock()
	c.neg = map[string]negEntry{}
	c.negMu.Unlock()
}
