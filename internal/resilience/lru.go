// Package resilience is the server-wide overload-protection layer: a
// bounded, byte-accounted answer cache with graph-version invalidation and
// negative caching, a singleflight group that collapses concurrent identical
// queries into one execution, an admission controller (concurrency gate with
// a bounded, deadline-aware wait queue and per-shape fairness), and a
// per-fingerprint circuit breaker. Everything is stdlib-only and safe for
// concurrent use; internal/server wires the pieces into the /sparql path and
// internal/core reuses the LRU for per-session answer memoization.
package resilience

import (
	"sync"
)

// lruEntry is one resident cache entry; prev/next thread the recency list
// (head = most recent).
type lruEntry[V any] struct {
	key        string
	val        V
	size       int64
	prev, next *lruEntry[V]
}

// SizedLRU is a concurrency-safe LRU keyed by string with byte-size
// accounting: every entry carries an explicit size, the cache evicts from
// the cold end whenever the total exceeds maxBytes, and an entry larger
// than the whole budget is refused outright. A nil *SizedLRU is a valid
// always-empty cache (Get misses, Put is a no-op), so callers can disable
// caching by construction instead of branching.
type SizedLRU[V any] struct {
	mu        sync.Mutex
	maxBytes  int64
	bytes     int64
	entries   map[string]*lruEntry[V]
	head      *lruEntry[V] // most recently used
	tail      *lruEntry[V] // least recently used
	evictions uint64
	onEvict   func(key string, size int64)
}

// NewSizedLRU builds a cache bounded to maxBytes. onEvict (may be nil) is
// called, outside any hot path but under the cache lock, for every entry
// removed to make room — not for explicit Delete or Purge.
func NewSizedLRU[V any](maxBytes int64, onEvict func(key string, size int64)) *SizedLRU[V] {
	if maxBytes <= 0 {
		return nil
	}
	return &SizedLRU[V]{
		maxBytes: maxBytes,
		entries:  map[string]*lruEntry[V]{},
		onEvict:  onEvict,
	}
}

// Get returns the entry for key, bumping its recency.
func (c *SizedLRU[V]) Get(key string) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return zero, false
	}
	c.moveToFront(e)
	return e.val, true
}

// Put inserts or replaces the entry for key. Entries whose size exceeds the
// whole budget are refused (and an existing entry under the key is dropped:
// the caller declared the new value authoritative and the old one stale).
func (c *SizedLRU[V]) Put(key string, val V, size int64) {
	if c == nil {
		return
	}
	if size < 0 {
		size = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.removeLocked(e)
	}
	if size > c.maxBytes {
		return
	}
	e := &lruEntry[V]{key: key, val: val, size: size}
	c.entries[key] = e
	c.pushFront(e)
	c.bytes += size
	for c.bytes > c.maxBytes && c.tail != nil {
		victim := c.tail
		c.removeLocked(victim)
		c.evictions++
		if c.onEvict != nil {
			c.onEvict(victim.key, victim.size)
		}
	}
}

// Delete removes the entry for key, if present.
func (c *SizedLRU[V]) Delete(key string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.removeLocked(e)
	}
}

// Purge drops every entry.
func (c *SizedLRU[V]) Purge() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[string]*lruEntry[V]{}
	c.head, c.tail, c.bytes = nil, nil, 0
}

// Len returns the number of resident entries.
func (c *SizedLRU[V]) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Bytes returns the accounted size of all resident entries.
func (c *SizedLRU[V]) Bytes() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Evictions returns how many entries were evicted to make room (lifetime).
func (c *SizedLRU[V]) Evictions() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// MaxBytes returns the configured budget (0 for a nil cache).
func (c *SizedLRU[V]) MaxBytes() int64 {
	if c == nil {
		return 0
	}
	return c.maxBytes
}

// ---- intrusive recency list (callers hold c.mu) ----

func (c *SizedLRU[V]) pushFront(e *lruEntry[V]) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *SizedLRU[V]) moveToFront(e *lruEntry[V]) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func (c *SizedLRU[V]) unlink(e *lruEntry[V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *SizedLRU[V]) removeLocked(e *lruEntry[V]) {
	c.unlink(e)
	delete(c.entries, e.key)
	c.bytes -= e.size
}
