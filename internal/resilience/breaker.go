package resilience

import (
	"fmt"
	"sync"
	"time"
)

// Breaker states.
const (
	StateClosed   = "closed"
	StateOpen     = "open"
	StateHalfOpen = "half_open"
)

// breakerEntry is one fingerprint's breaker + cost statistics.
type breakerEntry struct {
	state       string
	consecAbort int
	openedAt    time.Time
	probing     bool // a half-open probe is in flight

	// ewmaSeconds tracks the shape's typical execution cost; degraded mode
	// uses it to shed known-expensive shapes before cheap ones.
	ewmaSeconds float64
	observed    bool

	// recency ring position (see Breakers.touch).
	lastTouch time.Time
}

// Breakers holds a per-fingerprint circuit breaker. A shape's breaker opens
// after Threshold consecutive budget/timeout aborts, rejects work for
// Cooldown, then half-opens: exactly one probe request is let through, and
// its outcome closes the breaker again or re-opens it for another cooldown.
// The entry map is capped; coldest entries are dropped when full (losing a
// breaker merely forgets history — fail-safe toward admitting).
//
// A nil *Breakers allows everything and records nothing.
type Breakers struct {
	mu        sync.Mutex
	entries   map[string]*breakerEntry
	threshold int
	cooldown  time.Duration
	maxShapes int

	transitions func(to string) // metric hook, may be nil
}

// Breaker tuning defaults.
const (
	DefaultBreakerThreshold = 3
	DefaultBreakerCooldown  = 5 * time.Second
	defaultBreakerMaxShapes = 512
)

// NewBreakers builds the per-fingerprint breaker table. threshold <= 0 or
// cooldown <= 0 select the defaults. onTransition (may be nil) is invoked
// with the new state on every state change, for metrics.
func NewBreakers(threshold int, cooldown time.Duration, onTransition func(to string)) *Breakers {
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	return &Breakers{
		entries:     map[string]*breakerEntry{},
		threshold:   threshold,
		cooldown:    cooldown,
		maxShapes:   defaultBreakerMaxShapes,
		transitions: onTransition,
	}
}

// Allow reports whether a request for shape may proceed. An open breaker
// rejects with an AdmitError carrying the remaining cooldown as RetryAfter;
// once the cooldown elapses, the first caller through becomes the half-open
// probe and subsequent callers keep being rejected until the probe reports
// back via Observe.
func (b *Breakers) Allow(shape string, now time.Time) *AdmitError {
	if b == nil || shape == "" {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.entries[shape]
	if !ok {
		return nil
	}
	e.lastTouch = now
	switch e.state {
	case StateOpen:
		if remaining := b.cooldown - now.Sub(e.openedAt); remaining > 0 {
			return &AdmitError{
				Reason:     ReasonBreaker,
				Msg:        fmt.Sprintf("circuit open for this query shape (%s of cooldown left)", remaining.Round(time.Millisecond)),
				RetryAfter: remaining,
			}
		}
		e.state = StateHalfOpen
		e.probing = true
		b.transition(StateHalfOpen)
		return nil // this caller is the probe
	case StateHalfOpen:
		if e.probing {
			return &AdmitError{
				Reason:     ReasonBreaker,
				Msg:        "circuit half-open: probe in flight for this query shape",
				RetryAfter: time.Second,
			}
		}
		e.probing = true
		return nil
	default:
		return nil
	}
}

// Observe records one finished execution for shape. aborted marks a
// budget/timeout abort (the failure class that trips the breaker); other
// errors and successes reset the consecutive-abort count. dur feeds the
// shape's cost EWMA regardless of outcome.
func (b *Breakers) Observe(shape string, dur time.Duration, aborted bool, now time.Time) {
	if b == nil || shape == "" {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.entries[shape]
	if !ok {
		if len(b.entries) >= b.maxShapes {
			b.dropColdestLocked()
		}
		e = &breakerEntry{state: StateClosed}
		b.entries[shape] = e
	}
	e.lastTouch = now

	s := dur.Seconds()
	if !e.observed {
		e.ewmaSeconds, e.observed = s, true
	} else {
		e.ewmaSeconds = 0.8*e.ewmaSeconds + 0.2*s
	}

	wasProbe := e.state == StateHalfOpen
	e.probing = false
	if aborted {
		e.consecAbort++
		if wasProbe || e.consecAbort >= b.threshold {
			if e.state != StateOpen {
				e.state = StateOpen
				b.transition(StateOpen)
			}
			e.openedAt = now
			e.consecAbort = 0
		}
		return
	}
	e.consecAbort = 0
	if e.state != StateClosed {
		e.state = StateClosed
		b.transition(StateClosed)
	}
}

// EWMASeconds returns the shape's smoothed execution cost and whether any
// observation exists. Degraded mode sheds uncached shapes whose EWMA
// exceeds the configured cutoff.
func (b *Breakers) EWMASeconds(shape string) (float64, bool) {
	if b == nil || shape == "" {
		return 0, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.entries[shape]
	if !ok || !e.observed {
		return 0, false
	}
	return e.ewmaSeconds, true
}

// State returns the breaker state for shape (StateClosed if untracked).
func (b *Breakers) State(shape string) string {
	if b == nil || shape == "" {
		return StateClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if e, ok := b.entries[shape]; ok {
		return e.state
	}
	return StateClosed
}

func (b *Breakers) transition(to string) {
	if b.transitions != nil {
		b.transitions(to)
	}
}

// dropColdestLocked evicts the least-recently-touched entry (callers hold
// mu). Open breakers are spared when possible so an actively failing shape
// does not get amnesty by cache pressure.
func (b *Breakers) dropColdestLocked() {
	var coldKey string
	var coldAt time.Time
	first := true
	for k, e := range b.entries {
		if e.state == StateOpen {
			continue
		}
		if first || e.lastTouch.Before(coldAt) {
			coldKey, coldAt, first = k, e.lastTouch, false
		}
	}
	if first { // everything open — drop any one entry
		for k := range b.entries {
			coldKey = k
			break
		}
	}
	delete(b.entries, coldKey)
}
