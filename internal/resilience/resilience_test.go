package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// ---- SizedLRU ----

func TestSizedLRUBasics(t *testing.T) {
	var evicted []string
	c := NewSizedLRU[string](100, func(k string, _ int64) { evicted = append(evicted, k) })
	c.Put("a", "A", 40)
	c.Put("b", "B", 40)
	if v, ok := c.Get("a"); !ok || v != "A" {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	// "a" is now most recent; inserting 40 more bytes must evict "b".
	c.Put("c", "C", 40)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted (LRU order)")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived (recently used)")
	}
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Fatalf("evicted = %v, want [b]", evicted)
	}
	if c.Evictions() != 1 {
		t.Fatalf("Evictions = %d, want 1", c.Evictions())
	}
	if c.Bytes() != 80 || c.Len() != 2 {
		t.Fatalf("Bytes/Len = %d/%d, want 80/2", c.Bytes(), c.Len())
	}
}

func TestSizedLRUReplaceAndOversize(t *testing.T) {
	c := NewSizedLRU[int](100, nil)
	c.Put("k", 1, 60)
	c.Put("k", 2, 30) // replace: bytes must drop to 30
	if c.Bytes() != 30 || c.Len() != 1 {
		t.Fatalf("after replace Bytes/Len = %d/%d", c.Bytes(), c.Len())
	}
	if v, _ := c.Get("k"); v != 2 {
		t.Fatalf("Get(k) = %d, want 2", v)
	}
	c.Put("big", 9, 101) // larger than whole budget: refused
	if _, ok := c.Get("big"); ok {
		t.Fatal("oversized entry must be refused")
	}
	// Oversized replace drops the old entry too (new value declared
	// authoritative).
	c.Put("k", 3, 200)
	if _, ok := c.Get("k"); ok {
		t.Fatal("oversized replace must drop the stale entry")
	}
	if c.Bytes() != 0 {
		t.Fatalf("Bytes = %d, want 0", c.Bytes())
	}
}

func TestSizedLRUNilSafe(t *testing.T) {
	var c *SizedLRU[string]
	if c := NewSizedLRU[string](0, nil); c != nil {
		t.Fatal("maxBytes<=0 must return nil")
	}
	c.Put("k", "v", 1)
	if _, ok := c.Get("k"); ok {
		t.Fatal("nil cache must miss")
	}
	c.Delete("k")
	c.Purge()
	if c.Len() != 0 || c.Bytes() != 0 || c.Evictions() != 0 || c.MaxBytes() != 0 {
		t.Fatal("nil cache accessors must return zero")
	}
}

func TestSizedLRUConcurrent(t *testing.T) {
	c := NewSizedLRU[int](1<<20, nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				k := fmt.Sprintf("k%d", j%32)
				c.Put(k, j, 100)
				c.Get(k)
				if j%17 == 0 {
					c.Delete(k)
				}
			}
		}(i)
	}
	wg.Wait()
}

// ---- singleflight ----

func TestSingleflightCollapses(t *testing.T) {
	var g Group
	var execs atomic.Int64
	const n = 64
	start := make(chan struct{})
	var wg sync.WaitGroup
	var sharedCount atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			v, shared, err := g.Do(context.Background(), "k", time.Second, func(ctx context.Context) (any, error) {
				execs.Add(1)
				time.Sleep(50 * time.Millisecond) // hold the call open for followers
				return "result", nil
			})
			if err != nil || v != "result" {
				t.Errorf("Do = %v, %v", v, err)
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()
	if execs.Load() != 1 {
		t.Fatalf("executions = %d, want 1", execs.Load())
	}
	if sharedCount.Load() != n-1 {
		t.Fatalf("shared (followers) = %d, want %d", sharedCount.Load(), n-1)
	}
}

func TestSingleflightFollowerAbandon(t *testing.T) {
	var g Group
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := g.Do(context.Background(), "k", 0, func(ctx context.Context) (any, error) {
			<-release
			return 1, nil
		})
		if err != nil {
			t.Errorf("leader err = %v", err)
		}
	}()
	// Follower with an already-short deadline abandons; the leader's call
	// must still complete.
	time.Sleep(10 * time.Millisecond) // let the leader register
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, shared, err := g.Do(ctx, "k", 0, func(ctx context.Context) (any, error) {
		t.Error("follower must not execute fn")
		return nil, nil
	})
	if !shared || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("follower: shared=%v err=%v", shared, err)
	}
	close(release)
	wg.Wait()
}

func TestSingleflightLastWaiterCancels(t *testing.T) {
	var g Group
	sawCancel := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		g.Do(ctx, "k", 0, func(execCtx context.Context) (any, error) {
			<-execCtx.Done() // must fire when the lone caller leaves
			close(sawCancel)
			return nil, execCtx.Err()
		})
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case <-sawCancel:
	case <-time.After(2 * time.Second):
		t.Fatal("execution context was not cancelled after last waiter left")
	}
	<-done
}

func TestSingleflightNilGroup(t *testing.T) {
	var g *Group
	v, shared, err := g.Do(context.Background(), "k", 0, func(ctx context.Context) (any, error) { return 7, nil })
	if v != 7 || shared || err != nil {
		t.Fatalf("nil group Do = %v, %v, %v", v, shared, err)
	}
}

// ---- AnswerCache ----

func TestAnswerCacheFreshStaleNegative(t *testing.T) {
	c := NewAnswerCache(1<<20, 50*time.Millisecond, nil)
	now := time.Now()
	key := CacheKey("fp1", "SELECT 1")
	c.Store(key, &Answer{Body: []byte("r"), Status: 200, Version: 7, When: now})

	if _, ok := c.Lookup(key, 7); !ok {
		t.Fatal("fresh lookup at same version must hit")
	}
	if _, ok := c.Lookup(key, 8); ok {
		t.Fatal("lookup at newer graph version must miss")
	}
	// Stale lookup ignores version within the window…
	if _, ok := c.LookupStale(key, now.Add(time.Second), 2*time.Second); !ok {
		t.Fatal("stale lookup within window must hit")
	}
	// …but not beyond it, and not when disabled.
	if _, ok := c.LookupStale(key, now.Add(3*time.Second), 2*time.Second); ok {
		t.Fatal("stale lookup beyond window must miss")
	}
	if _, ok := c.LookupStale(key, now, 0); ok {
		t.Fatal("window<=0 must disable stale serving")
	}

	c.StoreNegative("BROKEN {", 400, "parse_error", "syntax", now)
	if st, reason, _, ok := c.LookupNegative("BROKEN {", now.Add(10*time.Millisecond)); !ok || st != 400 || reason != "parse_error" {
		t.Fatalf("negative lookup = %d %q %v", st, reason, ok)
	}
	if _, _, _, ok := c.LookupNegative("BROKEN {", now.Add(time.Second)); ok {
		t.Fatal("negative entry must expire after TTL")
	}
}

func TestAnswerCacheKeyConstantsDistinct(t *testing.T) {
	// Same fingerprint, different constants: distinct keys by construction.
	k1 := CacheKey("fp", `SELECT ?s WHERE { ?s ?p "a" }`)
	k2 := CacheKey("fp", `SELECT ?s WHERE { ?s ?p "b" }`)
	if k1 == k2 {
		t.Fatal("keys for different constants must differ")
	}
}

func TestAnswerCacheNil(t *testing.T) {
	var c *AnswerCache
	if c := NewAnswerCache(0, 0, nil); c != nil {
		t.Fatal("maxBytes<=0 must return nil")
	}
	if c.Enabled() {
		t.Fatal("nil cache must report disabled")
	}
	c.Store("k", &Answer{})
	if _, ok := c.Lookup("k", 0); ok {
		t.Fatal("nil cache must miss")
	}
	c.StoreNegative("q", 400, "r", "m", time.Now())
	if _, _, _, ok := c.LookupNegative("q", time.Now()); ok {
		t.Fatal("nil negative cache must miss")
	}
	c.Purge()
}

func TestAnswerCacheNegativeBounded(t *testing.T) {
	c := NewAnswerCache(1024, time.Hour, nil)
	now := time.Now()
	for i := 0; i < maxNegEntries+10; i++ {
		c.StoreNegative(fmt.Sprintf("q%d", i), 400, "parse_error", "x", now)
	}
	c.negMu.Lock()
	n := len(c.neg)
	c.negMu.Unlock()
	if n > maxNegEntries {
		t.Fatalf("negative cache grew to %d > cap %d", n, maxNegEntries)
	}
}

// ---- Admission ----

func TestAdmissionGateAndQueue(t *testing.T) {
	a := NewAdmission(1, 1)
	rel1, err := a.Acquire(context.Background(), "s1", false)
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if a.Inflight() != 1 {
		t.Fatalf("Inflight = %d, want 1", a.Inflight())
	}

	// Second request queues; third overflows.
	got2 := make(chan *AdmitError, 1)
	started := make(chan struct{})
	go func() {
		close(started)
		rel2, err := a.Acquire(context.Background(), "s2", false)
		got2 <- err
		if err == nil {
			rel2()
		}
	}()
	<-started
	waitFor(t, func() bool { return a.Waiting() == 1 })

	_, err3 := a.Acquire(context.Background(), "s3", false)
	if err3 == nil || err3.Reason != ReasonQueueFull {
		t.Fatalf("overflow: %+v, want queue_full", err3)
	}
	if err3.RetryAfter <= 0 {
		t.Fatal("queue_full rejection must carry RetryAfter")
	}

	rel1()
	if err := <-got2; err != nil {
		t.Fatalf("queued request must be admitted after release: %v", err)
	}
	waitFor(t, func() bool { return a.Inflight() == 0 && a.Waiting() == 0 })
}

func TestAdmissionDegradedNoQueue(t *testing.T) {
	a := NewAdmission(1, 8)
	rel, err := a.Acquire(context.Background(), "", false)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	_, derr := a.Acquire(context.Background(), "", true)
	if derr == nil || derr.Reason != ReasonDegraded {
		t.Fatalf("degraded acquire with busy gate = %+v, want degraded rejection", derr)
	}
}

func TestAdmissionDeadlineUnmeetable(t *testing.T) {
	a := NewAdmission(1, 8)
	rel, err := a.Acquire(context.Background(), "", false)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	// Zero-ish deadline cannot beat even the 50ms default service estimate.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, derr := a.Acquire(ctx, "", false)
	if derr == nil || derr.Reason != ReasonDeadline {
		t.Fatalf("unmeetable deadline = %+v, want deadline rejection", derr)
	}
}

func TestAdmissionShapeFairness(t *testing.T) {
	a := NewAdmission(1, 4) // per-shape wait cap = 2
	rel, err := a.Acquire(context.Background(), "hot", false)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()

	ctxs := make([]context.CancelFunc, 0, 2)
	for i := 0; i < 2; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		ctxs = append(ctxs, cancel)
		go a.Acquire(ctx, "hot", false)
	}
	waitFor(t, func() bool { return a.Waiting() == 2 })

	// Third hot waiter exceeds the shape's fair share of the queue…
	_, serr := a.Acquire(context.Background(), "hot", false)
	if serr == nil || serr.Reason != ReasonShapeLimit {
		t.Fatalf("hot shape over fair share = %+v, want shape_limit", serr)
	}
	// …but a different shape still gets a queue position.
	ctx, cancel := context.WithCancel(context.Background())
	go a.Acquire(ctx, "cold", false)
	waitFor(t, func() bool { return a.Waiting() == 3 })
	cancel()
	for _, c := range ctxs {
		c()
	}
	waitFor(t, func() bool { return a.Waiting() == 0 })
}

func TestAdmissionNil(t *testing.T) {
	var a *Admission
	if a := NewAdmission(0, 4); a != nil {
		t.Fatal("maxConcurrent<=0 must return nil")
	}
	rel, err := a.Acquire(context.Background(), "s", true)
	if err != nil {
		t.Fatalf("nil gate must admit: %v", err)
	}
	rel()
	if a.Inflight() != 0 || a.Waiting() != 0 || a.RetryAfter() != 0 {
		t.Fatal("nil gate accessors must return zero")
	}
}

// ---- Breakers ----

func TestBreakerOpensHalfOpensCloses(t *testing.T) {
	var transitions []string
	b := NewBreakers(3, 100*time.Millisecond, func(to string) { transitions = append(transitions, to) })
	now := time.Now()

	for i := 0; i < 2; i++ {
		b.Observe("fp", 10*time.Millisecond, true, now)
		if err := b.Allow("fp", now); err != nil {
			t.Fatalf("breaker must stay closed below threshold: %v", err)
		}
	}
	b.Observe("fp", 10*time.Millisecond, true, now) // third consecutive abort
	if b.State("fp") != StateOpen {
		t.Fatalf("state = %s, want open", b.State("fp"))
	}
	err := b.Allow("fp", now.Add(10*time.Millisecond))
	if err == nil || err.Reason != ReasonBreaker || err.RetryAfter <= 0 {
		t.Fatalf("open breaker must reject with retry-after: %+v", err)
	}

	// Cooldown elapsed: first caller becomes the probe, second is rejected.
	probeAt := now.Add(200 * time.Millisecond)
	if err := b.Allow("fp", probeAt); err != nil {
		t.Fatalf("probe must be admitted after cooldown: %v", err)
	}
	if err := b.Allow("fp", probeAt); err == nil {
		t.Fatal("second caller during probe must be rejected")
	}
	// Probe succeeds: breaker closes.
	b.Observe("fp", 10*time.Millisecond, false, probeAt)
	if b.State("fp") != StateClosed {
		t.Fatalf("state after good probe = %s, want closed", b.State("fp"))
	}
	if err := b.Allow("fp", probeAt); err != nil {
		t.Fatalf("closed breaker must admit: %v", err)
	}

	want := []string{StateOpen, StateHalfOpen, StateClosed}
	if fmt.Sprint(transitions) != fmt.Sprint(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	b := NewBreakers(1, 100*time.Millisecond, nil)
	now := time.Now()
	b.Observe("fp", time.Millisecond, true, now) // threshold 1: opens
	probeAt := now.Add(200 * time.Millisecond)
	if err := b.Allow("fp", probeAt); err != nil {
		t.Fatalf("probe: %v", err)
	}
	b.Observe("fp", time.Millisecond, true, probeAt) // probe aborts again
	if b.State("fp") != StateOpen {
		t.Fatalf("state after failed probe = %s, want open", b.State("fp"))
	}
	// And the cooldown restarts from the probe.
	if err := b.Allow("fp", probeAt.Add(50*time.Millisecond)); err == nil {
		t.Fatal("breaker must stay open through the restarted cooldown")
	}
}

func TestBreakerEWMA(t *testing.T) {
	b := NewBreakers(0, 0, nil)
	now := time.Now()
	if _, ok := b.EWMASeconds("fp"); ok {
		t.Fatal("unobserved shape must report no EWMA")
	}
	b.Observe("fp", time.Second, false, now)
	if s, ok := b.EWMASeconds("fp"); !ok || s != 1.0 {
		t.Fatalf("first observation EWMA = %v, %v", s, ok)
	}
	b.Observe("fp", 2*time.Second, false, now)
	if s, _ := b.EWMASeconds("fp"); s <= 1.0 || s >= 2.0 {
		t.Fatalf("smoothed EWMA = %v, want in (1,2)", s)
	}
}

func TestBreakerCapBoundsEntries(t *testing.T) {
	b := NewBreakers(0, 0, nil)
	b.maxShapes = 8
	now := time.Now()
	for i := 0; i < 50; i++ {
		b.Observe(fmt.Sprintf("fp%d", i), time.Millisecond, false, now.Add(time.Duration(i)*time.Millisecond))
	}
	b.mu.Lock()
	n := len(b.entries)
	b.mu.Unlock()
	if n > 8 {
		t.Fatalf("breaker entries = %d > cap 8", n)
	}
}

func TestBreakerNil(t *testing.T) {
	var b *Breakers
	if err := b.Allow("fp", time.Now()); err != nil {
		t.Fatal("nil breakers must allow")
	}
	b.Observe("fp", time.Second, true, time.Now())
	if s := b.State("fp"); s != StateClosed {
		t.Fatalf("nil breakers state = %s", s)
	}
	if _, ok := b.EWMASeconds("fp"); ok {
		t.Fatal("nil breakers must report no EWMA")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
