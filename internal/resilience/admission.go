package resilience

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Admission reasons, used as the `reason` field of the structured 503 body
// and as the metric label on rdfa_admission_rejected_total.
const (
	ReasonQueueFull  = "queue_full"
	ReasonShapeLimit = "shape_limit"
	ReasonDeadline   = "deadline"
	ReasonDegraded   = "degraded"
	ReasonBreaker    = "breaker_open"
)

// AdmitError is a structured admission rejection: the request was shed
// before touching the engine. RetryAfter is the client back-off hint for
// the Retry-After header (0 means "do not send the header").
type AdmitError struct {
	Reason     string
	Msg        string
	RetryAfter time.Duration
}

func (e *AdmitError) Error() string {
	return fmt.Sprintf("admission rejected (%s): %s", e.Reason, e.Msg)
}

// Admission is the concurrency gate in front of query execution: at most
// maxConcurrent queries run, at most queueDepth more wait, and a waiter
// whose context deadline cannot be met given the queue ahead of it is
// rejected immediately rather than left to time out in line. Per-shape
// counters keep one hot fingerprint from occupying every slot and every
// queue position. A nil *Admission admits everything (gate disabled).
//
// State machine per request:
//
//	arrive → [deadline unmeetable]        → reject(deadline)
//	       → [queue full]                 → reject(queue_full)
//	       → [shape over fair share]      → reject(shape_limit)
//	       → [degraded && must queue]     → reject(degraded)
//	       → wait for slot ──ctx ends──   → reject(deadline)
//	                       └─slot free──  → admitted → release()
type Admission struct {
	slots      chan struct{}
	queueDepth int

	mu       sync.Mutex
	waiting  int
	byShape  map[string]*shapeLoad
	inflight int

	// expectedWait estimates how long a new arrival will wait: a fresh
	// EWMA of recent gate-to-release durations scaled by queue position.
	ewmaService time.Duration
}

// shapeLoad tracks one fingerprint's occupancy of the gate.
type shapeLoad struct {
	waiting  int
	inflight int
}

// NewAdmission builds a gate with maxConcurrent execution slots and a wait
// queue of queueDepth. maxConcurrent <= 0 returns nil (gate disabled —
// every Acquire succeeds immediately).
func NewAdmission(maxConcurrent, queueDepth int) *Admission {
	if maxConcurrent <= 0 {
		return nil
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &Admission{
		slots:      make(chan struct{}, maxConcurrent),
		queueDepth: queueDepth,
		byShape:    map[string]*shapeLoad{},
	}
}

// shapeWaitCap is each fingerprint's fair share of the wait queue: half the
// queue, but always at least one position.
func (a *Admission) shapeWaitCap() int {
	cap := a.queueDepth / 2
	if cap < 1 {
		cap = 1
	}
	return cap
}

// Acquire admits the request or rejects it with an AdmitError. On success
// the returned release must be called exactly once when execution finishes.
// degraded admits only if a slot is immediately free — a degraded server
// must not grow its queue. shape is the query's fingerprint ID ("" opts out
// of per-shape fairness).
func (a *Admission) Acquire(ctx context.Context, shape string, degraded bool) (release func(), aerr *AdmitError) {
	if a == nil {
		return func() {}, nil
	}

	// Fast path: free slot right now.
	select {
	case a.slots <- struct{}{}:
		if err := a.takeSlot(shape); err != nil {
			<-a.slots
			return nil, err
		}
		return a.releaseFunc(shape, time.Now()), nil
	default:
	}

	if degraded {
		return nil, &AdmitError{
			Reason:     ReasonDegraded,
			Msg:        "server degraded: not queueing new work",
			RetryAfter: 2 * time.Second,
		}
	}

	// Queue admission under the lock: position, fairness, and deadline
	// feasibility are all checked against the same snapshot.
	a.mu.Lock()
	if a.waiting >= a.queueDepth {
		a.mu.Unlock()
		return nil, &AdmitError{
			Reason:     ReasonQueueFull,
			Msg:        fmt.Sprintf("wait queue full (%d waiting)", a.queueDepth),
			RetryAfter: a.retryAfterLocked(),
		}
	}
	sl := a.byShape[shape]
	if shape != "" && sl != nil && sl.waiting >= a.shapeWaitCap() {
		a.mu.Unlock()
		return nil, &AdmitError{
			Reason:     ReasonShapeLimit,
			Msg:        "fingerprint over its fair share of the wait queue",
			RetryAfter: a.retryAfterLocked(),
		}
	}
	if dl, ok := ctx.Deadline(); ok {
		// Estimated wait: queue position ahead of us times the recent
		// service EWMA, divided by the slot count draining in parallel.
		est := a.estimateWaitLocked()
		if time.Until(dl) < est {
			a.mu.Unlock()
			return nil, &AdmitError{
				Reason:     ReasonDeadline,
				Msg:        fmt.Sprintf("deadline %s < estimated queue wait %s", time.Until(dl).Round(time.Millisecond), est.Round(time.Millisecond)),
				RetryAfter: est,
			}
		}
	}
	a.waiting++
	if shape != "" {
		if sl == nil {
			sl = &shapeLoad{}
			a.byShape[shape] = sl
		}
		sl.waiting++
	}
	a.mu.Unlock()

	defer func() {
		a.mu.Lock()
		a.waiting--
		if shape != "" {
			if sl := a.byShape[shape]; sl != nil {
				sl.waiting--
				a.dropIfIdleLocked(shape, sl)
			}
		}
		a.mu.Unlock()
	}()

	select {
	case a.slots <- struct{}{}:
		if err := a.takeSlot(shape); err != nil {
			<-a.slots
			return nil, err
		}
		return a.releaseFunc(shape, time.Now()), nil
	case <-ctx.Done():
		return nil, &AdmitError{
			Reason:     ReasonDeadline,
			Msg:        "context ended while queued: " + ctx.Err().Error(),
			RetryAfter: a.RetryAfter(),
		}
	}
}

// takeSlot records slot occupancy; it can still veto on per-shape inflight
// fairness (the caller must then return the channel slot).
func (a *Admission) takeSlot(shape string) *AdmitError {
	a.mu.Lock()
	defer a.mu.Unlock()
	if shape != "" {
		sl := a.byShape[shape]
		if sl == nil {
			sl = &shapeLoad{}
			a.byShape[shape] = sl
		}
		shapeCap := cap(a.slots)/2 + cap(a.slots)%2 // ceil(half the slots)
		if shapeCap < 1 {
			shapeCap = 1
		}
		if sl.inflight >= shapeCap && a.inflight >= shapeCap {
			// Only veto when there is real contention: a lone hot shape on
			// an otherwise idle server may use every slot.
			if a.waiting > 0 {
				return &AdmitError{
					Reason:     ReasonShapeLimit,
					Msg:        "fingerprint over its fair share of execution slots",
					RetryAfter: a.retryAfterLocked(),
				}
			}
		}
		sl.inflight++
	}
	a.inflight++
	return nil
}

func (a *Admission) releaseFunc(shape string, start time.Time) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			a.mu.Lock()
			a.inflight--
			if shape != "" {
				if sl := a.byShape[shape]; sl != nil {
					sl.inflight--
					a.dropIfIdleLocked(shape, sl)
				}
			}
			// EWMA of service time feeds the deadline-feasibility estimate.
			d := time.Since(start)
			if a.ewmaService == 0 {
				a.ewmaService = d
			} else {
				a.ewmaService = (a.ewmaService*4 + d) / 5
			}
			a.mu.Unlock()
			<-a.slots
		})
	}
}

func (a *Admission) dropIfIdleLocked(shape string, sl *shapeLoad) {
	if sl.waiting <= 0 && sl.inflight <= 0 {
		delete(a.byShape, shape)
	}
}

// estimateWaitLocked predicts a new arrival's queue wait (callers hold mu).
func (a *Admission) estimateWaitLocked() time.Duration {
	svc := a.ewmaService
	if svc == 0 {
		svc = 50 * time.Millisecond
	}
	// waiting requests ahead of us drain cap(slots) at a time.
	rounds := a.waiting/cap(a.slots) + 1
	return svc * time.Duration(rounds)
}

func (a *Admission) retryAfterLocked() time.Duration {
	ra := a.estimateWaitLocked()
	if ra < time.Second {
		ra = time.Second
	}
	return ra
}

// RetryAfter suggests a client back-off based on current load.
func (a *Admission) RetryAfter() time.Duration {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.retryAfterLocked()
}

// Inflight returns the number of currently executing requests.
func (a *Admission) Inflight() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflight
}

// Waiting returns the number of queued requests.
func (a *Admission) Waiting() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.waiting
}
