package resilience

import (
	"context"
	"sync"
	"time"
)

// Singleflight with reference-counted cancellation: N concurrent callers of
// Do with the same key share one execution of fn. The leader runs fn under a
// *detached* context (bounded only by the configured timeout), so a follower
// — or even the leader's own client — disconnecting does not abort the work
// the remaining waiters still need. Each waiter that gives up decrements a
// reference count; when the last waiter abandons the call, the execution
// context is cancelled and the engine's cooperative cancellation stops the
// now-unwanted work.

// call is one in-flight execution.
type call struct {
	done    chan struct{}
	val     any
	err     error
	waiters int
	cancel  context.CancelCauseFunc
}

// Group collapses concurrent executions by key. The zero value is ready to
// use; a nil *Group runs every fn directly (no collapsing).
type Group struct {
	mu    sync.Mutex
	calls map[string]*call
}

// Do executes fn under key, collapsing concurrent duplicate calls: the
// first caller (the leader) runs fn, everyone else waits for the shared
// result. shared reports whether this caller was a *follower* — it received
// a result computed by the leader without executing fn itself — so summing
// shared outcomes counts exactly the collapsed executions (N concurrent
// identical calls → 1 execution, N-1 shared).
//
// fn receives a context detached from any single caller's request: it is
// cancelled when timeout expires (if > 0) or when every waiter has
// abandoned the call, whichever comes first. A waiter whose own ctx ends
// before the result is ready returns ctx.Err() without disturbing the
// remaining waiters. When the last abandoning waiter left because its own
// deadline expired, that reason is propagated as the execution context's
// cancellation cause — context.Cause(execCtx) then reports
// DeadlineExceeded — so callers can tell an effective timeout from a
// client disconnect even when the abandonment cancel beats the execution
// context's own identical timer (a scheduling race otherwise).
func (g *Group) Do(ctx context.Context, key string, timeout time.Duration, fn func(context.Context) (any, error)) (v any, shared bool, err error) {
	if g == nil {
		v, err = fn(ctx)
		return v, false, err
	}
	g.mu.Lock()
	if g.calls == nil {
		g.calls = map[string]*call{}
	}
	if c, ok := g.calls[key]; ok {
		c.waiters++
		g.mu.Unlock()
		return g.wait(ctx, c)
	}
	base, cancel := context.WithCancelCause(context.Background())
	execCtx := context.Context(base)
	stopTimer := func() {}
	if timeout > 0 {
		execCtx, stopTimer = context.WithTimeout(base, timeout)
	}
	c := &call{done: make(chan struct{}), waiters: 1, cancel: cancel}
	g.calls[key] = c
	g.mu.Unlock()

	// If the leader's own request dies, it becomes an ordinary abandoning
	// waiter: the execution keeps running as long as any follower remains.
	stop := context.AfterFunc(ctx, func() { g.abandon(c, context.Cause(ctx)) })
	c.val, c.err = fn(execCtx)
	stop()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	stopTimer()
	cancel(nil)
	return c.val, false, c.err
}

// wait blocks a follower until the call completes or its own ctx ends.
func (g *Group) wait(ctx context.Context, c *call) (any, bool, error) {
	select {
	case <-c.done:
		return c.val, true, c.err
	case <-ctx.Done():
		g.abandon(c, context.Cause(ctx))
		return nil, true, ctx.Err()
	}
}

// abandon drops one waiter's interest in c; the last abandonment cancels
// the execution context with the abandoning waiter's own cause.
func (g *Group) abandon(c *call, cause error) {
	g.mu.Lock()
	c.waiters--
	last := c.waiters <= 0
	g.mu.Unlock()
	if last {
		c.cancel(cause)
	}
}
