package resilience

import (
	"strings"
	"testing"
	"time"
)

// FuzzCacheKey checks key injectivity: two (fingerprint, query) pairs map to
// the same cache key only if they are the same pair. Fingerprint IDs are hex
// digests and can never contain the NUL separator; queries are arbitrary.
// The property guards the satellite invariant that queries differing only in
// a constant, datatype, language tag or timezone never share an entry.
func FuzzCacheKey(f *testing.F) {
	f.Add("8f00b204e9800998", `SELECT ?s WHERE { ?s <p> "100" }`, "8f00b204e9800998", `SELECT ?s WHERE { ?s <p> "200" }`)
	f.Add("aa", `ASK { ?s <p> "2020-01-01T00:00:00Z"^^xsd:dateTime }`, "aa", `ASK { ?s <p> "2020-01-01T00:00:00+00:00"^^xsd:dateTime }`)
	f.Add("aa", `"x"^^xsd:string`, "aa", `"x"@en`)
	f.Add("", "", "", "q")
	f.Fuzz(func(t *testing.T, fp1, q1, fp2, q2 string) {
		if strings.ContainsRune(fp1, 0) || strings.ContainsRune(fp2, 0) {
			t.Skip("fingerprint IDs are hex, never contain NUL")
		}
		k1, k2 := CacheKey(fp1, q1), CacheKey(fp2, q2)
		if (fp1 != fp2 || q1 != q2) && k1 == k2 {
			t.Fatalf("distinct (fp,query) pairs collide: (%q,%q) vs (%q,%q)", fp1, q1, fp2, q2)
		}
		if fp1 == fp2 && q1 == q2 && k1 != k2 {
			t.Fatalf("CacheKey not deterministic for (%q,%q)", fp1, q1)
		}

		// Distinct keys behave as distinct entries end to end: storing under
		// k1 must never make k2 visible.
		if k1 != k2 {
			c := NewAnswerCache(1<<20, time.Second, nil)
			c.Store(k1, &Answer{Body: []byte("a1"), Version: 7})
			if _, ok := c.Lookup(k2, 7); ok {
				t.Fatalf("entry stored under %q leaked to %q", k1, k2)
			}
		}
	})
}
