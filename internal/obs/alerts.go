package obs

import (
	"sync"
	"time"
)

// Alerting state machine for the SLO evaluator. Each objective has at most
// one active alert at a time (severity "warn" or "page"); the evaluator
// reports the desired severity on every tick and the log records the
// firing/resolved transitions into a bounded event ring — the data behind
// GET /api/alerts and the dashboard's alert timeline. Severities also feed
// /readyz: a firing page-severity alert degrades readiness.

// Severity levels, ordered: "" (ok) < warn < page.
const (
	SeverityWarn = "warn"
	SeverityPage = "page"
)

// maxAlertEvents bounds the transition ring.
const maxAlertEvents = 256

// Alert is one objective's active alert.
type Alert struct {
	Objective string    `json:"objective"`
	Severity  string    `json:"severity"`
	Since     time.Time `json:"since"`
	// BurnFast/BurnSlow are the burn rates of the window pair that tripped
	// (or last evaluated) the alert.
	BurnFast float64 `json:"burn_fast"`
	BurnSlow float64 `json:"burn_slow"`
	Message  string  `json:"message,omitempty"`
}

// AlertEvent is one firing/resolved transition.
type AlertEvent struct {
	Objective string    `json:"objective"`
	Severity  string    `json:"severity"`
	State     string    `json:"state"` // firing | resolved
	At        time.Time `json:"at"`
	BurnFast  float64   `json:"burn_fast"`
	BurnSlow  float64   `json:"burn_slow"`
	Message   string    `json:"message,omitempty"`
}

// AlertLog tracks active alerts and their transition history. A nil
// *AlertLog is a valid no-op.
type AlertLog struct {
	mu     sync.Mutex
	active map[string]*Alert
	events []AlertEvent
	next   int
	filled bool

	firing      *Gauge
	transitions func(state string) *Counter
}

// NewAlertLog builds an alert log registering its gauges on reg (nil means
// Default).
func NewAlertLog(reg *Registry) *AlertLog {
	if reg == nil {
		reg = Default
	}
	l := &AlertLog{
		active: map[string]*Alert{},
		events: make([]AlertEvent, maxAlertEvents),
		firing: reg.Gauge("rdfa_slo_alerts_firing"),
		transitions: func(state string) *Counter {
			return reg.Counter("rdfa_slo_alert_transitions_total", "state", state)
		},
	}
	reg.Help("rdfa_slo_alerts_firing", "Currently firing SLO alerts.")
	return l
}

// Update reconciles one objective's desired severity ("" to clear) at time
// at, recording transitions. Severity changes resolve the old alert and
// fire the new one. Burn rates refresh on every call while firing.
func (l *AlertLog) Update(objective, severity string, at time.Time, burnFast, burnSlow float64, message string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	cur := l.active[objective]
	switch {
	case cur == nil && severity == "":
		return
	case cur != nil && cur.Severity == severity:
		cur.BurnFast, cur.BurnSlow = burnFast, burnSlow
		return
	}
	if cur != nil {
		l.pushLocked(AlertEvent{
			Objective: objective, Severity: cur.Severity, State: "resolved",
			At: at, BurnFast: burnFast, BurnSlow: burnSlow, Message: message,
		})
		delete(l.active, objective)
	}
	if severity != "" {
		l.active[objective] = &Alert{
			Objective: objective, Severity: severity, Since: at,
			BurnFast: burnFast, BurnSlow: burnSlow, Message: message,
		}
		l.pushLocked(AlertEvent{
			Objective: objective, Severity: severity, State: "firing",
			At: at, BurnFast: burnFast, BurnSlow: burnSlow, Message: message,
		})
	}
	l.firing.Set(float64(len(l.active)))
}

func (l *AlertLog) pushLocked(e AlertEvent) {
	l.events[l.next] = e
	l.next = (l.next + 1) % len(l.events)
	if l.next == 0 {
		l.filled = true
	}
	l.transitions(e.State).Inc()
}

// MaxSeverity returns the highest active severity ("" when quiet).
func (l *AlertLog) MaxSeverity() string {
	if l == nil {
		return ""
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	max := ""
	for _, a := range l.active {
		if a.Severity == SeverityPage {
			return SeverityPage
		}
		max = a.Severity
	}
	return max
}

// AlertsSnapshot is the GET /api/alerts payload: active alerts (page
// first, then by objective) and the transition history, newest first.
type AlertsSnapshot struct {
	Active []Alert      `json:"active"`
	Recent []AlertEvent `json:"recent"`
}

// Snapshot copies the current alert state.
func (l *AlertLog) Snapshot() AlertsSnapshot {
	if l == nil {
		return AlertsSnapshot{Active: []Alert{}, Recent: []AlertEvent{}}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	snap := AlertsSnapshot{Active: []Alert{}, Recent: []AlertEvent{}}
	for _, a := range l.active {
		snap.Active = append(snap.Active, *a)
	}
	for i := 0; i < len(snap.Active); i++ {
		for j := i + 1; j < len(snap.Active); j++ {
			ai, aj := snap.Active[i], snap.Active[j]
			if (aj.Severity == SeverityPage && ai.Severity != SeverityPage) ||
				(ai.Severity == aj.Severity && aj.Objective < ai.Objective) {
				snap.Active[i], snap.Active[j] = aj, ai
			}
		}
	}
	n := len(l.events)
	count := l.next
	if l.filled {
		count = n
	}
	for i := 1; i <= count; i++ {
		snap.Recent = append(snap.Recent, l.events[(l.next-i+n)%n])
	}
	return snap
}
