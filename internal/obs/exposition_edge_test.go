package obs

import (
	"strings"
	"testing"
)

// Exposition edge cases for the Prometheus text format: label-value
// escaping must round-trip the three characters the format escapes,
// family/series ordering must be deterministic, and the histogram quantile
// estimator must behave exactly at bucket boundaries.

// TestLabelEscapingRoundTrip writes label values containing quotes,
// backslashes and newlines through a full exposition pass and checks the
// escaped forms the 0.0.4 text format mandates — and that unescaping the
// rendered value yields the original back.
func TestLabelEscapingRoundTrip(t *testing.T) {
	cases := []struct {
		raw, escaped string
	}{
		{`plain`, `plain`},
		{`has "quotes"`, `has \"quotes\"`},
		{`back\slash`, `back\\slash`},
		{"new\nline", `new\nline`},
		{"all\\three\"\n", `all\\three\"\n`},
	}
	for _, c := range cases {
		reg := NewRegistry()
		reg.Counter("m_total", "q", c.raw).Inc()
		var sb strings.Builder
		if err := reg.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		want := `m_total{q="` + c.escaped + `"} 1`
		if !strings.Contains(sb.String(), want) {
			t.Errorf("label %q: exposition missing %q:\n%s", c.raw, want, sb.String())
		}
		// Round-trip: applying the exposition-format unescape rules to the
		// rendered value must restore the original.
		got := strings.NewReplacer(`\\`, "\\", `\"`, `"`, `\n`, "\n").Replace(c.escaped)
		if got != c.raw {
			t.Errorf("unescape(%q) = %q, want %q", c.escaped, got, c.raw)
		}
	}
}

// TestWritePrometheusDeterministicOrder: families render in registration
// order and series within a family in creation order, independent of map
// iteration — asserted by rendering twice and by exact line positions.
func TestWritePrometheusDeterministicOrder(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("z_total", "op", "b").Inc()
	reg.Counter("a_total").Inc()
	reg.Counter("z_total", "op", "a").Inc()
	reg.Gauge("m_gauge").Set(1)
	render := func() string {
		var sb strings.Builder
		if err := reg.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	first := render()
	for i := 0; i < 10; i++ {
		if got := render(); got != first {
			t.Fatalf("exposition not deterministic:\n%s\nvs\n%s", first, got)
		}
	}
	idx := func(s string) int { return strings.Index(first, s) }
	// z_total registered before a_total: family order follows registration.
	if !(idx("# TYPE z_total") < idx("# TYPE a_total") && idx("# TYPE a_total") < idx("# TYPE m_gauge")) {
		t.Fatalf("family order not registration order:\n%s", first)
	}
	// Series op="b" created before op="a": creation order within the family.
	if !(idx(`z_total{op="b"}`) < idx(`z_total{op="a"}`)) {
		t.Fatalf("series order not creation order:\n%s", first)
	}
}

// TestQuantileAtBucketBoundaries pins the estimator where observations sit
// exactly on bucket upper bounds: an observation equal to a bound lands in
// that bound's bucket (le is inclusive), interpolation reaches the bound
// exactly at the bucket's cumulative rank, and the overflow bucket clamps
// to the highest finite bound.
func TestQuantileAtBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	// 4 observations, each exactly on a bound (2 twice): cumulative counts
	// bucket(≤1)=1, bucket(≤2)=3, bucket(≤4)=4.
	for _, v := range []float64{1, 2, 2, 4} {
		h.Observe(v)
	}
	cases := []struct {
		q, want float64
	}{
		{0.25, 1}, // rank 1 = all of bucket 1: interpolates to its bound
		{0.75, 2}, // rank 3 exhausts bucket 2 exactly
		{1.00, 4}, // rank 4 = top of the last finite bucket
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Overflow: everything above the top bound clamps to it.
	h2 := newHistogram([]float64{1, 2, 4})
	h2.Observe(100)
	if got := h2.Quantile(0.99); got != 4 {
		t.Errorf("overflow Quantile = %v, want clamp to 4", got)
	}
	// Below the lowest bound: interpolation starts from 0.
	h3 := newHistogram([]float64{1, 2})
	h3.Observe(1)
	if got := h3.Quantile(0.5); got != 0.5 {
		t.Errorf("Quantile in first bucket = %v, want 0.5 (interpolated from 0)", got)
	}
}
