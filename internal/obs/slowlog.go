package obs

import (
	"log/slog"
	"time"
)

// SlowQueryLog emits a structured record for every operation slower than a
// threshold: the query text (truncated), its kind, duration, and a one-line
// plan summary from the operation's trace. A nil *SlowQueryLog is a valid
// no-op, so the server can thread it unconditionally.
type SlowQueryLog struct {
	logger    *slog.Logger
	threshold time.Duration
	count     *Counter
}

// maxLoggedQuery bounds the query text stored in a log record.
const maxLoggedQuery = 600

// The counter family is registered on the Default registry eagerly so that
// /metrics exposes rdfa_slow_queries_total 0 even when no slow-query log is
// configured (scrapers should see the series, not a gap).
var _ = Default.Counter("rdfa_slow_queries_total")

// NewSlowQueryLog builds a slow-query log. threshold <= 0 disables it
// (returns nil). logger nil means slog.Default(). Fired records are counted
// in reg's rdfa_slow_queries_total (reg may be nil).
func NewSlowQueryLog(logger *slog.Logger, threshold time.Duration, reg *Registry) *SlowQueryLog {
	if threshold <= 0 {
		return nil
	}
	if logger == nil {
		logger = slog.Default()
	}
	l := &SlowQueryLog{logger: logger, threshold: threshold}
	if reg != nil {
		l.count = reg.Counter("rdfa_slow_queries_total")
	}
	return l
}

// Threshold returns the configured threshold (0 for a nil log).
func (l *SlowQueryLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Observe records one finished operation, logging it when dur reaches the
// threshold. fingerprint is the query's structural fingerprint id (may be
// empty), so slow-log lines join against the workload profiler's
// aggregates; requestID (may be empty) joins them against access logs and
// trace exports. The raw query text is truncated rune-safely to
// maxLoggedQuery bytes, so a pathological multi-KB query cannot bloat the
// log line. tr may be nil.
func (l *SlowQueryLog) Observe(kind, query, fingerprint, requestID string, dur time.Duration, tr *Trace) {
	if l == nil || dur < l.threshold {
		return
	}
	l.count.Inc()
	l.logger.Warn("slow query",
		slog.String("kind", kind),
		slog.String("fingerprint", fingerprint),
		slog.String("request_id", requestID),
		slog.String("trace_id", tr.ID()),
		slog.Duration("duration", dur),
		slog.String("query", TruncateText(query, maxLoggedQuery)),
		slog.String("plan", tr.Summary()),
	)
}
