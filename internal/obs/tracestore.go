package obs

import (
	"encoding/json"
	"sort"
	"strings"
	"sync"
	"time"
)

// TraceStore is a bounded, concurrency-safe store of *completed* traces
// with tail-based sampling: the retention decision is made after the
// request finished, when its outcome and duration are known, instead of
// up-front like head sampling. The policy, in decision order:
//
//  1. error   — every trace that erred, timed out, or hit a resource
//     budget is retained (100%); these are exactly the traces an operator
//     goes looking for after an alert.
//  2. slowest — the slowest N completions per query fingerprint, so every
//     recurring query shape keeps its worst observed executions.
//  3. outlier — completions slower than OutlierFactor × the fingerprint's
//     rolling p95 (supplied by the workload profiler), catching latency
//     spikes on shapes whose slowest-N is already saturated with slower
//     historical runs.
//  4. residual — a deterministic 1-in-ResidualEvery sample of remaining
//     normal traffic, so healthy baseline executions stay inspectable.
//
// Everything else is dropped and accounted for. The store is bounded both
// by trace count and by approximate retained bytes; eviction removes the
// lowest-priority oldest trace first (residual before slowest/outlier
// before error), so errors are the last evidence to disappear.
//
// All methods are safe on a nil *TraceStore and do nothing, following the
// package's nil-off convention.
type TraceStore struct {
	cfg TraceStoreConfig

	mu     sync.Mutex
	byID   map[string]*retainedTrace
	list   []*retainedTrace // insertion (seq) order, oldest first
	fpSlow map[string][]time.Duration
	seq    uint64
	nth    uint64 // residual-sampling counter
	bytes  int64

	droppedSampled  uint64
	droppedEvicted  uint64
	droppedOversize uint64

	// cached metric handles for the hot (sampled-out) path
	mSampledOut *Counter
	mEvicted    *Counter
	mOversize   *Counter
}

// TraceStoreConfig tunes retention. The zero value means "enabled with
// defaults"; set Disabled to turn retention off entirely (NewTraceStore
// then returns nil, and every call on it is a no-op).
type TraceStoreConfig struct {
	Disabled bool
	// MaxTraces bounds the number of retained traces (default 512).
	MaxTraces int
	// MaxBytes bounds the approximate serialized size of retained traces
	// (default 8 MiB).
	MaxBytes int64
	// SlowestPerFingerprint is the N of the slowest-N rule (default 3).
	SlowestPerFingerprint int
	// OutlierFactor is the multiple of the fingerprint's rolling p95 above
	// which a completion counts as an outlier (default 2.0).
	OutlierFactor float64
	// ResidualEvery retains one in every ResidualEvery otherwise-unsampled
	// traces (default 50). Values < 1 disable the residual rule.
	ResidualEvery int
	// P95 reports the rolling p95 latency in seconds for a fingerprint
	// (ok=false when the fingerprint has no history yet). Typically wired
	// to the workload profiler. Called with the store lock held; the
	// callback must not call back into the store.
	P95 func(fingerprint string) (seconds float64, ok bool)
}

const (
	defaultMaxTraces     = 512
	defaultMaxTraceBytes = 8 << 20
	defaultSlowestPerFP  = 3
	defaultOutlierFactor = 2.0
	defaultResidualEvery = 50
	maxStoredQueryLen    = 2048
	defaultSearchLimit   = 50
	maxSearchLimit       = 500
)

// Retention reasons and drop causes (the label values of
// rdfa_trace_retained_total{reason} and rdfa_trace_dropped_total{cause}).
const (
	ReasonError    = "error"
	ReasonSlowest  = "slowest"
	ReasonOutlier  = "outlier"
	ReasonResidual = "residual"

	DropSampledOut = "sampled_out"
	DropEvicted    = "evicted"
	DropOversize   = "oversize"
)

// TraceCandidate is a completed trace offered for retention.
type TraceCandidate struct {
	Trace *Trace
	// Profile is the operator profile to retain alongside the spans
	// (typically a *sparql.ProfNodeJSON export); opaque to the store.
	Profile any
	// Kind classifies the operation: "sparql", "analytics", "update",
	// "checkpoint".
	Kind string
	// FingerprintID is the structural fingerprint joining this trace to
	// workload stats, SLOs and the answer cache.
	FingerprintID string
	// Shape is the human-readable fingerprint text.
	Shape string
	// Query is the raw query text (truncated for storage).
	Query     string
	RequestID string
	Duration  time.Duration
	// Outcome is "ok" or the abort taxonomy: "timeout", "canceled",
	// "budget", "error".
	Outcome string
	// Cache is the X-Cache result that produced this execution ("miss",
	// "bypass", ""), recorded so retained traces explain cache decisions.
	Cache string
	// Err is the error message for non-ok outcomes.
	Err string
}

// TraceSummary is the search-result wire form of a retained trace.
type TraceSummary struct {
	ID            string            `json:"id"`
	Kind          string            `json:"kind"`
	FingerprintID string            `json:"fingerprint,omitempty"`
	Shape         string            `json:"shape,omitempty"`
	Query         string            `json:"query,omitempty"`
	RequestID     string            `json:"request_id,omitempty"`
	Outcome       string            `json:"outcome"`
	Cache         string            `json:"cache,omitempty"`
	Err           string            `json:"error,omitempty"`
	Reason        string            `json:"reason"`
	DurationMS    float64           `json:"durationMs"`
	When          time.Time         `json:"when"`
	Serves        map[string]uint64 `json:"serves,omitempty"`
}

// TraceDetail is the single-trace wire form: the summary plus the full
// span waterfall and operator profile.
type TraceDetail struct {
	TraceSummary
	Spans   SpanJSON `json:"spans"`
	Profile any      `json:"profile,omitempty"`
}

type retainedTrace struct {
	id            string
	kind          string
	fingerprintID string
	shape         string
	query         string
	requestID     string
	outcome       string
	cache         string
	err           string
	reason        string
	duration      time.Duration
	when          time.Time
	spans         SpanJSON
	profile       any
	serves        map[string]uint64
	bytes         int64
	seq           uint64
}

// evictPriority orders traces for eviction: lower goes first.
func evictPriority(reason string) int {
	switch reason {
	case ReasonError:
		return 2
	case ReasonSlowest, ReasonOutlier:
		return 1
	default: // residual
		return 0
	}
}

// NewTraceStore builds a store with cfg (zero fields take defaults), or
// returns nil when cfg.Disabled — the nil store is a valid no-op.
func NewTraceStore(cfg TraceStoreConfig) *TraceStore {
	if cfg.Disabled {
		return nil
	}
	if cfg.MaxTraces <= 0 {
		cfg.MaxTraces = defaultMaxTraces
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = defaultMaxTraceBytes
	}
	if cfg.SlowestPerFingerprint <= 0 {
		cfg.SlowestPerFingerprint = defaultSlowestPerFP
	}
	if cfg.OutlierFactor <= 0 {
		cfg.OutlierFactor = defaultOutlierFactor
	}
	if cfg.ResidualEvery == 0 {
		cfg.ResidualEvery = defaultResidualEvery
	}
	s := &TraceStore{
		cfg:         cfg,
		byID:        make(map[string]*retainedTrace),
		fpSlow:      make(map[string][]time.Duration),
		mSampledOut: Default.Counter("rdfa_trace_dropped_total", "cause", DropSampledOut),
		mEvicted:    Default.Counter("rdfa_trace_dropped_total", "cause", DropEvicted),
		mOversize:   Default.Counter("rdfa_trace_dropped_total", "cause", DropOversize),
	}
	Default.GaugeFunc("rdfa_trace_store_traces", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.list))
	})
	Default.GaugeFunc("rdfa_trace_store_bytes", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.bytes)
	})
	return s
}

// Offer submits a completed trace for the retention decision. It returns
// the trace's ID and whether it was retained. The decision itself is a
// few map lookups; the serialization cost of actually storing a trace is
// paid only for retained ones.
func (s *TraceStore) Offer(c TraceCandidate) (id string, retained bool) {
	if s == nil || c.Trace == nil {
		return "", false
	}
	id = c.Trace.ID()
	if id == "" {
		id = NewTraceID()
		c.Trace.SetID(id)
	}

	s.mu.Lock()
	reason := s.decideLocked(c)
	if reason == "" {
		s.droppedSampled++
		s.mu.Unlock()
		s.mSampledOut.Inc()
		return id, false
	}
	s.mu.Unlock()

	// Export and size the trace outside the lock: span trees take their
	// own locks and serialization is the expensive part.
	rt := &retainedTrace{
		id:            id,
		kind:          c.Kind,
		fingerprintID: c.FingerprintID,
		shape:         TruncateText(c.Shape, maxStoredQueryLen),
		query:         TruncateText(c.Query, maxStoredQueryLen),
		requestID:     c.RequestID,
		outcome:       c.Outcome,
		cache:         c.Cache,
		err:           TruncateText(c.Err, maxStoredQueryLen),
		reason:        reason,
		duration:      c.Duration,
		when:          time.Now(),
		spans:         c.Trace.Export(),
		profile:       c.Profile,
	}
	rt.spans.TraceID = id
	rt.bytes = approxTraceBytes(rt)

	s.mu.Lock()
	s.insertLocked(rt)
	s.mu.Unlock()
	Default.Counter("rdfa_trace_retained_total", "reason", reason).Inc()
	return id, true
}

// decideLocked applies the tail-sampling policy and reserves slow-slot /
// residual-counter state for the candidate. Returns "" to drop.
func (s *TraceStore) decideLocked(c TraceCandidate) string {
	if c.Outcome != "" && c.Outcome != "ok" {
		return ReasonError
	}
	if fp := c.FingerprintID; fp != "" {
		slow := s.fpSlow[fp]
		if len(slow) < s.cfg.SlowestPerFingerprint || c.Duration > slow[0] {
			return ReasonSlowest
		}
		if s.cfg.P95 != nil {
			if p95, ok := s.cfg.P95(fp); ok && p95 > 0 &&
				c.Duration.Seconds() > s.cfg.OutlierFactor*p95 {
				return ReasonOutlier
			}
		}
	}
	if s.cfg.ResidualEvery > 0 {
		s.nth++
		if s.nth%uint64(s.cfg.ResidualEvery) == 0 {
			return ReasonResidual
		}
	}
	return ""
}

// insertLocked stores rt, updates the slowest-N bookkeeping and evicts
// down to the configured bounds.
func (s *TraceStore) insertLocked(rt *retainedTrace) {
	s.seq++
	rt.seq = s.seq
	s.byID[rt.id] = rt
	s.list = append(s.list, rt)
	s.bytes += rt.bytes
	if rt.reason == ReasonSlowest {
		slow := append(s.fpSlow[rt.fingerprintID], rt.duration)
		sort.Slice(slow, func(i, j int) bool { return slow[i] < slow[j] })
		if len(slow) > s.cfg.SlowestPerFingerprint {
			slow = slow[len(slow)-s.cfg.SlowestPerFingerprint:]
		}
		s.fpSlow[rt.fingerprintID] = slow
	}
	for (len(s.list) > s.cfg.MaxTraces || s.bytes > s.cfg.MaxBytes) && len(s.list) > 0 {
		victim := s.pickVictimLocked()
		cause := DropEvicted
		if victim == rt {
			// The newcomer itself is the lowest-priority trace (or simply
			// larger than the whole byte budget): reject rather than churn.
			cause = DropOversize
		}
		s.removeLocked(victim, cause)
		if victim == rt {
			return
		}
	}
}

// pickVictimLocked returns the retained trace with the lowest
// (priority, seq) — the oldest trace of the least-protected class.
func (s *TraceStore) pickVictimLocked() *retainedTrace {
	var victim *retainedTrace
	for _, rt := range s.list {
		if victim == nil {
			victim = rt
			continue
		}
		vp, rp := evictPriority(victim.reason), evictPriority(rt.reason)
		if rp < vp || (rp == vp && rt.seq < victim.seq) {
			victim = rt
		}
	}
	return victim
}

func (s *TraceStore) removeLocked(rt *retainedTrace, cause string) {
	delete(s.byID, rt.id)
	for i, cur := range s.list {
		if cur == rt {
			s.list = append(s.list[:i], s.list[i+1:]...)
			break
		}
	}
	s.bytes -= rt.bytes
	if rt.reason == ReasonSlowest {
		slow := s.fpSlow[rt.fingerprintID]
		for i, d := range slow {
			if d == rt.duration {
				slow = append(slow[:i], slow[i+1:]...)
				break
			}
		}
		if len(slow) == 0 {
			delete(s.fpSlow, rt.fingerprintID)
		} else {
			s.fpSlow[rt.fingerprintID] = slow
		}
	}
	switch cause {
	case DropOversize:
		s.droppedOversize++
		s.mOversize.Inc()
	default:
		s.droppedEvicted++
		s.mEvicted.Inc()
	}
}

// approxTraceBytes estimates the serialized footprint of a retained trace
// for the byte bound. JSON size is what /api/traces will actually ship.
func approxTraceBytes(rt *retainedTrace) int64 {
	n := int64(len(rt.id) + len(rt.kind) + len(rt.fingerprintID) +
		len(rt.shape) + len(rt.query) + len(rt.requestID) + len(rt.err) + 128)
	if b, err := json.Marshal(rt.spans); err == nil {
		n += int64(len(b))
	}
	if rt.profile != nil {
		if b, err := json.Marshal(rt.profile); err == nil {
			n += int64(len(b))
		}
	}
	return n
}

// RecordServe counts a request served from this retained trace's cached
// answer (result is the X-Cache value: "hit", "stale", "collapsed"), so a
// trace explains not just its own execution but the traffic it answered.
func (s *TraceStore) RecordServe(id, result string) {
	if s == nil || id == "" || result == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rt, ok := s.byID[id]
	if !ok {
		return
	}
	if rt.serves == nil {
		rt.serves = make(map[string]uint64, 4)
	}
	rt.serves[result]++
}

// Contains reports whether id names a currently retained trace. The HTTP
// middleware uses it to attach exemplars only for trace IDs that will
// actually resolve.
func (s *TraceStore) Contains(id string) bool {
	if s == nil || id == "" {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.byID[id]
	return ok
}

// TraceQuery filters Search. Zero fields match everything.
type TraceQuery struct {
	// Fingerprint matches FingerprintID exactly, or as a substring of the
	// shape text when no exact fingerprint matches it.
	Fingerprint string
	MinDuration time.Duration
	Outcome     string
	Reason      string
	Kind        string
	Since       time.Time
	// Limit caps results (default 50, max 500).
	Limit int
}

// Search returns summaries of retained traces matching q, newest first.
func (s *TraceStore) Search(q TraceQuery) []TraceSummary {
	if s == nil {
		return nil
	}
	limit := q.Limit
	if limit <= 0 {
		limit = defaultSearchLimit
	}
	if limit > maxSearchLimit {
		limit = maxSearchLimit
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []TraceSummary
	for i := len(s.list) - 1; i >= 0 && len(out) < limit; i-- {
		rt := s.list[i]
		if q.Fingerprint != "" && rt.fingerprintID != q.Fingerprint &&
			!strings.Contains(rt.shape, q.Fingerprint) {
			continue
		}
		if q.MinDuration > 0 && rt.duration < q.MinDuration {
			continue
		}
		if q.Outcome != "" && rt.outcome != q.Outcome {
			continue
		}
		if q.Reason != "" && rt.reason != q.Reason {
			continue
		}
		if q.Kind != "" && rt.kind != q.Kind {
			continue
		}
		if !q.Since.IsZero() && rt.when.Before(q.Since) {
			continue
		}
		out = append(out, rt.summaryLocked())
	}
	return out
}

// Get returns the full detail (span waterfall + profile) for a trace ID.
func (s *TraceStore) Get(id string) (TraceDetail, bool) {
	if s == nil {
		return TraceDetail{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rt, ok := s.byID[id]
	if !ok {
		return TraceDetail{}, false
	}
	return rt.detailLocked(), true
}

// Latest returns the newest retained trace of the given kind ("" for any).
func (s *TraceStore) Latest(kind string) (TraceDetail, bool) {
	if s == nil {
		return TraceDetail{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.list) - 1; i >= 0; i-- {
		if kind == "" || s.list[i].kind == kind {
			return s.list[i].detailLocked(), true
		}
	}
	return TraceDetail{}, false
}

func (rt *retainedTrace) summaryLocked() TraceSummary {
	sum := TraceSummary{
		ID:            rt.id,
		Kind:          rt.kind,
		FingerprintID: rt.fingerprintID,
		Shape:         rt.shape,
		Query:         rt.query,
		RequestID:     rt.requestID,
		Outcome:       rt.outcome,
		Cache:         rt.cache,
		Err:           rt.err,
		Reason:        rt.reason,
		DurationMS:    float64(rt.duration.Microseconds()) / 1000,
		When:          rt.when,
	}
	if len(rt.serves) > 0 {
		sum.Serves = make(map[string]uint64, len(rt.serves))
		for k, v := range rt.serves {
			sum.Serves[k] = v
		}
	}
	return sum
}

func (rt *retainedTrace) detailLocked() TraceDetail {
	return TraceDetail{
		TraceSummary: rt.summaryLocked(),
		Spans:        rt.spans,
		Profile:      rt.profile,
	}
}

// TraceStoreStats is the dashboard/accounting snapshot.
type TraceStoreStats struct {
	Retained        int            `json:"retained"`
	Bytes           int64          `json:"bytes"`
	ByReason        map[string]int `json:"by_reason,omitempty"`
	DroppedSampled  uint64         `json:"dropped_sampled_out"`
	DroppedEvicted  uint64         `json:"dropped_evicted"`
	DroppedOversize uint64         `json:"dropped_oversize"`
}

// Stats snapshots retention accounting.
func (s *TraceStore) Stats() TraceStoreStats {
	if s == nil {
		return TraceStoreStats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := TraceStoreStats{
		Retained:        len(s.list),
		Bytes:           s.bytes,
		DroppedSampled:  s.droppedSampled,
		DroppedEvicted:  s.droppedEvicted,
		DroppedOversize: s.droppedOversize,
	}
	if len(s.list) > 0 {
		st.ByReason = make(map[string]int, 4)
		for _, rt := range s.list {
			st.ByReason[rt.reason]++
		}
	}
	return st
}
