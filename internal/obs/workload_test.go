package obs

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

func wlRec(fp string, d time.Duration, outcome string, when time.Time) QueryRecord {
	return QueryRecord{
		FingerprintID: fp,
		Shape:         "select ?v1 {?v1 $ $}",
		Kind:          "sparql",
		Query:         "SELECT ?s WHERE { ?s <p> 1 }",
		Duration:      d,
		Rows:          10,
		Outcome:       outcome,
		When:          when,
	}
}

func TestWorkloadAggregates(t *testing.T) {
	w := NewWorkload(16)
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 5; i++ {
		w.Observe(wlRec("fpA", 10*time.Millisecond, "ok", base.Add(time.Duration(i)*time.Second)), nil)
	}
	w.Observe(wlRec("fpA", 200*time.Millisecond, "timeout", base.Add(10*time.Second)), map[string]any{"worst": true})
	w.Observe(wlRec("fpB", 1*time.Millisecond, "ok", base), nil)
	snap := w.Snapshot()
	if snap.Total != 7 || snap.Errors != 1 {
		t.Fatalf("total/errors = %d/%d, want 7/1", snap.Total, snap.Errors)
	}
	if len(snap.Fingerprints) != 2 {
		t.Fatalf("fingerprints = %d, want 2", len(snap.Fingerprints))
	}
	// Most frequent first.
	a := snap.Fingerprints[0]
	if a.ID != "fpA" || a.Count != 6 {
		t.Fatalf("first fingerprint = %s count %d, want fpA count 6", a.ID, a.Count)
	}
	if a.Outcomes["ok"] != 5 || a.Outcomes["timeout"] != 1 {
		t.Fatalf("outcomes = %v", a.Outcomes)
	}
	if a.P95Ms < a.P50Ms || a.P50Ms <= 0 {
		t.Fatalf("quantiles broken: p50=%v p95=%v", a.P50Ms, a.P95Ms)
	}
	// The worst-case run keeps its exemplar.
	if a.Exemplar == nil || a.WorstMs < 100 {
		t.Fatalf("worst-case exemplar not retained: worst=%vms exemplar=%v", a.WorstMs, a.Exemplar)
	}
	// Snapshot must be JSON-marshalable as served by /api/workload.
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not marshalable: %v", err)
	}
}

func TestWorkloadRingWraps(t *testing.T) {
	w := NewWorkload(16)
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 40; i++ {
		w.Observe(wlRec(fmt.Sprintf("fp%d", i), time.Millisecond, "ok", base.Add(time.Duration(i)*time.Second)), nil)
	}
	snap := w.Snapshot()
	if len(snap.Recent) != 16 {
		t.Fatalf("recent = %d, want ring size 16", len(snap.Recent))
	}
	// Newest first.
	if snap.Recent[0].FingerprintID != "fp39" || snap.Recent[15].FingerprintID != "fp24" {
		t.Fatalf("ring order wrong: first=%s last=%s", snap.Recent[0].FingerprintID, snap.Recent[15].FingerprintID)
	}
	if snap.Total != 40 {
		t.Fatalf("total = %d, want 40 (ring wrap must not reset totals)", snap.Total)
	}
}

func TestWorkloadFingerprintEviction(t *testing.T) {
	w := NewWorkload(16)
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	for i := 0; i < maxFingerprints+50; i++ {
		w.Observe(wlRec(fmt.Sprintf("fp%d", i), time.Millisecond, "ok", base.Add(time.Duration(i)*time.Second)), nil)
	}
	if n := len(w.Snapshot().Fingerprints); n != maxFingerprints {
		t.Fatalf("fingerprint map = %d entries, want bounded at %d", n, maxFingerprints)
	}
	// The oldest entries are the evicted ones.
	for _, fs := range w.Snapshot().Fingerprints {
		if fs.ID == "fp0" {
			t.Fatal("least-recently-seen fingerprint fp0 survived eviction")
		}
	}
}

func TestWorkloadMisestimates(t *testing.T) {
	w := NewWorkload(16)
	w.ObserveEstimates([]OpEstimate{
		{Op: "scan", Label: "?s <p> ?o .", Est: 100, Actual: 10, QError: 10},
		{Op: "scan", Label: "?s <q> ?o .", Est: 50, Actual: 50, QError: 1},
	})
	// Same site again, worse: q-error and est/act update, count accumulates.
	w.ObserveEstimates([]OpEstimate{
		{Op: "scan", Label: "?s <p> ?o .", Est: 100, Actual: 1, QError: 100},
	})
	snap := w.Snapshot()
	if len(snap.Misestimates) != 2 {
		t.Fatalf("misestimates = %d, want 2", len(snap.Misestimates))
	}
	top := snap.Misestimates[0]
	if top.QError != 100 || top.Actual != 1 || top.Count != 2 {
		t.Fatalf("worst site not updated: %+v", top)
	}
	// The table stays bounded, displacing only less-bad entries.
	var batch []OpEstimate
	for i := 0; i < maxMisestimates+20; i++ {
		batch = append(batch, OpEstimate{Op: "scan", Label: fmt.Sprintf("p%d", i), QError: float64(i)})
	}
	w.ObserveEstimates(batch)
	snap = w.Snapshot()
	if len(snap.Misestimates) != maxMisestimates {
		t.Fatalf("misestimate table = %d, want bounded at %d", len(snap.Misestimates), maxMisestimates)
	}
	if snap.Misestimates[0].QError != 100 {
		t.Fatalf("worst entry displaced: %+v", snap.Misestimates[0])
	}
}

func TestWorkloadNilAndTopSlow(t *testing.T) {
	var w *Workload
	w.Observe(QueryRecord{}, nil)
	w.ObserveEstimates([]OpEstimate{{QError: 2}})
	if snap := w.Snapshot(); snap.Total != 0 {
		t.Fatal("nil workload must be inert")
	}
	ww := NewWorkload(16)
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	ww.Observe(wlRec("slow", 500*time.Millisecond, "ok", base), nil)
	ww.Observe(wlRec("fast", time.Millisecond, "ok", base), nil)
	top := ww.TopSlow(1)
	if len(top) != 1 || top[0].ID != "slow" {
		t.Fatalf("TopSlow = %+v", top)
	}
}

func TestTruncateText(t *testing.T) {
	if got := TruncateText("short", 100); got != "short" {
		t.Errorf("short text modified: %q", got)
	}
	long := ""
	for i := 0; i < 100; i++ {
		long += "é" // 2 bytes each
	}
	got := TruncateText(long, 101) // falls inside a rune
	if len(got) > 101+len("…") {
		t.Errorf("truncated to %d bytes, want <= %d", len(got), 101+len("…"))
	}
	for _, r := range got {
		if r == '�' {
			t.Error("truncation split a rune")
		}
	}
}
