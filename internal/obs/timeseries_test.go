package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

// t0 is the fixed epoch of the synthetic timelines driven by these tests.
var t0 = time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)

func TestRingWraparound(t *testing.T) {
	r := newRing(4)
	for i := 0; i < 6; i++ {
		r.push(point{t: int64(i), v: float64(i)})
	}
	if r.len() != 4 {
		t.Fatalf("len = %d, want 4", r.len())
	}
	// The two oldest points (0, 1) were overwritten.
	for i := 0; i < 4; i++ {
		if got := r.at(i).v; got != float64(i+2) {
			t.Errorf("at(%d) = %v, want %v", i, got, i+2)
		}
	}
	last := r.last(2)
	if len(last) != 2 || last[0].v != 4 || last[1].v != 5 {
		t.Errorf("last(2) = %v, want [4 5]", last)
	}
	// Asking for more than retained returns everything, oldest first.
	if got := r.last(10); len(got) != 4 || got[0].v != 2 {
		t.Errorf("last(10) = %v", got)
	}
}

// TestIncreaseCounterReset checks the Prometheus increase() rule: a counter
// going 10 → 20 → 5 restarted between the samples, so the increase is
// (20-10) + 5 = 15, not -5.
func TestIncreaseCounterReset(t *testing.T) {
	pts := []point{{t: 0, v: 10}, {t: 1, v: 20}, {t: 2, v: 5}}
	if got := increase(pts); got != 15 {
		t.Fatalf("increase = %v, want 15", got)
	}
	if got := increase(nil); got != 0 {
		t.Fatalf("increase(nil) = %v, want 0", got)
	}
	if got := increase(pts[:1]); got != 0 {
		t.Fatalf("increase(single) = %v, want 0", got)
	}
}

// ingestTicks feeds n ticks of one counter at 10s spacing, values from vals.
func ingestTicks(db *TSDB, key string, kind SampleKind, vals []float64) time.Time {
	now := t0
	for i, v := range vals {
		now = t0.Add(time.Duration(i) * 10 * time.Second)
		db.Ingest(now, []Sample{{Key: key, Kind: kind, Value: v}})
	}
	return now
}

func TestWindowIncreaseWithReset(t *testing.T) {
	db := NewTSDB(TSDBConfig{Interval: 10 * time.Second})
	now := ingestTicks(db, "c", SampleCounter, []float64{100, 150, 10, 40})
	// Increase = 50 (100→150) + 10 (reset) + 30 (10→40) = 90.
	if got := db.WindowIncrease("c", now, time.Hour); got != 90 {
		t.Fatalf("window increase = %v, want 90", got)
	}
	// A 10s window at now covers the last two points plus one boundary
	// point before the window start (so boundary-crossing increases are not
	// lost): 150→10 reset (+10) then 10→40 (+30) = 40.
	if got := db.WindowIncrease("c", now, 10*time.Second); got != 40 {
		t.Fatalf("short window increase = %v, want 40", got)
	}
	if got := db.WindowIncrease("unknown", now, time.Hour); got != 0 {
		t.Fatalf("unknown series increase = %v, want 0", got)
	}
}

// TestCoarseFallback wraps the fine ring and checks long-window reads fall
// back to the coarse roll-up, preserving the increase.
func TestCoarseFallback(t *testing.T) {
	db := NewTSDB(TSDBConfig{
		Interval:     10 * time.Second,
		FineCapacity: 4, CoarseEvery: 3, CoarseCapacity: 100,
	})
	vals := make([]float64, 30)
	for i := range vals {
		vals[i] = float64(i * 10) // +10 per tick, 290 total
	}
	now := ingestTicks(db, "c", SampleCounter, vals)
	// The fine ring holds only the last 4 points (≈30s); a 10-minute window
	// must fall back to the coarse ring. Coarse ticks land every 3rd ingest
	// (values 0, 30, …, 270), so the increase is 270 — the roll-up lags the
	// newest fine samples by design.
	got := db.WindowIncrease("c", now, 10*time.Minute)
	if got != 270 {
		t.Fatalf("coarse window increase = %v, want 270", got)
	}
}

func TestMaxSeriesDrops(t *testing.T) {
	db := NewTSDB(TSDBConfig{Interval: time.Second, MaxSeries: 2})
	db.Ingest(t0, []Sample{
		{Key: "a", Kind: SampleGauge, Value: 1},
		{Key: "b", Kind: SampleGauge, Value: 2},
		{Key: "c", Kind: SampleGauge, Value: 3},
	})
	if db.SeriesCount() != 2 {
		t.Fatalf("series = %d, want 2", db.SeriesCount())
	}
	if db.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", db.Dropped())
	}
	// Existing series keep accepting samples past the cap.
	db.Ingest(t0.Add(time.Second), []Sample{{Key: "a", Kind: SampleGauge, Value: 9}})
	if v, ok := db.Latest("a"); !ok || v != 9 {
		t.Fatalf("latest a = %v %v", v, ok)
	}
}

func TestRateSeries(t *testing.T) {
	db := NewTSDB(TSDBConfig{Interval: 10 * time.Second})
	// Two counter series of one family: 2/s and 1/s over 10s ticks.
	for i := 0; i < 5; i++ {
		db.Ingest(t0.Add(time.Duration(i)*10*time.Second), []Sample{
			{Key: `req{endpoint="a"}`, Kind: SampleCounter, Value: float64(i * 20)},
			{Key: `req{endpoint="b"}`, Kind: SampleCounter, Value: float64(i * 10)},
			{Key: `other`, Kind: SampleCounter, Value: float64(i * 100)},
			{Key: `gauge`, Kind: SampleGauge, Value: 5},
		})
	}
	rates := db.RateSeries("req{", 10)
	if len(rates) != 4 {
		t.Fatalf("rates = %v, want 4 points", rates)
	}
	for i, r := range rates {
		if math.Abs(r-3) > 1e-9 { // 2/s + 1/s summed across the family
			t.Errorf("rate[%d] = %v, want 3", i, r)
		}
	}
	// Predicate selection: only endpoint="b".
	only := db.RateSeriesMatch(func(k string) bool {
		return strings.Contains(k, `endpoint="b"`)
	}, 10)
	for i, r := range only {
		if math.Abs(r-1) > 1e-9 {
			t.Errorf("matched rate[%d] = %v, want 1", i, r)
		}
	}
	// A counter reset clamps to the post-reset value instead of negative.
	db.Ingest(t0.Add(50*time.Second), []Sample{
		{Key: `req{endpoint="a"}`, Kind: SampleCounter, Value: 5},
		{Key: `req{endpoint="b"}`, Kind: SampleCounter, Value: 50},
	})
	rates = db.RateSeries("req{", 10)
	lastRate := rates[len(rates)-1]
	if lastRate < 0 {
		t.Fatalf("reset produced negative rate %v", lastRate)
	}
}

func TestGaugeSeries(t *testing.T) {
	db := NewTSDB(TSDBConfig{Interval: time.Second})
	now := ingestTicks(db, "g", SampleGauge, []float64{1, 2, 3})
	_ = now
	if got := db.GaugeSeries("g", 2); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("gauge series = %v, want [2 3]", got)
	}
	if got := db.GaugeSeries("missing", 2); got != nil {
		t.Fatalf("missing gauge series = %v, want nil", got)
	}
}

func TestQuantileSeries(t *testing.T) {
	db := NewTSDB(TSDBConfig{Interval: 10 * time.Second})
	// Histogram family "lat" with buckets 0.1, 1, +Inf. Tick 1 is the
	// baseline; tick 2 adds 100 observations all ≤ 1 (none ≤ 0.1).
	db.Ingest(t0, []Sample{
		{Key: `lat_bucket{le="0.1"}`, Kind: SampleCounter, Value: 0},
		{Key: `lat_bucket{le="1"}`, Kind: SampleCounter, Value: 0},
		{Key: `lat_bucket{le="+Inf"}`, Kind: SampleCounter, Value: 0},
	})
	db.Ingest(t0.Add(10*time.Second), []Sample{
		{Key: `lat_bucket{le="0.1"}`, Kind: SampleCounter, Value: 0},
		{Key: `lat_bucket{le="1"}`, Kind: SampleCounter, Value: 100},
		{Key: `lat_bucket{le="+Inf"}`, Kind: SampleCounter, Value: 100},
	})
	qs := db.QuantileSeries("lat", 0.95, time.Minute, 10)
	if len(qs) != 2 {
		t.Fatalf("quantile series = %v, want 2 points", qs)
	}
	// Tick 1 saw no observations → 0. Tick 2: rank 95 of 100 falls in the
	// (0.1, 1] bucket → 0.1 + 0.9·(95/100) = 0.955.
	if qs[0] != 0 {
		t.Errorf("q[0] = %v, want 0 (no observations yet)", qs[0])
	}
	if math.Abs(qs[1]-0.955) > 1e-9 {
		t.Errorf("q[1] = %v, want 0.955", qs[1])
	}
	if got := db.QuantileSeries("nosuch", 0.95, time.Minute, 10); got != nil {
		t.Errorf("unknown family = %v, want nil", got)
	}
}

func TestExport(t *testing.T) {
	db := NewTSDB(TSDBConfig{Interval: 10 * time.Second})
	ingestTicks(db, "reqs_total", SampleCounter, []float64{0, 10, 30})
	db.Ingest(t0, []Sample{{Key: "heap", Kind: SampleGauge, Value: 42}})
	out := db.Export("", "")
	if out.IntervalSeconds != 10 {
		t.Errorf("interval = %v, want 10", out.IntervalSeconds)
	}
	if out.SeriesCount != 2 || len(out.Series) != 2 {
		t.Fatalf("series count = %d/%d, want 2", out.SeriesCount, len(out.Series))
	}
	var counter *SeriesJSON
	for i := range out.Series {
		if out.Series[i].Key == "reqs_total" {
			counter = &out.Series[i]
		}
	}
	if counter == nil {
		t.Fatal("counter series missing from export")
	}
	if counter.Kind != "counter" || len(counter.Points) != 3 {
		t.Fatalf("counter export = %+v", counter)
	}
	if len(counter.Rates) != 2 || counter.Rates[0] != 1 || counter.Rates[1] != 2 {
		t.Fatalf("derived rates = %v, want [1 2]", counter.Rates)
	}
	// Substring filter.
	filtered := db.Export("heap", "")
	if len(filtered.Series) != 1 || filtered.Series[0].Key != "heap" {
		t.Fatalf("filtered export = %+v", filtered.Series)
	}
}

// TestSamplerTick drives a passive sampler with a synthetic clock over a
// fresh registry and checks scraped metrics, fingerprint series and the
// telemetry summary.
func TestSamplerTick(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("rdfa_test_total")
	w := NewWorkload(16)
	s := NewSampler(reg, w, nil, TSDBConfig{Interval: 10 * time.Second})

	c.Inc()
	w.Observe(QueryRecord{
		FingerprintID: "fp1", Shape: "S", Kind: "sparql",
		Duration: 20 * time.Millisecond, Outcome: "ok", When: t0,
	}, nil)
	s.Tick(t0)
	c.Inc()
	s.Tick(t0.Add(10 * time.Second))

	db := s.DB()
	if v, ok := db.Latest("rdfa_test_total"); !ok || v != 2 {
		t.Fatalf("latest counter = %v %v, want 2", v, ok)
	}
	if v, ok := db.Latest(`rdfa_fp_latency_p95_ms{fingerprint="fp1"}`); !ok || v <= 0 {
		t.Fatalf("fingerprint p95 series = %v %v, want > 0", v, ok)
	}
	if got := db.WindowIncrease("rdfa_test_total", t0.Add(10*time.Second), time.Minute); got != 1 {
		t.Fatalf("counter increase across ticks = %v, want 1", got)
	}
	sum := s.TelemetrySummary()
	for _, key := range []string{"heap_alloc_bytes", "goroutines", "sampler_ticks", "tracked_series"} {
		if _, ok := sum[key]; !ok {
			t.Errorf("telemetry summary missing %q", key)
		}
	}
	if sum["sampler_ticks"] != 2 {
		t.Errorf("sampler_ticks = %v, want 2", sum["sampler_ticks"])
	}
	// Nil receivers are inert.
	var nilS *Sampler
	nilS.Tick(t0)
	nilS.Close()
	if nilS.TelemetrySummary() != nil {
		t.Error("nil sampler summary should be nil")
	}
}

// TestRegistrySamples checks the scrape API's series shapes: counters and
// gauges per label set, histograms as _count/_sum per series plus
// family-aggregated cumulative _bucket series.
func TestRegistrySamples(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits_total", "route", "a").Inc()
	reg.Counter("hits_total", "route", "b").Add(2)
	reg.Gauge("temp").Set(7)
	h := reg.Histogram("lat_seconds", []float64{0.1, 1}, "ep", "x")
	h.Observe(0.05)
	h.Observe(0.5)

	byKey := map[string]Sample{}
	for _, s := range reg.Samples() {
		byKey[s.Key] = s
	}
	if s := byKey[`hits_total{route="a"}`]; s.Kind != SampleCounter || s.Value != 1 {
		t.Errorf("counter a = %+v", s)
	}
	if s := byKey[`hits_total{route="b"}`]; s.Value != 2 {
		t.Errorf("counter b = %+v", s)
	}
	if s := byKey["temp"]; s.Kind != SampleGauge || s.Value != 7 {
		t.Errorf("gauge = %+v", s)
	}
	if s := byKey[`lat_seconds_count{ep="x"}`]; s.Kind != SampleCounter || s.Value != 2 {
		t.Errorf("hist count = %+v", s)
	}
	if s, ok := byKey[`lat_seconds_sum{ep="x"}`]; !ok || math.Abs(s.Value-0.55) > 1e-9 {
		t.Errorf("hist sum = %+v", s)
	}
	// Aggregated buckets are cumulative: ≤0.1 has 1, ≤1 has 2, +Inf has 2.
	if s := byKey[`lat_seconds_bucket{le="0.1"}`]; s.Value != 1 {
		t.Errorf("bucket 0.1 = %+v", s)
	}
	if s := byKey[`lat_seconds_bucket{le="1"}`]; s.Value != 2 {
		t.Errorf("bucket 1 = %+v", s)
	}
	if s := byKey[`lat_seconds_bucket{le="+Inf"}`]; s.Value != 2 {
		t.Errorf("bucket +Inf = %+v", s)
	}
}
