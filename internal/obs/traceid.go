package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync/atomic"
)

// Trace-ID minting and context plumbing. IDs must be cheap enough to mint
// on every request (they sit on the HTTP hot path), unique within and
// across process restarts, and plain lowercase hex so they survive header
// and exposition-format round trips untouched.
//
// Format: 8 hex chars of per-process random prefix + 8 hex chars of an
// atomic counter — 16 chars total. The prefix is drawn once from
// crypto/rand at startup, so two processes (or two runs of one binary)
// do not collide; the counter makes every ID within a process distinct
// without a syscall per trace.

var (
	traceIDPrefix = func() string {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			// Degrade to a fixed prefix; uniqueness within the process
			// still holds via the counter.
			return "00000000"
		}
		return hex.EncodeToString(b[:])
	}()
	traceIDSeq atomic.Uint64
)

// NewTraceID mints a process-unique 16-char lowercase-hex trace ID.
func NewTraceID() string {
	n := traceIDSeq.Add(1)
	const digits = "0123456789abcdef"
	var buf [16]byte
	copy(buf[:8], traceIDPrefix)
	for i := 15; i >= 8; i-- {
		buf[i] = digits[n&0xf]
		n >>= 4
	}
	return string(buf[:])
}

type ctxKey int

const (
	ctxKeyRequestID ctxKey = iota
	ctxKeyTraceID
)

// WithTraceID returns a context carrying the trace ID minted (or accepted)
// by the HTTP middleware, so layers below the handler — core sessions,
// executors — can adopt it instead of minting their own.
func WithTraceID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, ctxKeyTraceID, id)
}

// TraceIDFrom extracts the trace ID from ctx ("" when absent).
func TraceIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyTraceID).(string)
	return id
}

// WithRequestID returns a context carrying the request ID from
// X-Request-ID, for the same adoption pattern as WithTraceID.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, ctxKeyRequestID, id)
}

// RequestIDFrom extracts the request ID from ctx ("" when absent).
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyRequestID).(string)
	return id
}
