package obs

import (
	"strings"
	"testing"
)

func TestTraceIDFormatAndContext(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if len(id) != 16 {
			t.Fatalf("trace id %q: want 16 hex chars", id)
		}
		for _, c := range id {
			if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
				t.Fatalf("trace id %q contains non-hex %q", id, c)
			}
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %q", id)
		}
		seen[id] = true
	}
}

func TestTraceCarriesID(t *testing.T) {
	tr := NewTrace("q")
	if tr.ID() == "" {
		t.Fatal("NewTrace minted no id")
	}
	tr.SetID("override00000001")
	if got := tr.ID(); got != "override00000001" {
		t.Fatalf("SetID: got %q", got)
	}
	tr.SetID("") // ignored
	if tr.ID() != "override00000001" {
		t.Fatal("empty SetID overwrote the id")
	}
	tr.Finish()
	if exp := tr.Export(); exp.TraceID != "override00000001" {
		t.Fatalf("export trace_id = %q", exp.TraceID)
	}
	var nilTr *Trace
	if nilTr.ID() != "" {
		t.Fatal("nil trace has an id")
	}
	nilTr.SetID("x") // must not panic
}

func TestWriteOpenMetricsExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("om_test_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.ObserveExemplar(0.5, "abcdef0123456789")
	c := r.Counter("om_requests_total")
	c.Inc()

	var om strings.Builder
	if err := r.WriteOpenMetrics(&om); err != nil {
		t.Fatal(err)
	}
	out := om.String()
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatalf("missing # EOF terminator:\n%s", out)
	}
	// Counter metadata drops _total; the sample line keeps it.
	if !strings.Contains(out, "# TYPE om_requests counter") {
		t.Fatalf("counter TYPE keeps _total:\n%s", out)
	}
	if !strings.Contains(out, "om_requests_total 1") {
		t.Fatalf("counter sample lost _total:\n%s", out)
	}
	// The 0.5 observation lands in the le="1" bucket and carries the
	// exemplar; the le="0.1" bucket has none.
	if !strings.Contains(out, `om_test_seconds_bucket{le="1"} 2 # {trace_id="abcdef0123456789"} 0.5 `) {
		t.Fatalf("exemplar missing from le=1 bucket:\n%s", out)
	}
	if strings.Contains(out, `le="0.1"} 1 #`) {
		t.Fatalf("exemplar on wrong bucket:\n%s", out)
	}

	// The default Prometheus 0.0.4 rendering must never carry exemplars.
	var prom strings.Builder
	r.WritePrometheus(&prom)
	if strings.Contains(prom.String(), "# {") {
		t.Fatalf("exemplar leaked into 0.0.4 exposition:\n%s", prom.String())
	}
}

func TestExemplarsMatching(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("em_seconds", []float64{0.1, 1}, "endpoint", "/sparql")
	h.ObserveExemplar(0.3, "1111111111111111")
	h.ObserveExemplar(0.4, "2222222222222222") // same bucket: last writer wins
	r.Histogram("other_seconds", nil).ObserveExemplar(3, "3333333333333333")

	got := r.ExemplarsMatching("em_seconds", 0)
	if len(got) != 1 {
		t.Fatalf("got %d exemplars, want 1 (filtered): %+v", len(got), got)
	}
	if got[0].TraceID != "2222222222222222" {
		t.Fatalf("last-writer-wins violated: %+v", got[0])
	}
	if !strings.Contains(got[0].Series, `endpoint="/sparql"`) {
		t.Fatalf("series key lost labels: %q", got[0].Series)
	}
	if all := r.ExemplarsMatching("", 0); len(all) != 2 {
		t.Fatalf("unfiltered: got %d, want 2", len(all))
	}
	if lim := r.ExemplarsMatching("", 1); len(lim) != 1 {
		t.Fatalf("limit: got %d, want 1", len(lim))
	}
}

func TestAcceptsOpenMetrics(t *testing.T) {
	if AcceptsOpenMetrics("text/plain") {
		t.Fatal("plain accept negotiated OpenMetrics")
	}
	if !AcceptsOpenMetrics("application/openmetrics-text; version=1.0.0") {
		t.Fatal("OpenMetrics accept not recognized")
	}
}
