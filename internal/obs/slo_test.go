package obs

import (
	"math"
	"testing"
	"time"
)

// sloFixture wires a fresh registry, alert log, SLO set and sampler so a
// test can record events, tick a synthetic clock and evaluate burn rates
// deterministically.
type sloFixture struct {
	reg     *Registry
	alerts  *AlertLog
	slos    *SLOSet
	sampler *Sampler
}

func newSLOFixture(burn BurnConfig) *sloFixture {
	reg := NewRegistry()
	alerts := NewAlertLog(reg)
	slos := NewSLOSet(reg, alerts, burn)
	return &sloFixture{
		reg: reg, alerts: alerts, slos: slos,
		sampler: NewSampler(reg, nil, slos, TSDBConfig{Interval: 10 * time.Second}),
	}
}

// TestBurnRateHandComputed fixes a synthetic timeline and checks the burn
// rates against hand-computed values: target 0.9 (budget 0.1), 10 events of
// which 5 bad inside the window → badFraction 0.5 → burn 5.0.
func TestBurnRateHandComputed(t *testing.T) {
	f := newSLOFixture(BurnConfig{})
	o := f.slos.Add("t", SLOAvailability, 0.9, 0)
	if o == nil {
		t.Fatal("Add returned nil")
	}
	f.sampler.Tick(t0) // baseline: good=0 total=0
	for i := 0; i < 10; i++ {
		o.Record(i >= 5) // 5 bad, 5 good
	}
	now := t0.Add(10 * time.Second)
	f.sampler.Tick(now)

	st := f.slos.Statuses()
	if len(st) != 1 {
		t.Fatalf("statuses = %d, want 1", len(st))
	}
	for _, win := range []string{"fast_short", "fast_long", "slow_short", "slow_long"} {
		if got := st[0].Burn[win]; math.Abs(got-5) > 1e-9 {
			t.Errorf("burn[%s] = %v, want 5", win, got)
		}
	}
	// Budget remaining over slow-long: 1 - 5 = -4 (overspent).
	if got := st[0].BudgetRemaining; math.Abs(got-(-4)) > 1e-9 {
		t.Errorf("budget remaining = %v, want -4", got)
	}
	if st[0].Events != 10 || st[0].Good != 5 {
		t.Errorf("lifetime events/good = %d/%d, want 10/5", st[0].Events, st[0].Good)
	}
	// Burn 5 is below both factors (14.4 page / 6 warn) → no alert.
	if sev := f.alerts.MaxSeverity(); sev != "" {
		t.Errorf("severity = %q, want none", sev)
	}
	// The burn gauges are exported as metrics.
	if v := f.reg.Gauge("rdfa_slo_burn_rate", "objective", "t", "window", "fast_short").Value(); math.Abs(v-5) > 1e-9 {
		t.Errorf("burn gauge = %v, want 5", v)
	}
}

// TestMultiWindowAlerting walks an objective through the full loop: quiet →
// page (both fast windows burning) → resolved after the bad traffic ages
// out of the windows.
func TestMultiWindowAlerting(t *testing.T) {
	f := newSLOFixture(BurnConfig{})
	o := f.slos.Add("lat", SLOLatency, 0.95, 100*time.Millisecond)
	f.sampler.Tick(t0)

	// Every event fails: badFraction 1 → burn 1/0.05 = 20 ≥ 14.4 in every
	// window that saw the traffic.
	for i := 0; i < 50; i++ {
		o.Observe(time.Second, false) // slow → bad even without an error
	}
	now := t0.Add(10 * time.Second)
	f.sampler.Tick(now)
	if sev := f.alerts.MaxSeverity(); sev != SeverityPage {
		t.Fatalf("severity = %q, want page", sev)
	}
	snap := f.alerts.Snapshot()
	if len(snap.Active) != 1 || snap.Active[0].Objective != "lat" {
		t.Fatalf("active alerts = %+v", snap.Active)
	}
	if len(snap.Recent) != 1 || snap.Recent[0].State != "firing" {
		t.Fatalf("events = %+v", snap.Recent)
	}

	// Two hours later the bad burst is outside every window; a trickle of
	// good traffic keeps the series fresh. The alert must resolve.
	for i := 1; i <= 3; i++ {
		o.Observe(time.Millisecond, false)
		f.sampler.Tick(now.Add(time.Duration(i) * time.Hour))
	}
	if sev := f.alerts.MaxSeverity(); sev != "" {
		t.Fatalf("severity after recovery = %q, want none", sev)
	}
	snap = f.alerts.Snapshot()
	if len(snap.Active) != 0 {
		t.Fatalf("active after recovery = %+v", snap.Active)
	}
	if len(snap.Recent) != 2 || snap.Recent[0].State != "resolved" {
		t.Fatalf("timeline after recovery = %+v", snap.Recent)
	}
	if v := f.reg.Counter("rdfa_slo_alert_transitions_total", "state", "firing").Value(); v != 1 {
		t.Errorf("firing transitions = %d, want 1", v)
	}
	if v := f.reg.Counter("rdfa_slo_alert_transitions_total", "state", "resolved").Value(); v != 1 {
		t.Errorf("resolved transitions = %d, want 1", v)
	}
}

// TestWarnSeverity drives a slow leak that trips only the 6x slow pair.
func TestWarnSeverity(t *testing.T) {
	// Custom windows so one tick pair covers both slow windows but the burn
	// stays under the page factor: badFraction 0.8 at target 0.9 → burn 8,
	// warn (≥6) but not page (<14.4).
	f := newSLOFixture(BurnConfig{})
	o := f.slos.Add("leak", SLOAvailability, 0.9, 0)
	f.sampler.Tick(t0)
	for i := 0; i < 10; i++ {
		o.Record(i >= 8) // 8 bad, 2 good
	}
	f.sampler.Tick(t0.Add(10 * time.Second))
	if sev := f.alerts.MaxSeverity(); sev != SeverityWarn {
		t.Fatalf("severity = %q, want warn", sev)
	}
}

func TestSLOSetAddValidation(t *testing.T) {
	f := newSLOFixture(BurnConfig{})
	if f.slos.Add("bad", SLOAvailability, 0, 0) != nil {
		t.Error("target 0 must be rejected")
	}
	if f.slos.Add("bad", SLOAvailability, 1, 0) != nil {
		t.Error("target 1 must be rejected")
	}
	a := f.slos.Add("x", SLOAvailability, 0.99, 0)
	b := f.slos.Add("x", SLOLatency, 0.5, time.Second)
	if a == nil || a != b {
		t.Error("Add must be idempotent per name")
	}
	// Nil receivers and nil objectives are inert.
	var nilSet *SLOSet
	if nilSet.Add("x", SLOAvailability, 0.9, 0) != nil {
		t.Error("nil set Add must return nil")
	}
	nilSet.Evaluate(t0, nil)
	var nilObj *Objective
	nilObj.Record(true)
	nilObj.Observe(time.Second, false)
}

func TestAlertLogUpdateTransitions(t *testing.T) {
	reg := NewRegistry()
	l := NewAlertLog(reg)
	// Quiet → warn → page (resolve+fire) → quiet.
	l.Update("o", "", t0, 0, 0, "")
	if snap := l.Snapshot(); len(snap.Recent) != 0 {
		t.Fatalf("no-op update recorded events: %+v", snap.Recent)
	}
	l.Update("o", SeverityWarn, t0, 7, 6.5, "leak")
	l.Update("o", SeverityWarn, t0.Add(time.Minute), 8, 7, "leak") // refresh, no event
	snap := l.Snapshot()
	if len(snap.Recent) != 1 || snap.Active[0].BurnFast != 8 {
		t.Fatalf("after refresh: %+v", snap)
	}
	l.Update("o", SeverityPage, t0.Add(2*time.Minute), 20, 15, "worse")
	if got := l.MaxSeverity(); got != SeverityPage {
		t.Fatalf("severity = %q, want page", got)
	}
	snap = l.Snapshot()
	// Newest first: firing(page), resolved(warn), firing(warn).
	if len(snap.Recent) != 3 || snap.Recent[0].State != "firing" ||
		snap.Recent[0].Severity != SeverityPage || snap.Recent[1].State != "resolved" {
		t.Fatalf("timeline = %+v", snap.Recent)
	}
	l.Update("o", "", t0.Add(3*time.Minute), 0.1, 0.1, "ok")
	if got := l.MaxSeverity(); got != "" {
		t.Fatalf("severity after resolve = %q", got)
	}
	if v := reg.Gauge("rdfa_slo_alerts_firing").Value(); v != 0 {
		t.Fatalf("firing gauge = %v, want 0", v)
	}
	// The event ring is bounded.
	for i := 0; i < 2*maxAlertEvents; i++ {
		sev := SeverityWarn
		if i%2 == 1 {
			sev = ""
		}
		l.Update("churn", sev, t0.Add(time.Duration(i)*time.Second), 9, 9, "flap")
	}
	if got := len(l.Snapshot().Recent); got != maxAlertEvents {
		t.Fatalf("event ring = %d, want %d", got, maxAlertEvents)
	}
	// Nil log is inert.
	var nilLog *AlertLog
	nilLog.Update("x", SeverityPage, t0, 1, 1, "")
	if nilLog.MaxSeverity() != "" {
		t.Error("nil log severity")
	}
}
