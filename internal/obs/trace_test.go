package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestTraceTree(t *testing.T) {
	tr := NewTrace("query")
	a := tr.Root().StartChild("parse")
	a.Finish()
	b := tr.Root().StartChild("match")
	b.SetAttr("rows", 42)
	c := b.StartChild("scan")
	c.SetAttr("strategy", "hash join")
	c.Finish()
	b.Finish()
	tr.Finish()

	exp := tr.Export()
	if exp.Name != "query" || len(exp.Children) != 2 {
		t.Fatalf("export shape wrong: %+v", exp)
	}
	if exp.Children[1].Attrs["rows"] != 42 {
		t.Errorf("attr lost: %+v", exp.Children[1].Attrs)
	}
	if exp.Children[1].Children[0].Attrs["strategy"] != "hash join" {
		t.Errorf("nested attr lost")
	}
	// The export must round-trip through JSON (the /api/trace contract).
	data, err := json.Marshal(exp)
	if err != nil {
		t.Fatal(err)
	}
	var back SpanJSON
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "query" {
		t.Errorf("round-trip lost name")
	}

	tree := tr.Tree()
	for _, want := range []string{"query", "parse", "match", "scan", "strategy=hash join", "rows=42"} {
		if !strings.Contains(tree, want) {
			t.Errorf("Tree() missing %q:\n%s", want, tree)
		}
	}
	if sum := tr.Summary(); !strings.Contains(sum, "query=") || !strings.Contains(sum, "match=") {
		t.Errorf("Summary() = %q", sum)
	}
}

func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	tr.Finish()
	if tr.Tree() != "" || tr.Summary() != "" {
		t.Error("nil trace must render empty")
	}
	var s *Span
	s2 := s.StartChild("x")
	if s2 != nil {
		t.Fatal("nil span must return nil child")
	}
	s2.SetAttr("k", 1)
	s2.Finish()
	if s2.Parent() != nil || s2.Duration() != 0 {
		t.Error("nil span accessors must be inert")
	}
}

func TestTraceChildCap(t *testing.T) {
	tr := NewTrace("root")
	for i := 0; i < maxChildren+10; i++ {
		tr.Root().StartChild("c").Finish()
	}
	exp := tr.Export()
	if len(exp.Children) != maxChildren {
		t.Fatalf("children = %d, want cap %d", len(exp.Children), maxChildren)
	}
	if exp.Dropped != 10 {
		t.Fatalf("dropped = %d, want 10", exp.Dropped)
	}
}

func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	reg := NewRegistry()
	l := NewSlowQueryLog(logger, 10*time.Millisecond, reg)
	l.Observe("sparql", "SELECT fast", "fp1", "req-fast", time.Millisecond, nil)
	if buf.Len() != 0 {
		t.Fatalf("fast query logged: %s", buf.String())
	}
	tr := NewTrace("sparql")
	tr.Finish()
	l.Observe("sparql", "SELECT slow", "fp1", "req-slow", 50*time.Millisecond, tr)
	out := buf.String()
	if !strings.Contains(out, "slow query") || !strings.Contains(out, "SELECT slow") {
		t.Fatalf("slow query not logged: %s", out)
	}
	if !strings.Contains(out, "fingerprint=fp1") {
		t.Fatalf("fingerprint missing from slow-query record: %s", out)
	}
	if !strings.Contains(out, "request_id=req-slow") {
		t.Fatalf("request id missing from slow-query record: %s", out)
	}
	// A pathological multi-KB query is truncated to a bounded length,
	// without splitting the trailing multi-byte rune.
	buf.Reset()
	l.Observe("sparql", strings.Repeat("é", 2000), "fp2", "", 50*time.Millisecond, nil)
	out = buf.String()
	if len(out) > 2*maxLoggedQuery {
		t.Fatalf("oversized query not truncated: %d bytes", len(out))
	}
	if !strings.Contains(out, "…") {
		t.Fatalf("truncation marker missing: %s", out)
	}
	if got := reg.Counter("rdfa_slow_queries_total").Value(); got != 2 {
		t.Fatalf("slow counter = %d, want 2", got)
	}
	// Disabled and nil logs are inert.
	if NewSlowQueryLog(logger, 0, reg) != nil {
		t.Error("threshold 0 must disable")
	}
	var nilLog *SlowQueryLog
	nilLog.Observe("x", "y", "", "", time.Hour, nil)
	if nilLog.Threshold() != 0 {
		t.Error("nil log threshold must be 0")
	}
}
