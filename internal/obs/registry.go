// Package obs is the observability substrate of the system: a
// concurrency-safe metrics registry (counters, gauges, fixed-bucket latency
// histograms with quantile estimation), a lightweight span tracer threaded
// through SPARQL evaluation and the facet/HIFUN layers, and a slow-query
// log. Everything is stdlib-only; the registry renders itself in the
// Prometheus text exposition format so any standard scraper can consume
// GET /metrics.
//
// Design constraints, in order: recording must be cheap enough to leave on
// in production (atomic operations on pre-resolved handles, no allocation
// on the hot path), disabled tracing must cost one nil check, and output
// must be deterministic (families in registration order, series in creation
// order) so tests can assert on it line by line.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Default is the process-wide registry. Library instrumentation (the sparql
// evaluator's phase timings, facet computation, HIFUN translation) records
// here; the HTTP server exposes it at GET /metrics.
var Default = NewRegistry()

// DefBuckets are the default latency histogram bucket upper bounds, in
// seconds: 100µs .. 10s in a coarse exponential ladder, sized for
// interactive-query latencies (the paper's response-time budget is seconds).
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

func (k kind) String() string {
	switch k {
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "counter"
	}
}

// family groups all series (label combinations) of one metric name.
type family struct {
	name    string
	help    string
	kind    kind
	buckets []float64 // histograms only

	mu     sync.Mutex
	series map[string]any // label string -> *Counter | *Gauge | *Histogram
	order  []string       // label strings in creation order
	fn     func() float64 // kindCounterFunc / kindGaugeFunc
}

// Registry is a concurrency-safe collection of metric families. The zero
// value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// family returns (creating if needed) the family for name. A kind mismatch
// on an existing name panics: it is always a programming error, and silent
// coercion would corrupt the exposition output.
func (r *Registry) family(name string, k kind, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		if k == kindHistogram && buckets == nil {
			buckets = DefBuckets
		}
		f = &family{name: name, kind: k, buckets: buckets, series: map[string]any{}}
		r.families[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, k))
	}
	return f
}

// Help attaches a # HELP line to a metric family (created lazily as a
// counter if it does not exist yet; the kind is corrected on first real
// use only if it matches — in practice call Help after the first handle).
func (r *Registry) Help(name, text string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		f.help = text
	}
}

// labelKey renders "k1=v1,k2=v2,..." pairs into the exposition label string
// `k1="v1",k2="v2"`. Pairs must come in a consistent order per call site
// (they are not sorted: call sites own their label order, and sorting per
// call would allocate).
func labelKey(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	var sb strings.Builder
	for i := 0; i+1 < len(pairs); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(pairs[i])
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(pairs[i+1]))
		sb.WriteByte('"')
	}
	return sb.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// Counter returns the counter for name with the given label pairs
// (k1, v1, k2, v2, ...), creating it on first use.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	f := r.family(name, kindCounter, nil)
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.series[key]; ok {
		return c.(*Counter)
	}
	c := &Counter{}
	f.series[key] = c
	f.order = append(f.order, key)
	return c
}

// Gauge returns the gauge for name with the given label pairs.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	f := r.family(name, kindGauge, nil)
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if g, ok := f.series[key]; ok {
		return g.(*Gauge)
	}
	g := &Gauge{}
	f.series[key] = g
	f.order = append(f.order, key)
	return g
}

// Histogram returns the histogram for name with the given label pairs.
// buckets fixes the family's bucket bounds on first creation (nil means
// DefBuckets); later calls may pass nil to reuse the family's bounds.
func (r *Registry) Histogram(name string, buckets []float64, labels ...string) *Histogram {
	f := r.family(name, kindHistogram, buckets)
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if h, ok := f.series[key]; ok {
		return h.(*Histogram)
	}
	h := newHistogram(f.buckets)
	f.series[key] = h
	f.order = append(f.order, key)
	return h
}

// CounterFunc registers (or replaces) a counter whose value is computed at
// exposition time — used to surface counters owned elsewhere, e.g. the RDF
// graph's cardinality-cache hit/miss tallies. fn must be safe to call from
// any goroutine.
func (r *Registry) CounterFunc(name string, fn func() float64) {
	f := r.family(name, kindCounterFunc, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// GaugeFunc registers (or replaces) a gauge computed at exposition time
// (e.g. active session count).
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	f := r.family(name, kindGaugeFunc, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Families appear in registration order and series
// in creation order, so the output is deterministic for a fixed sequence of
// instrument calls.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()
	for _, f := range fams {
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) write(w io.Writer) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
		return err
	}
	if f.kind == kindCounterFunc || f.kind == kindGaugeFunc {
		v := 0.0
		if f.fn != nil {
			v = f.fn()
		}
		_, err := fmt.Fprintf(w, "%s %s\n", f.name, formatValue(v))
		return err
	}
	for _, key := range f.order {
		s := f.series[key]
		suffix := ""
		if key != "" {
			suffix = "{" + key + "}"
		}
		switch m := s.(type) {
		case *Counter:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, suffix, m.Value()); err != nil {
				return err
			}
		case *Gauge:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, suffix, formatValue(m.Value())); err != nil {
				return err
			}
		case *Histogram:
			if err := m.write(w, f.name, key); err != nil {
				return err
			}
		}
	}
	return nil
}

// SampleKind classifies a scraped sample for rate derivation: counters are
// cumulative (the time-series layer derives deltas, handling resets),
// gauges are instantaneous.
type SampleKind int

// The sample kinds.
const (
	// SampleCounter marks a cumulative, monotonically increasing value.
	SampleCounter SampleKind = iota
	// SampleGauge marks an instantaneous value.
	SampleGauge
)

// Sample is one scraped metric value, keyed exactly as the Prometheus
// exposition renders it (`name{labels}`), so time-series keys and scrape
// output line up one-to-one.
type Sample struct {
	Key   string
	Kind  SampleKind
	Value float64
}

// Samples scrapes every registered metric into a flat sample list for the
// time-series sampler: counters and gauges one sample per label set,
// histograms as `name_count`/`name_sum` counters per label set plus
// family-aggregated `name_bucket{le="..."}` cumulative counters (aggregated
// across label sets, so bucket-series cardinality stays bounded by the
// bucket ladder, not by labels — windowed quantiles are derived from their
// deltas). Func metrics are evaluated at scrape time.
func (r *Registry) Samples() []Sample {
	r.mu.Lock()
	fams := make([]*family, len(r.order))
	for i, n := range r.order {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()
	var out []Sample
	for _, f := range fams {
		f.mu.Lock()
		switch f.kind {
		case kindCounterFunc, kindGaugeFunc:
			v := 0.0
			if f.fn != nil {
				v = f.fn()
			}
			k := SampleCounter
			if f.kind == kindGaugeFunc {
				k = SampleGauge
			}
			out = append(out, Sample{Key: f.name, Kind: k, Value: v})
		case kindCounter:
			for _, key := range f.order {
				out = append(out, Sample{
					Key: seriesKey(f.name, key), Kind: SampleCounter,
					Value: float64(f.series[key].(*Counter).Value()),
				})
			}
		case kindGauge:
			for _, key := range f.order {
				out = append(out, Sample{
					Key: seriesKey(f.name, key), Kind: SampleGauge,
					Value: f.series[key].(*Gauge).Value(),
				})
			}
		case kindHistogram:
			var bounds []float64
			var bucketCum []uint64
			var total uint64
			for _, key := range f.order {
				h := f.series[key].(*Histogram)
				out = append(out,
					Sample{Key: seriesKey(f.name+"_count", key), Kind: SampleCounter, Value: float64(h.Count())},
					Sample{Key: seriesKey(f.name+"_sum", key), Kind: SampleCounter, Value: h.Sum()})
				if bounds == nil {
					// All series of a family share the same (sorted) bounds.
					bounds = h.bounds
					bucketCum = make([]uint64, len(bounds))
				}
				cum := uint64(0)
				for i := range h.bounds {
					cum += h.counts[i].Load()
					bucketCum[i] += cum
				}
				total += h.Count()
			}
			for i, b := range bounds {
				out = append(out, Sample{
					Key:   f.name + `_bucket{le="` + formatValue(b) + `"}`,
					Kind:  SampleCounter,
					Value: float64(bucketCum[i]),
				})
			}
			// The implicit +Inf bucket carries the family total, so windowed
			// quantiles count observations above the top finite bound.
			if bounds != nil {
				out = append(out, Sample{
					Key:   f.name + `_bucket{le="+Inf"}`,
					Kind:  SampleCounter,
					Value: float64(total),
				})
			}
		}
		f.mu.Unlock()
	}
	return out
}

// seriesKey renders the exposition identity of one series.
func seriesKey(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float metric that can move in both directions. It stores the
// value as float64 bits so Set accepts fractional values (e.g. ratios).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta (CAS loop; gauges are low-frequency).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution of float observations (latency
// seconds by convention). Observation is lock-free: one linear bucket scan
// (the bucket count is small) plus three atomic adds.
type Histogram struct {
	bounds []float64       // upper bounds, ascending; implicit +Inf last
	counts []atomic.Uint64 // len(bounds)+1
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
	count  atomic.Uint64
	// exemplars holds the most recent exemplar per bucket (len(bounds)+1,
	// last-writer-wins), rendered only by the OpenMetrics exposition.
	exemplars []atomic.Pointer[exemplar]
}

// exemplar links one observation to the trace that produced it.
type exemplar struct {
	traceID string
	value   float64
	whenMS  int64 // unix milliseconds
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{
		bounds:    b,
		counts:    make([]atomic.Uint64, len(b)+1),
		exemplars: make([]atomic.Pointer[exemplar], len(b)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// ObserveExemplar records v like Observe and additionally attaches traceID
// as the observation's exemplar on the bucket it lands in. The exemplar is
// last-writer-wins per bucket: cheap, bounded, and biased toward recency,
// which is what a drill-down from a current alert wants.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if h == nil {
		return
	}
	h.Observe(v)
	if traceID == "" {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.exemplars[i].Store(&exemplar{traceID: traceID, value: v, whenMS: nowUnixMilli()})
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// within the bucket that contains it, the standard Prometheus
// histogram_quantile estimate. Observations in the overflow (+Inf) bucket
// clamp to the highest finite bound. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := uint64(0)
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			if i >= len(h.bounds) {
				// Overflow bucket: no finite upper bound to interpolate to.
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

func (h *Histogram) write(w io.Writer, name, key string) error {
	sep := ""
	if key != "" {
		sep = ","
	}
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"%s\"} %d\n",
			name, key, sep, formatValue(b), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, key, sep, cum); err != nil {
		return err
	}
	suffix := ""
	if key != "" {
		suffix = "{" + key + "}"
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, suffix, formatValue(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, suffix, cum)
	return err
}
