package obs

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// OpenMetrics 1.0 exposition with exemplars. The default /metrics output
// stays the Prometheus 0.0.4 text format (WritePrometheus) for existing
// scrapers and tests; scrapers that negotiate
// `Accept: application/openmetrics-text` get this rendering, which is the
// only text format that can carry exemplars — the trace IDs that link a
// latency bucket back to a retained trace in the TraceStore.

// OpenMetricsContentType is the content type of WriteOpenMetrics output.
const OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// AcceptsOpenMetrics reports whether an Accept header asks for the
// OpenMetrics exposition.
func AcceptsOpenMetrics(accept string) bool {
	return strings.Contains(accept, "application/openmetrics-text")
}

func nowUnixMilli() int64 { return time.Now().UnixMilli() }

// WriteOpenMetrics renders the registry in the OpenMetrics 1.0 text
// format: counter metadata drops the _total suffix (samples keep it),
// histogram bucket lines carry exemplars where one was recorded, and the
// exposition ends with the mandatory # EOF terminator.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()
	for _, f := range fams {
		if err := f.writeOpen(w); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

// openMetadataName is the family name for # TYPE/# HELP lines: OpenMetrics
// counters are named without the _total suffix, which reappears on their
// sample lines.
func (f *family) openMetadataName() string {
	if f.kind == kindCounter || f.kind == kindCounterFunc {
		return strings.TrimSuffix(f.name, "_total")
	}
	return f.name
}

func (f *family) writeOpen(w io.Writer) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	meta := f.openMetadataName()
	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", meta, f.help); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", meta, f.kind); err != nil {
		return err
	}
	if f.kind == kindCounterFunc || f.kind == kindGaugeFunc {
		v := 0.0
		if f.fn != nil {
			v = f.fn()
		}
		_, err := fmt.Fprintf(w, "%s %s\n", f.name, formatValue(v))
		return err
	}
	for _, key := range f.order {
		s := f.series[key]
		suffix := ""
		if key != "" {
			suffix = "{" + key + "}"
		}
		switch m := s.(type) {
		case *Counter:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, suffix, m.Value()); err != nil {
				return err
			}
		case *Gauge:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, suffix, formatValue(m.Value())); err != nil {
				return err
			}
		case *Histogram:
			if err := m.writeOpen(w, f.name, key); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeOpen renders one histogram series with exemplars:
//
//	name_bucket{le="0.5"} 17 # {trace_id="ab12..."} 0.31 1754650000.123
func (h *Histogram) writeOpen(w io.Writer, name, key string) error {
	sep := ""
	if key != "" {
		sep = ","
	}
	cum := uint64(0)
	for i := 0; i <= len(h.bounds); i++ {
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatValue(h.bounds[i])
		}
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"%s\"} %d%s\n",
			name, key, sep, le, cum, h.exemplarSuffix(i)); err != nil {
			return err
		}
	}
	suffix := ""
	if key != "" {
		suffix = "{" + key + "}"
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, suffix, formatValue(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, suffix, cum)
	return err
}

func (h *Histogram) exemplarSuffix(bucket int) string {
	ex := h.exemplars[bucket].Load()
	if ex == nil {
		return ""
	}
	return fmt.Sprintf(" # {trace_id=\"%s\"} %s %d.%03d",
		escapeLabel(ex.traceID), formatValue(ex.value), ex.whenMS/1000, ex.whenMS%1000)
}

// ExemplarView is one exemplar as surfaced on /api/timeseries, linking a
// histogram series to a retained trace.
type ExemplarView struct {
	Series  string    `json:"series"`
	LE      string    `json:"le"`
	TraceID string    `json:"trace_id"`
	Value   float64   `json:"value"`
	When    time.Time `json:"when"`
}

// ExemplarsMatching returns up to limit recorded exemplars whose series
// key contains substr ("" matches all), newest first.
func (r *Registry) ExemplarsMatching(substr string, limit int) []ExemplarView {
	if limit <= 0 {
		limit = 32
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, n := range r.order {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()
	var out []ExemplarView
	for _, f := range fams {
		if f.kind != kindHistogram {
			continue
		}
		f.mu.Lock()
		for _, key := range f.order {
			sk := seriesKey(f.name, key)
			if substr != "" && !strings.Contains(sk, substr) {
				continue
			}
			h := f.series[key].(*Histogram)
			for i := range h.exemplars {
				ex := h.exemplars[i].Load()
				if ex == nil {
					continue
				}
				le := "+Inf"
				if i < len(h.bounds) {
					le = formatValue(h.bounds[i])
				}
				out = append(out, ExemplarView{
					Series:  sk,
					LE:      le,
					TraceID: ex.traceID,
					Value:   ex.value,
					When:    time.UnixMilli(ex.whenMS),
				})
			}
		}
		f.mu.Unlock()
	}
	sortExemplarsNewestFirst(out)
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}

func sortExemplarsNewestFirst(ex []ExemplarView) {
	for i := 1; i < len(ex); i++ {
		for j := i; j > 0 && ex[j].When.After(ex[j-1].When); j-- {
			ex[j], ex[j-1] = ex[j-1], ex[j]
		}
	}
}
