package obs

import (
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"time"
)

// Go runtime telemetry: heap, GC and scheduler statistics exposed as
// ordinary registry metrics (rdfa_go_*), so the sampler retains their
// history and /metrics scrapes them like everything else. ReadMemStats is
// not free, so one cached reader refreshes at most once per second and all
// the gauge funcs share it.

type memReader struct {
	mu sync.Mutex
	at time.Time
	ms runtime.MemStats
}

func (m *memReader) read() runtime.MemStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	if time.Since(m.at) > time.Second {
		runtime.ReadMemStats(&m.ms)
		m.at = time.Now()
	}
	return m.ms
}

var runtimeOnce sync.Once

// RegisterRuntimeMetrics registers the Go runtime gauges and counters on
// reg (nil means Default): heap in use, heap objects, cumulative
// allocations (alloc rate falls out of the sampler's delta derivation),
// total GC pause time, GC cycle count and live goroutines. Idempotent for
// the Default registry.
func RegisterRuntimeMetrics(reg *Registry) {
	if reg == nil || reg == Default {
		runtimeOnce.Do(func() { registerRuntime(Default) })
		return
	}
	registerRuntime(reg)
}

func registerRuntime(reg *Registry) {
	mr := &memReader{}
	reg.GaugeFunc("rdfa_go_heap_alloc_bytes", func() float64 {
		return float64(mr.read().HeapAlloc)
	})
	reg.GaugeFunc("rdfa_go_heap_sys_bytes", func() float64 {
		return float64(mr.read().HeapSys)
	})
	reg.GaugeFunc("rdfa_go_heap_objects", func() float64 {
		return float64(mr.read().HeapObjects)
	})
	reg.GaugeFunc("rdfa_go_next_gc_bytes", func() float64 {
		return float64(mr.read().NextGC)
	})
	reg.CounterFunc("rdfa_go_alloc_bytes_total", func() float64 {
		return float64(mr.read().TotalAlloc)
	})
	reg.CounterFunc("rdfa_go_gc_pause_seconds_total", func() float64 {
		return float64(mr.read().PauseTotalNs) / 1e9
	})
	reg.CounterFunc("rdfa_go_gc_cycles_total", func() float64 {
		return float64(mr.read().NumGC)
	})
	reg.GaugeFunc("rdfa_go_goroutines", func() float64 {
		return float64(runtime.NumGoroutine())
	})
}

// ---- build info ----

// Version returns the best version identity the binary carries: the VCS
// revision (plus "-dirty" when built from a modified tree) from the
// embedded build info, or "devel" when none is recorded.
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	rev, dirty := "", false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "devel"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "-dirty"
	}
	return rev
}

var buildInfoOnce sync.Once

// RegisterBuildInfo exposes the rdfa_build_info gauge (constant 1) whose
// labels carry the build identity: Go toolchain version, VCS revision and
// GOMAXPROCS. Idempotent for the Default registry.
func RegisterBuildInfo(reg *Registry) {
	if reg == nil || reg == Default {
		buildInfoOnce.Do(func() { registerBuildInfo(Default) })
		return
	}
	registerBuildInfo(reg)
}

func registerBuildInfo(reg *Registry) {
	reg.Gauge("rdfa_build_info",
		"go_version", runtime.Version(),
		"revision", Version(),
		"parallelism", strconv.Itoa(runtime.GOMAXPROCS(0)),
	).Set(1)
	reg.Help("rdfa_build_info", "Build identity; value is always 1.")
}
