package obs

import (
	"sort"
	"sync"
	"time"
	"unicode/utf8"
)

// Workload profiling. A Workload aggregates completed queries by their
// structural fingerprint (computed by the caller — internal/sparql owns the
// query AST, this package only stores shapes as opaque strings): a
// fixed-size ring buffer of recent queries, per-fingerprint aggregates
// (count, p50/p95 latency, rows, outcome tallies) with the worst-case
// execution retained as an exemplar, and a bounded plan-vs-actual
// misestimation table fed from operator profiles. This is the data behind
// GET /api/workload and the /debug/dashboard page.

const (
	// maxFingerprints bounds the per-fingerprint aggregate map; beyond it
	// the least-recently-seen fingerprint is evicted.
	maxFingerprints = 512
	// maxMisestimates bounds the plan-vs-actual table (worst per operator
	// site, globally capped).
	maxMisestimates = 64
	// maxShapeLen bounds stored fingerprint shapes and query texts.
	maxShapeLen = 400
)

// QueryRecord is one completed query as the workload profiler stores it.
type QueryRecord struct {
	// FingerprintID is the short stable id of the fingerprint.
	FingerprintID string `json:"fingerprint"`
	// Shape is the canonical fingerprint text (bounded).
	Shape string `json:"shape"`
	// Kind is the query class: "sparql", "analytics", "update", ...
	Kind string `json:"kind"`
	// Query is the (truncated) raw query text.
	Query string `json:"query"`
	// Duration is the end-to-end execution time.
	Duration time.Duration `json:"duration_ns"`
	// Rows is the result row count.
	Rows int `json:"rows"`
	// Outcome is "ok", "timeout", "cancelled", "budget" or "error".
	Outcome string `json:"outcome"`
	// MaxQError is the worst operator q-error of the run (0 = unprofiled).
	MaxQError float64 `json:"max_q_error,omitempty"`
	// When is the completion time.
	When time.Time `json:"when"`
}

// OpEstimate is one operator's plan-vs-actual comparison: the planner's
// cardinality estimate next to what execution produced, with the q-error
// max(est/act, act/est). Plain data so internal/server can convert from
// sparql profiles without an import cycle.
type OpEstimate struct {
	Op     string  `json:"op"`
	Label  string  `json:"label"`
	Est    int64   `json:"est"`
	Actual int64   `json:"actual"`
	QError float64 `json:"q_error"`
	Count  uint64  `json:"count"`
	// Feedback marks an estimate that was seeded from the planner's
	// execution-feedback store rather than the cold stats cache.
	Feedback bool `json:"feedback,omitempty"`
}

// fpStats aggregates all completed queries of one fingerprint.
type fpStats struct {
	id, shape, kind string
	count           uint64
	outcomes        map[string]uint64
	lat             *Histogram
	totalRows       uint64
	maxQErr         float64
	worstDur        time.Duration
	worstQuery      string
	exemplar        any
	lastSeen        time.Time
}

// Workload is the concurrency-safe workload profiler. A nil *Workload is a
// valid no-op, matching the tracer/slow-log convention.
type Workload struct {
	mu     sync.Mutex
	ring   []QueryRecord
	next   int
	filled bool
	total  uint64
	errs   uint64
	lat    *Histogram
	byFP   map[string]*fpStats
	ests   map[string]*OpEstimate
}

// NewWorkload returns a workload profiler whose recent-query ring holds
// ringSize entries (minimum 16).
func NewWorkload(ringSize int) *Workload {
	if ringSize < 16 {
		ringSize = 16
	}
	return &Workload{
		ring: make([]QueryRecord, ringSize),
		lat:  newHistogram(DefBuckets),
		byFP: map[string]*fpStats{},
		ests: map[string]*OpEstimate{},
	}
}

// Observe folds one completed query into the workload. exemplar is an
// opaque JSON-marshalable view of the execution (trace or profile export);
// it is retained only when this run is the fingerprint's new worst case.
func (w *Workload) Observe(rec QueryRecord, exemplar any) {
	if w == nil {
		return
	}
	rec.Shape = TruncateText(rec.Shape, maxShapeLen)
	rec.Query = TruncateText(rec.Query, maxShapeLen)
	w.mu.Lock()
	defer w.mu.Unlock()
	w.ring[w.next] = rec
	w.next = (w.next + 1) % len(w.ring)
	if w.next == 0 {
		w.filled = true
	}
	w.total++
	if rec.Outcome != "ok" {
		w.errs++
	}
	w.lat.Observe(rec.Duration.Seconds())
	fs, ok := w.byFP[rec.FingerprintID]
	if !ok {
		w.evictFingerprintLocked()
		fs = &fpStats{
			id:       rec.FingerprintID,
			shape:    rec.Shape,
			kind:     rec.Kind,
			outcomes: map[string]uint64{},
			lat:      newHistogram(DefBuckets),
		}
		w.byFP[rec.FingerprintID] = fs
	}
	fs.count++
	fs.outcomes[rec.Outcome]++
	fs.lat.Observe(rec.Duration.Seconds())
	fs.totalRows += uint64(rec.Rows)
	fs.lastSeen = rec.When
	if rec.MaxQError > fs.maxQErr {
		fs.maxQErr = rec.MaxQError
	}
	if rec.Duration > fs.worstDur {
		fs.worstDur = rec.Duration
		fs.worstQuery = rec.Query
		if exemplar != nil {
			fs.exemplar = exemplar
		}
	}
}

// P95Seconds reports the fingerprint's rolling p95 latency in seconds.
// ok is false until the fingerprint has been observed at least a handful
// of times — a p95 estimated from one or two runs would make the trace
// store's outlier rule fire on noise.
func (w *Workload) P95Seconds(fingerprintID string) (seconds float64, ok bool) {
	if w == nil {
		return 0, false
	}
	w.mu.Lock()
	fs, found := w.byFP[fingerprintID]
	var lat *Histogram
	var n uint64
	if found {
		lat = fs.lat
		n = fs.count
	}
	w.mu.Unlock()
	const minSamples = 5
	if !found || n < minSamples {
		return 0, false
	}
	return lat.Quantile(0.95), true
}

// evictFingerprintLocked drops the least-recently-seen fingerprint when the
// map is at capacity. Caller holds w.mu.
func (w *Workload) evictFingerprintLocked() {
	if len(w.byFP) < maxFingerprints {
		return
	}
	var oldest *fpStats
	for _, fs := range w.byFP {
		if oldest == nil || fs.lastSeen.Before(oldest.lastSeen) {
			oldest = fs
		}
	}
	if oldest != nil {
		delete(w.byFP, oldest.id)
	}
}

// ObserveEstimates merges operator plan-vs-actual rows into the bounded
// misestimation table, keeping the worst q-error per operator site.
func (w *Workload) ObserveEstimates(ests []OpEstimate) {
	if w == nil || len(ests) == 0 {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, e := range ests {
		key := e.Op + "\x00" + TruncateText(e.Label, maxShapeLen)
		cur, ok := w.ests[key]
		if !ok {
			if len(w.ests) >= maxMisestimates {
				// Full: only displace the current minimum if strictly worse.
				minKey, minQ := "", -1.0
				for k, v := range w.ests {
					if minQ < 0 || v.QError < minQ {
						minKey, minQ = k, v.QError
					}
				}
				if e.QError <= minQ {
					continue
				}
				delete(w.ests, minKey)
			}
			e.Label = TruncateText(e.Label, maxShapeLen)
			e.Count = 1
			ne := e
			w.ests[key] = &ne
			continue
		}
		cur.Count++
		if e.Feedback {
			cur.Feedback = true
		}
		if e.QError > cur.QError {
			cur.QError, cur.Est, cur.Actual = e.QError, e.Est, e.Actual
		}
	}
}

// FingerprintSummary is the aggregate view of one fingerprint.
type FingerprintSummary struct {
	ID         string            `json:"fingerprint"`
	Shape      string            `json:"shape"`
	Kind       string            `json:"kind"`
	Count      uint64            `json:"count"`
	Outcomes   map[string]uint64 `json:"outcomes"`
	P50Ms      float64           `json:"p50_ms"`
	P95Ms      float64           `json:"p95_ms"`
	AvgRows    float64           `json:"avg_rows"`
	MaxQError  float64           `json:"max_q_error,omitempty"`
	WorstMs    float64           `json:"worst_ms"`
	WorstQuery string            `json:"worst_query,omitempty"`
	Exemplar   any               `json:"exemplar,omitempty"`
	LastSeen   time.Time         `json:"last_seen"`
}

// WorkloadSnapshot is the JSON shape of GET /api/workload: RED aggregates,
// the recent-query ring (newest first), per-fingerprint summaries (most
// frequent first) and the misestimation table (worst q-error first).
type WorkloadSnapshot struct {
	Total        uint64               `json:"total"`
	Errors       uint64               `json:"errors"`
	P50Ms        float64              `json:"p50_ms"`
	P95Ms        float64              `json:"p95_ms"`
	Recent       []QueryRecord        `json:"recent"`
	Fingerprints []FingerprintSummary `json:"fingerprints"`
	Misestimates []OpEstimate         `json:"misestimates"`
}

// Snapshot returns a point-in-time copy of the workload state.
func (w *Workload) Snapshot() WorkloadSnapshot {
	if w == nil {
		return WorkloadSnapshot{}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	snap := WorkloadSnapshot{
		Total:  w.total,
		Errors: w.errs,
		P50Ms:  w.lat.Quantile(0.50) * 1000,
		P95Ms:  w.lat.Quantile(0.95) * 1000,
	}
	n := len(w.ring)
	count := w.next
	if w.filled {
		count = n
	}
	for i := 1; i <= count; i++ {
		snap.Recent = append(snap.Recent, w.ring[(w.next-i+n)%n])
	}
	for _, fs := range w.byFP {
		out := map[string]uint64{}
		for k, v := range fs.outcomes {
			out[k] = v
		}
		snap.Fingerprints = append(snap.Fingerprints, FingerprintSummary{
			ID:         fs.id,
			Shape:      fs.shape,
			Kind:       fs.kind,
			Count:      fs.count,
			Outcomes:   out,
			P50Ms:      fs.lat.Quantile(0.50) * 1000,
			P95Ms:      fs.lat.Quantile(0.95) * 1000,
			AvgRows:    float64(fs.totalRows) / float64(fs.count),
			MaxQError:  fs.maxQErr,
			WorstMs:    float64(fs.worstDur.Microseconds()) / 1000,
			WorstQuery: fs.worstQuery,
			Exemplar:   fs.exemplar,
			LastSeen:   fs.lastSeen,
		})
	}
	sort.SliceStable(snap.Fingerprints, func(i, j int) bool {
		if snap.Fingerprints[i].Count != snap.Fingerprints[j].Count {
			return snap.Fingerprints[i].Count > snap.Fingerprints[j].Count
		}
		return snap.Fingerprints[i].ID < snap.Fingerprints[j].ID
	})
	for _, e := range w.ests {
		snap.Misestimates = append(snap.Misestimates, *e)
	}
	sort.SliceStable(snap.Misestimates, func(i, j int) bool {
		if snap.Misestimates[i].QError != snap.Misestimates[j].QError {
			return snap.Misestimates[i].QError > snap.Misestimates[j].QError
		}
		return snap.Misestimates[i].Label < snap.Misestimates[j].Label
	})
	return snap
}

// FPLatency is one fingerprint's latency summary for the sampler's
// per-fingerprint time series.
type FPLatency struct {
	ID    string
	Count uint64
	P50Ms float64
	P95Ms float64
}

// Latencies returns the k most frequent fingerprints with their current
// latency quantiles (deterministic order: count desc, then id). Cheaper
// than Snapshot — no ring copy, no exemplars — so the sampler can call it
// every tick.
func (w *Workload) Latencies(k int) []FPLatency {
	if w == nil || k <= 0 {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]FPLatency, 0, len(w.byFP))
	for _, fs := range w.byFP {
		out = append(out, FPLatency{
			ID:    fs.id,
			Count: fs.count,
			P50Ms: fs.lat.Quantile(0.50) * 1000,
			P95Ms: fs.lat.Quantile(0.95) * 1000,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].ID < out[j].ID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// TopSlow returns the k fingerprints with the highest p95 latency.
func (w *Workload) TopSlow(k int) []FingerprintSummary {
	snap := w.Snapshot()
	fps := snap.Fingerprints
	sort.SliceStable(fps, func(i, j int) bool { return fps[i].P95Ms > fps[j].P95Ms })
	if len(fps) > k {
		fps = fps[:k]
	}
	return fps
}

// TruncateText bounds s to max bytes without splitting a UTF-8 rune,
// appending an ellipsis when it cut anything.
func TruncateText(s string, max int) string {
	if len(s) <= max {
		return s
	}
	cut := max
	for cut > 0 && !utf8.RuneStart(s[cut]) {
		cut--
	}
	return s[:cut] + "…"
}
