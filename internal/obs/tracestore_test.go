package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// cand builds a completed-trace candidate for the sampler: a one-span
// trace plus the metadata the decision consumes.
func cand(fp string, dur time.Duration, outcome string) TraceCandidate {
	tr := NewTrace("test")
	tr.Finish()
	c := TraceCandidate{
		Trace:         tr,
		Kind:          "sparql",
		FingerprintID: fp,
		Shape:         "shape " + fp,
		Query:         "SELECT ?x WHERE { ?x ?p ?o }",
		Duration:      dur,
		Outcome:       outcome,
	}
	if outcome != "ok" {
		c.Err = "boom"
	}
	return c
}

func TestTraceStoreRetainsAllErrors(t *testing.T) {
	ts := NewTraceStore(TraceStoreConfig{ResidualEvery: -1})
	for i := 0; i < 20; i++ {
		outcome := "error"
		if i%3 == 1 {
			outcome = "timeout"
		}
		if i%3 == 2 {
			outcome = "budget"
		}
		id, retained := ts.Offer(cand("fpE", time.Millisecond, outcome))
		if !retained {
			t.Fatalf("error trace %d not retained", i)
		}
		d, ok := ts.Get(id)
		if !ok {
			t.Fatalf("retained trace %s not gettable", id)
		}
		if d.Reason != ReasonError {
			t.Fatalf("reason = %q, want %q", d.Reason, ReasonError)
		}
	}
	if st := ts.Stats(); st.Retained != 20 || st.ByReason[ReasonError] != 20 {
		t.Fatalf("stats = %+v, want 20 errors retained", st)
	}
}

func TestTraceStoreSlowestPerFingerprint(t *testing.T) {
	ts := NewTraceStore(TraceStoreConfig{SlowestPerFingerprint: 3, ResidualEvery: -1})
	// The first N of a fingerprint always qualify (nothing to compare to).
	for i, ms := range []int{10, 20, 30} {
		if _, retained := ts.Offer(cand("fpS", time.Duration(ms)*time.Millisecond, "ok")); !retained {
			t.Fatalf("seed %d not retained", i)
		}
	}
	// Faster than the current slowest set: sampled out.
	if _, retained := ts.Offer(cand("fpS", 5*time.Millisecond, "ok")); retained {
		t.Fatal("5ms retained but slowest set is {10,20,30}")
	}
	// Slower than the set's minimum: replaces it in the bookkeeping.
	id, retained := ts.Offer(cand("fpS", 40*time.Millisecond, "ok"))
	if !retained {
		t.Fatal("40ms not retained")
	}
	if d, _ := ts.Get(id); d.Reason != ReasonSlowest {
		t.Fatalf("reason = %q, want %q", d.Reason, ReasonSlowest)
	}
	// The set is now {20,30,40}: 15ms is no longer slowest material.
	if _, retained := ts.Offer(cand("fpS", 15*time.Millisecond, "ok")); retained {
		t.Fatal("15ms retained but slowest set is {20,30,40}")
	}
	// A different fingerprint has its own fresh slowest budget.
	if _, retained := ts.Offer(cand("fpOther", time.Millisecond, "ok")); !retained {
		t.Fatal("first trace of a new fingerprint not retained")
	}
	st := ts.Stats()
	if st.DroppedSampled != 2 {
		t.Fatalf("DroppedSampled = %d, want 2", st.DroppedSampled)
	}
}

func TestTraceStoreOutlier(t *testing.T) {
	ts := NewTraceStore(TraceStoreConfig{
		SlowestPerFingerprint: 3,
		OutlierFactor:         2,
		ResidualEvery:         -1,
		P95: func(fp string) (float64, bool) {
			return 0.010, true // rolling p95 = 10ms
		},
	})
	// Saturate the slowest set with runs far above the outlier band.
	for _, ms := range []int{100, 200, 300} {
		ts.Offer(cand("fpO", time.Duration(ms)*time.Millisecond, "ok"))
	}
	// 30ms: not slowest (min of set is 100ms) but > 2×p95 → outlier.
	id, retained := ts.Offer(cand("fpO", 30*time.Millisecond, "ok"))
	if !retained {
		t.Fatal("outlier not retained")
	}
	if d, _ := ts.Get(id); d.Reason != ReasonOutlier {
		t.Fatalf("reason = %q, want %q", d.Reason, ReasonOutlier)
	}
	// 15ms: inside 2×p95 → sampled out.
	if _, retained := ts.Offer(cand("fpO", 15*time.Millisecond, "ok")); retained {
		t.Fatal("15ms retained but 2×p95 = 20ms")
	}
}

func TestTraceStoreResidual(t *testing.T) {
	ts := NewTraceStore(TraceStoreConfig{
		SlowestPerFingerprint: 1,
		ResidualEvery:         5,
		// Every fingerprint has history, so nothing is an outlier.
		P95: func(string) (float64, bool) { return 10, true },
	})
	// Saturate each fingerprint's slowest-1 slot.
	for i := 0; i < 3; i++ {
		ts.Offer(cand(fmt.Sprintf("fp%d", i), time.Second, "ok"))
	}
	retainedN := 0
	const offers = 25
	for i := 0; i < offers; i++ {
		_, retained := ts.Offer(cand(fmt.Sprintf("fp%d", i%3), time.Millisecond, "ok"))
		if retained {
			retainedN++
		}
	}
	if retainedN != offers/5 {
		t.Fatalf("residual retained %d of %d, want exactly 1 in 5", retainedN, offers)
	}
	for _, s := range ts.Search(TraceQuery{Reason: ReasonResidual}) {
		if s.Reason != ReasonResidual {
			t.Fatalf("search(reason=residual) returned %q", s.Reason)
		}
	}
}

func TestTraceStoreEvictionPriority(t *testing.T) {
	ts := NewTraceStore(TraceStoreConfig{MaxTraces: 4, SlowestPerFingerprint: 1, ResidualEvery: 1})
	errID, _ := ts.Offer(cand("fpA", time.Millisecond, "error"))
	slowID, _ := ts.Offer(cand("fpB", time.Second, "ok"))
	res1, _ := ts.Offer(cand("fpB", time.Millisecond, "ok")) // residual (slot taken)
	res2, _ := ts.Offer(cand("fpB", time.Millisecond, "ok")) // residual
	if ts.Stats().Retained != 4 {
		t.Fatalf("setup: retained = %d, want 4", ts.Stats().Retained)
	}
	// A fifth trace evicts the oldest residual first — never the error.
	ts.Offer(cand("fpC", time.Second, "ok"))
	if ts.Contains(res1) {
		t.Fatal("oldest residual survived eviction")
	}
	for _, id := range []string{errID, slowID, res2} {
		if !ts.Contains(id) {
			t.Fatalf("trace %s evicted before the lower-priority residual", id)
		}
	}
	// Keep pushing errors: the remaining residual and the slowest traces
	// are evicted before any error is touched.
	for i := 0; i < 3; i++ {
		ts.Offer(cand(fmt.Sprintf("fpErr%d", i), time.Millisecond, "error"))
	}
	if !ts.Contains(errID) {
		t.Fatal("error trace evicted while lower-priority traces remained")
	}
	if ts.Contains(res2) || ts.Contains(slowID) {
		t.Fatal("residual/slowest survived while errors needed room")
	}
	st := ts.Stats()
	if st.Retained != 4 {
		t.Fatalf("retained = %d, want bound 4", st.Retained)
	}
	if st.DroppedEvicted == 0 {
		t.Fatal("eviction not accounted in DroppedEvicted")
	}
}

func TestTraceStoreOversizeNewcomer(t *testing.T) {
	ts := NewTraceStore(TraceStoreConfig{MaxTraces: 2, SlowestPerFingerprint: 1, ResidualEvery: 1})
	ts.Offer(cand("fpA", time.Millisecond, "error"))
	ts.Offer(cand("fpB", time.Millisecond, "error"))
	// The store is full of errors; a residual newcomer is itself the
	// lowest-priority trace and must be rejected, not churn the errors.
	id, retained := ts.Offer(cand("fpA", time.Nanosecond, "ok"))
	if retained && ts.Contains(id) {
		t.Fatal("low-priority newcomer displaced a retained error")
	}
	st := ts.Stats()
	if st.DroppedOversize != 1 {
		t.Fatalf("DroppedOversize = %d, want 1", st.DroppedOversize)
	}
	if st.Retained != 2 || st.ByReason[ReasonError] != 2 {
		t.Fatalf("errors disturbed: %+v", st)
	}
}

func TestTraceStoreByteBound(t *testing.T) {
	ts := NewTraceStore(TraceStoreConfig{MaxBytes: 4096, SlowestPerFingerprint: 1, ResidualEvery: -1})
	for i := 0; i < 100; i++ {
		ts.Offer(cand(fmt.Sprintf("fp%d", i), time.Millisecond, "ok"))
	}
	st := ts.Stats()
	if st.Bytes > 4096 {
		t.Fatalf("retained bytes %d exceed bound 4096", st.Bytes)
	}
	if st.Retained == 0 {
		t.Fatal("byte bound evicted everything")
	}
	if st.DroppedEvicted == 0 {
		t.Fatal("byte-pressure evictions not accounted")
	}
}

func TestTraceStoreSearchFilters(t *testing.T) {
	ts := NewTraceStore(TraceStoreConfig{ResidualEvery: -1})
	ts.Offer(cand("fpX", 5*time.Millisecond, "ok"))
	ts.Offer(cand("fpX", 50*time.Millisecond, "timeout"))
	ts.Offer(cand("fpY", 500*time.Millisecond, "ok"))

	if got := len(ts.Search(TraceQuery{Fingerprint: "fpX"})); got != 2 {
		t.Fatalf("fingerprint filter: got %d, want 2", got)
	}
	if got := len(ts.Search(TraceQuery{MinDuration: 100 * time.Millisecond})); got != 1 {
		t.Fatalf("min-duration filter: got %d, want 1", got)
	}
	if got := ts.Search(TraceQuery{Outcome: "timeout"}); len(got) != 1 || got[0].Err == "" {
		t.Fatalf("outcome filter: got %+v", got)
	}
	// Newest first.
	all := ts.Search(TraceQuery{})
	if len(all) != 3 || all[0].FingerprintID != "fpY" {
		t.Fatalf("search order: %+v", all)
	}
	if got := len(ts.Search(TraceQuery{Limit: 2})); got != 2 {
		t.Fatalf("limit: got %d, want 2", got)
	}
	// Unknown ID.
	if _, ok := ts.Get("nope"); ok {
		t.Fatal("Get of unknown id succeeded")
	}
}

func TestTraceStoreRecordServe(t *testing.T) {
	ts := NewTraceStore(TraceStoreConfig{ResidualEvery: -1})
	id, _ := ts.Offer(cand("fpZ", time.Millisecond, "ok"))
	ts.RecordServe(id, "hit")
	ts.RecordServe(id, "hit")
	ts.RecordServe(id, "collapsed")
	ts.RecordServe("nope", "hit") // unknown id: no-op
	d, _ := ts.Get(id)
	if d.Serves["hit"] != 2 || d.Serves["collapsed"] != 1 {
		t.Fatalf("serves = %+v", d.Serves)
	}
}

func TestTraceStoreNilSafe(t *testing.T) {
	var ts *TraceStore
	if _, retained := ts.Offer(cand("fp", time.Second, "error")); retained {
		t.Fatal("nil store retained")
	}
	ts.RecordServe("x", "hit")
	if ts.Contains("x") || ts.Search(TraceQuery{}) != nil {
		t.Fatal("nil store claims contents")
	}
	if _, ok := ts.Get("x"); ok {
		t.Fatal("nil Get ok")
	}
	if _, ok := ts.Latest(""); ok {
		t.Fatal("nil Latest ok")
	}
	if st := ts.Stats(); st.Retained != 0 {
		t.Fatal("nil Stats non-zero")
	}
	if NewTraceStore(TraceStoreConfig{Disabled: true}) != nil {
		t.Fatal("Disabled config did not return nil store")
	}
}

// TestTraceStoreConcurrent hammers retain/search/get/evict from many
// goroutines; run with -race (make check does) to verify the locking.
func TestTraceStoreConcurrent(t *testing.T) {
	ts := NewTraceStore(TraceStoreConfig{
		MaxTraces:             64,
		SlowestPerFingerprint: 2,
		ResidualEvery:         3,
		P95:                   func(string) (float64, bool) { return 0.001, true },
	})
	var wg sync.WaitGroup
	var ids sync.Map
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				outcome := "ok"
				if i%7 == 0 {
					outcome = "error"
				}
				fp := fmt.Sprintf("fp%d", (g+i)%5)
				id, retained := ts.Offer(cand(fp, time.Duration(i%20)*time.Millisecond, outcome))
				if retained {
					ids.Store(id, true)
					ts.RecordServe(id, "hit")
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ts.Search(TraceQuery{Fingerprint: fmt.Sprintf("fp%d", i%5)})
				ts.Stats()
				ts.Latest("sparql")
				ids.Range(func(k, _ any) bool {
					ts.Get(k.(string))
					ts.Contains(k.(string))
					return i%10 != 0
				})
			}
		}()
	}
	wg.Wait()
	st := ts.Stats()
	if st.Retained > 64 {
		t.Fatalf("bound violated: retained = %d", st.Retained)
	}
	if got := len(ts.Search(TraceQuery{Limit: 500})); got != st.Retained {
		t.Fatalf("search sees %d traces, stats say %d", got, st.Retained)
	}
}

// BenchmarkTailSamplerDecision measures the hot path of a busy server: a
// trace offered and sampled out (the overwhelming majority of traffic).
func BenchmarkTailSamplerDecision(b *testing.B) {
	ts := NewTraceStore(TraceStoreConfig{
		SlowestPerFingerprint: 3,
		ResidualEvery:         -1,
		P95:                   func(string) (float64, bool) { return 10, true },
	})
	// Saturate the fingerprint's slowest set so later offers are declined.
	for _, ms := range []int{100, 200, 300} {
		ts.Offer(cand("fpB", time.Duration(ms)*time.Millisecond, "ok"))
	}
	c := cand("fpB", time.Millisecond, "ok")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts.Offer(c)
	}
}
