package obs

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// SLO objectives and multi-window burn-rate evaluation.
//
// Every objective reduces to a pair of cumulative event counters — good
// events and total events — registered as ordinary metrics
// (rdfa_slo_good_total / rdfa_slo_events_total, labelled by objective), so
// the sampler retains their history and burn rates are computed from
// windowed increases of the objective's own series. An availability
// objective counts a non-5xx response as good; a latency objective counts
// a response faster than its threshold as good (errors are slow by
// definition: they consumed the user's patience without an answer).
//
// Burn rate over window W is the classic SRE definition:
//
//	burn(W) = badFraction(W) / (1 - target)
//
// i.e. how many times faster than "exactly on budget" the error budget is
// being spent. Evaluation uses two window pairs: the fast pair (default
// 5m + 1h) catches sharp regressions and fires a page-severity alert when
// BOTH windows exceed the fast factor (default 14.4 — budget gone in ~6h
// at a 30-day period); the slow pair (default 30m + 6h) catches slow leaks
// and fires warn-severity above the slow factor (default 6). Requiring
// both windows of a pair suppresses flapping: the short window proves the
// burn is current, the long window proves it is sustained.

// SLOKind distinguishes objective semantics.
type SLOKind int

// The objective kinds.
const (
	// SLOAvailability targets a good-response ratio.
	SLOAvailability SLOKind = iota
	// SLOLatency targets a fraction of events faster than a threshold.
	SLOLatency
)

func (k SLOKind) String() string {
	if k == SLOLatency {
		return "latency"
	}
	return "availability"
}

// BurnConfig are the evaluation windows and thresholds.
type BurnConfig struct {
	FastShort, FastLong time.Duration // page pair
	SlowShort, SlowLong time.Duration // warn pair
	FastFactor          float64
	SlowFactor          float64
}

// DefaultBurnConfig is the multiwindow setup from the SRE workbook,
// compressed to the retention of the in-process store.
func DefaultBurnConfig() BurnConfig {
	return BurnConfig{
		FastShort: 5 * time.Minute, FastLong: time.Hour, FastFactor: 14.4,
		SlowShort: 30 * time.Minute, SlowLong: 6 * time.Hour, SlowFactor: 6,
	}
}

func (c BurnConfig) withDefaults() BurnConfig {
	d := DefaultBurnConfig()
	if c.FastShort <= 0 {
		c.FastShort = d.FastShort
	}
	if c.FastLong <= 0 {
		c.FastLong = d.FastLong
	}
	if c.SlowShort <= 0 {
		c.SlowShort = d.SlowShort
	}
	if c.SlowLong <= 0 {
		c.SlowLong = d.SlowLong
	}
	if c.FastFactor <= 0 {
		c.FastFactor = d.FastFactor
	}
	if c.SlowFactor <= 0 {
		c.SlowFactor = d.SlowFactor
	}
	return c
}

// Objective is one declarative service-level objective.
type Objective struct {
	Name      string
	Kind      SLOKind
	Target    float64       // e.g. 0.999
	Threshold time.Duration // latency objectives only

	good  *Counter
	total *Counter
}

// Record folds one availability event into the objective.
func (o *Objective) Record(ok bool) {
	if o == nil {
		return
	}
	o.total.Inc()
	if ok {
		o.good.Inc()
	}
}

// Observe folds one latency event in: good iff it succeeded within the
// threshold.
func (o *Objective) Observe(d time.Duration, failed bool) {
	if o == nil {
		return
	}
	o.total.Inc()
	if !failed && d <= o.Threshold {
		o.good.Inc()
	}
}

// seriesKeys returns the TSDB keys of the objective's counters.
func (o *Objective) seriesKeys() (good, total string) {
	labels := labelKey([]string{"objective", o.Name})
	return seriesKey("rdfa_slo_good_total", labels), seriesKey("rdfa_slo_events_total", labels)
}

// ObjectiveStatus is one objective's evaluated state (GET /api/alerts and
// the dashboard's SLO table).
type ObjectiveStatus struct {
	Name        string  `json:"name"`
	Kind        string  `json:"kind"`
	Target      float64 `json:"target"`
	ThresholdMs float64 `json:"threshold_ms,omitempty"`
	// Windowed burn rates, keyed fast_short/fast_long/slow_short/slow_long.
	Burn map[string]float64 `json:"burn"`
	// BudgetRemaining is the fraction of the error budget left over the
	// slow-long window (1 = untouched, 0 = exactly spent, negative =
	// overspent). NaN-free: no traffic reports 1.
	BudgetRemaining float64 `json:"budget_remaining"`
	// Events/Good are lifetime totals.
	Events   uint64 `json:"events"`
	Good     uint64 `json:"good"`
	Severity string `json:"severity,omitempty"`
}

// maxObjectives bounds dynamically created objectives (per-endpoint,
// per-fingerprint); static ones are added first and always fit.
const maxObjectives = 128

// SLOSet owns the objectives and runs the evaluator. All methods are safe
// for concurrent use; a nil *SLOSet is a valid no-op.
type SLOSet struct {
	mu         sync.Mutex
	reg        *Registry
	alerts     *AlertLog
	burn       BurnConfig
	objectives map[string]*Objective
	order      []string
	status     map[string]*ObjectiveStatus
}

// NewSLOSet builds an empty SLO set over reg (nil means Default) reporting
// transitions into alerts.
func NewSLOSet(reg *Registry, alerts *AlertLog, burn BurnConfig) *SLOSet {
	if reg == nil {
		reg = Default
	}
	reg.Help("rdfa_slo_events_total", "SLO-tracked events per objective.")
	reg.Help("rdfa_slo_good_total", "SLO-good events per objective.")
	reg.Help("rdfa_slo_burn_rate", "Error-budget burn rate per objective and window.")
	reg.Help("rdfa_slo_budget_remaining_ratio", "Error budget remaining over the slow-long window.")
	return &SLOSet{
		reg:        reg,
		alerts:     alerts,
		burn:       burn.withDefaults(),
		objectives: map[string]*Objective{},
		status:     map[string]*ObjectiveStatus{},
	}
}

// Alerts returns the attached alert log.
func (s *SLOSet) Alerts() *AlertLog {
	if s == nil {
		return nil
	}
	return s.alerts
}

// Add registers (or returns the existing) objective. Returns nil when the
// set is full — callers treat a nil objective as a no-op, so dynamic
// per-endpoint/per-fingerprint creation degrades gracefully.
func (s *SLOSet) Add(name string, kind SLOKind, target float64, threshold time.Duration) *Objective {
	if s == nil || target <= 0 || target >= 1 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if o, ok := s.objectives[name]; ok {
		return o
	}
	if len(s.objectives) >= maxObjectives {
		return nil
	}
	o := &Objective{
		Name: name, Kind: kind, Target: target, Threshold: threshold,
		good:  s.reg.Counter("rdfa_slo_good_total", "objective", name),
		total: s.reg.Counter("rdfa_slo_events_total", "objective", name),
	}
	s.objectives[name] = o
	s.order = append(s.order, name)
	return o
}

// Get returns the named objective or nil.
func (s *SLOSet) Get(name string) *Objective {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.objectives[name]
}

// burnRate computes badFraction/budget over one window from the TSDB.
func burnRate(db *TSDB, goodKey, totalKey string, now time.Time, w time.Duration, budget float64) float64 {
	total := db.WindowIncrease(totalKey, now, w)
	if total <= 0 {
		return 0
	}
	bad := total - db.WindowIncrease(goodKey, now, w)
	if bad < 0 {
		bad = 0
	}
	return (bad / total) / budget
}

// Evaluate recomputes every objective's burn rates against db at time now,
// updates the rdfa_slo_* gauges, and reconciles alert state: page when
// both fast windows burn above the fast factor, warn when both slow
// windows burn above the slow factor.
func (s *SLOSet) Evaluate(now time.Time, db *TSDB) {
	if s == nil || db == nil {
		return
	}
	s.mu.Lock()
	names := append([]string(nil), s.order...)
	objs := make([]*Objective, len(names))
	for i, n := range names {
		objs[i] = s.objectives[n]
	}
	cfg := s.burn
	s.mu.Unlock()

	for _, o := range objs {
		goodKey, totalKey := o.seriesKeys()
		budget := 1 - o.Target
		burns := map[string]float64{
			"fast_short": burnRate(db, goodKey, totalKey, now, cfg.FastShort, budget),
			"fast_long":  burnRate(db, goodKey, totalKey, now, cfg.FastLong, budget),
			"slow_short": burnRate(db, goodKey, totalKey, now, cfg.SlowShort, budget),
			"slow_long":  burnRate(db, goodKey, totalKey, now, cfg.SlowLong, budget),
		}
		severity := ""
		burnFast, burnSlow := burns["fast_short"], burns["slow_short"]
		switch {
		case burns["fast_short"] >= cfg.FastFactor && burns["fast_long"] >= cfg.FastFactor:
			severity = SeverityPage
			burnSlow = burns["fast_long"]
		case burns["slow_short"] >= cfg.SlowFactor && burns["slow_long"] >= cfg.SlowFactor:
			severity = SeverityWarn
			burnFast, burnSlow = burns["slow_short"], burns["slow_long"]
		}
		remaining := 1 - burns["slow_long"]
		if math.IsNaN(remaining) || math.IsInf(remaining, 0) {
			remaining = 1
		}
		for win, v := range burns {
			s.reg.Gauge("rdfa_slo_burn_rate", "objective", o.Name, "window", win).Set(v)
		}
		s.reg.Gauge("rdfa_slo_budget_remaining_ratio", "objective", o.Name).Set(remaining)
		msg := fmt.Sprintf("%s %s SLO target %g burning at %.1fx budget",
			o.Kind, o.Name, o.Target, math.Max(burnFast, burnSlow))
		s.alerts.Update(o.Name, severity, now, burnFast, burnSlow, msg)

		st := &ObjectiveStatus{
			Name: o.Name, Kind: o.Kind.String(), Target: o.Target,
			Burn: burns, BudgetRemaining: remaining,
			Events: o.total.Value(), Good: o.good.Value(),
			Severity: severity,
		}
		if o.Kind == SLOLatency {
			st.ThresholdMs = float64(o.Threshold.Microseconds()) / 1000
		}
		s.mu.Lock()
		s.status[o.Name] = st
		s.mu.Unlock()
	}
}

// Statuses returns the last evaluated state of every objective, in
// registration order (objectives never evaluated yet report zero burns).
func (s *SLOSet) Statuses() []ObjectiveStatus {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ObjectiveStatus, 0, len(s.order))
	for _, name := range s.order {
		if st, ok := s.status[name]; ok {
			out = append(out, *st)
			continue
		}
		o := s.objectives[name]
		out = append(out, ObjectiveStatus{
			Name: o.Name, Kind: o.Kind.String(), Target: o.Target,
			Burn: map[string]float64{}, BudgetRemaining: 1,
			Events: o.total.Value(), Good: o.good.Value(),
		})
	}
	return out
}
