package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Trace is one tree of timed spans covering a single logical operation —
// a SPARQL query, an analytic run, an answer reload. Every method on Trace
// and Span is safe on a nil receiver and does nothing: instrumented code
// threads a possibly-nil trace through and pays one pointer test when
// tracing is off.
type Trace struct {
	mu   sync.Mutex
	id   string
	root *Span
}

// maxChildren caps the children recorded under one span. Constructs that
// evaluate a subgroup per input binding (OPTIONAL over thousands of rows)
// would otherwise materialize one span per binding; beyond the cap children
// are counted, not stored.
const maxChildren = 128

// NewTrace starts a trace whose root span is named name. The trace is
// minted a fresh ID; callers that already hold an ID (for example the one
// the HTTP middleware stamped into X-Trace-ID) overwrite it with SetID.
func NewTrace(name string) *Trace {
	return &Trace{id: NewTraceID(), root: &Span{name: name, start: time.Now()}}
}

// ID returns the trace's identifier ("" for a nil trace or a SubTrace,
// which borrows its parent's identity).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.id
}

// SetID replaces the trace's identifier. Empty IDs are ignored so callers
// can pass through a possibly-absent upstream ID unconditionally.
func (t *Trace) SetID(id string) {
	if t == nil || id == "" {
		return
	}
	t.mu.Lock()
	t.id = id
	t.mu.Unlock()
}

// Root returns the root span (nil for a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Finish ends the root span.
func (t *Trace) Finish() { t.Root().Finish() }

// SubTrace wraps an existing span as the root of a Trace, so a layer that
// accepts a *Trace (e.g. sparql.Options.Trace) nests its spans under the
// caller's span. Returns nil for a nil span, so tracing-off propagates.
// Finishing the sub-trace finishes the wrapped span.
func SubTrace(s *Span) *Trace {
	if s == nil {
		return nil
	}
	return &Trace{root: s}
}

// Span is one timed node of a trace.
type Span struct {
	mu       sync.Mutex
	name     string
	start    time.Time
	dur      time.Duration
	done     bool
	attrs    []Attr
	children []*Span
	dropped  int
	parent   *Span
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key string
	Val any
}

// StartChild opens a child span. Returns nil (safely usable) when the
// receiver is nil or the child cap is reached.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.children) >= maxChildren {
		s.dropped++
		return nil
	}
	c := &Span{name: name, start: time.Now(), parent: s}
	s.children = append(s.children, c)
	return c
}

// Finish fixes the span's duration; further calls are no-ops.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.done {
		s.dur = time.Since(s.start)
		s.done = true
	}
	s.mu.Unlock()
}

// Parent returns the enclosing span (nil at the root).
func (s *Span) Parent() *Span {
	if s == nil {
		return nil
	}
	return s.parent
}

// SetAttr annotates the span. Later values for the same key win at export.
func (s *Span) SetAttr(key string, val any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Val: val})
	s.mu.Unlock()
}

// Duration returns the span's duration (elapsed-so-far if unfinished).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return s.dur
	}
	return time.Since(s.start)
}

// SpanJSON is the wire form of a span subtree (GET /api/trace). TraceID is
// populated only at the root of an exported trace.
type SpanJSON struct {
	Name       string         `json:"name"`
	TraceID    string         `json:"trace_id,omitempty"`
	DurationMS float64        `json:"durationMs"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Dropped    int            `json:"droppedChildren,omitempty"`
	Children   []SpanJSON     `json:"children,omitempty"`
}

// Export snapshots the trace as a JSON-marshalable tree.
func (t *Trace) Export() SpanJSON {
	if t == nil {
		return SpanJSON{}
	}
	out := t.root.export()
	out.TraceID = t.ID()
	return out
}

func (s *Span) export() SpanJSON {
	s.mu.Lock()
	out := SpanJSON{
		Name:       s.name,
		DurationMS: float64(s.durLocked().Microseconds()) / 1000,
		Dropped:    s.dropped,
	}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			out.Attrs[a.Key] = a.Val
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		out.Children = append(out.Children, c.export())
	}
	return out
}

func (s *Span) durLocked() time.Duration {
	if s.done {
		return s.dur
	}
	return time.Since(s.start)
}

// Tree renders the trace as an indented text tree with durations and
// attributes — the -trace output of the CLIs.
func (t *Trace) Tree() string {
	if t == nil {
		return ""
	}
	var sb strings.Builder
	t.root.tree(&sb, 0)
	return sb.String()
}

func (s *Span) tree(sb *strings.Builder, depth int) {
	s.mu.Lock()
	sb.WriteString(strings.Repeat("  ", depth))
	fmt.Fprintf(sb, "%s  %s", s.name, fmtDur(s.durLocked()))
	for _, a := range s.attrs {
		fmt.Fprintf(sb, "  %s=%v", a.Key, a.Val)
	}
	if s.dropped > 0 {
		fmt.Fprintf(sb, "  (+%d children dropped)", s.dropped)
	}
	sb.WriteByte('\n')
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		c.tree(sb, depth+1)
	}
}

func fmtDur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

// Summary renders the root and its immediate children on one line — the
// plan summary attached to slow-query log records.
func (t *Trace) Summary() string {
	if t == nil {
		return ""
	}
	t.root.mu.Lock()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s=%s", t.root.name, fmtDur(t.root.durLocked()))
	children := append([]*Span(nil), t.root.children...)
	t.root.mu.Unlock()
	for _, c := range children {
		c.mu.Lock()
		fmt.Fprintf(&sb, " %s=%s", c.name, fmtDur(c.durLocked()))
		c.mu.Unlock()
	}
	return sb.String()
}
