package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestRegistryParallel hammers one registry from many goroutines — the
// concurrency contract of the whole package. Run under -race (make check).
func TestRegistryParallel(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const perG = 500
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				r.Counter("c_total", "worker", []string{"a", "b"}[i%2]).Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h_seconds", nil, "op", "x").Observe(float64(j%10) / 1000)
				if j%50 == 0 {
					var sb strings.Builder
					if err := r.WritePrometheus(&sb); err != nil {
						t.Error(err)
					}
				}
			}
		}(i)
	}
	wg.Wait()
	got := r.Counter("c_total", "worker", "a").Value() + r.Counter("c_total", "worker", "b").Value()
	if got != goroutines*perG {
		t.Fatalf("counter total = %d, want %d", got, goroutines*perG)
	}
	if v := r.Gauge("g").Value(); v != goroutines*perG {
		t.Fatalf("gauge = %v, want %d", v, goroutines*perG)
	}
	if n := r.Histogram("h_seconds", nil, "op", "x").Count(); n != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", n, goroutines*perG)
	}
}

// TestHistogramQuantiles checks the interpolation estimate against a known
// uniform distribution: 1..1000 observations of i/1000 seconds.
func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram(DefBuckets)
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 1000) // uniform on (0, 1]
	}
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.50, 0.50, 0.26}, // true p50 = 0.5, bucket (0.25, 0.5] → upper half
		{0.95, 0.95, 0.06}, // bucket (0.5, 1] interpolates well here
		{0.99, 0.99, 0.02},
	} {
		got := h.Quantile(tc.q)
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("Quantile(%v) = %v, want %v ± %v", tc.q, got, tc.want, tc.tol)
		}
	}
	// Exact-bucket check with custom bounds: values land on bound edges.
	h2 := newHistogram([]float64{1, 2, 3, 4})
	for _, v := range []float64{1, 1, 2, 2, 3, 3, 4, 4} {
		h2.Observe(v)
	}
	if got := h2.Quantile(0.5); got < 1 || got > 2 {
		t.Errorf("p50 of {1,1,2,2,3,3,4,4} = %v, want in [1,2]", got)
	}
	if got := h2.Quantile(1.0); got != 4 {
		t.Errorf("p100 = %v, want 4", got)
	}
	// Overflow clamps to the highest finite bound.
	h3 := newHistogram([]float64{1})
	h3.Observe(100)
	if got := h3.Quantile(0.99); got != 1 {
		t.Errorf("overflow quantile = %v, want clamp to 1", got)
	}
	if h3.Quantile(0.5) != 1 {
		t.Errorf("single-overflow p50 should clamp to 1")
	}
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 || nilH.Count() != 0 {
		t.Error("nil histogram must report zeros")
	}
}

// TestWritePrometheus asserts on the exposition format line by line.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("req_total", "endpoint", "/api/run", "code", "200").Add(3)
	r.Help("req_total", "requests served")
	r.Gauge("active").Set(2.5)
	h := r.Histogram("lat_seconds", []float64{0.1, 1}, "op", "q")
	// Exactly representable floats, so the rendered sum is exact.
	h.Observe(0.0625)
	h.Observe(0.5)
	h.Observe(5)
	r.GaugeFunc("fn_gauge", func() float64 { return 7 })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"# HELP req_total requests served",
		"# TYPE req_total counter",
		`req_total{endpoint="/api/run",code="200"} 3`,
		"# TYPE active gauge",
		"active 2.5",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{op="q",le="0.1"} 1`,
		`lat_seconds_bucket{op="q",le="1"} 2`,
		`lat_seconds_bucket{op="q",le="+Inf"} 3`,
		`lat_seconds_sum{op="q"} 5.5625`,
		`lat_seconds_count{op="q"} 3`,
		"# TYPE fn_gauge gauge",
		"fn_gauge 7",
	}
	got := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(got) != len(want) {
		t.Fatalf("line count = %d, want %d\n%s", len(got), len(want), sb.String())
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("line %d:\n got %q\nwant %q", i, got[i], want[i])
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "q", "a\"b\\c\nd").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `q="a\"b\\c\nd"`) {
		t.Errorf("label not escaped: %s", sb.String())
	}
}

func TestNilMetricHandles(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(2)
	g.Set(1)
	g.Inc()
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Sum() != 0 {
		t.Error("nil handles must be inert")
	}
}
