package obs

import (
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// The telemetry time-series engine. A TSDB retains the recent history of
// every scraped metric in bounded multi-resolution ring buffers — a fine
// ring (default 10s × 360 ≈ one hour) for dashboards and fast SLO windows,
// and a coarse ring (default 5m × 288 ≈ one day) for slow burn-rate
// windows — so the process can answer "what did p95 / heap / error rate do
// over the last hour?" without an external monitoring stack. A Sampler
// drives it: at a fixed interval it scrapes every registry metric (via
// Registry.Samples), Go runtime statistics, and the workload profiler's
// per-fingerprint latency quantiles, then hands the clock tick to the SLO
// evaluator. Counters are stored cumulatively; deltas and rates are derived
// on read with counter-reset detection, the Prometheus increase() rule.

// Default retention geometry: fine samples every 10s kept for one hour,
// coarse roll-ups every 5m kept for one day.
const (
	DefaultSampleInterval = 10 * time.Second
	DefaultFineCapacity   = 360
	DefaultCoarseEvery    = 30 // fine ticks per coarse tick: 30 × 10s = 5m
	DefaultCoarseCapacity = 288
	// DefaultMaxSeries bounds the number of tracked series; beyond it new
	// keys are dropped (and counted) rather than growing without bound.
	DefaultMaxSeries = 4096
)

// point is one retained sample.
type point struct {
	t int64 // unix milliseconds
	v float64
}

// ring is a fixed-capacity circular buffer of points.
type ring struct {
	pts    []point
	next   int
	filled bool
}

func newRing(capacity int) *ring {
	return &ring{pts: make([]point, capacity)}
}

func (r *ring) push(p point) {
	r.pts[r.next] = p
	r.next = (r.next + 1) % len(r.pts)
	if r.next == 0 {
		r.filled = true
	}
}

// len returns how many points are held.
func (r *ring) len() int {
	if r.filled {
		return len(r.pts)
	}
	return r.next
}

// at returns the i-th oldest point (0 = oldest).
func (r *ring) at(i int) point {
	if r.filled {
		return r.pts[(r.next+i)%len(r.pts)]
	}
	return r.pts[i]
}

// last returns the newest n points, oldest first.
func (r *ring) last(n int) []point {
	have := r.len()
	if n > have {
		n = have
	}
	out := make([]point, n)
	for i := 0; i < n; i++ {
		out[i] = r.at(have - n + i)
	}
	return out
}

// series is one tracked metric with both resolutions.
type series struct {
	kind   SampleKind
	fine   *ring
	coarse *ring
}

// TSDB is the bounded in-process time-series store. All methods are safe
// for concurrent use; a nil *TSDB is a valid no-op reader.
type TSDB struct {
	mu          sync.Mutex
	interval    time.Duration
	coarseEvery int
	fineCap     int
	coarseCap   int
	maxSeries   int
	series      map[string]*series
	order       []string
	ticks       uint64
	dropped     uint64
}

// TSDBConfig sizes a TSDB; zero fields take the package defaults.
type TSDBConfig struct {
	Interval       time.Duration
	FineCapacity   int
	CoarseEvery    int
	CoarseCapacity int
	MaxSeries      int
}

func (c TSDBConfig) withDefaults() TSDBConfig {
	if c.Interval <= 0 {
		c.Interval = DefaultSampleInterval
	}
	if c.FineCapacity <= 0 {
		c.FineCapacity = DefaultFineCapacity
	}
	if c.CoarseEvery <= 0 {
		c.CoarseEvery = DefaultCoarseEvery
	}
	if c.CoarseCapacity <= 0 {
		c.CoarseCapacity = DefaultCoarseCapacity
	}
	if c.MaxSeries <= 0 {
		c.MaxSeries = DefaultMaxSeries
	}
	return c
}

// NewTSDB builds an empty time-series store.
func NewTSDB(cfg TSDBConfig) *TSDB {
	cfg = cfg.withDefaults()
	return &TSDB{
		interval:    cfg.Interval,
		coarseEvery: cfg.CoarseEvery,
		fineCap:     cfg.FineCapacity,
		coarseCap:   cfg.CoarseCapacity,
		maxSeries:   cfg.MaxSeries,
		series:      map[string]*series{},
	}
}

// Interval returns the fine sampling interval.
func (db *TSDB) Interval() time.Duration {
	if db == nil {
		return 0
	}
	return db.interval
}

// Ingest stores one batch of samples observed at now. Every Ingest call is
// one fine tick; every coarseEvery-th tick also lands in the coarse rings
// (counters keep their cumulative value, so window deltas work identically
// at both resolutions).
func (db *TSDB) Ingest(now time.Time, samples []Sample) {
	if db == nil {
		return
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.ticks++
	coarse := db.ticks%uint64(db.coarseEvery) == 1 || db.coarseEvery == 1
	ms := now.UnixMilli()
	for _, sm := range samples {
		s, ok := db.series[sm.Key]
		if !ok {
			if len(db.series) >= db.maxSeries {
				db.dropped++
				continue
			}
			s = &series{
				kind:   sm.Kind,
				fine:   newRing(db.fineCap),
				coarse: newRing(db.coarseCap),
			}
			db.series[sm.Key] = s
			db.order = append(db.order, sm.Key)
		}
		p := point{t: ms, v: sm.Value}
		s.fine.push(p)
		if coarse {
			s.coarse.push(p)
		}
	}
}

// Dropped reports how many samples were discarded because the series cap
// was reached.
func (db *TSDB) Dropped() uint64 {
	if db == nil {
		return 0
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.dropped
}

// SeriesCount reports how many series are tracked.
func (db *TSDB) SeriesCount() int {
	if db == nil {
		return 0
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.series)
}

// Latest returns the newest value of key (ok=false when the series is
// unknown or empty).
func (db *TSDB) Latest(key string) (float64, bool) {
	if db == nil {
		return 0, false
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	s, ok := db.series[key]
	if !ok || s.fine.len() == 0 {
		return 0, false
	}
	return s.fine.at(s.fine.len() - 1).v, true
}

// increase computes the reset-aware cumulative increase over pts: positive
// steps accumulate; a negative step means the underlying counter restarted,
// so the post-reset value itself is the increase since the reset (the
// Prometheus increase() approximation).
func increase(pts []point) float64 {
	total := 0.0
	for i := 1; i < len(pts); i++ {
		d := pts[i].v - pts[i-1].v
		if d < 0 {
			d = pts[i].v
		}
		total += d
	}
	return total
}

// windowPoints returns the retained points of key covering [now-window,
// now], preferring the fine ring when it still spans the window start and
// falling back to the coarse ring for longer horizons. One point older than
// the window start is included when available, so the increase over the
// window boundary is not lost. Caller holds db.mu.
func (db *TSDB) windowPoints(s *series, now time.Time, window time.Duration) []point {
	lo := now.Add(-window).UnixMilli()
	pick := func(r *ring) []point {
		n := r.len()
		start := n
		for i := n - 1; i >= 0; i-- {
			if r.at(i).t < lo {
				break
			}
			start = i
		}
		if start > 0 {
			start-- // include the sample just before the window
		}
		out := make([]point, 0, n-start)
		for i := start; i < n; i++ {
			out = append(out, r.at(i))
		}
		return out
	}
	// The fine ring spans the window iff its oldest retained point is not
	// newer than the window start (or the series is younger than the window).
	if n := s.fine.len(); n > 0 {
		if s.fine.at(0).t <= lo || !s.fine.filled {
			return pick(s.fine)
		}
	}
	if s.coarse.len() > 0 {
		return pick(s.coarse)
	}
	return pick(s.fine)
}

// WindowIncrease returns the reset-aware increase of the counter series key
// over the trailing window. Unknown series report 0.
func (db *TSDB) WindowIncrease(key string, now time.Time, window time.Duration) float64 {
	if db == nil {
		return 0
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	s, ok := db.series[key]
	if !ok {
		return 0
	}
	return increase(db.windowPoints(s, now, window))
}

// WindowIncreaseSum sums WindowIncrease over every series whose key starts
// with prefix (e.g. all status codes of one endpoint family).
func (db *TSDB) WindowIncreaseSum(prefix string, now time.Time, window time.Duration) float64 {
	if db == nil {
		return 0
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	total := 0.0
	for key, s := range db.series {
		if strings.HasPrefix(key, prefix) {
			total += increase(db.windowPoints(s, now, window))
		}
	}
	return total
}

// RateSeries derives a per-second rate series from the newest n+1 fine
// samples of every counter series matching prefix, summed per tick across
// the matches (so "all request counters" becomes one throughput line).
// Counter resets clamp to the post-reset value. Returns up to n rates,
// oldest first.
func (db *TSDB) RateSeries(prefix string, n int) []float64 {
	return db.RateSeriesMatch(func(key string) bool {
		return strings.HasPrefix(key, prefix)
	}, n)
}

// RateSeriesMatch is RateSeries with an arbitrary key predicate, for
// selections a prefix cannot express (e.g. one status class across all
// endpoint labels).
func (db *TSDB) RateSeriesMatch(match func(key string) bool, n int) []float64 {
	if db == nil {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	sums := map[int64]float64{}
	var times []int64
	for key, s := range db.series {
		if s.kind != SampleCounter || !match(key) {
			continue
		}
		pts := s.fine.last(n + 1)
		for i := 1; i < len(pts); i++ {
			d := pts[i].v - pts[i-1].v
			if d < 0 {
				d = pts[i].v
			}
			dt := float64(pts[i].t-pts[i-1].t) / 1000
			if dt <= 0 {
				continue
			}
			if _, ok := sums[pts[i].t]; !ok {
				times = append(times, pts[i].t)
			}
			sums[pts[i].t] += d / dt
		}
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	out := make([]float64, len(times))
	for i, t := range times {
		out[i] = sums[t]
	}
	if len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// GaugeSeries returns the newest n fine values of a gauge (or any) series,
// oldest first.
func (db *TSDB) GaugeSeries(key string, n int) []float64 {
	if db == nil {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	s, ok := db.series[key]
	if !ok {
		return nil
	}
	pts := s.fine.last(n)
	out := make([]float64, len(pts))
	for i, p := range pts {
		out[i] = p.v
	}
	return out
}

// QuantileSeries derives a windowed q-quantile series for the histogram
// family name from its aggregated `name_bucket{le="..."}` counter series:
// for each of the newest n fine ticks it takes the bucket increases over
// the preceding window and interpolates the quantile, the
// histogram_quantile rule applied to deltas instead of lifetime counts.
// Ticks whose window saw no observations carry the previous value forward
// (0 before the first observation).
func (db *TSDB) QuantileSeries(name string, q float64, window time.Duration, n int) []float64 {
	if db == nil {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	type bseries struct {
		le  float64
		pts []point
	}
	prefix := name + `_bucket{le="`
	var buckets []bseries
	for key, s := range db.series {
		if !strings.HasPrefix(key, prefix) {
			continue
		}
		leStr := strings.TrimSuffix(strings.TrimPrefix(key, prefix), `"}`)
		le, err := strconv.ParseFloat(leStr, 64)
		if err != nil {
			continue
		}
		buckets = append(buckets, bseries{le: le, pts: s.fine.last(s.fine.len())})
	}
	if len(buckets) == 0 {
		return nil
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	// All bucket series are ingested together, so they share tick times; use
	// the first bucket's timeline.
	timeline := buckets[0].pts
	if len(timeline) > n {
		timeline = timeline[len(timeline)-n:]
	}
	out := make([]float64, 0, len(timeline))
	prev := 0.0
	for _, tick := range timeline {
		lo := tick.t - window.Milliseconds()
		// Per-bucket increase over (lo, tick.t].
		incs := make([]float64, len(buckets))
		total := 0.0
		for bi, b := range buckets {
			var first, last *point
			for i := range b.pts {
				p := &b.pts[i]
				if p.t < lo || p.t > tick.t {
					continue
				}
				if first == nil {
					first = p
				}
				last = p
			}
			if first == nil || last == nil {
				continue
			}
			inc := last.v - first.v
			if inc < 0 {
				inc = last.v
			}
			incs[bi] = inc
		}
		if len(incs) > 0 {
			total = incs[len(incs)-1] // buckets are cumulative: top bucket ≈ total
		}
		if total <= 0 {
			out = append(out, prev)
			continue
		}
		rank := q * total
		cum := 0.0
		v := buckets[len(buckets)-1].le
		for bi, b := range buckets {
			if incs[bi] >= rank {
				loB := 0.0
				if bi > 0 {
					loB = buckets[bi-1].le
				}
				span := incs[bi] - cum
				frac := 1.0
				if span > 0 {
					frac = (rank - cum) / span
				}
				if frac < 0 {
					frac = 0
				} else if frac > 1 {
					frac = 1
				}
				v = loB + (b.le-loB)*frac
				break
			}
			cum = incs[bi]
		}
		prev = v
		out = append(out, v)
	}
	return out
}

// SeriesJSON is one exported series of GET /api/timeseries.
type SeriesJSON struct {
	Key  string `json:"key"`
	Kind string `json:"kind"` // counter | gauge
	// Points are [unix_ms, value] pairs, oldest first. Counters export the
	// raw cumulative values; Rates carries their derived per-second rates
	// (aligned with Points from the second element on).
	Points [][2]float64 `json:"points"`
	Rates  []float64    `json:"rates,omitempty"`
}

// TimeseriesJSON is the GET /api/timeseries payload.
type TimeseriesJSON struct {
	IntervalSeconds float64      `json:"interval_seconds"`
	Resolution      string       `json:"resolution"`
	SeriesCount     int          `json:"series_count"`
	Dropped         uint64       `json:"dropped_samples,omitempty"`
	Series          []SeriesJSON `json:"series"`
}

// Export renders every series whose key contains filter (empty matches
// all) at the requested resolution ("coarse" for the roll-up ring,
// anything else for the fine ring), with per-second rates derived for
// counters. Series appear in first-seen order.
func (db *TSDB) Export(filter, resolution string) TimeseriesJSON {
	if db == nil {
		return TimeseriesJSON{}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	out := TimeseriesJSON{
		IntervalSeconds: db.interval.Seconds(),
		Resolution:      "fine",
		SeriesCount:     len(db.series),
		Dropped:         db.dropped,
	}
	if resolution == "coarse" {
		out.Resolution = "coarse"
		out.IntervalSeconds = db.interval.Seconds() * float64(db.coarseEvery)
	}
	for _, key := range db.order {
		if filter != "" && !strings.Contains(key, filter) {
			continue
		}
		s := db.series[key]
		r := s.fine
		if resolution == "coarse" {
			r = s.coarse
		}
		pts := r.last(r.len())
		sj := SeriesJSON{Key: key, Kind: "gauge", Points: make([][2]float64, len(pts))}
		for i, p := range pts {
			sj.Points[i] = [2]float64{float64(p.t), p.v}
		}
		if s.kind == SampleCounter {
			sj.Kind = "counter"
			for i := 1; i < len(pts); i++ {
				d := pts[i].v - pts[i-1].v
				if d < 0 {
					d = pts[i].v
				}
				dt := float64(pts[i].t-pts[i-1].t) / 1000
				if dt <= 0 {
					dt = math.Inf(1)
				}
				sj.Rates = append(sj.Rates, d/dt)
			}
		}
		out.Series = append(out.Series, sj)
	}
	return out
}

// ---- sampler ----

// maxFingerprintSeries caps how many per-fingerprint latency series the
// sampler tracks (the most frequent fingerprints win).
const maxFingerprintSeries = 20

// Sampler drives a TSDB: on every tick it scrapes the registry, the Go
// runtime, and the workload profiler's per-fingerprint latency quantiles,
// then lets the attached SLO set evaluate burn rates on the fresh data.
// Start launches a background ticker; tests call Tick directly with
// synthetic clocks.
type Sampler struct {
	db       *TSDB
	reg      *Registry
	workload *Workload
	slos     *SLOSet
	interval time.Duration

	stop chan struct{}
	done chan struct{}
	once sync.Once

	ticks    *Counter
	duration *Gauge
}

// NewSampler builds a sampler over reg (nil means the Default registry)
// feeding a fresh TSDB sized by cfg. workload and the SLO set are optional.
func NewSampler(reg *Registry, workload *Workload, slos *SLOSet, cfg TSDBConfig) *Sampler {
	if reg == nil {
		reg = Default
	}
	cfg = cfg.withDefaults()
	s := &Sampler{
		db:       NewTSDB(cfg),
		reg:      reg,
		workload: workload,
		slos:     slos,
		interval: cfg.Interval,
		ticks:    reg.Counter("rdfa_sampler_ticks_total"),
		duration: reg.Gauge("rdfa_sampler_tick_seconds"),
	}
	reg.Help("rdfa_sampler_ticks_total", "Telemetry sampler ticks taken.")
	return s
}

// DB returns the sampler's time-series store.
func (s *Sampler) DB() *TSDB {
	if s == nil {
		return nil
	}
	return s.db
}

// SLOs returns the attached SLO set (may be nil).
func (s *Sampler) SLOs() *SLOSet {
	if s == nil {
		return nil
	}
	return s.slos
}

// Tick takes one sample at now: registry scrape (which includes the
// runtime gauges when RegisterRuntimeMetrics ran), per-fingerprint latency
// quantiles, then SLO evaluation over the updated store.
func (s *Sampler) Tick(now time.Time) {
	if s == nil {
		return
	}
	start := time.Now()
	samples := s.reg.Samples()
	if s.workload != nil {
		for _, fp := range s.workload.Latencies(maxFingerprintSeries) {
			labels := `{fingerprint="` + fp.ID + `"}`
			samples = append(samples,
				Sample{Key: "rdfa_fp_latency_p50_ms" + labels, Kind: SampleGauge, Value: fp.P50Ms},
				Sample{Key: "rdfa_fp_latency_p95_ms" + labels, Kind: SampleGauge, Value: fp.P95Ms},
				Sample{Key: "rdfa_fp_queries_total" + labels, Kind: SampleCounter, Value: float64(fp.Count)})
		}
	}
	s.db.Ingest(now, samples)
	s.slos.Evaluate(now, s.db)
	s.ticks.Inc()
	s.duration.Set(time.Since(start).Seconds())
}

// Start launches the background sampling loop (taking an immediate first
// tick so endpoints have data right away) and returns s for chaining.
func (s *Sampler) Start() *Sampler {
	if s == nil || s.stop != nil {
		return s
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go func() {
		defer close(s.done)
		s.Tick(time.Now())
		t := time.NewTicker(s.interval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case now := <-t.C:
				s.Tick(now)
			}
		}
	}()
	return s
}

// Close stops the background loop (no-op when never started).
func (s *Sampler) Close() {
	if s == nil || s.stop == nil {
		return
	}
	s.once.Do(func() {
		close(s.stop)
		<-s.done
	})
}

// TelemetrySummary condenses the current runtime/series state into a flat
// map — the snapshot benchrunner attaches to BENCH_history.json entries so
// performance runs carry the telemetry context they ran under.
func (s *Sampler) TelemetrySummary() map[string]float64 {
	if s == nil {
		return nil
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	out := map[string]float64{
		"heap_alloc_bytes":     float64(ms.HeapAlloc),
		"total_alloc_bytes":    float64(ms.TotalAlloc),
		"gc_pause_seconds":     float64(ms.PauseTotalNs) / 1e9,
		"gc_cycles":            float64(ms.NumGC),
		"goroutines":           float64(runtime.NumGoroutine()),
		"sampler_ticks":        float64(s.ticks.Value()),
		"tracked_series":       float64(s.db.SeriesCount()),
		"dropped_samples":      float64(s.db.Dropped()),
		"sampler_tick_seconds": s.duration.Value(),
	}
	return out
}
