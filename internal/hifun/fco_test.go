package hifun

import (
	"testing"

	"rdfanalytics/internal/rdf"
)

func fcoGraph() (*rdf.Graph, []rdf.Term) {
	g := rdf.MustLoadTurtle(`@prefix ex: <http://e/> .
ex:brand1 ex:founder ex:alice , ex:bob .
ex:brand2 ex:founder ex:carol .
ex:brand3 ex:name "Nameless" .
ex:alice ex:nationality ex:French .
ex:bob ex:nationality ex:German .
ex:carol ex:nationality ex:French .
ex:alice ex:age 50 .
ex:bob ex:age 40 .
`)
	ents := []rdf.Term{
		rdf.NewIRI("http://e/brand1"),
		rdf.NewIRI("http://e/brand2"),
		rdf.NewIRI("http://e/brand3"),
	}
	return g, ents
}

func p(l string) rdf.Term { return rdf.NewIRI("http://e/" + l) }

func TestFCOValue(t *testing.T) {
	g, ents := fcoGraph()
	n, err := ApplyFeature(g, ents, FeatureSpec{Op: FCOValue, P: p("founder"), Feature: p("f_founder")})
	if err != nil {
		t.Fatal(err)
	}
	// Only brand2 is single-valued.
	if n != 1 {
		t.Fatalf("added = %d, want 1", n)
	}
	if g.Object(p("brand2"), p("f_founder")) != p("carol") {
		t.Error("brand2 feature wrong")
	}
}

func TestFCOExists(t *testing.T) {
	g, ents := fcoGraph()
	if _, err := ApplyFeature(g, ents, FeatureSpec{Op: FCOExists, P: p("founder"), Feature: p("hasFounder")}); err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{"brand1": 1, "brand2": 1, "brand3": 0}
	for b, w := range want {
		v, _ := g.Object(p(b), p("hasFounder")).Int()
		if v != w {
			t.Errorf("%s = %d, want %d", b, v, w)
		}
	}
}

func TestFCOCount(t *testing.T) {
	g, ents := fcoGraph()
	ApplyFeature(g, ents, FeatureSpec{Op: FCOCount, P: p("founder"), Feature: p("nFounders")})
	want := map[string]int64{"brand1": 2, "brand2": 1, "brand3": 0}
	for b, w := range want {
		if v, _ := g.Object(p(b), p("nFounders")).Int(); v != w {
			t.Errorf("%s = %d, want %d", b, v, w)
		}
	}
}

func TestFCOValuesAsFeatures(t *testing.T) {
	g, ents := fcoGraph()
	ApplyFeature(g, ents, FeatureSpec{Op: FCOValuesAsFeatures, P: p("founder"), Feature: p("founder")})
	// brand1 has alice and bob -> founder_alice=1, founder_bob=1, founder_carol=0.
	if v, _ := g.Object(p("brand1"), p("founder_alice")).Int(); v != 1 {
		t.Error("founder_alice wrong")
	}
	if v, _ := g.Object(p("brand1"), p("founder_carol")).Int(); v != 0 {
		t.Error("founder_carol complement missing")
	}
	if v, _ := g.Object(p("brand3"), p("founder_alice")).Int(); v != 0 {
		t.Error("brand3 complement missing")
	}
}

func TestFCODegree(t *testing.T) {
	g, ents := fcoGraph()
	ApplyFeature(g, ents, FeatureSpec{Op: FCODegree, Feature: p("deg")})
	// brand1: 2 outgoing founder triples, 0 incoming.
	if v, _ := g.Object(p("brand1"), p("deg")).Int(); v != 2 {
		t.Errorf("brand1 degree = %d", v)
	}
}

func TestFCOAvgDegree(t *testing.T) {
	g, ents := fcoGraph()
	ApplyFeature(g, ents, FeatureSpec{Op: FCOAvgDegree, P: p("founder"), Feature: p("avgDeg")})
	// alice: nationality+age out, founder in = 3; bob: 3. avg = 3.
	if f, _ := g.Object(p("brand1"), p("avgDeg")).Float(); f != 3 {
		t.Errorf("brand1 avgDeg = %v", f)
	}
	// brand3 has no founders: neutral 0.
	if v, _ := g.Object(p("brand3"), p("avgDeg")).Int(); v != 0 {
		t.Error("brand3 neutral value missing")
	}
}

func TestFCOPathOps(t *testing.T) {
	g, ents := fcoGraph()
	// fco7: founder/nationality exists.
	ApplyFeature(g, ents, FeatureSpec{Op: FCOPathExists, P: p("founder"), P2: p("nationality"), Feature: p("px")})
	if v, _ := g.Object(p("brand1"), p("px")).Int(); v != 1 {
		t.Error("path exists wrong for brand1")
	}
	if v, _ := g.Object(p("brand3"), p("px")).Int(); v != 0 {
		t.Error("path exists wrong for brand3")
	}
	// fco8: count distinct endpoints.
	ApplyFeature(g, ents, FeatureSpec{Op: FCOPathCount, P: p("founder"), P2: p("nationality"), Feature: p("pc")})
	if v, _ := g.Object(p("brand1"), p("pc")).Int(); v != 2 { // French, German
		t.Errorf("path count = %d", v)
	}
	// fco9: most frequent endpoint.
	g2 := rdf.MustLoadTurtle(`@prefix ex: <http://e/> .
ex:b ex:f ex:p1 , ex:p2 , ex:p3 .
ex:p1 ex:nat ex:FR . ex:p2 ex:nat ex:FR . ex:p3 ex:nat ex:DE .
`)
	ApplyFeature(g2, []rdf.Term{p("b")}, FeatureSpec{Op: FCOPathMaxFreq, P: p("f"), P2: p("nat"), Feature: p("mainNat")})
	if g2.Object(p("b"), p("mainNat")) != p("FR") {
		t.Errorf("maxFreq = %v", g2.Object(p("b"), p("mainNat")))
	}
}

func TestFCOErrors(t *testing.T) {
	g, ents := fcoGraph()
	if _, err := ApplyFeature(g, ents, FeatureSpec{Op: FCOPathExists, P: p("founder")}); err == nil {
		t.Error("missing P2 accepted")
	}
	if _, err := ApplyFeature(g, ents, FeatureSpec{Op: FCOValue, P: p("x")}); err == nil {
		t.Error("missing feature IRI accepted")
	}
	if _, err := ApplyFeature(g, ents, FeatureSpec{Op: FCO(99), P: p("x"), Feature: p("f")}); err == nil {
		t.Error("unknown operator accepted")
	}
}

// TestMakeFunctionalAverage is the §4.2.6 multi-valued recipe: each entity
// gets the average of its numeric values.
func TestMakeFunctionalAverage(t *testing.T) {
	g := rdf.MustLoadTurtle(`@prefix ex: <http://e/> .
ex:c ex:birthYear 1960 .
ex:c ex:birthYear 1970 .
ex:d ex:birthYear 1980 .
`)
	n := MakeFunctional(g, []rdf.Term{p("c"), p("d"), p("e")}, p("birthYear"), p("avgBirthYear"))
	if n != 2 {
		t.Fatalf("added = %d, want 2", n)
	}
	if f, _ := g.Object(p("c"), p("avgBirthYear")).Float(); f != 1965 {
		t.Errorf("avg = %v", f)
	}
	if g.Object(p("d"), p("avgBirthYear")) != rdf.NewInteger(1980) {
		t.Errorf("single value must be copied verbatim")
	}
}

// TestFeatureMakesHIFUNApplicable: after fco transformation, the derived
// feature is effectively functional, satisfying HIFUN's prerequisite.
func TestFeatureMakesHIFUNApplicable(t *testing.T) {
	g, ents := fcoGraph()
	ApplyFeature(g, ents, FeatureSpec{Op: FCOCount, P: p("founder"), Feature: p("nFounders")})
	if !rdf.EffectivelyFunctional(g, p("nFounders")) {
		t.Fatal("fco3 feature not functional")
	}
	// And a HIFUN query over the feature works.
	c := NewContext(g, "http://e/")
	ans, err := c.ExecuteText("(nFounders, ID, COUNT)")
	if err != nil {
		t.Fatal(err)
	}
	// nFounders values: 2 (brand1), 1 (brand2), 0 (brand3): 3 groups.
	if len(ans.Rows) != 3 {
		t.Fatalf("groups = %d\n%s", len(ans.Rows), ans)
	}
}
