package hifun

import (
	"strings"
	"testing"

	"rdfanalytics/internal/datagen"
	"rdfanalytics/internal/rdf"
	"rdfanalytics/internal/sparql"
)

func invCtx(t testing.TB) *Context {
	t.Helper()
	return NewContext(datagen.SmallInvoices(), datagen.InvoicesNS)
}

func mustTranslate(t *testing.T, c *Context, src string) string {
	t.Helper()
	q, err := Parse(src, c.NS)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	out, err := c.Translator().Translate(q)
	if err != nil {
		t.Fatalf("translate %q: %v", src, err)
	}
	if _, err := sparql.Parse(out); err != nil {
		t.Fatalf("generated SPARQL invalid for %q: %v\n%s", src, err, out)
	}
	return out
}

// TestTranslateSimple is §4.2.1: (takesPlaceAt, inQuantity, SUM).
func TestTranslateSimple(t *testing.T) {
	c := invCtx(t)
	out := mustTranslate(t, c, "(takesPlaceAt, inQuantity, SUM)")
	for _, want := range []string{
		"?x1 <" + c.NS + "takesPlaceAt> ?x2 .",
		"?x1 <" + c.NS + "inQuantity> ?x3 .",
		"GROUP BY ?x2",
		"SUM(?x3)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "HAVING") {
		t.Error("unexpected HAVING")
	}
}

// TestTranslateURIRestriction is §4.2.2: restriction to branch1 becomes a
// triple pattern, not a FILTER.
func TestTranslateURIRestriction(t *testing.T) {
	c := invCtx(t)
	out := mustTranslate(t, c, "(takesPlaceAt/branch1, inQuantity, SUM)")
	if !strings.Contains(out, "?x1 <"+c.NS+"takesPlaceAt> <"+c.NS+"branch1> .") {
		t.Errorf("URI restriction not a triple pattern:\n%s", out)
	}
	if strings.Contains(out, "FILTER") {
		t.Errorf("URI restriction must not produce FILTER:\n%s", out)
	}
}

// TestTranslateLiteralRestriction is §4.2.2: FILTER for literal values.
func TestTranslateLiteralRestriction(t *testing.T) {
	c := invCtx(t)
	out := mustTranslate(t, c, "(takesPlaceAt, inQuantity/>=1, SUM)")
	if !strings.Contains(out, "FILTER((?x3 >= 1))") {
		t.Errorf("literal restriction missing FILTER:\n%s", out)
	}
}

// TestTranslateHaving is §4.2.3: result restriction becomes HAVING.
func TestTranslateHaving(t *testing.T) {
	c := invCtx(t)
	out := mustTranslate(t, c, "(takesPlaceAt, inQuantity, SUM/>1000)")
	if !strings.Contains(out, "HAVING (SUM(?x3) > 1000)") {
		t.Errorf("HAVING missing:\n%s", out)
	}
}

// TestTranslateComposition is §4.2.4: (brand∘delivers, inQuantity, SUM).
func TestTranslateComposition(t *testing.T) {
	c := invCtx(t)
	out := mustTranslate(t, c, "(brand∘delivers, inQuantity, SUM)")
	for _, want := range []string{
		"?x1 <" + c.NS + "delivers> ?x2 .",
		"?x2 <" + c.NS + "brand> ?x3 .",
		"GROUP BY ?x3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// TestTranslateDerived is §4.2.4: derived attribute month∘hasDate.
func TestTranslateDerived(t *testing.T) {
	c := invCtx(t)
	out := mustTranslate(t, c, "(month.hasDate, inQuantity, SUM)")
	if !strings.Contains(out, "MONTH(?x2)") {
		t.Errorf("derived expression missing:\n%s", out)
	}
	if !strings.Contains(out, "GROUP BY MONTH(?x2)") {
		t.Errorf("derived GROUP BY missing:\n%s", out)
	}
}

// TestTranslatePairing is §4.2.4: pairing joins on the shared root ?x1.
func TestTranslatePairing(t *testing.T) {
	c := invCtx(t)
	out := mustTranslate(t, c, "(takesPlaceAt & delivers, inQuantity, SUM)")
	for _, want := range []string{
		"?x1 <" + c.NS + "takesPlaceAt> ?x2 .",
		"?x1 <" + c.NS + "delivers> ?x3 .",
		"GROUP BY ?x2 ?x3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// TestTranslateFullExample is the §4.2.5 worked example.
func TestTranslateFullExample(t *testing.T) {
	c := invCtx(t)
	out := mustTranslate(t, c,
		"(takesPlaceAt & (brand.delivers)/month.hasDate=1, inQuantity/>=2, SUM/>1000)")
	for _, want := range []string{
		"takesPlaceAt> ?x2",
		"delivers>",
		"brand>",
		"MONTH(",
		">= 2",
		"HAVING (SUM(",
		"> 1000)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// TestTranslateEmptyGroupingAndIdent covers Examples 1–2 of §5.1.
func TestTranslateEmptyGroupingAndIdent(t *testing.T) {
	c := NewContext(datagen.SmallProducts(), datagen.ExampleNS)
	// (ε, price, AVG): no GROUP BY.
	out := mustTranslate(t, c, "(ε, price, AVG)")
	if strings.Contains(out, "GROUP BY") {
		t.Errorf("ε grouping must not GROUP BY:\n%s", out)
	}
	if !strings.Contains(out, "AVG(?x2)") {
		t.Errorf("AVG missing:\n%s", out)
	}
	// (g, ID, COUNT): counts the root variable.
	out = mustTranslate(t, c, "(origin.manufacturer, ID, COUNT)")
	if !strings.Contains(out, "COUNT(?x1)") {
		t.Errorf("identity measure must count ?x1:\n%s", out)
	}
}

func TestTranslateRootClass(t *testing.T) {
	c := NewContext(datagen.SmallProducts(), datagen.ExampleNS).
		WithRoot(rdf.NewIRI(datagen.ExampleNS + "Laptop"))
	out := mustTranslate(t, c, "(manufacturer, price, AVG)")
	if !strings.Contains(out, "?x1 <"+rdf.RDFType+"> <"+datagen.ExampleNS+"Laptop> .") {
		t.Errorf("root class pattern missing:\n%s", out)
	}
}

func TestTranslateInverseProperty(t *testing.T) {
	c := NewContext(datagen.SmallProducts(), datagen.ExampleNS).
		WithRoot(rdf.NewIRI(datagen.ExampleNS + "Company"))
	out := mustTranslate(t, c, "(^manufacturer, size, AVG)")
	// Inverse: the new variable is the *subject*.
	if !strings.Contains(out, "?x2 <"+datagen.ExampleNS+"manufacturer> ?x1 .") {
		t.Errorf("inverse pattern wrong:\n%s", out)
	}
}

func TestTranslateMultipleOps(t *testing.T) {
	c := NewContext(datagen.SmallProducts(), datagen.ExampleNS)
	out := mustTranslate(t, c, "(manufacturer, price, AVG; SUM; MAX)")
	for _, want := range []string{"AVG(?x3)", "SUM(?x3)", "MAX(?x3)"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestTranslateValueSetRestriction(t *testing.T) {
	c := invCtx(t)
	q := MustParse("(takesPlaceAt, inQuantity, SUM)", c.NS)
	q.GroupRestrs = []Restriction{{
		Path:   Prop{Name: "takesPlaceAt"},
		Values: []rdf.Term{rdf.NewIRI(c.NS + "branch1"), rdf.NewIRI(c.NS + "branch2")},
	}}
	out, err := c.Translator().Translate(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "IN (<"+c.NS+"branch1>, <"+c.NS+"branch2>))") {
		t.Errorf("IN filter missing:\n%s", out)
	}
	if _, err := sparql.Parse(out); err != nil {
		t.Fatalf("invalid SPARQL: %v\n%s", err, out)
	}
}

func TestTranslateErrors(t *testing.T) {
	c := invCtx(t)
	// No operation.
	if _, err := c.Translator().Translate(&Query{Grouping: Prop{Name: "a"}}); err == nil {
		t.Error("missing op accepted")
	}
	// Traversal after derived attribute is impossible.
	q := &Query{
		Grouping:  Comp{Outer: Prop{Name: "p"}, Inner: Derived{Func: "YEAR", Sub: Prop{Name: "d"}}},
		Measuring: Prop{Name: "q"},
		Ops:       []Operation{{Op: OpSum}},
	}
	if _, err := c.Translator().Translate(q); err == nil {
		t.Error("composition over derived accepted")
	}
}

// TestProposition2Soundness checks the translation's semantics against a
// hand-evaluated reference on the paper's own dataset (Proposition 2): the
// translated query's answer equals the three-step HIFUN evaluation
// (grouping, measuring, reduction) computed directly on the graph.
func TestProposition2Soundness(t *testing.T) {
	c := invCtx(t)
	ans, err := c.ExecuteText("(takesPlaceAt, inQuantity, SUM)")
	if err != nil {
		t.Fatal(err)
	}
	// Direct evaluation: group invoices by branch, sum quantities.
	direct := map[rdf.Term]int64{}
	c.Graph.Match(rdf.Any, rdf.NewIRI(c.NS+"takesPlaceAt"), rdf.Any, func(tr rdf.Triple) bool {
		q := c.Graph.Object(tr.S, rdf.NewIRI(c.NS+"inQuantity"))
		n, _ := q.Int()
		direct[tr.O] += n
		return true
	})
	if len(ans.Rows) != len(direct) {
		t.Fatalf("groups: %d vs %d", len(ans.Rows), len(direct))
	}
	for _, row := range ans.Rows {
		want := direct[row[0]]
		got, _ := row[1].Int()
		if got != want {
			t.Errorf("%v: %d, want %d", row[0], got, want)
		}
	}
}

func BenchmarkTranslate(b *testing.B) {
	c := NewContext(datagen.SmallInvoices(), datagen.InvoicesNS)
	q := MustParse("(takesPlaceAt & (brand.delivers)/month.hasDate=1, inQuantity/>=2, SUM/>1000)", c.NS)
	tr := c.Translator()
	b.ResetTimer()
	for b.Loop() {
		if _, err := tr.Translate(q); err != nil {
			b.Fatal(err)
		}
	}
}
