package hifun

import (
	"testing"

	"rdfanalytics/internal/rdf"
)

const ns = "http://e/"

func TestParseSimpleQuery(t *testing.T) {
	q := MustParse("(takesPlaceAt, inQuantity, SUM)", ns)
	g, ok := q.Grouping.(Prop)
	if !ok || g.Name != "takesPlaceAt" {
		t.Fatalf("grouping: %#v", q.Grouping)
	}
	m, ok := q.Measuring.(Prop)
	if !ok || m.Name != "inQuantity" {
		t.Fatalf("measuring: %#v", q.Measuring)
	}
	if len(q.Ops) != 1 || q.Ops[0].Op != OpSum {
		t.Fatalf("ops: %#v", q.Ops)
	}
}

func TestParseEmptyGrouping(t *testing.T) {
	for _, src := range []string{"(ε, price, AVG)", "(e, price, AVG)"} {
		q := MustParse(src, ns)
		if q.Grouping != nil {
			t.Errorf("%s: grouping = %#v, want nil", src, q.Grouping)
		}
	}
}

func TestParseIdentityMeasure(t *testing.T) {
	q := MustParse("(origin.manufacturer, ID, COUNT)", ns)
	if _, ok := q.Measuring.(Ident); !ok {
		t.Fatalf("measuring: %#v", q.Measuring)
	}
	comp, ok := q.Grouping.(Comp)
	if !ok {
		t.Fatalf("grouping: %#v", q.Grouping)
	}
	if comp.Outer.(Prop).Name != "origin" || comp.Inner.(Prop).Name != "manufacturer" {
		t.Fatalf("composition order wrong: %v", comp)
	}
}

func TestParseCompositionUnicode(t *testing.T) {
	a := MustParse("(brand∘delivers, inQuantity, SUM)", ns)
	b := MustParse("(brand.delivers, inQuantity, SUM)", ns)
	if a.Grouping.String() != b.Grouping.String() {
		t.Fatalf("unicode vs ascii composition differ: %s vs %s", a.Grouping, b.Grouping)
	}
}

func TestParsePairing(t *testing.T) {
	for _, src := range []string{
		"(takesPlaceAt ⊗ delivers, inQuantity, SUM)",
		"(takesPlaceAt & delivers, inQuantity, SUM)",
	} {
		q := MustParse(src, ns)
		p, ok := q.Grouping.(Pair)
		if !ok || len(p.Items) != 2 {
			t.Fatalf("%s: grouping = %#v", src, q.Grouping)
		}
	}
}

func TestParsePairingOfCompositions(t *testing.T) {
	q := MustParse("(takesPlaceAt & (brand.delivers), inQuantity, SUM)", ns)
	p := q.Grouping.(Pair)
	if _, ok := p.Items[1].(Comp); !ok {
		t.Fatalf("second pair item: %#v", p.Items[1])
	}
}

func TestParseDerived(t *testing.T) {
	q := MustParse("(month.hasDate, inQuantity, SUM)", ns)
	d, ok := q.Grouping.(Derived)
	if !ok || d.Func != "MONTH" {
		t.Fatalf("grouping: %#v", q.Grouping)
	}
	if d.Sub.(Prop).Name != "hasDate" {
		t.Fatalf("derived sub: %#v", d.Sub)
	}
	// Function-call form is equivalent.
	q2 := MustParse("(month(hasDate), inQuantity, SUM)", ns)
	if q2.Grouping.String() != q.Grouping.String() {
		t.Fatalf("call form differs: %s vs %s", q2.Grouping, q.Grouping)
	}
}

func TestParseRestrictions(t *testing.T) {
	// URI restriction on grouping.
	q := MustParse("(takesPlaceAt/branch1, inQuantity, SUM)", ns)
	if len(q.GroupRestrs) != 1 {
		t.Fatalf("restrs: %#v", q.GroupRestrs)
	}
	r := q.GroupRestrs[0]
	if r.Op != "=" || r.Value != rdf.NewIRI(ns+"branch1") {
		t.Fatalf("restr: %#v", r)
	}
	// Literal restriction on measuring.
	q = MustParse("(takesPlaceAt, inQuantity/>=1, SUM)", ns)
	r = q.MeasRestrs[0]
	if r.Op != ">=" || r.Value != rdf.NewTyped("1", rdf.XSDInteger) {
		t.Fatalf("restr: %#v", r)
	}
	// Result restriction.
	q = MustParse("(takesPlaceAt, inQuantity, SUM/>1000)", ns)
	if q.Ops[0].RestrictOp != ">" || q.Ops[0].RestrictValue.Value != "1000" {
		t.Fatalf("op restr: %#v", q.Ops[0])
	}
}

func TestParsePathRestriction(t *testing.T) {
	// Algorithm 4's general case: restriction through a composition.
	q := MustParse("(takesPlaceAt & brand.delivers/month.hasDate=1, inQuantity/>=2, SUM/>1000)", ns)
	if len(q.GroupRestrs) != 1 {
		t.Fatalf("restrs: %#v", q.GroupRestrs)
	}
	r := q.GroupRestrs[0]
	if r.Path == nil {
		t.Fatal("path restriction lost its path")
	}
	if _, ok := r.Path.(Derived); !ok {
		t.Fatalf("path: %#v", r.Path)
	}
	if r.Value.Value != "1" {
		t.Fatalf("value: %#v", r.Value)
	}
}

func TestParseDateValue(t *testing.T) {
	q := MustParse("(releaseDate/=2021-06-10, price, AVG)", ns)
	r := q.GroupRestrs[0]
	if r.Value.Datatype != rdf.XSDDate {
		t.Fatalf("date not recognized: %#v", r.Value)
	}
}

func TestParseMultipleOps(t *testing.T) {
	q := MustParse("(manufacturer, price, AVG; SUM; MAX)", ns)
	if len(q.Ops) != 3 {
		t.Fatalf("ops: %#v", q.Ops)
	}
	if q.Ops[2].Op != OpMax {
		t.Fatalf("third op: %#v", q.Ops[2])
	}
}

func TestParseDistinct(t *testing.T) {
	q := MustParse("(manufacturer, ID, COUNT DISTINCT)", ns)
	if !q.Ops[0].Distinct {
		t.Fatal("distinct lost")
	}
}

func TestParseInverse(t *testing.T) {
	q := MustParse("(^manufacturer, price, AVG)", ns)
	p, ok := q.Grouping.(Prop)
	if !ok || !p.Inverse {
		t.Fatalf("inverse grouping: %#v", q.Grouping)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"(a, b)",               // missing op
		"(a, b, NOTANOP)",      // unknown op
		"(a, b, SUM",           // unclosed
		"(a, b, SUM) trailing", // trailing tokens
		"(a,, SUM)",
		"(a/<unterminated, b, SUM)",
	}
	for _, src := range bad {
		if _, err := Parse(src, ns); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

// TestQueryStringRoundTripQuick: random attribute trees survive
// String() -> Parse() unchanged.
func TestQueryStringRoundTripQuick(t *testing.T) {
	props := []string{"alpha", "beta", "gamma", "delta"}
	funcs := []string{"YEAR", "MONTH", "DAY"}
	var build func(seed uint64, depth int) Attr
	build = func(seed uint64, depth int) Attr {
		switch {
		case depth <= 0 || seed%4 == 0:
			return Prop{Name: props[seed%uint64(len(props))]}
		case seed%4 == 1:
			return Comp{
				Outer: Prop{Name: props[(seed>>2)%uint64(len(props))]},
				Inner: build(seed>>4, depth-1),
			}
		case seed%4 == 2:
			return Derived{Func: funcs[(seed>>2)%uint64(len(funcs))], Sub: build(seed>>4, depth-1)}
		default:
			return Pair{Items: []Attr{
				build(seed>>3, depth-1),
				build(seed>>7, depth-1),
			}}
		}
	}
	for seed := uint64(0); seed < 400; seed++ {
		g := build(seed, 3)
		// Pairing inside compositions or derived functions is not part of
		// the textual grammar; restrict to top-level pairings.
		if containsNestedPair(g) {
			continue
		}
		q := &Query{Grouping: g, Measuring: Prop{Name: "m"}, Ops: []Operation{{Op: OpSum}}}
		src := q.String()
		q2, err := Parse(src, ns)
		if err != nil {
			t.Fatalf("seed %d: re-parse of %q failed: %v", seed, src, err)
		}
		if q2.String() != src {
			t.Fatalf("seed %d: roundtrip %q -> %q", seed, src, q2.String())
		}
	}
}

func containsNestedPair(a Attr) bool {
	var walk func(a Attr, top bool) bool
	walk = func(a Attr, top bool) bool {
		switch x := a.(type) {
		case Pair:
			if !top {
				return true
			}
			for _, item := range x.Items {
				if walk(item, false) {
					return true
				}
			}
		case Comp:
			return walk(x.Outer, false) || walk(x.Inner, false)
		case Derived:
			if x.Sub == nil {
				return true
			}
			return walk(x.Sub, false)
		}
		return false
	}
	return walk(a, true)
}

func TestQueryStringRoundTrip(t *testing.T) {
	srcs := []string{
		"(takesPlaceAt, inQuantity, SUM)",
		"(brand.delivers, inQuantity, SUM)",
		"(takesPlaceAt & delivers, inQuantity, SUM/>100)",
		"(ε, price, AVG)",
		"(month.hasDate, ID, COUNT)",
	}
	for _, src := range srcs {
		q := MustParse(src, ns)
		q2, err := Parse(q.String(), ns)
		if err != nil {
			t.Errorf("re-parse of %q (from %q) failed: %v", q.String(), src, err)
			continue
		}
		if q2.String() != q.String() {
			t.Errorf("roundtrip: %q -> %q", q.String(), q2.String())
		}
	}
}
