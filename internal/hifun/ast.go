// Package hifun implements HIFUN, the high-level functional analytics
// language of Spyratos & Sugibuchi that the paper (Chapters 2.5 and 4) uses
// as the intermediate representation between faceted-search interactions and
// SPARQL. It provides:
//
//   - the functional-algebra AST: attribute paths, composition (∘), pairing
//     (⊗), derived attributes, and restrictions on the grouping, measuring
//     and operation parts;
//   - a textual parser for the (g, m, op) query syntax;
//   - the HIFUN→SPARQL translator implementing Algorithms 1–4 of §4.2;
//   - the Linked-Data feature creation operators FCO1–FCO9 of Table 4.1;
//   - query execution against an rdf.Graph through the SPARQL engine, with
//     answers loadable as new RDF datasets (§5.3.3) to express HAVING and
//     arbitrarily nested analytics.
package hifun

import (
	"fmt"
	"strings"

	"rdfanalytics/internal/rdf"
)

// Attr is a HIFUN attribute expression: an operand of the functional
// algebra. Concrete types: Prop, Comp, Pair, Derived, Ident.
type Attr interface {
	fmt.Stringer
	isAttr()
}

// Prop is an atomic attribute: a property of the dataset, identified by a
// short name resolved against the analysis context (or a full IRI).
type Prop struct {
	Name string
	// Inverse marks traversal against the property direction (the model's
	// p⁻¹, used when a facet was reached by an inverse transition).
	Inverse bool
}

// Comp is function composition: Outer ∘ Inner, i.e. "apply Inner first".
// (brand ∘ delivers)(i) = brand(delivers(i)).
type Comp struct {
	Outer, Inner Attr
}

// Pair is the pairing operation ⊗: grouping by several attributes at once.
type Pair struct {
	Items []Attr
}

// Derived wraps an attribute with a value-level transformation, e.g.
// month ∘ hasDate where "month" is not a property but a derived attribute
// computed by a builtin (YEAR, MONTH, DAY, ...).
type Derived struct {
	Func string // SPARQL builtin name, upper-case
	Sub  Attr
}

// Ident is the identity attribute: it maps each data item to itself.
// (g, ID, COUNT) counts the items of each group.
type Ident struct{}

func (Prop) isAttr()    {}
func (Comp) isAttr()    {}
func (Pair) isAttr()    {}
func (Derived) isAttr() {}
func (Ident) isAttr()   {}

func (p Prop) String() string {
	name := p.Name
	// Full IRIs display as their local name (breadcrumbs, logs); bare names
	// print verbatim so textual queries round-trip.
	if strings.Contains(name, "://") {
		if i := strings.LastIndexAny(name, "#/"); i >= 0 && i < len(name)-1 {
			name = name[i+1:]
		}
	}
	if p.Inverse {
		return "^" + name
	}
	return name
}
func (c Comp) String() string { return c.Outer.String() + "∘" + c.Inner.String() }
func (p Pair) String() string {
	parts := make([]string, len(p.Items))
	for i, a := range p.Items {
		parts[i] = a.String()
	}
	return "(" + strings.Join(parts, " ⊗ ") + ")"
}
func (d Derived) String() string { return strings.ToLower(d.Func) + "(" + d.Sub.String() + ")" }
func (Ident) String() string     { return "ID" }

// Restriction restricts an attribute expression (the paper's g/rg, m/rm):
// the items whose Path-value satisfies (Op, Value) are kept.
type Restriction struct {
	// Path is the attribute whose value is restricted. A nil Path restricts
	// the expression's own value (the common case).
	Path Attr
	// Op is one of = != < <= > >=. For URI values only = and != make sense.
	Op string
	// Value is the comparison operand (URI or literal).
	Value rdf.Term
	// Values, when non-empty, expresses membership in a value set (the
	// faceted model's Restrict(E, p:vset)); Op is ignored.
	Values []rdf.Term
}

func (r Restriction) String() string {
	var sb strings.Builder
	if r.Path != nil {
		sb.WriteString(r.Path.String())
	}
	if len(r.Values) > 0 {
		sb.WriteString("∈{")
		for i, v := range r.Values {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(termLex(v))
		}
		sb.WriteString("}")
		return sb.String()
	}
	sb.WriteString(r.Op)
	sb.WriteString(termLex(r.Value))
	return sb.String()
}

func termLex(t rdf.Term) string {
	if t.Kind == rdf.KindIRI {
		return "<" + t.Value + ">"
	}
	return t.Value
}

// AggOp names the reduction operations.
type AggOp string

// The reduction operations of §2.4 (the SPARQL aggregate set).
const (
	OpCount       AggOp = "COUNT"
	OpSum         AggOp = "SUM"
	OpAvg         AggOp = "AVG"
	OpMin         AggOp = "MIN"
	OpMax         AggOp = "MAX"
	OpGroupConcat AggOp = "GROUP_CONCAT"
)

// ValidOp reports whether s names a supported reduction operation.
func ValidOp(s string) bool {
	switch AggOp(strings.ToUpper(s)) {
	case OpCount, OpSum, OpAvg, OpMin, OpMax, OpGroupConcat:
		return true
	}
	return false
}

// Operation is one reduction with an optional result restriction (op/ro):
// the HAVING part of the paper's q = (gE/rg, mE/rm, opE/ro).
type Operation struct {
	Op       AggOp
	Distinct bool
	// RestrictOp/RestrictValue express ro: a condition on the aggregate
	// value, e.g. SUM/>1000.
	RestrictOp    string
	RestrictValue rdf.Term
}

func (o Operation) String() string {
	s := string(o.Op)
	if o.Distinct {
		s += " DISTINCT"
	}
	if o.RestrictOp != "" {
		s += "/" + o.RestrictOp + termLex(o.RestrictValue)
	}
	return s
}

// Query is a HIFUN analytic query q = (gE/rg, mE/rm, opE/ro). Grouping may
// be nil (ε — aggregate over the whole context, Example 1 of §5.1).
// Several operations may be requested at once, matching the paper's GUI
// ("average, sum and max price ..."); formal HIFUN has exactly one.
type Query struct {
	Grouping    Attr
	GroupRestrs []Restriction
	Measuring   Attr
	MeasRestrs  []Restriction
	Ops         []Operation
}

func (q Query) String() string {
	var sb strings.Builder
	sb.WriteByte('(')
	if q.Grouping == nil {
		sb.WriteString("ε")
	} else {
		sb.WriteString(q.Grouping.String())
	}
	for _, r := range q.GroupRestrs {
		sb.WriteByte('/')
		sb.WriteString(r.String())
	}
	sb.WriteString(", ")
	if q.Measuring == nil {
		sb.WriteString("ID")
	} else {
		sb.WriteString(q.Measuring.String())
	}
	for _, r := range q.MeasRestrs {
		sb.WriteByte('/')
		sb.WriteString(r.String())
	}
	sb.WriteString(", ")
	for i, op := range q.Ops {
		if i > 0 {
			sb.WriteString("; ")
		}
		sb.WriteString(op.String())
	}
	sb.WriteByte(')')
	return sb.String()
}

// derivedFuncs are the value-level transformations accepted as derived
// attributes (§4.2.4: "all predefined functions of SPARQL with one
// parameter can be used straightforwardly as derived attributes").
var derivedFuncs = map[string]bool{
	"YEAR": true, "MONTH": true, "DAY": true, "HOURS": true,
	"MINUTES": true, "SECONDS": true, "STR": true, "UCASE": true,
	"LCASE": true, "ABS": true, "CEIL": true, "FLOOR": true,
	"ROUND": true, "STRLEN": true,
}

// IsDerivedFunc reports whether name is a supported derived-attribute
// function.
func IsDerivedFunc(name string) bool { return derivedFuncs[strings.ToUpper(name)] }
