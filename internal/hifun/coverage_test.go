package hifun

import (
	"strings"
	"testing"

	"rdfanalytics/internal/datagen"
	"rdfanalytics/internal/rdf"
	"rdfanalytics/internal/sparql"
)

// TestTranslateFixedEndDeepPath: a URI restriction through a multi-hop
// composition fixes the *last* object only (Algorithm 4's URI case).
func TestTranslateFixedEndDeepPath(t *testing.T) {
	c := NewContext(datagen.SmallProducts(), datagen.ExampleNS).
		WithRoot(rdf.NewIRI(datagen.ExampleNS + "Laptop"))
	// Group laptops by manufacturer, restricted to laptops whose
	// hard drive's maker's origin is Singapore.
	q := MustParse("(manufacturer/origin.manufacturer.hardDrive=<"+
		datagen.ExampleNS+"Singapore>, price, AVG)", c.NS)
	out, err := c.Translator().Translate(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "<"+datagen.ExampleNS+"Singapore> .") {
		t.Fatalf("fixed end missing:\n%s", out)
	}
	// And it executes: laptop1 (SSD1 by Maxtor/Singapore) and laptop3
	// (NVMe1 by Maxtor) qualify.
	ans, err := c.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Rows) != 2 { // DELL (laptop1), Lenovo (laptop3)
		t.Fatalf("rows:\n%s", ans)
	}
}

// TestTranslateMeasureURIRestriction: an equality restriction with a URI on
// the measure becomes a FILTER on the measure variable.
func TestTranslateMeasureURIRestriction(t *testing.T) {
	c := NewContext(datagen.SmallProducts(), datagen.ExampleNS).
		WithRoot(rdf.NewIRI(datagen.ExampleNS + "Laptop"))
	q := MustParse("(manufacturer, hardDrive, COUNT)", c.NS)
	q.MeasRestrs = []Restriction{{Op: "=", Value: rdf.NewIRI(datagen.ExampleNS + "SSD1")}}
	out, err := c.Translator().Translate(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "= <"+datagen.ExampleNS+"SSD1>") {
		t.Fatalf("URI measure restriction missing:\n%s", out)
	}
	if _, err := sparql.Parse(out); err != nil {
		t.Fatal(err)
	}
}

// TestTranslateMeasureValueSet: a value-set restriction on the measure
// becomes an IN filter.
func TestTranslateMeasureValueSet(t *testing.T) {
	c := invCtx(t)
	q := MustParse("(takesPlaceAt, inQuantity, SUM)", c.NS)
	q.MeasRestrs = []Restriction{{Values: []rdf.Term{rdf.NewInteger(100), rdf.NewInteger(200)}}}
	out, err := c.Translator().Translate(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "IN (100, 200)") {
		t.Fatalf("IN missing:\n%s", out)
	}
	parsed, err := sparql.Parse(out)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sparql.ExecSelect(c.Graph, parsed)
	if err != nil {
		t.Fatal(err)
	}
	// b1: 200+100=300, b2: 200, b3: 100+100=200.
	if res.Len() != 3 {
		t.Fatalf("rows: %s", res)
	}
}

// TestTranslateDerivedMeasure: aggregating a derived measure binds it first.
func TestTranslateDerivedMeasure(t *testing.T) {
	c := invCtx(t)
	ans, err := c.ExecuteText("(takesPlaceAt, month.hasDate, MAX)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ans.SPARQL, "BIND(MONTH(") {
		t.Fatalf("derived measure not bound:\n%s", ans.SPARQL)
	}
	// branch3's latest month is 3 (two March invoices, one January).
	for _, row := range ans.Rows {
		if row[0].LocalName() == "branch3" {
			if n, _ := row[1].Int(); n != 3 {
				t.Errorf("branch3 max month = %v", row[1])
			}
		}
	}
}

// TestRestrictionStringForms exercises the display forms used by the UI.
func TestRestrictionStringForms(t *testing.T) {
	cases := []struct {
		r    Restriction
		want string
	}{
		{Restriction{Op: ">=", Value: rdf.NewInteger(2)}, ">=2"},
		{Restriction{Path: Prop{Name: "p"}, Op: "=", Value: rdf.NewIRI("http://e/x")}, "p=<http://e/x>"},
		{Restriction{Values: []rdf.Term{rdf.NewInteger(1), rdf.NewInteger(2)}}, "∈{1, 2}"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
	// Operation display.
	op := Operation{Op: OpSum, RestrictOp: ">", RestrictValue: rdf.NewInteger(5)}
	if op.String() != "SUM/>5" {
		t.Errorf("op string = %q", op.String())
	}
	if (Operation{Op: OpCount, Distinct: true}).String() != "COUNT DISTINCT" {
		t.Error("distinct op string")
	}
	// FCO names render.
	for f := FCOValue; f <= FCOPathMaxFreq; f++ {
		if f.String() == "" {
			t.Errorf("FCO %d has empty name", int(f))
		}
	}
	if FCO(42).String() != "fco42" {
		t.Errorf("unknown FCO string = %q", FCO(42).String())
	}
}

// TestParseValueForms covers the literal grammar of the textual syntax.
func TestParseValueForms(t *testing.T) {
	cases := []struct {
		src  string
		want rdf.Term
	}{
		{`(g/="quoted", m, SUM)`, rdf.NewString("quoted")},
		{`(g/=3.25, m, SUM)`, rdf.NewTyped("3.25", rdf.XSDDecimal)},
		{`(g/=true, m, SUM)`, rdf.NewTyped("true", rdf.XSDBoolean)},
		{`(g/=<http://full/iri>, m, SUM)`, rdf.NewIRI("http://full/iri")},
	}
	for _, c := range cases {
		q := MustParse(c.src, ns)
		if q.GroupRestrs[0].Value != c.want {
			t.Errorf("%s: value = %#v, want %#v", c.src, q.GroupRestrs[0].Value, c.want)
		}
	}
}

// TestResolveFullIRIAndURN: attribute names that are already IRIs skip
// namespace resolution.
func TestResolveFullIRIAndURN(t *testing.T) {
	tr := &Translator{NS: "http://ns/"}
	if got := tr.resolve("http://full/p"); got.Value != "http://full/p" {
		t.Errorf("full IRI: %v", got)
	}
	if got := tr.resolve("urn:x:y"); got.Value != "urn:x:y" {
		t.Errorf("urn: %v", got)
	}
	if got := tr.resolve("bare"); got.Value != "http://ns/bare" {
		t.Errorf("bare: %v", got)
	}
	// Custom resolver wins.
	tr2 := &Translator{Resolve: func(n string) rdf.Term { return rdf.NewIRI("x:" + n) }}
	if got := tr2.resolve("p"); got.Value != "x:p" {
		t.Errorf("resolver: %v", got)
	}
}

// TestAggNameDisambiguation: two operations with the same aggregate over
// the same measure get distinct output columns.
func TestAggNameDisambiguation(t *testing.T) {
	c := invCtx(t)
	q := MustParse("(takesPlaceAt, inQuantity, SUM/>0; SUM/>100)", c.NS)
	out, err := c.Translator().Translate(q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "?sum_inQuantity)") > 1 {
		t.Fatalf("duplicate column names:\n%s", out)
	}
	if _, err := sparql.Parse(out); err != nil {
		t.Fatalf("invalid SPARQL: %v\n%s", err, out)
	}
}
