package hifun

import (
	"fmt"
	"strings"

	"rdfanalytics/internal/rdf"
)

// Translator turns HIFUN queries into SPARQL per Algorithms 1–4 of §4.2:
// the grouping expression yields triple patterns plus GROUP BY variables,
// the measuring expression yields triple patterns plus the aggregated
// variable, restrictions become triple patterns (URI values) or FILTERs
// (literal values), and result restrictions become HAVING clauses.
type Translator struct {
	// NS resolves bare attribute names: name -> NS+name.
	NS string
	// Resolve, when set, overrides NS-based resolution of attribute names.
	Resolve func(name string) rdf.Term
	// RootClass, when set, constrains the context root: ?x1 rdf:type <c>.
	RootClass rdf.Term
	// ExtraPatterns are verbatim graph patterns appended to WHERE, rooted at
	// ?x1 — the hook through which the faceted-search layer injects the
	// current state's extension (Table 5.1's temp-class trick).
	ExtraPatterns []string
}

// translation accumulates the pieces of Algorithm 1/4 while walking the
// query: triplePatterns, filters, retVars, aggregate selects and HAVINGs.
type translation struct {
	tr       *Translator
	varSeq   int
	patterns []string
	filters  []string
	retVars  []string // SELECT + GROUP BY variables (or derived expressions)
	groupBy  []string
	selects  []string // aggregate select items
	havings  []string
}

// RootVar is the SPARQL variable bound to the data items of the analysis
// context (the paper's ?x1).
const RootVar = "?x1"

func (t *translation) newVar() string {
	t.varSeq++
	return fmt.Sprintf("?x%d", t.varSeq+1) // ?x2, ?x3, ...
}

func (tr *Translator) resolve(name string) rdf.Term {
	if strings.Contains(name, "://") || strings.HasPrefix(name, "urn:") {
		return rdf.NewIRI(name)
	}
	if tr.Resolve != nil {
		return tr.Resolve(name)
	}
	return rdf.NewIRI(tr.NS + name)
}

// Translate produces the complete SPARQL SELECT query for q.
func (tr *Translator) Translate(q *Query) (string, error) {
	t := &translation{tr: tr}
	if len(q.Ops) == 0 {
		return "", fmt.Errorf("hifun: query has no operation")
	}
	if tr.RootClass != (rdf.Term{}) {
		t.patterns = append(t.patterns,
			fmt.Sprintf("%s <%s> <%s> .", RootVar, rdf.RDFType, tr.RootClass.Value))
	}
	t.patterns = append(t.patterns, tr.ExtraPatterns...)
	// Grouping expression gE (may be ε).
	if q.Grouping != nil {
		if err := t.addGrouping(q.Grouping); err != nil {
			return "", err
		}
	}
	// Group restrictions rg.
	for _, r := range q.GroupRestrs {
		if err := t.addRestriction(r, q.Grouping); err != nil {
			return "", err
		}
	}
	// Measuring expression mE.
	measureVar := RootVar
	if _, isIdent := q.Measuring.(Ident); !isIdent && q.Measuring != nil {
		v, derived, err := t.walkAttr(q.Measuring, RootVar)
		if err != nil {
			return "", err
		}
		if derived {
			// A derived measure like year∘date aggregates over the computed
			// expression; bind it first so aggregates reference a variable.
			bound := t.newVar()
			t.patterns = append(t.patterns, fmt.Sprintf("BIND(%s AS %s)", v, bound))
			v = bound
		}
		measureVar = v
	}
	// Measuring restrictions rm.
	for _, r := range q.MeasRestrs {
		if err := t.addMeasureRestriction(r, measureVar); err != nil {
			return "", err
		}
	}
	// Operations opE/ro.
	for _, op := range q.Ops {
		agg := t.aggExpr(op, measureVar)
		name := t.aggName(op, q)
		t.selects = append(t.selects, fmt.Sprintf("(%s AS ?%s)", agg, name))
		if op.RestrictOp != "" {
			t.havings = append(t.havings,
				fmt.Sprintf("(%s %s %s)", agg, op.RestrictOp, sparqlTerm(op.RestrictValue)))
		}
	}
	return t.render(), nil
}

func (t *translation) aggExpr(op Operation, measureVar string) string {
	inner := measureVar
	if op.Distinct {
		inner = "DISTINCT " + inner
	}
	return fmt.Sprintf("%s(%s)", op.Op, inner)
}

func (t *translation) aggName(op Operation, q *Query) string {
	base := strings.ToLower(string(op.Op))
	suffix := ""
	if q.Measuring != nil {
		if p, ok := lastProp(q.Measuring); ok {
			suffix = "_" + localPart(p.Name)
		}
	}
	name := base + suffix
	// Disambiguate duplicates (e.g. SUM twice with different restrictions).
	n := 0
	for _, s := range t.selects {
		if strings.Contains(s, "?"+name+")") || strings.HasSuffix(s, "?"+name+")") {
			n++
		}
	}
	if n > 0 {
		name = fmt.Sprintf("%s%d", name, n+1)
	}
	return name
}

func lastProp(a Attr) (Prop, bool) {
	switch x := a.(type) {
	case Prop:
		return x, true
	case Comp:
		return lastProp(x.Outer)
	case Derived:
		if x.Sub == nil {
			return Prop{}, false
		}
		return lastProp(x.Sub)
	case Pair:
		if len(x.Items) > 0 {
			return lastProp(x.Items[len(x.Items)-1])
		}
	}
	return Prop{}, false
}

func localPart(name string) string {
	if i := strings.LastIndexAny(name, "#/:"); i >= 0 && i < len(name)-1 {
		return name[i+1:]
	}
	return name
}

// addGrouping walks the grouping expression, appending its triple patterns
// and registering its result variables/expressions for SELECT and GROUP BY.
func (t *translation) addGrouping(g Attr) error {
	if pair, ok := g.(Pair); ok {
		// Algorithm 2 — Pairing: all components share the root variable.
		for _, item := range pair.Items {
			if err := t.addGrouping(item); err != nil {
				return err
			}
		}
		return nil
	}
	v, derived, err := t.walkAttr(g, RootVar)
	if err != nil {
		return err
	}
	t.retVars = append(t.retVars, v)
	if derived {
		// GROUP BY on a derived expression needs a named binding in SELECT;
		// SPARQL allows grouping by the expression itself.
		t.groupBy = append(t.groupBy, v)
	} else {
		t.groupBy = append(t.groupBy, v)
	}
	return nil
}

// walkAttr translates an attribute expression starting at variable from,
// returning the SPARQL variable (or derived expression) holding its value.
// derived=true means the returned string is an expression, not a variable.
//
// This is Algorithm 2 — Composition plus Algorithm 3 (derived attributes).
func (t *translation) walkAttr(a Attr, from string) (string, bool, error) {
	switch x := a.(type) {
	case Prop:
		iri := t.tr.resolve(x.Name)
		v := t.newVar()
		if x.Inverse {
			t.patterns = append(t.patterns, fmt.Sprintf("%s <%s> %s .", v, iri.Value, from))
		} else {
			t.patterns = append(t.patterns, fmt.Sprintf("%s <%s> %s .", from, iri.Value, v))
		}
		return v, false, nil
	case Comp:
		innerV, innerDerived, err := t.walkAttr(x.Inner, from)
		if err != nil {
			return "", false, err
		}
		if innerDerived {
			return "", false, fmt.Errorf("hifun: cannot traverse property after derived attribute %s", x.Inner)
		}
		return t.walkAttr(x.Outer, innerV)
	case Derived:
		if x.Sub == nil {
			return "", false, fmt.Errorf("hifun: derived function %s lacks an argument", x.Func)
		}
		subV, subDerived, err := t.walkAttr(x.Sub, from)
		if err != nil {
			return "", false, err
		}
		if subDerived {
			return fmt.Sprintf("%s(%s)", x.Func, subV), true, nil
		}
		return fmt.Sprintf("%s(%s)", x.Func, subV), true, nil
	case Ident:
		return from, false, nil
	case Pair:
		return "", false, fmt.Errorf("hifun: nested pairing is not a function")
	default:
		return "", false, fmt.Errorf("hifun: unknown attribute %T", a)
	}
}

// addRestriction implements rg (and the general case of Algorithm 4): the
// restriction path is walked from the root; a URI value replaces the last
// object, a literal value becomes a FILTER, a value set becomes IN.
func (t *translation) addRestriction(r Restriction, contextAttr Attr) error {
	path := r.Path
	if path == nil {
		path = contextAttr
	}
	if path == nil {
		return fmt.Errorf("hifun: restriction %s has no path (empty grouping)", r)
	}
	return t.emitRestriction(path, r)
}

// addMeasureRestriction implements rm: a restriction without an explicit
// path constrains the measure variable directly (§4.2.2's FILTER case); a
// pathful restriction walks from the root like Algorithm 4.
func (t *translation) addMeasureRestriction(r Restriction, measureVar string) error {
	if r.Path != nil {
		return t.emitRestriction(r.Path, r)
	}
	if len(r.Values) > 0 {
		t.filters = append(t.filters, inFilter(measureVar, r.Values))
		return nil
	}
	if r.Value.Kind == rdf.KindIRI && r.Op == "=" {
		// URI measuring restriction: right(m) is the URI itself.
		t.filters = append(t.filters, fmt.Sprintf("(%s = %s)", measureVar, sparqlTerm(r.Value)))
		return nil
	}
	t.filters = append(t.filters, fmt.Sprintf("(%s %s %s)", measureVar, r.Op, sparqlTerm(r.Value)))
	return nil
}

func (t *translation) emitRestriction(path Attr, r Restriction) error {
	// URI equality: walk the path but fix the final object (the
	// "triplePatterns(g) += ?x1 g rg" rule of Algorithm 1 / 4).
	if len(r.Values) == 0 && r.Value.Kind == rdf.KindIRI && r.Op == "=" {
		return t.walkWithFixedEnd(path, RootVar, r.Value)
	}
	v, _, err := t.walkAttr(path, RootVar)
	if err != nil {
		return err
	}
	if len(r.Values) > 0 {
		t.filters = append(t.filters, inFilter(v, r.Values))
		return nil
	}
	t.filters = append(t.filters, fmt.Sprintf("(%s %s %s)", v, r.Op, sparqlTerm(r.Value)))
	return nil
}

// walkWithFixedEnd emits the path's triple patterns with the last object
// replaced by the restriction URI.
func (t *translation) walkWithFixedEnd(a Attr, from string, end rdf.Term) error {
	switch x := a.(type) {
	case Prop:
		iri := t.tr.resolve(x.Name)
		if x.Inverse {
			t.patterns = append(t.patterns, fmt.Sprintf("%s <%s> %s .", sparqlTerm(end), iri.Value, from))
		} else {
			t.patterns = append(t.patterns, fmt.Sprintf("%s <%s> %s .", from, iri.Value, sparqlTerm(end)))
		}
		return nil
	case Comp:
		innerV, innerDerived, err := t.walkAttr(x.Inner, from)
		if err != nil {
			return err
		}
		if innerDerived {
			return fmt.Errorf("hifun: cannot restrict through derived attribute")
		}
		return t.walkWithFixedEnd(x.Outer, innerV, end)
	case Derived:
		// Derived values are literals; equality goes through FILTER.
		v, _, err := t.walkAttr(a, from)
		if err != nil {
			return err
		}
		t.filters = append(t.filters, fmt.Sprintf("(%s = %s)", v, sparqlTerm(end)))
		return nil
	default:
		return fmt.Errorf("hifun: cannot fix end of %T", a)
	}
}

func inFilter(v string, values []rdf.Term) string {
	parts := make([]string, len(values))
	for i, t := range values {
		parts[i] = sparqlTerm(t)
	}
	return fmt.Sprintf("(%s IN (%s))", v, strings.Join(parts, ", "))
}

// sparqlTerm renders a term in SPARQL surface syntax.
func sparqlTerm(t rdf.Term) string {
	switch t.Kind {
	case rdf.KindIRI:
		return "<" + t.Value + ">"
	case rdf.KindBlank:
		return "_:" + t.Value
	default:
		if t.Datatype == rdf.XSDInteger || t.Datatype == rdf.XSDDecimal {
			return t.Value
		}
		if t.Datatype == rdf.XSDBoolean {
			return t.Value
		}
		s := "\"" + strings.ReplaceAll(t.Value, `"`, `\"`) + "\""
		if t.Lang != "" {
			return s + "@" + t.Lang
		}
		if t.Datatype != "" && t.Datatype != rdf.XSDString {
			return s + "^^<" + t.Datatype + ">"
		}
		return s
	}
}

// render assembles the final SPARQL string (the Q template of §4.2.5).
func (t *translation) render() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	for _, v := range t.retVars {
		sb.WriteString(v)
		sb.WriteByte(' ')
	}
	sb.WriteString(strings.Join(t.selects, " "))
	sb.WriteString("\nWHERE {\n")
	for _, p := range t.patterns {
		sb.WriteString("  ")
		sb.WriteString(p)
		sb.WriteByte('\n')
	}
	if len(t.filters) > 0 {
		sb.WriteString("  FILTER(")
		sb.WriteString(strings.Join(t.filters, " && "))
		sb.WriteString(")\n")
	}
	sb.WriteString("}")
	if len(t.groupBy) > 0 {
		sb.WriteString("\nGROUP BY ")
		sb.WriteString(strings.Join(t.groupBy, " "))
	}
	if len(t.havings) > 0 {
		sb.WriteString("\nHAVING ")
		sb.WriteString(strings.Join(t.havings, " "))
	}
	return sb.String()
}
