package hifun

import "testing"

// FuzzParse drives the HIFUN query parser with arbitrary input: Parse must
// return a query or an error, never panic. The seeds exercise compositions,
// pairings, derived attributes, restricted operations, and broken variants.
func FuzzParse(f *testing.F) {
	const ns = "http://example.org/"
	seeds := []string{
		"Q(type, price, SUM)",
		"Q((type, brand), price, AVG)",
		"Q(month(date), ID, COUNT)",
		"Q(branch o customer, amount, SUM)",
		"Q(type, price, SUM | price > 100)",
		"Q((year(date), branch), quantity, MIN)",
		"Q(month(hasDate), inQuantity, MIN)",
		"Q(takesPlaceAt, hasTimestamp, MAX | hasTimestamp > \"2021-06-01T00:00:00Z\")",
		"Q(type price SUM)",
		"Q((type, , price, SUM)",
		"Q(",
		"",
		"q(type, price, sum)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src, ns)
		if err == nil && q == nil {
			t.Fatalf("Parse(%q) returned nil query and nil error", src)
		}
	})
}
