package hifun

import (
	"fmt"
	"sort"

	"rdfanalytics/internal/rdf"
)

// Feature Creation Operators (Table 4.1): Linked-Data-based transformations
// that derive a *functional* feature for each entity from non-functional RDF
// data, making HIFUN applicable when its prerequisites fail (§4.2.6:
// missing values, multi-valued properties). Each operator materializes a new
// property <feature> on the entities of interest.

// FCO identifies one of the nine operators of Table 4.1.
type FCO int

// The operators of Table 4.1, in the paper's numbering.
const (
	// FCOValue (fco1) copies p's value: the plain functional case.
	FCOValue FCO = iota + 1
	// FCOExists (fco2) is 1 when the entity has any p-triple (either
	// direction), else 0.
	FCOExists
	// FCOCount (fco3) counts the entity's p-values.
	FCOCount
	// FCOValuesAsFeatures (fco4) creates one boolean feature per value of a
	// multi-valued property.
	FCOValuesAsFeatures
	// FCODegree (fco5) counts all triples mentioning the entity.
	FCODegree
	// FCOAvgDegree (fco6) averages the degree of the entity's p-neighbors.
	FCOAvgDegree
	// FCOPathExists (fco7) is 1 when a p1/p2 path leaves the entity.
	FCOPathExists
	// FCOPathCount (fco8) counts distinct p1/p2 path endpoints.
	FCOPathCount
	// FCOPathMaxFreq (fco9) picks the most frequent p1/p2 endpoint.
	FCOPathMaxFreq
)

func (f FCO) String() string {
	names := map[FCO]string{
		FCOValue: "p.value", FCOExists: "p.exists", FCOCount: "p.count",
		FCOValuesAsFeatures: "p.values.AsFeatures", FCODegree: "degree",
		FCOAvgDegree: "average degree", FCOPathExists: "p1.p2.exists",
		FCOPathCount: "p1.p2.count", FCOPathMaxFreq: "p1.p2.value.maxFreq",
	}
	if n, ok := names[f]; ok {
		return n
	}
	return fmt.Sprintf("fco%d", int(f))
}

// FeatureSpec describes one feature to materialize.
type FeatureSpec struct {
	Op FCO
	// P is the property (fco1–fco4, fco6) or first path step (fco7–fco9).
	P rdf.Term
	// P2 is the second path step (fco7–fco9).
	P2 rdf.Term
	// Feature is the IRI of the property created. For FCOValuesAsFeatures it
	// is the IRI *prefix*: one property per value is created by appending
	// the value's local name.
	Feature rdf.Term
}

// ApplyFeature materializes the feature on every entity of entities inside
// g (new triples are added to g; nothing is removed). It returns the number
// of triples added.
//
// Entities with no relevant data get the operator's neutral value where the
// paper defines one (0 for exists/count/degree variants), so the resulting
// feature is total — i.e. functional — over the entity set.
func ApplyFeature(g *rdf.Graph, entities []rdf.Term, spec FeatureSpec) (int, error) {
	if spec.Feature.IsZero() {
		return 0, fmt.Errorf("hifun: feature IRI required")
	}
	added := 0
	add := func(s rdf.Term, p rdf.Term, o rdf.Term) {
		if g.Add(rdf.Triple{S: s, P: p, O: o}) {
			added++
		}
	}
	switch spec.Op {
	case FCOValue:
		for _, e := range entities {
			vals := g.Objects(e, spec.P)
			if len(vals) == 1 {
				add(e, spec.Feature, vals[0])
			}
			// Multi-valued or missing: fco1 does not apply; use fco2/fco4.
		}
	case FCOExists:
		for _, e := range entities {
			n := g.MatchCount(e, spec.P, rdf.Any) + g.MatchCount(rdf.Any, spec.P, e)
			v := int64(0)
			if n > 0 {
				v = 1
			}
			add(e, spec.Feature, rdf.NewInteger(v))
		}
	case FCOCount:
		for _, e := range entities {
			add(e, spec.Feature, rdf.NewInteger(int64(len(g.Objects(e, spec.P)))))
		}
	case FCOValuesAsFeatures:
		for _, e := range entities {
			for _, v := range g.Objects(e, spec.P) {
				f := rdf.NewIRI(spec.Feature.Value + "_" + v.LocalName())
				add(e, f, rdf.NewInteger(1))
			}
		}
		// The complementary 0s: every entity gets 0 for each feature value
		// it lacks, keeping features total.
		valueSet := map[rdf.Term]bool{}
		g.Match(rdf.Any, spec.P, rdf.Any, func(t rdf.Triple) bool {
			valueSet[t.O] = true
			return true
		})
		var values []rdf.Term
		for v := range valueSet {
			values = append(values, v)
		}
		sort.Slice(values, func(i, j int) bool { return values[i].Less(values[j]) })
		for _, e := range entities {
			have := map[rdf.Term]bool{}
			for _, v := range g.Objects(e, spec.P) {
				have[v] = true
			}
			for _, v := range values {
				if !have[v] {
					f := rdf.NewIRI(spec.Feature.Value + "_" + v.LocalName())
					add(e, f, rdf.NewInteger(0))
				}
			}
		}
	case FCODegree:
		for _, e := range entities {
			deg := g.MatchCount(e, rdf.Any, rdf.Any) + g.MatchCount(rdf.Any, rdf.Any, e)
			add(e, spec.Feature, rdf.NewInteger(int64(deg)))
		}
	case FCOAvgDegree:
		for _, e := range entities {
			neighbors := g.Objects(e, spec.P)
			if len(neighbors) == 0 {
				add(e, spec.Feature, rdf.NewInteger(0))
				continue
			}
			total := 0
			for _, n := range neighbors {
				total += g.MatchCount(n, rdf.Any, rdf.Any) + g.MatchCount(rdf.Any, rdf.Any, n)
			}
			avg := float64(total) / float64(len(neighbors))
			add(e, spec.Feature, rdf.NewDecimal(avg))
		}
	case FCOPathExists, FCOPathCount, FCOPathMaxFreq:
		if spec.P2.IsZero() {
			return added, fmt.Errorf("hifun: %s requires a second property", spec.Op)
		}
		for _, e := range entities {
			ends := map[rdf.Term]int{}
			for _, mid := range g.Objects(e, spec.P) {
				for _, end := range g.Objects(mid, spec.P2) {
					ends[end]++
				}
			}
			switch spec.Op {
			case FCOPathExists:
				v := int64(0)
				if len(ends) > 0 {
					v = 1
				}
				add(e, spec.Feature, rdf.NewInteger(v))
			case FCOPathCount:
				add(e, spec.Feature, rdf.NewInteger(int64(len(ends))))
			default: // FCOPathMaxFreq
				var best rdf.Term
				bestN := -1
				var keys []rdf.Term
				for k := range ends {
					keys = append(keys, k)
				}
				sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
				for _, k := range keys {
					if ends[k] > bestN {
						best, bestN = k, ends[k]
					}
				}
				if bestN >= 0 {
					add(e, spec.Feature, best)
				}
			}
		}
	default:
		return added, fmt.Errorf("hifun: unknown feature operator %d", int(spec.Op))
	}
	return added, nil
}

// MakeFunctional is the §4.2.6 recipe for multi-valued numeric properties:
// it materializes feature = AVG of the p-values of each entity, giving every
// entity exactly one value. Non-numeric multi-values fall back to the
// lexically smallest value (deterministic choice).
func MakeFunctional(g *rdf.Graph, entities []rdf.Term, p, feature rdf.Term) int {
	added := 0
	for _, e := range entities {
		vals := g.Objects(e, p)
		if len(vals) == 0 {
			continue
		}
		if len(vals) == 1 {
			if g.Add(rdf.Triple{S: e, P: feature, O: vals[0]}) {
				added++
			}
			continue
		}
		sum, n := 0.0, 0
		for _, v := range vals {
			if f, ok := v.Float(); ok {
				sum += f
				n++
			}
		}
		var out rdf.Term
		if n == len(vals) {
			out = rdf.NewDecimal(sum / float64(n))
		} else {
			sort.Slice(vals, func(i, j int) bool { return vals[i].Less(vals[j]) })
			out = vals[0]
		}
		if g.Add(rdf.Triple{S: e, P: feature, O: out}) {
			added++
		}
	}
	return added
}
