package hifun

import (
	"strings"
	"testing"

	"rdfanalytics/internal/datagen"
	"rdfanalytics/internal/rdf"
	"rdfanalytics/internal/sparql"
)

// TestTranslatedPatternsOrderByNonProjected is the end-to-end regression for
// ORDER BY running after projection: it reuses the exact triple patterns the
// HIFUN translator emits for (hasDate, inQuantity, MIN) to list the detailed
// invoice extension ordered by the date attribute — which is NOT projected.
// Before the fix the date variable was already projected away when the sort
// ran, so the rows came back in match order instead of date order.
func TestTranslatedPatternsOrderByNonProjected(t *testing.T) {
	g := datagen.SmallInvoices()
	c := NewContext(g, datagen.InvoicesNS).WithRoot(rdf.NewIRI(datagen.InvoicesNS + "Invoice"))
	hq, err := Parse("(hasDate, inQuantity, MIN)", datagen.InvoicesNS)
	if err != nil {
		t.Fatal(err)
	}
	spq, err := c.Translator().Translate(hq)
	if err != nil {
		t.Fatal(err)
	}
	// Lift the WHERE block out of the translated query: ?x1 is the invoice,
	// ?x2 the date (grouping attribute), ?x3 the quantity (measure).
	open := strings.Index(spq, "WHERE {")
	close := strings.LastIndex(spq, "}")
	if open < 0 || close <= open {
		t.Fatalf("unexpected translation shape:\n%s", spq)
	}
	patterns := spq[open+len("WHERE {") : close]
	listing := "SELECT ?x1 ?x3 WHERE {" + patterns + "} ORDER BY ?x2 ?x1"
	q, err := sparql.Parse(listing)
	if err != nil {
		t.Fatalf("parse %q: %v", listing, err)
	}
	res, err := sparql.ExecSelect(g, q)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Vars {
		if v == "x2" {
			t.Fatalf("sort key ?x2 leaked into the projection: %v", res.Vars)
		}
	}
	want := []string{"invoice1", "invoice2", "invoice7", "invoice3", "invoice4", "invoice5", "invoice6"}
	if len(res.Rows) != len(want) {
		t.Fatalf("rows = %d, want %d\nquery:\n%s", len(res.Rows), len(want), listing)
	}
	for i, w := range want {
		if got := res.Rows[i]["x1"].LocalName(); got != w {
			t.Fatalf("row %d = %s, want %s (date order broken)", i, got, w)
		}
	}
}
