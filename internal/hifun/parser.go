package hifun

import (
	"fmt"
	"regexp"
	"strings"
	"unicode"

	"rdfanalytics/internal/rdf"
)

// The textual HIFUN syntax accepted by Parse mirrors the paper's notation
// with ASCII fallbacks:
//
//	(takesPlaceAt, inQuantity, SUM)                       simple (§4.2.1)
//	(takesPlaceAt/branch1, inQuantity, SUM)               URI restriction
//	(takesPlaceAt, inQuantity/>=1, SUM)                   literal restriction
//	(takesPlaceAt, inQuantity, SUM/>1000)                 result restriction
//	(brand∘delivers, inQuantity, SUM)                     composition
//	(brand.delivers, inQuantity, SUM)                     ASCII composition
//	(month∘hasDate, inQuantity, SUM)                      derived attribute
//	(takesPlaceAt ⊗ delivers, inQuantity, SUM)            pairing
//	(takesPlaceAt & delivers, inQuantity, SUM)            ASCII pairing
//	(takesPlaceAt & brand.delivers/month.hasDate=1, inQuantity/>=2, SUM/>1000)
//	(ε, price, AVG)                                       empty grouping
//	(origin.manufacturer, ID, COUNT)                      identity measure
//	(manufacturer, price, AVG; SUM; MAX)                  multiple operations
//
// Bare identifiers in value position resolve against the namespace given to
// Parse; <full-iri> values are also accepted.

// ParseError reports a HIFUN syntax error.
type ParseError struct {
	Pos int
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("hifun: pos %d: %s", e.Pos, e.Msg)
}

type hlexKind int

const (
	hEOF hlexKind = iota
	hIdent
	hIRI
	hNumber
	hString
	hPunct // ( ) , ; / = != <= >= < > ∘ . ⊗ & ^ ε
)

type htoken struct {
	kind hlexKind
	text string
	pos  int
}

type hparser struct {
	toks []htoken
	pos  int
	ns   string
}

// Parse parses a textual HIFUN query. ns is the namespace against which
// bare identifiers in value position are resolved to IRIs.
func Parse(src, ns string) (*Query, error) {
	toks, err := hlex(src)
	if err != nil {
		return nil, err
	}
	p := &hparser{toks: toks, ns: ns}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != hEOF {
		return nil, p.errf("unexpected %q after query", p.cur().text)
	}
	return q, nil
}

// MustParse parses a HIFUN query and panics on error.
func MustParse(src, ns string) *Query {
	q, err := Parse(src, ns)
	if err != nil {
		panic(err)
	}
	return q
}

func hlex(src string) ([]htoken, error) {
	var toks []htoken
	rs := []rune(src)
	i := 0
	for i < len(rs) {
		r := rs[i]
		start := i
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '<':
			j := i + 1
			for j < len(rs) && rs[j] != '>' {
				j++
			}
			if j >= len(rs) {
				return nil, &ParseError{Pos: start, Msg: "unterminated IRI"}
			}
			toks = append(toks, htoken{hIRI, string(rs[i+1 : j]), start})
			i = j + 1
			// A comparison "<" would never be directly followed by ">" this
			// way; IRIs win, matching the intended syntax.
		case r == '"':
			j := i + 1
			for j < len(rs) && rs[j] != '"' {
				j++
			}
			if j >= len(rs) {
				return nil, &ParseError{Pos: start, Msg: "unterminated string"}
			}
			toks = append(toks, htoken{hString, string(rs[i+1 : j]), start})
			i = j + 1
		case unicode.IsDigit(r):
			j := i
			for j < len(rs) && (unicode.IsDigit(rs[j]) || rs[j] == '.' || rs[j] == '-' || rs[j] == ':') {
				j++
			}
			// Trailing '.' belongs to composition, not the number.
			for j > i && rs[j-1] == '.' {
				j--
			}
			toks = append(toks, htoken{hNumber, string(rs[i:j]), start})
			i = j
		case r == '!' && i+1 < len(rs) && rs[i+1] == '=':
			toks = append(toks, htoken{hPunct, "!=", start})
			i += 2
		case r == '<' || r == '>':
			if i+1 < len(rs) && rs[i+1] == '=' {
				toks = append(toks, htoken{hPunct, string(r) + "=", start})
				i += 2
			} else {
				toks = append(toks, htoken{hPunct, string(r), start})
				i++
			}
		case strings.ContainsRune("(),;/=.&^", r):
			toks = append(toks, htoken{hPunct, string(r), start})
			i++
		case r == '∘':
			toks = append(toks, htoken{hPunct, ".", start})
			i++
		case r == '⊗':
			toks = append(toks, htoken{hPunct, "&", start})
			i++
		case r == 'ε':
			toks = append(toks, htoken{hPunct, "ε", start})
			i++
		case unicode.IsLetter(r) || r == '_':
			j := i
			for j < len(rs) && (unicode.IsLetter(rs[j]) || unicode.IsDigit(rs[j]) || rs[j] == '_' || rs[j] == '-') {
				j++
			}
			toks = append(toks, htoken{hIdent, string(rs[i:j]), start})
			i = j
		default:
			return nil, &ParseError{Pos: start, Msg: fmt.Sprintf("unexpected character %q", r)}
		}
	}
	toks = append(toks, htoken{hEOF, "", len(rs)})
	return toks, nil
}

func (p *hparser) cur() htoken { return p.toks[p.pos] }

func (p *hparser) advance() htoken {
	t := p.toks[p.pos]
	if t.kind != hEOF {
		p.pos++
	}
	return t
}

func (p *hparser) errf(format string, args ...any) error {
	return &ParseError{Pos: p.cur().pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *hparser) accept(text string) bool {
	if t := p.cur(); t.kind == hPunct && t.text == text {
		p.advance()
		return true
	}
	return false
}

func (p *hparser) expect(text string) error {
	if !p.accept(text) {
		return p.errf("expected %q, got %q", text, p.cur().text)
	}
	return nil
}

func (p *hparser) parseQuery() (*Query, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	q := &Query{}
	// Grouping part.
	if p.accept("ε") {
		q.Grouping = nil
	} else if t := p.cur(); t.kind == hIdent && t.text == "e" && p.toks[p.pos+1].kind == hPunct && p.toks[p.pos+1].text == "," {
		p.advance() // ASCII epsilon
		q.Grouping = nil
	} else {
		g, restrs, err := p.parseAttrWithRestrictions()
		if err != nil {
			return nil, err
		}
		q.Grouping = g
		q.GroupRestrs = restrs
	}
	if err := p.expect(","); err != nil {
		return nil, err
	}
	// Measuring part.
	if t := p.cur(); t.kind == hIdent && strings.EqualFold(t.text, "ID") {
		p.advance()
		q.Measuring = Ident{}
	} else {
		m, restrs, err := p.parseAttrWithRestrictions()
		if err != nil {
			return nil, err
		}
		q.Measuring = m
		q.MeasRestrs = restrs
	}
	if err := p.expect(","); err != nil {
		return nil, err
	}
	// Operation part: op (/cond)? (';' op (/cond)?)*
	for {
		op, err := p.parseOperation()
		if err != nil {
			return nil, err
		}
		q.Ops = append(q.Ops, op)
		if !p.accept(";") {
			break
		}
	}
	return q, p.expect(")")
}

func (p *hparser) parseOperation() (Operation, error) {
	t := p.cur()
	if t.kind != hIdent || !ValidOp(t.text) {
		return Operation{}, p.errf("expected aggregate operation, got %q", t.text)
	}
	p.advance()
	op := Operation{Op: AggOp(strings.ToUpper(t.text))}
	if t2 := p.cur(); t2.kind == hIdent && strings.EqualFold(t2.text, "DISTINCT") {
		p.advance()
		op.Distinct = true
	}
	if p.accept("/") {
		cmp, ok := p.acceptCmp()
		if !ok {
			cmp = "="
		}
		v, err := p.parseValue()
		if err != nil {
			return Operation{}, err
		}
		op.RestrictOp = cmp
		op.RestrictValue = v
	}
	return op, nil
}

func (p *hparser) acceptCmp() (string, bool) {
	t := p.cur()
	if t.kind == hPunct {
		switch t.text {
		case "=", "!=", "<", "<=", ">", ">=":
			p.advance()
			return t.text, true
		}
	}
	return "", false
}

// parseAttrWithRestrictions parses pairExpr ('/' restriction)*.
func (p *hparser) parseAttrWithRestrictions() (Attr, []Restriction, error) {
	attr, err := p.parsePairing()
	if err != nil {
		return nil, nil, err
	}
	var restrs []Restriction
	for p.accept("/") {
		r, err := p.parseRestriction()
		if err != nil {
			return nil, nil, err
		}
		restrs = append(restrs, r)
	}
	return attr, restrs, nil
}

func (p *hparser) parsePairing() (Attr, error) {
	first, err := p.parseComposition()
	if err != nil {
		return nil, err
	}
	items := []Attr{first}
	for p.accept("&") {
		next, err := p.parseComposition()
		if err != nil {
			return nil, err
		}
		items = append(items, next)
	}
	if len(items) == 1 {
		return first, nil
	}
	return Pair{Items: items}, nil
}

// parseComposition parses atom ('.' atom)*. The paper writes f2∘f1 (outer
// first); the '.'/∘ chain is therefore left-to-right outer-to-inner.
func (p *hparser) parseComposition() (Attr, error) {
	first, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	chain := []Attr{first}
	for p.accept(".") {
		next, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		chain = append(chain, next)
	}
	// chain[0]∘chain[1]∘...∘chain[n-1]: fold right-to-left.
	attr := chain[len(chain)-1]
	for i := len(chain) - 2; i >= 0; i-- {
		// A derived-function atom composes by wrapping.
		if d, ok := chain[i].(Derived); ok && d.Sub == nil {
			attr = Derived{Func: d.Func, Sub: attr}
			continue
		}
		attr = Comp{Outer: chain[i], Inner: attr}
	}
	return attr, nil
}

func (p *hparser) parseAtom() (Attr, error) {
	inverse := p.accept("^")
	t := p.cur()
	switch t.kind {
	case hIdent:
		p.advance()
		if IsDerivedFunc(t.text) {
			// Either month(expr) or bare "month" composed with '.'.
			if p.accept("(") {
				sub, err := p.parseComposition()
				if err != nil {
					return nil, err
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
				return Derived{Func: strings.ToUpper(t.text), Sub: sub}, nil
			}
			return Derived{Func: strings.ToUpper(t.text), Sub: nil}, nil
		}
		return Prop{Name: t.text, Inverse: inverse}, nil
	case hIRI:
		p.advance()
		return Prop{Name: t.text, Inverse: inverse}, nil
	case hPunct:
		if t.text == "(" {
			p.advance()
			inner, err := p.parsePairing()
			if err != nil {
				return nil, err
			}
			return inner, p.expect(")")
		}
	}
	return nil, p.errf("expected attribute, got %q", t.text)
}

// parseRestriction parses one restriction after '/': either
// [path cmp] value, or a bare value (equality on the expression itself).
func (p *hparser) parseRestriction() (Restriction, error) {
	// Leading comparison: /=v, />=v etc.
	if cmp, ok := p.acceptCmp(); ok {
		v, err := p.parseValue()
		if err != nil {
			return Restriction{}, err
		}
		return Restriction{Op: cmp, Value: v}, nil
	}
	// Number or string or IRI: bare equality value.
	switch p.cur().kind {
	case hNumber, hString, hIRI:
		v, err := p.parseValue()
		if err != nil {
			return Restriction{}, err
		}
		return Restriction{Op: "=", Value: v}, nil
	}
	// Identifier chain: could be a path restriction (path cmp value) or a
	// bare identifier value.
	save := p.pos
	attr, err := p.parseComposition()
	if err != nil {
		return Restriction{}, err
	}
	if cmp, ok := p.acceptCmp(); ok {
		v, err := p.parseValue()
		if err != nil {
			return Restriction{}, err
		}
		return Restriction{Path: attr, Op: cmp, Value: v}, nil
	}
	// No comparator: the chain was actually a value identifier.
	p.pos = save
	t := p.advance()
	if t.kind != hIdent {
		return Restriction{}, p.errf("expected restriction value")
	}
	return Restriction{Op: "=", Value: rdf.NewIRI(p.ns + t.text)}, nil
}

var datePattern = regexp.MustCompile(`^\d{4}-\d{2}-\d{2}$`)

func (p *hparser) parseValue() (rdf.Term, error) {
	t := p.cur()
	switch t.kind {
	case hNumber:
		p.advance()
		if datePattern.MatchString(t.text) {
			return rdf.NewTyped(t.text, rdf.XSDDate), nil
		}
		if strings.Contains(t.text, ".") {
			return rdf.NewTyped(t.text, rdf.XSDDecimal), nil
		}
		return rdf.NewTyped(t.text, rdf.XSDInteger), nil
	case hString:
		p.advance()
		return rdf.NewString(t.text), nil
	case hIRI:
		p.advance()
		return rdf.NewIRI(t.text), nil
	case hIdent:
		p.advance()
		switch t.text {
		case "true", "false":
			return rdf.NewTyped(t.text, rdf.XSDBoolean), nil
		}
		return rdf.NewIRI(p.ns + t.text), nil
	default:
		return rdf.Term{}, p.errf("expected value, got %q", t.text)
	}
}
