package hifun

import (
	"fmt"

	"rdfanalytics/internal/rdf"
	"rdfanalytics/internal/sparql"
)

// §4.1.2: an analysis context can be *derived* from a source dataset with a
// SPARQL CONSTRUCT query — the view-definition route for applying HIFUN
// when the raw data does not satisfy its prerequisites, and in general "any
// query translation method for virtual integration can be employed".

// DeriveContext evaluates a CONSTRUCT query against source and wraps the
// constructed graph in a fresh analysis context with namespace ns.
func DeriveContext(source *rdf.Graph, constructQuery, ns string) (*Context, error) {
	derived, err := sparql.Construct(source, constructQuery)
	if err != nil {
		return nil, fmt.Errorf("hifun: deriving context: %w", err)
	}
	return NewContext(derived, ns), nil
}

// DeriveContextSelect evaluates a SELECT query and turns its result table
// into a context the way §5.3.3 loads answers: each row becomes a fresh
// item with one triple per bound column. This is the "define D as a view
// of S" reading of §2.5.1 for tabular views.
func DeriveContextSelect(source *rdf.Graph, selectQuery, ns string) (*Context, error) {
	q, err := sparql.Parse(selectQuery)
	if err != nil {
		return nil, err
	}
	if q.Form != sparql.FormSelect {
		return nil, fmt.Errorf("hifun: DeriveContextSelect needs a SELECT query")
	}
	res, err := sparql.ExecSelect(source, q)
	if err != nil {
		return nil, err
	}
	res.Sort()
	g := rdf.NewGraph()
	rowClass := rdf.NewIRI(ns + "Row")
	g.Add(rdf.Triple{S: rowClass, P: rdf.NewIRI(rdf.RDFType), O: rdf.NewIRI(rdf.RDFSClass)})
	for i, row := range res.Rows {
		item := rdf.NewIRI(fmt.Sprintf("%srow%d", ns, i+1))
		g.Add(rdf.Triple{S: item, P: rdf.NewIRI(rdf.RDFType), O: rowClass})
		for _, v := range res.Vars {
			if t, ok := row[v]; ok {
				g.Add(rdf.Triple{S: item, P: rdf.NewIRI(ns + v), O: t})
			}
		}
	}
	ctx := NewContext(g, ns)
	ctx.Root = rowClass
	return ctx, nil
}
