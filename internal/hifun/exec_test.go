package hifun

import (
	"testing"

	"rdfanalytics/internal/datagen"
	"rdfanalytics/internal/rdf"
)

func TestExecuteSimple(t *testing.T) {
	c := invCtx(t)
	ans, err := c.ExecuteText("(takesPlaceAt, inQuantity, SUM)")
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.GroupCols) != 1 || len(ans.MeasureCols) != 1 {
		t.Fatalf("cols: %v / %v", ans.GroupCols, ans.MeasureCols)
	}
	want := map[string]int64{"branch1": 300, "branch2": 600, "branch3": 600}
	if len(ans.Rows) != 3 {
		t.Fatalf("rows: %d\n%s", len(ans.Rows), ans)
	}
	for _, row := range ans.Rows {
		if n, _ := row[1].Int(); n != want[row[0].LocalName()] {
			t.Errorf("%s = %d", row[0].LocalName(), n)
		}
	}
}

func TestExecuteEmptyGrouping(t *testing.T) {
	c := invCtx(t)
	ans, err := c.ExecuteText("(ε, inQuantity, AVG)")
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Rows) != 1 || len(ans.GroupCols) != 0 {
		t.Fatalf("shape: %v rows, %v group cols", len(ans.Rows), ans.GroupCols)
	}
	if f, _ := ans.Rows[0][0].Float(); f < 214 || f > 215 {
		t.Errorf("avg = %v", ans.Rows[0][0])
	}
}

func TestExecuteCountIdent(t *testing.T) {
	c := invCtx(t)
	ans, err := c.ExecuteText("(brand.delivers, ID, COUNT)")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{"CocaCola": 5, "PepsiCo": 2}
	for _, row := range ans.Rows {
		if n, _ := row[1].Int(); n != want[row[0].LocalName()] {
			t.Errorf("%s = %d", row[0].LocalName(), n)
		}
	}
}

func TestExecuteMultiOps(t *testing.T) {
	c := NewContext(datagen.SmallProducts(), datagen.ExampleNS).
		WithRoot(rdf.NewIRI(datagen.ExampleNS + "Laptop"))
	ans, err := c.ExecuteText("(manufacturer, price, AVG; SUM; MAX)")
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.MeasureCols) != 3 {
		t.Fatalf("measure cols: %v", ans.MeasureCols)
	}
	// DELL: prices 900, 1000 -> avg 950, sum 1900, max 1000.
	for _, row := range ans.Rows {
		if row[0].LocalName() != "DELL" {
			continue
		}
		if f, _ := row[1].Float(); f != 950 {
			t.Errorf("avg = %v", row[1])
		}
		if n, _ := row[2].Int(); n != 1900 {
			t.Errorf("sum = %v", row[2])
		}
		if n, _ := row[3].Int(); n != 1000 {
			t.Errorf("max = %v", row[3])
		}
		return
	}
	t.Fatal("DELL row missing")
}

func TestExecuteDeterministicOrder(t *testing.T) {
	c := invCtx(t)
	a, _ := c.ExecuteText("(takesPlaceAt, inQuantity, SUM)")
	b, _ := c.ExecuteText("(takesPlaceAt, inQuantity, SUM)")
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				t.Fatal("non-deterministic answer order")
			}
		}
	}
}

// TestLoadAsDataset is §5.3.3: the answer becomes n*k triples plus typing.
func TestLoadAsDataset(t *testing.T) {
	c := invCtx(t)
	ans, err := c.ExecuteText("(takesPlaceAt, inQuantity, SUM)")
	if err != nil {
		t.Fatal(err)
	}
	g := ans.LoadAsDataset()
	// 3 tuples x (2 attrs + 1 type) + 1 class declaration.
	if g.Len() != 3*3+1 {
		t.Fatalf("triples = %d, want 10\n", g.Len())
	}
	tuples := rdf.InstancesOf(g, rdf.NewIRI(AnswerNS+"Tuple"))
	if len(tuples) != 3 {
		t.Fatalf("tuples = %d", len(tuples))
	}
}

// TestNestedHaving reproduces Example 4 of §5.1: restricting the loaded
// answer corresponds to a HAVING over the original data.
func TestNestedHaving(t *testing.T) {
	c := invCtx(t)
	ans, err := c.ExecuteText("(takesPlaceAt, inQuantity, SUM)")
	if err != nil {
		t.Fatal(err)
	}
	// Load the answer as a dataset and filter sum > 300 via a nested HIFUN
	// query over the tuples.
	nested := ans.DatasetContext()
	measureCol := ans.MeasureCols[0]
	ans2, err := nested.ExecuteText("(" + ans.GroupCols[0] + "/" + "" + ", " + measureCol + ", SUM)")
	if err != nil {
		// The restriction syntax with empty value is invalid; instead filter
		// with a measuring restriction.
		ans2, err = nested.ExecuteText("(" + ans.GroupCols[0] + ", " + measureCol + "/>300, SUM)")
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(ans2.Rows) != 2 { // branch2 and branch3 with 600
		t.Fatalf("nested rows = %d\n%s", len(ans2.Rows), ans2)
	}
	// Equivalent direct HAVING query agrees.
	direct, err := c.ExecuteText("(takesPlaceAt, inQuantity, SUM/>300)")
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Rows) != len(ans2.Rows) {
		t.Fatalf("nested (%d) and direct HAVING (%d) disagree", len(ans2.Rows), len(direct.Rows))
	}
}

func TestAnswerProject(t *testing.T) {
	c := invCtx(t)
	ans, err := c.ExecuteText("(takesPlaceAt & delivers, inQuantity, SUM)")
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.GroupCols) != 2 {
		t.Fatalf("cols: %v", ans.Columns())
	}
	// Keep only the first grouping column and the measure.
	p := ans.Project([]string{ans.GroupCols[0], ans.MeasureCols[0]})
	if len(p.GroupCols) != 1 || len(p.MeasureCols) != 1 {
		t.Fatalf("projected cols: %v / %v", p.GroupCols, p.MeasureCols)
	}
	if len(p.Rows) != len(ans.Rows) {
		t.Fatalf("projection must keep all rows: %d vs %d", len(p.Rows), len(ans.Rows))
	}
	for i, row := range p.Rows {
		if len(row) != 2 {
			t.Fatalf("row %d width %d", i, len(row))
		}
	}
	// Unknown columns are ignored.
	p2 := ans.Project([]string{"nope", ans.MeasureCols[0]})
	if len(p2.Columns()) != 1 {
		t.Fatalf("unknown column kept: %v", p2.Columns())
	}
}

func TestContextAttributes(t *testing.T) {
	c := NewContext(datagen.SmallProducts(), datagen.ExampleNS).
		WithRoot(rdf.NewIRI(datagen.ExampleNS + "Laptop"))
	rdf.Materialize(c.Graph)
	attrs := c.Attributes()
	names := map[string]bool{}
	for _, a := range attrs {
		names[a.LocalName()] = true
	}
	for _, want := range []string{"manufacturer", "price", "USBPorts", "releaseDate", "hardDrive"} {
		if !names[want] {
			t.Errorf("attribute %s missing: %v", want, attrs)
		}
	}
	if names["type"] || names["subClassOf"] {
		t.Error("meta properties leaked into attributes")
	}
}

func TestAnswerString(t *testing.T) {
	c := invCtx(t)
	ans, _ := c.ExecuteText("(takesPlaceAt, inQuantity, SUM)")
	s := ans.String()
	if len(s) == 0 || s[0] == '\n' {
		t.Errorf("bad table rendering:\n%s", s)
	}
}
