package hifun

import (
	"testing"

	"rdfanalytics/internal/datagen"
	"rdfanalytics/internal/rdf"
)

// TestDeriveContextConstruct flattens a path into a direct attribute via
// CONSTRUCT and analyzes the derived dataset (the §4.1.2 transformation).
func TestDeriveContextConstruct(t *testing.T) {
	src := datagen.SmallInvoices()
	ctx, err := DeriveContext(src, `PREFIX ex: <`+datagen.InvoicesNS+`>
CONSTRUCT {
  ?i ex:brand ?b .
  ?i ex:inQuantity ?q .
} WHERE {
  ?i ex:delivers/ex:brand ?b .
  ?i ex:inQuantity ?q .
}`, datagen.InvoicesNS)
	if err != nil {
		t.Fatal(err)
	}
	// brand is now a *direct* attribute of invoices: a simple HIFUN query
	// replaces the composition.
	ans, err := ctx.ExecuteText("(brand, inQuantity, SUM)")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{"CocaCola": 1300, "PepsiCo": 200}
	if len(ans.Rows) != 2 {
		t.Fatalf("rows:\n%s", ans)
	}
	for _, row := range ans.Rows {
		if n, _ := row[1].Int(); n != want[row[0].LocalName()] {
			t.Errorf("%s = %d", row[0].LocalName(), n)
		}
	}
	// The derived answer agrees with the composition over the source.
	direct, err := NewContext(src, datagen.InvoicesNS).ExecuteText("(brand.delivers, inQuantity, SUM)")
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Rows) != len(ans.Rows) {
		t.Errorf("derived (%d) and direct (%d) disagree", len(ans.Rows), len(direct.Rows))
	}
}

func TestDeriveContextSelect(t *testing.T) {
	src := datagen.SmallInvoices()
	ctx, err := DeriveContextSelect(src, `PREFIX ex: <`+datagen.InvoicesNS+`>
SELECT ?branch ?qty WHERE {
  ?i ex:takesPlaceAt ?branch .
  ?i ex:inQuantity ?qty .
}`, "http://example.org/view#")
	if err != nil {
		t.Fatal(err)
	}
	// 7 rows, each with branch and qty.
	rows := rdf.InstancesOf(ctx.Graph, rdf.NewIRI("http://example.org/view#Row"))
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	ans, err := ctx.ExecuteText("(branch, qty, SUM)")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{"branch1": 300, "branch2": 600, "branch3": 600}
	for _, row := range ans.Rows {
		if n, _ := row[1].Int(); n != want[row[0].LocalName()] {
			t.Errorf("%s = %d\n%s", row[0].LocalName(), n, ans)
		}
	}
}

func TestDeriveContextErrors(t *testing.T) {
	src := datagen.SmallInvoices()
	if _, err := DeriveContext(src, "NOT SPARQL", "x"); err == nil {
		t.Error("bad construct accepted")
	}
	if _, err := DeriveContext(src, "SELECT ?x WHERE { ?x ?p ?o }", "x"); err == nil {
		t.Error("SELECT passed to DeriveContext accepted")
	}
	if _, err := DeriveContextSelect(src, "ASK { ?x ?p ?o }", "x"); err == nil {
		t.Error("ASK passed to DeriveContextSelect accepted")
	}
}
