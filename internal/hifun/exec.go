package hifun

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"rdfanalytics/internal/obs"
	"rdfanalytics/internal/rdf"
	"rdfanalytics/internal/sparql"
)

// Metric handles for the HIFUN layer, resolved once at package init.
var (
	translateSeconds = obs.Default.Histogram("rdfa_hifun_translate_seconds", nil)
	executeSeconds   = obs.Default.Histogram("rdfa_hifun_execute_seconds", nil)
)

// Context is a HIFUN analysis context over an RDF dataset (§2.5): a set of
// data items (the extension of a class, or the whole graph) together with
// the attributes applicable to them.
type Context struct {
	Graph *rdf.Graph
	// NS resolves bare attribute names to IRIs.
	NS string
	// Root, when set, limits the data items to the instances of this class.
	Root rdf.Term
	// ExtraPatterns inject additional graph patterns rooted at ?x1 (used by
	// the faceted layer to restrict the context to the current extension).
	ExtraPatterns []string
	// Trace, when non-nil, records per-phase spans of Execute (translate,
	// parse, exec, build_answer) under its root. Tracing never changes the
	// answer, only records how it was computed.
	Trace *obs.Trace
	// Profile, when non-nil, receives the operator-level runtime profile of
	// Execute: the translate and build_answer stages as flat nodes, and the
	// full SPARQL operator tree under an "exec" node (EXPLAIN ANALYZE for
	// the analytics pipeline). Like Trace, it never changes the answer.
	Profile *sparql.Profile
	// Limits are the resource budgets applied to the generated SPARQL
	// evaluation (intermediate rows, path depth/visited). Zero values use
	// the engine defaults.
	Limits sparql.Limits
	// Planner selects the BGP join-order planner for the generated SPARQL
	// (zero value auto-resolves; see sparql.Options.Planner).
	Planner sparql.PlannerMode
	// Feedback, when non-nil, closes the planner's q-error loop for
	// analytic queries: Execute fingerprints the generated SPARQL, plans
	// with the store's observed cardinalities when the same shape ran
	// before, and (when Profile is set) feeds actuals back after success.
	Feedback *sparql.FeedbackStore
}

// NewContext builds an analysis context over g with attribute namespace ns.
func NewContext(g *rdf.Graph, ns string) *Context {
	return &Context{Graph: g, NS: ns}
}

// WithRoot returns a copy of the context rooted at class c.
func (c *Context) WithRoot(class rdf.Term) *Context {
	cc := *c
	cc.Root = class
	return &cc
}

// Attributes returns the properties applicable to the context's data items,
// sorted: the candidate direct attributes of the analysis (§4.1.2).
func (c *Context) Attributes() []rdf.Term {
	seen := map[rdf.Term]bool{}
	var out []rdf.Term
	consider := func(p rdf.Term) {
		if !seen[p] && p.Value != rdf.RDFType &&
			!strings.HasPrefix(p.Value, rdf.RDFSNS) && !strings.HasPrefix(p.Value, rdf.OWLNS) {
			seen[p] = true
			out = append(out, p)
		}
	}
	if c.Root.IsZero() {
		for _, p := range c.Graph.Predicates() {
			consider(p)
		}
	} else {
		for _, item := range rdf.InstancesOf(c.Graph, c.Root) {
			c.Graph.Match(item, rdf.Any, rdf.Any, func(t rdf.Triple) bool {
				consider(t.P)
				return true
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Translator returns the SPARQL translator configured for this context.
func (c *Context) Translator() *Translator {
	return &Translator{NS: c.NS, RootClass: c.Root, ExtraPatterns: c.ExtraPatterns}
}

// Answer is the result of a HIFUN query: a function from grouping values to
// aggregate values, materialized as a table (§2.5's ansQ).
type Answer struct {
	// GroupCols are the grouping columns (empty for ε-grouping).
	GroupCols []string
	// MeasureCols are the aggregate columns, one per operation.
	MeasureCols []string
	// Rows holds the table in column order GroupCols ++ MeasureCols.
	Rows [][]rdf.Term
	// SPARQL is the executed query text (for provenance and the UI).
	SPARQL string
}

// Columns returns all column names in order.
func (a *Answer) Columns() []string {
	return append(append([]string{}, a.GroupCols...), a.MeasureCols...)
}

// String renders the answer as an aligned table.
func (a *Answer) String() string {
	cols := a.Columns()
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
	}
	cells := make([][]string, len(a.Rows))
	for i, row := range a.Rows {
		cells[i] = make([]string, len(cols))
		for j, t := range row {
			s := ""
			if !t.IsZero() {
				s = t.LocalName()
			}
			cells[i][j] = s
			if len(s) > widths[j] {
				widths[j] = len(s)
			}
		}
	}
	var sb strings.Builder
	for j, c := range cols {
		fmt.Fprintf(&sb, "%-*s ", widths[j], c)
	}
	sb.WriteByte('\n')
	for _, row := range cells {
		for j, s := range row {
			fmt.Fprintf(&sb, "%-*s ", widths[j], s)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Project returns a copy of the answer keeping only the named columns, in
// the given order — the Answer Frame's add/remove-columns affordance
// (§5.1, "Extra Columns"). Unknown names are ignored; duplicate group rows
// that arise from dropping a grouping column are kept (the projection does
// not re-aggregate — use the session's roll-up for that).
func (a *Answer) Project(cols []string) *Answer {
	out := &Answer{SPARQL: a.SPARQL}
	all := a.Columns()
	idx := make([]int, 0, len(cols))
	for _, c := range cols {
		for i, name := range all {
			if name == c {
				idx = append(idx, i)
				if i < len(a.GroupCols) {
					out.GroupCols = append(out.GroupCols, name)
				} else {
					out.MeasureCols = append(out.MeasureCols, name)
				}
				break
			}
		}
	}
	for _, row := range a.Rows {
		nr := make([]rdf.Term, len(idx))
		for j, i := range idx {
			nr[j] = row[i]
		}
		out.Rows = append(out.Rows, nr)
	}
	return out
}

// Execute translates q against the context and evaluates it, returning the
// materialized answer. Group rows are sorted for determinism.
func (c *Context) Execute(q *Query) (*Answer, error) {
	return c.ExecuteCtx(context.Background(), q)
}

// ExecuteCtx is Execute honoring ctx: the underlying SPARQL evaluation is
// cancelled when ctx's deadline expires or it is cancelled, and the
// context's Limits govern intermediate result sizes.
func (c *Context) ExecuteCtx(ctx context.Context, q *Query) (*Answer, error) {
	start := time.Now()
	defer func() { executeSeconds.Observe(time.Since(start).Seconds()) }()
	root := c.Trace.Root()
	c.Profile.SetTraceID(c.Trace.ID())

	ts := root.StartChild("translate")
	src, err := c.Translator().Translate(q)
	translateSeconds.Observe(time.Since(start).Seconds())
	c.Profile.Sub("translate", "").Record(time.Since(start), 0, 0)
	if ts != nil {
		ts.SetAttr("hifun", q.String())
		ts.Finish()
	}
	if err != nil {
		return nil, err
	}
	parsed, err := sparql.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("hifun: generated SPARQL failed to parse: %w\n%s", err, src)
	}
	es := root.StartChild("exec")
	execOpts := sparql.Options{
		Trace:   obs.SubTrace(es),
		Limits:  c.Limits,
		Profile: c.Profile.Sub("exec", ""),
		Planner: c.Planner,
	}
	if c.Feedback != nil {
		execOpts.Feedback = c.Feedback
		execOpts.FingerprintID = sparql.FingerprintID(sparql.Fingerprint(parsed))
		if execOpts.Profile == nil {
			// Feedback needs actual cardinalities; attach a throwaway profile
			// when the caller did not request one.
			execOpts.Profile = sparql.NewProfile("exec")
		}
	}
	res, err := sparql.ExecSelectCtx(ctx, c.Graph, parsed, execOpts)
	es.Finish()
	if err != nil {
		return nil, err
	}
	bs := root.StartChild("build_answer")
	bstart := time.Now()
	res.Sort()
	ans := &Answer{SPARQL: src}
	nGroups := len(res.Vars) - len(q.Ops)
	if nGroups < 0 {
		nGroups = 0
	}
	ans.GroupCols = append(ans.GroupCols, res.Vars[:nGroups]...)
	ans.MeasureCols = append(ans.MeasureCols, res.Vars[nGroups:]...)
	for _, row := range res.Rows {
		r := make([]rdf.Term, len(res.Vars))
		for i, v := range res.Vars {
			r[i] = row[v]
		}
		ans.Rows = append(ans.Rows, r)
	}
	c.Profile.Sub("build_answer", "").Record(time.Since(bstart), len(res.Rows), len(ans.Rows))
	if bs != nil {
		bs.SetAttr("rows", len(ans.Rows))
		bs.Finish()
	}
	return ans, nil
}

// ExecuteText parses and executes a textual HIFUN query.
func (c *Context) ExecuteText(src string) (*Answer, error) {
	return c.ExecuteTextCtx(context.Background(), src)
}

// ExecuteTextCtx parses and executes a textual HIFUN query honoring ctx.
func (c *Context) ExecuteTextCtx(ctx context.Context, src string) (*Answer, error) {
	q, err := Parse(src, c.NS)
	if err != nil {
		return nil, err
	}
	return c.ExecuteCtx(ctx, q)
}

// AnswerNS is the namespace of datasets derived from answers (§5.3.3).
const AnswerNS = "http://example.org/answer#"

// LoadAsDataset converts the answer into a new RDF dataset per §5.3.3: each
// tuple t_i gets a fresh identifier and k triples (t_i, A_j, t_ij). The
// returned graph also types each tuple as answer:Tuple, so the faceted layer
// can root a new analysis context at the result set — this is how HAVING
// restrictions and arbitrarily nested analytic queries arise in the model.
func (a *Answer) LoadAsDataset() *rdf.Graph {
	g := rdf.NewGraph()
	tupleClass := rdf.NewIRI(AnswerNS + "Tuple")
	g.Add(rdf.Triple{S: tupleClass, P: rdf.NewIRI(rdf.RDFType), O: rdf.NewIRI(rdf.RDFSClass)})
	cols := a.Columns()
	for i, row := range a.Rows {
		tuple := rdf.NewIRI(fmt.Sprintf("%st%d", AnswerNS, i+1))
		g.Add(rdf.Triple{S: tuple, P: rdf.NewIRI(rdf.RDFType), O: tupleClass})
		for j, col := range cols {
			if row[j].IsZero() {
				continue
			}
			g.Add(rdf.Triple{S: tuple, P: rdf.NewIRI(AnswerNS + col), O: row[j]})
		}
	}
	return g
}

// DatasetContext returns an analysis context over the answer-as-dataset,
// rooted at the tuple class: the "Explore with FS" action of Fig 5.2.
func (a *Answer) DatasetContext() *Context {
	g := a.LoadAsDataset()
	return &Context{Graph: g, NS: AnswerNS, Root: rdf.NewIRI(AnswerNS + "Tuple")}
}
