// Package rdf implements the Resource Description Framework data model:
// terms (IRIs, blank nodes, literals), triples, an in-memory indexed graph
// store with dictionary encoding, N-Triples and Turtle I/O, and RDFS
// inference (subclass/subproperty closure, domain/range typing).
//
// The package is the storage substrate of the RDF-Analytics reproduction:
// the SPARQL engine (internal/sparql), the HIFUN translator (internal/hifun)
// and the faceted-search model (internal/facet) all operate on rdf.Graph.
package rdf

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// TermKind discriminates the three kinds of RDF terms.
type TermKind uint8

const (
	// KindIRI identifies IRI reference terms.
	KindIRI TermKind = iota
	// KindBlank identifies blank-node terms.
	KindBlank
	// KindLiteral identifies literal terms (plain, typed or language-tagged).
	KindLiteral
)

func (k TermKind) String() string {
	switch k {
	case KindIRI:
		return "IRI"
	case KindBlank:
		return "BlankNode"
	case KindLiteral:
		return "Literal"
	default:
		return fmt.Sprintf("TermKind(%d)", uint8(k))
	}
}

// Term is a single RDF term. Terms are immutable value types; two terms are
// equal iff all their fields are equal, so Term is usable as a map key.
type Term struct {
	// Kind says which of the three RDF term kinds this is.
	Kind TermKind
	// Value holds the IRI string, the blank node label (without "_:") or the
	// literal lexical form.
	Value string
	// Datatype holds the datatype IRI for literals ("" means xsd:string /
	// plain). Unused for IRIs and blank nodes.
	Datatype string
	// Lang holds the language tag for language-tagged literals.
	Lang string
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: KindIRI, Value: iri} }

// NewBlank returns a blank-node term with the given label (no "_:" prefix).
func NewBlank(label string) Term { return Term{Kind: KindBlank, Value: label} }

// NewString returns a plain string literal.
func NewString(s string) Term {
	return Term{Kind: KindLiteral, Value: s, Datatype: XSDString}
}

// NewLangString returns a language-tagged string literal.
func NewLangString(s, lang string) Term {
	return Term{Kind: KindLiteral, Value: s, Datatype: RDFLangString, Lang: lang}
}

// NewTyped returns a literal with an explicit datatype IRI.
func NewTyped(lexical, datatype string) Term {
	return Term{Kind: KindLiteral, Value: lexical, Datatype: datatype}
}

// NewInteger returns an xsd:integer literal.
func NewInteger(i int64) Term {
	return NewTyped(strconv.FormatInt(i, 10), XSDInteger)
}

// NewDecimal returns an xsd:decimal literal.
func NewDecimal(f float64) Term {
	return NewTyped(strconv.FormatFloat(f, 'f', -1, 64), XSDDecimal)
}

// NewDouble returns an xsd:double literal.
func NewDouble(f float64) Term {
	return NewTyped(strconv.FormatFloat(f, 'g', -1, 64), XSDDouble)
}

// NewBool returns an xsd:boolean literal.
func NewBool(b bool) Term {
	return NewTyped(strconv.FormatBool(b), XSDBoolean)
}

// NewDate returns an xsd:date literal from a time value (UTC date part).
func NewDate(t time.Time) Term {
	return NewTyped(t.Format("2006-01-02"), XSDDate)
}

// NewDateTime returns an xsd:dateTime literal.
func NewDateTime(t time.Time) Term {
	return NewTyped(t.Format("2006-01-02T15:04:05"), XSDDateTime)
}

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == KindIRI }

// IsBlank reports whether the term is a blank node.
func (t Term) IsBlank() bool { return t.Kind == KindBlank }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.Kind == KindLiteral }

// IsResource reports whether the term can appear in subject position
// (IRI or blank node).
func (t Term) IsResource() bool { return t.Kind != KindLiteral }

// IsZero reports whether the term is the zero Term (no valid term).
func (t Term) IsZero() bool { return t == Term{} }

// IsNumeric reports whether the term is a literal of a numeric XSD datatype.
func (t Term) IsNumeric() bool {
	if t.Kind != KindLiteral {
		return false
	}
	switch t.Datatype {
	case XSDInteger, XSDDecimal, XSDDouble, XSDFloat, XSDInt, XSDLong,
		XSDShort, XSDByte, XSDNonNegativeInteger, XSDPositiveInteger,
		XSDNegativeInteger, XSDNonPositiveInteger, XSDUnsignedInt,
		XSDUnsignedLong:
		return true
	}
	return false
}

// IsTemporal reports whether the term is a literal of a temporal XSD
// datatype (xsd:date / xsd:dateTime), the ones whose value space is ordered
// chronologically rather than lexically.
func (t Term) IsTemporal() bool {
	if t.Kind != KindLiteral {
		return false
	}
	return t.Datatype == XSDDate || t.Datatype == XSDDateTime
}

// Float returns the numeric value of a numeric literal.
func (t Term) Float() (float64, bool) {
	if !t.IsNumeric() {
		return 0, false
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(t.Value), 64)
	if err != nil || math.IsNaN(f) {
		return 0, false
	}
	return f, true
}

// Int returns the integer value of an integer-typed literal.
func (t Term) Int() (int64, bool) {
	if t.Kind != KindLiteral {
		return 0, false
	}
	i, err := strconv.ParseInt(strings.TrimSpace(t.Value), 10, 64)
	if err != nil {
		return 0, false
	}
	return i, true
}

// Bool returns the boolean value of an xsd:boolean literal.
func (t Term) Bool() (bool, bool) {
	if t.Kind != KindLiteral || t.Datatype != XSDBoolean {
		return false, false
	}
	switch t.Value {
	case "true", "1":
		return true, true
	case "false", "0":
		return false, true
	}
	return false, false
}

// Time parses xsd:date / xsd:dateTime literals.
func (t Term) Time() (time.Time, bool) {
	if t.Kind != KindLiteral {
		return time.Time{}, false
	}
	v := strings.TrimSpace(t.Value)
	for _, layout := range []string{
		"2006-01-02T15:04:05Z07:00",
		"2006-01-02T15:04:05",
		"2006-01-02Z07:00",
		"2006-01-02",
	} {
		if tm, err := time.Parse(layout, v); err == nil {
			return tm, true
		}
	}
	return time.Time{}, false
}

// LocalName returns the fragment/last path segment of an IRI, or the plain
// value for other terms. It is what user interfaces display as a facet label.
func (t Term) LocalName() string {
	if t.Kind != KindIRI {
		return t.Value
	}
	v := t.Value
	if i := strings.LastIndexAny(v, "#/:"); i >= 0 && i < len(v)-1 {
		return v[i+1:]
	}
	return v
}

// String renders the term in N-Triples syntax.
func (t Term) String() string {
	switch t.Kind {
	case KindIRI:
		return "<" + t.Value + ">"
	case KindBlank:
		return "_:" + t.Value
	default:
		var b strings.Builder
		b.WriteByte('"')
		b.WriteString(escapeLiteral(t.Value))
		b.WriteByte('"')
		if t.Lang != "" {
			b.WriteByte('@')
			b.WriteString(t.Lang)
		} else if t.Datatype != "" && t.Datatype != XSDString {
			b.WriteString("^^<")
			b.WriteString(t.Datatype)
			b.WriteByte('>')
		}
		return b.String()
	}
}

// Less imposes a total order on terms: IRIs < blanks < literals, then by
// value, datatype and language. It is the order used by deterministic
// iteration helpers and result sorting.
func (t Term) Less(u Term) bool {
	if t.Kind != u.Kind {
		return t.Kind < u.Kind
	}
	// Numeric literals order numerically so facet values display sensibly.
	if t.Kind == KindLiteral && t.IsNumeric() && u.IsNumeric() {
		a, okA := t.Float()
		b, okB := u.Float()
		if okA && okB && a != b {
			return a < b
		}
	}
	// Temporal literals order chronologically: timezone offsets and
	// non-canonical lexical forms make string order diverge from the value
	// space (e.g. "2021-06-01T12:00:00+02:00" is the same instant as
	// "2021-06-01T10:00:00Z" but sorts after it lexically). Distinct lexical
	// forms of the same instant fall through to the lexical tiebreak so the
	// order stays total and antisymmetric.
	if t.IsTemporal() && u.IsTemporal() {
		a, okA := t.Time()
		b, okB := u.Time()
		if okA && okB && !a.Equal(b) {
			return a.Before(b)
		}
	}
	if t.Value != u.Value {
		return t.Value < u.Value
	}
	if t.Datatype != u.Datatype {
		return t.Datatype < u.Datatype
	}
	return t.Lang < u.Lang
}

func escapeLiteral(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Triple is an RDF statement.
type Triple struct {
	S, P, O Term
}

// NewTriple builds a triple from three terms.
func NewTriple(s, p, o Term) Triple { return Triple{S: s, P: p, O: o} }

// String renders the triple in N-Triples syntax (without trailing newline).
func (t Triple) String() string {
	return t.S.String() + " " + t.P.String() + " " + t.O.String() + " ."
}

// Less orders triples by subject, predicate, object.
func (t Triple) Less(u Triple) bool {
	if t.S != u.S {
		return t.S.Less(u.S)
	}
	if t.P != u.P {
		return t.P.Less(u.P)
	}
	return t.O.Less(u.O)
}
