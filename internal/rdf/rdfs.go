package rdf

import "sort"

// Schema is a pre-computed view of the RDFS vocabulary of a graph: the class
// and property hierarchies (with their transitive closures), domains, ranges
// and functional-property declarations. It backs both the inference rules of
// C(K) (the paper's closure, §5.3.1) and the facet hierarchy rendering
// (reflexive-and-transitive reduction, §5.3.2).
type Schema struct {
	// Classes is the set of declared or used classes.
	Classes map[Term]struct{}
	// Properties is the set of declared or used properties (predicates).
	Properties map[Term]struct{}
	// SuperClasses maps a class to the transitive closure of its
	// superclasses (not reflexive).
	SuperClasses map[Term]map[Term]struct{}
	// SubClasses maps a class to the transitive closure of its subclasses.
	SubClasses map[Term]map[Term]struct{}
	// DirectSuperClasses is the reflexive-and-transitive *reduction* of
	// subClassOf: the minimal parent relation used to draw the facet tree.
	DirectSuperClasses map[Term]map[Term]struct{}
	// SuperProperties maps a property to the transitive closure of its
	// superproperties.
	SuperProperties map[Term]map[Term]struct{}
	// SubProperties maps a property to the transitive closure of its
	// subproperties.
	SubProperties map[Term]map[Term]struct{}
	// DirectSuperProperties is the reduction of subPropertyOf.
	DirectSuperProperties map[Term]map[Term]struct{}
	// Domains and Ranges map a property to its rdfs:domain / rdfs:range.
	Domains map[Term][]Term
	Ranges  map[Term][]Term
	// Functional holds the properties declared owl:FunctionalProperty.
	Functional map[Term]struct{}
}

// SchemaOf extracts the schema view from a graph.
func SchemaOf(g *Graph) *Schema {
	s := &Schema{
		Classes:               map[Term]struct{}{},
		Properties:            map[Term]struct{}{},
		SuperClasses:          map[Term]map[Term]struct{}{},
		SubClasses:            map[Term]map[Term]struct{}{},
		DirectSuperClasses:    map[Term]map[Term]struct{}{},
		SuperProperties:       map[Term]map[Term]struct{}{},
		SubProperties:         map[Term]map[Term]struct{}{},
		DirectSuperProperties: map[Term]map[Term]struct{}{},
		Domains:               map[Term][]Term{},
		Ranges:                map[Term][]Term{},
		Functional:            map[Term]struct{}{},
	}
	typeT := NewIRI(RDFType)
	// Declared classes.
	for _, classClass := range []string{RDFSClass, OWLClass} {
		g.Match(Any, typeT, NewIRI(classClass), func(t Triple) bool {
			s.Classes[t.S] = struct{}{}
			return true
		})
	}
	// Classes used as objects of rdf:type.
	g.Match(Any, typeT, Any, func(t Triple) bool {
		if t.O.IsIRI() && !isBuiltinMetaClass(t.O.Value) {
			s.Classes[t.O] = struct{}{}
		}
		return true
	})
	// Declared properties.
	for _, propClass := range []string{RDFProperty, OWLObjectProperty, OWLDatatypeProperty, OWLFunctionalProperty} {
		g.Match(Any, typeT, NewIRI(propClass), func(t Triple) bool {
			s.Properties[t.S] = struct{}{}
			if propClass == OWLFunctionalProperty {
				s.Functional[t.S] = struct{}{}
			}
			return true
		})
	}
	// Properties actually used as predicates (excluding RDF/RDFS/OWL meta).
	for _, p := range g.Predicates() {
		if !isMetaProperty(p.Value) {
			s.Properties[p] = struct{}{}
		}
	}
	// subClassOf edges.
	subClassEdges := map[Term]map[Term]struct{}{}
	g.Match(Any, NewIRI(RDFSSubClassOf), Any, func(t Triple) bool {
		if t.S == t.O {
			return true
		}
		addEdge(subClassEdges, t.S, t.O)
		s.Classes[t.S] = struct{}{}
		if t.O.IsIRI() && !isBuiltinMetaClass(t.O.Value) {
			s.Classes[t.O] = struct{}{}
		}
		return true
	})
	s.SuperClasses = transitiveClosure(subClassEdges)
	s.SubClasses = invertRelation(s.SuperClasses)
	s.DirectSuperClasses = transitiveReduction(subClassEdges, s.SuperClasses)
	// subPropertyOf edges.
	subPropEdges := map[Term]map[Term]struct{}{}
	g.Match(Any, NewIRI(RDFSSubPropertyOf), Any, func(t Triple) bool {
		if t.S == t.O {
			return true
		}
		addEdge(subPropEdges, t.S, t.O)
		s.Properties[t.S] = struct{}{}
		s.Properties[t.O] = struct{}{}
		return true
	})
	s.SuperProperties = transitiveClosure(subPropEdges)
	s.SubProperties = invertRelation(s.SuperProperties)
	s.DirectSuperProperties = transitiveReduction(subPropEdges, s.SuperProperties)
	// Domains and ranges.
	g.Match(Any, NewIRI(RDFSDomain), Any, func(t Triple) bool {
		s.Domains[t.S] = append(s.Domains[t.S], t.O)
		return true
	})
	g.Match(Any, NewIRI(RDFSRange), Any, func(t Triple) bool {
		s.Ranges[t.S] = append(s.Ranges[t.S], t.O)
		return true
	})
	return s
}

func isBuiltinMetaClass(iri string) bool {
	switch iri {
	case RDFSClass, RDFSResource, RDFSLiteral, RDFProperty, OWLClass,
		OWLObjectProperty, OWLDatatypeProperty, OWLFunctionalProperty,
		OWLNamedIndividual:
		return true
	}
	return false
}

func isMetaProperty(iri string) bool {
	switch iri {
	case RDFType, RDFSSubClassOf, RDFSSubPropertyOf, RDFSDomain, RDFSRange,
		RDFSLabel, RDFSComment, RDFFirst, RDFRest:
		return true
	}
	return false
}

func addEdge(m map[Term]map[Term]struct{}, from, to Term) {
	inner, ok := m[from]
	if !ok {
		inner = map[Term]struct{}{}
		m[from] = inner
	}
	inner[to] = struct{}{}
}

// transitiveClosure computes the transitive closure of a DAG-ish relation
// (cycles are tolerated: members of a cycle become ancestors of each other).
func transitiveClosure(edges map[Term]map[Term]struct{}) map[Term]map[Term]struct{} {
	closure := map[Term]map[Term]struct{}{}
	var visit func(n Term, seen map[Term]struct{}) map[Term]struct{}
	visit = func(n Term, seen map[Term]struct{}) map[Term]struct{} {
		if done, ok := closure[n]; ok {
			return done
		}
		if _, cyc := seen[n]; cyc {
			return map[Term]struct{}{}
		}
		seen[n] = struct{}{}
		out := map[Term]struct{}{}
		for parent := range edges[n] {
			out[parent] = struct{}{}
			for anc := range visit(parent, seen) {
				out[anc] = struct{}{}
			}
		}
		delete(seen, n)
		closure[n] = out
		return out
	}
	for n := range edges {
		visit(n, map[Term]struct{}{})
	}
	return closure
}

func invertRelation(rel map[Term]map[Term]struct{}) map[Term]map[Term]struct{} {
	out := map[Term]map[Term]struct{}{}
	for from, tos := range rel {
		for to := range tos {
			addEdge(out, to, from)
		}
	}
	return out
}

// transitiveReduction keeps only the edges (a, b) for which no intermediate c
// exists with a < c < b. This is the R^refl,trans(≤cl) of §5.3.2, used for
// the hierarchical facet layout.
func transitiveReduction(edges, closure map[Term]map[Term]struct{}) map[Term]map[Term]struct{} {
	out := map[Term]map[Term]struct{}{}
	for a, bs := range edges {
		for b := range bs {
			redundant := false
			for c := range edges[a] {
				if c == b {
					continue
				}
				if _, ok := closure[c][b]; ok {
					redundant = true
					break
				}
			}
			if !redundant {
				addEdge(out, a, b)
			}
		}
	}
	return out
}

// MaximalClasses returns the classes with no superclass, sorted. These are
// the top-level facet entries (maximal≤cl(C) in §5.3.2).
func (s *Schema) MaximalClasses() []Term {
	var out []Term
	for c := range s.Classes {
		if len(s.SuperClasses[c]) == 0 {
			out = append(out, c)
		}
	}
	sortTerms(out)
	return out
}

// MaximalProperties returns the properties with no superproperty, sorted.
func (s *Schema) MaximalProperties() []Term {
	var out []Term
	for p := range s.Properties {
		if len(s.SuperProperties[p]) == 0 {
			out = append(out, p)
		}
	}
	sortTerms(out)
	return out
}

// DirectSubClasses returns the immediate subclasses of c under the
// transitive reduction, sorted.
func (s *Schema) DirectSubClasses(c Term) []Term {
	var out []Term
	for sub, supers := range s.DirectSuperClasses {
		if _, ok := supers[c]; ok {
			out = append(out, sub)
		}
	}
	sortTerms(out)
	return out
}

// DirectSubProperties returns the immediate subproperties of p, sorted.
func (s *Schema) DirectSubProperties(p Term) []Term {
	var out []Term
	for sub, supers := range s.DirectSuperProperties {
		if _, ok := supers[p]; ok {
			out = append(out, sub)
		}
	}
	sortTerms(out)
	return out
}

// IsFunctional reports whether p is declared functional, or — when strict is
// false — whether it is *effectively* functional in g (at most one value per
// subject), the relaxation §4.1.1 allows.
func (s *Schema) IsFunctional(g *Graph, p Term, strict bool) bool {
	if _, ok := s.Functional[p]; ok {
		return true
	}
	if strict {
		return false
	}
	return EffectivelyFunctional(g, p)
}

// EffectivelyFunctional reports whether every subject has at most one value
// for p in g.
func EffectivelyFunctional(g *Graph, p Term) bool {
	counts := map[Term]int{}
	ok := true
	g.Match(Any, p, Any, func(t Triple) bool {
		counts[t.S]++
		if counts[t.S] > 1 {
			ok = false
			return false
		}
		return true
	})
	return ok
}

func sortTerms(ts []Term) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Less(ts[j]) })
}

// InferenceStats reports what Materialize added.
type InferenceStats struct {
	TypeFromSubClass   int
	TypeFromDomain     int
	TypeFromRange      int
	PropFromSubProp    int
	SubClassTransitive int
	SubPropTransitive  int
}

// Total returns the total number of inferred triples.
func (st InferenceStats) Total() int {
	return st.TypeFromSubClass + st.TypeFromDomain + st.TypeFromRange +
		st.PropFromSubProp + st.SubClassTransitive + st.SubPropTransitive
}

// Materialize computes the RDFS closure C(K) of g in place: transitive
// subClassOf/subPropertyOf, rdf:type propagation along subClassOf,
// predicate propagation along subPropertyOf, and typing from rdfs:domain /
// rdfs:range. It iterates to a fixpoint and returns per-rule counts.
func Materialize(g *Graph) InferenceStats {
	var stats InferenceStats
	typeT := NewIRI(RDFType)
	subClassT := NewIRI(RDFSSubClassOf)
	subPropT := NewIRI(RDFSSubPropertyOf)
	for {
		added := 0
		schema := SchemaOf(g)
		// rdfs11: subClassOf transitivity.
		for c, supers := range schema.SuperClasses {
			for sup := range supers {
				if g.Add(Triple{c, subClassT, sup}) {
					stats.SubClassTransitive++
					added++
				}
			}
		}
		// rdfs5: subPropertyOf transitivity.
		for p, supers := range schema.SuperProperties {
			for sup := range supers {
				if g.Add(Triple{p, subPropT, sup}) {
					stats.SubPropTransitive++
					added++
				}
			}
		}
		// rdfs9: (x type c), (c subClassOf d) => (x type d).
		var typeTriples []Triple
		g.Match(Any, typeT, Any, func(t Triple) bool {
			typeTriples = append(typeTriples, t)
			return true
		})
		for _, t := range typeTriples {
			for sup := range schema.SuperClasses[t.O] {
				if g.Add(Triple{t.S, typeT, sup}) {
					stats.TypeFromSubClass++
					added++
				}
			}
		}
		// rdfs7: (x p y), (p subPropertyOf q) => (x q y).
		for p, supers := range schema.SuperProperties {
			var uses []Triple
			g.Match(Any, p, Any, func(t Triple) bool {
				uses = append(uses, t)
				return true
			})
			for _, t := range uses {
				for sup := range supers {
					if g.Add(Triple{t.S, sup, t.O}) {
						stats.PropFromSubProp++
						added++
					}
				}
			}
		}
		// rdfs2/rdfs3: domain and range typing.
		for p, domains := range schema.Domains {
			var uses []Triple
			g.Match(Any, p, Any, func(t Triple) bool {
				uses = append(uses, t)
				return true
			})
			for _, t := range uses {
				for _, d := range domains {
					if g.Add(Triple{t.S, typeT, d}) {
						stats.TypeFromDomain++
						added++
					}
				}
			}
		}
		for p, ranges := range schema.Ranges {
			var uses []Triple
			g.Match(Any, p, Any, func(t Triple) bool {
				uses = append(uses, t)
				return true
			})
			for _, t := range uses {
				if !t.O.IsResource() {
					continue
				}
				for _, r := range ranges {
					if g.Add(Triple{t.O, typeT, r}) {
						stats.TypeFromRange++
						added++
					}
				}
			}
		}
		if added == 0 {
			return stats
		}
	}
}

// InstancesOf returns the instances of class c in g, honoring materialized
// subclass typing; sorted for determinism.
func InstancesOf(g *Graph, c Term) []Term {
	out := g.Subjects(NewIRI(RDFType), c)
	sortTerms(out)
	return out
}
