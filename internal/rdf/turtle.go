package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"unicode"
)

// ParseError reports a syntax error with its position in the input.
type ParseError struct {
	Line, Col int
	Msg       string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("turtle: line %d col %d: %s", e.Line, e.Col, e.Msg)
}

// ttlParser is a recursive-descent parser for the Turtle family. It accepts
// full Turtle (prefixes, predicate-object lists, blank node property lists,
// collections, numeric/boolean shorthand) and therefore also plain N-Triples.
type ttlParser struct {
	r         *bufio.Reader
	pushback  []rune // multi-rune unread stack (LIFO)
	line, col int
	base      string
	prefixes  map[string]string
	bnodeSeq  int
	sink      func(Triple) error
}

// ParseTurtle reads Turtle (or N-Triples) from r and streams each triple to
// sink. Parsing stops at the first syntax error or sink error.
func ParseTurtle(r io.Reader, sink func(Triple) error) error {
	p := &ttlParser{
		r:        bufio.NewReaderSize(r, 64<<10),
		line:     1,
		prefixes: map[string]string{},
		sink:     sink,
	}
	for k, v := range WellKnownPrefixes {
		p.prefixes[k] = v
	}
	return p.parseDocument()
}

// LoadTurtle parses Turtle from r into a new graph.
func LoadTurtle(r io.Reader) (*Graph, error) {
	g := NewGraph()
	err := ParseTurtle(r, func(t Triple) error {
		g.Add(t)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return g, nil
}

// LoadTurtleString parses a Turtle document held in a string.
func LoadTurtleString(s string) (*Graph, error) {
	return LoadTurtle(strings.NewReader(s))
}

// MustLoadTurtle parses Turtle and panics on error. For tests and examples
// with constant documents.
func MustLoadTurtle(s string) *Graph {
	g, err := LoadTurtleString(s)
	if err != nil {
		panic(err)
	}
	return g
}

func (p *ttlParser) errf(format string, args ...any) error {
	return &ParseError{Line: p.line, Col: p.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *ttlParser) read() (rune, error) {
	if n := len(p.pushback); n > 0 {
		r := p.pushback[n-1]
		p.pushback = p.pushback[:n-1]
		p.advancePos(r)
		return r, nil
	}
	r, _, err := p.r.ReadRune()
	if err != nil {
		return 0, err
	}
	p.advancePos(r)
	return r, nil
}

func (p *ttlParser) advancePos(r rune) {
	if r == '\n' {
		p.line++
		p.col = 0
	} else {
		p.col++
	}
}

func (p *ttlParser) unread(r rune) {
	if r == '\n' {
		p.line--
	} else if p.col > 0 {
		p.col--
	}
	p.pushback = append(p.pushback, r)
}

// unreadAll pushes back a sequence of runes so they will be re-read in the
// original order.
func (p *ttlParser) unreadAll(rs []rune) {
	for i := len(rs) - 1; i >= 0; i-- {
		p.unread(rs[i])
	}
}

// skipWS consumes whitespace and comments; returns io.EOF at end of input.
func (p *ttlParser) skipWS() error {
	for {
		r, err := p.read()
		if err != nil {
			return err
		}
		switch {
		case r == '#':
			for {
				r, err = p.read()
				if err != nil {
					return err
				}
				if r == '\n' {
					break
				}
			}
		case unicode.IsSpace(r):
			// keep consuming
		default:
			p.unread(r)
			return nil
		}
	}
}

func (p *ttlParser) peek() (rune, error) {
	r, err := p.read()
	if err != nil {
		return 0, err
	}
	p.unread(r)
	return r, nil
}

func (p *ttlParser) expect(want rune) error {
	r, err := p.read()
	if err != nil {
		return p.errf("expected %q, got EOF", want)
	}
	if r != want {
		return p.errf("expected %q, got %q", want, r)
	}
	return nil
}

func (p *ttlParser) parseDocument() error {
	for {
		if err := p.skipWS(); err == io.EOF {
			return nil
		} else if err != nil {
			return err
		}
		r, _ := p.peek()
		if r == '@' {
			if err := p.parseDirective(); err != nil {
				return err
			}
			continue
		}
		// SPARQL-style PREFIX/BASE directives (case-insensitive, no dot).
		if r == 'P' || r == 'p' || r == 'B' || r == 'b' {
			ok, err := p.trySparqlDirective()
			if err != nil {
				return err
			}
			if ok {
				continue
			}
		}
		if err := p.parseTriples(); err != nil {
			return err
		}
	}
}

// trySparqlDirective handles "PREFIX p: <iri>" and "BASE <iri>" without a
// leading '@'. When the leading word is not a directive keyword it is pushed
// back and false is returned.
func (p *ttlParser) trySparqlDirective() (bool, error) {
	var word []rune
	for len(word) < 8 {
		r, err := p.read()
		if err != nil {
			break
		}
		if !unicode.IsLetter(r) {
			p.unread(r)
			break
		}
		word = append(word, r)
	}
	switch strings.ToLower(string(word)) {
	case "prefix":
		if err := p.skipWS(); err != nil {
			return false, p.errf("unexpected EOF after PREFIX")
		}
		return true, p.parsePrefixBody(false)
	case "base":
		if err := p.skipWS(); err != nil {
			return false, p.errf("unexpected EOF after BASE")
		}
		iri, err := p.parseIRIRef()
		if err != nil {
			return false, err
		}
		p.base = iri
		return true, nil
	}
	p.unreadAll(word)
	return false, nil
}

func (p *ttlParser) parseDirective() error {
	if err := p.expect('@'); err != nil {
		return err
	}
	word, err := p.readBareWord()
	if err != nil {
		return err
	}
	switch word {
	case "prefix":
		if err := p.skipWS(); err != nil {
			return p.errf("unexpected EOF after @prefix")
		}
		return p.parsePrefixBody(true)
	case "base":
		if err := p.skipWS(); err != nil {
			return p.errf("unexpected EOF after @base")
		}
		iri, err := p.parseIRIRef()
		if err != nil {
			return err
		}
		p.base = iri
		if err := p.skipWS(); err != nil {
			return err
		}
		return p.expect('.')
	default:
		return p.errf("unknown directive @%s", word)
	}
}

func (p *ttlParser) parsePrefixBody(dotTerminated bool) error {
	label, err := p.readPrefixLabel()
	if err != nil {
		return err
	}
	if err := p.skipWS(); err != nil {
		return p.errf("unexpected EOF in prefix declaration")
	}
	iri, err := p.parseIRIRef()
	if err != nil {
		return err
	}
	p.prefixes[label] = iri
	if dotTerminated {
		if err := p.skipWS(); err != nil {
			return err
		}
		return p.expect('.')
	}
	return nil
}

func (p *ttlParser) readBareWord() (string, error) {
	var b strings.Builder
	for {
		r, err := p.read()
		if err != nil {
			break
		}
		if unicode.IsLetter(r) {
			b.WriteRune(r)
			continue
		}
		p.unread(r)
		break
	}
	if b.Len() == 0 {
		return "", p.errf("expected word")
	}
	return b.String(), nil
}

// readPrefixLabel reads "label:" and returns label (may be empty).
func (p *ttlParser) readPrefixLabel() (string, error) {
	var b strings.Builder
	for {
		r, err := p.read()
		if err != nil {
			return "", p.errf("unexpected EOF in prefix label")
		}
		if r == ':' {
			return b.String(), nil
		}
		if unicode.IsSpace(r) {
			return "", p.errf("prefix label must end with ':'")
		}
		b.WriteRune(r)
	}
}

func (p *ttlParser) parseTriples() error {
	subj, err := p.parseSubject()
	if err != nil {
		return err
	}
	if err := p.parsePredicateObjectList(subj); err != nil {
		return err
	}
	if err := p.skipWS(); err != nil {
		return p.errf("unexpected EOF, expected '.'")
	}
	return p.expect('.')
}

func (p *ttlParser) parseSubject() (Term, error) {
	r, err := p.peek()
	if err != nil {
		return Term{}, p.errf("unexpected EOF, expected subject")
	}
	switch r {
	case '<':
		iri, err := p.parseIRIRef()
		return NewIRI(iri), err
	case '_':
		return p.parseBlankLabel()
	case '[':
		return p.parseBlankPropertyList()
	case '(':
		return p.parseCollection()
	default:
		return p.parsePrefixedName()
	}
}

func (p *ttlParser) parsePredicateObjectList(subj Term) error {
	for {
		if err := p.skipWS(); err != nil {
			return p.errf("unexpected EOF in predicate-object list")
		}
		pred, err := p.parsePredicate()
		if err != nil {
			return err
		}
		if err := p.parseObjectList(subj, pred); err != nil {
			return err
		}
		if err := p.skipWS(); err != nil {
			return p.errf("unexpected EOF after object list")
		}
		r, _ := p.peek()
		if r != ';' {
			return nil
		}
		p.read()
		// Allow trailing ';' before '.' or ']'.
		if err := p.skipWS(); err != nil {
			return p.errf("unexpected EOF after ';'")
		}
		r, _ = p.peek()
		if r == '.' || r == ']' {
			return nil
		}
	}
}

func (p *ttlParser) parsePredicate() (Term, error) {
	r, err := p.peek()
	if err != nil {
		return Term{}, p.errf("unexpected EOF, expected predicate")
	}
	if r == '<' {
		iri, err := p.parseIRIRef()
		return NewIRI(iri), err
	}
	// 'a' keyword (only when followed by whitespace).
	if r == 'a' {
		p.read()
		nxt, err := p.peek()
		if err != nil || unicode.IsSpace(nxt) {
			return NewIRI(RDFType), nil
		}
		p.unread('a')
	}
	return p.parsePrefixedName()
}

func (p *ttlParser) parseObjectList(subj, pred Term) error {
	for {
		if err := p.skipWS(); err != nil {
			return p.errf("unexpected EOF, expected object")
		}
		obj, err := p.parseObject()
		if err != nil {
			return err
		}
		if err := p.sink(Triple{subj, pred, obj}); err != nil {
			return err
		}
		if err := p.skipWS(); err != nil {
			return p.errf("unexpected EOF after object")
		}
		r, _ := p.peek()
		if r != ',' {
			return nil
		}
		p.read()
	}
}

func (p *ttlParser) parseObject() (Term, error) {
	r, err := p.peek()
	if err != nil {
		return Term{}, p.errf("unexpected EOF, expected object")
	}
	switch {
	case r == '<':
		iri, err := p.parseIRIRef()
		return NewIRI(iri), err
	case r == '_':
		return p.parseBlankLabel()
	case r == '[':
		return p.parseBlankPropertyList()
	case r == '(':
		return p.parseCollection()
	case r == '"' || r == '\'':
		return p.parseLiteral()
	case r == '+' || r == '-' || unicode.IsDigit(r):
		return p.parseNumber()
	default:
		if word, ok := p.sniffBoolean(); ok {
			return NewTyped(word, XSDBoolean), nil
		}
		return p.parsePrefixedName()
	}
}

// sniffBoolean consumes "true" or "false" when present at the cursor and
// followed by a delimiter; otherwise it consumes nothing.
func (p *ttlParser) sniffBoolean() (string, bool) {
	var consumed []rune
	for len(consumed) < 6 {
		r, err := p.read()
		if err != nil {
			break
		}
		consumed = append(consumed, r)
		if !unicode.IsLetter(r) {
			break
		}
	}
	s := string(consumed)
	for _, word := range []string{"true", "false"} {
		if s == word {
			return word, true // literal at EOF
		}
		if strings.HasPrefix(s, word) && len(s) == len(word)+1 {
			tail := rune(s[len(word)])
			if unicode.IsSpace(tail) || strings.ContainsRune(".;,)]", tail) {
				p.unread(tail)
				return word, true
			}
		}
	}
	p.unreadAll(consumed)
	return "", false
}

func (p *ttlParser) parseIRIRef() (string, error) {
	if err := p.expect('<'); err != nil {
		return "", err
	}
	var b strings.Builder
	for {
		r, err := p.read()
		if err != nil {
			return "", p.errf("unterminated IRI")
		}
		switch r {
		case '>':
			iri := b.String()
			if p.base != "" && !strings.Contains(iri, ":") {
				iri = p.base + iri
			}
			return iri, nil
		case '\\':
			esc, err := p.readEscape()
			if err != nil {
				return "", err
			}
			b.WriteRune(esc)
		default:
			b.WriteRune(r)
		}
	}
}

func (p *ttlParser) readEscape() (rune, error) {
	r, err := p.read()
	if err != nil {
		return 0, p.errf("unterminated escape")
	}
	switch r {
	case 't':
		return '\t', nil
	case 'n':
		return '\n', nil
	case 'r':
		return '\r', nil
	case 'b':
		return '\b', nil
	case 'f':
		return '\f', nil
	case '"':
		return '"', nil
	case '\'':
		return '\'', nil
	case '\\':
		return '\\', nil
	case 'u', 'U':
		n := 4
		if r == 'U' {
			n = 8
		}
		var v rune
		for i := 0; i < n; i++ {
			h, err := p.read()
			if err != nil {
				return 0, p.errf("unterminated unicode escape")
			}
			d := hexVal(h)
			if d < 0 {
				return 0, p.errf("bad hex digit %q in unicode escape", h)
			}
			v = v<<4 | rune(d)
		}
		return v, nil
	default:
		return 0, p.errf("unknown escape \\%c", r)
	}
}

func hexVal(r rune) int {
	switch {
	case r >= '0' && r <= '9':
		return int(r - '0')
	case r >= 'a' && r <= 'f':
		return int(r-'a') + 10
	case r >= 'A' && r <= 'F':
		return int(r-'A') + 10
	}
	return -1
}

func (p *ttlParser) parseBlankLabel() (Term, error) {
	if err := p.expect('_'); err != nil {
		return Term{}, err
	}
	if err := p.expect(':'); err != nil {
		return Term{}, err
	}
	var b strings.Builder
	for {
		r, err := p.read()
		if err != nil {
			break
		}
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' {
			b.WriteRune(r)
			continue
		}
		p.unread(r)
		break
	}
	if b.Len() == 0 {
		return Term{}, p.errf("empty blank node label")
	}
	return NewBlank(b.String()), nil
}

func (p *ttlParser) freshBlank() Term {
	p.bnodeSeq++
	return NewBlank(fmt.Sprintf("genid%d", p.bnodeSeq))
}

func (p *ttlParser) parseBlankPropertyList() (Term, error) {
	if err := p.expect('['); err != nil {
		return Term{}, err
	}
	node := p.freshBlank()
	if err := p.skipWS(); err != nil {
		return Term{}, p.errf("unterminated blank node property list")
	}
	if r, _ := p.peek(); r == ']' {
		p.read()
		return node, nil
	}
	if err := p.parsePredicateObjectList(node); err != nil {
		return Term{}, err
	}
	if err := p.skipWS(); err != nil {
		return Term{}, p.errf("unterminated blank node property list")
	}
	return node, p.expect(']')
}

func (p *ttlParser) parseCollection() (Term, error) {
	if err := p.expect('('); err != nil {
		return Term{}, err
	}
	var items []Term
	for {
		if err := p.skipWS(); err != nil {
			return Term{}, p.errf("unterminated collection")
		}
		if r, _ := p.peek(); r == ')' {
			p.read()
			break
		}
		item, err := p.parseObject()
		if err != nil {
			return Term{}, err
		}
		items = append(items, item)
	}
	if len(items) == 0 {
		return NewIRI(RDFNil), nil
	}
	head := p.freshBlank()
	cur := head
	for i, item := range items {
		if err := p.sink(Triple{cur, NewIRI(RDFFirst), item}); err != nil {
			return Term{}, err
		}
		var rest Term
		if i == len(items)-1 {
			rest = NewIRI(RDFNil)
		} else {
			rest = p.freshBlank()
		}
		if err := p.sink(Triple{cur, NewIRI(RDFRest), rest}); err != nil {
			return Term{}, err
		}
		cur = rest
	}
	return head, nil
}

func (p *ttlParser) parseLiteral() (Term, error) {
	quote, err := p.read()
	if err != nil {
		return Term{}, p.errf("expected literal")
	}
	long := false
	// Detect long quotes (""" or ''').
	if r1, err1 := p.read(); err1 == nil {
		if r1 == quote {
			if r2, err2 := p.read(); err2 == nil {
				if r2 == quote {
					long = true
				} else {
					p.unread(r2)
					p.unread(r1)
				}
			} else {
				// "" at EOF is the empty string literal.
				return NewString(""), nil
			}
		} else {
			p.unread(r1)
		}
	}
	var b strings.Builder
	for {
		r, err := p.read()
		if err != nil {
			return Term{}, p.errf("unterminated string literal")
		}
		if r == quote {
			if !long {
				break
			}
			r2, err2 := p.read()
			if err2 != nil {
				return Term{}, p.errf("unterminated long string literal")
			}
			if r2 == quote {
				r3, err3 := p.read()
				if err3 != nil {
					return Term{}, p.errf("unterminated long string literal")
				}
				if r3 == quote {
					break
				}
				b.WriteRune(r)
				b.WriteRune(r2)
				p.unread(r3)
				continue
			}
			b.WriteRune(r)
			p.unread(r2)
			continue
		}
		if r == '\\' {
			esc, err := p.readEscape()
			if err != nil {
				return Term{}, err
			}
			b.WriteRune(esc)
			continue
		}
		b.WriteRune(r)
	}
	value := b.String()
	// Optional @lang or ^^datatype suffix.
	r, err := p.peek()
	if err == nil && r == '@' {
		p.read()
		var lang strings.Builder
		for {
			r, err := p.read()
			if err != nil {
				break
			}
			if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '-' {
				lang.WriteRune(r)
				continue
			}
			p.unread(r)
			break
		}
		return NewLangString(value, lang.String()), nil
	}
	if err == nil && r == '^' {
		p.read()
		if err := p.expect('^'); err != nil {
			return Term{}, err
		}
		r, err := p.peek()
		if err != nil {
			return Term{}, p.errf("expected datatype after '^^'")
		}
		if r == '<' {
			dt, err := p.parseIRIRef()
			if err != nil {
				return Term{}, err
			}
			return NewTyped(value, dt), nil
		}
		dt, err := p.parsePrefixedName()
		if err != nil {
			return Term{}, err
		}
		return NewTyped(value, dt.Value), nil
	}
	return NewString(value), nil
}

func (p *ttlParser) parseNumber() (Term, error) {
	var b strings.Builder
	sawDot, sawExp := false, false
	for {
		r, err := p.read()
		if err != nil {
			break
		}
		switch {
		case unicode.IsDigit(r) || r == '+' || r == '-':
			b.WriteRune(r)
		case r == '.':
			// A '.' followed by a non-digit terminates the statement instead.
			nxt, err2 := p.peek()
			if err2 != nil || !unicode.IsDigit(nxt) {
				p.unread(r)
				return p.finishNumber(b.String(), sawDot, sawExp)
			}
			sawDot = true
			b.WriteRune(r)
		case r == 'e' || r == 'E':
			sawExp = true
			b.WriteRune(r)
		default:
			p.unread(r)
			return p.finishNumber(b.String(), sawDot, sawExp)
		}
	}
	return p.finishNumber(b.String(), sawDot, sawExp)
}

func (p *ttlParser) finishNumber(lex string, sawDot, sawExp bool) (Term, error) {
	if lex == "" || lex == "+" || lex == "-" {
		return Term{}, p.errf("malformed number")
	}
	switch {
	case sawExp:
		return NewTyped(lex, XSDDouble), nil
	case sawDot:
		return NewTyped(lex, XSDDecimal), nil
	default:
		return NewTyped(lex, XSDInteger), nil
	}
}

func (p *ttlParser) parsePrefixedName() (Term, error) {
	var b strings.Builder
	for {
		r, err := p.read()
		if err != nil {
			break
		}
		if unicode.IsLetter(r) || unicode.IsDigit(r) || strings.ContainsRune(":_-%", r) {
			b.WriteRune(r)
			continue
		}
		// A dot inside a pname is allowed only when followed by a name char;
		// a trailing dot terminates the statement instead.
		if r == '.' {
			nxt, err2 := p.peek()
			if err2 == nil && (unicode.IsLetter(nxt) || unicode.IsDigit(nxt) || nxt == '_') {
				b.WriteRune(r)
				continue
			}
			p.unread(r)
			break
		}
		p.unread(r)
		break
	}
	pname := b.String()
	if pname == "" {
		r, err := p.peek()
		if err != nil {
			return Term{}, p.errf("expected term, got EOF")
		}
		return Term{}, p.errf("expected term, got %q", r)
	}
	i := strings.IndexByte(pname, ':')
	if i < 0 {
		return Term{}, p.errf("expected ':' in prefixed name %q", pname)
	}
	prefix, local := pname[:i], pname[i+1:]
	ns, ok := p.prefixes[prefix]
	if !ok {
		return Term{}, p.errf("undefined prefix %q", prefix)
	}
	return NewIRI(ns + local), nil
}

// WriteNTriples serializes the graph as sorted N-Triples.
func WriteNTriples(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for _, t := range g.Triples() {
		if _, err := bw.WriteString(t.String()); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteTurtle serializes the graph as Turtle, compacting IRIs with the given
// prefix map (label -> namespace) plus the well-known prefixes.
func WriteTurtle(w io.Writer, g *Graph, prefixes map[string]string) error {
	bw := bufio.NewWriter(w)
	all := make(map[string]string, len(prefixes)+len(WellKnownPrefixes))
	for k, v := range WellKnownPrefixes {
		all[k] = v
	}
	for k, v := range prefixes {
		all[k] = v
	}
	labels := make([]string, 0, len(all))
	for k := range all {
		labels = append(labels, k)
	}
	sortStrings(labels)
	for _, l := range labels {
		fmt.Fprintf(bw, "@prefix %s: <%s> .\n", l, all[l])
	}
	fmt.Fprintln(bw)
	compact := func(t Term) string {
		if t.Kind == KindIRI {
			if t.Value == RDFType {
				return "a"
			}
			for _, l := range labels {
				ns := all[l]
				if strings.HasPrefix(t.Value, ns) {
					local := t.Value[len(ns):]
					if isPNLocal(local) {
						return l + ":" + local
					}
				}
			}
		}
		return t.String()
	}
	var prevSubj Term
	first := true
	for _, t := range g.Triples() {
		if t.S != prevSubj {
			if !first {
				fmt.Fprintln(bw, " .")
			}
			fmt.Fprintf(bw, "%s %s %s", compact(t.S), compact(t.P), compact(t.O))
			prevSubj = t.S
			first = false
			continue
		}
		fmt.Fprintf(bw, " ;\n    %s %s", compact(t.P), compact(t.O))
	}
	if !first {
		fmt.Fprintln(bw, " .")
	}
	return bw.Flush()
}

func isPNLocal(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' && r != '-' {
			return false
		}
	}
	return true
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
