package rdf

import (
	"sort"
	"sync"
)

// ID-space read API. The SPARQL engine joins basic graph patterns on
// dictionary IDs instead of materialized terms: equality is one integer
// compare, no Term structs are built for intermediate rows, and pattern
// cardinalities come from a version-invalidated cache instead of repeated
// index scans. Terms are materialized (TermOf) only for rows that survive
// the join.

// TermID returns the dictionary ID of t, or (0, false) when t has never
// been interned into this graph. The zero ID doubles as the wildcard for
// MatchIDs and MatchCountIDs.
func (g *Graph) TermID(t Term) (ID, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.dict.Lookup(t)
}

// TermOf materializes the term for a valid ID. It panics on an ID the
// dictionary never issued (always a programming error).
func (g *Graph) TermOf(id ID) Term {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.dict.Term(id)
}

// MatchIDs calls fn for every triple matching the ID pattern; an ID of 0 in
// any position acts as a wildcard. Iteration stops early when fn returns
// false.
//
// Enumeration order is deterministic for a given graph content: access
// paths backed by index slices iterate in insertion order, and access paths
// that would otherwise walk a Go map iterate in sorted key order. The
// parallel evaluator depends on this to produce identical output row order
// at every parallelism level.
//
// fn runs while the graph read lock is held: it must not call other Graph
// methods (collect IDs and materialize after the scan instead).
func (g *Graph) MatchIDs(s, p, o ID, fn func(s, p, o ID) bool) {
	g.scans.Add(1)
	g.mu.RLock()
	defer g.mu.RUnlock()
	g.matchIDsLocked(s, p, o, fn)
}

func (g *Graph) matchIDsLocked(s, p, o ID, fn func(s, p, o ID) bool) {
	switch {
	case s != 0 && p != 0 && o != 0:
		if _, present := g.triples[tripleKey{s, p, o}]; present {
			fn(s, p, o)
		}
	case s != 0 && p != 0:
		for _, obj := range g.spo[s][p] {
			if !fn(s, p, obj) {
				return
			}
		}
	case s != 0 && o != 0:
		for _, pred := range g.osp[o][s] {
			if !fn(s, pred, o) {
				return
			}
		}
	case p != 0 && o != 0:
		for _, sub := range g.pos[p][o] {
			if !fn(sub, p, o) {
				return
			}
		}
	case s != 0:
		for _, pred := range sortedIDKeys(g.spo[s]) {
			for _, obj := range g.spo[s][pred] {
				if !fn(s, pred, obj) {
					return
				}
			}
		}
	case p != 0:
		for _, obj := range sortedIDKeys(g.pos[p]) {
			for _, sub := range g.pos[p][obj] {
				if !fn(sub, p, obj) {
					return
				}
			}
		}
	case o != 0:
		for _, sub := range sortedIDKeys(g.osp[o]) {
			for _, pred := range g.osp[o][sub] {
				if !fn(sub, pred, o) {
					return
				}
			}
		}
	default:
		for _, sub := range sortedIDKeys(g.spo) {
			inner := g.spo[sub]
			for _, pred := range sortedIDKeys(inner) {
				for _, obj := range inner[pred] {
					if !fn(sub, pred, obj) {
						return
					}
				}
			}
		}
	}
}

// sortedIDKeys returns the keys of an index map in ascending ID order
// (the deterministic iteration order contract of MatchIDs).
func sortedIDKeys[V any](m map[ID]V) []ID {
	keys := make([]ID, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// MatchCountIDs returns the number of triples matching the ID pattern
// (0 = wildcard) without materializing them. Most access paths are O(1)
// index lookups; the subject-only and object-only paths sum over an inner
// index and are the ones worth caching (see CachedCountIDs).
func (g *Graph) MatchCountIDs(s, p, o ID) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.matchCountIDsLocked(s, p, o)
}

func (g *Graph) matchCountIDsLocked(s, p, o ID) int {
	switch {
	case s != 0 && p != 0 && o != 0:
		if _, present := g.triples[tripleKey{s, p, o}]; present {
			return 1
		}
		return 0
	case s != 0 && p != 0:
		return len(g.spo[s][p])
	case s != 0 && o != 0:
		return len(g.osp[o][s])
	case p != 0 && o != 0:
		return len(g.pos[p][o])
	case s != 0:
		n := 0
		for _, objs := range g.spo[s] {
			n += len(objs)
		}
		return n
	case p != 0:
		return g.psCount[p]
	case o != 0:
		n := 0
		for _, preds := range g.osp[o] {
			n += len(preds)
		}
		return n
	default:
		return len(g.triples)
	}
}

// cardKey identifies one cached pattern cardinality (0 = wildcard).
type cardKey struct{ s, p, o ID }

// cardCache memoizes pattern cardinalities against a snapshot of the graph.
// The whole cache is dropped when the graph's version moves (any mutation),
// so entries can never go stale. Per-predicate counts and other O(1) access
// paths bypass the cache entirely.
type cardCache struct {
	mu      sync.Mutex
	version uint64
	m       map[cardKey]int
	hits    uint64
	misses  uint64
}

// CachedCountIDs is MatchCountIDs backed by the graph's cardinality cache:
// the summing access paths (subject-only / object-only patterns) memoize
// their result until the next mutation. It is the estimator the SPARQL
// engine's join ordering and strategy choice run on, where the same handful
// of patterns is counted over and over across queries of a session.
func (g *Graph) CachedCountIDs(s, p, o ID) int {
	// Cheap access paths: answer directly, no cache traffic.
	if !(s != 0 && p == 0 && o == 0) && !(o != 0 && s == 0 && p == 0) {
		return g.MatchCountIDs(s, p, o)
	}
	g.mu.RLock()
	version := g.version
	g.mu.RUnlock()
	key := cardKey{s, p, o}
	g.cards.mu.Lock()
	if g.cards.version != version || g.cards.m == nil {
		g.cards.version = version
		g.cards.m = make(map[cardKey]int)
	}
	if n, ok := g.cards.m[key]; ok {
		g.cards.hits++
		g.cards.mu.Unlock()
		return n
	}
	g.cards.misses++
	g.cards.mu.Unlock()
	n := g.MatchCountIDs(s, p, o)
	g.cards.mu.Lock()
	if g.cards.version == version {
		g.cards.m[key] = n
	}
	g.cards.mu.Unlock()
	return n
}

// CardCacheStats reports the cardinality cache's current entry count and
// lifetime hit/miss counters (surfaced by EXPLAIN output and diagnostics).
func (g *Graph) CardCacheStats() (size int, hits, misses uint64) {
	g.cards.mu.Lock()
	defer g.cards.mu.Unlock()
	return len(g.cards.m), g.cards.hits, g.cards.misses
}

// Version returns the graph's mutation counter: it moves on every Add and
// Remove, and callers can use it to validate their own derived caches.
func (g *Graph) Version() uint64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.version
}
