package rdf

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	g := MustLoadTurtle(`@prefix ex: <http://e/> .
ex:a a ex:Thing ; ex:label "héllo wörld" ; ex:n 42 ; ex:tagged "hi"@en .
ex:b ex:knows _:blank1 .
_:blank1 ex:note """multi
line""" .
`)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != g.Len() {
		t.Fatalf("roundtrip Len = %d, want %d", back.Len(), g.Len())
	}
	for _, tr := range g.Triples() {
		if !back.Has(tr) {
			t.Errorf("roundtrip lost %v", tr)
		}
	}
	if back.TermCount() != g.TermCount() {
		t.Errorf("dictionary size changed: %d vs %d", back.TermCount(), g.TermCount())
	}
}

// TestBinaryDeterministic pins the canonical-bytes contract: two snapshots
// of the same graph are byte-identical, and so are snapshots of two graphs
// with the same content built through different insertion histories.
func TestBinaryDeterministic(t *testing.T) {
	src := `@prefix ex: <http://e/> .
ex:a a ex:Thing ; ex:label "x" ; ex:n 1, 2, 3 .
ex:b ex:knows ex:a ; ex:label "y"@en .
`
	g := MustLoadTurtle(src)
	var one, two bytes.Buffer
	if err := g.WriteBinary(&one); err != nil {
		t.Fatal(err)
	}
	if err := g.WriteBinary(&two); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one.Bytes(), two.Bytes()) {
		t.Fatal("two WriteBinary calls over the same graph differ")
	}
	// Same triples inserted in reverse order: same dictionary IDs are not
	// guaranteed, but a save/load/save cycle must converge to stable bytes.
	back, err := ReadBinary(bytes.NewReader(one.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var three bytes.Buffer
	if err := back.WriteBinary(&three); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one.Bytes(), three.Bytes()) {
		t.Fatal("save/load/save is not byte-stable")
	}
}

// TestBinaryIDStable pins the ID-preservation contract: every dictionary ID
// survives a round trip, including terms no triple references (here: the
// terms of a triple that was added and then removed).
func TestBinaryIDStable(t *testing.T) {
	g := NewGraph()
	a, knows, b := NewIRI("http://e/a"), NewIRI("http://e/knows"), NewIRI("http://e/b")
	orphan := NewIRI("http://e/orphan")
	g.Add(Triple{S: a, P: knows, O: b})
	g.Add(Triple{S: a, P: knows, O: orphan})
	g.Remove(Triple{S: a, P: knows, O: orphan}) // orphan stays in the dictionary
	g.Add(Triple{S: b, P: knows, O: a})
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.TermCount() != g.TermCount() {
		t.Fatalf("TermCount = %d, want %d (orphan terms must survive)", back.TermCount(), g.TermCount())
	}
	for _, term := range []Term{a, knows, b, orphan} {
		want, ok1 := g.TermID(term)
		got, ok2 := back.TermID(term)
		if !ok1 || !ok2 || want != got {
			t.Errorf("term %v: ID %d (ok=%v) round-tripped to %d (ok=%v)", term, want, ok1, got, ok2)
		}
	}
	for _, tr := range g.Triples() {
		if !back.Has(tr) {
			t.Errorf("lost %v", tr)
		}
	}
	if back.Len() != g.Len() {
		t.Errorf("Len = %d, want %d", back.Len(), g.Len())
	}
}

// TestBinaryRoundTripProperty drives randomized graphs through the full
// contract: Write→Read preserves every dictionary ID, term and triple, and
// Write twice yields identical bytes.
func TestBinaryRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	terms := func(n int) []Term {
		out := make([]Term, 0, n)
		for i := 0; i < n; i++ {
			switch rng.Intn(4) {
			case 0:
				out = append(out, NewIRI(fmt.Sprintf("http://e/r%d", rng.Intn(40))))
			case 1:
				out = append(out, NewBlank(fmt.Sprintf("b%d", rng.Intn(10))))
			case 2:
				out = append(out, NewLangString(fmt.Sprintf("s%d", rng.Intn(20)), "en"))
			default:
				out = append(out, NewInteger(int64(rng.Intn(100))))
			}
		}
		return out
	}
	for trial := 0; trial < 25; trial++ {
		g := NewGraph()
		pool := terms(30)
		for i := 0; i < 120; i++ {
			s, p, o := pool[rng.Intn(len(pool))], pool[rng.Intn(len(pool))], pool[rng.Intn(len(pool))]
			if !s.IsResource() || !p.IsIRI() {
				continue
			}
			tr := Triple{S: s, P: p, O: o}
			if rng.Intn(5) == 0 {
				g.Remove(tr)
			} else {
				g.Add(tr)
			}
		}
		var one, two bytes.Buffer
		if err := g.WriteBinary(&one); err != nil {
			t.Fatal(err)
		}
		if err := g.WriteBinary(&two); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(one.Bytes(), two.Bytes()) {
			t.Fatalf("trial %d: non-deterministic bytes", trial)
		}
		back, err := ReadBinary(&one)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if back.Len() != g.Len() || back.TermCount() != g.TermCount() {
			t.Fatalf("trial %d: size drift: %d/%d triples, %d/%d terms",
				trial, back.Len(), g.Len(), back.TermCount(), g.TermCount())
		}
		for id := ID(1); int(id) <= g.TermCount(); id++ {
			if g.TermOf(id) != back.TermOf(id) {
				t.Fatalf("trial %d: ID %d maps to %v, was %v", trial, id, back.TermOf(id), g.TermOf(id))
			}
		}
		for _, tr := range g.Triples() {
			if !back.Has(tr) {
				t.Fatalf("trial %d: lost %v", trial, tr)
			}
		}
	}
}

// TestBinaryRejectsTrailingGarbage: any byte after the triple section means
// corruption and must fail loudly rather than be silently ignored.
func TestBinaryRejectsTrailingGarbage(t *testing.T) {
	g := MustLoadTurtle(`<http://e/s> <http://e/p> <http://e/o> .`)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	buf.WriteByte(0x00)
	if _, err := ReadBinary(&buf); err == nil {
		t.Fatal("snapshot with trailing byte accepted")
	}
}

// TestBinaryReadsVersion1 keeps the version-1 read path alive: same layout,
// unsorted triples, decoded with the ID-stable dictionary-first path.
func TestBinaryReadsVersion1(t *testing.T) {
	g := MustLoadTurtle(`@prefix ex: <http://e/> .
ex:a ex:p ex:b . ex:b ex:p ex:a . ex:a ex:q "v" .`)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4] = 1 // rewrite the version byte; v1 imposed no triple order
	back, err := ReadBinary(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != g.Len() || back.TermCount() != g.TermCount() {
		t.Fatalf("v1 read: %d triples / %d terms, want %d / %d",
			back.Len(), back.TermCount(), g.Len(), g.TermCount())
	}
	for id := ID(1); int(id) <= g.TermCount(); id++ {
		if g.TermOf(id) != back.TermOf(id) {
			t.Fatalf("v1 read reassigned ID %d", id)
		}
	}
}

// TestBinaryRejectsUnsortedV2: a version-2 snapshot whose triples are not in
// canonical order was not produced by WriteBinary and must be rejected.
func TestBinaryRejectsUnsortedV2(t *testing.T) {
	g := MustLoadTurtle(`@prefix ex: <http://e/> .
ex:a ex:p ex:b . ex:b ex:p ex:a .`)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// The two triples occupy the last 6 varint bytes (all IDs < 128); swap
	// them to break the ordering.
	n := len(raw)
	swapped := append([]byte{}, raw[:n-6]...)
	swapped = append(swapped, raw[n-3:]...)
	swapped = append(swapped, raw[n-6:n-3]...)
	if _, err := ReadBinary(bytes.NewReader(swapped)); err == nil {
		t.Fatal("out-of-order v2 triples accepted")
	}
}

// TestBinaryRejectsDuplicateDictTerm: a dictionary section listing the same
// term twice cannot be ID-stable and must be rejected.
func TestBinaryRejectsDuplicateDictTerm(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("RDFA")
	buf.WriteByte(binaryVersion)
	buf.WriteByte(2) // term count
	for i := 0; i < 2; i++ {
		buf.WriteByte(0) // kind IRI
		buf.WriteByte(3)
		buf.WriteString("a:b")
		buf.WriteByte(0) // datatype
		buf.WriteByte(0) // lang
	}
	buf.WriteByte(0) // triple count
	if _, err := ReadBinary(&buf); err == nil {
		t.Fatal("duplicate dictionary term accepted")
	}
}

func TestTermBinaryCodec(t *testing.T) {
	cases := []Term{
		NewIRI("http://e/x"),
		NewBlank("b1"),
		NewString("plain"),
		NewLangString("héllo", "en-GB"),
		NewTyped("42", XSDInteger),
		{},
	}
	var buf []byte
	for _, c := range cases {
		buf = AppendTermBinary(buf, c)
	}
	for _, c := range cases {
		got, n, err := DecodeTermBinary(buf)
		if err != nil {
			t.Fatal(err)
		}
		if got != c {
			t.Fatalf("decoded %v, want %v", got, c)
		}
		buf = buf[n:]
	}
	if len(buf) != 0 {
		t.Fatalf("%d bytes left over", len(buf))
	}
	if _, _, err := DecodeTermBinary([]byte{0, 5, 'a'}); err == nil {
		t.Fatal("short term encoding accepted")
	}
	if _, _, err := DecodeTermBinary(nil); err == nil {
		t.Fatal("empty term encoding accepted")
	}
}

func TestBinaryEmptyGraph(t *testing.T) {
	var buf bytes.Buffer
	if err := NewGraph().WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 0 {
		t.Fatalf("Len = %d", back.Len())
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	cases := []string{
		"",                     // empty
		"NOPE",                 // short
		"XXXX\x01",             // bad magic
		"RDFA\x63",             // bad version
		"RDFA\x01\xff\xff\xff", // truncated dictionary
	}
	for _, c := range cases {
		if _, err := ReadBinary(strings.NewReader(c)); err == nil {
			t.Errorf("garbage %q accepted", c)
		}
	}
}

func TestBinaryRejectsBadIDs(t *testing.T) {
	// Hand-craft a snapshot with a triple referencing term 9 when only one
	// term exists.
	var buf bytes.Buffer
	buf.WriteString("RDFA\x01")
	buf.WriteByte(1) // term count
	buf.WriteByte(0) // kind IRI
	buf.WriteByte(3)
	buf.WriteString("a:b") // value
	buf.WriteByte(0)       // datatype
	buf.WriteByte(0)       // lang
	buf.WriteByte(1)       // triple count
	buf.WriteByte(9)       // s out of range
	buf.WriteByte(1)
	buf.WriteByte(1)
	if _, err := ReadBinary(&buf); err == nil {
		t.Fatal("out-of-range term ID accepted")
	}
}

func BenchmarkBinaryVsTurtle(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("@prefix ex: <http://e/> .\n")
	for i := 0; i < 2000; i++ {
		sb.WriteString("ex:s")
		sb.WriteString(strings.Repeat("x", i%7+1))
		sb.WriteString(" ex:p \"v\" .\n")
	}
	g := MustLoadTurtle(sb.String())
	var bin bytes.Buffer
	if err := g.WriteBinary(&bin); err != nil {
		b.Fatal(err)
	}
	ttl := sb.String()
	b.Run("read-binary", func(b *testing.B) {
		for b.Loop() {
			if _, err := ReadBinary(bytes.NewReader(bin.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parse-turtle", func(b *testing.B) {
		for b.Loop() {
			if _, err := LoadTurtleString(ttl); err != nil {
				b.Fatal(err)
			}
		}
	})
}
