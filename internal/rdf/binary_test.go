package rdf

import (
	"bytes"
	"strings"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	g := MustLoadTurtle(`@prefix ex: <http://e/> .
ex:a a ex:Thing ; ex:label "héllo wörld" ; ex:n 42 ; ex:tagged "hi"@en .
ex:b ex:knows _:blank1 .
_:blank1 ex:note """multi
line""" .
`)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != g.Len() {
		t.Fatalf("roundtrip Len = %d, want %d", back.Len(), g.Len())
	}
	for _, tr := range g.Triples() {
		if !back.Has(tr) {
			t.Errorf("roundtrip lost %v", tr)
		}
	}
	if back.TermCount() != g.TermCount() {
		t.Errorf("dictionary size changed: %d vs %d", back.TermCount(), g.TermCount())
	}
}

func TestBinaryEmptyGraph(t *testing.T) {
	var buf bytes.Buffer
	if err := NewGraph().WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 0 {
		t.Fatalf("Len = %d", back.Len())
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	cases := []string{
		"",                     // empty
		"NOPE",                 // short
		"XXXX\x01",             // bad magic
		"RDFA\x63",             // bad version
		"RDFA\x01\xff\xff\xff", // truncated dictionary
	}
	for _, c := range cases {
		if _, err := ReadBinary(strings.NewReader(c)); err == nil {
			t.Errorf("garbage %q accepted", c)
		}
	}
}

func TestBinaryRejectsBadIDs(t *testing.T) {
	// Hand-craft a snapshot with a triple referencing term 9 when only one
	// term exists.
	var buf bytes.Buffer
	buf.WriteString("RDFA\x01")
	buf.WriteByte(1) // term count
	buf.WriteByte(0) // kind IRI
	buf.WriteByte(3)
	buf.WriteString("a:b") // value
	buf.WriteByte(0)       // datatype
	buf.WriteByte(0)       // lang
	buf.WriteByte(1)       // triple count
	buf.WriteByte(9)       // s out of range
	buf.WriteByte(1)
	buf.WriteByte(1)
	if _, err := ReadBinary(&buf); err == nil {
		t.Fatal("out-of-range term ID accepted")
	}
}

func BenchmarkBinaryVsTurtle(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("@prefix ex: <http://e/> .\n")
	for i := 0; i < 2000; i++ {
		sb.WriteString("ex:s")
		sb.WriteString(strings.Repeat("x", i%7+1))
		sb.WriteString(" ex:p \"v\" .\n")
	}
	g := MustLoadTurtle(sb.String())
	var bin bytes.Buffer
	if err := g.WriteBinary(&bin); err != nil {
		b.Fatal(err)
	}
	ttl := sb.String()
	b.Run("read-binary", func(b *testing.B) {
		for b.Loop() {
			if _, err := ReadBinary(bytes.NewReader(bin.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parse-turtle", func(b *testing.B) {
		for b.Loop() {
			if _, err := LoadTurtleString(ttl); err != nil {
				b.Fatal(err)
			}
		}
	})
}
