package rdf

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTermKinds(t *testing.T) {
	iri := NewIRI("http://ex.org/a")
	if !iri.IsIRI() || iri.IsBlank() || iri.IsLiteral() || !iri.IsResource() {
		t.Errorf("IRI kind predicates wrong: %+v", iri)
	}
	b := NewBlank("b1")
	if !b.IsBlank() || !b.IsResource() || b.IsIRI() {
		t.Errorf("blank kind predicates wrong: %+v", b)
	}
	l := NewString("hi")
	if !l.IsLiteral() || l.IsResource() {
		t.Errorf("literal kind predicates wrong: %+v", l)
	}
}

func TestTermString(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{NewIRI("http://ex.org/a"), "<http://ex.org/a>"},
		{NewBlank("x"), "_:x"},
		{NewString("hi"), `"hi"`},
		{NewLangString("hi", "en"), `"hi"@en`},
		{NewInteger(42), `"42"^^<http://www.w3.org/2001/XMLSchema#integer>`},
		{NewString(`a"b\c`), `"a\"b\\c"`},
		{NewString("a\nb\tc"), `"a\nb\tc"`},
		{NewBool(true), `"true"^^<http://www.w3.org/2001/XMLSchema#boolean>`},
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.term, got, c.want)
		}
	}
}

func TestNumericAccessors(t *testing.T) {
	if f, ok := NewInteger(7).Float(); !ok || f != 7 {
		t.Errorf("Float of integer literal = %v, %v", f, ok)
	}
	if f, ok := NewDecimal(3.5).Float(); !ok || f != 3.5 {
		t.Errorf("Float of decimal literal = %v, %v", f, ok)
	}
	if _, ok := NewString("7").Float(); ok {
		t.Error("plain string literal must not be numeric")
	}
	if i, ok := NewInteger(-12).Int(); !ok || i != -12 {
		t.Errorf("Int = %v, %v", i, ok)
	}
	if b, ok := NewBool(true).Bool(); !ok || !b {
		t.Errorf("Bool = %v, %v", b, ok)
	}
	if _, ok := NewString("true").Bool(); ok {
		t.Error("xsd:string must not parse as boolean")
	}
}

func TestTimeParsing(t *testing.T) {
	d := NewTyped("2021-06-10", XSDDate)
	tm, ok := d.Time()
	if !ok || tm.Year() != 2021 || tm.Month() != time.June || tm.Day() != 10 {
		t.Errorf("date parse: %v %v", tm, ok)
	}
	dt := NewTyped("2021-12-31T23:59:59", XSDDateTime)
	tm, ok = dt.Time()
	if !ok || tm.Hour() != 23 {
		t.Errorf("dateTime parse: %v %v", tm, ok)
	}
	if _, ok := NewString("not a date").Time(); ok {
		t.Error("garbage must not parse as time")
	}
}

func TestLocalName(t *testing.T) {
	cases := []struct{ iri, want string }{
		{"http://ex.org/vocab#Laptop", "Laptop"},
		{"http://ex.org/vocab/Laptop", "Laptop"},
		{"urn:thing", "thing"},
		{"noseparator", "noseparator"},
	}
	for _, c := range cases {
		if got := NewIRI(c.iri).LocalName(); got != c.want {
			t.Errorf("LocalName(%q) = %q, want %q", c.iri, got, c.want)
		}
	}
}

func TestTermLessTotalOrder(t *testing.T) {
	// IRIs < blanks < literals.
	if !NewIRI("z").Less(NewBlank("a")) {
		t.Error("IRI must sort before blank")
	}
	if !NewBlank("z").Less(NewString("a")) {
		t.Error("blank must sort before literal")
	}
	// Numeric literals order numerically, not lexically.
	if !NewInteger(9).Less(NewInteger(10)) {
		t.Error("9 must sort before 10 numerically")
	}
	if NewInteger(10).Less(NewInteger(9)) {
		t.Error("10 must not sort before 9")
	}
}

func TestTermLessIrreflexiveAntisymmetric(t *testing.T) {
	gen := func(a, b string, k1, k2 uint8) bool {
		t1 := Term{Kind: TermKind(k1 % 3), Value: a}
		t2 := Term{Kind: TermKind(k2 % 3), Value: b}
		if t1 == t2 {
			return !t1.Less(t2) && !t2.Less(t1)
		}
		// antisymmetry: at most one direction holds
		return !(t1.Less(t2) && t2.Less(t1))
	}
	if err := quick.Check(gen, nil); err != nil {
		t.Error(err)
	}
}

func TestTripleString(t *testing.T) {
	tr := NewTriple(NewIRI("http://e/s"), NewIRI("http://e/p"), NewInteger(1))
	want := `<http://e/s> <http://e/p> "1"^^<http://www.w3.org/2001/XMLSchema#integer> .`
	if tr.String() != want {
		t.Errorf("Triple.String() = %q, want %q", tr.String(), want)
	}
}

func TestEscapeRoundTripQuick(t *testing.T) {
	f := func(s string) bool {
		lit := NewString(s)
		g := NewGraph()
		g.Add(Triple{NewIRI("http://e/s"), NewIRI("http://e/p"), lit})
		var sb []byte
		// serialize to N-Triples and parse back
		buf := &stringWriter{}
		if err := WriteNTriples(buf, g); err != nil {
			return false
		}
		sb = []byte(buf.s)
		g2, err := LoadTurtleString(string(sb))
		if err != nil {
			return false
		}
		return g2.Has(Triple{NewIRI("http://e/s"), NewIRI("http://e/p"), lit})
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

type stringWriter struct{ s string }

func (w *stringWriter) Write(p []byte) (int, error) {
	w.s += string(p)
	return len(p), nil
}
