package rdf

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseNTriples(t *testing.T) {
	doc := `<http://e/s> <http://e/p> <http://e/o> .
<http://e/s> <http://e/q> "plain" .
<http://e/s> <http://e/q> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://e/s> <http://e/q> "bonjour"@fr .
_:b1 <http://e/p> _:b2 .
`
	g, err := LoadTurtleString(doc)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 5 {
		t.Fatalf("Len = %d, want 5", g.Len())
	}
	if !g.Has(Triple{NewIRI("http://e/s"), NewIRI("http://e/q"), NewInteger(42)}) {
		t.Error("typed literal missing")
	}
	if !g.Has(Triple{NewIRI("http://e/s"), NewIRI("http://e/q"), NewLangString("bonjour", "fr")}) {
		t.Error("lang literal missing")
	}
	if !g.Has(Triple{NewBlank("b1"), NewIRI("http://e/p"), NewBlank("b2")}) {
		t.Error("blank nodes missing")
	}
}

func TestParseTurtlePrefixesAndLists(t *testing.T) {
	doc := `@prefix ex: <http://ex.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
ex:laptop1 a ex:Laptop ;
    ex:price 900 ;
    ex:rating 4.5 ;
    ex:inStock true ;
    ex:weight 1.2e1 ;
    ex:manufacturer ex:dell , ex:oem1 ;
    ex:releaseDate "2021-06-10"^^xsd:date .
`
	g, err := LoadTurtleString(doc)
	if err != nil {
		t.Fatal(err)
	}
	s := NewIRI("http://ex.org/laptop1")
	wants := []Triple{
		{s, NewIRI(RDFType), NewIRI("http://ex.org/Laptop")},
		{s, NewIRI("http://ex.org/price"), NewInteger(900)},
		{s, NewIRI("http://ex.org/rating"), NewTyped("4.5", XSDDecimal)},
		{s, NewIRI("http://ex.org/inStock"), NewTyped("true", XSDBoolean)},
		{s, NewIRI("http://ex.org/weight"), NewTyped("1.2e1", XSDDouble)},
		{s, NewIRI("http://ex.org/manufacturer"), NewIRI("http://ex.org/dell")},
		{s, NewIRI("http://ex.org/manufacturer"), NewIRI("http://ex.org/oem1")},
		{s, NewIRI("http://ex.org/releaseDate"), NewTyped("2021-06-10", XSDDate)},
	}
	for _, w := range wants {
		if !g.Has(w) {
			t.Errorf("missing triple %v\ngraph: %v", w, g.Triples())
		}
	}
	if g.Len() != len(wants) {
		t.Errorf("Len = %d, want %d", g.Len(), len(wants))
	}
}

func TestParseSparqlStyleDirectives(t *testing.T) {
	doc := `PREFIX ex: <http://ex.org/>
BASE <http://base.org/>
ex:a ex:p <rel> .
`
	g, err := LoadTurtleString(doc)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Has(Triple{NewIRI("http://ex.org/a"), NewIRI("http://ex.org/p"), NewIRI("http://base.org/rel")}) {
		t.Errorf("base resolution failed: %v", g.Triples())
	}
}

func TestParseBlankPropertyList(t *testing.T) {
	doc := `@prefix ex: <http://ex.org/> .
ex:a ex:knows [ ex:name "Bob" ; ex:age 30 ] .
`
	g, err := LoadTurtleString(doc)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 3 {
		t.Fatalf("Len = %d, want 3: %v", g.Len(), g.Triples())
	}
	// The blank node must connect the three triples.
	objs := g.Objects(NewIRI("http://ex.org/a"), NewIRI("http://ex.org/knows"))
	if len(objs) != 1 || !objs[0].IsBlank() {
		t.Fatalf("objs = %v", objs)
	}
	if g.Object(objs[0], NewIRI("http://ex.org/name")) != NewString("Bob") {
		t.Error("nested property missing")
	}
}

func TestParseCollection(t *testing.T) {
	doc := `@prefix ex: <http://ex.org/> .
ex:a ex:items ( ex:x ex:y ) .
ex:b ex:items ( ) .
`
	g, err := LoadTurtleString(doc)
	if err != nil {
		t.Fatal(err)
	}
	// empty collection is rdf:nil
	if g.Object(NewIRI("http://ex.org/b"), NewIRI("http://ex.org/items")) != NewIRI(RDFNil) {
		t.Error("empty collection must be rdf:nil")
	}
	// non-empty: follow first/rest
	head := g.Object(NewIRI("http://ex.org/a"), NewIRI("http://ex.org/items"))
	if g.Object(head, NewIRI(RDFFirst)) != NewIRI("http://ex.org/x") {
		t.Error("first item wrong")
	}
	rest := g.Object(head, NewIRI(RDFRest))
	if g.Object(rest, NewIRI(RDFFirst)) != NewIRI("http://ex.org/y") {
		t.Error("second item wrong")
	}
	if g.Object(rest, NewIRI(RDFRest)) != NewIRI(RDFNil) {
		t.Error("list not nil-terminated")
	}
}

func TestParseComments(t *testing.T) {
	doc := `# leading comment
@prefix ex: <http://ex.org/> . # trailing comment
ex:a ex:p ex:b . # done
`
	g, err := LoadTurtleString(doc)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d", g.Len())
	}
}

func TestParseLongStrings(t *testing.T) {
	doc := "@prefix ex: <http://ex.org/> .\n" +
		"ex:a ex:p \"\"\"multi\nline \"quoted\" text\"\"\" .\n"
	g, err := LoadTurtleString(doc)
	if err != nil {
		t.Fatal(err)
	}
	want := NewString("multi\nline \"quoted\" text")
	if !g.Has(Triple{NewIRI("http://ex.org/a"), NewIRI("http://ex.org/p"), want}) {
		t.Errorf("long string parse wrong: %v", g.Triples())
	}
}

func TestParseEmptyString(t *testing.T) {
	doc := `<http://e/s> <http://e/p> "" .`
	g, err := LoadTurtleString(doc)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Has(Triple{NewIRI("http://e/s"), NewIRI("http://e/p"), NewString("")}) {
		t.Errorf("empty string literal missing: %v", g.Triples())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`<http://e/s> <http://e/p>`,           // missing object and dot
		`<http://e/s> <http://e/p> "x"`,       // missing dot
		`ex:a ex:p ex:b .`,                    // undefined prefix
		`@prefix ex <http://e/> . ex:a a 1 .`, // malformed prefix decl
		`<http://e/s> <http://e/p> "unterminated .`,
		`@unknown <x> .`,
	}
	for _, doc := range bad {
		if _, err := LoadTurtleString(doc); err == nil {
			t.Errorf("expected parse error for %q", doc)
		}
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := LoadTurtleString("<http://e/s> <http://e/p> @ .")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T, want *ParseError", err)
	}
	if pe.Line != 1 {
		t.Errorf("Line = %d, want 1", pe.Line)
	}
}

func TestTurtleRoundTrip(t *testing.T) {
	doc := `@prefix ex: <http://ex.org/> .
ex:laptop1 a ex:Laptop ;
    ex:price 900 ;
    ex:manufacturer ex:dell .
ex:dell ex:origin ex:USA .
`
	g, err := LoadTurtleString(doc)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTurtle(&buf, g, map[string]string{"ex": "http://ex.org/"}); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadTurtleString(buf.String())
	if err != nil {
		t.Fatalf("reparse failed: %v\noutput:\n%s", err, buf.String())
	}
	if g2.Len() != g.Len() {
		t.Fatalf("roundtrip Len = %d, want %d\n%s", g2.Len(), g.Len(), buf.String())
	}
	for _, tr := range g.Triples() {
		if !g2.Has(tr) {
			t.Errorf("roundtrip lost %v", tr)
		}
	}
}

func TestNTriplesRoundTrip(t *testing.T) {
	g := testGraph()
	var buf bytes.Buffer
	if err := WriteNTriples(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadTurtle(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.Len() != g.Len() {
		t.Fatalf("roundtrip Len = %d, want %d", g2.Len(), g.Len())
	}
}

func TestParseStreamingSinkError(t *testing.T) {
	doc := `<http://e/a> <http://e/p> <http://e/b> .
<http://e/c> <http://e/p> <http://e/d> .`
	n := 0
	err := ParseTurtle(strings.NewReader(doc), func(Triple) error {
		n++
		return errStop
	})
	if err != errStop {
		t.Fatalf("sink error not propagated: %v", err)
	}
	if n != 1 {
		t.Fatalf("sink called %d times, want 1", n)
	}
}

var errStop = &ParseError{Msg: "stop"}

func BenchmarkParseTurtle(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("@prefix ex: <http://ex.org/> .\n")
	for i := 0; i < 1000; i++ {
		sb.WriteString("ex:s")
		sb.WriteString(string(rune('a' + i%26)))
		sb.WriteString(" ex:p ")
		sb.WriteString(`"value" .`)
		sb.WriteString("\n")
	}
	doc := sb.String()
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for b.Loop() {
		if _, err := LoadTurtleString(doc); err != nil {
			b.Fatal(err)
		}
	}
}
