package rdf

import (
	"fmt"
	"reflect"
	"testing"
)

// TestMatchIDsAgreesWithMatch: every ID pattern shape must enumerate the
// same triples as the term-space Match.
func TestMatchIDsAgreesWithMatch(t *testing.T) {
	g := testGraph()
	termOrAny := func(id ID) Term {
		if id == 0 {
			return Any
		}
		return g.TermOf(id)
	}
	mustID := func(term Term) ID {
		id, ok := g.TermID(term)
		if !ok {
			t.Fatalf("TermID(%v) unknown", term)
		}
		return id
	}
	s, p, o := mustID(ex("laptop1")), mustID(ex("price")), mustID(ex("dell"))
	for _, ids := range [][3]ID{
		{0, 0, 0}, {s, 0, 0}, {0, p, 0}, {0, 0, o},
		{s, p, 0}, {0, mustID(ex("manufacturer")), o}, {s, 0, o},
		{s, mustID(ex("manufacturer")), o},
		{9999, 0, 0}, // valid-shaped but unused subject position
	} {
		if ids[0] == 9999 {
			continue
		}
		got := map[Triple]bool{}
		g.MatchIDs(ids[0], ids[1], ids[2], func(s, p, o ID) bool {
			got[Triple{g.TermOf(s), g.TermOf(p), g.TermOf(o)}] = true
			return true
		})
		want := map[Triple]bool{}
		g.Match(termOrAny(ids[0]), termOrAny(ids[1]), termOrAny(ids[2]), func(tr Triple) bool {
			want[tr] = true
			return true
		})
		if !reflect.DeepEqual(got, want) {
			t.Errorf("MatchIDs(%v): got %d triples, want %d", ids, len(got), len(want))
		}
		if n := g.MatchCountIDs(ids[0], ids[1], ids[2]); n != len(want) {
			t.Errorf("MatchCountIDs(%v) = %d, want %d", ids, n, len(want))
		}
	}
}

// TestMatchIDsDeterministicOrder: repeated enumeration of the same pattern
// must visit triples in the same order (the parallel evaluator's contract).
func TestMatchIDsDeterministicOrder(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 200; i++ {
		g.Add(Triple{ex(fmt.Sprintf("s%d", i%20)), ex(fmt.Sprintf("p%d", i%5)), NewInteger(int64(i))})
	}
	for _, ids := range [][3]ID{{0, 0, 0}, {1, 0, 0}, {0, 2, 0}, {0, 0, 3}} {
		var first [][3]ID
		g.MatchIDs(ids[0], ids[1], ids[2], func(s, p, o ID) bool {
			first = append(first, [3]ID{s, p, o})
			return true
		})
		for rep := 0; rep < 5; rep++ {
			var again [][3]ID
			g.MatchIDs(ids[0], ids[1], ids[2], func(s, p, o ID) bool {
				again = append(again, [3]ID{s, p, o})
				return true
			})
			if !reflect.DeepEqual(first, again) {
				t.Fatalf("pattern %v: enumeration order changed between runs", ids)
			}
		}
	}
}

func TestMatchIDsEarlyExit(t *testing.T) {
	g := testGraph()
	n := 0
	g.MatchIDs(0, 0, 0, func(s, p, o ID) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early exit visited %d triples, want 3", n)
	}
}

func TestTermIDRoundTrip(t *testing.T) {
	g := testGraph()
	id, ok := g.TermID(ex("laptop1"))
	if !ok || id == 0 {
		t.Fatalf("TermID(laptop1) = %d, %v", id, ok)
	}
	if got := g.TermOf(id); got != ex("laptop1") {
		t.Errorf("TermOf(%d) = %v", id, got)
	}
	if _, ok := g.TermID(ex("never-seen")); ok {
		t.Error("TermID reported an unknown term as known")
	}
}

// TestCardCacheInvalidation: cached counts must follow mutations, and the
// hit counter must move on repeated lookups of a summing pattern.
func TestCardCacheInvalidation(t *testing.T) {
	g := testGraph()
	sID, _ := g.TermID(ex("laptop1"))
	before := g.CachedCountIDs(sID, 0, 0)
	if want := g.MatchCountIDs(sID, 0, 0); before != want {
		t.Fatalf("cached %d, direct %d", before, want)
	}
	_, hits0, _ := g.CardCacheStats()
	g.CachedCountIDs(sID, 0, 0)
	if _, hits, _ := g.CardCacheStats(); hits <= hits0 {
		t.Errorf("second lookup did not hit the cache (hits %d -> %d)", hits0, hits)
	}
	v0 := g.Version()
	g.Add(Triple{ex("laptop1"), ex("weight"), NewInteger(2)})
	if g.Version() == v0 {
		t.Fatal("Add did not move the graph version")
	}
	if after := g.CachedCountIDs(sID, 0, 0); after != before+1 {
		t.Errorf("after Add: cached %d, want %d", after, before+1)
	}
	g.Remove(Triple{ex("laptop1"), ex("weight"), NewInteger(2)})
	if final := g.CachedCountIDs(sID, 0, 0); final != before {
		t.Errorf("after Remove: cached %d, want %d", final, before)
	}
}

func benchGraph(n int) *Graph {
	g := NewGraph()
	for j := 0; j < n; j++ {
		g.Add(Triple{
			ex(fmt.Sprintf("s%d", j%1000)),
			ex(fmt.Sprintf("p%d", j%10)),
			ex(fmt.Sprintf("o%d", j%100)),
		})
	}
	return g
}

// BenchmarkMatch vs BenchmarkMatchIDs: the cost of term materialization on
// the enumeration hot path.
func BenchmarkMatch(b *testing.B) {
	g := benchGraph(10000)
	p := ex("p3")
	b.ResetTimer()
	for b.Loop() {
		n := 0
		g.Match(Any, p, Any, func(Triple) bool { n++; return true })
	}
}

func BenchmarkMatchIDs(b *testing.B) {
	g := benchGraph(10000)
	pid, _ := g.TermID(ex("p3"))
	b.ResetTimer()
	for b.Loop() {
		n := 0
		g.MatchIDs(0, pid, 0, func(s, p, o ID) bool { n++; return true })
	}
}

func BenchmarkObjects(b *testing.B) {
	g := benchGraph(10000)
	s, p := ex("s3"), ex("p3")
	b.ResetTimer()
	for b.Loop() {
		g.Objects(s, p)
	}
}

func BenchmarkCachedCountIDs(b *testing.B) {
	g := benchGraph(10000)
	sid, _ := g.TermID(ex("s3"))
	b.Run("cached", func(b *testing.B) {
		for b.Loop() {
			g.CachedCountIDs(sid, 0, 0)
		}
	})
	b.Run("direct", func(b *testing.B) {
		for b.Loop() {
			g.MatchCountIDs(sid, 0, 0)
		}
	})
}
