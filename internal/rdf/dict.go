package rdf

// ID is a dictionary-encoded term identifier. The zero ID is never assigned
// to a term, so it can serve as an "absent" marker.
type ID uint32

// Dict interns terms to dense integer IDs and back. The graph stores triples
// as ID three-tuples; this keeps the indexes compact and makes term equality
// a single integer compare. Dict is not safe for concurrent mutation; Graph
// serializes access with its own lock.
type Dict struct {
	toID   map[Term]ID
	toTerm []Term // toTerm[id-1] is the term for id
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{toID: make(map[Term]ID)}
}

// Grow pre-sizes the dictionary for n upcoming Intern calls, so bulk
// loaders (the snapshot reader) pay one allocation instead of O(log n)
// rehashes.
func (d *Dict) Grow(n int) {
	if n <= len(d.toTerm) {
		return
	}
	toID := make(map[Term]ID, n)
	for t, id := range d.toID {
		toID[t] = id
	}
	d.toID = toID
	toTerm := make([]Term, len(d.toTerm), n)
	copy(toTerm, d.toTerm)
	d.toTerm = toTerm
}

// Intern returns the ID for t, assigning a fresh one if t is new.
func (d *Dict) Intern(t Term) ID {
	if id, ok := d.toID[t]; ok {
		return id
	}
	d.toTerm = append(d.toTerm, t)
	id := ID(len(d.toTerm))
	d.toID[t] = id
	return id
}

// Lookup returns the ID for t, or 0 if t has never been interned.
func (d *Dict) Lookup(t Term) (ID, bool) {
	id, ok := d.toID[t]
	return id, ok
}

// Term returns the term for a valid ID. It panics on an ID the dictionary
// never issued, which always indicates a programming error.
func (d *Dict) Term(id ID) Term {
	return d.toTerm[id-1]
}

// Len returns the number of distinct interned terms.
func (d *Dict) Len() int { return len(d.toTerm) }
