package rdf

import (
	"strings"
	"testing"
	"time"
)

func TestTurtleEscapes(t *testing.T) {
	doc := `@prefix ex: <http://e/> .
ex:a ex:p "tab\there" .
ex:a ex:q "newline\nhere" .
ex:a ex:r "quote\"here" .
ex:a ex:s "back\\slash" .
ex:a ex:t "unicodeAhere" .
ex:a ex:u "wide\U0001F600emoji" .
ex:a ex:v "cr\rbell" .
`
	g, err := LoadTurtleString(doc)
	if err != nil {
		t.Fatal(err)
	}
	checks := map[string]string{
		"p": "tab\there",
		"q": "newline\nhere",
		"r": `quote"here`,
		"s": `back\slash`,
		"t": "unicodeAhere",
		"u": "wide\U0001F600emoji",
		"v": "cr\rbell",
	}
	for p, want := range checks {
		got := g.Object(NewIRI("http://e/a"), NewIRI("http://e/"+p))
		if got.Value != want {
			t.Errorf("%s = %q, want %q", p, got.Value, want)
		}
	}
	// Literal \u / \U escapes (written with raw backslashes so the Turtle
	// parser, not the Go compiler, decodes them).
	doc2 := "<http://e/a> <http://e/w> \"esc\\u0041end\" .\n" +
		"<http://e/a> <http://e/x> \"wide\\U0001F600end\" .\n"
	g2, err := LoadTurtleString(doc2)
	if err != nil {
		t.Fatal(err)
	}
	if got := g2.Object(NewIRI("http://e/a"), NewIRI("http://e/w")); got.Value != "escAend" {
		t.Errorf("\\u escape = %q", got.Value)
	}
	if got := g2.Object(NewIRI("http://e/a"), NewIRI("http://e/x")); got.Value != "wide\U0001F600end" {
		t.Errorf("\\U escape = %q", got.Value)
	}
	// Bad escapes error.
	for _, bad := range []string{
		`<http://e/a> <http://e/p> "bad\qescape" .`,
		`<http://e/a> <http://e/p> "bad\uZZZZ" .`,
	} {
		if _, err := LoadTurtleString(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestTurtleBaseDirective(t *testing.T) {
	doc := `@base <http://base.org/> .
@prefix ex: <http://e/> .
<rel1> ex:p <rel2> .
`
	g, err := LoadTurtleString(doc)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Has(Triple{NewIRI("http://base.org/rel1"), NewIRI("http://e/p"), NewIRI("http://base.org/rel2")}) {
		t.Errorf("base resolution: %v", g.Triples())
	}
}

func TestTurtleIRIEscape(t *testing.T) {
	doc := `<http://e/with space> <http://e/p> <http://e/o> .`
	g, err := LoadTurtleString(doc)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Has(Triple{NewIRI("http://e/with space"), NewIRI("http://e/p"), NewIRI("http://e/o")}) {
		t.Errorf("IRI escape: %v", g.Triples())
	}
}

func TestTurtleNestedBlankLists(t *testing.T) {
	doc := `@prefix ex: <http://e/> .
ex:a ex:p [ ex:q [ ex:r 1 ] ] .
`
	g, err := LoadTurtleString(doc)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 3 {
		t.Fatalf("triples: %v", g.Triples())
	}
}

func TestAddAll(t *testing.T) {
	g := NewGraph()
	ts := []Triple{
		{ex("a"), ex("p"), ex("b")},
		{ex("a"), ex("p"), ex("b")}, // dup
		{ex("c"), ex("p"), ex("d")},
	}
	if n := g.AddAll(ts); n != 2 {
		t.Fatalf("AddAll added %d, want 2", n)
	}
}

func TestDirectSubProperties(t *testing.T) {
	g := MustLoadTurtle(`@prefix ex: <http://e/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
ex:specific rdfs:subPropertyOf ex:general .
ex:verySpecific rdfs:subPropertyOf ex:specific .
ex:verySpecific rdfs:subPropertyOf ex:general .
`)
	s := SchemaOf(g)
	subs := s.DirectSubProperties(NewIRI("http://e/general"))
	if len(subs) != 1 || subs[0] != NewIRI("http://e/specific") {
		t.Errorf("DirectSubProperties = %v (reduction should drop the shortcut)", subs)
	}
}

func TestTermConstructors(t *testing.T) {
	tm := time.Date(2021, 6, 10, 13, 45, 0, 0, time.UTC)
	if d := NewDate(tm); d.Value != "2021-06-10" || d.Datatype != XSDDate {
		t.Errorf("NewDate = %v", d)
	}
	if dt := NewDateTime(tm); !strings.HasPrefix(dt.Value, "2021-06-10T13:45") {
		t.Errorf("NewDateTime = %v", dt)
	}
	if d := NewDouble(1.5e3); d.Datatype != XSDDouble {
		t.Errorf("NewDouble = %v", d)
	}
	if k := KindIRI.String(); k != "IRI" {
		t.Errorf("KindIRI.String() = %q", k)
	}
	if k := TermKind(9).String(); !strings.Contains(k, "9") {
		t.Errorf("unknown kind string = %q", k)
	}
}

func TestParseErrorString(t *testing.T) {
	_, err := LoadTurtleString("@bad <x> .")
	if err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Errorf("error rendering: %v", err)
	}
}

func TestWriteTurtleFallsBackToFullIRIs(t *testing.T) {
	g := NewGraph()
	// A local name with characters outside PN_LOCAL forces <…> form.
	g.Add(Triple{NewIRI("http://e/a b"), NewIRI("http://e/p"), NewString("v")})
	var sb strings.Builder
	if err := WriteTurtle(&sb, g, map[string]string{"e": "http://e/"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "<http://e/a b>") {
		t.Errorf("expected full IRI form:\n%s", sb.String())
	}
}
