package rdf

import (
	"context"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
)

// Any is the wildcard term for Graph.Match: a position holding Any matches
// every term. It is not a valid RDF term and can never be stored in a graph.
var Any = Term{Kind: TermKind(0xFF)}

type tripleKey struct{ s, p, o ID }

// Graph is an in-memory RDF triple store with dictionary encoding and three
// access-path indexes (SPO, POS, OSP). All read operations are safe for
// concurrent use; writes are serialized by an internal lock.
//
// Graph is the "triple store" substrate of the reproduction: the paper runs
// against a remote SPARQL endpoint, which we replace by this store plus the
// engine in internal/sparql.
type Graph struct {
	mu      sync.RWMutex
	dict    *Dict
	triples map[tripleKey]struct{}
	spo     map[ID]map[ID][]ID // subject -> predicate -> objects
	pos     map[ID]map[ID][]ID // predicate -> object -> subjects
	osp     map[ID]map[ID][]ID // object -> subject -> predicates
	psCount map[ID]int         // predicate -> triple count (facet statistics)
	// version moves on every mutation; derived caches (cards, callers of
	// Version) validate against it instead of subscribing to writes.
	version uint64
	// journal, when installed, receives every effective mutation (an Add of
	// a new triple, a Remove of a present one) before it is applied — the
	// write-ahead hook of the durable store (internal/store). It runs with
	// the graph write lock held and must not call back into the graph.
	journal func(op JournalOp, t Triple, version uint64)
	cards   cardCache
	// scans counts index scan operations (Match / MatchIDs calls) for the
	// metrics endpoint; one relaxed atomic add per scan, negligible next to
	// the read lock the scan already takes.
	scans atomic.Uint64
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		dict:    NewDict(),
		triples: make(map[tripleKey]struct{}),
		spo:     make(map[ID]map[ID][]ID),
		pos:     make(map[ID]map[ID][]ID),
		osp:     make(map[ID]map[ID][]ID),
		psCount: make(map[ID]int),
	}
}

// Len returns the number of triples stored.
func (g *Graph) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.triples)
}

// TermCount returns the number of distinct terms in the dictionary.
func (g *Graph) TermCount() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.dict.Len()
}

// Add inserts a triple, reporting whether it was new.
func (g *Graph) Add(t Triple) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.addLocked(t)
}

// AddAll inserts a batch of triples and returns how many were new.
func (g *Graph) AddAll(ts []Triple) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for _, t := range ts {
		if g.addLocked(t) {
			n++
		}
	}
	return n
}

func (g *Graph) addLocked(t Triple) bool {
	s := g.dict.Intern(t.S)
	p := g.dict.Intern(t.P)
	o := g.dict.Intern(t.O)
	key := tripleKey{s, p, o}
	if _, dup := g.triples[key]; dup {
		return false
	}
	if g.journal != nil {
		g.journal(JournalAdd, t, g.version+1)
	}
	return g.addIDLocked(s, p, o)
}

// addIDLocked inserts a triple whose terms are already interned, by ID.
// The snapshot reader uses it to rebuild a graph without re-interning (which
// would reassign dictionary IDs); addLocked funnels through it so the index
// bookkeeping lives in one place. It does not journal — ID-level inserts
// only happen while restoring from media that IS the journal.
func (g *Graph) addIDLocked(s, p, o ID) bool {
	key := tripleKey{s, p, o}
	if _, dup := g.triples[key]; dup {
		return false
	}
	g.triples[key] = struct{}{}
	addIndex(g.spo, s, p, o)
	addIndex(g.pos, p, o, s)
	addIndex(g.osp, o, s, p)
	g.psCount[p]++
	g.version++
	return true
}

// loadSorted replaces the (empty) graph's triple set and indexes with keys
// that arrive in strictly ascending (s, p, o) order — the canonical snapshot
// order. The ordering contract is what makes bulk building fast: keys cannot
// repeat (no duplicate probes), every index can be built from contiguous runs
// with exactly-sized maps and slices (no incremental rehashing or slice
// regrowth), and the two permuted orders are obtained by one sort each over a
// flat, pointer-free array. The caller (the snapshot reader) owns the graph
// exclusively; no locking here.
func (g *Graph) loadSorted(keys []tripleKey) {
	n := len(keys)
	g.triples = make(map[tripleKey]struct{}, n)
	for _, k := range keys {
		g.triples[k] = struct{}{}
	}
	g.spo = buildRunIndex(keys)
	// The two permuted orders need a sort each. When every ID fits in 21
	// bits (up to ~2M terms — effectively always), the three components pack
	// into one uint64 whose numeric order IS the permuted key order, and
	// slices.Sort's integer fast path beats a comparator sort on 12-byte
	// structs by a wide margin. Larger dictionaries take the comparator path.
	if ID(g.dict.Len()) <= packedIDMask {
		packed := make([]uint64, n)
		for i, k := range keys {
			packed[i] = uint64(k.p)<<42 | uint64(k.o)<<21 | uint64(k.s) // (p, o, s)
		}
		slices.Sort(packed)
		g.pos = buildRunIndexPacked(packed)
		for i, k := range keys {
			packed[i] = uint64(k.o)<<42 | uint64(k.s)<<21 | uint64(k.p) // (o, s, p)
		}
		slices.Sort(packed)
		g.osp = buildRunIndexPacked(packed)
	} else {
		perm := make([]tripleKey, n)
		for i, k := range keys {
			perm[i] = tripleKey{s: k.p, p: k.o, o: k.s} // (p, o, s)
		}
		slices.SortFunc(perm, tripleKey.compare)
		g.pos = buildRunIndex(perm)
		for i, k := range keys {
			perm[i] = tripleKey{s: k.o, p: k.s, o: k.p} // (o, s, p)
		}
		slices.SortFunc(perm, tripleKey.compare)
		g.osp = buildRunIndex(perm)
	}
	g.psCount = make(map[ID]int, len(g.pos))
	for p, inner := range g.pos {
		count := 0
		for _, subjects := range inner {
			count += len(subjects)
		}
		g.psCount[p] = count
	}
	g.version += uint64(n)
}

// packedIDMask is the largest ID that fits a 21-bit packed component.
const packedIDMask = 1<<21 - 1

// buildRunIndex builds a two-level index from keys sorted ascending in the
// index's own component order (fields of each key already permuted to
// (outer, inner, value)). Runs give exact sizes up front: each outer map,
// inner map, and value slice is allocated at final size.
func buildRunIndex(sorted []tripleKey) map[ID]map[ID][]ID {
	n := len(sorted)
	outer := 0
	for i := 0; i < n; i++ {
		if i == 0 || sorted[i].s != sorted[i-1].s {
			outer++
		}
	}
	idx := make(map[ID]map[ID][]ID, outer)
	for i := 0; i < n; {
		a := sorted[i].s
		end, innerCount := i, 0
		for end < n && sorted[end].s == a {
			if end == i || sorted[end].p != sorted[end-1].p {
				innerCount++
			}
			end++
		}
		inner := make(map[ID][]ID, innerCount)
		for j := i; j < end; {
			b := sorted[j].p
			k := j
			for k < end && sorted[k].p == b {
				k++
			}
			vals := make([]ID, k-j)
			for x := j; x < k; x++ {
				vals[x-j] = sorted[x].o
			}
			inner[b] = vals
			j = k
		}
		idx[a] = inner
		i = end
	}
	return idx
}

// buildRunIndexPacked is buildRunIndex over 21-bit-packed keys
// (outer<<42 | inner<<21 | value), sorted ascending.
func buildRunIndexPacked(sorted []uint64) map[ID]map[ID][]ID {
	n := len(sorted)
	outer := 0
	for i := 0; i < n; i++ {
		if i == 0 || sorted[i]>>42 != sorted[i-1]>>42 {
			outer++
		}
	}
	idx := make(map[ID]map[ID][]ID, outer)
	for i := 0; i < n; {
		a := sorted[i] >> 42
		end, innerCount := i, 0
		for end < n && sorted[end]>>42 == a {
			if end == i || sorted[end]>>21&packedIDMask != sorted[end-1]>>21&packedIDMask {
				innerCount++
			}
			end++
		}
		inner := make(map[ID][]ID, innerCount)
		for j := i; j < end; {
			b := sorted[j] >> 21 & packedIDMask
			k := j
			for k < end && sorted[k]>>21&packedIDMask == b {
				k++
			}
			vals := make([]ID, k-j)
			for x := j; x < k; x++ {
				vals[x-j] = ID(sorted[x] & packedIDMask)
			}
			inner[ID(b)] = vals
			j = k
		}
		idx[ID(a)] = inner
		i = end
	}
	return idx
}

func addIndex(idx map[ID]map[ID][]ID, a, b, c ID) {
	inner, ok := idx[a]
	if !ok {
		inner = make(map[ID][]ID)
		idx[a] = inner
	}
	inner[b] = append(inner[b], c)
}

// Remove deletes a triple, reporting whether it was present.
func (g *Graph) Remove(t Triple) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	s, ok1 := g.dict.Lookup(t.S)
	p, ok2 := g.dict.Lookup(t.P)
	o, ok3 := g.dict.Lookup(t.O)
	if !ok1 || !ok2 || !ok3 {
		return false
	}
	key := tripleKey{s, p, o}
	if _, present := g.triples[key]; !present {
		return false
	}
	if g.journal != nil {
		g.journal(JournalRemove, t, g.version+1)
	}
	delete(g.triples, key)
	removeIndex(g.spo, s, p, o)
	removeIndex(g.pos, p, o, s)
	removeIndex(g.osp, o, s, p)
	g.version++
	g.psCount[p]--
	if g.psCount[p] == 0 {
		delete(g.psCount, p)
	}
	return true
}

func removeIndex(idx map[ID]map[ID][]ID, a, b, c ID) {
	inner := idx[a]
	list := inner[b]
	for i, v := range list {
		if v == c {
			list[i] = list[len(list)-1]
			list = list[:len(list)-1]
			break
		}
	}
	if len(list) == 0 {
		delete(inner, b)
		if len(inner) == 0 {
			delete(idx, a)
		}
	} else {
		inner[b] = list
	}
}

// JournalOp discriminates the two graph mutations for the write-ahead
// journal hook (see SetJournal).
type JournalOp uint8

const (
	// JournalAdd records the insertion of a new triple.
	JournalAdd JournalOp = 1
	// JournalRemove records the deletion of a present triple.
	JournalRemove JournalOp = 2
)

// SetJournal installs fn as the graph's write-ahead mutation journal: every
// effective Add and Remove calls fn — with the materialized triple and the
// version the mutation will establish — BEFORE touching the indexes, so a
// durable log captures the change ahead of the in-memory state. No-op
// mutations (duplicate adds, removes of absent triples) are not journaled.
//
// fn runs with the graph's write lock held: it must be fast, must not call
// back into the graph, and is responsible for its own synchronization with
// readers of whatever log it maintains. Pass nil to uninstall.
func (g *Graph) SetJournal(fn func(op JournalOp, t Triple, version uint64)) {
	g.mu.Lock()
	g.journal = fn
	g.mu.Unlock()
}

// SetVersion forces the mutation counter to v. The durable store uses it
// after restoring a snapshot so version tokens stay monotonic across
// restarts (a freshly rebuilt graph would otherwise restart counting at its
// triple count, and write-ahead-log records stamped by the previous process
// could alias older epochs). Derived caches validate against the version, so
// moving it simply invalidates them.
func (g *Graph) SetVersion(v uint64) {
	g.mu.Lock()
	g.version = v
	g.mu.Unlock()
}

// Has reports whether the graph contains the exact triple.
func (g *Graph) Has(t Triple) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	s, ok1 := g.dict.Lookup(t.S)
	p, ok2 := g.dict.Lookup(t.P)
	o, ok3 := g.dict.Lookup(t.O)
	if !ok1 || !ok2 || !ok3 {
		return false
	}
	_, present := g.triples[tripleKey{s, p, o}]
	return present
}

// Match calls fn for every triple matching the pattern; rdf.Any in any
// position acts as a wildcard. Iteration stops early when fn returns false.
// The triple passed to fn is fully materialized (terms, not IDs).
func (g *Graph) Match(s, p, o Term, fn func(Triple) bool) {
	g.scans.Add(1)
	g.mu.RLock()
	defer g.mu.RUnlock()
	g.matchLocked(s, p, o, fn)
}

// IndexScans returns the lifetime count of index scan operations (Match and
// MatchIDs calls) against this graph, for diagnostics and GET /metrics.
func (g *Graph) IndexScans() uint64 { return g.scans.Load() }

// matchCtxPollEvery is how many rows a MatchCtx scan yields between context
// checks: frequent enough that a full-graph scan notices cancellation
// quickly, infrequent enough that the check cost stays negligible.
const matchCtxPollEvery = 1024

// MatchCtx is Match under a context: the scan stops early once ctx is
// cancelled or its deadline expires, and the context error is returned.
// The check runs every matchCtxPollEvery rows, so a cancelled scan may
// deliver up to that many extra triples before stopping.
func (g *Graph) MatchCtx(ctx context.Context, s, p, o Term, fn func(Triple) bool) error {
	if ctx == nil || ctx.Done() == nil {
		g.Match(s, p, o, fn)
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	n := 0
	var ctxErr error
	g.Match(s, p, o, func(t Triple) bool {
		if n++; n%matchCtxPollEvery == 0 {
			if err := ctx.Err(); err != nil {
				ctxErr = err
				return false
			}
		}
		return fn(t)
	})
	return ctxErr
}

func (g *Graph) matchLocked(s, p, o Term, fn func(Triple) bool) {
	sID, sOK := g.resolve(s)
	pID, pOK := g.resolve(p)
	oID, oOK := g.resolve(o)
	// A bound position with an unknown term can never match.
	if !sOK || !pOK || !oOK {
		return
	}
	switch {
	case sID != 0 && pID != 0 && oID != 0:
		if _, present := g.triples[tripleKey{sID, pID, oID}]; present {
			fn(Triple{g.dict.Term(sID), g.dict.Term(pID), g.dict.Term(oID)})
		}
	case sID != 0 && pID != 0:
		st, pt := g.dict.Term(sID), g.dict.Term(pID)
		for _, obj := range g.spo[sID][pID] {
			if !fn(Triple{st, pt, g.dict.Term(obj)}) {
				return
			}
		}
	case sID != 0 && oID != 0:
		st, ot := g.dict.Term(sID), g.dict.Term(oID)
		for _, pred := range g.osp[oID][sID] {
			if !fn(Triple{st, g.dict.Term(pred), ot}) {
				return
			}
		}
	case pID != 0 && oID != 0:
		pt, ot := g.dict.Term(pID), g.dict.Term(oID)
		for _, sub := range g.pos[pID][oID] {
			if !fn(Triple{g.dict.Term(sub), pt, ot}) {
				return
			}
		}
	case sID != 0:
		st := g.dict.Term(sID)
		for pred, objs := range g.spo[sID] {
			pt := g.dict.Term(pred)
			for _, obj := range objs {
				if !fn(Triple{st, pt, g.dict.Term(obj)}) {
					return
				}
			}
		}
	case pID != 0:
		pt := g.dict.Term(pID)
		for obj, subs := range g.pos[pID] {
			ot := g.dict.Term(obj)
			for _, sub := range subs {
				if !fn(Triple{g.dict.Term(sub), pt, ot}) {
					return
				}
			}
		}
	case oID != 0:
		ot := g.dict.Term(oID)
		for sub, preds := range g.osp[oID] {
			st := g.dict.Term(sub)
			for _, pred := range preds {
				if !fn(Triple{st, g.dict.Term(pred), ot}) {
					return
				}
			}
		}
	default:
		for key := range g.triples {
			t := Triple{g.dict.Term(key.s), g.dict.Term(key.p), g.dict.Term(key.o)}
			if !fn(t) {
				return
			}
		}
	}
}

// resolve maps a pattern term to an ID: Any yields (0, true); a known term
// yields its ID; an unknown term yields (0, false), meaning "cannot match".
func (g *Graph) resolve(t Term) (ID, bool) {
	if t == Any {
		return 0, true
	}
	id, ok := g.dict.Lookup(t)
	if !ok {
		return 0, false
	}
	return id, true
}

// MatchCount returns the number of triples matching the pattern without
// materializing them. It is the cardinality estimator used for BGP join
// ordering in the SPARQL engine.
func (g *Graph) MatchCount(s, p, o Term) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	sID, sOK := g.resolve(s)
	pID, pOK := g.resolve(p)
	oID, oOK := g.resolve(o)
	if !sOK || !pOK || !oOK {
		return 0
	}
	switch {
	case sID != 0 && pID != 0 && oID != 0:
		if _, present := g.triples[tripleKey{sID, pID, oID}]; present {
			return 1
		}
		return 0
	case sID != 0 && pID != 0:
		return len(g.spo[sID][pID])
	case sID != 0 && oID != 0:
		return len(g.osp[oID][sID])
	case pID != 0 && oID != 0:
		return len(g.pos[pID][oID])
	case sID != 0:
		n := 0
		for _, objs := range g.spo[sID] {
			n += len(objs)
		}
		return n
	case pID != 0:
		return g.psCount[pID]
	case oID != 0:
		n := 0
		for _, preds := range g.osp[oID] {
			n += len(preds)
		}
		return n
	default:
		return len(g.triples)
	}
}

// Triples returns all triples in deterministic (sorted) order. Intended for
// serialization and tests; prefer Match for queries.
func (g *Graph) Triples() []Triple {
	out := make([]Triple, 0, g.Len())
	g.Match(Any, Any, Any, func(t Triple) bool {
		out = append(out, t)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Objects returns the distinct objects of (s, p, ?o). The result slice is
// preallocated from the index entry; since triples are unique, the object
// list of a fixed (s, p) needs no deduplication.
func (g *Graph) Objects(s, p Term) []Term {
	g.mu.RLock()
	defer g.mu.RUnlock()
	sID, sOK := g.resolve(s)
	pID, pOK := g.resolve(p)
	if !sOK || !pOK {
		return nil
	}
	if sID != 0 && pID != 0 {
		objs := g.spo[sID][pID]
		if len(objs) == 0 {
			return nil
		}
		out := make([]Term, len(objs))
		for i, o := range objs {
			out[i] = g.dict.Term(o)
		}
		return out
	}
	// Wildcard position(s): fall back to a dedup scan.
	var out []Term
	seen := make(map[ID]struct{})
	g.matchIDsLocked(sID, pID, 0, func(_, _, o ID) bool {
		if _, dup := seen[o]; !dup {
			seen[o] = struct{}{}
			out = append(out, g.dict.Term(o))
		}
		return true
	})
	return out
}

// Object returns one object of (s, p, ?o), or the zero Term if none exists.
func (g *Graph) Object(s, p Term) Term {
	var out Term
	g.Match(s, p, Any, func(t Triple) bool {
		out = t.O
		return false
	})
	return out
}

// Subjects returns the distinct subjects of (?s, p, o), preallocated from
// the POS index entry (unique triples make the subject list duplicate-free).
func (g *Graph) Subjects(p, o Term) []Term {
	g.mu.RLock()
	defer g.mu.RUnlock()
	pID, pOK := g.resolve(p)
	oID, oOK := g.resolve(o)
	if !pOK || !oOK {
		return nil
	}
	if pID != 0 && oID != 0 {
		subs := g.pos[pID][oID]
		if len(subs) == 0 {
			return nil
		}
		out := make([]Term, len(subs))
		for i, s := range subs {
			out[i] = g.dict.Term(s)
		}
		return out
	}
	var out []Term
	seen := make(map[ID]struct{})
	g.matchIDsLocked(0, pID, oID, func(s, _, _ ID) bool {
		if _, dup := seen[s]; !dup {
			seen[s] = struct{}{}
			out = append(out, g.dict.Term(s))
		}
		return true
	})
	return out
}

// Predicates returns the distinct predicates appearing in the graph, sorted.
func (g *Graph) Predicates() []Term {
	g.mu.RLock()
	out := make([]Term, 0, len(g.psCount))
	for p := range g.psCount {
		out = append(out, g.dict.Term(p))
	}
	g.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// PredicateCount returns the number of triples whose predicate is p.
func (g *Graph) PredicateCount(p Term) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	id, ok := g.dict.Lookup(p)
	if !ok {
		return 0
	}
	return g.psCount[id]
}

// SubjectsWithPredicate returns the distinct subjects that have at least one
// value for predicate p. The dedup set and result are presized from the
// predicate's triple count (an upper bound on its distinct subjects).
func (g *Graph) SubjectsWithPredicate(p Term) []Term {
	g.mu.RLock()
	defer g.mu.RUnlock()
	pID, ok := g.resolve(p)
	if !ok || pID == 0 {
		return nil
	}
	n := g.psCount[pID]
	seen := make(map[ID]struct{}, n)
	out := make([]Term, 0, n)
	for _, subs := range g.pos[pID] {
		for _, s := range subs {
			if _, dup := seen[s]; !dup {
				seen[s] = struct{}{}
				out = append(out, g.dict.Term(s))
			}
		}
	}
	return out
}

// Clone returns a deep copy of the graph (fresh dictionary and indexes).
func (g *Graph) Clone() *Graph {
	out := NewGraph()
	g.Match(Any, Any, Any, func(t Triple) bool {
		out.Add(t)
		return true
	})
	return out
}

// Merge adds every triple of other into g and returns the number added.
func (g *Graph) Merge(other *Graph) int {
	n := 0
	other.Match(Any, Any, Any, func(t Triple) bool {
		if g.Add(t) {
			n++
		}
		return true
	})
	return n
}

// Stats summarizes a graph for diagnostics and the efficiency experiments.
type Stats struct {
	Triples    int
	Terms      int
	Subjects   int
	Predicates int
	Classes    int
	Literals   int
}

// Stats computes summary statistics over the graph.
func (g *Graph) Stats() Stats {
	g.mu.RLock()
	defer g.mu.RUnlock()
	st := Stats{
		Triples:    len(g.triples),
		Terms:      g.dict.Len(),
		Subjects:   len(g.spo),
		Predicates: len(g.psCount),
	}
	for _, t := range g.dict.toTerm {
		if t.IsLiteral() {
			st.Literals++
		}
	}
	if typeID, ok := g.dict.Lookup(NewIRI(RDFType)); ok {
		st.Classes = len(g.pos[typeID])
	}
	return st
}
