package rdf

// Well-known vocabulary IRIs used across the system.
const (
	RDFNS  = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
	RDFSNS = "http://www.w3.org/2000/01/rdf-schema#"
	XSDNS  = "http://www.w3.org/2001/XMLSchema#"
	OWLNS  = "http://www.w3.org/2002/07/owl#"

	RDFType       = RDFNS + "type"
	RDFProperty   = RDFNS + "Property"
	RDFLangString = RDFNS + "langString"
	RDFNil        = RDFNS + "nil"
	RDFFirst      = RDFNS + "first"
	RDFRest       = RDFNS + "rest"

	RDFSClass         = RDFSNS + "Class"
	RDFSSubClassOf    = RDFSNS + "subClassOf"
	RDFSSubPropertyOf = RDFSNS + "subPropertyOf"
	RDFSDomain        = RDFSNS + "domain"
	RDFSRange         = RDFSNS + "range"
	RDFSLabel         = RDFSNS + "label"
	RDFSComment       = RDFSNS + "comment"
	RDFSResource      = RDFSNS + "Resource"
	RDFSLiteral       = RDFSNS + "Literal"

	OWLClass              = OWLNS + "Class"
	OWLFunctionalProperty = OWLNS + "FunctionalProperty"
	OWLNamedIndividual    = OWLNS + "NamedIndividual"
	OWLObjectProperty     = OWLNS + "ObjectProperty"
	OWLDatatypeProperty   = OWLNS + "DatatypeProperty"

	XSDString             = XSDNS + "string"
	XSDBoolean            = XSDNS + "boolean"
	XSDInteger            = XSDNS + "integer"
	XSDInt                = XSDNS + "int"
	XSDLong               = XSDNS + "long"
	XSDShort              = XSDNS + "short"
	XSDByte               = XSDNS + "byte"
	XSDDecimal            = XSDNS + "decimal"
	XSDFloat              = XSDNS + "float"
	XSDDouble             = XSDNS + "double"
	XSDDate               = XSDNS + "date"
	XSDDateTime           = XSDNS + "dateTime"
	XSDTime               = XSDNS + "time"
	XSDGYear              = XSDNS + "gYear"
	XSDGMonth             = XSDNS + "gMonth"
	XSDAnyURI             = XSDNS + "anyURI"
	XSDNonNegativeInteger = XSDNS + "nonNegativeInteger"
	XSDNonPositiveInteger = XSDNS + "nonPositiveInteger"
	XSDPositiveInteger    = XSDNS + "positiveInteger"
	XSDNegativeInteger    = XSDNS + "negativeInteger"
	XSDUnsignedInt        = XSDNS + "unsignedInt"
	XSDUnsignedLong       = XSDNS + "unsignedLong"
)

// WellKnownPrefixes maps the default prefix labels offered by parsers and
// serializers when no explicit @prefix directives are present.
var WellKnownPrefixes = map[string]string{
	"rdf":  RDFNS,
	"rdfs": RDFSNS,
	"xsd":  XSDNS,
	"owl":  OWLNS,
}
