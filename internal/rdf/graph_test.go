package rdf

import (
	"fmt"
	"testing"
	"testing/quick"
)

func ex(n string) Term { return NewIRI("http://ex.org/" + n) }

func testGraph() *Graph {
	g := NewGraph()
	g.Add(Triple{ex("laptop1"), ex("manufacturer"), ex("dell")})
	g.Add(Triple{ex("laptop1"), ex("price"), NewInteger(900)})
	g.Add(Triple{ex("laptop2"), ex("manufacturer"), ex("dell")})
	g.Add(Triple{ex("laptop2"), ex("price"), NewInteger(1000)})
	g.Add(Triple{ex("laptop3"), ex("manufacturer"), ex("lenovo")})
	g.Add(Triple{ex("laptop3"), ex("price"), NewInteger(820)})
	g.Add(Triple{ex("laptop1"), NewIRI(RDFType), ex("Laptop")})
	g.Add(Triple{ex("laptop2"), NewIRI(RDFType), ex("Laptop")})
	g.Add(Triple{ex("laptop3"), NewIRI(RDFType), ex("Laptop")})
	return g
}

func TestAddDeduplicates(t *testing.T) {
	g := NewGraph()
	tr := Triple{ex("s"), ex("p"), ex("o")}
	if !g.Add(tr) {
		t.Fatal("first Add must report new")
	}
	if g.Add(tr) {
		t.Fatal("second Add must report duplicate")
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
}

func TestMatchPatterns(t *testing.T) {
	g := testGraph()
	count := func(s, p, o Term) int {
		n := 0
		g.Match(s, p, o, func(Triple) bool { n++; return true })
		return n
	}
	cases := []struct {
		s, p, o Term
		want    int
	}{
		{Any, Any, Any, 9},
		{ex("laptop1"), Any, Any, 3},
		{Any, ex("price"), Any, 3},
		{Any, Any, ex("dell"), 2},
		{ex("laptop1"), ex("price"), Any, 1},
		{ex("laptop1"), Any, ex("dell"), 1},
		{Any, ex("manufacturer"), ex("dell"), 2},
		{ex("laptop1"), ex("manufacturer"), ex("dell"), 1},
		{ex("laptop1"), ex("manufacturer"), ex("lenovo"), 0},
		{ex("nonexistent"), Any, Any, 0},
		{Any, ex("nonexistent"), Any, 0},
	}
	for _, c := range cases {
		if got := count(c.s, c.p, c.o); got != c.want {
			t.Errorf("Match(%v %v %v) matched %d, want %d", c.s, c.p, c.o, got, c.want)
		}
	}
}

func TestMatchCountAgreesWithMatch(t *testing.T) {
	g := testGraph()
	patterns := []Term{Any, ex("laptop1"), ex("price"), ex("dell"), ex("nope")}
	for _, s := range patterns {
		for _, p := range patterns {
			for _, o := range patterns {
				n := 0
				g.Match(s, p, o, func(Triple) bool { n++; return true })
				if got := g.MatchCount(s, p, o); got != n {
					t.Errorf("MatchCount(%v %v %v) = %d, Match found %d", s, p, o, got, n)
				}
			}
		}
	}
}

func TestMatchEarlyExit(t *testing.T) {
	g := testGraph()
	n := 0
	g.Match(Any, Any, Any, func(Triple) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("early exit: saw %d triples, want 3", n)
	}
}

func TestRemove(t *testing.T) {
	g := testGraph()
	tr := Triple{ex("laptop1"), ex("price"), NewInteger(900)}
	if !g.Remove(tr) {
		t.Fatal("Remove must report success for present triple")
	}
	if g.Remove(tr) {
		t.Fatal("Remove must report failure for absent triple")
	}
	if g.Has(tr) {
		t.Fatal("triple still present after Remove")
	}
	if g.MatchCount(Any, ex("price"), Any) != 2 {
		t.Fatal("price index not updated after Remove")
	}
	// Re-adding works.
	if !g.Add(tr) {
		t.Fatal("re-Add after Remove must succeed")
	}
}

func TestObjectsSubjects(t *testing.T) {
	g := testGraph()
	objs := g.Objects(ex("laptop1"), ex("manufacturer"))
	if len(objs) != 1 || objs[0] != ex("dell") {
		t.Errorf("Objects = %v", objs)
	}
	subs := g.Subjects(ex("manufacturer"), ex("dell"))
	if len(subs) != 2 {
		t.Errorf("Subjects = %v", subs)
	}
	if o := g.Object(ex("laptop3"), ex("price")); o != NewInteger(820) {
		t.Errorf("Object = %v", o)
	}
	if o := g.Object(ex("laptop3"), ex("missing")); !o.IsZero() {
		t.Errorf("Object of missing predicate = %v, want zero", o)
	}
}

func TestPredicates(t *testing.T) {
	g := testGraph()
	preds := g.Predicates()
	if len(preds) != 3 {
		t.Fatalf("Predicates = %v", preds)
	}
	if g.PredicateCount(ex("price")) != 3 {
		t.Errorf("PredicateCount(price) = %d", g.PredicateCount(ex("price")))
	}
	subs := g.SubjectsWithPredicate(ex("price"))
	if len(subs) != 3 {
		t.Errorf("SubjectsWithPredicate = %v", subs)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	g := testGraph()
	c := g.Clone()
	if c.Len() != g.Len() {
		t.Fatalf("clone Len = %d, want %d", c.Len(), g.Len())
	}
	c.Add(Triple{ex("new"), ex("p"), ex("o")})
	if g.Has(Triple{ex("new"), ex("p"), ex("o")}) {
		t.Fatal("mutation of clone leaked into original")
	}
}

func TestMerge(t *testing.T) {
	g := testGraph()
	h := NewGraph()
	h.Add(Triple{ex("x"), ex("p"), ex("y")})
	h.Add(Triple{ex("laptop1"), ex("price"), NewInteger(900)}) // duplicate
	if n := g.Merge(h); n != 1 {
		t.Errorf("Merge added %d, want 1", n)
	}
}

func TestStats(t *testing.T) {
	g := testGraph()
	st := g.Stats()
	if st.Triples != 9 {
		t.Errorf("Stats.Triples = %d", st.Triples)
	}
	if st.Classes != 1 {
		t.Errorf("Stats.Classes = %d, want 1", st.Classes)
	}
	if st.Literals != 3 {
		t.Errorf("Stats.Literals = %d, want 3", st.Literals)
	}
	if st.Predicates != 3 {
		t.Errorf("Stats.Predicates = %d, want 3", st.Predicates)
	}
}

func TestTriplesSortedDeterministic(t *testing.T) {
	g := testGraph()
	a := g.Triples()
	b := g.Triples()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Triples() not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i].Less(a[i-1]) {
			t.Fatalf("Triples() not sorted at %d", i)
		}
	}
}

func TestDictInternStable(t *testing.T) {
	d := NewDict()
	a := d.Intern(ex("a"))
	b := d.Intern(ex("b"))
	if a == b {
		t.Fatal("distinct terms must get distinct IDs")
	}
	if d.Intern(ex("a")) != a {
		t.Fatal("re-interning must return the same ID")
	}
	if d.Term(a) != ex("a") {
		t.Fatal("Term(ID) roundtrip failed")
	}
	if _, ok := d.Lookup(ex("c")); ok {
		t.Fatal("Lookup of never-interned term must fail")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
}

// Property: for any set of triples, graph Add/Len/Has behave like a set.
func TestGraphSetSemanticsQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		g := NewGraph()
		set := map[Triple]struct{}{}
		for _, b := range raw {
			tr := Triple{
				ex(fmt.Sprintf("s%d", b%5)),
				ex(fmt.Sprintf("p%d", (b>>2)%3)),
				ex(fmt.Sprintf("o%d", (b>>4)%4)),
			}
			_, dup := set[tr]
			set[tr] = struct{}{}
			if g.Add(tr) == dup {
				return false // Add's "new" report disagreed with the model
			}
		}
		if g.Len() != len(set) {
			return false
		}
		for tr := range set {
			if !g.Has(tr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Remove after Add restores absence, and indexes stay consistent.
func TestGraphAddRemoveQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		g := NewGraph()
		var ts []Triple
		for _, b := range raw {
			tr := Triple{
				ex(fmt.Sprintf("s%d", b%4)),
				ex(fmt.Sprintf("p%d", (b>>2)%2)),
				ex(fmt.Sprintf("o%d", (b>>4)%4)),
			}
			g.Add(tr)
			ts = append(ts, tr)
		}
		for _, tr := range ts {
			g.Remove(tr)
		}
		if g.Len() != 0 {
			return false
		}
		n := 0
		g.Match(Any, Any, Any, func(Triple) bool { n++; return true })
		return n == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGraphAdd(b *testing.B) {
	for i := 0; b.Loop(); i++ {
		g := NewGraph()
		for j := 0; j < 1000; j++ {
			g.Add(Triple{
				ex(fmt.Sprintf("s%d", j%100)),
				ex(fmt.Sprintf("p%d", j%10)),
				NewInteger(int64(j)),
			})
		}
	}
}

func BenchmarkGraphMatchPO(b *testing.B) {
	g := NewGraph()
	for j := 0; j < 10000; j++ {
		g.Add(Triple{
			ex(fmt.Sprintf("s%d", j)),
			ex(fmt.Sprintf("p%d", j%10)),
			ex(fmt.Sprintf("o%d", j%100)),
		})
	}
	b.ResetTimer()
	for b.Loop() {
		n := 0
		g.Match(Any, ex("p3"), ex("o13"), func(Triple) bool { n++; return true })
	}
}

// BenchmarkDictionary quantifies dictionary interning vs raw map-of-strings
// (ablation #4 in DESIGN.md).
func BenchmarkDictionary(b *testing.B) {
	terms := make([]Term, 1000)
	for i := range terms {
		terms[i] = ex(fmt.Sprintf("term%d", i))
	}
	b.Run("intern", func(b *testing.B) {
		d := NewDict()
		for _, t := range terms {
			d.Intern(t)
		}
		b.ResetTimer()
		for b.Loop() {
			for _, t := range terms {
				d.Intern(t)
			}
		}
	})
	b.Run("stringmap", func(b *testing.B) {
		m := map[string]int{}
		for i, t := range terms {
			m[t.String()] = i
		}
		b.ResetTimer()
		for b.Loop() {
			for _, t := range terms {
				_ = m[t.String()]
			}
		}
	})
}
