package rdf

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary snapshot format for graphs: a dictionary section (terms in ID
// order) followed by a triple section (ID three-tuples, varint-encoded).
// Loading a snapshot is much faster than re-parsing Turtle and preserves
// dictionary IDs, so servers can persist materialized graphs.
//
// Layout:
//
//	magic "RDFA" | version u8
//	termCount uvarint
//	per term: kind u8 | value | datatype | lang   (strings are uvarint len + bytes)
//	tripleCount uvarint
//	per triple: s uvarint | p uvarint | o uvarint (dictionary IDs)

const (
	binaryMagic   = "RDFA"
	binaryVersion = 1
)

// WriteBinary serializes the graph in the snapshot format.
func (g *Graph) WriteBinary(w io.Writer) error {
	g.mu.RLock()
	defer g.mu.RUnlock()
	bw := bufio.NewWriterSize(w, 64<<10)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(binaryVersion); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	writeString := func(s string) error {
		if err := writeUvarint(uint64(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	// Dictionary.
	if err := writeUvarint(uint64(g.dict.Len())); err != nil {
		return err
	}
	for _, t := range g.dict.toTerm {
		if err := bw.WriteByte(byte(t.Kind)); err != nil {
			return err
		}
		if err := writeString(t.Value); err != nil {
			return err
		}
		if err := writeString(t.Datatype); err != nil {
			return err
		}
		if err := writeString(t.Lang); err != nil {
			return err
		}
	}
	// Triples.
	if err := writeUvarint(uint64(len(g.triples))); err != nil {
		return err
	}
	for key := range g.triples {
		if err := writeUvarint(uint64(key.s)); err != nil {
			return err
		}
		if err := writeUvarint(uint64(key.p)); err != nil {
			return err
		}
		if err := writeUvarint(uint64(key.o)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary loads a graph from the snapshot format.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("rdf: reading snapshot magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("rdf: not a graph snapshot (magic %q)", magic)
	}
	version, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("rdf: unsupported snapshot version %d", version)
	}
	readString := func() (string, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return "", err
		}
		if n > 1<<24 {
			return "", fmt.Errorf("rdf: implausible string length %d", n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	termCount, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if termCount > 1<<30 {
		return nil, fmt.Errorf("rdf: implausible term count %d", termCount)
	}
	terms := make([]Term, termCount)
	for i := range terms {
		kind, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		if TermKind(kind) > KindLiteral {
			return nil, fmt.Errorf("rdf: bad term kind %d", kind)
		}
		value, err := readString()
		if err != nil {
			return nil, err
		}
		datatype, err := readString()
		if err != nil {
			return nil, err
		}
		lang, err := readString()
		if err != nil {
			return nil, err
		}
		terms[i] = Term{Kind: TermKind(kind), Value: value, Datatype: datatype, Lang: lang}
	}
	tripleCount, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	g := NewGraph()
	readID := func() (ID, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, err
		}
		if v == 0 || v > termCount {
			return 0, fmt.Errorf("rdf: term ID %d out of range", v)
		}
		return ID(v), nil
	}
	for i := uint64(0); i < tripleCount; i++ {
		s, err := readID()
		if err != nil {
			return nil, err
		}
		p, err := readID()
		if err != nil {
			return nil, err
		}
		o, err := readID()
		if err != nil {
			return nil, err
		}
		g.Add(Triple{S: terms[s-1], P: terms[p-1], O: terms[o-1]})
	}
	return g, nil
}
