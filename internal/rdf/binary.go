package rdf

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// Binary snapshot format for graphs: a dictionary section (terms in ID
// order) followed by a triple section (ID three-tuples, varint-encoded,
// sorted by (s, p, o)). Loading a snapshot is much faster than re-parsing
// Turtle and preserves dictionary IDs, so servers can persist materialized
// graphs and the durable store (internal/store) can use snapshots as
// checkpoint segments.
//
// Layout (version 2):
//
//	magic "RDFA" | version u8
//	termCount uvarint
//	per term: kind u8 | value | datatype | lang   (strings are uvarint len + bytes)
//	tripleCount uvarint
//	per triple: s uvarint | p uvarint | o uvarint (dictionary IDs, strictly
//	            ascending (s,p,o) order)
//
// Version 2 guarantees two properties version 1 documented but broke:
//
//   - Determinism: triples are emitted in sorted ID order, so two snapshots
//     of the same graph are byte-identical (checksummable, dedup-able).
//   - ID stability: ReadBinary interns the dictionary section first, in ID
//     order, then adds triples by ID — every term keeps the exact ID it had
//     when the snapshot was written, including terms no triple references.
//
// Version-1 files (same layout, unsorted triples) are still readable: the
// dictionary-first decode path restores their IDs too; only the sorted-order
// invariant is not enforced for them.

const (
	binaryMagic = "RDFA"
	// binaryVersion is the current write version. Version 1 had the same
	// byte layout but wrote triples in Go map-iteration order (so identical
	// graphs produced different bytes) and was decoded triple-first (so
	// dictionary IDs were reassigned and orphan terms dropped).
	binaryVersion = 2
	// maxBinaryString bounds a decoded string length; anything larger is
	// treated as corruption rather than allocated.
	maxBinaryString = 1 << 24
	// maxBinaryTerms bounds the decoded dictionary size.
	maxBinaryTerms = 1 << 30
	// maxBinaryPresize caps the allocation pre-sizing hints taken from the
	// header counts: a corrupt count then costs at most one over-sized map,
	// not gigabytes, before the decode fails on the (short) real input.
	maxBinaryPresize = 1 << 20
)

// WriteBinary serializes the graph in the snapshot format. The output is
// deterministic: two calls over the same graph content produce identical
// bytes regardless of insertion history.
func (g *Graph) WriteBinary(w io.Writer) error {
	_, err := g.SnapshotBinary(w)
	return err
}

// SnapshotBinary is WriteBinary returning the graph version the snapshot
// captured. The version is read under the same lock that guards the
// serialization, so the pair (bytes, version) is atomic — the durable store
// uses it as the checkpoint epoch.
func (g *Graph) SnapshotBinary(w io.Writer) (uint64, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	version := g.version
	bw := bufio.NewWriterSize(w, 64<<10)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return 0, err
	}
	if err := bw.WriteByte(binaryVersion); err != nil {
		return 0, err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	writeString := func(s string) error {
		if err := writeUvarint(uint64(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	// Dictionary, in ID order (toTerm[i] holds the term for ID i+1).
	if err := writeUvarint(uint64(g.dict.Len())); err != nil {
		return 0, err
	}
	for _, t := range g.dict.toTerm {
		if err := bw.WriteByte(byte(t.Kind)); err != nil {
			return 0, err
		}
		if err := writeString(t.Value); err != nil {
			return 0, err
		}
		if err := writeString(t.Datatype); err != nil {
			return 0, err
		}
		if err := writeString(t.Lang); err != nil {
			return 0, err
		}
	}
	// Triples, sorted by (s, p, o) ID so the byte stream is canonical.
	keys := make([]tripleKey, 0, len(g.triples))
	for key := range g.triples {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })
	if err := writeUvarint(uint64(len(keys))); err != nil {
		return 0, err
	}
	for _, key := range keys {
		if err := writeUvarint(uint64(key.s)); err != nil {
			return 0, err
		}
		if err := writeUvarint(uint64(key.p)); err != nil {
			return 0, err
		}
		if err := writeUvarint(uint64(key.o)); err != nil {
			return 0, err
		}
	}
	return version, bw.Flush()
}

// less orders triple keys by (s, p, o) — the canonical snapshot order and
// the SPO key-section order of segment files.
func (k tripleKey) less(o tripleKey) bool {
	if k.s != o.s {
		return k.s < o.s
	}
	if k.p != o.p {
		return k.p < o.p
	}
	return k.o < o.o
}

// compare is less as a three-way comparison, for slices.SortFunc.
func (k tripleKey) compare(o tripleKey) int {
	switch {
	case k.less(o):
		return -1
	case o.less(k):
		return 1
	default:
		return 0
	}
}

// ReadBinary loads a graph from the snapshot format, preserving dictionary
// IDs: the dictionary section is interned first, in ID order, so every term
// (including terms no triple references) keeps the ID it was written with.
// Trailing bytes after the last triple are rejected as corruption.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	g, err := readBinaryInto(br)
	if err != nil {
		return nil, err
	}
	// The triple section is the last one; any byte after it means the file
	// was truncated-and-glued, doubly written, or otherwise corrupt.
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("rdf: trailing garbage after snapshot triple section")
	}
	return g, nil
}

func readBinaryInto(br *bufio.Reader) (*Graph, error) {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("rdf: reading snapshot magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("rdf: not a graph snapshot (magic %q)", magic)
	}
	version, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if version != 1 && version != binaryVersion {
		return nil, fmt.Errorf("rdf: unsupported snapshot version %d (this build reads versions 1 and %d; re-export the snapshot with datagen)", version, binaryVersion)
	}
	var scratch []byte
	readString := func() (string, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return "", err
		}
		if n > maxBinaryString {
			return "", fmt.Errorf("rdf: implausible string length %d", n)
		}
		if n == 0 {
			return "", nil
		}
		if uint64(cap(scratch)) < n {
			scratch = make([]byte, n)
		}
		b := scratch[:n]
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	termCount, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if termCount > maxBinaryTerms {
		return nil, fmt.Errorf("rdf: implausible term count %d", termCount)
	}
	// Dictionary first, in ID order: interning into a fresh graph assigns
	// IDs 1..termCount exactly as written, which is what keeps snapshots
	// ID-stable across save/load (and WAL records replayable by ID).
	g := NewGraph()
	g.dict.Grow(int(min(termCount, maxBinaryPresize)))
	for i := uint64(0); i < termCount; i++ {
		kind, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		if TermKind(kind) > KindLiteral {
			return nil, fmt.Errorf("rdf: bad term kind %d", kind)
		}
		value, err := readString()
		if err != nil {
			return nil, err
		}
		datatype, err := readString()
		if err != nil {
			return nil, err
		}
		lang, err := readString()
		if err != nil {
			return nil, err
		}
		id := g.dict.Intern(Term{Kind: TermKind(kind), Value: value, Datatype: datatype, Lang: lang})
		if uint64(id) != i+1 {
			return nil, fmt.Errorf("rdf: duplicate dictionary term at ID %d", i+1)
		}
	}
	tripleCount, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if version == 1 {
		// Version 1 inserts triple-at-a-time; pre-size the triple map and the
		// two index maps whose outer key count can approach the term count
		// (subjects, objects) so growth doesn't rehash. Version 2 skips this:
		// loadSorted below replaces the maps wholesale at exact sizes.
		g.triples = make(map[tripleKey]struct{}, int(min(tripleCount, maxBinaryPresize)))
		outerHint := int(min(termCount, maxBinaryPresize))
		g.spo = make(map[ID]map[ID][]ID, outerHint)
		g.osp = make(map[ID]map[ID][]ID, outerHint)
	}
	readID := func() (ID, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, err
		}
		if v == 0 || v > termCount {
			return 0, fmt.Errorf("rdf: term ID %d out of range", v)
		}
		return ID(v), nil
	}
	var prev tripleKey
	var keys []tripleKey // v2 only: collected for the bulk index build
	if version >= 2 {
		keys = make([]tripleKey, 0, int(min(tripleCount, maxBinaryPresize)))
	}
	for i := uint64(0); i < tripleCount; i++ {
		s, err := readID()
		if err != nil {
			return nil, err
		}
		p, err := readID()
		if err != nil {
			return nil, err
		}
		o, err := readID()
		if err != nil {
			return nil, err
		}
		key := tripleKey{s, p, o}
		if version >= 2 {
			// Version 2 promises canonical order; out-of-order or duplicate
			// keys mean the file was not produced by WriteBinary. Strict
			// ascent doubles as the duplicate check, which is what lets
			// loadSorted build the indexes without probing.
			if i > 0 && !prev.less(key) {
				return nil, fmt.Errorf("rdf: snapshot triples out of canonical order at index %d", i)
			}
			prev = key
			keys = append(keys, key)
			continue
		}
		// Version 1 made no ordering promise: insert one at a time, by ID (the
		// dictionary is already populated, so no re-interning happens and no
		// term can change identity), tolerating duplicates.
		g.addIDLocked(s, p, o)
	}
	if version >= 2 {
		g.loadSorted(keys)
	}
	return g, nil
}

// ---- term wire codec ----
//
// The WAL of the durable store frames individual triples outside a snapshot;
// it reuses the snapshot's term encoding via the byte-slice codec below so
// both layers stay in sync.

// AppendTermBinary appends the snapshot wire encoding of t (kind byte, then
// value/datatype/lang as uvarint-length-prefixed strings) to dst.
func AppendTermBinary(dst []byte, t Term) []byte {
	dst = append(dst, byte(t.Kind))
	for _, s := range [...]string{t.Value, t.Datatype, t.Lang} {
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		dst = append(dst, s...)
	}
	return dst
}

// DecodeTermBinary decodes one term from the front of b, returning the term
// and the number of bytes consumed.
func DecodeTermBinary(b []byte) (Term, int, error) {
	if len(b) < 1 {
		return Term{}, 0, fmt.Errorf("rdf: short term encoding")
	}
	kind := TermKind(b[0])
	if kind > KindLiteral {
		return Term{}, 0, fmt.Errorf("rdf: bad term kind %d", b[0])
	}
	off := 1
	var fields [3]string
	for i := range fields {
		n, sz := binary.Uvarint(b[off:])
		if sz <= 0 || n > maxBinaryString {
			return Term{}, 0, fmt.Errorf("rdf: bad term string length")
		}
		off += sz
		if uint64(len(b)-off) < n {
			return Term{}, 0, fmt.Errorf("rdf: short term encoding")
		}
		fields[i] = string(b[off : off+int(n)])
		off += int(n)
	}
	return Term{Kind: kind, Value: fields[0], Datatype: fields[1], Lang: fields[2]}, off, nil
}
