package rdf

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseTurtle drives the Turtle reader with arbitrary bytes: any input
// must produce triples or a parse error, never a panic. The seeds cover
// prefixes, literals (typed, tagged, escaped, multiline), lists of objects,
// blank nodes, comments, and malformed fragments.
func FuzzParseTurtle(f *testing.F) {
	seeds := []string{
		"<http://e/s> <http://e/p> <http://e/o> .",
		"@prefix ex: <http://e/> .\nex:s ex:p ex:o .",
		"@prefix ex: <http://e/> .\nex:s a ex:C ; ex:p 1, 2.5, \"x\" .",
		"ex:s ex:p \"hello\"@en .",
		"<http://e/s> <http://e/p> \"2024-01-01\"^^<http://www.w3.org/2001/XMLSchema#date> .",
		"_:b1 <http://e/p> _:b2 .",
		"# comment\n<http://e/s> <http://e/p> \"a\\\"b\\n\" .",
		"<http://e/s> <http://e/p> \"\"\"multi\nline\"\"\" .",
		"@prefix : <http://e/> .\n:s :p -4.2e3 .",
		"@prefix ex: <http://e/",
		"<s> <p> .",
		"\"dangling",
		"",
		"\x00\xfe@prefix",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		n := 0
		err := ParseTurtle(strings.NewReader(src), func(Triple) error {
			n++
			return nil
		})
		_ = err
		_ = n
	})
}

// FuzzReadBinary drives the snapshot reader with arbitrary bytes: any input
// must produce a graph or an error, never a panic or hang. Seeds cover a
// valid snapshot, every truncation point of it, a trailing byte, an empty
// snapshot, a bad version byte, and raw junk.
func FuzzReadBinary(f *testing.F) {
	g := MustLoadTurtle(`@prefix ex: <http://e/> .
ex:a a ex:Thing ; ex:label "x"@en ; ex:n 42 .
ex:b ex:knows ex:a .`)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	for _, cut := range []int{0, 3, 4, 5, 6, len(valid) / 2, len(valid) - 1} {
		if cut < len(valid) {
			f.Add(valid[:cut])
		}
	}
	f.Add(append(append([]byte{}, valid...), 0x00))
	var empty bytes.Buffer
	if err := NewGraph().WriteBinary(&empty); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())
	f.Add([]byte("RDFA\x63"))
	f.Add([]byte("not a snapshot"))
	f.Fuzz(func(t *testing.T, data []byte) {
		back, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted inputs must round-trip to the same canonical bytes.
		var out bytes.Buffer
		if err := back.WriteBinary(&out); err != nil {
			t.Fatalf("re-serializing accepted snapshot: %v", err)
		}
		if data[4] == binaryVersion && !bytes.Equal(out.Bytes(), data) {
			t.Fatal("accepted v2 snapshot did not round-trip byte-identically")
		}
	})
}
