package rdf

import (
	"strings"
	"testing"
)

// FuzzParseTurtle drives the Turtle reader with arbitrary bytes: any input
// must produce triples or a parse error, never a panic. The seeds cover
// prefixes, literals (typed, tagged, escaped, multiline), lists of objects,
// blank nodes, comments, and malformed fragments.
func FuzzParseTurtle(f *testing.F) {
	seeds := []string{
		"<http://e/s> <http://e/p> <http://e/o> .",
		"@prefix ex: <http://e/> .\nex:s ex:p ex:o .",
		"@prefix ex: <http://e/> .\nex:s a ex:C ; ex:p 1, 2.5, \"x\" .",
		"ex:s ex:p \"hello\"@en .",
		"<http://e/s> <http://e/p> \"2024-01-01\"^^<http://www.w3.org/2001/XMLSchema#date> .",
		"_:b1 <http://e/p> _:b2 .",
		"# comment\n<http://e/s> <http://e/p> \"a\\\"b\\n\" .",
		"<http://e/s> <http://e/p> \"\"\"multi\nline\"\"\" .",
		"@prefix : <http://e/> .\n:s :p -4.2e3 .",
		"@prefix ex: <http://e/",
		"<s> <p> .",
		"\"dangling",
		"",
		"\x00\xfe@prefix",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		n := 0
		err := ParseTurtle(strings.NewReader(src), func(Triple) error {
			n++
			return nil
		})
		_ = err
		_ = n
	})
}
