package rdf

import "testing"

const productSchema = `@prefix ex: <http://ex.org/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
ex:Product a rdfs:Class .
ex:Laptop a rdfs:Class ; rdfs:subClassOf ex:Product .
ex:Gaming a rdfs:Class ; rdfs:subClassOf ex:Laptop .
ex:HDType a rdfs:Class ; rdfs:subClassOf ex:Product .
ex:SSD a rdfs:Class ; rdfs:subClassOf ex:HDType .
ex:Company a rdfs:Class .
ex:producer a rdf:Property ; rdfs:domain ex:Product ; rdfs:range ex:Company .
ex:manufacturer rdfs:subPropertyOf ex:producer .
ex:laptop1 a ex:Gaming ; ex:manufacturer ex:dell .
ex:laptop2 a ex:Laptop .
ex:hd1 a ex:SSD .
`

func TestSchemaHierarchies(t *testing.T) {
	g := MustLoadTurtle(productSchema)
	s := SchemaOf(g)
	laptop := ex("Laptop")
	gaming := ex("Gaming")
	product := ex("Product")
	if _, ok := s.SuperClasses[gaming][product]; !ok {
		t.Error("transitive superclass Gaming -> Product missing")
	}
	if _, ok := s.SubClasses[product][gaming]; !ok {
		t.Error("transitive subclass Product -> Gaming missing")
	}
	// Direct (reduced) parents: Gaming's only direct parent is Laptop.
	if _, ok := s.DirectSuperClasses[gaming][laptop]; !ok {
		t.Error("direct superclass Gaming -> Laptop missing")
	}
	if _, ok := s.DirectSuperClasses[gaming][product]; ok {
		t.Error("reduction kept redundant edge Gaming -> Product")
	}
}

func TestTransitiveReductionRemovesShortcut(t *testing.T) {
	// a <= b <= c plus shortcut a <= c must reduce to a<=b, b<=c.
	doc := `@prefix ex: <http://ex.org/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
ex:a rdfs:subClassOf ex:b .
ex:b rdfs:subClassOf ex:c .
ex:a rdfs:subClassOf ex:c .
`
	s := SchemaOf(MustLoadTurtle(doc))
	if _, ok := s.DirectSuperClasses[ex("a")][ex("c")]; ok {
		t.Error("shortcut edge a->c survived reduction")
	}
	if _, ok := s.DirectSuperClasses[ex("a")][ex("b")]; !ok {
		t.Error("edge a->b missing after reduction")
	}
}

func TestSchemaCycleTolerated(t *testing.T) {
	doc := `@prefix ex: <http://ex.org/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
ex:a rdfs:subClassOf ex:b .
ex:b rdfs:subClassOf ex:a .
`
	s := SchemaOf(MustLoadTurtle(doc)) // must not hang or panic
	if s == nil {
		t.Fatal("nil schema")
	}
}

func TestMaximalClassesAndProperties(t *testing.T) {
	g := MustLoadTurtle(productSchema)
	s := SchemaOf(g)
	maxC := s.MaximalClasses()
	want := map[Term]bool{ex("Product"): true, ex("Company"): true}
	for _, c := range maxC {
		if !want[c] {
			t.Errorf("unexpected maximal class %v", c)
		}
		delete(want, c)
	}
	if len(want) != 0 {
		t.Errorf("missing maximal classes: %v", want)
	}
	// producer is maximal; manufacturer is not.
	foundProducer := false
	for _, p := range s.MaximalProperties() {
		if p == ex("manufacturer") {
			t.Error("manufacturer must not be maximal (has superproperty)")
		}
		if p == ex("producer") {
			foundProducer = true
		}
	}
	if !foundProducer {
		t.Error("producer missing from maximal properties")
	}
}

func TestDirectSubClasses(t *testing.T) {
	s := SchemaOf(MustLoadTurtle(productSchema))
	subs := s.DirectSubClasses(ex("Product"))
	if len(subs) != 2 { // Laptop, HDType
		t.Errorf("DirectSubClasses(Product) = %v", subs)
	}
	subs = s.DirectSubClasses(ex("Laptop"))
	if len(subs) != 1 || subs[0] != ex("Gaming") {
		t.Errorf("DirectSubClasses(Laptop) = %v", subs)
	}
}

func TestMaterializeSubClassTyping(t *testing.T) {
	g := MustLoadTurtle(productSchema)
	stats := Materialize(g)
	// laptop1: Gaming => Laptop => Product
	if !g.Has(Triple{ex("laptop1"), NewIRI(RDFType), ex("Laptop")}) {
		t.Error("rdfs9 inference laptop1 type Laptop missing")
	}
	if !g.Has(Triple{ex("laptop1"), NewIRI(RDFType), ex("Product")}) {
		t.Error("rdfs9 inference laptop1 type Product missing")
	}
	if stats.TypeFromSubClass == 0 {
		t.Error("stats did not count subclass typing")
	}
	// Idempotence: second run adds nothing.
	again := Materialize(g)
	if again.Total() != 0 {
		t.Errorf("Materialize not idempotent, added %d", again.Total())
	}
}

func TestMaterializeSubPropertyAndDomainRange(t *testing.T) {
	g := MustLoadTurtle(productSchema)
	Materialize(g)
	// rdfs7: manufacturer => producer
	if !g.Has(Triple{ex("laptop1"), ex("producer"), ex("dell")}) {
		t.Error("rdfs7 inference missing")
	}
	// rdfs2: domain typing of producer already satisfied; range typing makes dell a Company
	if !g.Has(Triple{ex("dell"), NewIRI(RDFType), ex("Company")}) {
		t.Error("rdfs3 range typing missing")
	}
}

func TestMaterializeTransitiveEdges(t *testing.T) {
	g := MustLoadTurtle(productSchema)
	Materialize(g)
	if !g.Has(Triple{ex("Gaming"), NewIRI(RDFSSubClassOf), ex("Product")}) {
		t.Error("rdfs11 transitive subClassOf edge missing")
	}
}

func TestInstancesOf(t *testing.T) {
	g := MustLoadTurtle(productSchema)
	Materialize(g)
	laptops := InstancesOf(g, ex("Laptop"))
	if len(laptops) != 2 { // laptop1 (via Gaming) + laptop2
		t.Errorf("InstancesOf(Laptop) = %v", laptops)
	}
	products := InstancesOf(g, ex("Product"))
	if len(products) != 3 { // laptop1, laptop2, hd1
		t.Errorf("InstancesOf(Product) = %v", products)
	}
}

func TestEffectivelyFunctional(t *testing.T) {
	g := NewGraph()
	g.Add(Triple{ex("a"), ex("single"), NewInteger(1)})
	g.Add(Triple{ex("b"), ex("single"), NewInteger(2)})
	g.Add(Triple{ex("a"), ex("multi"), NewInteger(1)})
	g.Add(Triple{ex("a"), ex("multi"), NewInteger(2)})
	if !EffectivelyFunctional(g, ex("single")) {
		t.Error("single-valued property reported non-functional")
	}
	if EffectivelyFunctional(g, ex("multi")) {
		t.Error("multi-valued property reported functional")
	}
}

func TestIsFunctionalDeclared(t *testing.T) {
	doc := `@prefix ex: <http://ex.org/> .
@prefix owl: <http://www.w3.org/2002/07/owl#> .
ex:price a owl:FunctionalProperty .
ex:a ex:price 1 .
ex:a ex:price 2 .
`
	g := MustLoadTurtle(doc)
	s := SchemaOf(g)
	// Declared functional wins even if data violates it.
	if !s.IsFunctional(g, ex("price"), true) {
		t.Error("declared functional property not recognized")
	}
	// Undeclared property with single values is effectively functional.
	g2 := NewGraph()
	g2.Add(Triple{ex("a"), ex("p"), NewInteger(1)})
	s2 := SchemaOf(g2)
	if s2.IsFunctional(g2, ex("p"), true) {
		t.Error("strict mode must not accept undeclared property")
	}
	if !s2.IsFunctional(g2, ex("p"), false) {
		t.Error("relaxed mode must accept effectively functional property")
	}
}

func TestSchemaExcludesMetaVocabulary(t *testing.T) {
	g := MustLoadTurtle(productSchema)
	s := SchemaOf(g)
	for c := range s.Classes {
		if isBuiltinMetaClass(c.Value) {
			t.Errorf("meta class %v leaked into schema classes", c)
		}
	}
	for p := range s.Properties {
		if isMetaProperty(p.Value) {
			t.Errorf("meta property %v leaked into schema properties", p)
		}
	}
}

func BenchmarkMaterialize(b *testing.B) {
	// Parsing cost is included (timer manipulation inside b.Loop is
	// unsupported); it is an order of magnitude below the closure cost.
	for b.Loop() {
		g := MustLoadTurtle(productSchema)
		Materialize(g)
	}
}
