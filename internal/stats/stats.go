// Package stats computes dataset-level statistics over an RDF graph and
// publishes them in RDF using the W3C VoID vocabulary — the "publishing of
// statistical data in RDF" capability that category C4 of the paper's
// survey (§3.3.5, Table 3.3: Aether, Loupe, LODStats, SPORTAL…) provides,
// plus the distribution analytics (degree distributions, power-law
// detection) category C5 measures over such datasets (§3.3.6).
package stats

import (
	"fmt"
	"math"
	"sort"

	"rdfanalytics/internal/rdf"
)

// VoIDNS is the Vocabulary of Interlinked Datasets namespace.
const VoIDNS = "http://rdfs.org/ns/void#"

// PropertyStat is one property partition: a predicate and its triple count.
type PropertyStat struct {
	P       rdf.Term
	Triples int
}

// ClassStat is one class partition: a class and its instance count.
type ClassStat struct {
	Class     rdf.Term
	Instances int
}

// Profile is the computed statistics of one dataset.
type Profile struct {
	Triples          int
	DistinctSubjects int
	DistinctObjects  int
	Properties       []PropertyStat // sorted by descending triple count
	Classes          []ClassStat    // sorted by descending instance count
}

// Compute profiles g.
func Compute(g *rdf.Graph) *Profile {
	p := &Profile{Triples: g.Len()}
	subjects := map[rdf.Term]struct{}{}
	objects := map[rdf.Term]struct{}{}
	classCounts := map[rdf.Term]int{}
	typeT := rdf.NewIRI(rdf.RDFType)
	g.Match(rdf.Any, rdf.Any, rdf.Any, func(t rdf.Triple) bool {
		subjects[t.S] = struct{}{}
		objects[t.O] = struct{}{}
		if t.P == typeT {
			classCounts[t.O]++
		}
		return true
	})
	p.DistinctSubjects = len(subjects)
	p.DistinctObjects = len(objects)
	for _, pred := range g.Predicates() {
		p.Properties = append(p.Properties, PropertyStat{P: pred, Triples: g.PredicateCount(pred)})
	}
	sort.Slice(p.Properties, func(i, j int) bool {
		if p.Properties[i].Triples != p.Properties[j].Triples {
			return p.Properties[i].Triples > p.Properties[j].Triples
		}
		return p.Properties[i].P.Less(p.Properties[j].P)
	})
	for c, n := range classCounts {
		p.Classes = append(p.Classes, ClassStat{Class: c, Instances: n})
	}
	sort.Slice(p.Classes, func(i, j int) bool {
		if p.Classes[i].Instances != p.Classes[j].Instances {
			return p.Classes[i].Instances > p.Classes[j].Instances
		}
		return p.Classes[i].Class.Less(p.Classes[j].Class)
	})
	return p
}

// ToVoID publishes the profile as an RDF graph describing datasetIRI with
// the VoID vocabulary: void:triples, void:distinctSubjects,
// void:distinctObjects, void:properties, void:classes, and per-property /
// per-class partitions.
func (p *Profile) ToVoID(datasetIRI string) *rdf.Graph {
	g := rdf.NewGraph()
	ds := rdf.NewIRI(datasetIRI)
	v := func(l string) rdf.Term { return rdf.NewIRI(VoIDNS + l) }
	g.Add(rdf.Triple{S: ds, P: rdf.NewIRI(rdf.RDFType), O: v("Dataset")})
	g.Add(rdf.Triple{S: ds, P: v("triples"), O: rdf.NewInteger(int64(p.Triples))})
	g.Add(rdf.Triple{S: ds, P: v("distinctSubjects"), O: rdf.NewInteger(int64(p.DistinctSubjects))})
	g.Add(rdf.Triple{S: ds, P: v("distinctObjects"), O: rdf.NewInteger(int64(p.DistinctObjects))})
	g.Add(rdf.Triple{S: ds, P: v("properties"), O: rdf.NewInteger(int64(len(p.Properties)))})
	g.Add(rdf.Triple{S: ds, P: v("classes"), O: rdf.NewInteger(int64(len(p.Classes)))})
	for i, ps := range p.Properties {
		part := rdf.NewIRI(fmt.Sprintf("%s/propertyPartition/%d", datasetIRI, i+1))
		g.Add(rdf.Triple{S: ds, P: v("propertyPartition"), O: part})
		g.Add(rdf.Triple{S: part, P: v("property"), O: ps.P})
		g.Add(rdf.Triple{S: part, P: v("triples"), O: rdf.NewInteger(int64(ps.Triples))})
	}
	for i, cs := range p.Classes {
		part := rdf.NewIRI(fmt.Sprintf("%s/classPartition/%d", datasetIRI, i+1))
		g.Add(rdf.Triple{S: ds, P: v("classPartition"), O: part})
		g.Add(rdf.Triple{S: part, P: v("class"), O: cs.Class})
		g.Add(rdf.Triple{S: part, P: v("entities"), O: rdf.NewInteger(int64(cs.Instances))})
	}
	return g
}

// DegreeDistribution returns (degree -> number of resources with that
// degree) counting both triple directions, the quantity whose power-law
// shape C5 works inspect (§3.3.6, Theoharis et al., LOD-a-lot).
func DegreeDistribution(g *rdf.Graph) map[int]int {
	degrees := map[rdf.Term]int{}
	g.Match(rdf.Any, rdf.Any, rdf.Any, func(t rdf.Triple) bool {
		degrees[t.S]++
		if t.O.IsResource() {
			degrees[t.O]++
		}
		return true
	})
	dist := map[int]int{}
	for _, d := range degrees {
		dist[d]++
	}
	return dist
}

// PowerLawFit estimates the exponent alpha of a discrete power law
// p(x) ∝ x^(-alpha) over the sample implied by the distribution (value ->
// frequency), for values >= xmin, using the standard MLE
// alpha ≈ 1 + n / Σ ln(x_i / (xmin - 0.5)). Returns alpha and the sample
// size used; n == 0 means no data at or above xmin.
func PowerLawFit(dist map[int]int, xmin int) (alpha float64, n int) {
	if xmin < 1 {
		xmin = 1
	}
	sum := 0.0
	distinct := 0
	for x, freq := range dist {
		if x < xmin || freq <= 0 {
			continue
		}
		distinct++
		n += freq
		sum += float64(freq) * math.Log(float64(x)/(float64(xmin)-0.5))
	}
	// A slope needs at least two distinct values.
	if n == 0 || sum == 0 || distinct < 2 {
		return 0, n
	}
	return 1 + float64(n)/sum, n
}

// TopK returns the k largest (value, frequency) pairs of a distribution by
// value — the tail the power-law plots show.
func TopK(dist map[int]int, k int) [][2]int {
	out := make([][2]int, 0, len(dist))
	for x, f := range dist {
		out = append(out, [2]int{x, f})
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] > out[j][0] })
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
