package stats

import (
	"math"
	"math/rand"
	"testing"

	"rdfanalytics/internal/datagen"
	"rdfanalytics/internal/rdf"
	"rdfanalytics/internal/sparql"
)

func TestComputeProfile(t *testing.T) {
	g := datagen.SmallInvoices()
	p := Compute(g)
	if p.Triples != g.Len() {
		t.Errorf("triples = %d, want %d", p.Triples, g.Len())
	}
	if p.DistinctSubjects == 0 || p.DistinctObjects == 0 {
		t.Error("distinct counts empty")
	}
	// Properties sorted by descending count; the invoice properties
	// (takesPlaceAt etc., 7 each) outrank brand (3).
	if len(p.Properties) == 0 {
		t.Fatal("no properties")
	}
	for i := 1; i < len(p.Properties); i++ {
		if p.Properties[i].Triples > p.Properties[i-1].Triples {
			t.Fatal("properties unsorted")
		}
	}
	var brand *PropertyStat
	for i := range p.Properties {
		if p.Properties[i].P.LocalName() == "brand" {
			brand = &p.Properties[i]
		}
	}
	if brand == nil || brand.Triples != 3 {
		t.Errorf("brand stat: %+v", brand)
	}
	// Classes: Invoice (7), Branch (3), ProductType (3).
	if p.Classes[0].Class.LocalName() != "Invoice" || p.Classes[0].Instances != 7 {
		t.Errorf("top class: %+v", p.Classes[0])
	}
}

func TestToVoIDQueryable(t *testing.T) {
	g := datagen.SmallInvoices()
	vd := Compute(g).ToVoID("http://example.org/dataset/invoices")
	// The published statistics are themselves RDF: query them with SPARQL.
	res, err := sparql.Select(vd, `PREFIX void: <`+VoIDNS+`>
SELECT ?t WHERE { ?ds a void:Dataset . ?ds void:triples ?t }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("datasets: %s", res)
	}
	if n, _ := res.Rows[0]["t"].Int(); n != int64(g.Len()) {
		t.Errorf("void:triples = %v", res.Rows[0]["t"])
	}
	// Property partitions carry per-predicate counts.
	res, err = sparql.Select(vd, `PREFIX void: <`+VoIDNS+`>
SELECT ?p ?n WHERE {
  ?ds void:propertyPartition ?part .
  ?part void:property ?p .
  ?part void:triples ?n .
}`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != len(Compute(g).Properties) {
		t.Errorf("partitions = %d", res.Len())
	}
}

func TestDegreeDistribution(t *testing.T) {
	g := rdf.MustLoadTurtle(`@prefix ex: <http://e/> .
ex:hub ex:p ex:a . ex:hub ex:p ex:b . ex:hub ex:p ex:c .
ex:a ex:q "lit" .
`)
	dist := DegreeDistribution(g)
	// hub: degree 3; a: 1 (as object) + 1 (as subject) = 2; b, c: 1.
	if dist[3] != 1 {
		t.Errorf("degree-3 count = %d (dist %v)", dist[3], dist)
	}
	if dist[2] != 1 {
		t.Errorf("degree-2 count = %d (dist %v)", dist[2], dist)
	}
	if dist[1] != 2 {
		t.Errorf("degree-1 count = %d (dist %v)", dist[1], dist)
	}
}

func TestPowerLawFitRecoversExponent(t *testing.T) {
	// Sample from the true discrete power law p(x) ∝ x^-2.5 over
	// x ∈ [1, 10000] via its CDF and check the MLE recovers alpha.
	rng := rand.New(rand.NewSource(42))
	alphaTrue := 2.5
	const maxX = 10000
	cdf := make([]float64, maxX+1)
	total := 0.0
	for x := 1; x <= maxX; x++ {
		total += math.Pow(float64(x), -alphaTrue)
		cdf[x] = total
	}
	for x := 1; x <= maxX; x++ {
		cdf[x] /= total
	}
	dist := map[int]int{}
	for i := 0; i < 20000; i++ {
		u := rng.Float64()
		// binary search for the smallest x with cdf[x] >= u
		lo, hi := 1, maxX
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] >= u {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		dist[lo]++
	}
	alpha, n := PowerLawFit(dist, 2)
	if n < 2000 {
		t.Fatalf("sample size %d", n)
	}
	if math.Abs(alpha-alphaTrue) > 0.2 {
		t.Errorf("alpha = %.3f (n=%d), want ≈ %.1f", alpha, n, alphaTrue)
	}
}

func TestPowerLawFitEdgeCases(t *testing.T) {
	if a, n := PowerLawFit(nil, 1); a != 0 || n != 0 {
		t.Errorf("empty: %v %v", a, n)
	}
	// All mass at xmin yields sum==0 -> no fit.
	if a, n := PowerLawFit(map[int]int{1: 10}, 1); a != 0 || n != 10 {
		t.Errorf("degenerate: %v %v", a, n)
	}
	// xmin filtering.
	_, n := PowerLawFit(map[int]int{1: 5, 10: 2}, 5)
	if n != 2 {
		t.Errorf("xmin filter: n=%d", n)
	}
}

func TestTopK(t *testing.T) {
	dist := map[int]int{1: 100, 2: 50, 7: 3, 40: 1}
	top := TopK(dist, 2)
	if len(top) != 2 || top[0][0] != 40 || top[1][0] != 7 {
		t.Errorf("top = %v", top)
	}
}

// TestProductsKGDegreeShape: the generated products KG has a right-skewed
// degree distribution (companies and countries act as hubs) — the shape the
// C5 analyses look for.
func TestProductsKGDegreeShape(t *testing.T) {
	g := datagen.Products(datagen.ProductsConfig{Laptops: 300, Companies: 8, Seed: 1, Materialize: true})
	dist := DegreeDistribution(g)
	maxDeg := 0
	for d := range dist {
		if d > maxDeg {
			maxDeg = d
		}
	}
	// Hubs (companies referenced by many laptops) have degree far above the
	// median entity.
	if maxDeg < 40 {
		t.Errorf("max degree = %d; expected hub structure", maxDeg)
	}
	alpha, n := PowerLawFit(dist, 2)
	if n == 0 || alpha <= 1 {
		t.Errorf("fit degenerate: alpha=%v n=%d", alpha, n)
	}
}
