package sparql

import (
	"sort"
	"strings"

	"rdfanalytics/internal/rdf"
)

// aggregate implements GROUP BY + aggregate evaluation: rows are partitioned
// by the group conditions, every aggregate in the projection/HAVING/ORDER BY
// is computed per group, and HAVING prunes groups.
func (ev *evaluator) aggregate(q *Query, rows []Binding) (*Results, error) {
	env := exprEnv{ev: ev}
	type group struct {
		rep  Binding // representative binding incl. group-cond values
		rows []Binding
	}
	groups := map[string]*group{}
	var order []string
	// Partition. A huge GROUP BY is governed the same way joins are: the
	// partitioning loop polls for cancellation.
	for i, b := range rows {
		if i%pollEvery == 0 && ev.cancel.poll() {
			return nil, ev.cancel.cause()
		}
		var keyB strings.Builder
		rep := Binding{}
		ok := true
		for i, gc := range q.GroupBy {
			var v rdf.Term
			if gc.Expr != nil {
				t, err := env.evalExpr(gc.Expr, b)
				if err != nil {
					ok = false
					break
				}
				v = t
			} else {
				t, bound := b[gc.Var]
				if !bound {
					// group key component unbound: group under empty slot
					keyB.WriteByte('\x00')
					continue
				}
				v = t
			}
			keyB.WriteString(v.String())
			keyB.WriteByte('\x00')
			name := gc.Var
			if name == "" && gc.Expr != nil {
				name = groupCondName(i, gc)
			}
			if name != "" {
				rep[name] = v
			}
		}
		if !ok {
			continue
		}
		key := keyB.String()
		g, exists := groups[key]
		if !exists {
			// Carry the grouping values plus any variables constant within
			// the group key through the representative binding.
			for k, v := range b {
				if _, set := rep[k]; !set {
					rep[k] = v
				}
			}
			g = &group{rep: rep}
			groups[key] = g
			order = append(order, key)
		}
		g.rows = append(g.rows, b)
	}
	// A grouped query with no GROUP BY and no rows still yields one group
	// (e.g. SELECT (COUNT(*) AS ?n) over an empty match).
	if len(q.GroupBy) == 0 && len(groups) == 0 {
		groups[""] = &group{rep: Binding{}}
		order = append(order, "")
	}
	sort.Strings(order)
	// Project each group.
	out := &Results{}
	for _, it := range q.Select.Items {
		out.Vars = append(out.Vars, it.Var)
	}
	for i, key := range order {
		if i%256 == 0 && ev.cancel.poll() {
			return nil, ev.cancel.cause()
		}
		g := groups[key]
		// HAVING.
		keep := true
		for _, h := range q.Having {
			v, err := ev.evalGroupExpr(h, g.rows, g.rep)
			if err != nil {
				keep = false
				break
			}
			okv, err := ebv(v)
			if err != nil || !okv {
				keep = false
				break
			}
		}
		if !keep {
			continue
		}
		nb := Binding{}
		for _, it := range q.Select.Items {
			if it.Expr == nil {
				if t, ok := g.rep[it.Var]; ok {
					nb[it.Var] = t
				}
				continue
			}
			if v, err := ev.evalGroupExpr(it.Expr, g.rows, g.rep); err == nil {
				nb[it.Var] = v
			}
		}
		out.Rows = append(out.Rows, nb)
	}
	return out, nil
}

func groupCondName(i int, gc GroupCond) string {
	if gc.Var != "" {
		return gc.Var
	}
	// Derived group expressions like month(?x2) get a stable readable name.
	if call, ok := gc.Expr.(ExprCall); ok {
		base := strings.ToLower(call.Func)
		if j := strings.LastIndexAny(base, "#/"); j >= 0 {
			base = base[j+1:]
		}
		if len(call.Args) == 1 {
			if v, ok := call.Args[0].(ExprVar); ok {
				return base + "_" + v.Name
			}
		}
		return base
	}
	return ""
}

// evalGroupExpr evaluates an expression that may contain aggregates: the
// aggregate sub-expressions are computed over the group's rows, everything
// else over the representative binding.
func (ev *evaluator) evalGroupExpr(e Expr, rows []Binding, rep Binding) (rdf.Term, error) {
	env := exprEnv{ev: ev}
	switch x := e.(type) {
	case ExprAggregate:
		return ev.computeAggregate(x, rows)
	case ExprUnary:
		sub, err := ev.evalGroupExpr(x.Sub, rows, rep)
		if err != nil {
			return rdf.Term{}, err
		}
		return env.evalUnary(ExprUnary{Op: x.Op, Sub: ExprTerm{Term: sub}}, rep)
	case ExprBinary:
		if !HasAggregate(x) {
			return env.evalExpr(x, rep)
		}
		l, err := ev.evalGroupExpr(x.Left, rows, rep)
		if err != nil {
			return rdf.Term{}, err
		}
		r, err := ev.evalGroupExpr(x.Right, rows, rep)
		if err != nil {
			return rdf.Term{}, err
		}
		return env.evalBinary(ExprBinary{Op: x.Op, Left: ExprTerm{Term: l}, Right: ExprTerm{Term: r}}, rep)
	case ExprCall:
		if !HasAggregate(x) {
			return env.evalExpr(x, rep)
		}
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			v, err := ev.evalGroupExpr(a, rows, rep)
			if err != nil {
				return rdf.Term{}, err
			}
			args[i] = ExprTerm{Term: v}
		}
		return env.evalCall(ExprCall{Func: x.Func, Args: args}, rep)
	default:
		return env.evalExpr(e, rep)
	}
}

// computeAggregate evaluates one aggregate over the group's rows.
func (ev *evaluator) computeAggregate(agg ExprAggregate, rows []Binding) (rdf.Term, error) {
	env := exprEnv{ev: ev}
	// Collect the argument values (skipping evaluation errors / unbound).
	var values []rdf.Term
	if agg.Star {
		values = make([]rdf.Term, len(rows))
		for i := range rows {
			values[i] = rdf.NewInteger(int64(i)) // placeholders; only counted
		}
	} else {
		for _, b := range rows {
			v, err := env.evalExpr(agg.Arg, b)
			if err != nil {
				continue
			}
			values = append(values, v)
		}
	}
	if agg.Distinct {
		seen := map[rdf.Term]bool{}
		var dv []rdf.Term
		for _, v := range values {
			if !seen[v] {
				seen[v] = true
				dv = append(dv, v)
			}
		}
		values = dv
	}
	switch agg.Func {
	case "COUNT":
		return rdf.NewInteger(int64(len(values))), nil
	case "SUM":
		sum := 0.0
		allInt := true
		for _, v := range values {
			f, ok := v.Float()
			if !ok {
				return rdf.Term{}, evalErrf("SUM over non-numeric %s", v)
			}
			sum += f
			if v.Datatype != rdf.XSDInteger {
				allInt = false
			}
		}
		if allInt {
			return rdf.NewInteger(int64(sum)), nil
		}
		return rdf.NewDecimal(sum), nil
	case "AVG":
		if len(values) == 0 {
			return rdf.NewInteger(0), nil
		}
		sum := 0.0
		for _, v := range values {
			f, ok := v.Float()
			if !ok {
				return rdf.Term{}, evalErrf("AVG over non-numeric %s", v)
			}
			sum += f
		}
		return rdf.NewDecimal(sum / float64(len(values))), nil
	case "MIN", "MAX":
		if len(values) == 0 {
			return rdf.Term{}, evalErrf("%s of empty group", agg.Func)
		}
		best := values[0]
		for _, v := range values[1:] {
			c, err := compareTerms(v, best)
			if err != nil {
				// fall back to term order for mixed types
				if v.Less(best) {
					c = -1
				} else {
					c = 1
				}
			}
			if (agg.Func == "MIN" && c < 0) || (agg.Func == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	case "SAMPLE":
		if len(values) == 0 {
			return rdf.Term{}, evalErrf("SAMPLE of empty group")
		}
		return values[0], nil
	case "GROUP_CONCAT":
		parts := make([]string, len(values))
		for i, v := range values {
			parts[i] = v.Value
		}
		sep := agg.Separator
		if sep == "" {
			sep = " "
		}
		return rdf.NewString(strings.Join(parts, sep)), nil
	default:
		return rdf.Term{}, evalErrf("unknown aggregate %s", agg.Func)
	}
}
