package sparql

import (
	"fmt"
	"sort"
	"strings"

	"rdfanalytics/internal/rdf"
)

// aggregate implements GROUP BY + aggregate evaluation: rows are partitioned
// by the group conditions, every aggregate in the projection/HAVING/ORDER BY
// is computed per group, and HAVING prunes groups. It returns one *extended*
// solution per surviving group — the representative binding overlaid with
// the SELECT-expression values and with hidden precomputed values for any
// aggregate-bearing ORDER BY condition — plus the ORDER BY conditions
// rewritten to reference those hidden variables. Projection happens later
// (execSelect), after ORDER BY has seen the extended rows.
func (ev *evaluator) aggregate(q *Query, rows []Binding) ([]Binding, []OrderCond, error) {
	env := exprEnv{ev: ev}
	type group struct {
		rep  Binding // representative binding incl. group-cond values
		rows []Binding
	}
	groups := map[string]*group{}
	var order []string
	// Partition. A huge GROUP BY is governed the same way joins are: the
	// partitioning loop polls for cancellation.
	for i, b := range rows {
		if i%pollEvery == 0 && ev.cancel.poll() {
			return nil, nil, ev.cancel.cause()
		}
		var keyB strings.Builder
		rep := Binding{}
		ok := true
		for i, gc := range q.GroupBy {
			var v rdf.Term
			if gc.Expr != nil {
				t, err := env.evalExpr(gc.Expr, b)
				if err != nil {
					ok = false
					break
				}
				v = t
			} else {
				t, bound := b[gc.Var]
				if !bound {
					// group key component unbound: group under empty slot
					keyB.WriteByte('\x00')
					continue
				}
				v = t
			}
			keyB.WriteString(v.String())
			keyB.WriteByte('\x00')
			name := gc.Var
			if name == "" && gc.Expr != nil {
				name = groupCondName(i, gc)
			}
			if name != "" {
				rep[name] = v
			}
		}
		if !ok {
			continue
		}
		key := keyB.String()
		g, exists := groups[key]
		if !exists {
			// Carry the grouping values plus any variables constant within
			// the group key through the representative binding.
			for k, v := range b {
				if _, set := rep[k]; !set {
					rep[k] = v
				}
			}
			g = &group{rep: rep}
			groups[key] = g
			order = append(order, key)
		}
		g.rows = append(g.rows, b)
	}
	// A grouped query with no GROUP BY and no rows still yields one group
	// (e.g. SELECT (COUNT(*) AS ?n) over an empty match).
	if len(q.GroupBy) == 0 && len(groups) == 0 {
		groups[""] = &group{rep: Binding{}}
		order = append(order, "")
	}
	sort.Strings(order)
	// ORDER BY conditions that contain aggregates must be computed over the
	// group's rows, which are gone once grouping finishes — precompute each
	// such condition per group into a hidden variable and rewrite the
	// condition to reference it.
	conds := make([]OrderCond, len(q.OrderBy))
	type hiddenCond struct {
		name string
		expr Expr
	}
	var hidden []hiddenCond
	for i, c := range q.OrderBy {
		if HasAggregate(c.Expr) {
			h := hiddenCond{name: fmt.Sprintf("_anon_ord%d", i), expr: c.Expr}
			hidden = append(hidden, h)
			conds[i] = OrderCond{Desc: c.Desc, Expr: ExprVar{Name: h.name}}
		} else {
			conds[i] = c
		}
	}
	// Extend each surviving group's representative binding.
	var work []Binding
	for i, key := range order {
		if i%256 == 0 && ev.cancel.poll() {
			return nil, nil, ev.cancel.cause()
		}
		g := groups[key]
		// HAVING.
		keep := true
		for _, h := range q.Having {
			v, err := ev.evalGroupExpr(h, g.rows, g.rep)
			if err != nil {
				keep = false
				break
			}
			okv, err := ebv(v)
			if err != nil || !okv {
				keep = false
				break
			}
		}
		if !keep {
			continue
		}
		nb := g.rep.clone()
		for _, it := range q.Select.Items {
			if it.Expr == nil {
				continue // bare variable: already in the representative
			}
			if v, err := ev.evalGroupExpr(it.Expr, g.rows, g.rep); err == nil {
				nb[it.Var] = v
			} else {
				// An erroring aggregate (e.g. MIN over an empty group, §18.5)
				// leaves the cell unbound — it must not shadow a same-named
				// representative variable.
				delete(nb, it.Var)
			}
		}
		for _, h := range hidden {
			if v, err := ev.evalGroupExpr(h.expr, g.rows, g.rep); err == nil {
				nb[h.name] = v
			}
		}
		work = append(work, nb)
	}
	return work, conds, nil
}

func groupCondName(i int, gc GroupCond) string {
	if gc.Var != "" {
		return gc.Var
	}
	// Derived group expressions like month(?x2) get a stable readable name.
	if call, ok := gc.Expr.(ExprCall); ok {
		base := strings.ToLower(call.Func)
		if j := strings.LastIndexAny(base, "#/"); j >= 0 {
			base = base[j+1:]
		}
		if len(call.Args) == 1 {
			if v, ok := call.Args[0].(ExprVar); ok {
				return base + "_" + v.Name
			}
		}
		return base
	}
	return ""
}

// evalGroupExpr evaluates an expression that may contain aggregates: the
// aggregate sub-expressions are computed over the group's rows, everything
// else over the representative binding.
func (ev *evaluator) evalGroupExpr(e Expr, rows []Binding, rep Binding) (rdf.Term, error) {
	env := exprEnv{ev: ev}
	switch x := e.(type) {
	case ExprAggregate:
		return ev.computeAggregate(x, rows)
	case ExprUnary:
		sub, err := ev.evalGroupExpr(x.Sub, rows, rep)
		if err != nil {
			return rdf.Term{}, err
		}
		return env.evalUnary(ExprUnary{Op: x.Op, Sub: ExprTerm{Term: sub}}, rep)
	case ExprBinary:
		if !HasAggregate(x) {
			return env.evalExpr(x, rep)
		}
		l, err := ev.evalGroupExpr(x.Left, rows, rep)
		if err != nil {
			return rdf.Term{}, err
		}
		r, err := ev.evalGroupExpr(x.Right, rows, rep)
		if err != nil {
			return rdf.Term{}, err
		}
		return env.evalBinary(ExprBinary{Op: x.Op, Left: ExprTerm{Term: l}, Right: ExprTerm{Term: r}}, rep)
	case ExprCall:
		if !HasAggregate(x) {
			return env.evalExpr(x, rep)
		}
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			v, err := ev.evalGroupExpr(a, rows, rep)
			if err != nil {
				return rdf.Term{}, err
			}
			args[i] = ExprTerm{Term: v}
		}
		return env.evalCall(ExprCall{Func: x.Func, Args: args}, rep)
	default:
		return env.evalExpr(e, rep)
	}
}

// computeAggregate evaluates one aggregate over the group's rows.
func (ev *evaluator) computeAggregate(agg ExprAggregate, rows []Binding) (rdf.Term, error) {
	env := exprEnv{ev: ev}
	// Collect the argument values (skipping evaluation errors / unbound).
	var values []rdf.Term
	if agg.Star {
		values = make([]rdf.Term, len(rows))
		for i := range rows {
			values[i] = rdf.NewInteger(int64(i)) // placeholders; only counted
		}
	} else {
		for _, b := range rows {
			v, err := env.evalExpr(agg.Arg, b)
			if err != nil {
				continue
			}
			values = append(values, v)
		}
	}
	if agg.Distinct {
		seen := map[rdf.Term]bool{}
		var dv []rdf.Term
		for _, v := range values {
			if !seen[v] {
				seen[v] = true
				dv = append(dv, v)
			}
		}
		values = dv
	}
	switch agg.Func {
	case "COUNT":
		return rdf.NewInteger(int64(len(values))), nil
	case "SUM":
		// All-integer groups accumulate in int64: going through float64 and
		// casting back silently loses precision past 2^53. The accumulator
		// switches to float64 only when a non-integer value appears (numeric
		// promotion to xsd:decimal, §18.5.1.3).
		var isum int64
		fsum := 0.0
		allInt := true
		for _, v := range values {
			f, ok := v.Float()
			if !ok {
				return rdf.Term{}, evalErrf("SUM over non-numeric %s", v)
			}
			if allInt && v.Datatype == rdf.XSDInteger {
				if i, okI := v.Int(); okI {
					isum += i
					continue
				}
			}
			if allInt {
				allInt = false
				fsum = float64(isum)
			}
			fsum += f
		}
		if allInt {
			return rdf.NewInteger(isum), nil
		}
		return rdf.NewDecimal(fsum), nil
	case "AVG":
		if len(values) == 0 {
			return rdf.NewInteger(0), nil
		}
		sum := 0.0
		for _, v := range values {
			f, ok := v.Float()
			if !ok {
				return rdf.Term{}, evalErrf("AVG over non-numeric %s", v)
			}
			sum += f
		}
		return rdf.NewDecimal(sum / float64(len(values))), nil
	case "MIN", "MAX":
		if len(values) == 0 {
			// Per §18.5 the aggregate errors on an empty group; callers map
			// the wrapped errEval to an unbound cell (aggregate / evalGroupExpr),
			// never to a query-level failure.
			return rdf.Term{}, evalErrf("%s of empty group", agg.Func)
		}
		best := values[0]
		for _, v := range values[1:] {
			c, err := compareTerms(v, best)
			if err != nil {
				// fall back to term order for mixed types
				if v.Less(best) {
					c = -1
				} else {
					c = 1
				}
			}
			if (agg.Func == "MIN" && c < 0) || (agg.Func == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	case "SAMPLE":
		if len(values) == 0 {
			return rdf.Term{}, evalErrf("SAMPLE of empty group")
		}
		return values[0], nil
	case "GROUP_CONCAT":
		parts := make([]string, len(values))
		for i, v := range values {
			parts[i] = v.Value
		}
		sep := agg.Separator
		if sep == "" {
			sep = " "
		}
		return rdf.NewString(strings.Join(parts, sep)), nil
	default:
		return rdf.Term{}, evalErrf("unknown aggregate %s", agg.Func)
	}
}
