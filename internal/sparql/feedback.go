package sparql

import (
	"sync"

	"rdfanalytics/internal/obs"
)

// Execution feedback for the cost-based planner. A FeedbackStore remembers,
// per query fingerprint, the *actual* (input, output) cardinality each scan
// site saw the last time that fingerprint ran, keyed by (pattern label,
// bound-variable context) — the pattern's canonical string plus the sorted
// names of its variables that arrived bound when it executed. The context
// half matters because a scan's selectivity is a function of which join
// variables arrive bound; the (input, output) pair matters because even at
// a fixed context the output scales with the input, so feedback is applied
// as an observed per-input-row selectivity, never as an absolute row count
// (see SiteActual). When the same fingerprint replans, observed
// selectivities override the cold cardinality-stats-cache estimates for
// matching contexts (a context miss falls back to the cold estimate),
// closing the q-error feedback loop: interactive sessions re-run the same
// query shapes every facet click, so the second click of a shape plans
// with true cardinalities — and successive runs accumulate the contexts of
// every order the planner explores until the plan reaches a fixed point.
//
// Entries are validated against the graph's mutation counter: any write
// moves the version and the whole store resets on the next observation or
// lookup, so seeded estimates can never describe a graph that no longer
// exists. The store is concurrency-safe; the evaluator takes one snapshot
// of its fingerprint's sites per query, so planning never holds the lock.

const (
	// maxFeedbackFingerprints bounds the per-fingerprint map; beyond it the
	// least-recently-touched fingerprint is evicted.
	maxFeedbackFingerprints = 512
)

var (
	feedbackHits   = obs.Default.Counter("rdfa_planner_feedback_hits_total")
	feedbackMisses = obs.Default.Counter("rdfa_planner_feedback_misses_total")
	feedbackSeeds  = obs.Default.Counter("rdfa_planner_feedback_seeds_total")
)

// FeedbackStore holds observed per-scan-site cardinalities keyed by query
// fingerprint, invalidated as a whole when the graph version moves. The
// zero value is not usable; call NewFeedbackStore. A nil *FeedbackStore is
// a valid no-op (lookups miss, observations are dropped).
type FeedbackStore struct {
	mu      sync.Mutex
	version uint64
	byFP    map[string]*fpFeedback
	clock   uint64 // LRU tick, bumped on every touch
	hits    uint64
	misses  uint64
	seeds   uint64
}

// SiteActual is one observed scan execution: the input binding count the
// scan ran over and the output it produced. The pair is what makes feedback
// transferable — Out/In is the site's per-input-row selectivity, so the
// planner can price the same (pattern, context) site at *any* candidate
// input cardinality instead of trusting an absolute row count observed at
// one position. (An absolute prediction is a trap: a pattern observed
// producing 16 rows from 1 input row also "produces 16 rows" when crossed
// against 2000 rows, which is exactly how a seeded planner talks itself
// into a cross product.)
type SiteActual struct {
	In, Out int64
}

// fpFeedback is the per-fingerprint site table: scan site key (label +
// "\x00" + bound-variable context) → observed (input, output) cardinality.
type fpFeedback struct {
	sites map[string]SiteActual
	tick  uint64
}

// NewFeedbackStore returns an empty feedback store.
func NewFeedbackStore() *FeedbackStore {
	return &FeedbackStore{byFP: map[string]*fpFeedback{}}
}

// Observe folds one finished query's plan-vs-actual rows into the store:
// every scan-operator estimate of ests that carries a bound-variable
// context records its actual cardinality under the fingerprint, keyed by
// (label, context). Context-less scans — textual-order or legacy-greedy
// executions, whose join positions the cost model never saw — are skipped:
// their actuals could not be matched back to a planned step. graphVersion
// is the graph mutation counter the query ran at; a version different from
// the store's drops every seeded entry first (a mutated graph invalidates
// all remembered cardinalities).
func (f *FeedbackStore) Observe(fpID string, graphVersion uint64, ests []EstimateStat) {
	if f == nil || fpID == "" || len(ests) == 0 {
		return
	}
	recordable := false
	for _, e := range ests {
		if e.Op == "scan" && e.Label != "" && e.Ctx != "" {
			recordable = true
			break
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.resetIfStaleLocked(graphVersion)
	fe, ok := f.byFP[fpID]
	if !ok {
		if !recordable {
			return // nothing to seed; don't churn the LRU with empty entries
		}
		f.evictLocked()
		fe = &fpFeedback{sites: map[string]SiteActual{}}
		f.byFP[fpID] = fe
	}
	f.clock++
	fe.tick = f.clock
	for _, e := range ests {
		if e.Op != "scan" || e.Label == "" || e.Ctx == "" {
			continue
		}
		fe.sites[e.Label+"\x00"+e.Ctx] = SiteActual{In: e.ActualIn, Out: e.Actual}
	}
	if recordable {
		f.seeds++
		feedbackSeeds.Inc()
	}
}

// SiteActuals returns a copy of the fingerprint's observed scan-site
// (input, output) cardinalities, or nil when the store has nothing valid
// for it (unknown fingerprint, or the graph has mutated since the entries
// were seeded). The copy is the evaluator's per-query snapshot: planning
// and mid-query replanning read it without touching the store again.
func (f *FeedbackStore) SiteActuals(fpID string, graphVersion uint64) map[string]SiteActual {
	if f == nil || fpID == "" {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.resetIfStaleLocked(graphVersion)
	fe, ok := f.byFP[fpID]
	if !ok || len(fe.sites) == 0 {
		f.misses++
		feedbackMisses.Inc()
		return nil
	}
	f.hits++
	feedbackHits.Inc()
	f.clock++
	fe.tick = f.clock
	out := make(map[string]SiteActual, len(fe.sites))
	for k, v := range fe.sites {
		out[k] = v
	}
	return out
}

// resetIfStaleLocked drops every entry when the graph version moved.
// Caller holds f.mu.
func (f *FeedbackStore) resetIfStaleLocked(graphVersion uint64) {
	if f.version != graphVersion {
		f.version = graphVersion
		f.byFP = map[string]*fpFeedback{}
	}
}

// evictLocked removes the least-recently-touched fingerprint when the map
// is at capacity. Caller holds f.mu.
func (f *FeedbackStore) evictLocked() {
	if len(f.byFP) < maxFeedbackFingerprints {
		return
	}
	oldestKey, oldestTick := "", uint64(0)
	first := true
	for k, fe := range f.byFP {
		if first || fe.tick < oldestTick {
			oldestKey, oldestTick, first = k, fe.tick, false
		}
	}
	if oldestKey != "" {
		delete(f.byFP, oldestKey)
	}
}

// FeedbackStats is a point-in-time view of the store, surfaced by the
// dashboard's feedback card and GET /api/workload.
type FeedbackStats struct {
	// Fingerprints is the number of fingerprints currently holding seeded
	// estimates; Sites the total scan sites across them.
	Fingerprints int `json:"fingerprints"`
	Sites        int `json:"sites"`
	// Hits / Misses count SiteActuals lookups that found / did not find
	// valid seeded estimates.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Seeds counts Observe calls that recorded at least one site.
	Seeds uint64 `json:"seeds"`
	// Version is the graph mutation counter the entries are valid for.
	Version uint64 `json:"graph_version"`
}

// Stats returns the store's current statistics. Nil-safe.
func (f *FeedbackStore) Stats() FeedbackStats {
	if f == nil {
		return FeedbackStats{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	st := FeedbackStats{
		Fingerprints: len(f.byFP),
		Hits:         f.hits,
		Misses:       f.misses,
		Seeds:        f.seeds,
		Version:      f.version,
	}
	for _, fe := range f.byFP {
		st.Sites += len(fe.sites)
	}
	return st
}

// SeededFingerprints returns the set of fingerprint IDs currently holding
// valid seeded estimates (used by the dashboard to mark feedback-seeded
// rows). Nil-safe.
func (f *FeedbackStore) SeededFingerprints() map[string]bool {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]bool, len(f.byFP))
	for k := range f.byFP {
		out[k] = true
	}
	return out
}
