package sparql

import (
	"context"
	"fmt"
	"strings"

	"rdfanalytics/internal/rdf"
)

// Explain reports how the engine would evaluate a SELECT query: the join
// order chosen for each basic graph pattern run (with the cardinality
// estimates that drove it), the join strategy each scan would use, where
// filters apply, and the solution modifiers. A diagnostic facility in the
// spirit of endpoint EXPLAIN features; the output is human-readable text.
func Explain(g *rdf.Graph, src string) (string, error) {
	return ExplainOpts(g, src, Options{})
}

// ExplainOpts is Explain with evaluation options applied, so the reported
// worker count and strategy choices match what ExecSelectOpts would do.
func ExplainOpts(g *rdf.Graph, src string, opts Options) (string, error) {
	q, err := Parse(src)
	if err != nil {
		return "", err
	}
	if q.Form != FormSelect {
		return "", fmt.Errorf("sparql: EXPLAIN supports SELECT queries")
	}
	ev := newEvaluator(context.Background(), g, opts)
	var sb strings.Builder
	fmt.Fprintf(&sb, "SELECT plan: (workers: %d)\n", ev.workers)
	explainGroup(ev, q.Where, &sb, 1)
	if size, hits, misses := g.CardCacheStats(); size > 0 || hits+misses > 0 {
		fmt.Fprintf(&sb, "  stats cache: %d entries, %d hits, %d misses\n", size, hits, misses)
	}
	if len(q.GroupBy) > 0 {
		fmt.Fprintf(&sb, "  group by %d condition(s), %d aggregate column(s)\n",
			len(q.GroupBy), countAggregates(q))
	}
	if len(q.Having) > 0 {
		fmt.Fprintf(&sb, "  having: %d condition(s)\n", len(q.Having))
	}
	if len(q.OrderBy) > 0 {
		fmt.Fprintf(&sb, "  order by %d condition(s)\n", len(q.OrderBy))
	}
	if q.Select.Distinct {
		sb.WriteString("  distinct\n")
	}
	if q.Limit >= 0 {
		fmt.Fprintf(&sb, "  limit %d offset %d\n", q.Limit, q.Offset)
	}
	return sb.String(), nil
}

// ExplainAnalyze executes a SELECT query with the operator-level profiler
// enabled and returns the EXPLAIN ANALYZE tree: every operator node carries
// its invocation count, actual rows in/out and wall time, and every index
// scan additionally shows the planner's stats-cache estimate next to the
// actual cardinality with the q-error max(est/act, act/est). The query's
// results are computed and discarded; profiling never changes them (see
// TestProfileDifferential).
func ExplainAnalyze(g *rdf.Graph, src string, opts Options) (string, error) {
	return ExplainAnalyzeCtx(context.Background(), g, src, opts)
}

// ExplainAnalyzeCtx is ExplainAnalyze under a context (see ExecSelectCtx
// for cancellation/limit semantics).
func ExplainAnalyzeCtx(ctx context.Context, g *rdf.Graph, src string, opts Options) (string, error) {
	q, err := Parse(src)
	if err != nil {
		return "", err
	}
	if q.Form != FormSelect {
		return "", fmt.Errorf("sparql: EXPLAIN ANALYZE supports SELECT queries")
	}
	prof := NewProfile("query")
	opts.Profile = prof
	if _, err := ExecSelectCtx(ctx, g, q, opts); err != nil {
		return "", err
	}
	return prof.Tree(), nil
}

func countAggregates(q *Query) int {
	n := 0
	for _, it := range q.Select.Items {
		if it.Expr != nil && HasAggregate(it.Expr) {
			n++
		}
	}
	return n
}

func explainGroup(ev *evaluator, gp *GroupPattern, sb *strings.Builder, depth int) {
	indent := strings.Repeat("  ", depth)
	elems := ev.reorderTriples(gp.Elems)
	costBased := ev.planner != PlannerGreedy && !ev.noReorder
	step := 0
	bound := map[string]bool{}
	estB := map[string]bool{}
	// rows tracks the estimated input cardinality flowing into each scan,
	// mirroring what the planner sees at run time, so the reported strategy
	// matches the one the executor would pick.
	rows := 1
	// Mirror evalGroup's cost-mode filter pre-registration so the report
	// shows where each filter actually applies: inside a run, pushed down
	// when bound, or at group end.
	type xFilter struct {
		expr       Expr
		vars       map[string]bool
		deferToEnd bool
		consumed   bool
	}
	var pending []*xFilter
	if costBased && !ev.noPushdown {
		for _, e := range gp.Elems {
			if e.Filter != nil {
				f := &xFilter{expr: e.Filter, vars: map[string]bool{}}
				collectExprVars(e.Filter, f.vars)
				f.deferToEnd = usesBoundOrExists(e.Filter)
				pending = append(pending, f)
			}
		}
	}
	for idx := 0; idx < len(elems); idx++ {
		e := elems[idx]
		switch {
		case e.Triple != nil && e.Triple.Path == nil && costBased:
			// Gather the run exactly as evalGroup does (spanning filters when
			// pushdown is on) and render the cost-based plan.
			run := []*TriplePattern{e.Triple}
			for idx+1 < len(elems) {
				nx := elems[idx+1]
				if nx.Triple != nil && nx.Triple.Path == nil {
					run = append(run, nx.Triple)
					idx++
					continue
				}
				if nx.Filter != nil && !ev.noPushdown {
					idx++
					continue
				}
				break
			}
			preSure := cloneVarSet(bound)
			preEst := cloneVarSet(estB)
			for _, tp := range run {
				for _, v := range tp.Vars() {
					bound[v] = true
					estB[v] = true
				}
			}
			step++
			rp := ev.planRun(run)
			if !rp.ok {
				fmt.Fprintf(sb, "%s%d. bgp %d pattern(s): no matches (constant term not in dictionary)\n",
					indent, step, len(run))
				rows = 0
				continue
			}
			if rows < 1 {
				rows = 1
			}
			plan, _ := ev.planBGP(rp, run, colsFromVars(rp, preEst), rows)
			var pushed []*runFilter
			for _, f := range pending {
				if f.consumed || f.deferToEnd {
					continue
				}
				ready := true
				for v := range f.vars {
					if !bound[v] {
						ready = false
						break
					}
				}
				if ready {
					f.consumed = true
					pushed = append(pushed, &runFilter{expr: f.expr, vars: f.vars})
				}
			}
			if len(pushed) > 0 {
				attachFilters(plan, run, pushed, preSure)
			}
			seeded := ""
			if plan.fbSeeded() {
				seeded = ", feedback-seeded"
			}
			fmt.Fprintf(sb, "%s%d. bgp %d pattern(s)  (planner=%s, order=%s, cost=%d%s)\n",
				indent, step, len(run), plan.mode, plan.order(), int(plan.cost), seeded)
			for _, st := range plan.steps {
				fb := ""
				if st.fbSeeded {
					fb = ", feedback"
				}
				fmt.Fprintf(sb, "%s   - scan %s  (est. %d, %s%s)\n",
					indent, run[st.pat], st.card, st.strategy, fb)
				for _, f := range st.filters {
					fmt.Fprintf(sb, "%s     · filter %s  (in-run)\n", indent, f.expr)
				}
			}
			out := plan.steps[len(plan.steps)-1].estOut
			if out > 1<<30 {
				rows = 1 << 30
			} else {
				rows = int(out)
			}
		case e.Triple != nil:
			step++
			est := ev.estimate(e.Triple, bound)
			strategy := "index loop"
			if e.Triple.Path == nil {
				nJoinVars := 0
				for _, v := range e.Triple.Vars() {
					if bound[v] {
						nJoinVars++
					}
				}
				baseEst := 0
				if ids, ok := ev.constIDs(e.Triple); ok {
					baseEst = ev.g.CachedCountIDs(ids[0], ids[1], ids[2])
				}
				strategy = chooseStrategy(baseEst, rows, nJoinVars, false).String()
			}
			fmt.Fprintf(sb, "%s%d. scan %s  (est. %d, %s)\n", indent, step, e.Triple, est, strategy)
			if est > 0 && rows < 1<<30/(est+1) {
				rows *= est
			} else if est > 0 {
				rows = 1 << 30
			} else {
				rows = 0
			}
			for _, v := range e.Triple.Vars() {
				bound[v] = true
				estB[v] = true
			}
		case e.Filter != nil:
			if costBased && !ev.noPushdown {
				continue // reported inside a run or after the group walk
			}
			step++
			when := "pushed down when bound"
			if usesBoundOrExists(e.Filter) {
				when = "at group end"
			}
			fmt.Fprintf(sb, "%s%d. filter %s  (%s)\n", indent, step, e.Filter, when)
		case e.Optional != nil:
			step++
			fmt.Fprintf(sb, "%s%d. optional {\n", indent, step)
			explainGroup(ev, e.Optional, sb, depth+1)
			fmt.Fprintf(sb, "%s}\n", indent)
		case e.Union != nil:
			step++
			fmt.Fprintf(sb, "%s%d. union of %d alternatives\n", indent, step, len(e.Union.Alternatives))
			for _, alt := range e.Union.Alternatives {
				explainGroup(ev, alt, sb, depth+1)
			}
		case e.Group != nil:
			step++
			fmt.Fprintf(sb, "%s%d. group {\n", indent, step)
			explainGroup(ev, e.Group, sb, depth+1)
			fmt.Fprintf(sb, "%s}\n", indent)
		case e.Bind != nil:
			step++
			fmt.Fprintf(sb, "%s%d. bind %s as ?%s\n", indent, step, e.Bind.Expr, e.Bind.Var)
			estB[e.Bind.Var] = true
		case e.Values != nil:
			step++
			fmt.Fprintf(sb, "%s%d. values %v (%d rows)\n", indent, step, e.Values.Vars, len(e.Values.Rows))
			for j, v := range e.Values.Vars {
				sure := len(e.Values.Rows) > 0
				for _, row := range e.Values.Rows {
					if row[j].IsZero() {
						sure = false
						break
					}
				}
				if sure {
					bound[v] = true
				}
				estB[v] = true
			}
		case e.SubQuery != nil:
			step++
			fmt.Fprintf(sb, "%s%d. subquery {\n", indent, step)
			explainGroup(ev, e.SubQuery.Where, sb, depth+1)
			fmt.Fprintf(sb, "%s}\n", indent)
		case e.Minus != nil:
			step++
			fmt.Fprintf(sb, "%s%d. minus {\n", indent, step)
			explainGroup(ev, e.Minus, sb, depth+1)
			fmt.Fprintf(sb, "%s}\n", indent)
		}
	}
	// Filters the cost-based planner did not fold into a run.
	for _, f := range pending {
		if f.consumed {
			continue
		}
		step++
		when := "pushed down when bound"
		if f.deferToEnd {
			when = "at group end"
		}
		fmt.Fprintf(sb, "%s%d. filter %s  (%s)\n", indent, step, f.expr, when)
	}
}
