package sparql

import (
	"context"
	"fmt"

	"rdfanalytics/internal/rdf"
)

// SPARQL 1.1 Update subset: INSERT DATA, DELETE DATA, DELETE WHERE, and the
// full DELETE/INSERT ... WHERE form, plus CLEAR ALL. This is what a
// writable endpoint needs so clients can load answer-datasets or maintain
// graphs remotely.

// UpdateKind discriminates update operations.
type UpdateKind int

// The supported update operations.
const (
	// UpdateInsertData is INSERT DATA { triples }.
	UpdateInsertData UpdateKind = iota
	// UpdateDeleteData is DELETE DATA { triples }.
	UpdateDeleteData
	// UpdateDeleteWhere is DELETE WHERE { patterns }.
	UpdateDeleteWhere
	// UpdateModify is [DELETE {tmpl}] [INSERT {tmpl}] WHERE { patterns }.
	UpdateModify
	// UpdateClear is CLEAR ALL.
	UpdateClear
)

// Update is one parsed update operation.
type Update struct {
	Kind        UpdateKind
	InsertTempl []TriplePattern
	DeleteTempl []TriplePattern
	Where       *GroupPattern
	Prefixes    map[string]string
}

// ParseUpdate parses a single SPARQL update operation.
func ParseUpdate(src string) (*Update, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, prefixes: map[string]string{}}
	for k, v := range rdf.WellKnownPrefixes {
		p.prefixes[k] = v
	}
	u, err := p.parseUpdate()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errf("unexpected %s after update", p.cur())
	}
	return u, nil
}

func (p *parser) parseUpdate() (*Update, error) {
	// Prologue.
	for {
		if p.acceptKeyword("PREFIX") {
			t := p.cur()
			if t.kind != tokPName || t.text[len(t.text)-1] != ':' {
				return nil, p.errf("expected prefix label, got %s", t)
			}
			label := t.text[:len(t.text)-1]
			p.advance()
			iri := p.cur()
			if iri.kind != tokIRI {
				return nil, p.errf("expected IRI after PREFIX")
			}
			p.advance()
			p.prefixes[label] = iri.text
			continue
		}
		break
	}
	u := &Update{Prefixes: p.prefixes}
	switch {
	case p.acceptUpdateWord("INSERT"):
		if p.acceptUpdateWord("DATA") {
			u.Kind = UpdateInsertData
			tmpl, err := p.parseQuadBlock()
			if err != nil {
				return nil, err
			}
			u.InsertTempl = tmpl
			return u, nil
		}
		// INSERT {tmpl} WHERE {...}
		u.Kind = UpdateModify
		tmpl, err := p.parseQuadBlock()
		if err != nil {
			return nil, err
		}
		u.InsertTempl = tmpl
		if err := p.expectKeyword("WHERE"); err != nil {
			return nil, err
		}
		u.Where, err = p.parseGroupPattern()
		return u, err
	case p.acceptUpdateWord("DELETE"):
		if p.acceptUpdateWord("DATA") {
			u.Kind = UpdateDeleteData
			tmpl, err := p.parseQuadBlock()
			if err != nil {
				return nil, err
			}
			u.DeleteTempl = tmpl
			return u, nil
		}
		if p.acceptKeyword("WHERE") {
			u.Kind = UpdateDeleteWhere
			var err error
			u.Where, err = p.parseGroupPattern()
			return u, err
		}
		// DELETE {tmpl} [INSERT {tmpl}] WHERE {...}
		u.Kind = UpdateModify
		tmpl, err := p.parseQuadBlock()
		if err != nil {
			return nil, err
		}
		u.DeleteTempl = tmpl
		if p.acceptUpdateWord("INSERT") {
			ins, err := p.parseQuadBlock()
			if err != nil {
				return nil, err
			}
			u.InsertTempl = ins
		}
		if err := p.expectKeyword("WHERE"); err != nil {
			return nil, err
		}
		u.Where, err = p.parseGroupPattern()
		return u, err
	case p.acceptUpdateWord("CLEAR"):
		u.Kind = UpdateClear
		p.acceptUpdateWord("ALL")
		return u, nil
	default:
		return nil, p.errf("expected INSERT, DELETE or CLEAR, got %s", p.cur())
	}
}

// acceptUpdateWord matches update keywords that the query lexer may not
// reserve (INSERT, DELETE, DATA, CLEAR, ALL reach us as PNames-without-colon
// would error, so the lexer needs them recognized; they are matched here by
// keyword or bare identifier text).
func (p *parser) acceptUpdateWord(word string) bool {
	t := p.cur()
	if t.kind == tokKeyword && t.text == word {
		p.advance()
		return true
	}
	return false
}

func (p *parser) parseQuadBlock() ([]TriplePattern, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var out []TriplePattern
	for !p.acceptPunct("}") {
		tps, err := p.parseTriplesSameSubject()
		if err != nil {
			return nil, err
		}
		out = append(out, tps...)
		p.acceptPunct(".")
	}
	return out, nil
}

// UpdateResult reports what an update changed.
type UpdateResult struct {
	Inserted int
	Deleted  int
}

// ExecUpdate parses and applies an update to g.
func ExecUpdate(g *rdf.Graph, src string) (UpdateResult, error) {
	return ExecUpdateCtx(context.Background(), g, src)
}

// ExecUpdateCtx is ExecUpdate honoring ctx: the WHERE evaluation of
// DELETE WHERE and DELETE/INSERT...WHERE is cancellable. An aborted
// evaluation applies no changes.
func ExecUpdateCtx(ctx context.Context, g *rdf.Graph, src string) (UpdateResult, error) {
	u, err := ParseUpdate(src)
	if err != nil {
		return UpdateResult{}, err
	}
	return ApplyUpdateCtx(ctx, g, u)
}

// ApplyUpdate applies a parsed update to g.
func ApplyUpdate(g *rdf.Graph, u *Update) (UpdateResult, error) {
	return ApplyUpdateCtx(context.Background(), g, u)
}

// ApplyUpdateCtx applies a parsed update to g, honoring ctx during the
// WHERE-pattern evaluation. If the evaluation is cancelled or exceeds a
// budget, the update is abandoned before any triple is touched.
func ApplyUpdateCtx(ctx context.Context, g *rdf.Graph, u *Update) (UpdateResult, error) {
	var res UpdateResult
	ground := func(tmpl []TriplePattern) ([]rdf.Triple, error) {
		out := make([]rdf.Triple, 0, len(tmpl))
		for _, tp := range tmpl {
			if tp.S.IsVar() || tp.P.IsVar() || tp.O.IsVar() || tp.Path != nil {
				return nil, fmt.Errorf("sparql: DATA block must be ground (no variables)")
			}
			out = append(out, rdf.Triple{S: tp.S.Term, P: tp.P.Term, O: tp.O.Term})
		}
		return out, nil
	}
	switch u.Kind {
	case UpdateInsertData:
		ts, err := ground(u.InsertTempl)
		if err != nil {
			return res, err
		}
		for _, t := range ts {
			if g.Add(t) {
				res.Inserted++
			}
		}
		return res, nil
	case UpdateDeleteData:
		ts, err := ground(u.DeleteTempl)
		if err != nil {
			return res, err
		}
		for _, t := range ts {
			if g.Remove(t) {
				res.Deleted++
			}
		}
		return res, nil
	case UpdateDeleteWhere:
		// The WHERE patterns serve as both pattern and delete template.
		var tmpl []TriplePattern
		for _, e := range u.Where.Elems {
			if e.Triple == nil {
				return res, fmt.Errorf("sparql: DELETE WHERE supports only triple patterns")
			}
			tmpl = append(tmpl, *e.Triple)
		}
		ev := newEvaluator(ctx, g, Options{})
		rows := ev.evalGroup(u.Where, []Binding{{}})
		if err := ev.cancel.cause(); err != nil {
			observeAbort(nil, err)
			return res, err
		}
		return res, deleteInsert(g, rows, tmpl, nil, &res)
	case UpdateModify:
		ev := newEvaluator(ctx, g, Options{})
		rows := ev.evalGroup(u.Where, []Binding{{}})
		if err := ev.cancel.cause(); err != nil {
			observeAbort(nil, err)
			return res, err
		}
		return res, deleteInsert(g, rows, u.DeleteTempl, u.InsertTempl, &res)
	case UpdateClear:
		for _, t := range g.Triples() {
			g.Remove(t)
			res.Deleted++
		}
		return res, nil
	default:
		return res, fmt.Errorf("sparql: unknown update kind %d", u.Kind)
	}
}

// deleteInsert instantiates the delete template for every solution (removing
// matches), then the insert template (adding instantiations). Deletions are
// collected before application so a solution's own deletions cannot hide
// later matches.
func deleteInsert(g *rdf.Graph, rows []Binding, del, ins []TriplePattern, res *UpdateResult) error {
	var toDelete, toInsert []rdf.Triple
	inst := func(tmpl []TriplePattern, b Binding, acc *[]rdf.Triple) {
		for _, tp := range tmpl {
			s, okS := instantiate(tp.S, b)
			p, okP := instantiate(tp.P, b)
			o, okO := instantiate(tp.O, b)
			if !okS || !okP || !okO || s.IsLiteral() || p.Kind != rdf.KindIRI {
				continue
			}
			*acc = append(*acc, rdf.Triple{S: s, P: p, O: o})
		}
	}
	for _, b := range rows {
		inst(del, b, &toDelete)
		inst(ins, b, &toInsert)
	}
	for _, t := range toDelete {
		if g.Remove(t) {
			res.Deleted++
		}
	}
	for _, t := range toInsert {
		if g.Add(t) {
			res.Inserted++
		}
	}
	return nil
}
