package sparql

import "testing"

// FuzzParse drives the SPARQL query parser with arbitrary input: whatever
// the bytes, Parse must return a value or an error — never panic, never
// hang. The seeds cover every query form and the trickier grammar corners
// (paths, aggregates, subqueries, escapes).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT * WHERE { ?s ?p ?o }",
		"SELECT ?s WHERE { ?s a <http://e/C> . FILTER(?s != <http://e/x>) }",
		"PREFIX ex: <http://e/> SELECT (COUNT(*) AS ?n) WHERE { ?s ex:p ?o } GROUP BY ?o HAVING(COUNT(*) > 1)",
		"ASK { ?s ?p ?o }",
		"CONSTRUCT { ?s <http://e/q> ?o } WHERE { ?s <http://e/p> ?o }",
		"DESCRIBE <http://e/x>",
		"SELECT ?x WHERE { ?x (<http://e/p>/<http://e/q>)+ ?y }",
		"SELECT ?x WHERE { ?x ^<http://e/p>|<http://e/q>* ?y }",
		"SELECT * WHERE { { SELECT ?s WHERE { ?s ?p ?o } LIMIT 5 } ?s ?q ?v }",
		"SELECT * WHERE { ?s ?p ?o . OPTIONAL { ?s <http://e/q> ?v } MINUS { ?s <http://e/r> ?w } }",
		"SELECT * WHERE { VALUES ?x { 1 2.5 \"str\"@en \"t\"^^<http://www.w3.org/2001/XMLSchema#date> } }",
		"SELECT * WHERE { ?s ?p \"a\\\"b\\nc\" } ORDER BY DESC(?s) LIMIT 10 OFFSET 2",
		"SELECT * WHERE { BIND(1+2*3 AS ?x) FILTER EXISTS { ?a ?b ?c } }",
		"SELECT ?x WHERE { ?x <http://e/at> \"2021-06-01T23:00:00+05:00\"^^<http://www.w3.org/2001/XMLSchema#dateTime> } ORDER BY ?x",
		"SELECT ?x WHERE { ?x <http://e/d> ?d . FILTER(?d >= \"2021-01-10\"^^<http://www.w3.org/2001/XMLSchema#date>) } ORDER BY DESC(?d)",
		"SELECT (MIN(?v) AS ?m) (MAX(?v) AS ?x) (COUNT(*) AS ?n) WHERE { ?s <http://e/none> ?v }",
		"SELECT ?g WHERE { ?s <http://e/p> ?g . OPTIONAL { ?s <http://e/q> ?v } } GROUP BY ?g ORDER BY DESC(SUM(?v)) ?g",
		"SELECT * WHERE {",
		"SELECT ?x WHERE { ?x <p ?y }",
		"PREFIX : <u> SELECT * WHERE { :a :b :c }",
		"",
		"\x00\xff{",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err == nil && q == nil {
			t.Fatalf("Parse(%q) returned nil query and nil error", src)
		}
	})
}

// FuzzParseUpdate fuzzes the SPARQL update grammar the same way.
func FuzzParseUpdate(f *testing.F) {
	seeds := []string{
		"INSERT DATA { <http://e/s> <http://e/p> 1 }",
		"DELETE DATA { <http://e/s> <http://e/p> \"x\" }",
		"DELETE WHERE { ?s <http://e/p> ?o }",
		"DELETE { ?s ?p ?o } INSERT { ?s ?p 2 } WHERE { ?s ?p ?o }",
		"CLEAR ALL",
		"PREFIX ex: <http://e/> INSERT DATA { ex:s ex:p ex:o }",
		"INSERT DATA {",
		"DELETE",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		u, err := ParseUpdate(src)
		if err == nil && u == nil {
			t.Fatalf("ParseUpdate(%q) returned nil update and nil error", src)
		}
	})
}
