package sparql

import (
	"rdfanalytics/internal/fault"
	"rdfanalytics/internal/rdf"
)

// Property-path evaluation. Paths are evaluated by node-set expansion:
// forward from bound subjects, backward from bound objects, and — when both
// ends are variables — from the candidate sources of the path's first step.

func (ev *evaluator) evalPathTriple(tp *TriplePattern, input []Binding) []Binding {
	ps := ev.cur.StartChild("path_scan")
	if ps != nil {
		ps.SetAttr("pattern", tp.String())
		ps.SetAttr("rows_in", len(input))
	}
	plabel := ""
	if ev.prof != nil {
		plabel = tp.String()
	}
	pp, ppt := ev.profEnter("path_scan", plabel)
	var out []Binding
	for _, b := range input {
		if ev.cancel.poll() {
			break
		}
		if err := fault.InjectCtx(ev.cancel.ctx, "sparql.path"); err != nil {
			ev.cancel.abort(err)
			break
		}
		if ev.overBudget(len(out)) {
			break
		}
		s, sVar := substNode(tp.S, b)
		o, oVar := substNode(tp.O, b)
		emit := func(sT, oT rdf.Term) {
			nb := b.clone()
			if sVar != "" {
				if cur, ok := nb[sVar]; ok && cur != sT {
					return
				}
				nb[sVar] = sT
			}
			if oVar != "" {
				if cur, ok := nb[oVar]; ok && cur != oT {
					return
				}
				if sVar == oVar && sT != oT {
					return
				}
				nb[oVar] = oT
			}
			out = append(out, nb)
		}
		switch {
		case s != rdf.Any && o != rdf.Any:
			if ev.pathConnects(tp.Path, s, o) {
				emit(s, o)
			}
		case s != rdf.Any:
			for _, oT := range ev.pathForward(tp.Path, s) {
				emit(s, oT)
			}
		case o != rdf.Any:
			for _, sT := range ev.pathBackward(tp.Path, o) {
				emit(sT, o)
			}
		default:
			for _, sT := range ev.pathSources(tp.Path) {
				if ev.cancel.aborted() || ev.overBudget(len(out)) {
					break
				}
				for _, oT := range ev.pathForward(tp.Path, sT) {
					emit(sT, oT)
				}
			}
		}
	}
	ev.profExit(pp, ppt, len(input), len(out))
	if ps != nil {
		ps.SetAttr("rows_out", len(out))
		ps.Finish()
	}
	return out
}

// pathForward returns the distinct nodes reachable from s via the path.
func (ev *evaluator) pathForward(p Path, s rdf.Term) []rdf.Term {
	set := map[rdf.Term]struct{}{}
	ev.pathStep(p, s, false, set)
	out := make([]rdf.Term, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	return out
}

// pathBackward returns the distinct nodes from which o is reachable.
func (ev *evaluator) pathBackward(p Path, o rdf.Term) []rdf.Term {
	set := map[rdf.Term]struct{}{}
	ev.pathStep(p, o, true, set)
	out := make([]rdf.Term, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	return out
}

// pathStep expands one path from node n (reverse=true walks the inverse
// direction) accumulating reached nodes into acc.
func (ev *evaluator) pathStep(p Path, n rdf.Term, reverse bool, acc map[rdf.Term]struct{}) {
	switch x := p.(type) {
	case PathIRI:
		if reverse {
			ev.g.Match(rdf.Any, x.IRI, n, func(t rdf.Triple) bool {
				acc[t.S] = struct{}{}
				return true
			})
		} else {
			ev.g.Match(n, x.IRI, rdf.Any, func(t rdf.Triple) bool {
				acc[t.O] = struct{}{}
				return true
			})
		}
	case PathInverse:
		ev.pathStep(x.Sub, n, !reverse, acc)
	case PathSeq:
		first, second := x.Left, x.Right
		if reverse {
			first, second = x.Right, x.Left
		}
		mid := map[rdf.Term]struct{}{}
		ev.pathStep(first, n, reverse, mid)
		for m := range mid {
			ev.pathStep(second, m, reverse, acc)
		}
	case PathAlt:
		ev.pathStep(x.Left, n, reverse, acc)
		ev.pathStep(x.Right, n, reverse, acc)
	case PathMod:
		// BFS expansion with the sub-path as the edge relation. The search
		// is governed: depth and visited-set caps bound the worst case of
		// p*/p+ over cyclic or high-fanout graphs, and every level polls
		// for cancellation, so an unbounded path expansion is killable.
		maxDepth := ev.limits.pathDepth()
		maxVisited := ev.limits.pathVisited()
		frontier := []rdf.Term{n}
		visited := map[rdf.Term]struct{}{n: {}}
		depth := 0
		if x.Min == 0 {
			acc[n] = struct{}{}
		}
		for len(frontier) > 0 {
			if ev.cancel.poll() {
				return
			}
			if x.Max == 1 && depth >= 1 {
				break
			}
			if maxDepth > 0 && depth >= maxDepth {
				ev.cancel.abort(&BudgetError{Resource: "path_depth", Used: depth + 1, Limit: maxDepth})
				return
			}
			depth++
			next := map[rdf.Term]struct{}{}
			for _, f := range frontier {
				if ev.cancel.aborted() {
					return
				}
				ev.pathStep(x.Sub, f, reverse, next)
			}
			frontier = frontier[:0]
			for t := range next {
				if _, seen := visited[t]; seen {
					continue
				}
				visited[t] = struct{}{}
				if maxVisited > 0 && len(visited) > maxVisited {
					ev.cancel.abort(&BudgetError{Resource: "path_visited", Used: len(visited), Limit: maxVisited})
					return
				}
				if depth >= x.Min || x.Min == 0 {
					acc[t] = struct{}{}
				}
				frontier = append(frontier, t)
			}
		}
	}
}

// pathConnects reports whether o is reachable from s via the path.
func (ev *evaluator) pathConnects(p Path, s, o rdf.Term) bool {
	for _, t := range ev.pathForward(p, s) {
		if t == o {
			return true
		}
	}
	return false
}

// pathSources returns candidate starting nodes for a path whose subject is
// an unbound variable: the subjects (or objects, for inverse heads) of the
// path's first atomic step. For zero-length-capable paths every graph node
// is a candidate.
func (ev *evaluator) pathSources(p Path) []rdf.Term {
	set := map[rdf.Term]struct{}{}
	ev.collectSources(p, false, set)
	out := make([]rdf.Term, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	return out
}

func (ev *evaluator) collectSources(p Path, reverse bool, acc map[rdf.Term]struct{}) {
	switch x := p.(type) {
	case PathIRI:
		if reverse {
			ev.g.Match(rdf.Any, x.IRI, rdf.Any, func(t rdf.Triple) bool {
				acc[t.O] = struct{}{}
				return true
			})
		} else {
			ev.g.Match(rdf.Any, x.IRI, rdf.Any, func(t rdf.Triple) bool {
				acc[t.S] = struct{}{}
				return true
			})
		}
	case PathInverse:
		ev.collectSources(x.Sub, !reverse, acc)
	case PathSeq:
		if reverse {
			ev.collectSources(x.Right, reverse, acc)
		} else {
			ev.collectSources(x.Left, reverse, acc)
		}
	case PathAlt:
		ev.collectSources(x.Left, reverse, acc)
		ev.collectSources(x.Right, reverse, acc)
	case PathMod:
		if x.Min == 0 {
			// Zero-length paths relate every node to itself: candidates are
			// all subjects and objects in the graph. The full scan polls
			// for cancellation.
			scanned := 0
			ev.g.Match(rdf.Any, rdf.Any, rdf.Any, func(t rdf.Triple) bool {
				if scanned++; scanned%pollEvery == 0 && ev.cancel.poll() {
					return false
				}
				acc[t.S] = struct{}{}
				if t.O.IsResource() {
					acc[t.O] = struct{}{}
				}
				return true
			})
			return
		}
		ev.collectSources(x.Sub, reverse, acc)
	}
}
