package sparql

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"rdfanalytics/internal/rdf"
)

// Binding is one solution mapping: variable name -> bound term. Absent keys
// are unbound variables.
type Binding map[string]rdf.Term

// clone returns a copy of the binding.
func (b Binding) clone() Binding {
	out := make(Binding, len(b)+1)
	for k, v := range b {
		out[k] = v
	}
	return out
}

// compatible reports whether two bindings agree on every shared variable.
func (b Binding) compatible(other Binding) bool {
	for k, v := range b {
		if w, ok := other[k]; ok && w != v {
			return false
		}
	}
	return true
}

// Results is a SELECT result table.
type Results struct {
	// Vars is the projection, in declaration order.
	Vars []string
	// Rows holds one binding per solution.
	Rows []Binding
}

// Len returns the number of solution rows.
func (r *Results) Len() int { return len(r.Rows) }

// Get returns the term bound to v in row i (zero Term when unbound).
func (r *Results) Get(i int, v string) rdf.Term { return r.Rows[i][v] }

// Column returns all values of one variable, in row order; unbound positions
// hold the zero Term.
func (r *Results) Column(v string) []rdf.Term {
	out := make([]rdf.Term, len(r.Rows))
	for i, row := range r.Rows {
		out[i] = row[v]
	}
	return out
}

// Sort orders rows by the projected variables (term order), making result
// tables deterministic for tests and serialization.
func (r *Results) Sort() {
	sort.SliceStable(r.Rows, func(i, j int) bool {
		for _, v := range r.Vars {
			a, b := r.Rows[i][v], r.Rows[j][v]
			if a == b {
				continue
			}
			return a.Less(b)
		}
		return false
	})
}

// String renders the results as an aligned text table (debug/REPL helper).
func (r *Results) String() string {
	var sb strings.Builder
	widths := make([]int, len(r.Vars))
	cells := make([][]string, len(r.Rows))
	for i, v := range r.Vars {
		widths[i] = len(v) + 1
	}
	for i, row := range r.Rows {
		cells[i] = make([]string, len(r.Vars))
		for j, v := range r.Vars {
			s := ""
			if t, ok := row[v]; ok {
				s = displayTerm(t)
			}
			cells[i][j] = s
			if len(s) > widths[j] {
				widths[j] = len(s)
			}
		}
	}
	for j, v := range r.Vars {
		fmt.Fprintf(&sb, "%-*s ", widths[j], "?"+v)
	}
	sb.WriteByte('\n')
	for j := range r.Vars {
		sb.WriteString(strings.Repeat("-", widths[j]))
		sb.WriteByte(' ')
	}
	sb.WriteByte('\n')
	for _, row := range cells {
		for j, c := range row {
			fmt.Fprintf(&sb, "%-*s ", widths[j], c)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func displayTerm(t rdf.Term) string {
	switch t.Kind {
	case rdf.KindIRI:
		return t.LocalName()
	case rdf.KindBlank:
		return "_:" + t.Value
	default:
		return t.Value
	}
}

// WriteCSV writes the results as CSV with a header row of variable names.
func (r *Results) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Vars); err != nil {
		return err
	}
	for _, row := range r.Rows {
		rec := make([]string, len(r.Vars))
		for i, v := range r.Vars {
			if t, ok := row[v]; ok {
				rec[i] = t.Value
				if t.Kind == rdf.KindBlank {
					rec[i] = "_:" + t.Value
				}
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// sparqlJSON mirrors the W3C "SPARQL 1.1 Query Results JSON Format".
type sparqlJSON struct {
	Head struct {
		Vars []string `json:"vars"`
	} `json:"head"`
	Results struct {
		Bindings []map[string]sparqlJSONTerm `json:"bindings"`
	} `json:"results"`
}

type sparqlJSONTerm struct {
	Type     string `json:"type"`
	Value    string `json:"value"`
	Datatype string `json:"datatype,omitempty"`
	Lang     string `json:"xml:lang,omitempty"`
}

// WriteJSON writes the results in the SPARQL 1.1 JSON results format.
func (r *Results) WriteJSON(w io.Writer) error {
	doc := sparqlJSON{}
	doc.Head.Vars = r.Vars
	doc.Results.Bindings = make([]map[string]sparqlJSONTerm, 0, len(r.Rows))
	for _, row := range r.Rows {
		jb := map[string]sparqlJSONTerm{}
		for _, v := range r.Vars {
			t, ok := row[v]
			if !ok {
				continue
			}
			jt := sparqlJSONTerm{Value: t.Value}
			switch t.Kind {
			case rdf.KindIRI:
				jt.Type = "uri"
			case rdf.KindBlank:
				jt.Type = "bnode"
			default:
				jt.Type = "literal"
				if t.Lang != "" {
					jt.Lang = t.Lang
				} else if t.Datatype != "" && t.Datatype != rdf.XSDString {
					jt.Datatype = t.Datatype
				}
			}
			jb[v] = jt
		}
		doc.Results.Bindings = append(doc.Results.Bindings, jb)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// ParseJSONResults parses the SPARQL 1.1 JSON results format back into
// Results (used by the HTTP client side of the endpoint tests).
func ParseJSONResults(r io.Reader) (*Results, error) {
	var doc sparqlJSON
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, err
	}
	out := &Results{Vars: doc.Head.Vars}
	for _, jb := range doc.Results.Bindings {
		row := Binding{}
		for v, jt := range jb {
			switch jt.Type {
			case "uri":
				row[v] = rdf.NewIRI(jt.Value)
			case "bnode":
				row[v] = rdf.NewBlank(jt.Value)
			default:
				switch {
				case jt.Lang != "":
					row[v] = rdf.NewLangString(jt.Value, jt.Lang)
				case jt.Datatype != "":
					row[v] = rdf.NewTyped(jt.Value, jt.Datatype)
				default:
					row[v] = rdf.NewString(jt.Value)
				}
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}
