package sparql

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"rdfanalytics/internal/rdf"
)

func TestParsePlannerMode(t *testing.T) {
	cases := map[string]PlannerMode{
		"":           PlannerAuto,
		"auto":       PlannerAuto,
		"greedy":     PlannerGreedy,
		"DP":         PlannerDP,
		" feedback ": PlannerFeedback,
	}
	for in, want := range cases {
		got, err := ParsePlannerMode(in)
		if err != nil || got != want {
			t.Errorf("ParsePlannerMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParsePlannerMode("selinger"); err == nil {
		t.Error("unknown planner accepted")
	}
	for _, m := range []PlannerMode{PlannerAuto, PlannerGreedy, PlannerDP, PlannerFeedback} {
		rt, err := ParsePlannerMode(m.String())
		if err != nil || rt != m {
			t.Errorf("round trip %v -> %q -> %v, %v", m, m.String(), rt, err)
		}
	}
}

// plannerOptionSets are the ablation configurations every differential test
// runs: all must produce identical answers.
func plannerOptionSets() map[string]Options {
	return map[string]Options{
		"no-reorder": {NoReorder: true},
		"greedy":     {Planner: PlannerGreedy},
		"dp":         {Planner: PlannerDP},
		"dp-nopush":  {Planner: PlannerDP, NoPushdown: true},
		"dp-replan":  {Planner: PlannerDP, ReplanQError: 1e-9},
		"feedback":   {Planner: PlannerFeedback},
	}
}

// TestPlannerDifferential: the cost-based planners must agree with the naive
// reference evaluator on random conjunctive queries — same harness as
// TestBGPDifferential, wider pattern counts so both the DP and the
// per-subset bound propagation get exercised.
func TestPlannerDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 150; trial++ {
		g, triples := randomGraph(rng, 3+rng.Intn(25))
		nPatterns := 1 + rng.Intn(5)
		patterns := make([]TriplePattern, nPatterns)
		varSet := map[string]bool{}
		for i := range patterns {
			patterns[i] = randomPattern(rng)
			for _, v := range patterns[i].Vars() {
				varSet[v] = true
			}
		}
		var vars []string
		for v := range varSet {
			vars = append(vars, v)
		}
		sort.Strings(vars)
		want := canonical(naiveBGP(triples, patterns), vars)
		for name, opts := range plannerOptionSets() {
			gp := &GroupPattern{}
			for i := range patterns {
				tp := patterns[i]
				gp.Elems = append(gp.Elems, PatternElem{Triple: &tp})
			}
			ev := newEvaluator(context.Background(), g, opts)
			got := canonical(ev.evalGroup(gp, []Binding{{}}), vars)
			if len(got) != len(want) {
				t.Fatalf("trial %d [%s]: %d rows, reference %d\npatterns: %v",
					trial, name, len(got), len(want), patterns)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d [%s]: row %d differs:\n  got:  %q\n  want: %q\npatterns: %v",
						trial, name, i, got[i], want[i], patterns)
				}
			}
		}
	}
}

// TestPlannerClauseDifferential runs full queries — filters between
// patterns, VALUES/BIND-seeded estimates, OPTIONAL, MINUS, EXISTS,
// subqueries and aggregates — under every planner configuration and demands
// identical answers. This is the acceptance check that reordering, in-run
// filter pushdown and projection pruning never change semantics.
func TestPlannerClauseDifferential(t *testing.T) {
	queries := []string{
		`SELECT ?a ?b WHERE { ?a <http://e/p0> ?b . FILTER(?b >= 1) ?a <http://e/p1> ?c . }`,
		`SELECT ?a WHERE { ?a <http://e/p0> ?b . ?b <http://e/p1> ?c . ?c <http://e/p2> ?d . FILTER(?d != 0) }`,
		`SELECT ?b WHERE { ?a <http://e/p0> ?b . ?a <http://e/p1> ?c }`, // ?a, ?c prunable
		`SELECT ?a WHERE { VALUES ?b { <http://e/s0> <http://e/s1> } ?a <http://e/p0> ?b . ?a <http://e/p1> ?c }`,
		`SELECT ?a ?d WHERE { ?a <http://e/p0> ?b . BIND(?b AS ?d) ?a <http://e/p1> ?c . FILTER(?d = ?c) }`,
		`SELECT ?a WHERE { ?a <http://e/p0> ?b . OPTIONAL { ?a <http://e/p1> ?c } FILTER(!BOUND(?c)) }`,
		`SELECT ?a WHERE { ?a <http://e/p0> ?b . MINUS { ?a <http://e/p1> ?b } }`,
		`SELECT ?a WHERE { ?a <http://e/p0> ?b . FILTER EXISTS { ?a <http://e/p1> ?c } }`,
		`SELECT ?a WHERE { { SELECT ?a WHERE { ?a <http://e/p0> ?b } } ?a <http://e/p1> ?c . }`,
		`SELECT ?b (COUNT(?a) AS ?n) WHERE { ?a <http://e/p0> ?b . ?a <http://e/p1> ?c } GROUP BY ?b`,
		`SELECT DISTINCT ?a WHERE { { ?a <http://e/p0> ?b } UNION { ?a <http://e/p1> ?b } ?a <http://e/p2> ?c . }`,
		`SELECT * WHERE { ?a <http://e/p0> ?b . ?a <http://e/p1> ?c . FILTER(?b != ?c) }`,
	}
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		g, _ := randomGraph(rng, 5+rng.Intn(25))
		for _, src := range queries {
			q := MustParse(src)
			base, err := ExecSelectOpts(g, q, Options{NoReorder: true, NoPushdown: true})
			if err != nil {
				t.Fatalf("%s: %v", src, err)
			}
			want := canonical(base.Rows, base.Vars)
			for name, opts := range plannerOptionSets() {
				res, err := ExecSelectOpts(g, q, opts)
				if err != nil {
					t.Fatalf("[%s] %s: %v", name, src, err)
				}
				got := canonical(res.Rows, res.Vars)
				if len(got) != len(want) {
					t.Fatalf("trial %d [%s] %s: %d rows, want %d", trial, name, src, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("trial %d [%s] %s: row %d differs\n  got:  %q\n  want: %q",
							trial, name, src, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestPlannerDeterminism: repeated planning of the same query must yield an
// identical plan (EXPLAIN text), for both search strategies.
func TestPlannerDeterminism(t *testing.T) {
	g := invoices(t)
	src := `PREFIX ex: <http://e/>
SELECT ?i ?b ?q ?p ?w WHERE {
  ?i ex:takesPlaceAt ?b .
  ?i ex:inQuantity ?q .
  ?i ex:delivers ?p .
  ?p ex:brand ?w .
}`
	for _, mode := range []PlannerMode{PlannerDP, PlannerGreedy, PlannerFeedback} {
		first, err := ExplainOpts(g, src, Options{Planner: mode})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			again, err := ExplainOpts(g, src, Options{Planner: mode})
			if err != nil {
				t.Fatal(err)
			}
			if again != first {
				t.Fatalf("[%v] plan not deterministic:\n--- first\n%s\n--- again\n%s", mode, first, again)
			}
		}
	}
}

// TestPlannerSelectiveFirst: the DP order must schedule the selective
// pattern before the full scan, same contract the greedy orderer had.
func TestPlannerSelectiveFirst(t *testing.T) {
	g := invoices(t)
	plan, err := ExplainOpts(g, `PREFIX ex: <http://e/>
SELECT ?i WHERE {
  ?i ?p ?o .
  ?i ex:delivers ex:fanta .
}`, Options{Planner: PlannerDP})
	if err != nil {
		t.Fatal(err)
	}
	fanta := strings.Index(plan, "fanta")
	scanAll := strings.Index(plan, "?i ?p ?o")
	if fanta < 0 || scanAll < 0 || fanta > scanAll {
		t.Errorf("selective pattern not first:\n%s", plan)
	}
	if !strings.Contains(plan, "planner=dp") {
		t.Errorf("planner tag missing:\n%s", plan)
	}
}

// replanGraph builds n subjects each carrying a 3-step property chain, so
// every pattern of a 3-pattern chain query matches n triples.
func replanGraph(n int) *rdf.Graph {
	g := rdf.NewGraph()
	for i := 0; i < n; i++ {
		s := rdf.NewIRI(fmt.Sprintf("http://e/s%d", i))
		v := rdf.NewIRI(fmt.Sprintf("http://e/v%d", i))
		w := rdf.NewIRI(fmt.Sprintf("http://e/w%d", i))
		g.Add(rdf.Triple{S: s, P: rdf.NewIRI("http://e/p0"), O: v})
		g.Add(rdf.Triple{S: v, P: rdf.NewIRI("http://e/p1"), O: w})
		g.Add(rdf.Triple{S: w, P: rdf.NewIRI("http://e/p2"), O: rdf.NewInteger(int64(i))})
	}
	return g
}

const replanQuery = `SELECT ?a ?d WHERE {
  ?a <http://e/p0> ?b .
  ?b <http://e/p1> ?c .
  ?c <http://e/p2> ?d .
}`

// TestReplanTriggers: with an absurdly low q-error threshold every scan that
// produces >= replanMinRows rows re-plans the remaining patterns; the run
// must still return correct results and the profile must record the replans.
func TestReplanTriggers(t *testing.T) {
	g := replanGraph(100)
	q := MustParse(replanQuery)
	prof := NewProfile("query")
	res, err := ExecSelectOpts(g, q, Options{Planner: PlannerDP, ReplanQError: 1e-9, Profile: prof})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 100 {
		t.Fatalf("rows = %d, want 100", res.Len())
	}
	if !strings.Contains(prof.Tree(), "replans=") {
		t.Fatalf("profile records no replans:\n%s", prof.Tree())
	}
}

// TestReplanDisabled: a negative ReplanQError switches adaptivity off.
func TestReplanDisabled(t *testing.T) {
	g := replanGraph(100)
	q := MustParse(replanQuery)
	prof := NewProfile("query")
	if _, err := ExecSelectOpts(g, q, Options{Planner: PlannerDP, ReplanQError: -1, Profile: prof}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(prof.Tree(), "replans=") {
		t.Fatalf("replanning ran despite being disabled:\n%s", prof.Tree())
	}
}

// TestGreedyLookaheadLargeRun: runs beyond dpMaxPatterns fall back to the
// lookahead orderer and stay correct.
func TestGreedyLookaheadLargeRun(t *testing.T) {
	g := rdf.NewGraph()
	s := rdf.NewIRI("http://e/s")
	var sb strings.Builder
	sb.WriteString("SELECT ?v0 WHERE {\n")
	for i := 0; i < dpMaxPatterns+2; i++ {
		g.Add(rdf.Triple{S: s, P: rdf.NewIRI(fmt.Sprintf("http://e/q%d", i)), O: rdf.NewInteger(int64(i))})
		fmt.Fprintf(&sb, "  ?s <http://e/q%d> ?v%d .\n", i, i)
	}
	sb.WriteString("}")
	res, err := ExecSelectOpts(g, MustParse(sb.String()), Options{Planner: PlannerDP})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("rows = %d, want 1", res.Len())
	}
}

// TestCountVarUses verifies the reference counter behind projection pruning.
func TestCountVarUses(t *testing.T) {
	q := MustParse(`SELECT ?b WHERE {
  ?a <http://e/p0> ?b .
  ?a <http://e/p1> ?c .
  FILTER EXISTS { ?d <http://e/p2> ?c }
}`)
	counts, star := countVarUses(q)
	if star {
		t.Fatal("star = true for explicit projection")
	}
	want := map[string]int{"a": 2, "b": 2, "c": 2, "d": 1}
	for v, n := range want {
		if counts[v] != n {
			t.Errorf("count[%s] = %d, want %d (all: %v)", v, counts[v], n, counts)
		}
	}
	if _, star := countVarUses(MustParse(`SELECT * WHERE { ?a ?p ?o }`)); !star {
		t.Error("SELECT * not flagged")
	}
}

// TestValuesSeededEstimates (estimate() edge case): a variable bound only by
// VALUES upstream must count as bound when ordering the run — the selective
// ?a p0 ?b scan with ?b pinned should come first even under the legacy
// greedy orderer, which used to cost it as fully unbound.
func TestValuesSeededEstimates(t *testing.T) {
	g, _ := randomGraph(rand.New(rand.NewSource(5)), 30)
	src := `SELECT ?a WHERE {
  VALUES ?b { <http://e/s0> }
  ?a <http://e/p0> ?b .
  ?a <http://e/p1> ?c .
}`
	for _, mode := range []PlannerMode{PlannerGreedy, PlannerDP} {
		plan, err := ExplainOpts(g, src, Options{Planner: mode})
		if err != nil {
			t.Fatal(err)
		}
		p0 := strings.Index(plan, "p0")
		p1 := strings.Index(plan, "p1")
		if p0 < 0 || p1 < 0 || p0 > p1 {
			t.Errorf("[%v] VALUES-bound scan not scheduled first:\n%s", mode, plan)
		}
	}
}

// TestPlanOrderEmptyAndSingle covers the degenerate search inputs.
func TestPlanOrderEmptyAndSingle(t *testing.T) {
	g := invoices(t)
	res, err := ExecSelectOpts(g, MustParse(`PREFIX ex: <http://e/>
SELECT ?b WHERE { ?i ex:takesPlaceAt ?b }`), Options{Planner: PlannerDP})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 7 {
		t.Fatalf("rows = %d, want 7", res.Len())
	}
}
