package sparql

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Resource governance for query evaluation. The paper's promise is
// *interactive* analytics; a pathological query (cross-product BGP,
// unbounded property path, huge GROUP BY) must be stoppable, not merely
// observable. Three mechanisms compose:
//
//  1. Cooperative cancellation: the evaluator polls its context at every
//     operator boundary and every pollEvery rows inside hot loops (including
//     worker-pool partitions), so a deadline or client disconnect aborts
//     evaluation within a bounded amount of extra work.
//  2. A row budget (Limits.MaxIntermediateRows) on intermediate binding
//     sets, checked incrementally while a join is producing rows — a
//     cross-product is killed while it is still small, not after it has
//     consumed the heap.
//  3. Depth and visited-set caps on property-path expansion, which bound
//     the worst case of p* / p+ over cyclic or high-fanout graphs.
//
// All three surface as typed errors from the Exec entry points; partial
// results are never returned.

// pollEvery is the number of rows a hot loop processes between cancellation
// and budget checks: large enough that the atomic load is amortized to
// noise, small enough that abort latency stays far below any realistic
// deadline.
const pollEvery = 1024

// Default property-path caps, applied when the corresponding Limits field
// is zero. They are far above anything a sane interactive query needs while
// still bounding the worst case; set a field negative to disable the cap.
const (
	DefaultMaxPathDepth   = 10_000
	DefaultMaxPathVisited = 5_000_000
)

// Limits bounds the resources one query evaluation may consume. The zero
// value means "no row budget, default path caps".
type Limits struct {
	// MaxIntermediateRows caps the size of any intermediate binding set
	// (including rows being produced inside one join). 0 disables the cap.
	MaxIntermediateRows int
	// MaxPathDepth caps BFS depth in property-path expansion
	// (0 = DefaultMaxPathDepth, negative = unlimited).
	MaxPathDepth int
	// MaxPathVisited caps the visited-node set of one property-path
	// expansion (0 = DefaultMaxPathVisited, negative = unlimited).
	MaxPathVisited int
}

// pathDepth resolves the effective path-depth cap (0 = unlimited).
func (l Limits) pathDepth() int {
	switch {
	case l.MaxPathDepth < 0:
		return 0
	case l.MaxPathDepth == 0:
		return DefaultMaxPathDepth
	default:
		return l.MaxPathDepth
	}
}

// pathVisited resolves the effective visited-set cap (0 = unlimited).
func (l Limits) pathVisited() int {
	switch {
	case l.MaxPathVisited < 0:
		return 0
	case l.MaxPathVisited == 0:
		return DefaultMaxPathVisited
	default:
		return l.MaxPathVisited
	}
}

// ErrBudgetExceeded is the sentinel matched by errors.Is for every resource
// budget violation (row budget, path depth, path visited set).
var ErrBudgetExceeded = errors.New("sparql: resource budget exceeded")

// BudgetError is the typed error returned when a query exceeds one of its
// resource limits. It matches ErrBudgetExceeded under errors.Is.
type BudgetError struct {
	// Resource names the exhausted budget: "rows", "path_depth" or
	// "path_visited".
	Resource string
	// Used is the resource consumption at the moment the cap tripped.
	Used int
	// Limit is the configured cap.
	Limit int
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("sparql: %s budget exceeded (%d > %d)", e.Resource, e.Used, e.Limit)
}

// Is makes errors.Is(err, ErrBudgetExceeded) true for every BudgetError.
func (e *BudgetError) Is(target error) bool { return target == ErrBudgetExceeded }

// evalCancel is the evaluator's shared abort state. Worker goroutines
// observe `stopped` with one atomic load; the first abort wins and records
// the cause. It is shared by reference between an evaluator and the
// sub-evaluators it spawns (subqueries, EXISTS), so a deadline tears down
// the whole tree.
type evalCancel struct {
	ctx     context.Context
	stopped atomic.Bool
	once    sync.Once
	err     error
	// patRows counts rows produced by the join currently executing (reset
	// per pattern); incremented in batches from worker partitions so the
	// row budget is enforced while a join is still producing.
	patRows atomic.Int64
}

// abort records the first abort cause and flips the stop flag. Safe for
// concurrent use from worker goroutines.
func (c *evalCancel) abort(err error) {
	c.once.Do(func() {
		c.err = err
		c.stopped.Store(true)
	})
}

// aborted reports whether evaluation must stop. One atomic load.
func (c *evalCancel) aborted() bool { return c.stopped.Load() }

// cause returns the abort cause, or nil when evaluation is still live. Only
// meaningful after aborted() returned true (the Once store ordering makes
// err visible then).
func (c *evalCancel) cause() error {
	if !c.stopped.Load() {
		return nil
	}
	return c.err
}

// poll checks the context (deadline, client disconnect) and returns whether
// evaluation must stop. Operator boundaries call it directly; hot loops
// call it every pollEvery rows.
func (c *evalCancel) poll() bool {
	if c.stopped.Load() {
		return true
	}
	if err := c.ctx.Err(); err != nil {
		c.abort(err)
		return true
	}
	return false
}

// addRows accounts n freshly produced intermediate rows against the row
// budget (maxRows <= 0 disables). Returns true when the budget tripped;
// the caller must stop producing.
func (c *evalCancel) addRows(n int, maxRows int) bool {
	if maxRows <= 0 {
		return c.stopped.Load()
	}
	total := c.patRows.Add(int64(n))
	if total > int64(maxRows) {
		c.abort(&BudgetError{Resource: "rows", Used: int(total), Limit: maxRows})
		return true
	}
	return c.stopped.Load()
}

// resetRows starts a fresh row-budget window (called at each operator that
// materializes a new intermediate binding set).
func (c *evalCancel) resetRows() { c.patRows.Store(0) }
