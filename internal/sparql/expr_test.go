package sparql

import (
	"errors"
	"strings"
	"testing"

	"rdfanalytics/internal/rdf"
)

// evalStr parses `expr` as a SPARQL expression (via a FILTER wrapper) and
// evaluates it against the binding.
func evalStr(t *testing.T, expr string, b Binding) (rdf.Term, error) {
	t.Helper()
	q, err := Parse(`SELECT ?x WHERE { ?x ?p ?o . FILTER(` + expr + `) }`)
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	var f Expr
	for _, e := range q.Where.Elems {
		if e.Filter != nil {
			f = e.Filter
		}
	}
	env := exprEnv{ev: &evaluator{g: rdf.NewGraph()}}
	return env.evalExpr(f, b)
}

func TestBuiltinFunctions(t *testing.T) {
	b := Binding{
		"s":    rdf.NewString("Hello World"),
		"n":    rdf.NewInteger(-7),
		"f":    rdf.NewDecimal(2.5),
		"d":    rdf.NewTyped("2021-06-10T13:45:30", rdf.XSDDateTime),
		"iri":  rdf.NewIRI("http://ex.org/thing"),
		"lang": rdf.NewLangString("bonjour", "fr"),
		"bn":   rdf.NewBlank("b0"),
	}
	cases := []struct {
		expr string
		want string // expected term value ("" with wantErr)
	}{
		{`STR(?iri)`, "http://ex.org/thing"},
		{`STR(?n)`, "-7"},
		{`LANG(?lang)`, "fr"},
		{`LANG(?s)`, ""},
		{`LANGMATCHES(LANG(?lang), "fr")`, "true"},
		{`LANGMATCHES(LANG(?lang), "*")`, "true"},
		{`LANGMATCHES(LANG(?lang), "en")`, "false"},
		{`DATATYPE(?n)`, rdf.XSDInteger},
		{`DATATYPE(?s)`, rdf.XSDString},
		{`ISIRI(?iri)`, "true"},
		{`ISIRI(?s)`, "false"},
		{`ISBLANK(?bn)`, "true"},
		{`ISLITERAL(?s)`, "true"},
		{`ISNUMERIC(?n)`, "true"},
		{`ISNUMERIC(?s)`, "false"},
		{`SAMETERM(?n, ?n)`, "true"},
		{`SAMETERM(?n, ?f)`, "false"},
		{`ABS(?n)`, "7"},
		{`CEIL(?f)`, "3"},
		{`FLOOR(?f)`, "2"},
		{`ROUND(?f)`, "3"},
		{`STRLEN(?s)`, "11"},
		{`UCASE(?s)`, "HELLO WORLD"},
		{`LCASE(?s)`, "hello world"},
		{`CONCAT(?s, "!", STR(?n))`, "Hello World!-7"},
		{`CONTAINS(?s, "World")`, "true"},
		{`CONTAINS(?s, "world")`, "false"},
		{`STRSTARTS(?s, "Hello")`, "true"},
		{`STRENDS(?s, "World")`, "true"},
		{`STRBEFORE(?s, " ")`, "Hello"},
		{`STRAFTER(?s, " ")`, "World"},
		{`STRBEFORE(?s, "zzz")`, ""},
		{`SUBSTR(?s, 7)`, "World"},
		{`SUBSTR(?s, 1, 5)`, "Hello"},
		{`REPLACE(?s, "o", "0")`, "Hell0 W0rld"},
		{`REGEX(?s, "^Hello")`, "true"},
		{`REGEX(?s, "^hello", "i")`, "true"},
		{`REGEX(?s, "^World")`, "false"},
		{`YEAR(?d)`, "2021"},
		{`MONTH(?d)`, "6"},
		{`DAY(?d)`, "10"},
		{`HOURS(?d)`, "13"},
		{`MINUTES(?d)`, "45"},
		{`SECONDS(?d)`, "30"},
		{`IRI(STR(?iri))`, "http://ex.org/thing"},
		{`STRLANG("hi", "en")`, "hi"},
		{`STRDT("5", STR(DATATYPE(?n)))`, "5"},
		{`ENCODE_FOR_URI("a b/c")`, "a%20b%2Fc"},
		{`IF(?n < 0, "neg", "pos")`, "neg"},
		{`IF(?f > 0, "pos", "neg")`, "pos"},
		{`COALESCE(?undefined, ?s)`, "Hello World"},
		{`BOUND(?s)`, "true"},
		{`BOUND(?undefined)`, "false"},
	}
	for _, c := range cases {
		got, err := evalStr(t, c.expr, b)
		if err != nil {
			t.Errorf("%s: error %v", c.expr, err)
			continue
		}
		if got.Value != c.want {
			t.Errorf("%s = %q, want %q", c.expr, got.Value, c.want)
		}
	}
}

func TestBuiltinErrors(t *testing.T) {
	b := Binding{
		"s":   rdf.NewString("str"),
		"iri": rdf.NewIRI("http://e/x"),
	}
	for _, expr := range []string{
		`YEAR(?s)`,          // non-temporal
		`ABS(?s)`,           // non-numeric
		`DATATYPE(?iri)`,    // non-literal
		`?undefined + 1`,    // unbound var
		`?s + 1`,            // string arithmetic
		`1 / 0`,             // division by zero
		`REGEX(?s, "[bad")`, // malformed regex
		`?iri < ?s`,         // unorderable
	} {
		if _, err := evalStr(t, expr, b); err == nil {
			t.Errorf("%s: expected evaluation error", expr)
		} else if !errors.Is(err, errEval) {
			t.Errorf("%s: error %v does not wrap errEval", expr, err)
		}
	}
}

func TestArithmeticAndPromotion(t *testing.T) {
	b := Binding{
		"i": rdf.NewInteger(6),
		"j": rdf.NewInteger(4),
		"d": rdf.NewDecimal(0.5),
		"x": rdf.NewDouble(2),
	}
	cases := []struct {
		expr, want, dt string
	}{
		{`?i + ?j`, "10", rdf.XSDInteger},
		{`?i - ?j`, "2", rdf.XSDInteger},
		{`?i * ?j`, "24", rdf.XSDInteger},
		{`?i / ?j`, "1.5", rdf.XSDDecimal}, // integer division yields decimal
		{`?i + ?d`, "6.5", rdf.XSDDecimal},
		{`?i * ?x`, "12", rdf.XSDDouble},
		{`-?i`, "-6", rdf.XSDInteger},
		{`-(?d)`, "-0.5", rdf.XSDDecimal},
	}
	for _, c := range cases {
		got, err := evalStr(t, c.expr, b)
		if err != nil {
			t.Errorf("%s: %v", c.expr, err)
			continue
		}
		if got.Value != c.want || got.Datatype != c.dt {
			t.Errorf("%s = %s^^%s, want %s^^%s", c.expr, got.Value, got.Datatype, c.want, c.dt)
		}
	}
}

func TestComparisonsAcrossTypes(t *testing.T) {
	b := Binding{
		"i":  rdf.NewInteger(5),
		"d":  rdf.NewDecimal(5.0),
		"d2": rdf.NewTyped("2021-01-01", rdf.XSDDate),
		"d3": rdf.NewTyped("2022-01-01", rdf.XSDDate),
		"t":  rdf.NewBool(true),
		"f":  rdf.NewBool(false),
		"s1": rdf.NewString("apple"),
		"s2": rdf.NewString("banana"),
	}
	cases := []struct {
		expr string
		want bool
	}{
		{`?i = ?d`, true}, // numeric value equality across datatypes
		{`?i != ?d`, false},
		{`?i <= 5`, true},
		{`?i > 4.9`, true},
		{`?d2 < ?d3`, true},
		{`?d2 = ?d2`, true},
		{`?f < ?t`, true},
		{`?s1 < ?s2`, true},
		{`?s1 = "apple"`, true},
		{`?i IN (1, 5, 9)`, true},
		{`?i IN (1, 2)`, false},
		{`?i NOT IN (1, 2)`, true},
		{`!(?i = 5)`, false},
	}
	for _, c := range cases {
		got, err := evalStr(t, c.expr, b)
		if err != nil {
			t.Errorf("%s: %v", c.expr, err)
			continue
		}
		v, _ := got.Bool()
		if v != c.want {
			t.Errorf("%s = %v, want %v", c.expr, v, c.want)
		}
	}
}

func TestCasts(t *testing.T) {
	b := Binding{
		"s": rdf.NewString("42"),
		"f": rdf.NewDecimal(3.9),
	}
	cases := []struct {
		expr, want, dt string
	}{
		{`xsd:integer(?s)`, "42", rdf.XSDInteger},
		{`xsd:integer(?f)`, "3", rdf.XSDInteger}, // truncation
		{`xsd:decimal("2.5")`, "2.5", rdf.XSDDecimal},
		{`xsd:double("1e3")`, "1000", rdf.XSDDouble},
		{`xsd:boolean("true")`, "true", rdf.XSDBoolean},
		{`xsd:boolean("1")`, "true", rdf.XSDBoolean},
		{`xsd:string(?f)`, "3.9", rdf.XSDString},
		{`xsd:date("2021-06-10")`, "2021-06-10", rdf.XSDDate},
	}
	for _, c := range cases {
		got, err := evalStr(t, c.expr, b)
		if err != nil {
			t.Errorf("%s: %v", c.expr, err)
			continue
		}
		if got.Value != c.want || got.Datatype != c.dt {
			t.Errorf("%s = %s^^%s, want %s^^%s", c.expr, got.Value, got.Datatype, c.want, c.dt)
		}
	}
	// Invalid casts error.
	for _, expr := range []string{
		`xsd:integer("abc")`, `xsd:boolean("maybe")`, `xsd:date("June")`,
	} {
		if _, err := evalStr(t, expr, b); err == nil {
			t.Errorf("%s: expected cast error", expr)
		}
	}
}

func TestEffectiveBooleanValue(t *testing.T) {
	cases := []struct {
		term    rdf.Term
		want    bool
		wantErr bool
	}{
		{rdf.NewBool(true), true, false},
		{rdf.NewBool(false), false, false},
		{rdf.NewString(""), false, false},
		{rdf.NewString("x"), true, false},
		{rdf.NewInteger(0), false, false},
		{rdf.NewInteger(3), true, false},
		{rdf.NewDecimal(0.0), false, false},
		{rdf.NewLangString("x", "en"), true, false},
		{rdf.NewIRI("http://e/x"), false, true},
		{rdf.NewTyped("junk", rdf.XSDDate), false, true},
		{rdf.NewTyped("notabool", rdf.XSDBoolean), false, true},
	}
	for _, c := range cases {
		got, err := ebv(c.term)
		if c.wantErr {
			if err == nil {
				t.Errorf("ebv(%v): expected error", c.term)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("ebv(%v) = %v, %v; want %v", c.term, got, err, c.want)
		}
	}
}

func TestStringLikeKeepsLang(t *testing.T) {
	b := Binding{"l": rdf.NewLangString("Bonjour", "fr")}
	got, err := evalStr(t, `UCASE(?l)`, b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Lang != "fr" || got.Value != "BONJOUR" {
		t.Errorf("UCASE(lang) = %v", got)
	}
}

func TestNestedAggregateExpression(t *testing.T) {
	// Arithmetic over aggregates: (SUM(?q) / COUNT(?q)) equals AVG(?q).
	g := rdf.MustLoadTurtle(`@prefix ex: <http://e/> .
ex:a ex:q 10 . ex:b ex:q 20 . ex:c ex:q 30 .
`)
	res, err := Select(g, `PREFIX ex: <http://e/>
SELECT ((SUM(?q) / COUNT(?q)) AS ?manual) (AVG(?q) AS ?auto)
WHERE { ?s ex:q ?q }`)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	m, _ := row["manual"].Float()
	a, _ := row["auto"].Float()
	if m != a || m != 20 {
		t.Errorf("manual=%v auto=%v", row["manual"], row["auto"])
	}
}

func TestHavingWithCompoundCondition(t *testing.T) {
	g := rdf.MustLoadTurtle(`@prefix ex: <http://e/> .
ex:i1 ex:at ex:b1 ; ex:q 100 .
ex:i2 ex:at ex:b1 ; ex:q 200 .
ex:i3 ex:at ex:b2 ; ex:q 50 .
`)
	res, err := Select(g, `PREFIX ex: <http://e/>
SELECT ?b (SUM(?q) AS ?t) WHERE { ?i ex:at ?b . ?i ex:q ?q }
GROUP BY ?b
HAVING (SUM(?q) > 100 && COUNT(?q) >= 2)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0]["b"].LocalName() != "b1" {
		t.Fatalf("rows: %s", res)
	}
}

func TestExprStringForms(t *testing.T) {
	// Every AST String() form is non-empty and stable (exercises the
	// display code used in error messages and the UI).
	exprs := []Expr{
		ExprVar{Name: "x"},
		ExprTerm{Term: rdf.NewInteger(3)},
		ExprUnary{Op: "!", Sub: ExprVar{Name: "x"}},
		ExprBinary{Op: "&&", Left: ExprVar{Name: "x"}, Right: ExprVar{Name: "y"}},
		ExprCall{Func: "YEAR", Args: []Expr{ExprVar{Name: "d"}}},
		ExprCall{Func: "http://www.w3.org/2001/XMLSchema#integer", Args: []Expr{ExprVar{Name: "d"}}},
		ExprAggregate{Func: "SUM", Arg: ExprVar{Name: "q"}},
		ExprAggregate{Func: "COUNT", Star: true, Distinct: true},
		ExprAggregate{Func: "GROUP_CONCAT", Arg: ExprVar{Name: "q"}, Separator: ","},
		ExprExists{Pattern: &GroupPattern{}},
		ExprExists{Not: true, Pattern: &GroupPattern{}},
		ExprIn{Left: ExprVar{Name: "x"}, List: []Expr{ExprTerm{Term: rdf.NewInteger(1)}}},
		ExprIn{Not: true, Left: ExprVar{Name: "x"}, List: []Expr{ExprTerm{Term: rdf.NewInteger(1)}}},
	}
	for _, e := range exprs {
		if strings.TrimSpace(e.String()) == "" {
			t.Errorf("%T: empty String()", e)
		}
	}
	// Path String forms.
	paths := []Path{
		PathIRI{IRI: rdf.NewIRI("http://e/p")},
		PathInverse{Sub: PathIRI{IRI: rdf.NewIRI("http://e/p")}},
		PathSeq{Left: PathIRI{IRI: rdf.NewIRI("http://e/p")}, Right: PathIRI{IRI: rdf.NewIRI("http://e/q")}},
		PathAlt{Left: PathIRI{IRI: rdf.NewIRI("http://e/p")}, Right: PathIRI{IRI: rdf.NewIRI("http://e/q")}},
		PathMod{Sub: PathIRI{IRI: rdf.NewIRI("http://e/p")}, Min: 0, Max: -1},
		PathMod{Sub: PathIRI{IRI: rdf.NewIRI("http://e/p")}, Min: 1, Max: -1},
		PathMod{Sub: PathIRI{IRI: rdf.NewIRI("http://e/p")}, Min: 0, Max: 1},
	}
	for _, p := range paths {
		if strings.TrimSpace(p.String()) == "" {
			t.Errorf("%T: empty String()", p)
		}
	}
}

func TestGroupConcatSeparatorAndSample(t *testing.T) {
	g := rdf.MustLoadTurtle(`@prefix ex: <http://e/> .
ex:a ex:tag "x" . ex:a ex:tag "y" . ex:a ex:tag "z" .
`)
	res, err := Select(g, `PREFIX ex: <http://e/>
SELECT (GROUP_CONCAT(?t; SEPARATOR="|") AS ?gc) (SAMPLE(?t) AS ?sm)
WHERE { ?s ex:tag ?t }`)
	if err != nil {
		t.Fatal(err)
	}
	gc := res.Rows[0]["gc"].Value
	if strings.Count(gc, "|") != 2 {
		t.Errorf("group_concat = %q", gc)
	}
	if res.Rows[0]["sm"].IsZero() {
		t.Error("sample missing")
	}
}
