package sparql

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"rdfanalytics/internal/rdf"
)

// Differential tests for the parallel ID-space engine: evaluation with
// Parallelism: 1 and Parallelism: 8 must produce identical Results — the
// same rows in the same order — for every query. This is the contract that
// makes Options.Parallelism a pure ablation knob.

// chainGraph builds a three-hop graph large enough that intermediate
// binding sets cross parallelThreshold, so the partitioned paths (and the
// hash-join strategy) actually execute.
func chainGraph(n int) *rdf.Graph {
	var sb strings.Builder
	sb.WriteString("@prefix ex: <http://e/> .\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "ex:s%d ex:v %d .\n", i, i)
		fmt.Fprintf(&sb, "ex:s%d ex:link ex:t%d .\n", i, i%50)
		fmt.Fprintf(&sb, "ex:t%d ex:w %d .\n", i%50, i%50)
		if i%3 == 0 {
			fmt.Fprintf(&sb, "ex:s%d ex:tag ex:hot .\n", i)
		}
	}
	return rdf.MustLoadTurtle(sb.String())
}

var parallelCorpus = []string{
	`PREFIX ex: <http://e/> SELECT ?s ?v WHERE { ?s ex:v ?v }`,
	`PREFIX ex: <http://e/> SELECT ?s ?w WHERE { ?s ex:v ?v . ?s ex:link ?t . ?t ex:w ?w }`,
	`PREFIX ex: <http://e/> SELECT ?s ?w WHERE { ?s ex:link ?t . ?t ex:w ?w . FILTER(?w < 25) }`,
	`PREFIX ex: <http://e/> SELECT DISTINCT ?t WHERE { ?s ex:tag ex:hot . ?s ex:link ?t }`,
	`PREFIX ex: <http://e/> SELECT ?t (SUM(?v) AS ?total) WHERE { ?s ex:v ?v . ?s ex:link ?t } GROUP BY ?t ORDER BY ?t`,
	`PREFIX ex: <http://e/> SELECT ?s ?n WHERE { ?s ex:v ?n . OPTIONAL { ?s ex:tag ?g } } ORDER BY ?n LIMIT 40`,
	`PREFIX ex: <http://e/> SELECT ?s WHERE { { ?s ex:tag ex:hot } UNION { ?s ex:w ?w } }`,
	`PREFIX ex: <http://e/> SELECT ?a ?b WHERE { ?a ex:link ?x . ?b ex:link ?x . FILTER(?a != ?b) } LIMIT 200`,
	`PREFIX ex: <http://e/> SELECT ?s ?p ?o WHERE { ?s ?p ?o } LIMIT 500`,
}

func TestParallelDifferentialCorpus(t *testing.T) {
	graphs := map[string]*rdf.Graph{
		"invoices": invoices(t),
		"chain":    chainGraph(600),
	}
	for name, g := range graphs {
		for _, src := range parallelCorpus {
			q := MustParse(src)
			seq, err := ExecSelectOpts(g, q, Options{Parallelism: 1})
			if err != nil {
				t.Fatalf("%s %q: sequential: %v", name, src, err)
			}
			parR, err := ExecSelectOpts(g, q, Options{Parallelism: 8})
			if err != nil {
				t.Fatalf("%s %q: parallel: %v", name, src, err)
			}
			assertSameResults(t, name+" "+src, seq, parR)
		}
	}
}

func assertSameResults(t *testing.T, label string, seq, parR *Results) {
	t.Helper()
	if !reflect.DeepEqual(seq.Vars, parR.Vars) {
		t.Fatalf("%s: vars differ: %v vs %v", label, seq.Vars, parR.Vars)
	}
	if len(seq.Rows) != len(parR.Rows) {
		t.Fatalf("%s: sequential %d rows, parallel %d rows", label, len(seq.Rows), len(parR.Rows))
	}
	for i := range seq.Rows {
		if !reflect.DeepEqual(seq.Rows[i], parR.Rows[i]) {
			t.Fatalf("%s: row %d differs (order or content):\n  seq: %v\n  par: %v",
				label, i, seq.Rows[i], parR.Rows[i])
		}
	}
}

// TestParallelDifferentialRandom repeats the random-BGP differential at
// both parallelism levels and additionally demands order equality between
// them (the naive reference fixes the multiset; the levels must also agree
// on sequence).
func TestParallelDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(271))
	for trial := 0; trial < 150; trial++ {
		g, triples := randomGraph(rng, 5+rng.Intn(25))
		nPatterns := 1 + rng.Intn(3)
		patterns := make([]TriplePattern, nPatterns)
		for i := range patterns {
			patterns[i] = randomPattern(rng)
		}
		gp := &GroupPattern{}
		for i := range patterns {
			tp := patterns[i]
			gp.Elems = append(gp.Elems, PatternElem{Triple: &tp})
		}
		seq := newEvaluator(context.Background(), g, Options{Parallelism: 1}).evalGroup(gp, []Binding{{}})
		parR := newEvaluator(context.Background(), g, Options{Parallelism: 8}).evalGroup(gp, []Binding{{}})
		if len(seq) != len(parR) {
			t.Fatalf("trial %d: sequential %d rows, parallel %d\npatterns: %v",
				trial, len(seq), len(parR), patterns)
		}
		for i := range seq {
			if !reflect.DeepEqual(seq[i], parR[i]) {
				t.Fatalf("trial %d: row %d differs between parallelism levels\n  seq: %v\n  par: %v\npatterns: %v",
					trial, i, seq[i], parR[i], patterns)
			}
		}
		// And both must agree with the naive reference on the multiset.
		varSet := map[string]bool{}
		for i := range patterns {
			for _, v := range patterns[i].Vars() {
				varSet[v] = true
			}
		}
		vars := make([]string, 0, len(varSet))
		for v := range varSet {
			vars = append(vars, v)
		}
		ref := naiveBGP(triples, patterns)
		got := canonical(parR, vars)
		want := canonical(ref, vars)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: engine disagrees with naive reference\npatterns: %v", trial, patterns)
		}
	}
}

// TestReorderInvariance: join reordering and estimation must be stable —
// warming the cardinality cache by running queries must not change the
// order reorderTriples picks or the values estimate returns.
func TestReorderInvariance(t *testing.T) {
	g := chainGraph(300)
	q := MustParse(`PREFIX ex: <http://e/>
SELECT ?s ?w WHERE { ?s ex:v ?v . ?s ex:link ?t . ?t ex:w ?w . ?s ex:tag ex:hot }`)
	ev := newEvaluator(context.Background(), g, Options{})
	order := func() []string {
		var out []string
		for _, e := range ev.reorderTriples(q.Where.Elems) {
			out = append(out, e.Triple.String())
		}
		return out
	}
	estimates := func() []int {
		bound := map[string]bool{}
		var out []int
		for _, e := range q.Where.Elems {
			out = append(out, ev.estimate(e.Triple, bound))
		}
		return out
	}
	coldOrder, coldEst := order(), estimates()
	// Warm the cache: evaluate the query and re-plan several times.
	for i := 0; i < 3; i++ {
		if _, err := ExecSelect(g, q); err != nil {
			t.Fatal(err)
		}
		if warm := order(); !reflect.DeepEqual(coldOrder, warm) {
			t.Fatalf("reorder changed after cache warm-up:\ncold: %v\nwarm: %v", coldOrder, warm)
		}
		if warm := estimates(); !reflect.DeepEqual(coldEst, warm) {
			t.Fatalf("estimates changed after cache warm-up:\ncold: %v\nwarm: %v", coldEst, warm)
		}
	}
	// Cached counts must equal uncached counts for every pattern shape.
	for _, ids := range [][3]rdf.ID{{1, 0, 0}, {0, 2, 0}, {0, 0, 3}, {1, 2, 0}, {0, 2, 3}, {1, 0, 3}, {0, 0, 0}} {
		if got, want := g.CachedCountIDs(ids[0], ids[1], ids[2]), g.MatchCountIDs(ids[0], ids[1], ids[2]); got != want {
			t.Errorf("CachedCountIDs(%v) = %d, MatchCountIDs = %d", ids, got, want)
		}
	}
}

// TestStrategySelection pins the heuristic's behavior at its boundaries and
// checks that both strategies are actually reachable from real queries.
func TestStrategySelection(t *testing.T) {
	cases := []struct {
		est, inputLen, nJoinVars int
		mixed                    bool
		want                     joinStrategy
	}{
		{est: 1000, inputLen: 4, nJoinVars: 1, mixed: false, want: strategyNestedLoop},     // tiny input
		{est: 10, inputLen: 100, nJoinVars: 1, mixed: false, want: strategyHashJoin},       // selective build side
		{est: 100000, inputLen: 100, nJoinVars: 1, mixed: false, want: strategyNestedLoop}, // huge build side
		{est: 100000, inputLen: 100, nJoinVars: 0, mixed: false, want: strategyHashJoin},   // cross product
		{est: 10, inputLen: 100, nJoinVars: 1, mixed: true, want: strategyNestedLoop},      // mixed boundness
	}
	for _, c := range cases {
		if got := chooseStrategy(c.est, c.inputLen, c.nJoinVars, c.mixed); got != c.want {
			t.Errorf("chooseStrategy(%d, %d, %d, %v) = %v, want %v",
				c.est, c.inputLen, c.nJoinVars, c.mixed, got, c.want)
		}
	}
	// A multi-hop query over a large graph must show both strategies in its
	// plan: the first scan feeds enough rows that a selective second pattern
	// switches to hash join.
	g := chainGraph(600)
	plan, err := ExplainOpts(g, `PREFIX ex: <http://e/>
SELECT ?s ?w WHERE { ?s ex:v ?v . ?s ex:link ?t . ?t ex:w ?w }`, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "hash join") {
		t.Errorf("plan shows no hash join:\n%s", plan)
	}
	if !strings.Contains(plan, "workers: 4") {
		t.Errorf("plan does not report worker count:\n%s", plan)
	}
}
