package sparql

import (
	"errors"
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"

	"rdfanalytics/internal/rdf"
)

// errEval is the SPARQL expression "type error": it makes FILTER conditions
// false and leaves BIND variables unbound, per the spec's error semantics.
var errEval = errors.New("sparql: expression evaluation error")

func evalErrf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errEval, fmt.Sprintf(format, args...))
}

// exprEnv provides what expression evaluation needs beyond the row binding:
// the graph (for EXISTS) and the evaluator (for nested pattern matching).
type exprEnv struct {
	ev *evaluator
}

// evalExpr evaluates an expression against a binding. Returned errors that
// wrap errEval are ordinary SPARQL evaluation errors; FILTER treats them as
// false.
func (env exprEnv) evalExpr(e Expr, b Binding) (rdf.Term, error) {
	switch x := e.(type) {
	case ExprVar:
		t, ok := b[x.Name]
		if !ok {
			return rdf.Term{}, evalErrf("unbound variable ?%s", x.Name)
		}
		return t, nil
	case ExprTerm:
		return x.Term, nil
	case ExprUnary:
		return env.evalUnary(x, b)
	case ExprBinary:
		return env.evalBinary(x, b)
	case ExprCall:
		return env.evalCall(x, b)
	case ExprIn:
		return env.evalIn(x, b)
	case ExprExists:
		return env.evalExists(x, b)
	case ExprAggregate:
		return rdf.Term{}, evalErrf("aggregate %s outside grouping context", x.Func)
	default:
		return rdf.Term{}, evalErrf("unknown expression %T", e)
	}
}

// ebv computes the effective boolean value of a term.
func ebv(t rdf.Term) (bool, error) {
	if t.Kind != rdf.KindLiteral {
		return false, evalErrf("no effective boolean value for %s", t)
	}
	if v, ok := t.Bool(); ok {
		return v, nil
	}
	if t.Datatype == rdf.XSDBoolean {
		return false, evalErrf("malformed boolean %q", t.Value)
	}
	if t.IsNumeric() {
		f, ok := t.Float()
		if !ok {
			return false, nil
		}
		return f != 0, nil
	}
	if t.Datatype == "" || t.Datatype == rdf.XSDString || t.Lang != "" {
		return t.Value != "", nil
	}
	return false, evalErrf("no effective boolean value for %s", t)
}

// evalBool evaluates an expression to its effective boolean value.
func (env exprEnv) evalBool(e Expr, b Binding) (bool, error) {
	t, err := env.evalExpr(e, b)
	if err != nil {
		return false, err
	}
	return ebv(t)
}

func (env exprEnv) evalUnary(x ExprUnary, b Binding) (rdf.Term, error) {
	switch x.Op {
	case "!":
		v, err := env.evalBool(x.Sub, b)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewBool(!v), nil
	case "-":
		t, err := env.evalExpr(x.Sub, b)
		if err != nil {
			return rdf.Term{}, err
		}
		f, ok := t.Float()
		if !ok {
			return rdf.Term{}, evalErrf("unary minus on non-numeric %s", t)
		}
		return numericResult(-f, t, t), nil
	default:
		return rdf.Term{}, evalErrf("unknown unary op %q", x.Op)
	}
}

func (env exprEnv) evalBinary(x ExprBinary, b Binding) (rdf.Term, error) {
	switch x.Op {
	case "&&":
		l, errL := env.evalBool(x.Left, b)
		r, errR := env.evalBool(x.Right, b)
		// SPARQL three-valued logic: false && error = false.
		switch {
		case errL == nil && errR == nil:
			return rdf.NewBool(l && r), nil
		case errL == nil && !l:
			return rdf.NewBool(false), nil
		case errR == nil && !r:
			return rdf.NewBool(false), nil
		default:
			if errL != nil {
				return rdf.Term{}, errL
			}
			return rdf.Term{}, errR
		}
	case "||":
		l, errL := env.evalBool(x.Left, b)
		r, errR := env.evalBool(x.Right, b)
		switch {
		case errL == nil && errR == nil:
			return rdf.NewBool(l || r), nil
		case errL == nil && l:
			return rdf.NewBool(true), nil
		case errR == nil && r:
			return rdf.NewBool(true), nil
		default:
			if errL != nil {
				return rdf.Term{}, errL
			}
			return rdf.Term{}, errR
		}
	}
	l, err := env.evalExpr(x.Left, b)
	if err != nil {
		return rdf.Term{}, err
	}
	r, err := env.evalExpr(x.Right, b)
	if err != nil {
		return rdf.Term{}, err
	}
	switch x.Op {
	case "=", "!=":
		eq, err := termsEqual(l, r)
		if err != nil {
			return rdf.Term{}, err
		}
		if x.Op == "!=" {
			eq = !eq
		}
		return rdf.NewBool(eq), nil
	case "<", "<=", ">", ">=":
		c, err := compareTerms(l, r)
		if err != nil {
			return rdf.Term{}, err
		}
		var v bool
		switch x.Op {
		case "<":
			v = c < 0
		case "<=":
			v = c <= 0
		case ">":
			v = c > 0
		case ">=":
			v = c >= 0
		}
		return rdf.NewBool(v), nil
	case "+", "-", "*", "/":
		lf, okL := l.Float()
		rf, okR := r.Float()
		if !okL || !okR {
			return rdf.Term{}, evalErrf("arithmetic on non-numeric operands %s, %s", l, r)
		}
		var f float64
		switch x.Op {
		case "+":
			f = lf + rf
		case "-":
			f = lf - rf
		case "*":
			f = lf * rf
		case "/":
			if rf == 0 {
				return rdf.Term{}, evalErrf("division by zero")
			}
			f = lf / rf
		}
		if x.Op == "/" {
			// xsd:integer / xsd:integer yields xsd:decimal per spec.
			return rdf.NewDecimal(f), nil
		}
		return numericResult(f, l, r), nil
	default:
		return rdf.Term{}, evalErrf("unknown binary op %q", x.Op)
	}
}

// numericResult picks the result datatype by numeric promotion: integer if
// both operands are integers and the value is integral, decimal/double
// otherwise.
func numericResult(f float64, l, r rdf.Term) rdf.Term {
	isInt := func(t rdf.Term) bool {
		switch t.Datatype {
		case rdf.XSDInteger, rdf.XSDInt, rdf.XSDLong, rdf.XSDShort, rdf.XSDByte,
			rdf.XSDNonNegativeInteger, rdf.XSDPositiveInteger:
			return true
		}
		return false
	}
	if isInt(l) && isInt(r) && f == math.Trunc(f) {
		return rdf.NewInteger(int64(f))
	}
	if l.Datatype == rdf.XSDDouble || r.Datatype == rdf.XSDDouble {
		return rdf.NewDouble(f)
	}
	return rdf.NewDecimal(f)
}

// termsEqual implements SPARQL "=": numeric comparison for numerics, value
// equality with type error for incomparable literals, identity for IRIs.
func termsEqual(l, r rdf.Term) (bool, error) {
	if l == r {
		return true, nil
	}
	if l.IsNumeric() && r.IsNumeric() {
		lf, okL := l.Float()
		rf, okR := r.Float()
		if okL && okR {
			return lf == rf, nil
		}
	}
	if l.IsTemporal() && r.IsTemporal() {
		if lt, ok := l.Time(); ok {
			if rt, ok2 := r.Time(); ok2 {
				return lt.Equal(rt), nil
			}
		}
	}
	// Different kinds, or same-kind different values: plain inequality for
	// resources and comparable literals.
	if l.Kind != rdf.KindLiteral || r.Kind != rdf.KindLiteral {
		return false, nil
	}
	// Same datatype, different lexical form -> unequal; different datatypes
	// of unknown semantics -> error per spec (we relax to unequal for
	// robustness with plain strings).
	return false, nil
}

// compareTerms orders two literals: numeric, temporal, boolean, or string.
func compareTerms(l, r rdf.Term) (int, error) {
	if l.IsNumeric() && r.IsNumeric() {
		lf, okL := l.Float()
		rf, okR := r.Float()
		if !okL || !okR {
			return 0, evalErrf("malformed numeric literal")
		}
		switch {
		case lf < rf:
			return -1, nil
		case lf > rf:
			return 1, nil
		default:
			return 0, nil
		}
	}
	// Only literals typed xsd:date / xsd:dateTime compare on the time line;
	// a plain string that merely looks like a date keeps string comparison.
	if l.IsTemporal() && r.IsTemporal() {
		lt, okL := l.Time()
		rt, okR := r.Time()
		if !okL || !okR {
			return 0, evalErrf("malformed temporal literal")
		}
		switch {
		case lt.Before(rt):
			return -1, nil
		case lt.After(rt):
			return 1, nil
		default:
			return 0, nil
		}
	}
	lb, okL2 := l.Bool()
	rb, okR2 := r.Bool()
	if okL2 && okR2 {
		li, ri := 0, 0
		if lb {
			li = 1
		}
		if rb {
			ri = 1
		}
		return li - ri, nil
	}
	if l.Kind == rdf.KindLiteral && r.Kind == rdf.KindLiteral {
		return strings.Compare(l.Value, r.Value), nil
	}
	return 0, evalErrf("cannot order %s and %s", l, r)
}

func (env exprEnv) evalIn(x ExprIn, b Binding) (rdf.Term, error) {
	l, err := env.evalExpr(x.Left, b)
	if err != nil {
		return rdf.Term{}, err
	}
	found := false
	for _, item := range x.List {
		r, err := env.evalExpr(item, b)
		if err != nil {
			continue
		}
		eq, err := termsEqual(l, r)
		if err == nil && eq {
			found = true
			break
		}
	}
	if x.Not {
		found = !found
	}
	return rdf.NewBool(found), nil
}

func (env exprEnv) evalExists(x ExprExists, b Binding) (rdf.Term, error) {
	if env.ev == nil {
		return rdf.Term{}, evalErrf("EXISTS outside query context")
	}
	found := len(env.ev.evalGroup(x.Pattern, []Binding{b.clone()})) > 0
	if x.Not {
		found = !found
	}
	return rdf.NewBool(found), nil
}

func (env exprEnv) evalCall(x ExprCall, b Binding) (rdf.Term, error) {
	// Datatype casts: the function name is an IRI.
	if strings.Contains(x.Func, "://") {
		return env.evalCast(x, b)
	}
	name := strings.ToUpper(x.Func)
	arg := func(i int) (rdf.Term, error) {
		if i >= len(x.Args) {
			return rdf.Term{}, evalErrf("%s: missing argument %d", name, i)
		}
		return env.evalExpr(x.Args[i], b)
	}
	switch name {
	case "BOUND":
		v, ok := x.Args[0].(ExprVar)
		if !ok {
			return rdf.Term{}, evalErrf("BOUND requires a variable")
		}
		_, bound := b[v.Name]
		return rdf.NewBool(bound), nil
	case "COALESCE":
		for _, a := range x.Args {
			if t, err := env.evalExpr(a, b); err == nil {
				return t, nil
			}
		}
		return rdf.Term{}, evalErrf("COALESCE: no valid argument")
	case "IF":
		cond, err := env.evalBool(x.Args[0], b)
		if err != nil {
			return rdf.Term{}, err
		}
		if cond {
			return arg(1)
		}
		return arg(2)
	}
	// Strict builtins: evaluate all arguments first.
	args := make([]rdf.Term, len(x.Args))
	for i := range x.Args {
		t, err := arg(i)
		if err != nil {
			return rdf.Term{}, err
		}
		args[i] = t
	}
	switch name {
	case "STR":
		return rdf.NewString(args[0].Value), nil
	case "LANG":
		return rdf.NewString(args[0].Lang), nil
	case "LANGMATCHES":
		tag := strings.ToLower(args[0].Value)
		rng := strings.ToLower(args[1].Value)
		match := rng == "*" && tag != "" || tag == rng ||
			strings.HasPrefix(tag, rng+"-")
		return rdf.NewBool(match), nil
	case "DATATYPE":
		if args[0].Kind != rdf.KindLiteral {
			return rdf.Term{}, evalErrf("DATATYPE of non-literal")
		}
		dt := args[0].Datatype
		if dt == "" {
			dt = rdf.XSDString
		}
		return rdf.NewIRI(dt), nil
	case "IRI", "URI":
		return rdf.NewIRI(args[0].Value), nil
	case "ISIRI", "ISURI":
		return rdf.NewBool(args[0].IsIRI()), nil
	case "ISBLANK":
		return rdf.NewBool(args[0].IsBlank()), nil
	case "ISLITERAL":
		return rdf.NewBool(args[0].IsLiteral()), nil
	case "ISNUMERIC":
		return rdf.NewBool(args[0].IsNumeric()), nil
	case "SAMETERM":
		return rdf.NewBool(args[0] == args[1]), nil
	case "ABS", "CEIL", "FLOOR", "ROUND":
		f, ok := args[0].Float()
		if !ok {
			return rdf.Term{}, evalErrf("%s on non-numeric", name)
		}
		switch name {
		case "ABS":
			f = math.Abs(f)
		case "CEIL":
			f = math.Ceil(f)
		case "FLOOR":
			f = math.Floor(f)
		case "ROUND":
			f = math.Round(f)
		}
		return numericResult(f, args[0], args[0]), nil
	case "STRLEN":
		return rdf.NewInteger(int64(len([]rune(args[0].Value)))), nil
	case "UCASE":
		return stringLike(args[0], strings.ToUpper(args[0].Value)), nil
	case "LCASE":
		return stringLike(args[0], strings.ToLower(args[0].Value)), nil
	case "CONCAT":
		var sb strings.Builder
		for _, a := range args {
			sb.WriteString(a.Value)
		}
		return rdf.NewString(sb.String()), nil
	case "CONTAINS":
		return rdf.NewBool(strings.Contains(args[0].Value, args[1].Value)), nil
	case "STRSTARTS":
		return rdf.NewBool(strings.HasPrefix(args[0].Value, args[1].Value)), nil
	case "STRENDS":
		return rdf.NewBool(strings.HasSuffix(args[0].Value, args[1].Value)), nil
	case "STRBEFORE":
		i := strings.Index(args[0].Value, args[1].Value)
		if i < 0 {
			return rdf.NewString(""), nil
		}
		return stringLike(args[0], args[0].Value[:i]), nil
	case "STRAFTER":
		i := strings.Index(args[0].Value, args[1].Value)
		if i < 0 {
			return rdf.NewString(""), nil
		}
		return stringLike(args[0], args[0].Value[i+len(args[1].Value):]), nil
	case "SUBSTR":
		runes := []rune(args[0].Value)
		start, ok := args[1].Int()
		if !ok || start < 1 {
			return rdf.Term{}, evalErrf("SUBSTR: bad start")
		}
		end := int64(len(runes)) + 1
		if len(args) > 2 {
			length, ok := args[2].Int()
			if !ok {
				return rdf.Term{}, evalErrf("SUBSTR: bad length")
			}
			end = start + length
		}
		if start > int64(len(runes))+1 {
			return stringLike(args[0], ""), nil
		}
		if end > int64(len(runes))+1 {
			end = int64(len(runes)) + 1
		}
		return stringLike(args[0], string(runes[start-1:end-1])), nil
	case "REPLACE":
		re, err := regexp.Compile(args[1].Value)
		if err != nil {
			return rdf.Term{}, evalErrf("REPLACE: bad pattern %q", args[1].Value)
		}
		return stringLike(args[0], re.ReplaceAllString(args[0].Value, args[2].Value)), nil
	case "REGEX":
		pattern := args[1].Value
		if len(args) > 2 && strings.Contains(args[2].Value, "i") {
			pattern = "(?i)" + pattern
		}
		re, err := regexp.Compile(pattern)
		if err != nil {
			return rdf.Term{}, evalErrf("REGEX: bad pattern %q", pattern)
		}
		return rdf.NewBool(re.MatchString(args[0].Value)), nil
	case "YEAR", "MONTH", "DAY", "HOURS", "MINUTES", "SECONDS":
		tm, ok := args[0].Time()
		if !ok {
			return rdf.Term{}, evalErrf("%s on non-temporal %s", name, args[0])
		}
		switch name {
		case "YEAR":
			return rdf.NewInteger(int64(tm.Year())), nil
		case "MONTH":
			return rdf.NewInteger(int64(tm.Month())), nil
		case "DAY":
			return rdf.NewInteger(int64(tm.Day())), nil
		case "HOURS":
			return rdf.NewInteger(int64(tm.Hour())), nil
		case "MINUTES":
			return rdf.NewInteger(int64(tm.Minute())), nil
		default:
			return rdf.NewInteger(int64(tm.Second())), nil
		}
	case "STRLANG":
		return rdf.NewLangString(args[0].Value, args[1].Value), nil
	case "STRDT":
		return rdf.NewTyped(args[0].Value, args[1].Value), nil
	case "ENCODE_FOR_URI":
		return rdf.NewString(encodeForURI(args[0].Value)), nil
	default:
		return rdf.Term{}, evalErrf("unsupported builtin %s", name)
	}
}

// stringLike keeps the language tag of the source term, per the string
// function rules.
func stringLike(src rdf.Term, v string) rdf.Term {
	if src.Lang != "" {
		return rdf.NewLangString(v, src.Lang)
	}
	return rdf.NewString(v)
}

func encodeForURI(s string) string {
	var sb strings.Builder
	for _, b := range []byte(s) {
		if (b >= 'A' && b <= 'Z') || (b >= 'a' && b <= 'z') ||
			(b >= '0' && b <= '9') || b == '-' || b == '_' || b == '.' || b == '~' {
			sb.WriteByte(b)
		} else {
			fmt.Fprintf(&sb, "%%%02X", b)
		}
	}
	return sb.String()
}

func (env exprEnv) evalCast(x ExprCall, b Binding) (rdf.Term, error) {
	if len(x.Args) != 1 {
		return rdf.Term{}, evalErrf("cast takes one argument")
	}
	v, err := env.evalExpr(x.Args[0], b)
	if err != nil {
		return rdf.Term{}, err
	}
	lex := strings.TrimSpace(v.Value)
	switch x.Func {
	case rdf.XSDInteger, rdf.XSDInt, rdf.XSDLong:
		if f, ok := v.Float(); ok {
			return rdf.NewInteger(int64(f)), nil
		}
		n, err := strconv.ParseInt(lex, 10, 64)
		if err != nil {
			return rdf.Term{}, evalErrf("cannot cast %q to integer", lex)
		}
		return rdf.NewInteger(n), nil
	case rdf.XSDDecimal, rdf.XSDDouble, rdf.XSDFloat:
		f, err := strconv.ParseFloat(lex, 64)
		if err != nil {
			return rdf.Term{}, evalErrf("cannot cast %q to %s", lex, x.Func)
		}
		if x.Func == rdf.XSDDecimal {
			return rdf.NewDecimal(f), nil
		}
		return rdf.NewDouble(f), nil
	case rdf.XSDBoolean:
		switch lex {
		case "true", "1":
			return rdf.NewBool(true), nil
		case "false", "0":
			return rdf.NewBool(false), nil
		}
		return rdf.Term{}, evalErrf("cannot cast %q to boolean", lex)
	case rdf.XSDString:
		return rdf.NewString(v.Value), nil
	case rdf.XSDDate, rdf.XSDDateTime:
		if _, ok := rdf.NewTyped(lex, x.Func).Time(); !ok {
			return rdf.Term{}, evalErrf("cannot cast %q to %s", lex, x.Func)
		}
		return rdf.NewTyped(lex, x.Func), nil
	default:
		return rdf.Term{}, evalErrf("unsupported cast to <%s>", x.Func)
	}
}
