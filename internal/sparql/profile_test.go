package sparql

import (
	"strings"
	"testing"

	"rdfanalytics/internal/rdf"
)

// findProfNodes returns every node of the profile tree with the given op,
// in tree order.
func findProfNodes(p *Profile, op string) []*ProfNode {
	var out []*ProfNode
	var walk func(n *ProfNode)
	walk = func(n *ProfNode) {
		if n.Op == op {
			out = append(out, n)
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(p.Root())
	return out
}

// TestProfileDifferential proves profiling never changes results: the same
// corpus the tracer differential uses, evaluated with and without a
// profile, row for row.
func TestProfileDifferential(t *testing.T) {
	corp := append([]string{}, parallelCorpus...)
	corp = append(corp,
		`PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:v ?v . MINUS { ?s ex:tag ex:hot } } LIMIT 50`,
		`PREFIX ex: <http://e/> SELECT ?s ?w WHERE { ?s ex:link/ex:w ?w } ORDER BY ?s ?w LIMIT 50`,
		`PREFIX ex: <http://e/> SELECT ?t (COUNT(?s) AS ?n) WHERE { { SELECT ?s ?t WHERE { ?s ex:link ?t } } } GROUP BY ?t ORDER BY ?t`,
	)
	for gname, g := range map[string]*rdf.Graph{
		"invoices": invoices(t),
		"chain":    chainGraph(300),
	} {
		for _, src := range corp {
			q := MustParse(src)
			plain, err := ExecSelectOpts(g, q, Options{})
			if err != nil {
				t.Fatalf("%s %q: unprofiled: %v", gname, src, err)
			}
			prof := NewProfile("query")
			profiled, err := ExecSelectOpts(g, q, Options{Profile: prof})
			if err != nil {
				t.Fatalf("%s %q: profiled: %v", gname, src, err)
			}
			assertSameResults(t, gname+" "+src, plain, profiled)
			if prof.Root().Calls != 1 || prof.Root().Dur <= 0 {
				t.Fatalf("%s %q: profile root not recorded: %+v", gname, src, prof.Root())
			}
		}
	}
}

// TestProfileEstimatesFromStatsCache pins the provenance of the profile's
// cardinality estimates: a scan node's EstRows must be exactly the
// cardinality-stats-cache count for the pattern's constant positions
// (rdf.Graph.CachedCountIDs — the same number the planner ordered with),
// and its q-error must be max(est/act, act/est).
func TestProfileEstimatesFromStatsCache(t *testing.T) {
	g := chainGraph(300)
	prof := NewProfile("query")
	q := MustParse(`PREFIX ex: <http://e/> SELECT ?s ?w WHERE { ?s ex:link ?t . ?t ex:w ?w }`)
	res, err := ExecSelectOpts(g, q, Options{Profile: prof, NoReorder: true})
	if err != nil {
		t.Fatal(err)
	}
	scans := findProfNodes(prof, "scan")
	if len(scans) != 2 {
		t.Fatalf("want 2 scan nodes, got %d\n%s", len(scans), prof.Tree())
	}
	link, _ := g.TermID(rdf.NewIRI("http://e/link"))
	w, _ := g.TermID(rdf.NewIRI("http://e/w"))
	wantEsts := []int{
		g.CachedCountIDs(0, link, 0), // scan 1: ?s ex:link ?t, constants only
		g.CachedCountIDs(0, w, 0),    // scan 2: ?t ex:w ?w
	}
	for i, sc := range scans {
		if sc.EstRows != int64(wantEsts[i]) {
			t.Errorf("scan %d (%s): EstRows = %d, want stats-cache count %d",
				i, sc.Label, sc.EstRows, wantEsts[i])
		}
		// q-error must be the symmetric ratio of the stats-cache estimate
		// and the actual output cardinality.
		e, a := float64(sc.EstRows), float64(sc.RowsOut)
		if e < 1 {
			e = 1
		}
		if a < 1 {
			a = 1
		}
		want := e / a
		if a/e > want {
			want = a / e
		}
		if got := sc.QError(); got != want {
			t.Errorf("scan %d: QError = %v, want max(est/act, act/est) = %v", i, got, want)
		}
	}
	// The second pattern's constants-only estimate is 50 distinct ex:w
	// triples while the join actually produces one row per chain row — a
	// real misestimate the q-error must surface as > 1.
	if scans[1].QError() <= 1 {
		t.Errorf("scan 2: expected a misestimate (q-error > 1), got %v", scans[1].QError())
	}
	if len(res.Rows) == 0 {
		t.Fatal("query returned no rows")
	}
}

func TestQErrorFormula(t *testing.T) {
	cases := []struct {
		est, act int64
		want     float64
	}{
		{100, 100, 1},
		{10, 100, 10},
		{100, 10, 10},
		{0, 50, 50}, // empty estimate clamps to 1
		{50, 0, 50}, // empty actual clamps to 1
		{0, 0, 1},
	}
	for _, c := range cases {
		if got := QError(c.est, c.act); got != c.want {
			t.Errorf("QError(%d, %d) = %v, want %v", c.est, c.act, got, c.want)
		}
	}
}

// TestExplainAnalyzeAggregateOverPath drives the headline acceptance case:
// EXPLAIN ANALYZE of an aggregation over a property path prints a tree
// whose operator nodes carry actual rows, wall time, and (on scans)
// estimated-vs-actual cardinality.
func TestExplainAnalyzeAggregateOverPath(t *testing.T) {
	g := chainGraph(300)
	out, err := ExplainAnalyze(g, `PREFIX ex: <http://e/>
SELECT ?t (COUNT(?s) AS ?n) WHERE { ?s ex:link+ ?t . ?t ex:w ?w } GROUP BY ?t ORDER BY ?t`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"match", "path_scan", "scan", "aggregate", "modifiers",
		"calls=", "rows=", "est=", "act=", "q-err=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN ANALYZE output missing %q:\n%s", want, out)
		}
	}
	// Every line must carry a wall-time suffix.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if !strings.Contains(line, "µs") && !strings.Contains(line, "ms") && !strings.Contains(line, "s") {
			t.Errorf("EXPLAIN ANALYZE line missing wall time: %q", line)
		}
	}
}

// TestProfileAggregatesRepeatedCalls checks that per-binding re-evaluation
// (the OPTIONAL body runs once per input row) folds into one node with a
// call count instead of growing the tree.
func TestProfileAggregatesRepeatedCalls(t *testing.T) {
	g := chainGraph(100)
	prof := NewProfile("query")
	q := MustParse(`PREFIX ex: <http://e/> SELECT ?s ?w WHERE { ?s ex:v ?v . OPTIONAL { ?s ex:link ?t . ?t ex:w ?w } }`)
	if _, err := ExecSelectOpts(g, q, Options{Profile: prof}); err != nil {
		t.Fatal(err)
	}
	opts := findProfNodes(prof, "optional")
	if len(opts) != 1 {
		t.Fatalf("want 1 optional node, got %d", len(opts))
	}
	var inner []*ProfNode
	for _, n := range findProfNodes(prof, "bgp") {
		if n.Calls > 1 {
			inner = append(inner, n)
		}
	}
	if len(inner) == 0 {
		t.Fatalf("expected an aggregated inner bgp node with calls > 1:\n%s", prof.Tree())
	}
}

func TestProfileExport(t *testing.T) {
	g := chainGraph(50)
	prof := NewProfile("query")
	q := MustParse(`PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:link ?t } LIMIT 5`)
	if _, err := ExecSelectOpts(g, q, Options{Profile: prof}); err != nil {
		t.Fatal(err)
	}
	exp := prof.Export()
	if exp == nil || exp.Op != "query" || len(exp.Children) == 0 {
		t.Fatalf("export malformed: %+v", exp)
	}
	ests := prof.Estimates()
	if len(ests) == 0 {
		t.Fatal("expected at least one estimate-carrying operator")
	}
	if prof.MaxQError() < 1 {
		t.Errorf("MaxQError = %v, want >= 1", prof.MaxQError())
	}
	var nilProf *Profile
	if nilProf.Export() != nil || nilProf.Tree() != "" || nilProf.Estimates() != nil || nilProf.MaxQError() != 0 {
		t.Error("nil profile must be a no-op")
	}
}

// BenchmarkProfileOverhead measures the evaluator with profiling off (the
// nil-safe no-op path — one pointer test per site) against profiling on.
func BenchmarkProfileOverhead(b *testing.B) {
	g := chainGraph(300)
	q := MustParse(`PREFIX ex: <http://e/> SELECT ?s ?w WHERE { ?s ex:v ?v . ?s ex:link ?t . ?t ex:w ?w . FILTER(?w < 40) } ORDER BY ?s LIMIT 20`)
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ExecSelectOpts(g, q, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ExecSelectOpts(g, q, Options{Profile: NewProfile("query")}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
