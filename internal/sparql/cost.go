package sparql

import (
	"sort"
	"strings"
)

// The planner's cost model. Costs are abstract row-touch counts: one unit
// per index probe, per build-side row scanned, and per output row produced.
// They only need to rank plans, not predict wall time. Cardinalities come
// from three sources, best first:
//
//  1. feedback — the (input, output) cardinality this scan site observed
//     the last time the same query fingerprint ran on this graph version
//     (FeedbackStore.SiteActuals), applied as a per-input-row selectivity:
//     predicted out = in × observedOut/observedIn. Sites are keyed by
//     (pattern label, bound-variable context): a scan's selectivity
//     depends on which join variables arrived bound, so an observation at
//     one plan position must not seed the same pattern under different
//     bindings — a context miss falls back to the cold estimate instead
//     of a confidently wrong number;
//  2. the version-invalidated cardinality-stats cache (pattern count with
//     constants only, rdf.Graph.CachedCountIDs);
//  3. the bound-variable reduction heuristic: each pattern variable that
//     arrives bound divides the stats-cache count by boundVarFactor — the
//     same factor the legacy greedy orderer used, so the two planners rank
//     single patterns identically when no feedback is available.

const (
	// boundVarFactor is the selectivity credit for a join variable: a bound
	// S/O position is assumed to cut the pattern's match count by this
	// factor (no distinct-value statistics are kept; this matches the
	// legacy estimate() heuristic).
	boundVarFactor = 10
	// costCap keeps the cost arithmetic away from float overflow on
	// pathological cross products; plans beyond it are all "equally awful".
	costCap = 1e30
	// nlProbeCost is the priced overhead of one index probe relative to one
	// hash probe. hashBuildFactor+1 makes the cost model's break-even point
	// coincide with the runtime heuristic's (hash wins iff the build side is
	// under hashBuildFactor× the input), so plan-time and legacy run-time
	// join-type choices agree on single steps.
	nlProbeCost = float64(hashBuildFactor + 1)
)

// costModel prices pattern joins for one BGP run. It is built per run and
// read-only while planning, so DP and mid-query replans can share it.
type costModel struct {
	rp *runPlan
	// labels[i] is the pattern's canonical string (equal to the profiler's
	// scan label), the first half of the feedback site key.
	labels []string
	// fb maps feedback site keys — label + "\x00" + bound-variable context
	// (see ctxKey) — to observed (input, output) cardinalities (nil when
	// the query has no feedback). A hit overrides the estimate's per-row
	// selectivity entirely.
	fb map[string]SiteActual
}

// newCostModel prices the patterns of rp. run supplies the pattern labels
// (rp stores only compiled IDs); fb is the evaluator's per-query feedback
// snapshot, possibly nil.
func newCostModel(rp *runPlan, run []*TriplePattern, fb map[string]SiteActual) *costModel {
	cm := &costModel{rp: rp, fb: fb, labels: make([]string, len(run))}
	for i, tp := range run {
		cm.labels[i] = tp.String()
	}
	return cm
}

// stepEstimate is the cost model's prediction for joining one pattern into
// a partial plan.
type stepEstimate struct {
	// outRows is the predicted output cardinality of the step.
	outRows float64
	// cost is the predicted work of the step under the chosen strategy.
	cost float64
	// strategy is the cheaper of index-nested-loop and hash join at the
	// predicted input size.
	strategy joinStrategy
	// card is the per-pattern cardinality the scan's profile q-error is
	// measured against: the feedback actual on a hit, the stats-cache count
	// otherwise (the pre-feedback convention, so cold q-errors compare).
	card int
	// fbSeeded reports whether feedback supplied the cardinality.
	fbSeeded bool
}

// step prices joining pattern i into a partial plan with inRows input rows
// and the variable columns of boundCols already bound (a bitmask over
// rp.vars). This is where join-type selection lives: both strategies are
// priced and the cheaper one is folded into the plan, instead of being
// re-decided per scan at execution time.
func (cm *costModel) step(i int, inRows float64, boundCols uint64) stepEstimate {
	pp := &cm.rp.pats[i]
	base := float64(pp.baseEst)
	// Per-row match estimate: bound variable positions cut the base count.
	perRow := base
	seen := uint64(0)
	for _, pos := range []int{0, 2} { // S and O positions, matching estimate()
		idx := pp.pos[pos]
		if idx < 0 || seen&(1<<uint(idx)) != 0 {
			continue
		}
		seen |= 1 << uint(idx)
		if boundCols&(1<<uint(idx)) != 0 {
			if perRow > 1 {
				perRow = perRow/boundVarFactor + 1
			}
		}
	}
	if inRows < 1 {
		inRows = 1
	}
	out := inRows * perRow
	est := stepEstimate{card: pp.baseEst}
	if cm.fb != nil {
		if site, ok := cm.fb[cm.labels[i]+"\x00"+cm.ctxKey(i, boundCols)]; ok {
			// Feedback: scale the site's observed per-input-row selectivity
			// to this candidate's input — never reuse the output as an
			// absolute (a 16-row observation at 1 input row must price as
			// 32k rows when crossed against 2000).
			obsIn := float64(site.In)
			if obsIn < 1 {
				obsIn = 1
			}
			obsOut := float64(site.Out)
			if obsOut < 0 {
				obsOut = 0
			}
			out = inRows * (obsOut / obsIn)
			est.card = int(out + 0.5)
			est.fbSeeded = true
		}
	}
	if out > costCap {
		out = costCap
	}
	est.outRows = out
	// Index nested loop: one index probe per input row plus the produced
	// rows (an index probe touches only matching triples, but pays more per
	// call than a hash probe).
	costNL := nlProbeCost*inRows + out
	// Hash join: scan the build side once (constants-only match count),
	// probe each input row, produce the output.
	costHash := base + inRows + out
	if costNL > costCap {
		costNL = costCap
	}
	if costHash > costCap {
		costHash = costCap
	}
	// Tiny inputs never amortize a build (mirrors the runtime
	// hashJoinMinInput guard, keeping plan and execution consistent).
	if inRows < hashJoinMinInput {
		costHash = costCap
	}
	if costHash < costNL {
		est.cost, est.strategy = costHash, strategyHashJoin
	} else {
		est.cost, est.strategy = costNL, strategyNestedLoop
	}
	return est
}

// ctxKey renders pattern i's bound-variable context under boundCols: the
// sorted names of the pattern's variables that arrive bound, e.g. "[s,o]",
// or "[]" when none do. It is the second half of a feedback site key —
// observed actuals only transfer to replans where the same join variables
// are bound, since a scan's output cardinality is a function of its input
// bindings, not of the pattern alone. Always non-empty for planned steps;
// unplanned (textual/greedy) scans carry the empty context and are never
// recorded (FeedbackStore.Observe skips them).
func (cm *costModel) ctxKey(i int, boundCols uint64) string {
	pp := &cm.rp.pats[i]
	var names []string
	seen := uint64(0)
	for _, idx := range pp.pos {
		if idx < 0 || seen&(1<<uint(idx)) != 0 {
			continue
		}
		seen |= 1 << uint(idx)
		if boundCols&(1<<uint(idx)) != 0 {
			names = append(names, cm.rp.vars[idx])
		}
	}
	sort.Strings(names)
	return "[" + strings.Join(names, ",") + "]"
}

// patternCols returns the bitmask of variable columns pattern i binds.
func (cm *costModel) patternCols(i int) uint64 {
	var mask uint64
	for _, idx := range cm.rp.pats[i].pos {
		if idx >= 0 {
			mask |= 1 << uint(idx)
		}
	}
	return mask
}

// connected reports whether pattern i shares a variable column with
// boundCols (or binds no variables at all).
func (cm *costModel) connected(i int, boundCols uint64) bool {
	cols := cm.patternCols(i)
	return cols == 0 || cols&boundCols != 0
}
