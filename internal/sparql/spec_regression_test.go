package sparql

import (
	"sort"
	"testing"

	"rdfanalytics/internal/rdf"
)

// Regression tests for the SPARQL-semantics conformance sweep: each test
// fails on the pre-fix evaluator (see DESIGN.md "Modifier pipeline order").

func specGraph(t *testing.T, triples ...rdf.Triple) *rdf.Graph {
	t.Helper()
	g := rdf.NewGraph()
	for _, tr := range triples {
		g.Add(tr)
	}
	return g
}

func e(l string) rdf.Term { return rdf.NewIRI("http://e/" + l) }

// TestOrderByNonProjected: per SPARQL 1.1 §15.1 / §18.2.4.4 ordering runs on
// the pre-projection solutions, so sorting by a variable the projection
// drops must still reorder the rows. The pre-fix evaluator projected first,
// making the ORDER BY a silent no-op.
func TestOrderByNonProjected(t *testing.T) {
	g := specGraph(t,
		rdf.NewTriple(e("alice"), e("name"), rdf.NewString("alice")),
		rdf.NewTriple(e("alice"), e("age"), rdf.NewInteger(30)),
		rdf.NewTriple(e("bob"), e("name"), rdf.NewString("bob")),
		rdf.NewTriple(e("bob"), e("age"), rdf.NewInteger(25)),
		rdf.NewTriple(e("carol"), e("name"), rdf.NewString("carol")),
		rdf.NewTriple(e("carol"), e("age"), rdf.NewInteger(41)),
	)
	res, err := Select(g, `SELECT ?name WHERE { ?p <http://e/name> ?name . ?p <http://e/age> ?age } ORDER BY DESC(?age)`)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, row := range res.Rows {
		got = append(got, row["name"].Value)
	}
	want := []string{"carol", "alice", "bob"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order by non-projected ?age: got %v, want %v", got, want)
		}
	}
	if len(res.Vars) != 1 || res.Vars[0] != "name" {
		t.Fatalf("projection leaked: vars %v", res.Vars)
	}
	for _, row := range res.Rows {
		if _, ok := row["age"]; ok {
			t.Fatalf("?age leaked through projection: %v", row)
		}
	}
}

// TestOrderByDateTimeTimezones: xsd:dateTime literals with timezone offsets
// order on the time line, not lexically. "2021-06-01T23:00:00+05:00" is
// 18:00Z and must sort before "2021-06-01T20:00:00Z" even though it is the
// lexically larger string.
func TestOrderByDateTimeTimezones(t *testing.T) {
	g := specGraph(t,
		rdf.NewTriple(e("ev1"), e("at"), rdf.NewTyped("2021-06-01T23:00:00+05:00", rdf.XSDDateTime)), // 18:00Z
		rdf.NewTriple(e("ev2"), e("at"), rdf.NewTyped("2021-06-01T20:00:00Z", rdf.XSDDateTime)),      // 20:00Z
		rdf.NewTriple(e("ev3"), e("at"), rdf.NewTyped("2021-06-01T16:30:00-04:00", rdf.XSDDateTime)), // 20:30Z
	)
	res, err := Select(g, `SELECT ?ev WHERE { ?ev <http://e/at> ?at } ORDER BY ?at`)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, row := range res.Rows {
		got = append(got, row["ev"].LocalName())
	}
	want := []string{"ev1", "ev2", "ev3"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dateTime order: got %v, want %v", got, want)
		}
	}
}

// TestMinMaxDateTime: MIN/MAX over temporal literals pick the chronological
// extremes, honoring timezone offsets.
func TestMinMaxDateTime(t *testing.T) {
	g := specGraph(t,
		rdf.NewTriple(e("ev1"), e("at"), rdf.NewTyped("2021-06-01T23:00:00+05:00", rdf.XSDDateTime)), // 18:00Z: min
		rdf.NewTriple(e("ev2"), e("at"), rdf.NewTyped("2021-06-01T20:30:00Z", rdf.XSDDateTime)),      // max
		rdf.NewTriple(e("ev3"), e("at"), rdf.NewTyped("2021-06-01T16:00:00-04:00", rdf.XSDDateTime)), // 20:00Z
	)
	res, err := Select(g, `SELECT (MIN(?at) AS ?lo) (MAX(?at) AS ?hi) WHERE { ?ev <http://e/at> ?at }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	if got := res.Rows[0]["lo"].Value; got != "2021-06-01T23:00:00+05:00" {
		t.Errorf("MIN = %q, want the 18:00Z instant", got)
	}
	if got := res.Rows[0]["hi"].Value; got != "2021-06-01T20:30:00Z" {
		t.Errorf("MAX = %q, want the 20:30Z instant", got)
	}
}

// TestSumInt64Precision: SUM over an all-integer group keeps an int64
// accumulator. The pre-fix float64 accumulator rounds past 2^53, so
// 2^60 + 1 + 1 came back as 2^60.
func TestSumInt64Precision(t *testing.T) {
	big := int64(1) << 60
	g := specGraph(t,
		rdf.NewTriple(e("a"), e("v"), rdf.NewInteger(big)),
		rdf.NewTriple(e("b"), e("v"), rdf.NewInteger(1)),
		rdf.NewTriple(e("c"), e("v"), rdf.NewInteger(1)),
	)
	res, err := Select(g, `SELECT (SUM(?v) AS ?s) WHERE { ?x <http://e/v> ?v }`)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := res.Rows[0]["s"].Int()
	if !ok {
		t.Fatalf("SUM not an integer: %v", res.Rows[0]["s"])
	}
	if want := big + 2; got != want {
		t.Fatalf("SUM = %d, want %d (float64 accumulator lost precision)", got, want)
	}
	if res.Rows[0]["s"].Datatype != rdf.XSDInteger {
		t.Errorf("SUM datatype = %s, want xsd:integer", res.Rows[0]["s"].Datatype)
	}
}

// TestMinEmptyGroupUnbound: per §18.5 MIN/MAX of an empty group is an
// evaluation error, which leaves that result cell unbound — the query as a
// whole still succeeds and other cells are computed.
func TestMinEmptyGroupUnbound(t *testing.T) {
	g := specGraph(t,
		rdf.NewTriple(e("a"), e("p"), rdf.NewInteger(1)),
		rdf.NewTriple(e("a"), e("q"), rdf.NewInteger(7)),
		rdf.NewTriple(e("b"), e("p"), rdf.NewInteger(2)),
		// e:b has no q values: its group is empty for MIN(?y).
	)
	res, err := Select(g, `SELECT ?x (MIN(?y) AS ?m) (COUNT(?p) AS ?n) WHERE { ?x <http://e/p> ?p . OPTIONAL { ?x <http://e/q> ?y } } GROUP BY ?x`)
	if err != nil {
		t.Fatalf("empty-group MIN killed the query: %v", err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	byX := map[string]Binding{}
	for _, row := range res.Rows {
		byX[row["x"].LocalName()] = row
	}
	if m, ok := byX["a"]["m"]; !ok || m.Value != "7" {
		t.Errorf("group a MIN = %v (bound=%v), want 7", m, ok)
	}
	if m, ok := byX["b"]["m"]; ok {
		t.Errorf("group b MIN should be unbound, got %v", m)
	}
	if n, ok := byX["b"]["n"]; !ok || n.Value != "1" {
		t.Errorf("group b COUNT = %v, want 1", n)
	}
	// And over a completely empty match: one solution, cell unbound.
	res, err = Select(rdf.NewGraph(), `SELECT (MAX(?v) AS ?m) WHERE { ?s <http://e/v> ?v }`)
	if err != nil {
		t.Fatalf("MAX over empty match: %v", err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows over empty match: %d", len(res.Rows))
	}
	if m, ok := res.Rows[0]["m"]; ok {
		t.Errorf("MAX over no rows should be unbound, got %v", m)
	}
}

// TestOrderByAggregate: ORDER BY may apply an aggregate directly; the
// evaluator precomputes it per group into a hidden sort key.
func TestOrderByAggregate(t *testing.T) {
	g := specGraph(t,
		rdf.NewTriple(e("i1"), e("at"), e("b1")),
		rdf.NewTriple(e("i1"), e("qty"), rdf.NewInteger(10)),
		rdf.NewTriple(e("i2"), e("at"), e("b2")),
		rdf.NewTriple(e("i2"), e("qty"), rdf.NewInteger(5)),
		rdf.NewTriple(e("i3"), e("at"), e("b2")),
		rdf.NewTriple(e("i3"), e("qty"), rdf.NewInteger(1)),
	)
	res, err := Select(g, `SELECT ?b WHERE { ?i <http://e/at> ?b . ?i <http://e/qty> ?q } GROUP BY ?b ORDER BY DESC(SUM(?q))`)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, row := range res.Rows {
		got = append(got, row["b"].LocalName())
	}
	if len(got) != 2 || got[0] != "b1" || got[1] != "b2" {
		t.Fatalf("ORDER BY DESC(SUM): got %v, want [b1 b2]", got)
	}
	for _, row := range res.Rows {
		for v := range row {
			if v != "b" {
				t.Fatalf("hidden sort key leaked into projection: %v", row)
			}
		}
	}
}

// TestOrderByDescStrictWeakOrder: the three-way ORDER BY comparator must be
// antisymmetric in the presence of equal-valued but lexically distinct terms
// ("1" vs "01" as xsd:integer break the tie lexically) and of unbound rows,
// under both ASC and DESC.
func TestOrderByDescStrictWeakOrder(t *testing.T) {
	g := rdf.NewGraph()
	cmp := OrderComparator(g, []OrderCond{{Desc: true, Expr: ExprVar{Name: "v"}}})
	a := Binding{"v": rdf.NewTyped("1", rdf.XSDInteger)}
	b := Binding{"v": rdf.NewTyped("01", rdf.XSDInteger)}
	u := Binding{} // unbound sort key
	for _, pair := range [][2]Binding{{a, b}, {a, u}, {b, u}, {a, a}, {u, u}} {
		if cmp(pair[0], pair[1])+cmp(pair[1], pair[0]) != 0 {
			t.Fatalf("comparator not antisymmetric on %v / %v", pair[0], pair[1])
		}
	}
	// A DESC sort over many equivalent keys must terminate and stay a
	// permutation (the broken comparator could corrupt the slice).
	rows := []Binding{a, b, a.clone(), b.clone(), {"v": rdf.NewInteger(2)}}
	sort.SliceStable(rows, func(i, j int) bool { return cmp(rows[i], rows[j]) < 0 })
	if rows[0]["v"].Value != "2" {
		t.Fatalf("DESC sort: want 2 first, got %v", rows[0]["v"])
	}
}

// TestOrderBySelectAlias: ordering can also reference a SELECT-expression
// alias, which the Extend step binds before the sort.
func TestOrderBySelectAlias(t *testing.T) {
	g := specGraph(t,
		rdf.NewTriple(e("a"), e("v"), rdf.NewInteger(3)),
		rdf.NewTriple(e("b"), e("v"), rdf.NewInteger(1)),
		rdf.NewTriple(e("c"), e("v"), rdf.NewInteger(2)),
	)
	res, err := Select(g, `SELECT ?x (?v * 10 AS ?w) WHERE { ?x <http://e/v> ?v } ORDER BY DESC(?w)`)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, row := range res.Rows {
		got = append(got, row["x"].LocalName())
	}
	want := []string{"a", "c", "b"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ORDER BY alias: got %v, want %v", got, want)
		}
	}
}

// TestTemporalVsStringCompare: a plain xsd:string that merely looks like a
// date keeps string semantics in filters — only xsd:date/xsd:dateTime
// literals compare on the time line.
func TestTemporalVsStringCompare(t *testing.T) {
	g := specGraph(t,
		// Lexically "2021-06-01T23:00:00+05:00" > "2021-06-01T20:00:00Z" is
		// false (\'+\' < \'Z\'), but temporally 18:00Z < 20:00Z too; use a pair
		// where the two orders disagree: "...T09:00:00+12:00" (21:00Z prev day?) —
		// keep it simple: as strings, "2021-06-02T01:00:00+05:00" < "2021-06-01T21:00:00Z"
		// is false lexically (02>01 at position 9), while temporally 20:00Z < 21:00Z is true.
		rdf.NewTriple(e("x"), e("s"), rdf.NewString("2021-06-02T01:00:00+05:00")),
	)
	// String comparison: "2021-06-02..." < "2021-06-01..." must be false.
	got, err := Ask(g, `ASK { ?x <http://e/s> ?v . FILTER(?v < "2021-06-01T21:00:00Z") }`)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("plain strings compared temporally")
	}
	// The same lexical forms typed xsd:dateTime compare temporally: 20:00Z < 21:00Z.
	g2 := specGraph(t,
		rdf.NewTriple(e("x"), e("d"), rdf.NewTyped("2021-06-02T01:00:00+05:00", rdf.XSDDateTime)),
	)
	got, err = Ask(g2, `ASK { ?x <http://e/d> ?v . FILTER(?v < "2021-06-01T21:00:00Z"^^<http://www.w3.org/2001/XMLSchema#dateTime>) }`)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("typed dateTime literals did not compare temporally")
	}
}
